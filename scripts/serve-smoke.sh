#!/bin/sh
# serve-smoke: boot blogserved on the synthetic demo corpus, curl every
# endpoint, check the cache and admission headers, push an interval
# through /v1/push (asserting the generation bump and exact cache
# invalidation), and assert a clean SIGTERM drain. `make serve-smoke` runs this; CI's examples job runs
# that target, so the serving layer cannot drift from its routes, its
# readiness contract, or its shutdown behavior.
set -eu

PORT="${SERVE_SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
LOG="$(mktemp)"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/blogserved"

fail() {
	echo "serve-smoke: FAIL: $1" >&2
	echo "--- server log ---" >&2
	cat "$LOG" >&2
	exit 1
}

echo "serve-smoke: building blogserved"
go build -o "$BIN" ./cmd/blogserved

"$BIN" -demo -addr "127.0.0.1:$PORT" 2>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG"; rm -rf "$BINDIR"' EXIT

# /healthz must answer while the corpus may still be loading; /readyz
# flips to 200 when the session attaches.
for i in $(seq 1 50); do
	if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
	[ "$i" = 50 ] && fail "healthz never came up"
	sleep 0.2
done
for i in $(seq 1 100); do
	if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then break; fi
	[ "$i" = 100 ] && fail "readyz never became ready"
	sleep 0.2
done
echo "serve-smoke: ready"

# Every query endpoint answers 200 with a JSON body.
check() {
	path="$1"; needle="$2"
	body="$(curl -fsS "$BASE$path")" || fail "GET $path"
	case "$body" in
	*"$needle"*) ;;
	*) fail "GET $path: body missing $needle: $body" ;;
	esac
	echo "serve-smoke: OK $path"
}
check '/v1/stable-clusters?k=3' '"paths"'
check '/v1/stable-clusters?variant=normalized&k=3' '"paths"'
check '/v1/stable-clusters?variant=diverse&k=3&mode=prefix' '"paths"'
check '/v1/timeseries?keyword=somalia' '"counts"'
check '/v1/bursts?keyword=somalia' '"bursts"'
check '/v1/search?terms=somalia&interval=0' '"ids"'
check '/v1/refine?query=somalia&interval=0' '"keywords"'
check '/v1/correlations?keyword=somalia&interval=0&n=3' '"correlations"'
check '/debug/stats' '"engine"'

# Describe a real path: pull the first node id out of stable-clusters.
node="$(curl -fsS "$BASE/v1/stable-clusters?k=1" | sed -n 's/.*"nodes":\[\([0-9]*\).*/\1/p')"
[ -n "$node" ] || fail "could not extract a node id"
check "/v1/describe?nodes=$node" '"description"'

# The repeat of a hot query must be a cache hit.
hdr="$(curl -fsS -D - -o /dev/null "$BASE/v1/stable-clusters?k=3")"
case "$hdr" in
*"X-Cache: hit"*) echo "serve-smoke: OK cache hit" ;;
*) fail "repeated query was not a cache hit: $hdr" ;;
esac

# Bad parameters are 400, not 500.
code="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/stable-clusters?algorithm=astar")"
[ "$code" = 400 ] || fail "bad algorithm returned $code, want 400"

# Live ingest: push the next interval and watch the generation bump
# and the cache invalidate exactly the generation-keyed entries.
stats="$(curl -fsS "$BASE/debug/stats")"
gen="$(printf '%s' "$stats" | sed -n 's/.*"generation":\([0-9]*\).*/\1/p')"
nint="$(printf '%s' "$stats" | sed -n 's/.*"intervals":\([0-9]*\).*/\1/p')"
[ -n "$gen" ] && [ -n "$nint" ] || fail "debug/stats missing generation/intervals: $stats"
[ "$gen" -ge 1 ] || fail "pre-push generation $gen, want >= 1"

# Warm a per-interval query so we can prove pushes leave it hot.
curl -fsS "$BASE/v1/search?terms=somalia&interval=0" >/dev/null || fail "warm search"

body="$(curl -fsS -X POST "$BASE/v1/push" -H 'Content-Type: application/json' \
	-d "{\"interval\":$nint,\"label\":\"pushed\",\"docs\":[
	      {\"id\":900001,\"keywords\":[\"somalia\",\"election\"]},
	      {\"id\":900002,\"keywords\":[\"storm\",\"flood\"]}]}")" \
	|| fail "POST /v1/push"
want=$((gen + 1))
case "$body" in
*"\"generation\":$want"*) echo "serve-smoke: OK push (generation $gen -> $want)" ;;
*) fail "push response missing generation $want: $body" ;;
esac

# Replaying the same interval is a 409, and the generation holds.
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/push" \
	-d "{\"interval\":$nint,\"docs\":[{\"id\":900003,\"keywords\":[\"x\"]}]}")"
[ "$code" = 409 ] || fail "replayed push returned $code, want 409"

# The hot generation-keyed query was evicted by the push...
hdr="$(curl -fsS -D - -o /dev/null "$BASE/v1/stable-clusters?k=3")"
case "$hdr" in
*"X-Cache: miss"*) echo "serve-smoke: OK push evicted generation-keyed entry" ;;
*) fail "post-push stable-clusters was not a cache miss: $hdr" ;;
esac
# ...and re-caches under the new generation...
hdr="$(curl -fsS -D - -o /dev/null "$BASE/v1/stable-clusters?k=3")"
case "$hdr" in
*"X-Cache: hit"*) ;;
*) fail "post-push stable-clusters did not re-cache: $hdr" ;;
esac
# ...while the per-interval query stayed hot across the push.
hdr="$(curl -fsS -D - -o /dev/null "$BASE/v1/search?terms=somalia&interval=0")"
case "$hdr" in
*"X-Cache: hit"*) echo "serve-smoke: OK per-interval entry survived push" ;;
*) fail "push evicted an interval-immutable search entry: $hdr" ;;
esac

# /metrics speaks Prometheus text format and its counters agree with
# the traffic this script just generated: the timeseries route was hit
# exactly once above, and the histogram _count moves with the counter.
metrics="$(curl -fsS "$BASE/metrics")" || fail "GET /metrics"
case "$metrics" in
*'# TYPE http_requests_total counter'*) ;;
*) fail "/metrics missing http_requests_total TYPE line" ;;
esac
tscount="$(printf '%s\n' "$metrics" | sed -n 's/^http_requests_total{route="timeseries",status="200"} //p')"
[ "$tscount" = 1 ] || fail "http_requests_total{route=timeseries} = '$tscount', want 1"
hcount="$(printf '%s\n' "$metrics" | sed -n 's/^http_request_duration_seconds_count{route="timeseries"} //p')"
[ "$hcount" = 1 ] || fail "duration histogram count for timeseries = '$hcount', want 1"
hits="$(printf '%s\n' "$metrics" | sed -n 's/^cache_requests_total{state="hit"} //p')"
[ -n "$hits" ] && [ "$hits" -ge 3 ] || fail "cache hit counter '$hits', want >= 3"
echo "serve-smoke: OK /metrics (route counters match traffic)"

# Counters are monotone: another query, then the counter must have advanced.
curl -fsS "$BASE/v1/timeseries?keyword=somalia" >/dev/null || fail "second timeseries"
ts2="$(curl -fsS "$BASE/metrics" | sed -n 's/^http_requests_total{route="timeseries",status="200"} //p')"
[ "$ts2" = 2 ] || fail "timeseries counter did not advance: '$ts2', want 2"
echo "serve-smoke: OK /metrics counters advance"

# ?trace=1 returns span timings and bypasses the cache.
hdr_body="$(curl -fsS -D - "$BASE/v1/stable-clusters?k=3&trace=1")"
case "$hdr_body" in
*"X-Cache: bypass"*) ;;
*) fail "traced query did not bypass the cache" ;;
esac
case "$hdr_body" in
*'"trace":'*'"request"'*) echo "serve-smoke: OK trace block" ;;
*) fail "traced query has no trace block" ;;
esac

# The new interval is queryable and the envelope reports the new generation.
body="$(curl -fsS "$BASE/v1/search?terms=somalia&interval=$nint")" || fail "search pushed interval"
case "$body" in
*"\"generation\":$want"*) echo "serve-smoke: OK pushed interval queryable at generation $want" ;;
*) fail "pushed-interval search missing generation $want: $body" ;;
esac

# SIGTERM drains cleanly: process exits 0 and logs the drain.
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
[ "$EXIT" = 0 ] || fail "blogserved exited $EXIT after SIGTERM"
grep -q 'drained; exiting' "$LOG" || fail "no drain message in log"
trap 'rm -f "$LOG"; rm -rf "$BINDIR"' EXIT
echo "serve-smoke: PASS (clean drain)"
