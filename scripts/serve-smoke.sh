#!/bin/sh
# serve-smoke: boot blogserved on the synthetic demo corpus, curl every
# endpoint, check the cache and admission headers, and assert a clean
# SIGTERM drain. `make serve-smoke` runs this; CI's examples job runs
# that target, so the serving layer cannot drift from its routes, its
# readiness contract, or its shutdown behavior.
set -eu

PORT="${SERVE_SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:$PORT"
LOG="$(mktemp)"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/blogserved"

fail() {
	echo "serve-smoke: FAIL: $1" >&2
	echo "--- server log ---" >&2
	cat "$LOG" >&2
	exit 1
}

echo "serve-smoke: building blogserved"
go build -o "$BIN" ./cmd/blogserved

"$BIN" -demo -addr "127.0.0.1:$PORT" 2>"$LOG" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -f "$LOG"; rm -rf "$BINDIR"' EXIT

# /healthz must answer while the corpus may still be loading; /readyz
# flips to 200 when the session attaches.
for i in $(seq 1 50); do
	if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
	[ "$i" = 50 ] && fail "healthz never came up"
	sleep 0.2
done
for i in $(seq 1 100); do
	if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then break; fi
	[ "$i" = 100 ] && fail "readyz never became ready"
	sleep 0.2
done
echo "serve-smoke: ready"

# Every query endpoint answers 200 with a JSON body.
check() {
	path="$1"; needle="$2"
	body="$(curl -fsS "$BASE$path")" || fail "GET $path"
	case "$body" in
	*"$needle"*) ;;
	*) fail "GET $path: body missing $needle: $body" ;;
	esac
	echo "serve-smoke: OK $path"
}
check '/v1/stable-clusters?k=3' '"paths"'
check '/v1/stable-clusters?variant=normalized&k=3' '"paths"'
check '/v1/stable-clusters?variant=diverse&k=3&mode=prefix' '"paths"'
check '/v1/timeseries?keyword=somalia' '"counts"'
check '/v1/bursts?keyword=somalia' '"bursts"'
check '/v1/search?terms=somalia&interval=0' '"ids"'
check '/v1/refine?query=somalia&interval=0' '"keywords"'
check '/v1/correlations?keyword=somalia&interval=0&n=3' '"correlations"'
check '/debug/stats' '"engine"'

# Describe a real path: pull the first node id out of stable-clusters.
node="$(curl -fsS "$BASE/v1/stable-clusters?k=1" | sed -n 's/.*"nodes":\[\([0-9]*\).*/\1/p')"
[ -n "$node" ] || fail "could not extract a node id"
check "/v1/describe?nodes=$node" '"description"'

# The repeat of a hot query must be a cache hit.
hdr="$(curl -fsS -D - -o /dev/null "$BASE/v1/stable-clusters?k=3")"
case "$hdr" in
*"X-Cache: hit"*) echo "serve-smoke: OK cache hit" ;;
*) fail "repeated query was not a cache hit: $hdr" ;;
esac

# Bad parameters are 400, not 500.
code="$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/stable-clusters?algorithm=astar")"
[ "$code" = 400 ] || fail "bad algorithm returned $code, want 400"

# SIGTERM drains cleanly: process exits 0 and logs the drain.
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
[ "$EXIT" = 0 ] || fail "blogserved exited $EXIT after SIGTERM"
grep -q 'drained; exiting' "$LOG" || fail "no drain message in log"
trap 'rm -f "$LOG"; rm -rf "$BINDIR"' EXIT
echo "serve-smoke: PASS (clean drain)"
