#!/bin/sh
# shard-smoke: boot two blogserved shard servers on interval slices of
# the demo corpus plus a scatter-gather coordinator fanning out to
# them, assert a cross-boundary stable-cluster answer that matches an
# unsharded server's, push an interval through the coordinator
# (asserting the composite generation bump and exact generation-keyed
# cache eviction), check the per-shard /debug/stats rows, and drain all
# three cleanly. `make shard-smoke` runs this; CI's examples job runs
# that target, so the sharded deployment shape cannot drift.
set -eu

P0="${SHARD_SMOKE_PORT:-18180}"
P1=$((P0 + 1))
P2=$((P0 + 2))
P3=$((P0 + 3))
S0="http://127.0.0.1:$P0"   # shard server 0: intervals 0:4
S1="http://127.0.0.1:$P1"   # shard server 1: intervals 4:7
CO="http://127.0.0.1:$P2"   # coordinator over S0,S1
UN="http://127.0.0.1:$P3"   # unsharded reference server
LOG0="$(mktemp)"; LOG1="$(mktemp)"; LOG2="$(mktemp)"; LOG3="$(mktemp)"
BINDIR="$(mktemp -d)"
BIN="$BINDIR/blogserved"

fail() {
	echo "shard-smoke: FAIL: $1" >&2
	for f in "$LOG0" "$LOG1" "$LOG2" "$LOG3"; do
		echo "--- $f ---" >&2
		cat "$f" >&2
	done
	exit 1
}

echo "shard-smoke: building blogserved"
go build -o "$BIN" ./cmd/blogserved

"$BIN" -demo -intervals 0:4 -addr "127.0.0.1:$P0" 2>"$LOG0" &
PID0=$!
"$BIN" -demo -intervals 4:7 -addr "127.0.0.1:$P1" 2>"$LOG1" &
PID1=$!
"$BIN" -demo -addr "127.0.0.1:$P3" 2>"$LOG3" &
PID3=$!
# The coordinator waits for both shards' /readyz itself (-shards-wait).
"$BIN" -shards "127.0.0.1:$P0,127.0.0.1:$P1" -addr "127.0.0.1:$P2" 2>"$LOG2" &
PID2=$!
trap 'kill "$PID0" "$PID1" "$PID2" "$PID3" 2>/dev/null || true; rm -f "$LOG0" "$LOG1" "$LOG2" "$LOG3"; rm -rf "$BINDIR"' EXIT

ready() {
	base="$1"; name="$2"
	for i in $(seq 1 150); do
		if curl -fsS "$base/readyz" >/dev/null 2>&1; then return 0; fi
		[ "$i" = 150 ] && fail "$name never became ready"
		sleep 0.2
	done
}
ready "$S0" "shard 0"
ready "$S1" "shard 1"
ready "$UN" "unsharded reference"
ready "$CO" "coordinator"
echo "shard-smoke: all ready"

# The coordinator's partition map: 7 intervals across 2 shards.
meta="$(curl -fsS "$CO/v1/meta")" || fail "GET /v1/meta"
case "$meta" in
*'"intervals":7'*) echo "shard-smoke: OK meta (7 intervals)" ;;
*) fail "coordinator meta: $meta" ;;
esac

# The scatter-gather answer must equal the unsharded server's, byte
# for byte — bounded top-k paths cross the 0:4/4:7 boundary, so this
# exercises shard-local solves, the boundary window and the merge.
# Solver work counters legitimately differ (partials sum), so the
# flat "stats" object is stripped before comparing.
for q in '/v1/stable-clusters?k=3&l=2' '/v1/stable-clusters?k=3' \
	'/v1/timeseries?keyword=somalia' '/v1/bursts?keyword=somalia' \
	'/v1/search?terms=somalia&interval=5' '/v1/correlations?keyword=somalia&interval=6&n=3'; do
	a="$(curl -fsS "$CO$q" | sed 's/"stats":{[^}]*}//')" || fail "coordinator GET $q"
	b="$(curl -fsS "$UN$q" | sed 's/"stats":{[^}]*}//')" || fail "unsharded GET $q"
	[ "$a" = "$b" ] || fail "divergence on $q:
  coordinator: $a
  unsharded:   $b"
	echo "shard-smoke: OK equivalence $q"
done

# Per-shard observability: /debug/stats carries one row per shard.
stats="$(curl -fsS "$CO/debug/stats")" || fail "GET /debug/stats"
case "$stats" in
*'"shards":['*'"shard":0'*'"shard":1'*) echo "shard-smoke: OK per-shard stats rows" ;;
*) fail "debug/stats missing shard rows: $stats" ;;
esac

# Warm one generation-keyed and one interval-scoped entry.
curl -fsS "$CO/v1/stable-clusters?k=3&l=2" >/dev/null
curl -fsS "$CO/v1/search?terms=somalia&interval=0" >/dev/null
hdr="$(curl -fsS -D - -o /dev/null "$CO/v1/stable-clusters?k=3&l=2")"
case "$hdr" in
*"X-Cache: hit"*) ;;
*) fail "hot coordinator query was not a cache hit: $hdr" ;;
esac

# Push the next global interval (7) through the coordinator: routed to
# the tail shard, composite generation 1 -> 2.
body="$(curl -fsS -X POST "$CO/v1/push" -H 'Content-Type: application/json' \
	-d '{"interval":7,"label":"pushed","docs":[
	      {"id":900001,"keywords":["somalia","election"]},
	      {"id":900002,"keywords":["storm","flood"]}]}')" \
	|| fail "POST /v1/push"
case "$body" in
*'"generation":2'*) echo "shard-smoke: OK push (composite generation 1 -> 2)" ;;
*) fail "push response missing generation 2: $body" ;;
esac

# Replay is out of order at the coordinator: 409.
code="$(curl -s -o /dev/null -w '%{http_code}' -X POST "$CO/v1/push" \
	-d '{"interval":7,"docs":[{"id":900003,"keywords":["x"]}]}')"
[ "$code" = 409 ] || fail "replayed push returned $code, want 409"

# Generation-keyed entry evicted, interval-scoped entry survived.
hdr="$(curl -fsS -D - -o /dev/null "$CO/v1/stable-clusters?k=3&l=2")"
case "$hdr" in
*"X-Cache: miss"*) echo "shard-smoke: OK push evicted generation-keyed entry" ;;
*) fail "post-push stable-clusters was not a miss: $hdr" ;;
esac
hdr="$(curl -fsS -D - -o /dev/null "$CO/v1/search?terms=somalia&interval=0")"
case "$hdr" in
*"X-Cache: hit"*) echo "shard-smoke: OK per-interval entry survived push" ;;
*) fail "push evicted an interval-immutable search entry: $hdr" ;;
esac

# The coordinator's /metrics scrape carries its own families — solve
# routing, per-shard labeled gather-latency histograms and mirrored
# shard gauges — alongside the serving layer's. The scattered solves
# above must show under route="scatter", and both shards must appear
# as labels with populated hop histograms.
metrics="$(curl -fsS "$CO/metrics")" || fail "GET coordinator /metrics"
scatter="$(printf '%s\n' "$metrics" | sed -n 's/^coordinator_solves_total{route="scatter"} //p')"
[ -n "$scatter" ] && [ "$scatter" -ge 1 ] || fail "coordinator_solves_total{route=scatter} = '$scatter', want >= 1"
# The push above went to the tail shard only: shard 0 is still at
# generation 1, shard 1 advanced to 2.
for sh in 0 1; do
	gen="$(printf '%s\n' "$metrics" | sed -n "s/^shard_generation{shard=\"$sh\"} //p")"
	want=$((sh + 1))
	[ "$gen" = "$want" ] || fail "shard_generation{shard=$sh} = '$gen', want $want"
	hops="$(printf '%s\n' "$metrics" | sed -n "s/^coordinator_shard_gather_duration_seconds_count{shard=\"$sh\",method=\"solve\"} //p")"
	[ -n "$hops" ] && [ "$hops" -ge 1 ] || fail "no solve hops recorded for shard $sh"
done
echo "shard-smoke: OK coordinator /metrics (per-shard labels, scatter accounting)"

# A request id handed to the coordinator reaches the shard servers'
# access logs — one id correlates the whole fan-out.
curl -fsS -H 'X-Request-ID: smoke-trace-1' "$CO/v1/timeseries?keyword=storm" >/dev/null \
	|| fail "traced timeseries"
sleep 0.2
grep -q 'smoke-trace-1' "$LOG0" || grep -q 'smoke-trace-1' "$LOG1" \
	|| fail "request id never reached a shard access log"
echo "shard-smoke: OK request id propagated to shards"

# The pushed interval is queryable through the coordinator and landed
# on the tail shard (its own width grew to 4).
body="$(curl -fsS "$CO/v1/search?terms=somalia&interval=7")" || fail "search pushed interval"
case "$body" in
*'"generation":2'*) echo "shard-smoke: OK pushed interval queryable at generation 2" ;;
*) fail "pushed-interval search missing generation 2: $body" ;;
esac
meta="$(curl -fsS "$S1/v1/meta")" || fail "GET shard 1 meta"
case "$meta" in
*'"intervals":4'*) echo "shard-smoke: OK push routed to tail shard" ;;
*) fail "tail shard did not grow: $meta" ;;
esac

# All three drain cleanly on SIGTERM.
for pid in "$PID2" "$PID0" "$PID1" "$PID3"; do
	kill -TERM "$pid"
	EXIT=0
	wait "$pid" || EXIT=$?
	[ "$EXIT" = 0 ] || fail "pid $pid exited $EXIT after SIGTERM"
done
grep -q 'drained; exiting' "$LOG2" || fail "no drain message in coordinator log"
trap 'rm -f "$LOG0" "$LOG1" "$LOG2" "$LOG3"; rm -rf "$BINDIR"' EXIT
echo "shard-smoke: PASS (clean drain)"
