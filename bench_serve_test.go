package blogclusters_test

// Load benchmarks for the HTTP serving layer (internal/server), driven
// through httptest against one shared Engine session. External test
// package: internal/server imports the root package, so these cannot
// live in the in-package bench file.

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"

	blogclusters "repro"
	"repro/internal/server"
)

// --- Serving layer (internal/server over httptest) ---

// benchServer boots the HTTP serving layer over a small seeded
// news-week session, pre-materializing the artifacts so per-request
// cost is measured, not first-build cost.
func benchServer(b *testing.B, cacheBytes int) *httptest.Server {
	b.Helper()
	eng, err := blogclusters.Open(context.Background(), blogclusters.FromGenerator(blogclusters.NewsWeekCorpus(2007, 60)))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	if _, err := eng.Clusters(context.Background()); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Index(context.Background()); err != nil {
		b.Fatal(err)
	}
	srv := server.New(server.Config{
		CacheBytes: cacheBytes,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	srv.SetEngine(eng)
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchGet(b *testing.B, client *http.Client, url string) {
	b.Helper()
	resp, err := client.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServeTimeSeries measures a light index-backed query through
// the full HTTP stack: "cached" replays the LRU entry, "uncached"
// (cache disabled) pays param analysis + the Engine index lookup +
// JSON rendering every time. The gap is what the response cache buys
// on hot keyword queries.
func BenchmarkServeTimeSeries(b *testing.B) {
	for _, v := range []struct {
		name       string
		cacheBytes int
	}{
		{"cached", server.DefaultCacheBytes},
		{"uncached", -1},
	} {
		b.Run(v.name, func(b *testing.B) {
			ts := benchServer(b, v.cacheBytes)
			url := ts.URL + "/v1/timeseries?keyword=somalia"
			benchGet(b, ts.Client(), url) // warm engine + cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchGet(b, ts.Client(), url)
			}
		})
	}
}

// BenchmarkServeStableClusters measures the heavy aggregate query:
// "cached" is the hot path (one solver run total, then replays),
// "uncached" re-runs the BFS solver per request over the memoized
// graph — the repeated-aggregate-query cost the response cache exists
// to absorb.
func BenchmarkServeStableClusters(b *testing.B) {
	for _, v := range []struct {
		name       string
		cacheBytes int
	}{
		{"cached", server.DefaultCacheBytes},
		{"uncached", -1},
	} {
		b.Run(v.name, func(b *testing.B) {
			ts := benchServer(b, v.cacheBytes)
			url := ts.URL + "/v1/stable-clusters?k=5"
			benchGet(b, ts.Client(), url)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchGet(b, ts.Client(), url)
			}
		})
	}
}

// BenchmarkServeParallelHot measures the single-flight cache under
// contention: GOMAXPROCS client goroutines hammering one hot query.
func BenchmarkServeParallelHot(b *testing.B) {
	ts := benchServer(b, server.DefaultCacheBytes)
	url := ts.URL + "/v1/stable-clusters?k=5"
	benchGet(b, ts.Client(), url)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchGet(b, ts.Client(), url)
		}
	})
}
