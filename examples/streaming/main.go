// Streaming demonstrates live ingest end to end: the session opens
// over day 0 only, and every later blog day arrives through
// Engine.Push — the keyword index gains a delta segment, the memoized
// cluster sets and graph grow by exactly one interval (Section 4.6's
// incremental regime), and the generation counter ticks. A Stream
// rides along, maintaining the top-k stable clusters from the same
// per-day cluster sets, so nothing is ever recomputed for past days.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	blogclusters "repro"
)

func main() {
	// Ten days; a story ("election") that heats up mid-stream.
	cfg := blogclusters.CorpusConfig{
		Seed:            42,
		NumIntervals:    10,
		BackgroundPosts: 300,
		BackgroundVocab: 1200,
		WordsPerPost:    7,
		Events: []blogclusters.CorpusEvent{
			{Name: "election", Phases: []blogclusters.CorpusPhase{{
				Keywords:  []string{"election", "ballot", "recount"},
				Intervals: []int{3, 4, 5, 6, 7, 8, 9},
				Posts:     80,
			}}},
			{Name: "storm", Phases: []blogclusters.CorpusPhase{{
				Keywords:  []string{"storm", "flood"},
				Intervals: []int{0, 1, 2},
				Posts:     70,
			}}},
		},
	}
	full, err := blogclusters.GenerateCorpus(cfg)
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}

	// The session starts with only the first day loaded; the rest of
	// the corpus plays the role of the live crawl.
	day0 := &blogclusters.Collection{Intervals: full.Intervals[:1:1]}
	ctx := context.Background()
	eng, err := blogclusters.Open(ctx, blogclusters.FromCollection(day0))
	if err != nil {
		log.Fatalf("open engine: %v", err)
	}
	defer eng.Close()

	stream, err := blogclusters.NewStream(blogclusters.StreamOptions{
		K: 3, L: 3, Gap: 1, Theta: 0.1,
	})
	if err != nil {
		log.Fatalf("new stream: %v", err)
	}

	for day := 0; day < len(full.Intervals); day++ {
		if day > 0 {
			// The day's posts arrive: one Push appends a delta segment
			// and extends every cached artifact in place of a rebuild.
			gen, err := eng.Push(ctx, full.Intervals[day])
			if err != nil {
				log.Fatalf("day %d push: %v", day, err)
			}
			fmt.Printf("ingested day %d (generation %d): ", day, gen)
		} else {
			fmt.Printf("opened with day 0 (generation %d): ", eng.Generation())
		}
		clusters, err := eng.ClustersAt(ctx, day)
		if err != nil {
			log.Fatalf("day %d clusters: %v", day, err)
		}
		if err := stream.Push(clusters); err != nil {
			log.Fatalf("day %d stream push: %v", day, err)
		}
		top := stream.TopK()
		fmt.Printf("%d clusters, ", len(clusters))
		if len(top) == 0 {
			fmt.Println("no length-3 stable clusters yet")
			continue
		}
		fmt.Printf("best length-3 path weight %.3f (of %d tracked)\n", top[0].Weight, len(top))
	}

	fmt.Println("\nfinal top stable clusters:")
	for i, p := range stream.TopK() {
		fmt.Printf("#%d %s\n", i+1, p)
	}
	st := stream.Stats()
	fmt.Printf("\nwork: %d node reads, %d node writes, %d heap offers, peak %d paths in window\n",
		st.NodeReads, st.NodeWrites, st.HeapConsiders, st.PeakStatePaths)
	es := eng.Stats()
	fmt.Printf("session: generation %d, %d pushes, %d index segments\n",
		es.Generation, es.Pushes, es.IndexSegments)
}
