// Streaming demonstrates the online algorithms of Section 4.6: blog
// days arrive one at a time and the top-k stable clusters are
// maintained incrementally, without recomputing past intervals.
//
// The Engine session owns cluster generation (each day's clusters come
// from its memoized per-interval sets); the Stream owns the
// incremental stable-cluster state the pushes feed.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	blogclusters "repro"
)

func main() {
	// Ten days; a story ("election") that heats up mid-stream.
	cfg := blogclusters.CorpusConfig{
		Seed:            42,
		NumIntervals:    10,
		BackgroundPosts: 300,
		BackgroundVocab: 1200,
		WordsPerPost:    7,
		Events: []blogclusters.CorpusEvent{
			{Name: "election", Phases: []blogclusters.CorpusPhase{{
				Keywords:  []string{"election", "ballot", "recount"},
				Intervals: []int{3, 4, 5, 6, 7, 8, 9},
				Posts:     80,
			}}},
			{Name: "storm", Phases: []blogclusters.CorpusPhase{{
				Keywords:  []string{"storm", "flood"},
				Intervals: []int{0, 1, 2},
				Posts:     70,
			}}},
		},
	}
	ctx := context.Background()
	eng, err := blogclusters.Open(ctx, blogclusters.FromGenerator(cfg))
	if err != nil {
		log.Fatalf("open engine: %v", err)
	}
	defer eng.Close()

	stream, err := blogclusters.NewStream(blogclusters.StreamOptions{
		K: 3, L: 3, Gap: 1, Theta: 0.1,
	})
	if err != nil {
		log.Fatalf("new stream: %v", err)
	}

	for day := range eng.Collection().Intervals {
		// Each day: fetch the new interval's clusters from the session
		// and push them into the stream.
		clusters, err := eng.ClustersAt(ctx, day)
		if err != nil {
			log.Fatalf("day %d clusters: %v", day, err)
		}
		if err := stream.Push(clusters); err != nil {
			log.Fatalf("day %d push: %v", day, err)
		}
		top := stream.TopK()
		fmt.Printf("after day %d (%d clusters): ", day, len(clusters))
		if len(top) == 0 {
			fmt.Println("no length-3 stable clusters yet")
			continue
		}
		fmt.Printf("best length-3 path weight %.3f (of %d tracked)\n", top[0].Weight, len(top))
	}

	fmt.Println("\nfinal top stable clusters:")
	for i, p := range stream.TopK() {
		fmt.Printf("#%d %s\n", i+1, p)
	}
	st := stream.Stats()
	fmt.Printf("\nwork: %d node reads, %d node writes, %d heap offers, peak %d paths in window\n",
		st.NodeReads, st.NodeWrites, st.HeapConsiders, st.PeakStatePaths)
}
