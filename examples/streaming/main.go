// Streaming demonstrates the online algorithms of Section 4.6: blog
// days arrive one at a time and the top-k stable clusters are
// maintained incrementally, without recomputing past intervals.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	blogclusters "repro"
)

func main() {
	// Ten days; a story ("election") that heats up mid-stream.
	cfg := blogclusters.CorpusConfig{
		Seed:            42,
		NumIntervals:    10,
		BackgroundPosts: 300,
		BackgroundVocab: 1200,
		WordsPerPost:    7,
		Events: []blogclusters.CorpusEvent{
			{Name: "election", Phases: []blogclusters.CorpusPhase{{
				Keywords:  []string{"election", "ballot", "recount"},
				Intervals: []int{3, 4, 5, 6, 7, 8, 9},
				Posts:     80,
			}}},
			{Name: "storm", Phases: []blogclusters.CorpusPhase{{
				Keywords:  []string{"storm", "flood"},
				Intervals: []int{0, 1, 2},
				Posts:     70,
			}}},
		},
	}
	col, err := blogclusters.GenerateCorpus(cfg)
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}

	stream, err := blogclusters.NewStream(blogclusters.StreamOptions{
		K: 3, L: 3, Gap: 1, Theta: 0.1,
	})
	if err != nil {
		log.Fatalf("new stream: %v", err)
	}

	for day := range col.Intervals {
		// Each day: run cluster generation for the new interval only,
		// then push its clusters into the stream.
		clusters, err := blogclusters.IntervalClusters(col, day, blogclusters.ClusterOptions{})
		if err != nil {
			log.Fatalf("day %d clusters: %v", day, err)
		}
		if err := stream.Push(clusters); err != nil {
			log.Fatalf("day %d push: %v", day, err)
		}
		top := stream.TopK()
		fmt.Printf("after day %d (%d clusters): ", day, len(clusters))
		if len(top) == 0 {
			fmt.Println("no length-3 stable clusters yet")
			continue
		}
		fmt.Printf("best length-3 path weight %.3f (of %d tracked)\n", top[0].Weight, len(top))
	}

	fmt.Println("\nfinal top stable clusters:")
	for i, p := range stream.TopK() {
		fmt.Printf("#%d %s\n", i+1, p)
	}
	st := stream.Stats()
	fmt.Printf("\nwork: %d node reads, %d node writes, %d heap offers, peak %d paths in window\n",
		st.NodeReads, st.NodeWrites, st.HeapConsiders, st.PeakStatePaths)
}
