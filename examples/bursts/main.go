// Bursts demonstrates the information-burst detection that BlogScope
// (the paper's host system) uses to point at events of interest, and
// how bursts line up with the stable clusters the paper mines: a
// keyword bursts exactly when its cluster appears.
//
// One Engine session serves every keyword: the index is built on the
// first TimeSeries call and the per-interval totals the burst detector
// divides by are computed once, then shared by all five queries.
//
// Run with: go run ./examples/bursts
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	blogclusters "repro"
)

func main() {
	ctx := context.Background()
	eng, err := blogclusters.Open(ctx,
		blogclusters.FromGenerator(blogclusters.NewsWeekCorpus(2007, 500)))
	if err != nil {
		log.Fatalf("open engine: %v", err)
	}
	defer eng.Close()

	for _, kw := range []string{"beckham", "liverpool", "somalia", "iphon", "cisco"} {
		series, err := eng.TimeSeries(ctx, kw)
		if err != nil {
			log.Fatalf("timeseries(%s): %v", kw, err)
		}
		var cells []string
		for _, c := range series {
			cells = append(cells, fmt.Sprintf("%4d", c))
		}
		bursts, err := eng.Bursts(ctx, kw)
		if err != nil {
			log.Fatalf("bursts(%s): %v", kw, err)
		}
		var spans []string
		for _, b := range bursts {
			spans = append(spans, fmt.Sprintf("Jan %d-%d", b.Start+6, b.End+6))
		}
		burstStr := "steady all week"
		if len(spans) > 0 {
			burstStr = "bursts " + strings.Join(spans, ", ")
		}
		fmt.Printf("%-10s %s  → %s\n", kw, strings.Join(cells, " "), burstStr)
	}

	fmt.Println("\nnote how the burst windows match the figures: beckham on Jan 12")
	fmt.Println("(Figure 2), the FA cup with its gap (Figure 4), the iPhone launch")
	fmt.Println("drifting into the Cisco suit (Figure 15), and somalia — a story")
	fmt.Println("that is *stable*, not bursty (Figure 16): exactly why the paper")
	fmt.Println("mines stable clusters instead of relying on bursts alone.")
}
