// Bursts demonstrates the information-burst detection that BlogScope
// (the paper's host system) uses to point at events of interest, and
// how bursts line up with the stable clusters the paper mines: a
// keyword bursts exactly when its cluster appears.
//
// Run with: go run ./examples/bursts
package main

import (
	"fmt"
	"log"
	"strings"

	blogclusters "repro"
)

func main() {
	col, err := blogclusters.GenerateCorpus(blogclusters.NewsWeekCorpus(2007, 500))
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}
	idx, err := blogclusters.BuildIndex(col)
	if err != nil {
		log.Fatalf("index: %v", err)
	}

	for _, kw := range []string{"beckham", "liverpool", "somalia", "iphon", "cisco"} {
		series := idx.TimeSeries(kw)
		var cells []string
		for _, c := range series {
			cells = append(cells, fmt.Sprintf("%4d", c))
		}
		bursts, err := blogclusters.DetectBursts(idx, kw)
		if err != nil {
			log.Fatalf("bursts(%s): %v", kw, err)
		}
		var spans []string
		for _, b := range bursts {
			spans = append(spans, fmt.Sprintf("Jan %d-%d", b.Start+6, b.End+6))
		}
		burstStr := "steady all week"
		if len(spans) > 0 {
			burstStr = "bursts " + strings.Join(spans, ", ")
		}
		fmt.Printf("%-10s %s  → %s\n", kw, strings.Join(cells, " "), burstStr)
	}

	fmt.Println("\nnote how the burst windows match the figures: beckham on Jan 12")
	fmt.Println("(Figure 2), the FA cup with its gap (Figure 4), the iPhone launch")
	fmt.Println("drifting into the Cisco suit (Figure 15), and somalia — a story")
	fmt.Println("that is *stable*, not bursty (Figure 16): exactly why the paper")
	fmt.Println("mines stable clusters instead of relying on bursts alone.")
}
