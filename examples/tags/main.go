// Tags applies the pipeline to a social-tagging stream (flickr.com /
// del.icio.us style), the generalization the paper's introduction
// promises: "related processing ... can be conducted on tags as well."
// A tagged item is a document whose bag of words is its tag set; no
// stemming or stop-word removal is wanted, so the collection is built
// directly and handed to the Engine via FromCollection.
//
// Run with: go run ./examples/tags
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	blogclusters "repro"
)

func main() {
	ctx := context.Background()
	eng, err := blogclusters.Open(ctx, blogclusters.FromCollection(buildTagStream()),
		// Tag vocabularies are small; keep weak pairs out with a higher
		// correlation bar.
		blogclusters.WithClusterOptions(blogclusters.ClusterOptions{RhoThreshold: 0.25}),
		blogclusters.WithGraphOptions(blogclusters.GraphOptions{Gap: 1, Theta: 0.1}))
	if err != nil {
		log.Fatalf("open engine: %v", err)
	}
	defer eng.Close()
	col := eng.Collection()
	fmt.Printf("tag stream: %d tagged items over %d weeks\n", col.NumDocs(), len(col.Intervals))

	sets, err := eng.Clusters(ctx)
	if err != nil {
		log.Fatalf("cluster generation: %v", err)
	}
	for week, cs := range sets {
		fmt.Printf("week %d:\n", week)
		for _, c := range cs {
			fmt.Printf("  %v\n", c.Keywords)
		}
	}

	g, err := eng.Graph(ctx)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.NormalizedStableClusters(ctx, 3, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost stable tag communities (normalized, lmin=2):")
	for i, p := range res.Paths {
		fmt.Printf("#%d stability %.3f over %d weeks:\n", i+1, p.Weight, p.Length+1)
		for _, id := range p.Nodes {
			fmt.Printf("   week %d: %v\n", g.Interval(id), g.Cluster(id).Keywords)
		}
	}
}

// buildTagStream fabricates six weeks of photo tags: a persistent
// "travel japan" community, a seasonal "snow ski" community in the
// early weeks, and random single-tag noise.
func buildTagStream() *blogclusters.Collection {
	rng := rand.New(rand.NewSource(7))
	noise := []string{"cat", "sunset", "friends", "food", "street", "music",
		"portrait", "flower", "beach", "car", "city", "night"}
	japan := []string{"travel", "japan", "tokyo", "temple"}
	ski := []string{"snow", "ski", "alps"}

	col := &blogclusters.Collection{Intervals: make([]blogclusters.Interval, 6)}
	var id int64
	add := func(week int, tags []string) {
		col.Intervals[week].Docs = append(col.Intervals[week].Docs,
			blogclusters.Document{ID: id, Interval: week, Keywords: tags})
		id++
	}
	for week := 0; week < 6; week++ {
		col.Intervals[week].Index = week
		// Background: items with 2-3 random tags.
		for i := 0; i < 150; i++ {
			n := 2 + rng.Intn(2)
			tags := map[string]struct{}{}
			for len(tags) < n {
				tags[noise[rng.Intn(len(noise))]] = struct{}{}
			}
			var ts []string
			for t := range tags {
				ts = append(ts, t)
			}
			add(week, ts)
		}
		// The japan community posts every week.
		for i := 0; i < 40; i++ {
			var ts []string
			for _, t := range japan {
				if rng.Float64() < 0.85 {
					ts = append(ts, t)
				}
			}
			if len(ts) < 2 {
				ts = japan[:2]
			}
			add(week, ts)
		}
		// The ski community only in weeks 0-2.
		if week <= 2 {
			for i := 0; i < 35; i++ {
				var ts []string
				for _, t := range ski {
					if rng.Float64() < 0.9 {
						ts = append(ts, t)
					}
				}
				if len(ts) < 2 {
					ts = ski[:2]
				}
				add(week, ts)
			}
		}
	}
	return col
}
