// Refine demonstrates the query-refinement application from the
// paper's introduction: when a search keyword falls inside a keyword
// cluster for an interval, the cluster's other keywords are good
// refinement candidates; and the strongest pairwise correlations of a
// keyword make good single-term suggestions.
//
// The Engine session builds the day's clusters once; all three queries
// share them.
//
// Run with: go run ./examples/refine
package main

import (
	"context"
	"fmt"
	"log"

	blogclusters "repro"
)

func main() {
	ctx := context.Background()
	eng, err := blogclusters.Open(ctx,
		blogclusters.FromGenerator(blogclusters.NewsWeekCorpus(2007, 500)))
	if err != nil {
		log.Fatalf("open engine: %v", err)
	}
	defer eng.Close()

	// Pretend a user searches BlogScope for "stem" on Jan 8 (interval 2).
	const day = 2
	for _, query := range []string{"stem cells", "somalia", "pancake"} {
		refinements, err := eng.Refine(ctx, query, day)
		if err != nil {
			log.Fatalf("refine(%s): %v", query, err)
		}
		if refinements == nil {
			fmt.Printf("query %-12q → no cluster on day %d; nothing to suggest\n", query, day)
			continue
		}
		fmt.Printf("query %-12q → refine with %v\n", query, refinements)
	}
}
