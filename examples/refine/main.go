// Refine demonstrates the query-refinement application from the
// paper's introduction: when a search keyword falls inside a keyword
// cluster for an interval, the cluster's other keywords are good
// refinement candidates; and the strongest pairwise correlations of a
// keyword make good single-term suggestions.
//
// Run with: go run ./examples/refine
package main

import (
	"fmt"
	"log"

	blogclusters "repro"
)

func main() {
	col, err := blogclusters.GenerateCorpus(blogclusters.NewsWeekCorpus(2007, 500))
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}

	// Pretend a user searches BlogScope for "stem" on Jan 8 (interval 2).
	const day = 2
	clusters, err := blogclusters.IntervalClusters(col, day, blogclusters.ClusterOptions{})
	if err != nil {
		log.Fatalf("clusters: %v", err)
	}
	for _, query := range []string{"stem cells", "somalia", "pancake"} {
		refinements := blogclusters.RefineQuery(clusters, query)
		if refinements == nil {
			fmt.Printf("query %-12q → no cluster on day %d; nothing to suggest\n", query, day)
			continue
		}
		fmt.Printf("query %-12q → refine with %v\n", query, refinements)
	}
}
