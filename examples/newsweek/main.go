// Newsweek reproduces the paper's qualitative study (Section 5.3) on a
// synthetic stand-in for the BlogScope week of Jan 6–12 2007. The five
// injected events carry the same temporal signatures as the paper's
// figures:
//
//	Figure 1  — stem-cell discovery burst on Jan 8
//	Figure 2  — Beckham-to-LA-Galaxy burst on Jan 12
//	Figure 4  — FA-cup story with a two-day gap (Jan 6, 9, 10)
//	Figure 15 — iPhone topic drifting into the Cisco lawsuit
//	Figure 16 — Somalia conflict persisting all seven days
//
// The study needs two cluster graphs (gap 2 for the FA-cup bridge,
// gap 0 for the full-week stories); the Engine session builds the
// cluster sets once and memoizes a graph per option set, so both
// graphs share one Section 3 pass.
//
// Run with: go run ./examples/newsweek
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	blogclusters "repro"
	"repro/internal/corpus"
)

func main() {
	ctx := context.Background()
	gap0 := blogclusters.GraphOptions{Gap: 0, Theta: 0.1}
	eng, err := blogclusters.Open(ctx,
		blogclusters.FromGenerator(blogclusters.NewsWeekCorpus(2007, 600)),
		blogclusters.WithGraphOptions(gap0))
	if err != nil {
		log.Fatalf("open engine: %v", err)
	}
	defer eng.Close()
	col := eng.Collection()
	labels := corpus.DayLabels(time.Date(2007, 1, 6, 0, 0, 0, 0, time.UTC), 7)
	fmt.Printf("synthetic blogosphere week: %d posts over %d days\n\n", col.NumDocs(), len(col.Intervals))

	sets, err := eng.Clusters(ctx)
	if err != nil {
		log.Fatalf("cluster generation: %v", err)
	}

	// Figures 1 and 2: single-day event clusters.
	fmt.Println("=== single-day clusters (cf. paper Figures 1 and 2) ===")
	show := func(day int, keyword string) {
		for _, c := range sets[day] {
			if c.Contains(keyword) {
				fmt.Printf("%s: %v\n", labels[day], c.Keywords)
				return
			}
		}
		fmt.Printf("%s: no cluster containing %q\n", labels[day], keyword)
	}
	show(2, "stem")    // Jan 8: stem-cell discovery
	show(6, "beckham") // Jan 12: Beckham joins LA Galaxy

	// Figure 4: a story with a gap — the FA cup is discussed Jan 6,
	// vanishes Jan 7–8, returns Jan 9–10. With g = 2 the stable-cluster
	// machinery bridges the gap. GraphWith memoizes this second graph
	// alongside the session's default gap-0 one.
	fmt.Println("\n=== stable cluster across a gap (cf. Figure 4, g=2) ===")
	g2, err := eng.GraphWith(ctx, blogclusters.GraphOptions{Gap: 2, Theta: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.StableClustersOn(ctx, blogclusters.GraphOptions{Gap: 2, Theta: 0.1}, "bfs", 50, 4)
	if err != nil {
		log.Fatal(err)
	}
	found := false
	for _, p := range res.Paths {
		if g2.Cluster(p.Nodes[0]).Contains("liverpool") {
			fmt.Println(describeWithLabels(g2, p, labels))
			found = true
			break
		}
	}
	if !found {
		fmt.Println("(FA-cup path not in the top-50 — background chatter outweighed it this seed)")
	}

	// Figures 15 and 16: topic drift and a full-week story, gap 0 (the
	// session default).
	fmt.Println("\n=== full-week stable clusters (cf. Figures 15 and 16) ===")
	g0, err := eng.Graph(ctx)
	if err != nil {
		log.Fatal(err)
	}
	full, err := eng.StableClusters(ctx, "bfs", 3, blogclusters.FullPaths)
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range full.Paths {
		fmt.Printf("#%d %s\n", i+1, describeWithLabels(g0, p, labels))
	}

	// The iPhone drift: a 4-day path over Jan 9–12 in which the cluster
	// contents shift from launch features to the trademark lawsuit —
	// the paper's point that consecutive-interval affinity tracks
	// evolving stories.
	fmt.Println("\n=== topic drift (cf. Figure 15) ===")
	drift, err := eng.StableClusters(ctx, "bfs", 12, 3)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range drift.Paths {
		if g0.Cluster(p.Nodes[0]).Contains("iphon") {
			fmt.Println(describeWithLabels(g0, p, labels))
			break
		}
	}
}

func describeWithLabels(g *blogclusters.ClusterGraph, p blogclusters.Path, labels []string) string {
	s := fmt.Sprintf("weight %.3f, length %d:", p.Weight, p.Length)
	for _, id := range p.Nodes {
		s += fmt.Sprintf("\n  %-11s %v", labels[g.Interval(id)], g.Cluster(id).Keywords)
	}
	return s
}
