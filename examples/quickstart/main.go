// Quickstart: generate a small synthetic blog corpus with one embedded
// story, extract per-day keyword clusters, and find the most stable
// cluster path across the week.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	blogclusters "repro"
)

func main() {
	// A 5-day corpus: background chatter plus one story ("rocket
	// launch") discussed on every day.
	cfg := blogclusters.CorpusConfig{
		Seed:            1,
		NumIntervals:    5,
		BackgroundPosts: 400,
		BackgroundVocab: 1500,
		WordsPerPost:    7,
		Events: []blogclusters.CorpusEvent{{
			Name: "launch",
			Phases: []blogclusters.CorpusPhase{{
				Keywords:  []string{"rocket", "launch", "orbit", "payload"},
				Intervals: []int{0, 1, 2, 3, 4},
				Posts:     90,
			}},
		}},
	}
	corpus, err := blogclusters.GenerateCorpus(cfg)
	if err != nil {
		log.Fatalf("generate corpus: %v", err)
	}
	fmt.Printf("corpus: %d posts over %d days\n", corpus.NumDocs(), len(corpus.Intervals))

	// Section 3: keyword graph → χ²/ρ pruning → biconnected components.
	sets, err := blogclusters.AllIntervalClusters(corpus, blogclusters.ClusterOptions{})
	if err != nil {
		log.Fatalf("cluster generation: %v", err)
	}
	for day, cs := range sets {
		fmt.Printf("day %d: %d keyword clusters\n", day, len(cs))
	}

	// Section 4: cluster graph + kl-stable clusters.
	g, err := blogclusters.BuildClusterGraph(sets, blogclusters.GraphOptions{Gap: 0, Theta: 0.1})
	if err != nil {
		log.Fatalf("cluster graph: %v", err)
	}
	fmt.Printf("cluster graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	res, err := blogclusters.StableClusters(g, "bfs", 3, blogclusters.FullPaths)
	if err != nil {
		log.Fatalf("stable clusters: %v", err)
	}
	fmt.Printf("\ntop stable clusters spanning all %d days:\n", len(corpus.Intervals))
	for i, p := range res.Paths {
		fmt.Printf("#%d %s\n", i+1, blogclusters.DescribePath(g, p))
	}
	if len(res.Paths) == 0 {
		fmt.Println("(none found — try lowering theta)")
	}
}
