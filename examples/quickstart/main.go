// Quickstart: generate a small synthetic blog corpus with one embedded
// story, open an Engine session over it, and ask for the per-day
// keyword clusters and the most stable cluster path across the week.
//
// The Engine is the session API: the corpus is loaded once by Open,
// and each stage artifact (cluster sets, cluster graph) is built
// lazily on first use and reused by every later query.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	blogclusters "repro"
)

func main() {
	// A 5-day corpus: background chatter plus one story ("rocket
	// launch") discussed on every day.
	cfg := blogclusters.CorpusConfig{
		Seed:            1,
		NumIntervals:    5,
		BackgroundPosts: 400,
		BackgroundVocab: 1500,
		WordsPerPost:    7,
		Events: []blogclusters.CorpusEvent{{
			Name: "launch",
			Phases: []blogclusters.CorpusPhase{{
				Keywords:  []string{"rocket", "launch", "orbit", "payload"},
				Intervals: []int{0, 1, 2, 3, 4},
				Posts:     90,
			}},
		}},
	}
	ctx := context.Background()
	eng, err := blogclusters.Open(ctx, blogclusters.FromGenerator(cfg),
		blogclusters.WithGraphOptions(blogclusters.GraphOptions{Gap: 0, Theta: 0.1}))
	if err != nil {
		log.Fatalf("open engine: %v", err)
	}
	defer eng.Close()
	corpus := eng.Collection()
	fmt.Printf("corpus: %d posts over %d days\n", corpus.NumDocs(), len(corpus.Intervals))

	// Section 3: keyword graph → χ²/ρ pruning → biconnected components.
	sets, err := eng.Clusters(ctx)
	if err != nil {
		log.Fatalf("cluster generation: %v", err)
	}
	for day, cs := range sets {
		fmt.Printf("day %d: %d keyword clusters\n", day, len(cs))
	}

	// Section 4: cluster graph + kl-stable clusters. The graph is built
	// once here and shared with the query below.
	g, err := eng.Graph(ctx)
	if err != nil {
		log.Fatalf("cluster graph: %v", err)
	}
	fmt.Printf("cluster graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	res, err := eng.StableClusters(ctx, "bfs", 3, blogclusters.FullPaths)
	if err != nil {
		log.Fatalf("stable clusters: %v", err)
	}
	fmt.Printf("\ntop stable clusters spanning all %d days:\n", len(corpus.Intervals))
	for i, p := range res.Paths {
		desc, err := eng.Describe(ctx, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("#%d %s\n", i+1, desc)
	}
	if len(res.Paths) == 0 {
		fmt.Println("(none found — try lowering theta)")
	}
}
