package blogclusters_test

// Benchmarks for the shard-by-interval scatter-gather coordinator
// (internal/shard). External test package for the same reason as the
// serving benches: internal/shard imports the root package.

import (
	"context"
	"fmt"
	"testing"

	blogclusters "repro"
	"repro/internal/shard"
)

// benchShardCollection is the demo news week with a heavier background
// so the shard solves have real work to scatter.
func benchShardCollection(b *testing.B) *blogclusters.Collection {
	b.Helper()
	col, err := blogclusters.GenerateCorpus(blogclusters.NewsWeekCorpus(2007, 120))
	if err != nil {
		b.Fatal(err)
	}
	return col
}

// BenchmarkShardScatterGather measures the decomposed bounded top-k
// (shard-local solves + boundary windows + deterministic merge) at 1,
// 2 and 4 in-process shards. hot is the steady state: the coordinator's
// per-generation caches (node-id offsets, window engines) are warm and
// each iteration pays gather + solve + merge. cold is first-query-
// after-open: shard engines, partition map and scatter caches all
// build inside the iteration — the price of a fresh deployment or a
// post-push generation.
func BenchmarkShardScatterGather(b *testing.B) {
	ctx := context.Background()
	col := benchShardCollection(b)
	spec := blogclusters.QuerySpec{Variant: "topk", K: 5, L: 2}

	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d/hot", shards), func(b *testing.B) {
			c, err := shard.OpenInProcess(ctx, col, shards, shard.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if _, err := c.Solve(ctx, spec); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Solve(ctx, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("shards=%d/cold", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, err := shard.OpenInProcess(ctx, col, shards, shard.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Solve(ctx, spec); err != nil {
					b.Fatal(err)
				}
				c.Close()
			}
		})
	}
}
