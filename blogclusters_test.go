package blogclusters

import (
	"context"
	"strings"
	"testing"
)

// openTestEngine opens a session over the collection; closed via
// t.Cleanup. The facade tests exercise the pipeline through the Engine,
// the package's one query path.
func openTestEngine(t *testing.T, c *Collection, opts ...Option) *Engine {
	t.Helper()
	eng, err := Open(context.Background(), FromCollection(c), opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// endToEndCorpus builds a small corpus with one persistent event and
// one single-burst event.
func endToEndCorpus(t *testing.T) *Collection {
	t.Helper()
	c, err := GenerateCorpus(CorpusConfig{
		Seed: 21, NumIntervals: 4, BackgroundPosts: 250,
		BackgroundVocab: 900, WordsPerPost: 6,
		Events: []CorpusEvent{
			{Name: "persistent", Phases: []CorpusPhase{{
				Keywords:  []string{"alpha", "beta", "gamma"},
				Intervals: []int{0, 1, 2, 3},
				Posts:     70, KeywordProb: 0.95,
			}}},
			{Name: "burst", Phases: []CorpusPhase{{
				Keywords:  []string{"delta", "epsilon"},
				Intervals: []int{1},
				Posts:     60, KeywordProb: 0.95,
			}}},
		},
	})
	if err != nil {
		t.Fatalf("GenerateCorpus: %v", err)
	}
	return c
}

func TestEndToEndPipeline(t *testing.T) {
	c := endToEndCorpus(t)
	ctx := context.Background()
	eng := openTestEngine(t, c, WithGraphOptions(GraphOptions{Gap: 0, Theta: 0.1}))
	sets, err := eng.Clusters(ctx)
	if err != nil {
		t.Fatalf("Clusters: %v", err)
	}
	if len(sets) != 4 {
		t.Fatalf("got %d interval cluster sets, want 4", len(sets))
	}
	// The persistent event must be clustered in every interval.
	findEvent := func(cs []Cluster, kw string) *Cluster {
		for i := range cs {
			if cs[i].Contains(kw) {
				return &cs[i]
			}
		}
		return nil
	}
	for i, cs := range sets {
		ev := findEvent(cs, "alpha")
		if ev == nil {
			t.Fatalf("interval %d: persistent event not clustered; clusters: %v", i, cs)
		}
		if !ev.Contains("beta") || !ev.Contains("gamma") {
			t.Errorf("interval %d: event cluster incomplete: %v", i, ev.Keywords)
		}
	}
	if burst := findEvent(sets[1], "delta"); burst == nil || !burst.Contains("epsilon") {
		t.Errorf("burst event not clustered in interval 1")
	}
	if leak := findEvent(sets[0], "delta"); leak != nil {
		t.Errorf("burst event leaked into interval 0: %v", leak.Keywords)
	}

	g, err := eng.Graph(ctx)
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	res, err := eng.StableClusters(ctx, "bfs", 1, FullPaths)
	if err != nil {
		t.Fatalf("StableClusters: %v", err)
	}
	if len(res.Paths) != 1 {
		t.Fatalf("no full-length stable cluster found")
	}
	// The winning stable path must be the persistent event in all 4 days.
	for _, id := range res.Paths[0].Nodes {
		if !g.Cluster(id).Contains("alpha") {
			t.Errorf("stable path node %d is not the persistent event: %v", id, g.Cluster(id).Keywords)
		}
	}
	desc := DescribePath(g, res.Paths[0])
	if !strings.Contains(desc, "alpha") || !strings.Contains(desc, "t3") {
		t.Errorf("DescribePath output incomplete:\n%s", desc)
	}
}

func TestAlgorithmsAgreeEndToEnd(t *testing.T) {
	c := endToEndCorpus(t)
	ctx := context.Background()
	eng := openTestEngine(t, c, WithGraphOptions(GraphOptions{Gap: 1, Theta: 0.1}))
	want, err := eng.StableClusters(ctx, "brute", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"bfs", "dfs", "auto"} {
		got, err := eng.StableClusters(ctx, alg, 3, 2)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if len(got.Paths) != len(want.Paths) {
			t.Fatalf("%s returned %d paths, brute %d", alg, len(got.Paths), len(want.Paths))
		}
		for i := range got.Paths {
			if diff := got.Paths[i].Weight - want.Paths[i].Weight; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s path %d weight %g != brute %g", alg, i, got.Paths[i].Weight, want.Paths[i].Weight)
			}
		}
	}
	if _, err := eng.StableClusters(ctx, "nope", 1, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestNormalizedFacade(t *testing.T) {
	c := endToEndCorpus(t)
	eng := openTestEngine(t, c, WithGraphOptions(GraphOptions{Gap: 0, Theta: 0.1}))
	res, err := eng.NormalizedStableClusters(context.Background(), 2, 2)
	if err != nil {
		t.Fatalf("NormalizedStableClusters: %v", err)
	}
	for _, p := range res.Paths {
		if p.Length < 2 {
			t.Errorf("path %v shorter than lmin", p)
		}
		if p.Weight <= 0 || p.Weight > 1+1e-9 {
			t.Errorf("stability %g outside (0,1]", p.Weight)
		}
	}
}

func TestStreamFacade(t *testing.T) {
	c := endToEndCorpus(t)
	eng := openTestEngine(t, c)
	sets, err := eng.Clusters(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(StreamOptions{K: 2, L: 1, Gap: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range sets {
		if err := s.Push(cs); err != nil {
			t.Fatal(err)
		}
	}
	if len(s.TopK()) == 0 {
		t.Error("stream found no stable pairs")
	}
}

func TestRefineQuery(t *testing.T) {
	clusters := []Cluster{
		{ID: 0, Interval: 0, Keywords: []string{"cell", "fluid", "stem"}},
		{ID: 1, Interval: 0, Keywords: []string{"beckham", "galaxi"}},
	}
	got := RefineQuery(clusters, "Stems") // stems → stem after analysis
	if len(got) != 2 || got[0] != "cell" || got[1] != "fluid" {
		t.Errorf("RefineQuery = %v, want [cell fluid]", got)
	}
	if RefineQuery(clusters, "unrelated") != nil {
		t.Error("unclustered keyword returned refinements")
	}
	if RefineQuery(clusters, "") != nil {
		t.Error("empty query returned refinements")
	}
}

func TestDiverseStableClustersFacade(t *testing.T) {
	c := endToEndCorpus(t)
	eng := openTestEngine(t, c, WithGraphOptions(GraphOptions{Gap: 0, Theta: 0.1}))
	res, err := eng.DiverseStableClusters(context.Background(), 3, 2, DistinctEndpoints)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, p := range res.Paths {
		s := p.Nodes[0]
		e := p.Nodes[len(p.Nodes)-1]
		if seen[s] || seen[e] {
			t.Errorf("path %v shares an endpoint with a better path", p)
		}
		seen[s], seen[e] = true, true
	}
}

func TestIndexAndBurstsFacade(t *testing.T) {
	c, err := GenerateCorpus(CorpusConfig{
		Seed: 4, NumIntervals: 8, BackgroundPosts: 200,
		BackgroundVocab: 400, WordsPerPost: 5,
		Events: []CorpusEvent{{Name: "flash", Phases: []CorpusPhase{{
			Keywords:  []string{"comet", "telescope"},
			Intervals: []int{4, 5},
			Posts:     80, KeywordProb: 0.95,
		}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := OpenIndexStore(context.Background(), c, IndexOptions{})
	if err != nil {
		t.Fatalf("OpenIndexStore: %v", err)
	}
	defer idx.Close()
	series, err := idx.TimeSeries("comet")
	if err != nil {
		t.Fatal(err)
	}
	if series[4] == 0 || series[5] == 0 || series[0] != 0 {
		t.Fatalf("TimeSeries(comet) = %v, want activity only at 4-5", series)
	}
	bursts, err := DetectBurstsIn(idx, "comet")
	if err != nil {
		t.Fatalf("DetectBurstsIn: %v", err)
	}
	if len(bursts) != 1 || bursts[0].Start != 4 || bursts[0].End != 5 {
		t.Errorf("bursts = %v, want one burst at [4,5]", bursts)
	}
	// A background keyword must not burst.
	vocab, err := idx.Vocabulary(0)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := DetectBurstsIn(idx, vocab[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range quiet {
		if b.Length() > 2 {
			t.Errorf("background keyword %q bursts broadly: %v", vocab[0], quiet)
		}
	}
}

func TestIntersectionAffinityFacade(t *testing.T) {
	c := endToEndCorpus(t)
	ctx := context.Background()
	eng := openTestEngine(t, c)
	g, err := eng.GraphWith(ctx, GraphOptions{Gap: 0, Theta: 1, Affinity: "intersection"})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxWeight() > 1 {
		t.Errorf("intersection weights not normalized: max %g", g.MaxWeight())
	}
	if _, err := eng.GraphWith(ctx, GraphOptions{Affinity: "cosine"}); err == nil {
		t.Error("unknown affinity accepted")
	}
}
