package blogclusters

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"runtime"

	"repro/internal/clustergraph"
	"repro/internal/cooccur"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/diskstore"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/stats"
)

// Engine is the stateful, session-oriented entry point to the whole
// pipeline — the shape of the paper's BlogScope system, which loads a
// corpus once and answers many analysis queries over it. Open loads
// (or generates) the corpus; every stage artifact downstream of it —
// the keyword index, the per-interval cluster sets, the cluster
// graph(s), the per-interval keyword graphs and the burst totals — is
// materialized lazily on first use, memoized, and shared by all
// subsequent queries. Builds are single-flight: concurrent first
// queries wait for one build instead of duplicating it, and
// EngineStats counts exactly how many times each stage ran.
//
// The session is LIVE: Push appends one new interval, extending the
// index with a delta segment and every memoized artifact incrementally
// — the new interval's clusters are built, cached cluster graphs grow
// by one interval, burst totals gain one entry — never by rebuilding
// from scratch. Each Push advances a monotonic generation
// (Engine.Generation); artifacts belong to the generation they were
// built under, and queries always see a consistent generation snapshot
// because the whole snapshot is swapped atomically.
//
// All methods are safe for concurrent use. Every query takes a
// context; cancellation propagates into the long-running internals
// (worker pools, external sort merges, the solvers, disk segment
// builds), which poll it at their loop boundaries. Closing the Engine
// cancels in-flight builds and releases the index backend.
type Engine struct {
	cfg engineConfig

	// state is the current generation's snapshot: the corpus and every
	// generation-scoped artifact memo. Push builds a successor snapshot
	// and swaps the pointer; in-flight queries keep the snapshot they
	// loaded, so they observe one generation end to end.
	state atomic.Pointer[engineState]
	// pushMu serializes Push (generations are a total order).
	pushMu sync.Mutex

	// root is canceled by Close; every query context is joined with it.
	root context.Context
	stop context.CancelFunc
	// closeMu orders Close against index-build completion: builds
	// register their store under it before returning, so either Close
	// sees the store and releases it, or the builder sees closed and
	// releases it itself — a store can never slip through the gap.
	closeMu      sync.Mutex
	closed       bool
	ownedReaders []IndexReader

	// intervalSets memoizes single-interval cluster sets. Intervals are
	// immutable once pushed, so this cache is generation-independent and
	// lives on the Engine, shared by every snapshot.
	intervalMu   sync.Mutex
	intervalSets map[int]*memo[[]Cluster]
	// kwGraphs memoizes per-interval keyword graphs — also
	// generation-independent (each belongs to one immutable interval).
	kwMu     sync.Mutex
	kwGraphs map[int]*memo[*KeywordGraph]

	// planner learns per-shape solver costs and picks the algorithm for
	// auto queries (see internal/plan); nil never — Open always sets it.
	planner *plan.Planner

	queries     atomic.Int64
	pushes      atomic.Int64
	compactions atomic.Int64
	timings     stageTimings
	// compacting gates the background fold (at most one in flight);
	// compactWG lets Close wait it out.
	compacting atomic.Bool
	compactWG  sync.WaitGroup
}

// engineState is one generation's snapshot. Everything here is either
// immutable or a single-flight memo; Push never mutates a published
// snapshot — it builds the next one and swaps the Engine's pointer.
type engineState struct {
	gen int64
	col *corpus.Collection // nil for cluster-set sources

	index  *memo[*index.Store]
	sets   *memo[[][]Cluster]
	totals *memo[[]int64]

	graphsMu sync.Mutex
	graphs   map[GraphOptions]*memo[*ClusterGraph]
}

func newEngineState(gen int64, col *corpus.Collection) *engineState {
	return &engineState{
		gen:    gen,
		col:    col,
		index:  &memo[*index.Store]{},
		sets:   &memo[[][]Cluster]{},
		totals: &memo[[]int64]{},
		graphs: map[GraphOptions]*memo[*ClusterGraph]{},
	}
}

// engineConfig is the resolved option set of one Engine.
type engineConfig struct {
	cluster  ClusterOptions
	graph    GraphOptions
	index    IndexOptions
	progress func(StageEvent)
	// planOff disables the cost-based planner: auto queries fall back
	// to the registry default instead of a learned choice.
	planOff bool
	// parallelism is the solver worker count for stable-cluster
	// queries; 0 means GOMAXPROCS, 1 forces the sequential path.
	parallelism int
}

// Option configures an Engine at Open time.
type Option func(*engineConfig)

// WithClusterOptions sets the Section 3 pipeline options used when the
// per-interval cluster sets are materialized.
func WithClusterOptions(o ClusterOptions) Option {
	return func(c *engineConfig) { c.cluster = o }
}

// WithGraphOptions sets the default cluster-graph options. Queries use
// the graph built with these options unless they ask for an explicit
// variant via GraphWith/StableClustersOn.
func WithGraphOptions(o GraphOptions) Option {
	return func(c *engineConfig) { c.graph = o }
}

// WithIndexOptions selects and configures the keyword-index backend
// materialized by index-backed queries (Search, TimeSeries, Bursts)
// and grown by Push.
func WithIndexOptions(o IndexOptions) Option {
	return func(c *engineConfig) { c.index = o }
}

// WithPlanMode selects how auto-algorithm stable-cluster queries pick
// their solver: "auto" (the default) uses the session's cost-based
// planner, which explores the candidate algorithms once per graph
// shape and then exploits the cheapest observed one; "off" disables
// planning and always runs the registry default. Unrecognized values
// behave like "auto".
func WithPlanMode(mode string) Option {
	return func(c *engineConfig) { c.planOff = mode == "off" }
}

// WithSolverParallelism sets the worker count the stable-cluster
// solvers fan out to. 0 (the default) uses GOMAXPROCS; 1 forces the
// sequential reference path; values beyond GOMAXPROCS are clamped by
// the solver.
func WithSolverParallelism(n int) Option {
	return func(c *engineConfig) { c.parallelism = n }
}

// WithProgress registers a hook invoked at the start and end of every
// stage build (corpus load, index, clusters, graph, keyword graph) and
// of every ingest transition ("push", "graph-extend", "compact") —
// this is the Watch channel for live sessions: a monitor receives the
// push-started event, the per-artifact extension events and the
// push-finished event carrying the new generation. The hook must be
// safe for concurrent use; it is called on the goroutine running the
// build.
func WithProgress(fn func(StageEvent)) Option {
	return func(c *engineConfig) { c.progress = fn }
}

// StageEvent describes one stage-build transition for progress hooks.
type StageEvent struct {
	// Stage names the artifact: "corpus", "index", "clusters", "graph",
	// "kwgraph", "totals", "interval-clusters" — or the ingest
	// transitions "push", "graph-extend" and "compact".
	Stage string
	// Done is false for the build-started event, true for the finished
	// one.
	Done bool
	// Duration is the build's wall-clock time (finished events only).
	Duration time.Duration
	// Err is the build error, if any (finished events only).
	Err error
	// Generation is the engine generation the event was emitted under;
	// a finished "push" event carries the NEW generation.
	Generation int64
}

// Source names where an Engine's corpus comes from. Construct one with
// FromCollection, FromJSONL, FromJSONLFile, FromGenerator or
// FromClusterSets.
type Source struct {
	col    *corpus.Collection
	reader io.Reader
	path   string
	gen    *CorpusConfig
	sets   [][]Cluster
}

// FromCollection serves an already-loaded collection. The Engine does
// not copy it; the caller must not mutate it afterwards.
func FromCollection(c *Collection) Source { return Source{col: c} }

// FromJSONL reads a JSONL document stream at Open time.
func FromJSONL(r io.Reader) Source { return Source{reader: r} }

// FromJSONLFile opens and reads a JSONL corpus file at Open time.
func FromJSONLFile(path string) Source { return Source{path: path} }

// FromGenerator synthesizes a corpus at Open time (the BlogScope-data
// substitution; see DESIGN.md).
func FromGenerator(cfg CorpusConfig) Source { return Source{gen: &cfg} }

// FromClusterSets starts the session at the Section 4 boundary:
// per-interval cluster sets stand in for the corpus, so graph- and
// path-level queries work while corpus-backed ones (Search,
// TimeSeries, Bursts, Correlations, Push) return ErrNoCorpus. This is
// the saved-clusters workflow of cmd/blogstable.
func FromClusterSets(sets [][]Cluster) Source { return Source{sets: sets} }

// ErrNoCorpus is returned by corpus-backed queries on an Engine opened
// from cluster sets alone.
var ErrNoCorpus = errors.New("blogclusters: engine opened from cluster sets; no corpus available")

// ErrEngineClosed is returned by queries issued after Close.
var ErrEngineClosed = errors.New("blogclusters: engine is closed")

// ErrOutOfOrderInterval is returned by Push when the interval's index
// is not exactly the next one: intervals are an append-only temporal
// sequence, so interval m can only arrive once intervals 0..m-1 are
// in.
var ErrOutOfOrderInterval = errors.New("blogclusters: pushed interval is not the next interval")

// ErrMalformedInterval is returned by Push for intervals that fail
// validation: a document claiming a different interval, a negative or
// duplicate document id, or a keyword with NUL/newline bytes (which
// the disk segment encoding forbids).
var ErrMalformedInterval = errors.New("blogclusters: malformed interval")

// ErrInvalidQuery marks query-validation failures — an interval
// outside the corpus, a query term with no analyzable keyword, an
// unknown solver algorithm. It is the solver core's sentinel, so a
// validation failure raised anywhere between the HTTP layer's
// QuerySpec parsing and a solver's Request check matches the same
// errors.Is test; callers serving remote clients (internal/server)
// map it to a client error (400) instead of sniffing message text.
var ErrInvalidQuery = core.ErrInvalidRequest

// Open starts a session: the corpus is loaded (or generated)
// immediately; everything downstream is built lazily by the first
// query that needs it. Close the Engine when done.
func Open(ctx context.Context, src Source, opts ...Option) (*Engine, error) {
	var cfg engineConfig
	for _, o := range opts {
		o(&cfg)
	}
	e := &Engine{
		cfg:          cfg,
		intervalSets: map[int]*memo[[]Cluster]{},
		kwGraphs:     map[int]*memo[*KeywordGraph]{},
		planner:      plan.New(),
	}
	e.root, e.stop = context.WithCancel(context.Background())

	if src.sets != nil {
		st := newEngineState(1, nil)
		st.sets.prime(src.sets)
		e.state.Store(st)
		return e, nil
	}
	start := time.Now()
	e.emit(StageEvent{Stage: "corpus"})
	col, err := loadSource(ctx, src)
	e.emit(StageEvent{Stage: "corpus", Done: true, Duration: time.Since(start), Err: err})
	if err != nil {
		e.stop()
		return nil, err
	}
	e.state.Store(newEngineState(1, col))
	e.timings.record("corpus", time.Since(start))
	return e, nil
}

func loadSource(ctx context.Context, src Source) (*corpus.Collection, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch {
	case src.col != nil:
		return src.col, nil
	case src.reader != nil:
		return corpus.ReadJSONL(src.reader)
	case src.path != "":
		f, err := os.Open(src.path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		col, err := corpus.ReadJSONL(f)
		if err != nil {
			return nil, fmt.Errorf("blogclusters: read %s: %w", src.path, err)
		}
		return col, nil
	case src.gen != nil:
		return corpus.Generate(*src.gen)
	default:
		return nil, errors.New("blogclusters: empty Source (use FromCollection, FromJSONL, FromJSONLFile, FromGenerator or FromClusterSets)")
	}
}

// Close cancels in-flight builds, waits out a background compaction,
// releases the index backend (removing temporary disk segments, if
// built) and marks the Engine closed. Close is idempotent; queries
// issued afterwards return ErrEngineClosed.
func (e *Engine) Close() error {
	e.closeMu.Lock()
	if e.closed {
		e.closeMu.Unlock()
		return nil
	}
	e.closed = true
	e.stop()
	readers := e.ownedReaders
	e.ownedReaders = nil
	e.closeMu.Unlock()
	// The fold goroutine may be blocked inside the store; root is
	// canceled so it unwinds promptly, and waiting outside closeMu
	// avoids deadlocking against anything it still needs.
	e.compactWG.Wait()
	var first error
	for _, r := range readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Collection returns the corpus of the current generation (nil for
// cluster-set sources). Callers must treat it as read-only; Push
// publishes a grown snapshot rather than mutating this one.
func (e *Engine) Collection() *Collection { return e.state.Load().col }

// Generation returns the monotonic ingest generation: 1 at Open
// (leaving 0 to mean "no session" for monitors), incremented by every
// successful Push. Response caches key dependent entries by it.
func (e *Engine) Generation() int64 { return e.state.Load().gen }

// NumIntervals returns the current corpus width (the number of
// intervals in this generation). For cluster-set sessions it is the
// number of cluster sets.
func (e *Engine) NumIntervals() int { return numIntervals(e.state.Load()) }

func numIntervals(st *engineState) int {
	if st.col != nil {
		return len(st.col.Intervals)
	}
	if sets, ok := st.sets.cached(); ok {
		return len(sets)
	}
	return 0
}

// queryCtx joins the caller's context with the Engine's lifetime, so
// either cancels the work. The returned cancel must always be called.
func (e *Engine) queryCtx(ctx context.Context) (context.Context, context.CancelFunc, error) {
	if err := e.root.Err(); err != nil {
		return nil, nil, ErrEngineClosed
	}
	e.queries.Add(1)
	jctx, cancel := context.WithCancel(ctx)
	unlink := context.AfterFunc(e.root, cancel)
	return jctx, func() { unlink(); cancel() }, nil
}

// --- live ingest ---

// Push appends one interval to the session and returns the new
// generation. The interval must be the next one (iv.Index ==
// len(Collection().Intervals), else ErrOutOfOrderInterval) and
// well-formed (ErrMalformedInterval otherwise). Materialized artifacts
// are extended incrementally for the new interval only: the index
// gains a delta segment, cached cluster graphs grow by one interval
// via clustergraph.ExtendCtx, burst totals gain one entry — a push
// never rebuilds a full-corpus artifact (EngineStats.Stages build
// counters prove it). Unbuilt artifacts simply stay unbuilt; their
// first use after the push sees the grown corpus.
//
// Normalized-affinity cluster graphs are the one exception: their
// weights were rescaled by a maximum the new interval may change, so
// they are dropped from the new generation and lazily rebuilt.
//
// Pushes are serialized; queries keep running against the previous
// generation's snapshot until the swap and are never blocked.
func (e *Engine) Push(ctx context.Context, iv Interval) (int64, error) {
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return 0, err
	}
	defer cancel()
	e.pushMu.Lock()
	defer e.pushMu.Unlock()

	cur := e.state.Load()
	if cur.col == nil {
		return 0, ErrNoCorpus
	}
	next := len(cur.col.Intervals)
	if iv.Index != next {
		return 0, fmt.Errorf("blogclusters: pushed interval %d, engine expects %d: %w", iv.Index, next, ErrOutOfOrderInterval)
	}
	if err := validateInterval(iv); err != nil {
		return 0, err
	}
	e.emit(StageEvent{Stage: "push", Generation: cur.gen})
	start := time.Now()
	newGen, err := e.push(ctx, cur, iv)
	e.emit(StageEvent{Stage: "push", Done: true, Duration: time.Since(start), Err: err, Generation: newGen})
	obs.RecorderFrom(ctx).Record("push", start, err)
	if err != nil {
		return 0, err
	}
	e.timings.record("push", time.Since(start))
	e.pushes.Add(1)
	return newGen, nil
}

// push does the work of Push after validation: build the next
// snapshot's artifacts from the current one, push the index delta
// (the only mutation shared with the current generation — done last,
// so a failed push leaves the session exactly as it was), then swap.
func (e *Engine) push(ctx context.Context, cur *engineState, iv Interval) (int64, error) {
	next := iv.Index
	newCol := &corpus.Collection{Intervals: append(cur.col.Intervals[:next:next], iv)}
	st := newEngineState(cur.gen+1, newCol)

	// Extend the cluster sets (and everything downstream of them) only
	// if they are materialized; an unbuilt artifact stays lazy.
	var newSets [][]Cluster
	setsBuilt := false
	if sets, ok := cur.sets.cached(); ok {
		setsBuilt = true
		var ivSet []Cluster
		var err error
		func() {
			defer e.stage(ctx, "interval-clusters")()
			ivSet, err = intervalClustersCtx(ctx, newCol, next, e.cfg.cluster)
		}()
		if err != nil {
			return 0, err
		}
		newSets = append(sets[:len(sets):len(sets)], ivSet)
		st.sets.prime(newSets)
	}

	// Grow each cached cluster graph by the new interval. Normalized
	// graphs cannot extend (their old weights were already rescaled);
	// they are dropped and lazily rebuilt on next use.
	if setsBuilt {
		cur.graphsMu.Lock()
		cached := make(map[GraphOptions]*ClusterGraph, len(cur.graphs))
		for opts, m := range cur.graphs {
			if g, ok := m.cached(); ok {
				cached[opts] = g
			}
		}
		cur.graphsMu.Unlock()
		for opts, g := range cached {
			aff, normalize, err := resolveAffinity(opts)
			if err != nil || normalize {
				continue
			}
			var ng *ClusterGraph
			func() {
				defer e.stage(ctx, "graph-extend")()
				ng, err = clustergraph.ExtendCtx(ctx, g, newSets, clustergraph.FromClustersOptions{
					Gap:         opts.Gap,
					Theta:       opts.Theta,
					Affinity:    aff,
					UseSimJoin:  opts.UseSimJoin,
					Parallelism: opts.Parallelism,
				})
			}()
			if err != nil {
				return 0, err
			}
			m := &memo[*ClusterGraph]{}
			m.prime(ng)
			st.graphs[opts] = m
		}
	}

	if totals, ok := cur.totals.cached(); ok {
		st.totals.prime(append(totals[:len(totals):len(totals)], int64(len(iv.Docs))))
	}

	// The index store is shared across generations (it is the mutable
	// segment set itself), so pushing into it is the point of no
	// return: do it last.
	if store, ok := cur.index.cached(); ok {
		if err := store.Push(ctx, iv); err != nil {
			return 0, err
		}
		st.index.prime(store)
		e.maybeCompact(store)
	}

	e.state.Store(st)
	// A new interval changes every graph's shape: cached plan decisions
	// describe graphs that no longer exist. Cost models survive.
	e.planner.InvalidateAll()

	// The new interval's single-interval cluster set is now immutable;
	// seed the shared cache so ClustersAt(next) is free. (Only after
	// the swap — a failed push must leave no trace of its docs.)
	if setsBuilt {
		e.intervalMu.Lock()
		if _, ok := e.intervalSets[next]; !ok {
			m := &memo[[]Cluster]{}
			m.prime(newSets[next])
			e.intervalSets[next] = m
		}
		e.intervalMu.Unlock()
	}
	return st.gen, nil
}

// maybeCompact starts the background fold when the delta count crosses
// the policy threshold and no fold is already running.
func (e *Engine) maybeCompact(store *index.Store) {
	if !store.NeedsCompaction() || !e.compacting.CompareAndSwap(false, true) {
		return
	}
	e.compactWG.Add(1)
	go func() {
		defer e.compactWG.Done()
		defer e.compacting.Store(false)
		start := time.Now()
		e.emit(StageEvent{Stage: "compact", Generation: e.Generation()})
		err := store.Compact(e.root)
		e.emit(StageEvent{Stage: "compact", Done: true, Duration: time.Since(start), Err: err, Generation: e.Generation()})
		if err == nil {
			e.timings.record("compact", time.Since(start))
			e.compactions.Add(1)
		}
	}()
}

// validateInterval rejects malformed pushes before any state changes.
func validateInterval(iv Interval) error {
	seen := make(map[int64]struct{}, len(iv.Docs))
	for _, d := range iv.Docs {
		if d.Interval != iv.Index {
			return fmt.Errorf("blogclusters: document %d claims interval %d, pushed as %d: %w", d.ID, d.Interval, iv.Index, ErrMalformedInterval)
		}
		if d.ID < 0 {
			return fmt.Errorf("blogclusters: document id %d is negative: %w", d.ID, ErrMalformedInterval)
		}
		if _, dup := seen[d.ID]; dup {
			return fmt.Errorf("blogclusters: duplicate document id %d: %w", d.ID, ErrMalformedInterval)
		}
		seen[d.ID] = struct{}{}
		for _, w := range d.Keywords {
			if strings.ContainsAny(w, "\x00\n") {
				return fmt.Errorf("blogclusters: document %d keyword %q contains NUL or newline: %w", d.ID, w, ErrMalformedInterval)
			}
		}
	}
	return nil
}

// --- stage artifacts ---

// Index materializes (once per generation lineage) and returns the
// keyword-index store. The store is owned by the Engine: do not Close
// it; Engine.Close releases it.
func (e *Engine) Index(ctx context.Context) (IndexReader, error) {
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return e.indexStore(ctx, e.state.Load())
}

// indexStore materializes the snapshot's index store. The store is the
// mutable segment set shared by successive generations: once built, a
// Push reuses it by appending a delta segment; the memo only rebuilds
// when the index had never been materialized at push time.
func (e *Engine) indexStore(ctx context.Context, st *engineState) (*index.Store, error) {
	if st.col == nil {
		return nil, ErrNoCorpus
	}
	return st.index.get(ctx, func() (*index.Store, error) {
		defer e.stage(ctx, "index")()
		// e.root (the session lifetime) bounds the disk backend's retry
		// backoff sleeps: the store outlives this query's context.
		s, err := openIndexStoreCtx(ctx, e.root, st.col, e.cfg.index)
		if err != nil {
			return nil, err
		}
		// Hand ownership to the session under closeMu: a Close that ran
		// while the build was past its last cancellation poll must not
		// leak the store (or its temp disk segments).
		e.closeMu.Lock()
		defer e.closeMu.Unlock()
		if e.closed {
			s.Close()
			return nil, ErrEngineClosed
		}
		e.ownedReaders = append(e.ownedReaders, s)
		return s, nil
	})
}

// Clusters materializes (once per generation) and returns the
// per-interval cluster sets — the Section 3 pipeline over every
// interval. The result is shared; callers must not mutate it.
func (e *Engine) Clusters(ctx context.Context) ([][]Cluster, error) {
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return e.clusters(ctx, e.state.Load())
}

// clusters is Clusters pinned to one generation snapshot, for internal
// reuse by callers that already hold a joined context.
func (e *Engine) clusters(ctx context.Context, st *engineState) ([][]Cluster, error) {
	return st.sets.get(ctx, func() ([][]Cluster, error) {
		if st.col == nil {
			return nil, ErrNoCorpus
		}
		defer e.stage(ctx, "clusters")()
		return allIntervalClustersCtx(ctx, st.col, e.cfg.cluster)
	})
}

// ClustersAt returns the cluster set of one interval. When the full
// sets are already materialized (Clusters ran, or the session was
// opened from cluster sets) it answers from them; otherwise it builds
// and memoizes just that interval — a single-day query (Refine,
// blogscope's report, streaming's day-by-day pushes) never pays for
// the whole corpus. The per-interval build is canonical, so mixing
// ClustersAt with a later Clusters yields identical slices; intervals
// are immutable once pushed, so the per-interval cache survives
// generations.
func (e *Engine) ClustersAt(ctx context.Context, interval int) ([]Cluster, error) {
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return e.clustersAt(ctx, e.state.Load(), interval)
}

// clustersAt is ClustersAt pinned to one generation snapshot, for
// internal reuse by callers that already hold a joined context.
func (e *Engine) clustersAt(ctx context.Context, st *engineState, interval int) ([]Cluster, error) {
	if sets, ok := st.sets.cached(); ok {
		if interval < 0 || interval >= len(sets) {
			return nil, fmt.Errorf("blogclusters: interval %d outside [0,%d): %w", interval, len(sets), ErrInvalidQuery)
		}
		return sets[interval], nil
	}
	if st.col == nil {
		return nil, ErrNoCorpus
	}
	if interval < 0 || interval >= len(st.col.Intervals) {
		return nil, fmt.Errorf("blogclusters: interval %d outside [0,%d): %w", interval, len(st.col.Intervals), ErrInvalidQuery)
	}
	e.intervalMu.Lock()
	m, ok := e.intervalSets[interval]
	if !ok {
		m = &memo[[]Cluster]{}
		e.intervalSets[interval] = m
	}
	e.intervalMu.Unlock()
	return m.get(ctx, func() ([]Cluster, error) {
		defer e.stage(ctx, "interval-clusters")()
		return intervalClustersCtx(ctx, st.col, interval, e.cfg.cluster)
	})
}

// ClusterSets returns the cluster sets of the intervals in [from, to),
// one slice per interval in order. Like ClustersAt it answers from the
// materialized full sets when available and builds (and memoizes) only
// the requested intervals otherwise, so a shard coordinator gathering a
// boundary window never pays for the whole corpus. The returned slices
// are shared with the session's memos; callers must not mutate them.
func (e *Engine) ClusterSets(ctx context.Context, from, to int) ([][]Cluster, error) {
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	st := e.state.Load()
	n := numIntervals(st)
	if from < 0 || to < from || to > n {
		return nil, fmt.Errorf("blogclusters: interval range [%d,%d) outside [0,%d]: %w", from, to, n, ErrInvalidQuery)
	}
	if sets, ok := st.sets.cached(); ok {
		return sets[from:to:to], nil
	}
	out := make([][]Cluster, to-from)
	for i := range out {
		cs, err := e.clustersAt(ctx, st, from+i)
		if err != nil {
			return nil, err
		}
		out[i] = cs
	}
	return out, nil
}

// DocTotals returns the per-interval document totals of the current
// generation — the denominators the burst detector divides by, and the
// series a shard coordinator concatenates to run burst detection
// globally. Computed from the keyword index (and memoized per
// generation) so it agrees exactly with Bursts.
func (e *Engine) DocTotals(ctx context.Context) ([]int64, error) {
	st := e.state.Load()
	if st.col == nil {
		return nil, ErrNoCorpus
	}
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	return e.docTotals(ctx, st)
}

// Graph materializes (once per generation) and returns the cluster
// graph built with the session's default GraphOptions.
func (e *Engine) Graph(ctx context.Context) (*ClusterGraph, error) {
	return e.GraphWith(ctx, e.cfg.graph)
}

// GraphWith returns the cluster graph for an explicit option set,
// memoized per distinct options — sessions that study several gaps or
// affinities (see examples/newsweek) share one cluster-set build
// across all of them. After a Push, graphs that were materialized are
// already extended in the new generation; ones that were not follow
// the usual lazy path over the grown corpus.
func (e *Engine) GraphWith(ctx context.Context, opts GraphOptions) (*ClusterGraph, error) {
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	st := e.state.Load()
	return e.graphWith(ctx, st, opts)
}

func (e *Engine) graphWith(ctx context.Context, st *engineState, opts GraphOptions) (*ClusterGraph, error) {
	st.graphsMu.Lock()
	m, ok := st.graphs[opts]
	if !ok {
		m = &memo[*ClusterGraph]{}
		st.graphs[opts] = m
	}
	st.graphsMu.Unlock()
	return m.get(ctx, func() (*ClusterGraph, error) {
		sets, err := e.clusters(ctx, st)
		if err != nil {
			return nil, err
		}
		defer e.stage(ctx, "graph")()
		return buildClusterGraphCtx(ctx, sets, opts)
	})
}

// kwGraph memoizes the χ²-annotated, significance-pruned keyword graph
// of one interval (the substrate of Correlations). Intervals are
// immutable, so the cache is shared across generations.
func (e *Engine) kwGraph(ctx context.Context, st *engineState, interval int) (*KeywordGraph, error) {
	if st.col == nil {
		return nil, ErrNoCorpus
	}
	if interval < 0 || interval >= len(st.col.Intervals) {
		return nil, fmt.Errorf("blogclusters: interval %d outside corpus (%d intervals): %w", interval, len(st.col.Intervals), ErrInvalidQuery)
	}
	e.kwMu.Lock()
	m, ok := e.kwGraphs[interval]
	if !ok {
		m = &memo[*KeywordGraph]{}
		e.kwGraphs[interval] = m
	}
	e.kwMu.Unlock()
	return m.get(ctx, func() (*KeywordGraph, error) {
		defer e.stage(ctx, "kwgraph")()
		kg, err := cooccur.BuildCtx(ctx, st.col, interval, interval, cooccur.BuildOptions{
			SortMemoryBudget: e.cfg.cluster.SortMemoryBudget,
			MinPairCount:     e.cfg.cluster.MinPairCount,
			Parallelism:      e.cfg.cluster.Parallelism,
			MemBudget:        e.cfg.cluster.MemBudget,
		})
		if err != nil {
			return nil, err
		}
		kg.AnnotateStats()
		pruned := kg.Prune(stats.ChiSquared95, 0) // keep all significant pairs
		return pruned, nil
	})
}

// docTotals memoizes the per-interval document totals the burst
// detector divides by, so repeated Bursts calls stop rebuilding the
// slice from the reader.
func (e *Engine) docTotals(ctx context.Context, st *engineState) ([]int64, error) {
	return st.totals.get(ctx, func() ([]int64, error) {
		r, err := e.indexStore(ctx, st)
		if err != nil {
			return nil, err
		}
		defer e.stage(ctx, "totals")()
		return intervalTotals(r), nil
	})
}

// --- queries ---

// analyzed pushes a raw query term through the corpus analyzer and
// returns its first keyword (the paper analyzes queries exactly like
// documents, so surface forms match stemmed index terms).
func analyzed(raw string) (string, error) {
	kws := NewAnalyzer().Keywords(raw)
	if len(kws) == 0 {
		return "", fmt.Errorf("blogclusters: query %q has no analyzable keyword: %w", raw, ErrInvalidQuery)
	}
	return kws[0], nil
}

// Solve answers a stable-cluster query described by a QuerySpec over
// the session's default cluster graph. It is the one dispatch path for
// all three query variants (topk, normalized, diverse): the spec is
// validated once, the algorithm is either the spec's own or — when the
// spec leaves it to "auto" — the session planner's cost-based pick for
// this graph shape, and completed planned solves feed their wall-clock
// back into the planner. The StableClusters wrappers and the HTTP
// layer both route here.
func (e *Engine) Solve(ctx context.Context, spec QuerySpec) (*Result, error) {
	return e.SolveOn(ctx, e.cfg.graph, spec)
}

// SolveOn is Solve over the graph built with an explicit option set
// (memoized like GraphWith).
func (e *Engine) SolveOn(ctx context.Context, gopts GraphOptions, spec QuerySpec) (*Result, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	g, err := e.GraphWith(ctx, gopts)
	if err != nil {
		return nil, err
	}
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()

	meta := plan.GraphMeta{
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		Intervals: g.NumIntervals(),
		Gap:       g.Gap(),
		MaxWeight: g.MaxWeight(),
	}
	algorithm := spec.Algorithm
	planned := false
	if algorithm == "" {
		if e.cfg.planOff {
			if spec.Variant == plan.VariantNormalized {
				algorithm = "normalized"
			} else {
				algorithm = core.DefaultAlgorithm
			}
		} else {
			algorithm = e.planner.Decide(spec, meta).Algorithm
			planned = true
		}
	}
	req := spec.Request(algorithm)
	// core treats 0 as the sequential path, so the "0 = GOMAXPROCS"
	// contract of WithSolverParallelism resolves here.
	req.Parallelism = e.cfg.parallelism
	if req.Parallelism == 0 {
		req.Parallelism = runtime.GOMAXPROCS(0)
	}

	start := time.Now()
	var res *Result
	if spec.Variant == plan.VariantDiverse {
		mode, merr := core.ParseDiversityMode(spec.Mode)
		if merr != nil {
			return nil, merr
		}
		res, err = core.DiverseKL(ctx, g, req, mode, 0)
	} else {
		res, err = core.Solve(ctx, g, req)
	}
	if err != nil {
		return nil, err
	}
	obs.RecorderFrom(ctx).Record("solve:"+algorithm, start, nil)
	if planned {
		e.planner.Observe(algorithm, meta, time.Since(start).Nanoseconds())
	} else {
		// Forced-algorithm solves still count toward the per-algorithm
		// work histograms (the /metrics solve-duration series), they just
		// don't teach the cost model.
		e.planner.RecordSolve(algorithm, time.Since(start).Nanoseconds())
	}
	return res, nil
}

// StableClusters answers Problem 1 (top-k highest-weight paths of
// temporal length l) over the session's default cluster graph.
// Algorithm is "auto" (or "") to let the planner choose, or one of
// "bfs", "dfs", "ta", "brute" to force a solver.
func (e *Engine) StableClusters(ctx context.Context, algorithm string, k, l int) (*Result, error) {
	return e.StableClustersOn(ctx, e.cfg.graph, algorithm, k, l)
}

// StableClustersOn is StableClusters over the graph built with an
// explicit option set (memoized like GraphWith).
func (e *Engine) StableClustersOn(ctx context.Context, gopts GraphOptions, algorithm string, k, l int) (*Result, error) {
	return e.SolveOn(ctx, gopts, QuerySpec{Algorithm: algorithm, K: k, L: l})
}

// NormalizedStableClusters answers Problem 2: the top-k paths of
// length at least lmin by stability (weight/length), over the default
// graph. The Weight field of returned paths holds the stability.
func (e *Engine) NormalizedStableClusters(ctx context.Context, k, lmin int) (*Result, error) {
	return e.Solve(ctx, QuerySpec{Variant: plan.VariantNormalized, K: k, LMin: lmin})
}

// DiverseStableClusters answers the constrained kl-variant: top-k
// paths that do not share prefixes/suffixes/endpoints per mode.
func (e *Engine) DiverseStableClusters(ctx context.Context, k, l int, mode DiversityMode) (*Result, error) {
	return e.Solve(ctx, QuerySpec{Variant: plan.VariantDiverse, K: k, L: l, Mode: mode.String()})
}

// TimeSeries returns the keyword's per-interval document frequency
// A(w). The query term is analyzed like corpus text first.
func (e *Engine) TimeSeries(ctx context.Context, keyword string) ([]int64, error) {
	kw, err := analyzed(keyword)
	if err != nil {
		return nil, err
	}
	r, err := e.Index(ctx)
	if err != nil {
		return nil, err
	}
	return r.TimeSeries(kw)
}

// Bursts returns the keyword's information bursts (Kleinberg
// two-state automaton over its document-frequency trajectory). The
// per-interval totals are computed once per generation and shared by
// every call.
func (e *Engine) Bursts(ctx context.Context, keyword string) ([]KeywordBurst, error) {
	kw, err := analyzed(keyword)
	if err != nil {
		return nil, err
	}
	st := e.state.Load()
	if st.col == nil {
		return nil, ErrNoCorpus
	}
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	r, err := e.indexStore(ctx, st)
	if err != nil {
		return nil, err
	}
	totals, err := e.docTotals(ctx, st)
	if err != nil {
		return nil, err
	}
	counts, err := r.TimeSeries(kw)
	if err != nil {
		return nil, err
	}
	// The store is shared across generations, so a concurrent push may
	// have grown it past this snapshot; trim to the snapshot's width so
	// counts and totals always line up.
	if len(counts) > len(totals) {
		counts = counts[:len(totals)]
	}
	return kleinbergBursts(counts, totals)
}

// Search returns the sorted ids of interval-i documents containing
// every given term (terms are analyzed like corpus text; terms with no
// analyzable keyword are rejected).
func (e *Engine) Search(ctx context.Context, terms []string, interval int) ([]int64, error) {
	kws := make([]string, len(terms))
	for i, t := range terms {
		kw, err := analyzed(t)
		if err != nil {
			return nil, err
		}
		kws[i] = kw
	}
	r, err := e.Index(ctx)
	if err != nil {
		return nil, err
	}
	return r.Search(kws, interval)
}

// Refine answers the introduction's query-refinement use case: the
// other keywords of the interval cluster containing the (analyzed)
// query keyword, or nil when the keyword is unclustered.
func (e *Engine) Refine(ctx context.Context, query string, interval int) ([]string, error) {
	cs, err := e.ClustersAt(ctx, interval)
	if err != nil {
		return nil, err
	}
	return RefineQuery(cs, query), nil
}

// Correlation re-exports the keyword-graph correlation record:
// a keyword associated with the query keyword, with ρ and the
// co-occurrence count.
type Correlation = cooccur.Correlated

// Correlations returns up to n keywords most strongly correlated with
// the (analyzed) query keyword in the given interval, by descending ρ
// over the χ²-significant pairs. The interval's annotated keyword
// graph is built once per session.
func (e *Engine) Correlations(ctx context.Context, keyword string, interval, n int) ([]Correlation, error) {
	kw, err := analyzed(keyword)
	if err != nil {
		return nil, err
	}
	ctx, cancel, err := e.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	kg, err := e.kwGraph(ctx, e.state.Load(), interval)
	if err != nil {
		return nil, err
	}
	return kg.StrongestCorrelations(kw, n), nil
}

// Describe renders a stable-cluster path with its keyword clusters,
// resolving cluster contents through the session's default graph. Node
// ids outside the graph fail with ErrInvalidQuery (they identify no
// cluster), so remote callers get a client error instead of a panic.
func (e *Engine) Describe(ctx context.Context, p Path) (string, error) {
	g, err := e.Graph(ctx)
	if err != nil {
		return "", err
	}
	for _, id := range p.Nodes {
		if id < 0 || id >= int64(g.NumNodes()) {
			return "", fmt.Errorf("blogclusters: node %d outside graph [0,%d): %w", id, g.NumNodes(), ErrInvalidQuery)
		}
	}
	return DescribePath(g, p), nil
}

// --- observability ---

// StageTiming is one stage's build accounting.
//
// The JSON field names are pinned by TestEngineStatsJSON: external
// consumers (the serving layer's /debug/stats, dashboards scraping it)
// parse them, so renames are breaking changes. Total marshals as
// "total_ns" to make the nanosecond unit explicit on the wire.
type StageTiming struct {
	// Builds counts completed builds of the stage ("clusters" and
	// "index" build at most once per generation lineage; "graph" and
	// "kwgraph" once per distinct option set / interval;
	// "interval-clusters", "graph-extend", "push" and "compact" count
	// ingest work).
	Builds int64 `json:"builds"`
	// Total is the cumulative wall-clock build time.
	Total time.Duration `json:"total_ns"`
}

// EngineStats is a point-in-time snapshot of the session's work.
//
// Marshals to stable JSON (field names pinned by TestEngineStatsJSON):
// this is the payload /debug/stats serves.
type EngineStats struct {
	// Generation is the ingest generation (0 at Open, +1 per Push).
	Generation int64 `json:"generation"`
	// Intervals is the current corpus width (0 for cluster-set
	// sessions before any artifacts are queried).
	Intervals int `json:"intervals"`
	// Queries counts Engine query/artifact calls issued.
	Queries int64 `json:"queries"`
	// Pushes counts successful Push calls.
	Pushes int64 `json:"pushes"`
	// Stages maps stage name → build accounting. Single-flight means
	// Stages["clusters"].Builds is 1 no matter how many goroutines
	// raced to first use — and stays 1 across pushes, which extend
	// instead of rebuilding.
	Stages map[string]StageTiming `json:"stages"`
	// IndexIO is the disk index backend's I/O counters (zero for the
	// mem backend or while the index is unbuilt).
	IndexIO diskstore.IOStats `json:"index_io"`
	// IndexCache is the disk index's block-cache accounting (zero for
	// the mem backend): residency in bytes plus hit/miss counters, the
	// source of the index_cache_* series on /metrics.
	IndexCache IndexCacheStats `json:"index_cache"`
	// IndexSegments is the live segment count (base + deltas; 0 while
	// the index is unbuilt).
	IndexSegments int `json:"index_segments"`
	// IndexCompactions counts completed background folds.
	IndexCompactions int64 `json:"index_compactions"`
	// Planner is the query planner's activity: decisions made,
	// plan-cache hits/misses/invalidations, observations absorbed and
	// picks per algorithm.
	Planner plan.Stats `json:"planner"`
}

// Stats snapshots the session counters.
func (e *Engine) Stats() EngineStats {
	st := e.state.Load()
	out := EngineStats{
		Generation:       st.gen,
		Queries:          e.queries.Load(),
		Pushes:           e.pushes.Load(),
		Stages:           e.timings.snapshot(),
		Planner:          e.planner.Stats(),
		IndexCompactions: e.compactions.Load(),
	}
	if st.col != nil {
		out.Intervals = len(st.col.Intervals)
	}
	if s, ok := st.index.cached(); ok {
		out.IndexIO = s.Stats()
		out.IndexSegments = s.NumSegments()
		hits, misses, bytes := s.CacheStats()
		out.IndexCache = IndexCacheStats{Hits: hits, Misses: misses, Bytes: bytes}
	}
	return out
}

// IndexCacheStats is the disk index's block-cache snapshot inside
// EngineStats (field names pinned by TestEngineStatsJSON).
type IndexCacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Bytes  int64 `json:"bytes"`
}

// stage emits the started event and returns the closure recording the
// finished event plus timing. Usage: defer e.stage(ctx, "clusters")().
// A traced request (obs.Recorder in ctx) additionally gets the build
// as a span — only requests that actually triggered the single-flight
// build see it, which is the honest answer: a memo hit did no work.
func (e *Engine) stage(ctx context.Context, name string) func() {
	start := time.Now()
	gen := e.Generation()
	e.emit(StageEvent{Stage: name, Generation: gen})
	return func() {
		d := time.Since(start)
		e.timings.record(name, d)
		obs.RecorderFrom(ctx).Record(name, start, nil)
		e.emit(StageEvent{Stage: name, Done: true, Duration: d, Generation: gen})
	}
}

func (e *Engine) emit(ev StageEvent) {
	if e.cfg.progress != nil {
		e.cfg.progress(ev)
	}
}

// stageTimings aggregates per-stage build counters under one lock.
type stageTimings struct {
	mu sync.Mutex
	m  map[string]StageTiming
}

func (t *stageTimings) record(name string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m == nil {
		t.m = map[string]StageTiming{}
	}
	st := t.m[name]
	st.Builds++
	st.Total += d
	t.m[name] = st
}

func (t *stageTimings) snapshot() map[string]StageTiming {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]StageTiming, len(t.m))
	for k, v := range t.m {
		out[k] = v
	}
	return out
}

// --- single-flight memoization ---

// memo is a concurrency-safe, context-aware, single-flight lazy cell.
// The first caller runs the build on its own goroutine; concurrent
// callers block until it finishes and share the result. Only successful
// results are cached: a build that fails — cancellation, a transient
// I/O fault that outlived its retries, a full disk — leaves the cell
// empty, so the next query rebuilds instead of replaying a stale error
// forever. Failure must never poison memoization: one unlucky build
// turning every later query into its echo is exactly the availability
// bug the degradation layer exists to prevent.
type memo[T any] struct {
	mu       sync.Mutex
	done     bool
	val      T
	inflight chan struct{}
	builds   atomic.Int64 // builds started; the exactly-once assertions read this
}

// prime seeds the cell with a ready value (no build).
func (m *memo[T]) prime(v T) {
	m.mu.Lock()
	m.done, m.val = true, v
	m.mu.Unlock()
}

// cached returns the value if one is resident, without building.
func (m *memo[T]) cached() (T, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.done {
		return m.val, true
	}
	var zero T
	return zero, false
}

// Builds reports how many builds were started.
func (m *memo[T]) Builds() int64 { return m.builds.Load() }

func (m *memo[T]) get(ctx context.Context, build func() (T, error)) (T, error) {
	var zero T
	for {
		m.mu.Lock()
		if m.done {
			v := m.val
			m.mu.Unlock()
			return v, nil
		}
		if ch := m.inflight; ch != nil {
			m.mu.Unlock()
			select {
			case <-ch:
				continue // re-check: done, or canceled build → retry
			case <-ctx.Done():
				return zero, ctx.Err()
			}
		}
		ch := make(chan struct{})
		m.inflight = ch
		m.builds.Add(1)
		m.mu.Unlock()

		v, err := build()
		m.mu.Lock()
		m.inflight = nil
		if err == nil {
			m.done, m.val = true, v
		}
		m.mu.Unlock()
		close(ch)
		return v, err
	}
}

// --- ctx-aware internals shared with the legacy free functions ---

// allIntervalClustersCtx is AllIntervalClusters with cancellation
// (the Engine's build path; the free function wraps it with a
// background context).
func allIntervalClustersCtx(ctx context.Context, c *Collection, opts ClusterOptions) ([][]Cluster, error) {
	m := len(c.Intervals)
	width := opts.Parallelism
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	if width == 1 || m <= 1 {
		sets := make([][]Cluster, m)
		for i := range c.Intervals {
			cs, err := intervalClustersCtx(ctx, c, i, opts)
			if err != nil {
				return nil, err
			}
			sets[i] = cs
		}
		return sets, nil
	}
	workers := width
	if m < workers {
		workers = m
	}
	inner := opts
	inner.Parallelism = width / workers
	if inner.Parallelism < 1 {
		inner.Parallelism = 1
	}
	budget := opts.MemBudget
	if budget <= 0 {
		budget = cooccur.DefaultMemBudget
	}
	inner.MemBudget = budget / workers
	if inner.MemBudget < 1 {
		inner.MemBudget = 1
	}
	sets := make([][]Cluster, m)
	if err := par.ForEachCtx(ctx, m, workers, func(i int) error {
		var err error
		sets[i], err = intervalClustersCtx(ctx, c, i, inner)
		return err
	}); err != nil {
		return nil, err
	}
	return sets, nil
}

// buildClusterGraphCtx is BuildClusterGraph with cancellation.
func buildClusterGraphCtx(ctx context.Context, sets [][]Cluster, opts GraphOptions) (*ClusterGraph, error) {
	aff, normalize, err := resolveAffinity(opts)
	if err != nil {
		return nil, err
	}
	return clustergraph.FromClustersCtx(ctx, sets, clustergraph.FromClustersOptions{
		Gap:         opts.Gap,
		Theta:       opts.Theta,
		Affinity:    aff,
		UseSimJoin:  opts.UseSimJoin,
		Normalize:   normalize,
		Parallelism: opts.Parallelism,
	})
}
