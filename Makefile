# Build, verification and benchmark entry points. `make check` is the
# tier-1 gate; `make bench` appends a perf sample to BENCH_table1.json
# so successive PRs have a trajectory to compare against.
#
# CI (.github/workflows/ci.yml) runs these same targets — build/vet/test
# on a Go version matrix, `race` and `fmt-check` as separate jobs, and a
# bench smoke run (`make bench BENCH_COUNT=1`) whose BENCH_table1.json
# is uploaded as a workflow artifact. Keep local and CI invocations
# identical by changing the targets here, not the workflow.

GO ?= go

# Benchmark sample count; CI's bench-smoke job overrides this to 1.
BENCH_COUNT ?= 3

# Pinned staticcheck build for `make staticcheck` (and CI's lint job);
# fetched through the module cache, never added to go.mod.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build check vet test race fmt-check staticcheck bench bench-gate fuzz-smoke chaos examples-smoke serve-smoke shard-smoke clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fails when any file is not gofmt-formatted (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Pinned staticcheck over the whole tree. `go run pkg@version` fetches
# the tool from the module proxy into GOMODCACHE when it is not
# already there (the pin is never added to go.mod, so a fresh CI
# runner whose restored cache predates the pin pays one download).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

check: build vet test race

# Perf trajectory: Table 1 keyword-graph construction, the ablation
# benches, the Section 4 cluster-graph/simjoin benches, the index
# backend benches, the extsort record-format/pre-merge-combine
# before/afters, the HTTP serving-layer load benches and the live
# ingest benches (Push, multi-segment search) and the scatter-gather
# coordinator benches (1/2/4 shards, hot and cold), in test2json
# format (one JSON object per line). BENCH_OUT redirects the dump
# (bench-gate writes an untracked file so the committed trajectory is
# never clobbered).
BENCH_OUT ?= BENCH_table1.json
bench:
	$(GO) test -run '^$$' -bench 'Table1|Ablation|ClusterGraph|SimJoin|DiskIndex|Extsort|Serve|Push|MultiSegment|Shard' -benchmem -count $(BENCH_COUNT) -json . > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT) ($$(grep -c '"Action":"output"' $(BENCH_OUT)) output events)"

# Regression gate: rerun the bench set once into the untracked
# BENCH_fresh.json and compare against the committed BENCH_table1.json
# baseline, failing on a >BENCH_THRESHOLDx slowdown of any benchmark
# present in both dumps (cmd/benchdiff). Idempotent: the tracked
# baseline is never overwritten, so repeated local runs keep comparing
# against the same reference. CI's bench-smoke job runs this and
# uploads both files. The baseline was recorded on a different machine
# than the CI runner, so the threshold is deliberately loose (it
# catches order-of-magnitude regressions, not percent drift); if
# runner hardware ever wedges the gate, bump BENCH_THRESHOLD or
# re-record the baseline with `make bench`.
BENCH_THRESHOLD ?= 2.0
bench-gate:
	$(MAKE) bench BENCH_COUNT=1 BENCH_OUT=BENCH_fresh.json
	$(GO) run ./cmd/benchdiff -old BENCH_table1.json -new BENCH_fresh.json -threshold $(BENCH_THRESHOLD)

# Native fuzz targets, ~60s each — the nightly fuzz job's entry point.
FUZZTIME ?= 60s
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzSolverEquivalence -fuzztime $(FUZZTIME)
	$(GO) test ./internal/index -run '^$$' -fuzz FuzzDiskIndexRoundTrip -fuzztime $(FUZZTIME)

# Chaos gate: the whole fault-injection suite under the race detector.
# Everything prefixed TestFault* runs against internal/faultfs-injected
# EIO/ENOSPC/cancellation, and the server degradation tests (panic
# recovery, breaker trips, stale-on-error) exercise the failure model
# one layer up. CI's examples job runs this target; it is also the
# first thing to run when touching the retry/corruption/cleanup paths.
chaos:
	$(GO) test -race ./internal/faultfs
	$(GO) test -race -run 'Fault|Panic|Breaker|Stale|Retry|Corrupt|ReadyzOpenFailure' ./internal/diskstore ./internal/extsort ./internal/index ./internal/server .

# Example drift gate: the examples are the Engine API's showcase, so
# they build, vet, and quickstart runs end to end against the demo
# corpus. CI's examples job runs this target.
examples-smoke:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...
	$(GO) run ./examples/quickstart

# Serving-layer smoke: boot blogserved on the demo corpus, curl every
# endpoint, assert a cache hit, the 400 mapping and a clean SIGTERM
# drain (scripts/serve-smoke.sh; the admission/429 path is covered
# deterministically by the internal/server race tests). CI's examples
# job runs this after examples-smoke.
serve-smoke:
	sh scripts/serve-smoke.sh

# Sharded-serving smoke: boot two blogserved shard servers on interval
# slices of the demo corpus plus a scatter-gather coordinator fanning
# out to them, assert the cross-boundary answers match an unsharded
# reference byte for byte, push an interval through the coordinator
# (composite generation bump + exact cache eviction), and drain all
# four processes cleanly (scripts/shard-smoke.sh). CI's examples job
# runs this after serve-smoke.
shard-smoke:
	sh scripts/shard-smoke.sh

clean:
	rm -f BENCH_table1.json BENCH_fresh.json
