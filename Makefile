# Build, verification and benchmark entry points. `make check` is the
# tier-1 gate; `make bench` appends a perf sample to BENCH_table1.json
# so successive PRs have a trajectory to compare against.

GO ?= go

.PHONY: all build check vet test race bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet test race

# Keyword-graph construction perf: Table 1 plus the ablation benches,
# 3 samples each, in test2json format (one JSON object per line).
bench:
	$(GO) test -run '^$$' -bench 'Table1|Ablation' -benchmem -count 3 -json . > BENCH_table1.json
	@echo "wrote BENCH_table1.json ($$(grep -c '"Action":"output"' BENCH_table1.json) output events)"

clean:
	rm -f BENCH_table1.json
