# Build, verification and benchmark entry points. `make check` is the
# tier-1 gate; `make bench` appends a perf sample to BENCH_table1.json
# so successive PRs have a trajectory to compare against.
#
# CI (.github/workflows/ci.yml) runs these same targets — build/vet/test
# on a Go version matrix, `race` and `fmt-check` as separate jobs, and a
# bench smoke run (`make bench BENCH_COUNT=1`) whose BENCH_table1.json
# is uploaded as a workflow artifact. Keep local and CI invocations
# identical by changing the targets here, not the workflow.

GO ?= go

# Benchmark sample count; CI's bench-smoke job overrides this to 1.
BENCH_COUNT ?= 3

.PHONY: all build check vet test race fmt-check bench clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fails when any file is not gofmt-formatted (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: build vet test race

# Perf trajectory: Table 1 keyword-graph construction, the ablation
# benches, and the Section 4 cluster-graph/simjoin benches, in
# test2json format (one JSON object per line).
bench:
	$(GO) test -run '^$$' -bench 'Table1|Ablation|ClusterGraph|SimJoin' -benchmem -count $(BENCH_COUNT) -json . > BENCH_table1.json
	@echo "wrote BENCH_table1.json ($$(grep -c '"Action":"output"' BENCH_table1.json) output events)"

clean:
	rm -f BENCH_table1.json
