package blogclusters

import (
	"context"
	"errors"
	"reflect"
	"syscall"
	"testing"
	"time"

	"repro/internal/diskstore"
	"repro/internal/faultfs"
)

// TestFaultEngineDiskBackendRetriesTransientReads runs a whole session
// over a disk-backed index whose segment reads fail 10% of the time:
// every query must still succeed — via the retry path — and agree with
// the mem backend, with zero corrupted reads. This is the end-to-end
// version of the internal/index fault gate.
func TestFaultEngineDiskBackendRetriesTransientReads(t *testing.T) {
	col := testCorpus(t, 120)
	in := faultfs.NewInjector(nil, 1)
	// Only the opened segment reads fault (extsort's spill reads during
	// the build share this FS but have no retry layer of their own).
	in.AddRule(faultfs.Rule{Op: faultfs.OpRead, Path: ".seg", Prob: 0.10})
	eng, err := Open(context.Background(), FromCollection(col), WithIndexOptions(IndexOptions{
		Backend: "disk",
		FS:      in,
		Retry:   diskstore.RetryPolicy{Attempts: 6, Backoff: time.Microsecond},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ref, err := Open(context.Background(), FromCollection(col))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	words := col.Vocabulary()
	if len(words) > 20 {
		words = words[:20]
	}
	ctx := context.Background()
	for _, w := range words {
		got, err := eng.TimeSeries(ctx, w)
		if err != nil {
			t.Fatalf("TimeSeries(%q) under 10%% faults: %v", w, err)
		}
		want, err := ref.TimeSeries(ctx, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("TimeSeries(%q) corrupted under faults: got %v want %v", w, got, want)
		}
	}
	for i := 0; i < len(col.Intervals); i++ {
		got, err := eng.Search(ctx, words[:2], i)
		if err != nil {
			t.Fatalf("Search under faults: %v", err)
		}
		want, err := ref.Search(ctx, words[:2], i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Search interval %d corrupted under faults: got %v want %v", i, got, want)
		}
	}
	st := eng.Stats()
	if st.IndexIO.RetriedReads == 0 {
		t.Fatalf("10%% fault rate produced zero retries (injected=%d)", in.Injected())
	}
	if st.IndexIO.CorruptReads != 0 {
		t.Fatalf("transient faults misclassified as corruption %d times", st.IndexIO.CorruptReads)
	}
}

// TestFaultEngineBuildFailureNotMemoized is the memo non-poisoning
// gate: one index build dies on a full disk, and the very next query
// must rebuild and answer — the failure is returned to its caller,
// never cached against the session.
func TestFaultEngineBuildFailureNotMemoized(t *testing.T) {
	col := testCorpus(t, 80)
	in := faultfs.NewInjector(nil, 1)
	in.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: ".partial", Err: syscall.ENOSPC, MaxFires: 1})
	eng, err := Open(context.Background(), FromCollection(col), WithIndexOptions(IndexOptions{
		Backend: "disk",
		FS:      in,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()
	w := col.Vocabulary()[0]
	if _, err := eng.TimeSeries(ctx, w); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("first query during ENOSPC = %v, want ENOSPC", err)
	}
	// Space came back (the rule burned its one fire): the session must
	// recover on its own — no reopen, no restart.
	got, err := eng.TimeSeries(ctx, w)
	if err != nil {
		t.Fatalf("query after ENOSPC cleared: %v (failed build poisoned the memo)", err)
	}
	ref, err := Open(context.Background(), FromCollection(col))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	want, err := ref.TimeSeries(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered session answered %v, want %v", got, want)
	}
	if b := eng.Stats().Stages["index"].Builds; b != 2 {
		t.Fatalf("index stage built %d times, want 2 (one failed, one recovered)", b)
	}
}
