package blogclusters

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestIndexBackendsAgree drives the facade's backend switch end to
// end: both backends must serve identical primitives and bursts on the
// synthetic news week, and the disk backend's private temp segment
// must disappear on Close.
func TestIndexBackendsAgree(t *testing.T) {
	// Private temp dir, so the leak assertion below cannot trip over
	// stray segments from other processes or earlier killed runs.
	t.Setenv("TMPDIR", t.TempDir())
	col, err := GenerateCorpus(NewsWeekCorpus(2007, 120))
	if err != nil {
		t.Fatal(err)
	}
	mem, err := OpenIndexStore(context.Background(), col, IndexOptions{Backend: "mem"})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	path := filepath.Join(t.TempDir(), "news.seg")
	disk, err := OpenIndexStore(context.Background(), col, IndexOptions{Backend: "disk", Path: path, MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	vocab, err := mem.Vocabulary(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vocab) == 0 {
		t.Fatal("empty vocabulary")
	}
	for _, w := range vocab[:min(len(vocab), 40)] {
		ms, err := mem.TimeSeries(w)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := disk.TimeSeries(w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ms, ds) {
			t.Fatalf("TimeSeries(%q): mem %v disk %v", w, ms, ds)
		}
		mb, err := DetectBurstsIn(mem, w)
		if err != nil {
			t.Fatal(err)
		}
		db, err := DetectBurstsIn(disk, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mb, db) {
			t.Fatalf("bursts(%q): mem %v disk %v", w, mb, db)
		}
	}
	ms, err := mem.Search(vocab[:2], 3)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := disk.Search(vocab[:2], 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms, ds) {
		t.Fatalf("Search: mem %v disk %v", ms, ds)
	}

	if _, err := OpenIndexStore(context.Background(), col, IndexOptions{Backend: "bogus"}); err == nil {
		t.Fatal("bogus backend accepted")
	}

	// Temp-file route: the private segment must be gone after Close,
	// and Close must be idempotent (no spurious os.Remove error for the
	// already-deleted file on the second call).
	tmp, err := OpenIndexStore(context.Background(), col, IndexOptions{Backend: "disk"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tmp.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "blogclusters-idx-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp segments left behind: %v", matches)
	}
}

// TestOpenIndexStoreErrors covers the error paths of the backend
// switch: unknown backend, unwritable segment path, and temp-segment
// cleanup when BuildDisk itself fails mid-build.
func TestOpenIndexStoreErrors(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir())
	col, err := GenerateCorpus(NewsWeekCorpus(2007, 30))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := OpenIndexStore(context.Background(), col, IndexOptions{Backend: "lsm"}); err == nil {
		t.Fatal("unknown backend accepted")
	}

	// Unwritable explicit path: creating <missing-dir>/x.seg.partial
	// must fail and surface the create error.
	bad := filepath.Join(t.TempDir(), "no-such-dir", "x.seg")
	if _, err := OpenIndexStore(context.Background(), col, IndexOptions{Backend: "disk", Path: bad}); err == nil {
		t.Fatal("unwritable segment path accepted")
	}

	// A failing BuildDisk (negative doc id is rejected mid-stream) on
	// the temp-segment route must remove the private temp file.
	broken, err := GenerateCorpus(NewsWeekCorpus(2007, 30))
	if err != nil {
		t.Fatal(err)
	}
	broken.Intervals[0].Docs[0].ID = -7
	if _, err := OpenIndexStore(context.Background(), broken, IndexOptions{Backend: "disk"}); err == nil {
		t.Fatal("negative doc id accepted by disk backend")
	}
	matches, err := filepath.Glob(filepath.Join(os.TempDir(), "blogclusters-idx-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("failed build left temp files behind: %v", matches)
	}

	// A canceled context aborts the disk build and also cleans up.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := openIndexStoreCtx(ctx, context.Background(), col, IndexOptions{Backend: "disk"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled disk build returned %v, want context.Canceled", err)
	}
	matches, err = filepath.Glob(filepath.Join(os.TempDir(), "blogclusters-idx-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("canceled build left temp files behind: %v", matches)
	}
}
