package simjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// randSets builds deterministic random cluster sets with enough token
// overlap that joins return real matches.
func randSets(seed int64, nSets, perSet, vocab, kw int) [][]cluster.Cluster {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]cluster.Cluster, nSets)
	for s := range sets {
		cs := make([]cluster.Cluster, perSet)
		for i := range cs {
			n := 2 + rng.Intn(kw)
			words := make([]string, n)
			for j := range words {
				words[j] = fmt.Sprintf("w%03d", rng.Intn(vocab))
			}
			cs[i] = cluster.New(int64(i), s, words)
		}
		sets[s] = cs
	}
	return sets
}

// TestVocabReuseMatchesJoin: a vocabulary interned once over all sets
// and reused across JoinRecords calls returns exactly what the
// throwaway per-call Join and the quadratic reference return.
func TestVocabReuseMatchesJoin(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		sets := randSets(seed, 4, 60, 120, 8)
		v := NewVocab(sets...)
		recs := make([][]Record, len(sets))
		for i, cs := range sets {
			var err error
			if recs[i], err = v.Records(cs); err != nil {
				t.Fatalf("seed %d: Records(%d): %v", seed, i, err)
			}
		}
		for _, theta := range []float64{0.2, 0.5, 0.9} {
			for i := 0; i < len(sets); i++ {
				for j := i + 1; j < len(sets); j++ {
					want, err := JoinBrute(sets[i], sets[j], theta)
					if err != nil {
						t.Fatal(err)
					}
					oneShot, err := Join(sets[i], sets[j], theta)
					if err != nil {
						t.Fatal(err)
					}
					reused, err := v.JoinRecords(recs[i], recs[j], theta, 1)
					if err != nil {
						t.Fatal(err)
					}
					if !pairsEqual(oneShot, want) {
						t.Fatalf("seed %d theta %g (%d,%d): Join disagrees with brute\n got %v\nwant %v",
							seed, theta, i, j, oneShot, want)
					}
					if !pairsEqual(reused, want) {
						t.Fatalf("seed %d theta %g (%d,%d): reused vocab disagrees with brute\n got %v\nwant %v",
							seed, theta, i, j, reused, want)
					}
				}
			}
		}
	}
}

// TestJoinRecordsParallelEquivalence: partitioned probing returns the
// identical pair list at worker counts 1, 2 and 8.
func TestJoinRecordsParallelEquivalence(t *testing.T) {
	sets := randSets(3, 2, 300, 200, 10)
	v := NewVocab(sets...)
	lrec, err := v.Records(sets[0])
	if err != nil {
		t.Fatal(err)
	}
	rrec, err := v.Records(sets[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, theta := range []float64{0.2, 0.4, 0.7} {
		base, err := v.JoinRecords(lrec, rrec, theta, 1)
		if err != nil {
			t.Fatal(err)
		}
		if theta <= 0.3 && len(base) == 0 {
			t.Fatalf("theta %g: no matches; workload too sparse to be a real test", theta)
		}
		for _, par := range []int{2, 8} {
			got, err := v.JoinRecords(lrec, rrec, theta, par)
			if err != nil {
				t.Fatal(err)
			}
			if !pairsEqual(got, base) {
				t.Fatalf("theta %g parallelism %d: %d pairs, want %d (or order differs)",
					theta, par, len(got), len(base))
			}
		}
	}
}

func TestRecordsUnknownKeyword(t *testing.T) {
	known := []cluster.Cluster{cluster.New(0, 0, []string{"a", "b"})}
	v := NewVocab(known)
	if _, err := v.Records([]cluster.Cluster{cluster.New(1, 0, []string{"a", "zzz"})}); err == nil {
		t.Fatal("Records accepted a keyword the vocabulary has never seen")
	}
}

func TestJoinRecordsThetaValidation(t *testing.T) {
	v := NewVocab([]cluster.Cluster{cluster.New(0, 0, []string{"a"})})
	for _, theta := range []float64{0, -1, 1.5} {
		if _, err := v.JoinRecords(nil, nil, theta, 1); err == nil {
			t.Errorf("JoinRecords accepted theta=%g", theta)
		}
	}
}

func pairsEqual(a, b []Pair) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}
