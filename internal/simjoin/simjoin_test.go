package simjoin

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

func mkClusters(sets [][]string) []cluster.Cluster {
	out := make([]cluster.Cluster, len(sets))
	for i, s := range sets {
		out[i] = cluster.New(int64(i), 0, s)
	}
	return out
}

func TestJoinSmall(t *testing.T) {
	left := mkClusters([][]string{
		{"a", "b", "c"},
		{"x", "y"},
	})
	right := mkClusters([][]string{
		{"a", "b", "c", "d"}, // Jaccard with left[0] = 3/4
		{"x", "z"},           // Jaccard with left[1] = 1/3
		{"q"},                // nothing
	})
	got, err := Join(left, right, 0.5)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	want := []Pair{{Left: 0, Right: 0, Sim: 0.75}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Join = %v, want %v", got, want)
	}
	// Lower threshold admits the second pair.
	got, err = Join(left, right, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("Join(0.3) = %v, want 2 pairs", got)
	}
}

func TestJoinThetaValidation(t *testing.T) {
	cs := mkClusters([][]string{{"a"}})
	for _, theta := range []float64{0, -1, 1.5} {
		if _, err := Join(cs, cs, theta); err == nil {
			t.Errorf("Join accepted theta=%g", theta)
		}
		if _, err := JoinBrute(cs, cs, theta); err == nil {
			t.Errorf("JoinBrute accepted theta=%g", theta)
		}
	}
}

func TestJoinIdenticalSets(t *testing.T) {
	cs := mkClusters([][]string{{"a", "b"}, {"a", "b"}})
	got, err := Join(cs, cs, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("Join = %v, want all 4 identical pairs", got)
	}
	for _, p := range got {
		if p.Sim != 1 {
			t.Errorf("pair %v sim = %g, want 1", p, p.Sim)
		}
	}
}

func TestJoinEmptyInputs(t *testing.T) {
	got, err := Join(nil, nil, 0.5)
	if err != nil || len(got) != 0 {
		t.Errorf("Join(nil,nil) = %v, %v", got, err)
	}
	// Empty cluster never matches anything.
	left := mkClusters([][]string{{}})
	right := mkClusters([][]string{{"a"}})
	got, err = Join(left, right, 0.1)
	if err != nil || len(got) != 0 {
		t.Errorf("Join with empty set = %v, %v", got, err)
	}
}

func TestPrefixLen(t *testing.T) {
	cases := []struct {
		n     int
		theta float64
		want  int
	}{
		{0, 0.5, 0},
		{1, 0.5, 1},
		{4, 0.5, 3},  // 4 - 2 + 1
		{10, 0.9, 2}, // 10 - 9 + 1
		{10, 1.0, 1},
		{3, 0.1, 3},
	}
	for _, c := range cases {
		if got := prefixLen(c.n, c.theta); got != c.want {
			t.Errorf("prefixLen(%d, %g) = %d, want %d", c.n, c.theta, got, c.want)
		}
	}
}

// randClusters generates clusters over a small vocabulary so overlaps
// are common.
func randClusters(rng *rand.Rand, n, vocab, maxSize int) []cluster.Cluster {
	out := make([]cluster.Cluster, n)
	for i := range out {
		size := rng.Intn(maxSize) + 1
		kws := make([]string, 0, size)
		for len(kws) < size {
			kws = append(kws, fmt.Sprintf("w%02d", rng.Intn(vocab)))
		}
		out[i] = cluster.New(int64(i), 0, kws)
	}
	return out
}

// The prefix-filter join must agree exactly with the brute-force join
// for every threshold.
func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		left := randClusters(rng, 30, 25, 8)
		right := randClusters(rng, 30, 25, 8)
		for _, theta := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
			got, err := Join(left, right, theta)
			if err != nil {
				t.Fatal(err)
			}
			want, err := JoinBrute(left, right, theta)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d theta %g: join mismatch\n got %v\nwant %v", trial, theta, got, want)
			}
		}
	}
}

func BenchmarkJoinVsBrute(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	left := randClusters(rng, 500, 3000, 10)
	right := randClusters(rng, 500, 3000, 10)
	b.Run("prefix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Join(left, right, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := JoinBrute(left, right, 0.3); err != nil {
				b.Fatal(err)
			}
		}
	})
}
