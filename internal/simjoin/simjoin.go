// Package simjoin implements an all-pairs set-similarity join with
// prefix filtering.
//
// Section 4 of the paper notes that when the per-interval cluster sets
// are large, computing affinity between all cluster pairs is the
// classic problem of finding all string (set) pairs with similarity
// above a threshold, and that efficient solutions "can easily be
// adapted" (ref [11], Koudas–Marathe–Srivastava). This package is that
// adaptation for the Jaccard affinity: clusters whose Jaccard
// similarity is at least θ are found without examining the vast
// majority of dissimilar pairs, using the standard prefix-filtering
// principle (order tokens by global rarity; two sets with Jaccard ≥ θ
// must share a token within their short prefixes).
package simjoin

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
)

// Pair is one join result: indices into the left and right inputs and
// the exact Jaccard similarity.
type Pair struct {
	Left, Right int
	Sim         float64
}

// Join returns all pairs (l, r) with Jaccard(left[l], right[r]) >= theta.
// theta must be in (0, 1]. Results are sorted by (Left, Right).
func Join(left, right []cluster.Cluster, theta float64) ([]Pair, error) {
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("simjoin: theta must be in (0,1], got %g", theta)
	}

	// Build the global token frequency map so tokens can be ordered
	// rarest-first; rare tokens make prefixes selective.
	freq := map[string]int{}
	for _, c := range left {
		for _, w := range c.Keywords {
			freq[w]++
		}
	}
	for _, c := range right {
		for _, w := range c.Keywords {
			freq[w]++
		}
	}
	rank := makeRanks(freq)

	lrec := makeRecords(left, rank)
	rrec := makeRecords(right, rank)

	// Inverted index over the prefixes of the right side.
	type posting struct {
		rec int // index into rrec
	}
	index := map[int32][]posting{}
	for j, r := range rrec {
		for _, tok := range r.tokens[:prefixLen(len(r.tokens), theta)] {
			index[tok] = append(index[tok], posting{rec: j})
		}
	}

	var out []Pair
	seen := make([]int, len(rrec)) // candidate de-dup stamps
	stamp := 0
	for i, l := range lrec {
		stamp++
		np := prefixLen(len(l.tokens), theta)
		for _, tok := range l.tokens[:np] {
			for _, p := range index[tok] {
				if seen[p.rec] == stamp {
					continue
				}
				seen[p.rec] = stamp
				r := rrec[p.rec]
				// Size filter: Jaccard >= theta requires
				// theta*|l| <= |r| <= |l|/theta.
				ls, rs := float64(len(l.tokens)), float64(len(r.tokens))
				if rs < theta*ls || rs > ls/theta {
					continue
				}
				sim := jaccardSorted(l.tokens, r.tokens)
				if sim >= theta {
					out = append(out, Pair{Left: i, Right: p.rec, Sim: sim})
				}
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Left != out[b].Left {
			return out[a].Left < out[b].Left
		}
		return out[a].Right < out[b].Right
	})
	return out, nil
}

// JoinBrute is the quadratic reference join, used for verification and
// as the faster choice for small inputs.
func JoinBrute(left, right []cluster.Cluster, theta float64) ([]Pair, error) {
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("simjoin: theta must be in (0,1], got %g", theta)
	}
	var out []Pair
	for i := range left {
		for j := range right {
			if sim := cluster.Jaccard(left[i], right[j]); sim >= theta {
				out = append(out, Pair{Left: i, Right: j, Sim: sim})
			}
		}
	}
	return out, nil
}

// prefixLen is |s| − ceil(θ·|s|) + 1, the number of leading (rarest)
// tokens that must be indexed/probed so that no qualifying pair is
// missed.
func prefixLen(n int, theta float64) int {
	if n == 0 {
		return 0
	}
	p := n - int(math.Ceil(theta*float64(n))) + 1
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

type record struct {
	tokens []int32 // token ids sorted by global rank (rarest first)
}

func makeRanks(freq map[string]int) map[string]int32 {
	words := make([]string, 0, len(freq))
	for w := range freq {
		words = append(words, w)
	}
	// Rarest first; ties broken lexicographically for determinism.
	sort.Slice(words, func(i, j int) bool {
		if freq[words[i]] != freq[words[j]] {
			return freq[words[i]] < freq[words[j]]
		}
		return words[i] < words[j]
	})
	rank := make(map[string]int32, len(words))
	for i, w := range words {
		rank[w] = int32(i)
	}
	return rank
}

func makeRecords(cs []cluster.Cluster, rank map[string]int32) []record {
	recs := make([]record, len(cs))
	for i, c := range cs {
		toks := make([]int32, len(c.Keywords))
		for j, w := range c.Keywords {
			toks[j] = rank[w]
		}
		sort.Slice(toks, func(a, b int) bool { return toks[a] < toks[b] })
		recs[i] = record{tokens: toks}
	}
	return recs
}

func jaccardSorted(a, b []int32) float64 {
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
