// Package simjoin implements an all-pairs set-similarity join with
// prefix filtering.
//
// Section 4 of the paper notes that when the per-interval cluster sets
// are large, computing affinity between all cluster pairs is the
// classic problem of finding all string (set) pairs with similarity
// above a threshold, and that efficient solutions "can easily be
// adapted" (ref [11], Koudas–Marathe–Srivastava). This package is that
// adaptation for the Jaccard affinity: clusters whose Jaccard
// similarity is at least θ are found without examining the vast
// majority of dissimilar pairs, using the standard prefix-filtering
// principle (order tokens by global rarity; two sets with Jaccard ≥ θ
// must share a token within their short prefixes).
//
// The join works on interned records: a Vocab maps every keyword to a
// dense int32 rank once per run, records are rank-sorted id slices,
// and the inverted index over the probe prefixes is a slice-backed CSR
// layout — no string comparisons and no map lookups on the hot path.
// Callers joining many set pairs (the cluster-graph construction joins
// each interval against the next gap+1 intervals) build one Vocab for
// all sets and reuse it across JoinRecords calls; Join remains the
// one-shot two-set convenience wrapper.
package simjoin

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"strings"

	"repro/internal/cluster"
	"repro/internal/par"
)

// Pair is one join result: indices into the left and right inputs and
// the exact Jaccard similarity.
type Pair struct {
	Left, Right int
	Sim         float64
}

// Vocab is a reusable interned vocabulary: every keyword of the sets
// it was built from maps to a dense int32 rank, ordered rarest-first
// (ties broken lexicographically) so record prefixes are maximally
// selective. Build it once per run and share it read-only across
// Records and JoinRecords calls.
type Vocab struct {
	dict *cluster.Dict
	rank []int32 // dict id → global rarity rank
}

// NewVocab interns the keywords of every given cluster set and ranks
// them by global rarity. The frequency is the number of clusters
// containing the keyword, summed over all sets.
func NewVocab(sets ...[]cluster.Cluster) *Vocab {
	d := cluster.NewDict()
	var freq []int64
	for _, cs := range sets {
		for _, c := range cs {
			for _, w := range c.Keywords {
				id := d.Intern(w)
				if int(id) == len(freq) {
					freq = append(freq, 0)
				}
				freq[id]++
			}
		}
	}
	// Rarest first; ties broken lexicographically for determinism.
	order := make([]int32, len(freq))
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if freq[a] != freq[b] {
			if freq[a] < freq[b] {
				return -1
			}
			return 1
		}
		return strings.Compare(d.Word(a), d.Word(b))
	})
	rank := make([]int32, len(freq))
	for r, id := range order {
		rank[id] = int32(r)
	}
	return &Vocab{dict: d, rank: rank}
}

// NumTokens returns the number of distinct interned keywords.
func (v *Vocab) NumTokens() int { return len(v.rank) }

// Record is one cluster's keyword set as rank-sorted token ids
// (rarest token first).
type Record struct {
	Tokens []int32
}

// Records interns the clusters' keyword sets against the vocabulary.
// Every keyword must have been seen by NewVocab; an unknown keyword is
// an error (it would silently corrupt the rarity ranking).
func (v *Vocab) Records(cs []cluster.Cluster) ([]Record, error) {
	recs := make([]Record, len(cs))
	for i, c := range cs {
		toks := make([]int32, len(c.Keywords))
		for j, w := range c.Keywords {
			id, ok := v.dict.ID(w)
			if !ok {
				return nil, fmt.Errorf("simjoin: keyword %q of cluster %d not in vocabulary", w, c.ID)
			}
			toks[j] = v.rank[id]
		}
		slices.Sort(toks)
		recs[i] = Record{Tokens: toks}
	}
	return recs, nil
}

// Join returns all pairs (l, r) with Jaccard(left[l], right[r]) >= theta.
// theta must be in (0, 1]. Results are sorted by (Left, Right).
//
// Join builds a throwaway two-set vocabulary on every call; callers
// joining the same sets against successive partners should build one
// Vocab + Records up front and call JoinRecords instead.
func Join(left, right []cluster.Cluster, theta float64) ([]Pair, error) {
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("simjoin: theta must be in (0,1], got %g", theta)
	}
	v := NewVocab(left, right)
	lrec, err := v.Records(left)
	if err != nil {
		return nil, err
	}
	rrec, err := v.Records(right)
	if err != nil {
		return nil, err
	}
	return v.JoinRecords(lrec, rrec, theta, 1)
}

// JoinRecords joins pre-interned records: all pairs (l, r) with
// Jaccard(lrec[l], rrec[r]) >= theta, sorted by (Left, Right). Both
// record slices must come from this Vocab's Records. parallelism is
// the probe worker count (0 = GOMAXPROCS, 1 = sequential); the output
// is identical at any worker count.
func (v *Vocab) JoinRecords(lrec, rrec []Record, theta float64, parallelism int) ([]Pair, error) {
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("simjoin: theta must be in (0,1], got %g", theta)
	}
	width := parallelism
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}

	// CSR inverted index over the prefixes of the right side: token →
	// the right records indexing it, in ascending record order. The
	// index is sized by the largest token the right prefixes actually
	// use, not the whole vocabulary — with a shared per-run Vocab each
	// interval-pair join touches only its own token subset, and the
	// scratch should cost accordingly.
	maxTok := int32(-1)
	for _, r := range rrec {
		for _, tok := range r.Tokens[:prefixLen(len(r.Tokens), theta)] {
			if tok > maxTok {
				maxTok = tok
			}
		}
	}
	n := int(maxTok) + 1
	counts := make([]int32, n)
	for _, r := range rrec {
		for _, tok := range r.Tokens[:prefixLen(len(r.Tokens), theta)] {
			counts[tok]++
		}
	}
	starts := make([]int32, n+1)
	for i, c := range counts {
		starts[i+1] = starts[i] + c
	}
	posts := make([]int32, starts[n])
	fill := make([]int32, n)
	copy(fill, starts[:n])
	for j, r := range rrec {
		for _, tok := range r.Tokens[:prefixLen(len(r.Tokens), theta)] {
			posts[fill[tok]] = int32(j)
			fill[tok]++
		}
	}

	// Probe: each worker owns a contiguous left chunk plus private
	// de-dup stamps and output buffer. Matches of one left record are
	// sorted by Right, and chunks concatenate in left order, so the
	// result is globally (Left, Right)-sorted with no final sort.
	probe := func(lo, hi int) []Pair {
		var out []Pair
		seen := make([]int32, len(rrec))
		for i := range seen {
			seen[i] = -1
		}
		for i := lo; i < hi; i++ {
			l := lrec[i]
			from := len(out)
			for _, tok := range l.Tokens[:prefixLen(len(l.Tokens), theta)] {
				if int(tok) >= n {
					// Tokens are rank-sorted ascending; nothing past
					// the index's range can have postings.
					break
				}
				for _, rj := range posts[starts[tok]:starts[tok+1]] {
					if seen[rj] == int32(i) {
						continue
					}
					seen[rj] = int32(i)
					r := rrec[rj]
					// Size filter: Jaccard >= theta requires
					// theta*|l| <= |r| <= |l|/theta.
					ls, rs := float64(len(l.Tokens)), float64(len(r.Tokens))
					if rs < theta*ls || rs > ls/theta {
						continue
					}
					if sim := jaccardSorted(l.Tokens, r.Tokens); sim >= theta {
						out = append(out, Pair{Left: i, Right: int(rj), Sim: sim})
					}
				}
			}
			slices.SortFunc(out[from:], func(a, b Pair) int { return a.Right - b.Right })
		}
		return out
	}

	if width == 1 || len(lrec) < 2*width {
		return probe(0, len(lrec)), nil
	}
	chunk := (len(lrec) + width - 1) / width
	nChunks := (len(lrec) + chunk - 1) / chunk
	parts := make([][]Pair, nChunks)
	par.ForEach(nChunks, width, func(slot int) error {
		lo := slot * chunk
		parts[slot] = probe(lo, min(lo+chunk, len(lrec)))
		return nil
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]Pair, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// JoinBrute is the quadratic reference join, used for verification and
// as the faster choice for small inputs.
func JoinBrute(left, right []cluster.Cluster, theta float64) ([]Pair, error) {
	if theta <= 0 || theta > 1 {
		return nil, fmt.Errorf("simjoin: theta must be in (0,1], got %g", theta)
	}
	var out []Pair
	for i := range left {
		for j := range right {
			if sim := cluster.Jaccard(left[i], right[j]); sim >= theta {
				out = append(out, Pair{Left: i, Right: j, Sim: sim})
			}
		}
	}
	return out, nil
}

// prefixLen is |s| − ceil(θ·|s|) + 1, the number of leading (rarest)
// tokens that must be indexed/probed so that no qualifying pair is
// missed.
func prefixLen(n int, theta float64) int {
	if n == 0 {
		return 0
	}
	p := n - int(math.Ceil(theta*float64(n))) + 1
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	return p
}

func jaccardSorted(a, b []int32) float64 {
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}
