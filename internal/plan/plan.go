// Package plan is the cost-based query planner for stable-cluster
// queries: given a normalized query spec and the shape of the cluster
// graph it will run on, it picks the solver algorithm expected to be
// cheapest, learns from observed solve times, and caches decisions so
// the steady state is a map lookup.
//
// The planner is deliberately small: costs are EWMAs of observed
// wall-clock per (algorithm, graph-shape bucket), graph shapes are
// log2-bucketed so one corpus's graphs collapse into a handful of
// buckets, and unobserved candidates are explored before observed ones
// are exploited. Decisions are cached per (spec, bucket) and
// invalidated by generation when new observations change a bucket's
// cheapest algorithm.
package plan

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// Variant names for QuerySpec.Variant.
const (
	VariantTopK       = "topk"
	VariantNormalized = "normalized"
	VariantDiverse    = "diverse"
)

// AlgorithmAuto asks the planner to choose; it is also the wire value
// the HTTP API and CLIs accept.
const AlgorithmAuto = "auto"

// QuerySpec is the one normalized description of a stable-cluster
// query, shared by the HTTP layer (parameter parsing and response-cache
// keys), the Engine (validation and dispatch) and the planner (plan-
// cache keys). Normalizing once means ?variant=topk&k=05 and the
// equivalent Engine call key the same cache entries and fail with the
// same errors.
type QuerySpec struct {
	// Variant is "topk" (Problem 1, default), "normalized" (Problem 2)
	// or "diverse" (the constrained variant).
	Variant string
	// Algorithm is a core registry name, or ""/"auto" to let the
	// planner choose. Normalized queries accept only
	// "normalized"/"brute-normalized"; topk/diverse accept
	// "bfs"/"dfs"/"ta"/"brute".
	Algorithm string
	// K is the result count; must be positive.
	K int
	// L is the temporal length for topk/diverse; negative means full
	// paths (normalized to -1).
	L int
	// LMin is the minimum temporal length for normalized queries.
	LMin int
	// Mode is the diversity mode for diverse queries: "endpoints"
	// (default), "prefix", "suffix" or "disjoint".
	Mode string
}

// Normalize returns the canonical form of the spec: defaults filled in,
// full-path lengths collapsed to -1, and fields foreign to the variant
// zeroed, so equal queries compare (and cache-key) equal.
func (s QuerySpec) Normalize() QuerySpec {
	if s.Variant == "" {
		s.Variant = VariantTopK
	}
	if s.Algorithm == AlgorithmAuto {
		s.Algorithm = ""
	}
	switch s.Variant {
	case VariantNormalized:
		s.L = 0
		s.Mode = ""
		if s.LMin == 0 {
			s.LMin = 2
		}
	case VariantDiverse:
		s.LMin = 0
		s.Mode = canonicalMode(s.Mode)
		if s.L < 0 {
			s.L = -1
		}
	default:
		s.LMin = 0
		s.Mode = ""
		if s.L < 0 {
			s.L = -1
		}
	}
	return s
}

// canonicalMode collapses the two accepted wire forms of each
// diversity mode onto the short one, so "distinct-endpoints" and
// "endpoints" produce the same cache key. Unknown strings pass through
// for Validate to reject.
func canonicalMode(mode string) string {
	m, err := core.ParseDiversityMode(mode)
	if err != nil {
		return mode
	}
	switch m {
	case core.DistinctPrefix:
		return "prefix"
	case core.DistinctSuffix:
		return "suffix"
	case core.DisjointNodes:
		return "disjoint"
	default:
		return "endpoints"
	}
}

// Validate checks everything that does not need the graph. Errors wrap
// core.ErrInvalidRequest so the serving layer maps them to 400s.
func (s QuerySpec) Validate() error {
	s = s.Normalize()
	switch s.Variant {
	case VariantTopK, VariantNormalized, VariantDiverse:
	default:
		return fmt.Errorf("%w: unknown variant %q (want topk, normalized or diverse)", core.ErrInvalidRequest, s.Variant)
	}
	if s.K <= 0 {
		return fmt.Errorf("%w: k must be positive, got %d", core.ErrInvalidRequest, s.K)
	}
	if s.Algorithm != "" {
		info, ok := core.Lookup(s.Algorithm)
		if !ok {
			return fmt.Errorf("%w: unknown algorithm %q", core.ErrInvalidRequest, s.Algorithm)
		}
		if info.Normalized != (s.Variant == VariantNormalized) {
			return fmt.Errorf("%w: algorithm %q does not answer %s queries", core.ErrInvalidRequest, s.Algorithm, s.Variant)
		}
	}
	if s.Variant == VariantNormalized && s.LMin <= 0 {
		return fmt.Errorf("%w: lmin must be positive, got %d", core.ErrInvalidRequest, s.LMin)
	}
	if s.Variant == VariantDiverse {
		if _, err := core.ParseDiversityMode(s.Mode); err != nil {
			return err
		}
	}
	return nil
}

// CacheKey renders the normalized spec as a canonical string — the
// response-cache key of the HTTP layer and half of the planner's
// plan-cache key.
func (s QuerySpec) CacheKey() string {
	s = s.Normalize()
	algo := s.Algorithm
	if algo == "" {
		algo = AlgorithmAuto
	}
	var b strings.Builder
	b.WriteString("variant=")
	b.WriteString(s.Variant)
	b.WriteString("&algorithm=")
	b.WriteString(algo)
	b.WriteString("&k=")
	b.WriteString(strconv.Itoa(s.K))
	switch s.Variant {
	case VariantNormalized:
		b.WriteString("&lmin=")
		b.WriteString(strconv.Itoa(s.LMin))
	case VariantDiverse:
		b.WriteString("&l=")
		b.WriteString(strconv.Itoa(s.L))
		b.WriteString("&mode=")
		b.WriteString(s.Mode)
	default:
		b.WriteString("&l=")
		b.WriteString(strconv.Itoa(s.L))
	}
	return b.String()
}

// Request maps the spec onto a core.Request with the given resolved
// algorithm (the planner's pick, or the spec's own when forced).
func (s QuerySpec) Request(algorithm string) core.Request {
	s = s.Normalize()
	req := core.Request{Algorithm: algorithm, K: s.K}
	if s.Variant == VariantNormalized {
		req.LMin = s.LMin
	} else {
		req.L = s.L
		if req.L < 0 {
			req.L = core.FullPaths
		}
	}
	return req
}

// GraphMeta is the planner's view of a cluster graph's shape — enough
// to bucket costs without holding the graph.
type GraphMeta struct {
	Nodes     int
	Edges     int
	Intervals int
	Gap       int
	MaxWeight float64
}

// bucketKey collapses the shape into a log2 bucket so observations
// generalize across graphs of similar size.
func (m GraphMeta) bucketKey() string {
	return fmt.Sprintf("n%d_e%d_m%d_g%d", log2Bucket(m.Nodes), log2Bucket(m.Edges), m.Intervals, m.Gap)
}

func log2Bucket(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n))
}

// Stats is a point-in-time snapshot of planner activity, served on
// /debug/stats inside EngineStats.
type Stats struct {
	// Decisions counts Decide calls (auto-algorithm queries planned).
	Decisions int64 `json:"decisions"`
	// CacheHits / CacheMisses split Decisions by plan-cache outcome.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Invalidations counts generation bumps: observation batches that
	// changed some bucket's cheapest algorithm and voided its plans.
	Invalidations int64 `json:"invalidations"`
	// Observations counts Observe calls (completed solves fed back).
	Observations int64 `json:"observations"`
	// Explored / Exploited split Decisions by strategy: picks of an
	// unobserved candidate to gather cost data vs picks of the cheapest
	// observed one (plan-cache hits count as exploited).
	Explored  int64 `json:"explored"`
	Exploited int64 `json:"exploited"`
	// ByAlgorithm counts decisions per chosen algorithm.
	ByAlgorithm map[string]int64 `json:"by_algorithm"`
	// SolveNs holds per-algorithm wall-clock histograms of completed
	// solves (planned and forced), bucketed by SolveNsBuckets — the
	// solver work accounting behind /metrics' solve-duration series.
	SolveNs map[string]SolveHist `json:"solve_ns"`
}

// SolveNsBuckets are the solve-duration histogram upper bounds in
// nanoseconds: 10µs to 10s, one decade per bucket (solves span five
// orders of magnitude between a hot small graph and a cold full-corpus
// brute run; finer resolution adds series without adding signal).
var SolveNsBuckets = []int64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// SolveHist is a fixed-bucket histogram of solve wall-clock. Counts
// has len(SolveNsBuckets)+1 slots, per-bucket (non-cumulative), the
// final slot counting solves beyond the largest bound.
type SolveHist struct {
	Counts []int64 `json:"counts"`
	SumNs  int64   `json:"sum_ns"`
	Count  int64   `json:"count"`
}

// Merge accumulates other into h (both in SolveNsBuckets layout).
func (h *SolveHist) Merge(other SolveHist) {
	if len(h.Counts) == 0 {
		h.Counts = make([]int64, len(SolveNsBuckets)+1)
	}
	for i, c := range other.Counts {
		if i < len(h.Counts) {
			h.Counts[i] += c
		}
	}
	h.SumNs += other.SumNs
	h.Count += other.Count
}

func (h *SolveHist) observe(ns int64) {
	if len(h.Counts) == 0 {
		h.Counts = make([]int64, len(SolveNsBuckets)+1)
	}
	slot := len(SolveNsBuckets)
	for i, ub := range SolveNsBuckets {
		if ns <= ub {
			slot = i
			break
		}
	}
	h.Counts[slot]++
	h.SumNs += ns
	h.Count++
}

// Decision is one planner pick.
type Decision struct {
	// Algorithm is the core registry name to run.
	Algorithm string
	// Cached reports whether the pick came from the plan cache.
	Cached bool
	// Explore reports whether the pick was an unobserved candidate
	// chosen to gather cost data (exploration), rather than the
	// cheapest observed one.
	Explore bool
}

// Planner learns per-shape solver costs and answers Decide in O(1) on
// the cached path. Safe for concurrent use.
type Planner struct {
	mu sync.Mutex
	// costs[bucket][algorithm] = EWMA of observed ns.
	costs map[string]map[string]*ewma
	// cache[spec+bucket] = decision made at some generation.
	cache map[string]cachedDecision
	// gen[bucket] advances whenever the bucket's cheapest observed
	// algorithm changes; cached decisions from older generations are
	// stale.
	gen   map[string]int64
	stats Stats
}

type cachedDecision struct {
	dec Decision
	gen int64
}

// ewma is an exponentially weighted moving average of solve cost.
type ewma struct {
	value float64
	n     int64
}

// ewmaAlpha weights new observations; 0.3 adapts within a few solves
// without thrashing on one outlier.
const ewmaAlpha = 0.3

func (e *ewma) observe(v float64) {
	if e.n == 0 {
		e.value = v
	} else {
		e.value = ewmaAlpha*v + (1-ewmaAlpha)*e.value
	}
	e.n++
}

// New returns an empty planner.
func New() *Planner {
	return &Planner{
		costs: map[string]map[string]*ewma{},
		cache: map[string]cachedDecision{},
		gen:   map[string]int64{},
	}
}

// Candidates lists the algorithms eligible for a spec on a graph of
// the given shape, cheapest-first by static heuristic. The exhaustive
// oracles are never candidates. DFS requires normalized weights (its
// maxweight pruning assumes edge weights <= 1); TA answers full-path
// queries only and materializes per-interval-pair edge lists, so it is
// gated to modest graphs.
func Candidates(spec QuerySpec, meta GraphMeta) []string {
	spec = spec.Normalize()
	if spec.Variant == VariantNormalized {
		return []string{"normalized"}
	}
	cands := []string{"bfs"}
	if meta.MaxWeight <= 1 {
		cands = append(cands, "dfs")
	}
	fullPath := spec.L < 0 || spec.L == meta.Intervals-1
	if fullPath && meta.Intervals <= 9 && meta.Edges <= 1<<15 {
		cands = append(cands, "ta")
	}
	return cands
}

// Decide picks the algorithm for an auto query. The first calls for a
// shape explore each candidate once (in candidate order); once every
// candidate has cost data the cheapest EWMA wins and the decision is
// cached until observations reorder the bucket.
func (p *Planner) Decide(spec QuerySpec, meta GraphMeta) Decision {
	spec = spec.Normalize()
	bucket := meta.bucketKey()
	key := spec.CacheKey() + "|" + bucket

	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Decisions++
	if cd, ok := p.cache[key]; ok && cd.gen == p.gen[bucket] {
		p.stats.CacheHits++
		p.stats.Exploited++
		p.countPick(cd.dec.Algorithm)
		return cd.dec
	}
	p.stats.CacheMisses++

	cands := Candidates(spec, meta)
	dec := Decision{Algorithm: cands[0]}
	byAlgo := p.costs[bucket]
	for _, c := range cands {
		if byAlgo == nil || byAlgo[c] == nil || byAlgo[c].n == 0 {
			dec = Decision{Algorithm: c, Explore: true}
			break
		}
	}
	if !dec.Explore {
		best := cands[0]
		for _, c := range cands[1:] {
			if byAlgo[c].value < byAlgo[best].value {
				best = c
			}
		}
		dec = Decision{Algorithm: best}
	}
	// Exploit decisions are cached (with Cached set so later hits report
	// their provenance); explore decisions are not, so each Decide keeps
	// moving through the unobserved candidates until cost data covers
	// them all.
	if !dec.Explore {
		cached := dec
		cached.Cached = true
		p.cache[key] = cachedDecision{dec: cached, gen: p.gen[bucket]}
	}
	if dec.Explore {
		p.stats.Explored++
	} else {
		p.stats.Exploited++
	}
	p.countPick(dec.Algorithm)
	return dec
}

func (p *Planner) countPick(algorithm string) {
	if p.stats.ByAlgorithm == nil {
		p.stats.ByAlgorithm = map[string]int64{}
	}
	p.stats.ByAlgorithm[algorithm]++
}

// Observe feeds one completed solve back: the algorithm's EWMA for the
// shape bucket absorbs the cost, and if that changes which algorithm is
// cheapest in the bucket, the bucket's cached plans are invalidated by
// bumping its generation.
func (p *Planner) Observe(algorithm string, meta GraphMeta, costNs int64) {
	bucket := meta.bucketKey()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Observations++
	p.recordSolveLocked(algorithm, costNs)
	byAlgo := p.costs[bucket]
	if byAlgo == nil {
		byAlgo = map[string]*ewma{}
		p.costs[bucket] = byAlgo
	}
	prev := cheapest(byAlgo)
	e := byAlgo[algorithm]
	if e == nil {
		e = &ewma{}
		byAlgo[algorithm] = e
	}
	e.observe(float64(costNs))
	if next := cheapest(byAlgo); prev != "" && next != prev {
		p.gen[bucket]++
		p.stats.Invalidations++
	}
}

// RecordSolve feeds one completed solve's wall-clock into the
// per-algorithm histogram without touching the cost model — the path
// for forced-algorithm solves, whose timings must show up in the
// work-accounting metrics but must not teach the planner (the caller
// chose the algorithm, so the sample is not an exploration signal; the
// Observations counter likewise stays planned-only).
func (p *Planner) RecordSolve(algorithm string, costNs int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.recordSolveLocked(algorithm, costNs)
}

func (p *Planner) recordSolveLocked(algorithm string, costNs int64) {
	if p.stats.SolveNs == nil {
		p.stats.SolveNs = map[string]SolveHist{}
	}
	h := p.stats.SolveNs[algorithm]
	h.observe(costNs)
	p.stats.SolveNs[algorithm] = h
}

// InvalidateAll drops every cached decision — called when the corpus
// itself changes (an Engine push), since a cached pick's GraphMeta no
// longer describes the graph it will run against. The EWMA cost models
// survive: algorithm speed is a property of the machine, not of one
// corpus snapshot, so learning carries across generations.
func (p *Planner) InvalidateAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.cache) == 0 {
		return
	}
	clear(p.cache)
	p.stats.Invalidations++
}

// cheapest returns the lowest-EWMA algorithm of a bucket ("" when
// empty). Ties break lexicographically so the outcome is deterministic.
func cheapest(byAlgo map[string]*ewma) string {
	names := make([]string, 0, len(byAlgo))
	for name, e := range byAlgo {
		if e.n > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	best := names[0]
	for _, name := range names[1:] {
		if byAlgo[name].value < byAlgo[best].value {
			best = name
		}
	}
	return best
}

// Stats snapshots the counters.
func (p *Planner) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	if p.stats.ByAlgorithm != nil {
		st.ByAlgorithm = make(map[string]int64, len(p.stats.ByAlgorithm))
		for k, v := range p.stats.ByAlgorithm {
			st.ByAlgorithm[k] = v
		}
	}
	if p.stats.SolveNs != nil {
		st.SolveNs = make(map[string]SolveHist, len(p.stats.SolveNs))
		for k, h := range p.stats.SolveNs {
			h.Counts = append([]int64(nil), h.Counts...)
			st.SolveNs[k] = h
		}
	}
	return st
}
