package plan

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

func TestNormalizeCanonicalizes(t *testing.T) {
	cases := []struct {
		name string
		in   QuerySpec
		want QuerySpec
	}{
		{
			name: "defaults",
			in:   QuerySpec{K: 5},
			want: QuerySpec{Variant: VariantTopK, K: 5},
		},
		{
			name: "auto collapses to empty",
			in:   QuerySpec{Variant: VariantTopK, Algorithm: AlgorithmAuto, K: 5},
			want: QuerySpec{Variant: VariantTopK, K: 5},
		},
		{
			name: "negative lengths collapse to -1",
			in:   QuerySpec{Variant: VariantTopK, K: 3, L: -7},
			want: QuerySpec{Variant: VariantTopK, K: 3, L: -1},
		},
		{
			name: "topk zeroes foreign fields",
			in:   QuerySpec{Variant: VariantTopK, K: 3, L: 2, LMin: 4, Mode: "prefix"},
			want: QuerySpec{Variant: VariantTopK, K: 3, L: 2},
		},
		{
			name: "normalized fills lmin and drops l/mode",
			in:   QuerySpec{Variant: VariantNormalized, K: 3, L: 5, Mode: "suffix"},
			want: QuerySpec{Variant: VariantNormalized, K: 3, LMin: 2},
		},
		{
			name: "diverse long mode spelling collapses",
			in:   QuerySpec{Variant: VariantDiverse, K: 3, L: 2, LMin: 9, Mode: "distinct-endpoints"},
			want: QuerySpec{Variant: VariantDiverse, K: 3, L: 2, Mode: "endpoints"},
		},
		{
			name: "diverse empty mode defaults to endpoints",
			in:   QuerySpec{Variant: VariantDiverse, K: 3, L: 2},
			want: QuerySpec{Variant: VariantDiverse, K: 3, L: 2, Mode: "endpoints"},
		},
		{
			name: "diverse disjoint-nodes collapses",
			in:   QuerySpec{Variant: VariantDiverse, K: 1, L: -2, Mode: "disjoint-nodes"},
			want: QuerySpec{Variant: VariantDiverse, K: 1, L: -1, Mode: "disjoint"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.in.Normalize(); got != tc.want {
				t.Errorf("Normalize(%+v) = %+v, want %+v", tc.in, got, tc.want)
			}
		})
	}
}

func TestCacheKeyUnifiesSpellings(t *testing.T) {
	// Equivalent spellings of the same query must share one key.
	same := [][2]QuerySpec{
		{
			{K: 5, L: -3},
			{Variant: VariantTopK, Algorithm: AlgorithmAuto, K: 5, L: -1},
		},
		{
			{Variant: VariantDiverse, K: 3, L: 2, Mode: "distinct-prefix"},
			{Variant: VariantDiverse, Algorithm: "auto", K: 3, L: 2, Mode: "prefix"},
		},
		{
			{Variant: VariantNormalized, K: 2},
			{Variant: VariantNormalized, K: 2, LMin: 2, L: 9, Mode: "suffix"},
		},
	}
	for i, pair := range same {
		if a, b := pair[0].CacheKey(), pair[1].CacheKey(); a != b {
			t.Errorf("pair %d: keys differ: %q vs %q", i, a, b)
		}
	}
	// Genuinely different queries must not collide.
	distinct := []QuerySpec{
		{K: 5, L: 3},
		{K: 5, L: -1},
		{Algorithm: "bfs", K: 5, L: 3},
		{K: 6, L: 3},
		{Variant: VariantNormalized, K: 5},
		{Variant: VariantDiverse, K: 5, L: 3},
		{Variant: VariantDiverse, K: 5, L: 3, Mode: "suffix"},
	}
	seen := map[string]int{}
	for i, s := range distinct {
		key := s.CacheKey()
		if j, ok := seen[key]; ok {
			t.Errorf("specs %d and %d collide on key %q", j, i, key)
		}
		seen[key] = i
	}
}

func TestValidate(t *testing.T) {
	valid := []QuerySpec{
		{K: 5},
		{Algorithm: "bfs", K: 5, L: 3},
		{Algorithm: "ta", K: 1, L: -1},
		{Variant: VariantNormalized, K: 2},
		{Variant: VariantNormalized, Algorithm: "normalized", K: 2, LMin: 3},
		{Variant: VariantDiverse, K: 3, L: 2, Mode: "disjoint"},
		{Variant: VariantDiverse, K: 3, L: 2, Mode: "distinct-suffix"},
	}
	for _, s := range valid {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	invalid := []QuerySpec{
		{Variant: "quantum", K: 5},
		{K: 0},
		{K: -1},
		{Algorithm: "astar", K: 5},
		{Algorithm: "normalized", K: 5}, // normalized solver on a topk query
		{Variant: VariantNormalized, Algorithm: "bfs", K: 5}, // topk solver on a normalized query
		{Variant: VariantNormalized, K: 5, LMin: -2},
		{Variant: VariantDiverse, K: 5, Mode: "nope"},
	}
	for _, s := range invalid {
		err := s.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
			continue
		}
		if !errors.Is(err, core.ErrInvalidRequest) {
			t.Errorf("Validate(%+v) = %v, does not wrap ErrInvalidRequest", s, err)
		}
	}
}

func TestCandidatesGating(t *testing.T) {
	small := GraphMeta{Nodes: 40, Edges: 100, Intervals: 6, Gap: 1, MaxWeight: 1}
	cases := []struct {
		name string
		spec QuerySpec
		meta GraphMeta
		want []string
	}{
		{
			name: "normalized has one solver",
			spec: QuerySpec{Variant: VariantNormalized, K: 5},
			meta: small,
			want: []string{"normalized"},
		},
		{
			name: "full-path small graph gets all three",
			spec: QuerySpec{K: 5, L: -1},
			meta: small,
			want: []string{"bfs", "dfs", "ta"},
		},
		{
			name: "explicit full length counts as full-path",
			spec: QuerySpec{K: 5, L: 5},
			meta: small,
			want: []string{"bfs", "dfs", "ta"},
		},
		{
			name: "short path excludes ta",
			spec: QuerySpec{K: 5, L: 3},
			meta: small,
			want: []string{"bfs", "dfs"},
		},
		{
			name: "unnormalized weights exclude dfs",
			spec: QuerySpec{K: 5, L: -1},
			meta: GraphMeta{Nodes: 40, Edges: 100, Intervals: 6, Gap: 1, MaxWeight: 3.5},
			want: []string{"bfs", "ta"},
		},
		{
			name: "many intervals exclude ta",
			spec: QuerySpec{K: 5, L: -1},
			meta: GraphMeta{Nodes: 500, Edges: 2000, Intervals: 30, Gap: 1, MaxWeight: 1},
			want: []string{"bfs", "dfs"},
		},
		{
			name: "huge edge count excludes ta",
			spec: QuerySpec{K: 5, L: -1},
			meta: GraphMeta{Nodes: 1 << 16, Edges: 1 << 20, Intervals: 6, Gap: 1, MaxWeight: 1},
			want: []string{"bfs", "dfs"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Candidates(tc.spec, tc.meta)
			if fmt.Sprint(got) != fmt.Sprint(tc.want) {
				t.Errorf("Candidates = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestDecisionTable scripts a full planner lifetime against one graph
// shape: explore each candidate once in order, exploit (and cache) the
// cheapest observed algorithm, then flip the bucket's cheapest via new
// observations and check the cached plan is invalidated.
func TestDecisionTable(t *testing.T) {
	p := New()
	spec := QuerySpec{K: 5, L: -1}
	meta := GraphMeta{Nodes: 40, Edges: 100, Intervals: 6, Gap: 1, MaxWeight: 1}
	// Candidates for this shape: bfs, dfs, ta.

	type step struct {
		observe   string // if set, Observe(observe, meta, observeNs)
		observeNs int64
		want      Decision // else Decide and compare
	}
	steps := []step{
		// Exploration pass: unobserved candidates in candidate order,
		// never cached.
		{want: Decision{Algorithm: "bfs", Explore: true}},
		{want: Decision{Algorithm: "bfs", Explore: true}}, // still unobserved
		{observe: "bfs", observeNs: 3000},
		{want: Decision{Algorithm: "dfs", Explore: true}},
		{observe: "dfs", observeNs: 1000},
		{want: Decision{Algorithm: "ta", Explore: true}},
		{observe: "ta", observeNs: 2000},
		// All observed: exploit cheapest (dfs), first as a miss that
		// fills the cache, then as hits.
		{want: Decision{Algorithm: "dfs"}},
		{want: Decision{Algorithm: "dfs", Cached: true}},
		{want: Decision{Algorithm: "dfs", Cached: true}},
		// dfs got slow (EWMA jumps past both others): ta is now
		// cheapest, generation bumps, the cached dfs plan is stale, and
		// the fresh decision re-caches.
		{observe: "dfs", observeNs: 100000},
		{want: Decision{Algorithm: "ta"}},
		{want: Decision{Algorithm: "ta", Cached: true}},
		// An observation that does not reorder the bucket keeps plans.
		{observe: "ta", observeNs: 2100},
		{want: Decision{Algorithm: "ta", Cached: true}},
	}
	for i, st := range steps {
		if st.observe != "" {
			p.Observe(st.observe, meta, st.observeNs)
			continue
		}
		if got := p.Decide(spec, meta); got != st.want {
			t.Fatalf("step %d: Decide = %+v, want %+v", i, got, st.want)
		}
	}

	stats := p.Stats()
	if stats.Decisions != 10 {
		t.Errorf("Decisions = %d, want 10", stats.Decisions)
	}
	if stats.CacheHits != 4 {
		t.Errorf("CacheHits = %d, want 4", stats.CacheHits)
	}
	if stats.CacheMisses != 6 {
		t.Errorf("CacheMisses = %d, want 6", stats.CacheMisses)
	}
	// Two cheapest-changes: dfs@1000 dethroning bfs during exploration,
	// and ta taking over when dfs slows down.
	if stats.Invalidations != 2 {
		t.Errorf("Invalidations = %d, want 2", stats.Invalidations)
	}
	if stats.Observations != 5 {
		t.Errorf("Observations = %d, want 5", stats.Observations)
	}
	if got := stats.ByAlgorithm["dfs"]; got != 4 {
		t.Errorf("ByAlgorithm[dfs] = %d, want 4", got)
	}
	if got := stats.ByAlgorithm["ta"]; got != 4 {
		t.Errorf("ByAlgorithm[ta] = %d, want 4", got)
	}
}

// TestDecideBucketsIsolated checks that observations for one graph
// shape do not leak into another bucket's decisions.
func TestDecideBucketsIsolated(t *testing.T) {
	p := New()
	spec := QuerySpec{K: 5, L: -1}
	small := GraphMeta{Nodes: 40, Edges: 100, Intervals: 6, Gap: 1, MaxWeight: 1}
	big := GraphMeta{Nodes: 4000, Edges: 100000, Intervals: 6, Gap: 1, MaxWeight: 1}

	for _, algo := range Candidates(spec, small) {
		p.Observe(algo, small, 1000)
	}
	// The big bucket has no observations, so its first decision must
	// still be an exploration.
	if got := p.Decide(spec, big); !got.Explore {
		t.Errorf("Decide(big) = %+v, want exploration", got)
	}
}

// TestPlannerConcurrency hammers Decide/Observe from many goroutines
// (run with -race) and checks the counters stay consistent.
func TestPlannerConcurrency(t *testing.T) {
	p := New()
	specs := []QuerySpec{
		{K: 5, L: -1},
		{K: 3, L: 2},
		{Variant: VariantNormalized, K: 5},
	}
	metas := []GraphMeta{
		{Nodes: 40, Edges: 100, Intervals: 6, Gap: 1, MaxWeight: 1},
		{Nodes: 4000, Edges: 100000, Intervals: 12, Gap: 2, MaxWeight: 1},
	}
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				spec := specs[(g+i)%len(specs)]
				meta := metas[i%len(metas)]
				dec := p.Decide(spec, meta)
				if dec.Algorithm == "" {
					t.Error("Decide returned empty algorithm")
					return
				}
				p.Observe(dec.Algorithm, meta, int64(1000+(g*iters+i)%5000))
				_ = p.Stats()
			}
		}(g)
	}
	wg.Wait()

	stats := p.Stats()
	if want := int64(goroutines * iters); stats.Decisions != want {
		t.Errorf("Decisions = %d, want %d", stats.Decisions, want)
	}
	if stats.Observations != stats.Decisions {
		t.Errorf("Observations = %d, want %d", stats.Observations, stats.Decisions)
	}
	if stats.CacheHits+stats.CacheMisses != stats.Decisions {
		t.Errorf("hits %d + misses %d != decisions %d", stats.CacheHits, stats.CacheMisses, stats.Decisions)
	}
	var picks int64
	for _, n := range stats.ByAlgorithm {
		picks += n
	}
	if picks != stats.Decisions {
		t.Errorf("ByAlgorithm totals %d, want %d", picks, stats.Decisions)
	}
}
