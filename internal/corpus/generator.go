package corpus

import (
	"fmt"
	"math/rand"
)

// The synthetic generator stands in for the BlogScope crawl (75M posts)
// that the paper uses and that we do not have. It produces the same
// statistical structure the algorithms exploit:
//
//   - a large background vocabulary with Zipf-distributed usage, giving
//     heavy but *independent* co-occurrence that the χ² / ρ filters must
//     prune, and
//   - injected events: sets of keywords that co-occur in many posts over
//     chosen intervals, optionally drifting (keyword sets change between
//     phases, as in the paper's iPhone→Cisco-lawsuit example) or gapped
//     (active intervals are non-contiguous, as in the FA-cup example).
//
// Everything is driven by a seeded *rand.Rand, so corpora are fully
// reproducible.

// Phase is one temporal stage of an Event: while active, posts mentioning
// the phase's keyword set are injected into each listed interval.
type Phase struct {
	// Keywords are the correlated keywords of this phase. They should
	// already be in analyzed (stemmed) form.
	Keywords []string
	// Intervals lists the interval indices the phase is active in. Gaps
	// are expressed by omitting intervals.
	Intervals []int
	// Posts is the number of injected posts per active interval.
	Posts int
	// KeywordProb is the probability that each keyword of the phase
	// appears in an injected post. Values near 1 produce very strong
	// pair-wise correlations; the default (when 0) is 0.9.
	KeywordProb float64
}

// Event is a named story in the synthetic blogosphere, made of one or
// more phases. A single-phase event is a burst; multi-phase events model
// topic drift.
type Event struct {
	Name   string
	Phases []Phase
}

// GeneratorConfig parameterizes a synthetic corpus.
type GeneratorConfig struct {
	// Seed makes the corpus reproducible.
	Seed int64
	// NumIntervals is m, the number of temporal intervals.
	NumIntervals int
	// BackgroundPosts is the number of background (event-free) posts per
	// interval.
	BackgroundPosts int
	// BackgroundVocab is the number of distinct background words.
	BackgroundVocab int
	// WordsPerPost is the number of distinct background words per post.
	WordsPerPost int
	// ZipfS is the Zipf exponent for background word frequencies
	// (must be > 1; default 1.4 — blog text is heavy-tailed).
	ZipfS float64
	// Events are the injected stories.
	Events []Event
}

// Validate reports the first configuration error.
func (cfg *GeneratorConfig) Validate() error {
	if cfg.NumIntervals <= 0 {
		return fmt.Errorf("corpus: NumIntervals must be positive, got %d", cfg.NumIntervals)
	}
	if cfg.BackgroundVocab <= 0 {
		return fmt.Errorf("corpus: BackgroundVocab must be positive, got %d", cfg.BackgroundVocab)
	}
	if cfg.WordsPerPost <= 0 {
		return fmt.Errorf("corpus: WordsPerPost must be positive, got %d", cfg.WordsPerPost)
	}
	if cfg.WordsPerPost > cfg.BackgroundVocab {
		return fmt.Errorf("corpus: WordsPerPost (%d) exceeds BackgroundVocab (%d)", cfg.WordsPerPost, cfg.BackgroundVocab)
	}
	if cfg.ZipfS != 0 && cfg.ZipfS <= 1 {
		return fmt.Errorf("corpus: ZipfS must be > 1, got %g", cfg.ZipfS)
	}
	for _, ev := range cfg.Events {
		for pi, ph := range ev.Phases {
			if len(ph.Keywords) < 2 {
				return fmt.Errorf("corpus: event %q phase %d needs at least 2 keywords", ev.Name, pi)
			}
			for _, iv := range ph.Intervals {
				if iv < 0 || iv >= cfg.NumIntervals {
					return fmt.Errorf("corpus: event %q phase %d references interval %d outside [0,%d)", ev.Name, pi, iv, cfg.NumIntervals)
				}
			}
			if ph.KeywordProb < 0 || ph.KeywordProb > 1 {
				return fmt.Errorf("corpus: event %q phase %d keyword probability %g outside [0,1]", ev.Name, pi, ph.KeywordProb)
			}
		}
	}
	return nil
}

// Generate builds the synthetic collection described by cfg.
func Generate(cfg GeneratorConfig) (*Collection, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := cfg.ZipfS
	if s == 0 {
		s = 1.4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(cfg.BackgroundVocab-1))

	vocab := make([]string, cfg.BackgroundVocab)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("bg%05d", i)
	}

	c := &Collection{Intervals: make([]Interval, cfg.NumIntervals)}
	var nextID int64
	backgroundWords := func() []string {
		seen := map[string]struct{}{}
		words := make([]string, 0, cfg.WordsPerPost)
		for len(words) < cfg.WordsPerPost {
			w := vocab[zipf.Uint64()]
			if _, dup := seen[w]; dup {
				continue
			}
			seen[w] = struct{}{}
			words = append(words, w)
		}
		return words
	}

	for i := 0; i < cfg.NumIntervals; i++ {
		iv := Interval{Index: i}
		for p := 0; p < cfg.BackgroundPosts; p++ {
			iv.Docs = append(iv.Docs, Document{ID: nextID, Interval: i, Keywords: backgroundWords()})
			nextID++
		}
		for _, ev := range cfg.Events {
			for _, ph := range ev.Phases {
				if !containsInt(ph.Intervals, i) {
					continue
				}
				prob := ph.KeywordProb
				if prob == 0 {
					prob = 0.9
				}
				for p := 0; p < ph.Posts; p++ {
					kws := make([]string, 0, len(ph.Keywords)+2)
					for _, k := range ph.Keywords {
						if rng.Float64() < prob {
							kws = append(kws, k)
						}
					}
					// Guarantee at least two event keywords so the post
					// actually contributes co-occurrence signal.
					for len(kws) < 2 {
						k := ph.Keywords[rng.Intn(len(ph.Keywords))]
						if !containsStr(kws, k) {
							kws = append(kws, k)
						}
					}
					// Mix in background chatter, as real posts do.
					for _, w := range backgroundWords()[:min(2, cfg.WordsPerPost)] {
						if !containsStr(kws, w) {
							kws = append(kws, w)
						}
					}
					iv.Docs = append(iv.Docs, Document{ID: nextID, Interval: i, Keywords: kws})
					nextID++
				}
			}
		}
		c.Intervals[i] = iv
	}
	return c, nil
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

func containsStr(s []string, x string) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// NewsWeek returns a preset configuration mirroring the paper's
// qualitative week (Jan 6–12 2007): five events with the same temporal
// signatures as the figures, over seven daily intervals.
//
//	Figure 1  — stem-cell discovery: single-day burst (Jan 8).
//	Figure 2  — Beckham to LA Galaxy: single-day burst (Jan 12).
//	Figure 4  — FA-cup soccer: active Jan 6, gap Jan 7–8, active Jan 9–10.
//	Figure 15 — iPhone: features (Jan 9–10) drifting to Cisco lawsuit (Jan 11–12).
//	Figure 16 — Somalia: persistent all seven days, swelling on Jan 9.
func NewsWeek(seed int64, backgroundPosts int) GeneratorConfig {
	day := func(d int) int { return d - 6 } // Jan 6 == interval 0
	return GeneratorConfig{
		Seed:            seed,
		NumIntervals:    7,
		BackgroundPosts: backgroundPosts,
		BackgroundVocab: 4000,
		WordsPerPost:    8,
		Events: []Event{
			{Name: "stemcell", Phases: []Phase{{
				Keywords:  []string{"stem", "cell", "amniot", "fluid", "embryon", "wake", "forest", "atala"},
				Intervals: []int{day(8)},
				Posts:     160,
			}}},
			{Name: "beckham", Phases: []Phase{{
				Keywords:  []string{"beckham", "galaxi", "madrid", "soccer", "mls", "real"},
				Intervals: []int{day(12)},
				Posts:     170,
			}}},
			{Name: "facup", Phases: []Phase{{
				Keywords:  []string{"liverpool", "arsenal", "anfield", "rosicki", "goal", "cup"},
				Intervals: []int{day(6), day(9), day(10)},
				Posts:     120,
			}}},
			{Name: "iphone", Phases: []Phase{
				{
					Keywords:  []string{"iphon", "appl", "macworld", "touch", "screen", "featur"},
					Intervals: []int{day(9), day(10)},
					Posts:     150,
				},
				{
					Keywords:  []string{"iphon", "appl", "cisco", "lawsuit", "trademark", "infring"},
					Intervals: []int{day(11), day(12)},
					Posts:     150,
				},
			}},
			{Name: "somalia", Phases: []Phase{{
				Keywords:  []string{"somalia", "mogadishu", "ethiopian", "islamist", "kamboni", "yusuf", "gunship"},
				Intervals: []int{day(6), day(7), day(8), day(9), day(10), day(11), day(12)},
				Posts:     110,
			}}},
		},
	}
}
