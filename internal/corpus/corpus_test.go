package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"
)

func smallCollection() *Collection {
	return &Collection{Intervals: []Interval{
		{Index: 0, Label: "d0", Docs: []Document{
			{ID: 0, Interval: 0, Keywords: []string{"alpha", "beta"}},
			{ID: 1, Interval: 0, Keywords: []string{"beta", "gamma"}},
		}},
		{Index: 1, Label: "d1", Docs: []Document{
			{ID: 2, Interval: 1, Keywords: []string{"alpha", "gamma"}},
		}},
	}}
}

func TestNumDocsAndVocabulary(t *testing.T) {
	c := smallCollection()
	if got := c.NumDocs(); got != 3 {
		t.Errorf("NumDocs = %d, want 3", got)
	}
	want := []string{"alpha", "beta", "gamma"}
	if got := c.Vocabulary(); !reflect.DeepEqual(got, want) {
		t.Errorf("Vocabulary = %v, want %v", got, want)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := smallCollection()
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if got.NumDocs() != c.NumDocs() {
		t.Fatalf("round trip NumDocs = %d, want %d", got.NumDocs(), c.NumDocs())
	}
	for i := range c.Intervals {
		if !reflect.DeepEqual(got.Intervals[i].Docs, c.Intervals[i].Docs) {
			t.Errorf("interval %d docs differ: got %v want %v", i, got.Intervals[i].Docs, c.Intervals[i].Docs)
		}
	}
}

func TestWriteJSONLDetectsMisfiledDocument(t *testing.T) {
	c := smallCollection()
	c.Intervals[0].Docs[0].Interval = 1 // misfile
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err == nil {
		t.Fatal("WriteJSONL accepted a misfiled document")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("ReadJSONL accepted garbage")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"id":1,"interval":-3}` + "\n")); err == nil {
		t.Fatal("ReadJSONL accepted negative interval")
	}
}

func TestReadJSONLSkipsBlankLinesAndFillsEmptyIntervals(t *testing.T) {
	in := `{"id":1,"interval":0,"keywords":["a","b"]}

{"id":2,"interval":2,"keywords":["c","d"]}
`
	c, err := ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(c.Intervals) != 3 {
		t.Fatalf("got %d intervals, want 3", len(c.Intervals))
	}
	if len(c.Intervals[1].Docs) != 0 {
		t.Errorf("interval 1 should be empty, has %d docs", len(c.Intervals[1].Docs))
	}
}

func TestDayLabels(t *testing.T) {
	start := time.Date(2007, 1, 6, 0, 0, 0, 0, time.UTC)
	got := DayLabels(start, 3)
	want := []string{"Jan 6 2007", "Jan 7 2007", "Jan 8 2007"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DayLabels = %v, want %v", got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GeneratorConfig{
		Seed: 42, NumIntervals: 3, BackgroundPosts: 50,
		BackgroundVocab: 200, WordsPerPost: 5,
		Events: []Event{{Name: "e", Phases: []Phase{{
			Keywords: []string{"foo", "bar", "baz"}, Intervals: []int{1}, Posts: 20,
		}}}},
	}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different corpora")
	}
	if a.NumDocs() != 3*50+20 {
		t.Errorf("NumDocs = %d, want %d", a.NumDocs(), 3*50+20)
	}
}

func TestGenerateEventSignal(t *testing.T) {
	cfg := GeneratorConfig{
		Seed: 7, NumIntervals: 2, BackgroundPosts: 100,
		BackgroundVocab: 500, WordsPerPost: 6,
		Events: []Event{{Name: "e", Phases: []Phase{{
			Keywords: []string{"foo", "bar"}, Intervals: []int{0}, Posts: 40, KeywordProb: 0.95,
		}}}},
	}
	c, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	// Count posts in interval 0 containing both foo and bar.
	both := 0
	for _, d := range c.Intervals[0].Docs {
		hasFoo, hasBar := false, false
		for _, k := range d.Keywords {
			if k == "foo" {
				hasFoo = true
			}
			if k == "bar" {
				hasBar = true
			}
		}
		if hasFoo && hasBar {
			both++
		}
	}
	if both < 25 {
		t.Errorf("only %d posts contain both event keywords, want >= 25", both)
	}
	// Interval 1 must contain no event keywords at all.
	for _, d := range c.Intervals[1].Docs {
		for _, k := range d.Keywords {
			if k == "foo" || k == "bar" {
				t.Fatalf("event keyword %q leaked into inactive interval", k)
			}
		}
	}
}

func TestGenerateDocsHaveDistinctKeywords(t *testing.T) {
	c, err := Generate(GeneratorConfig{
		Seed: 3, NumIntervals: 2, BackgroundPosts: 80,
		BackgroundVocab: 100, WordsPerPost: 8,
	})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for _, iv := range c.Intervals {
		for _, d := range iv.Docs {
			seen := map[string]struct{}{}
			for _, k := range d.Keywords {
				if _, dup := seen[k]; dup {
					t.Fatalf("doc %d repeats keyword %q", d.ID, k)
				}
				seen[k] = struct{}{}
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []GeneratorConfig{
		{NumIntervals: 0, BackgroundVocab: 10, WordsPerPost: 2},
		{NumIntervals: 1, BackgroundVocab: 0, WordsPerPost: 2},
		{NumIntervals: 1, BackgroundVocab: 10, WordsPerPost: 0},
		{NumIntervals: 1, BackgroundVocab: 2, WordsPerPost: 5},
		{NumIntervals: 1, BackgroundVocab: 10, WordsPerPost: 2, ZipfS: 0.5},
		{NumIntervals: 1, BackgroundVocab: 10, WordsPerPost: 2,
			Events: []Event{{Name: "x", Phases: []Phase{{Keywords: []string{"only"}, Intervals: []int{0}}}}}},
		{NumIntervals: 1, BackgroundVocab: 10, WordsPerPost: 2,
			Events: []Event{{Name: "x", Phases: []Phase{{Keywords: []string{"a", "b"}, Intervals: []int{5}}}}}},
		{NumIntervals: 1, BackgroundVocab: 10, WordsPerPost: 2,
			Events: []Event{{Name: "x", Phases: []Phase{{Keywords: []string{"a", "b"}, Intervals: []int{0}, KeywordProb: 1.5}}}}},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d: Generate accepted invalid config", i)
		}
	}
}

func TestNewsWeekShape(t *testing.T) {
	cfg := NewsWeek(1, 200)
	c, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate(NewsWeek): %v", err)
	}
	if len(c.Intervals) != 7 {
		t.Fatalf("NewsWeek intervals = %d, want 7", len(c.Intervals))
	}
	// Somalia keywords must appear in every interval; beckham only on the last.
	hasKeyword := func(iv Interval, kw string) bool {
		for _, d := range iv.Docs {
			for _, k := range d.Keywords {
				if k == kw {
					return true
				}
			}
		}
		return false
	}
	for i, iv := range c.Intervals {
		if !hasKeyword(iv, "somalia") {
			t.Errorf("interval %d missing persistent event keyword somalia", i)
		}
	}
	for i := 0; i < 6; i++ {
		if hasKeyword(c.Intervals[i], "beckham") {
			t.Errorf("beckham appears on day %d, want only day 6", i)
		}
	}
	if !hasKeyword(c.Intervals[6], "beckham") {
		t.Error("beckham missing from day 6")
	}
	// FA cup gap: liverpool present day 0, 3, 4; absent day 1, 2.
	wantDays := map[int]bool{0: true, 1: false, 2: false, 3: true, 4: true}
	for d, want := range wantDays {
		if got := hasKeyword(c.Intervals[d], "liverpool"); got != want {
			t.Errorf("liverpool on day %d = %t, want %t", d, got, want)
		}
	}
}
