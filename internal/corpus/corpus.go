// Package corpus models the temporally ordered document collections that
// feed the pipeline: blog posts bucketed into temporal intervals (the
// paper uses one day), JSONL persistence, and a deterministic synthetic
// generator that stands in for the BlogScope crawl (see DESIGN.md,
// substitutions).
package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Document is a single blog post represented, as in Section 3 of the
// paper, as a bag of words. Keywords are the analyzed (stemmed,
// stop-word-free) set; each keyword appears at most once because the
// indicator AD(u,v) is binary per document.
type Document struct {
	// ID identifies the post within its collection.
	ID int64 `json:"id"`
	// Interval is the index of the temporal interval (e.g. day number)
	// the post was created in.
	Interval int `json:"interval"`
	// Keywords is the set of analyzed keywords of the post body.
	Keywords []string `json:"keywords"`
}

// Interval is one temporal bucket of documents (all posts created in a
// given day, in the paper's instantiation).
type Interval struct {
	// Index is the 0-based position of the interval in the stream.
	Index int
	// Label is a human-readable tag such as "Jan 6 2007".
	Label string
	// Docs are the posts created during the interval.
	Docs []Document
}

// Collection is a temporally ordered sequence of intervals.
type Collection struct {
	Intervals []Interval
}

// NumDocs returns the total number of documents across all intervals.
func (c *Collection) NumDocs() int {
	n := 0
	for _, iv := range c.Intervals {
		n += len(iv.Docs)
	}
	return n
}

// IntervalByLabel returns the interval with the given label.
func (c *Collection) IntervalByLabel(label string) (*Interval, bool) {
	for i := range c.Intervals {
		if c.Intervals[i].Label == label {
			return &c.Intervals[i], true
		}
	}
	return nil, false
}

// DayLabels produces m consecutive day labels starting at start,
// formatted like the paper ("Jan 6 2007").
func DayLabels(start time.Time, m int) []string {
	labels := make([]string, m)
	for i := 0; i < m; i++ {
		labels[i] = start.AddDate(0, 0, i).Format("Jan 2 2006")
	}
	return labels
}

// WriteJSONL streams the collection to w, one document per line,
// preceded by no header: the interval index inside each document record
// is sufficient to rebuild the bucketing.
func (c *Collection) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, iv := range c.Intervals {
		for _, d := range iv.Docs {
			if d.Interval != iv.Index {
				return fmt.Errorf("corpus: document %d claims interval %d but is stored in interval %d", d.ID, d.Interval, iv.Index)
			}
			if err := enc.Encode(d); err != nil {
				return fmt.Errorf("corpus: encode document %d: %w", d.ID, err)
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL rebuilds a collection from the JSONL stream produced by
// WriteJSONL (or by any external exporter that emits the same schema).
// Interval labels are not stored in the stream; the caller may assign
// them afterwards.
func ReadJSONL(r io.Reader) (*Collection, error) {
	byInterval := map[int][]Document{}
	maxIdx := -1
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var d Document
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		if d.Interval < 0 {
			return nil, fmt.Errorf("corpus: line %d: negative interval %d", line, d.Interval)
		}
		byInterval[d.Interval] = append(byInterval[d.Interval], d)
		if d.Interval > maxIdx {
			maxIdx = d.Interval
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: scan: %w", err)
	}
	c := &Collection{Intervals: make([]Interval, maxIdx+1)}
	for i := 0; i <= maxIdx; i++ {
		c.Intervals[i] = Interval{Index: i, Docs: byInterval[i]}
	}
	return c, nil
}

// Vocabulary returns the sorted set of distinct keywords in the
// collection.
func (c *Collection) Vocabulary() []string {
	set := map[string]struct{}{}
	for _, iv := range c.Intervals {
		for _, d := range iv.Docs {
			for _, k := range d.Keywords {
				set[k] = struct{}{}
			}
		}
	}
	vocab := make([]string, 0, len(set))
	for k := range set {
		vocab = append(vocab, k)
	}
	sort.Strings(vocab)
	return vocab
}
