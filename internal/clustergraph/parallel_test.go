package clustergraph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// randClusterSets builds deterministic per-interval cluster sets with
// enough cross-interval keyword overlap to produce real edges.
func randClusterSets(seed int64, m, perInterval, vocab, kw int) [][]cluster.Cluster {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]cluster.Cluster, m)
	for i := range sets {
		cs := make([]cluster.Cluster, perInterval)
		for j := range cs {
			n := 2 + rng.Intn(kw)
			words := make([]string, n)
			for k := range words {
				words[k] = fmt.Sprintf("w%03d", rng.Intn(vocab))
			}
			cs[j] = cluster.New(int64(j), i, words)
		}
		sets[i] = cs
	}
	return sets
}

// fingerprint serializes everything observable about a graph so two
// graphs compare bit for bit: shape, per-node interval and cluster,
// and both half-edge lists with exact weights.
func fingerprint(g *Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "m=%d gap=%d nodes=%d edges=%d max=%b\n",
		g.NumIntervals(), g.Gap(), g.NumNodes(), g.NumEdges(), g.MaxWeight())
	for id := int64(0); id < int64(g.NumNodes()); id++ {
		fmt.Fprintf(&b, "n%d t%d %v\n", id, g.Interval(id), g.Cluster(id).Keywords)
		for _, h := range g.Children(id) {
			fmt.Fprintf(&b, " c%d w%b l%d\n", h.Peer, h.Weight, h.Length)
		}
		for _, h := range g.Parents(id) {
			fmt.Fprintf(&b, " p%d w%b l%d\n", h.Peer, h.Weight, h.Length)
		}
	}
	return b.String()
}

// TestFromClustersParallelEquivalence: the sharded edge generation
// produces a graph identical to the sequential path's at worker counts
// 2 and 8, on both the quadratic and simjoin paths, at gap 0 and
// gap 2.
func TestFromClustersParallelEquivalence(t *testing.T) {
	sets := randClusterSets(11, 6, 50, 90, 8)
	for _, gap := range []int{0, 2} {
		for _, simjoin := range []bool{false, true} {
			opts := FromClustersOptions{Gap: gap, Theta: 0.25, UseSimJoin: simjoin, Parallelism: 1}
			base, err := FromClusters(sets, opts)
			if err != nil {
				t.Fatalf("gap %d simjoin %v sequential: %v", gap, simjoin, err)
			}
			if base.NumEdges() == 0 {
				t.Fatalf("gap %d simjoin %v: no edges; workload too sparse to be a real test", gap, simjoin)
			}
			want := fingerprint(base)
			for _, par := range []int{2, 8} {
				opts.Parallelism = par
				g, err := FromClusters(sets, opts)
				if err != nil {
					t.Fatalf("gap %d simjoin %v parallelism %d: %v", gap, simjoin, par, err)
				}
				if got := fingerprint(g); got != want {
					t.Fatalf("gap %d simjoin %v parallelism %d: graph differs from sequential", gap, simjoin, par)
				}
			}
		}
	}
}

// TestFromClustersSimJoinMatchesQuadratic: the prefix-filter path and
// the quadratic pair loop build the same graph (both default Jaccard).
func TestFromClustersSimJoinMatchesQuadratic(t *testing.T) {
	sets := randClusterSets(23, 5, 60, 100, 9)
	for _, gap := range []int{0, 1} {
		quad, err := FromClusters(sets, FromClustersOptions{Gap: gap, Theta: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		sj, err := FromClusters(sets, FromClustersOptions{Gap: gap, Theta: 0.2, UseSimJoin: true})
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(quad) != fingerprint(sj) {
			t.Fatalf("gap %d: simjoin graph (%d edges) differs from quadratic (%d edges)",
				gap, sj.NumEdges(), quad.NumEdges())
		}
	}
}

// TestFromClustersParallelIntersectionAffinity covers the non-Jaccard
// (normalized) path under parallel edge generation.
func TestFromClustersParallelIntersectionAffinity(t *testing.T) {
	sets := randClusterSets(5, 4, 40, 80, 7)
	mk := func(par int) string {
		g, err := FromClusters(sets, FromClustersOptions{
			Gap: 1, Theta: 1, Affinity: cluster.Intersection, Normalize: true, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(g)
	}
	want := mk(1)
	for _, par := range []int{2, 8} {
		if got := mk(par); got != want {
			t.Fatalf("parallelism %d: intersection-affinity graph differs from sequential", par)
		}
	}
}
