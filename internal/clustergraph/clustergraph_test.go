package clustergraph

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func TestBuilderBasics(t *testing.T) {
	b, err := NewBuilder(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := b.AddNode(0, cluster.New(0, 0, []string{"x"}))
	c, _ := b.AddNode(1, cluster.Cluster{})
	d, _ := b.AddNode(2, cluster.Cluster{})
	if err := b.AddEdge(a, c, 0.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := b.AddEdge(a, d, 0.25); err != nil { // length 2, within gap+1
		t.Fatalf("AddEdge gap: %v", err)
	}
	g := b.Build(false)
	if g.NumNodes() != 3 || g.NumEdges() != 2 || g.NumIntervals() != 3 || g.Gap() != 1 {
		t.Errorf("graph shape wrong: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Interval(a) != 0 || g.Interval(d) != 2 {
		t.Error("Interval lookup wrong")
	}
	if len(g.NodesAt(1)) != 1 || g.NodesAt(1)[0] != c {
		t.Errorf("NodesAt(1) = %v", g.NodesAt(1))
	}
	ch := g.Children(a)
	if len(ch) != 2 || ch[0].Weight != 0.5 || ch[1].Weight != 0.25 {
		t.Errorf("children of a = %v, want weight-descending", ch)
	}
	if ch[0].Length != 1 || ch[1].Length != 2 {
		t.Errorf("edge lengths = %d,%d; want 1,2", ch[0].Length, ch[1].Length)
	}
	if ps := g.Parents(d); len(ps) != 1 || ps[0].Peer != a {
		t.Errorf("parents of d = %v", ps)
	}
	if kw := g.Cluster(a).Keywords; len(kw) != 1 || kw[0] != "x" {
		t.Errorf("Cluster(a) = %v", g.Cluster(a))
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(0, 0); err == nil {
		t.Error("NewBuilder(0,0) accepted")
	}
	if _, err := NewBuilder(3, -1); err == nil {
		t.Error("NewBuilder negative gap accepted")
	}
	b, _ := NewBuilder(3, 0)
	if _, err := b.AddNode(5, cluster.Cluster{}); err == nil {
		t.Error("AddNode with bad interval accepted")
	}
	u, _ := b.AddNode(0, cluster.Cluster{})
	v, _ := b.AddNode(0, cluster.Cluster{})
	w, _ := b.AddNode(2, cluster.Cluster{})
	if err := b.AddEdge(u, v, 0.5); err == nil {
		t.Error("same-interval edge accepted")
	}
	if err := b.AddEdge(u, w, 0.5); err == nil {
		t.Error("edge longer than gap+1 accepted")
	}
	if err := b.AddEdge(u, 99, 0.5); err == nil {
		t.Error("edge to unknown node accepted")
	}
	x, _ := b.AddNode(1, cluster.Cluster{})
	if err := b.AddEdge(u, x, 0); err == nil {
		t.Error("zero-weight edge accepted")
	}
	b.Build(false)
	if _, err := b.AddNode(0, cluster.Cluster{}); err == nil {
		t.Error("AddNode after Build accepted")
	}
	if err := b.AddEdge(u, x, 0.5); err == nil {
		t.Error("AddEdge after Build accepted")
	}
}

func TestEdgeDirectionNormalized(t *testing.T) {
	// Adding an edge "backwards" (later interval first) must still
	// produce a child from the earlier node.
	b, _ := NewBuilder(2, 0)
	u, _ := b.AddNode(0, cluster.Cluster{})
	v, _ := b.AddNode(1, cluster.Cluster{})
	if err := b.AddEdge(v, u, 0.9); err != nil {
		t.Fatal(err)
	}
	g := b.Build(false)
	if ch := g.Children(u); len(ch) != 1 || ch[0].Peer != v {
		t.Errorf("children of u = %v", ch)
	}
	if ch := g.Children(v); len(ch) != 0 {
		t.Errorf("children of v = %v, want none", ch)
	}
}

func TestNormalization(t *testing.T) {
	b, _ := NewBuilder(2, 0)
	u, _ := b.AddNode(0, cluster.Cluster{})
	v, _ := b.AddNode(1, cluster.Cluster{})
	w, _ := b.AddNode(1, cluster.Cluster{})
	b.AddEdge(u, v, 4.0) // intersection-style weight > 1
	b.AddEdge(u, w, 2.0)
	g := b.Build(true)
	if g.MaxWeight() != 1 {
		t.Errorf("MaxWeight = %g, want 1", g.MaxWeight())
	}
	ch := g.Children(u)
	if ch[0].Weight != 1.0 || math.Abs(ch[1].Weight-0.5) > 1e-12 {
		t.Errorf("normalized weights = %v", ch)
	}
	// Parents must be rescaled consistently.
	if ps := g.Parents(w); math.Abs(ps[0].Weight-0.5) > 1e-12 {
		t.Errorf("parent weight = %g, want 0.5", ps[0].Weight)
	}
}

func TestNoNormalizationWhenWithinRange(t *testing.T) {
	b, _ := NewBuilder(2, 0)
	u, _ := b.AddNode(0, cluster.Cluster{})
	v, _ := b.AddNode(1, cluster.Cluster{})
	b.AddEdge(u, v, 0.5)
	g := b.Build(true)
	if g.Children(u)[0].Weight != 0.5 {
		t.Error("normalize rescaled weights that were already in (0,1]")
	}
}

func weekSets() [][]cluster.Cluster {
	mk := func(interval int, sets ...[]string) []cluster.Cluster {
		out := make([]cluster.Cluster, len(sets))
		for i, s := range sets {
			out[i] = cluster.New(0, interval, s)
		}
		return out
	}
	return [][]cluster.Cluster{
		mk(0, []string{"a", "b", "c"}, []string{"x", "y"}),
		mk(1, []string{"a", "b", "d"}, []string{"p", "q"}),
		mk(2, []string{"a", "b", "c", "d"}, []string{"x", "y"}),
	}
}

func TestFromClusters(t *testing.T) {
	g, err := FromClusters(weekSets(), FromClustersOptions{Gap: 1, Theta: 0.3})
	if err != nil {
		t.Fatalf("FromClusters: %v", err)
	}
	if g.NumNodes() != 6 {
		t.Fatalf("nodes = %d, want 6", g.NumNodes())
	}
	// {a,b,c}@0 ↔ {a,b,d}@1: Jaccard 2/4 = 0.5 ≥ 0.3 → edge.
	// {a,b,c}@0 ↔ {a,b,c,d}@2: 3/4 ≥ 0.3 → gap edge (length 2).
	// {x,y}@0 ↔ {x,y}@2: 1.0 → gap edge.
	// {a,b,d}@1 ↔ {a,b,c,d}@2: 3/4 → edge.
	if g.NumEdges() != 4 {
		t.Errorf("edges = %d, want 4", g.NumEdges())
	}
	n0 := g.NodesAt(0)[0] // {a,b,c}
	ch := g.Children(n0)
	if len(ch) != 2 {
		t.Fatalf("children of {a,b,c} = %v, want 2", ch)
	}
	// Weight-descending: 0.75 gap edge first, then 0.5.
	if math.Abs(ch[0].Weight-0.75) > 1e-12 || ch[0].Length != 2 {
		t.Errorf("first child = %+v, want weight 0.75 length 2", ch[0])
	}
}

func TestFromClustersSimJoinMatchesBrute(t *testing.T) {
	sets := weekSets()
	plain, err := FromClusters(sets, FromClustersOptions{Gap: 1, Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	sj, err := FromClusters(sets, FromClustersOptions{Gap: 1, Theta: 0.3, UseSimJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumEdges() != sj.NumEdges() || plain.NumNodes() != sj.NumNodes() {
		t.Fatalf("simjoin graph differs: %d/%d edges", sj.NumEdges(), plain.NumEdges())
	}
	for id := int64(0); id < int64(plain.NumNodes()); id++ {
		a, b := plain.Children(id), sj.Children(id)
		if len(a) != len(b) {
			t.Fatalf("node %d children differ: %v vs %v", id, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d child %d differs: %+v vs %+v", id, i, a[i], b[i])
			}
		}
	}
}

func TestFromClustersGapZeroOmitsLongEdges(t *testing.T) {
	g, err := FromClusters(weekSets(), FromClustersOptions{Gap: 0, Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// The two interval-0 ↔ interval-2 edges disappear.
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2", g.NumEdges())
	}
}

func TestFromClustersSimJoinRequiresJaccard(t *testing.T) {
	_, err := FromClusters(weekSets(), FromClustersOptions{
		Gap: 0, Theta: 0.3, Affinity: cluster.Intersection, UseSimJoin: true,
	})
	if err == nil {
		t.Error("UseSimJoin with custom affinity accepted")
	}
}

func TestFromClustersIntersectionNormalized(t *testing.T) {
	g, err := FromClusters(weekSets(), FromClustersOptions{
		Gap: 1, Theta: 1, Affinity: cluster.Intersection, Normalize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxWeight() > 1 {
		t.Errorf("MaxWeight = %g after normalization", g.MaxWeight())
	}
	if g.NumEdges() == 0 {
		t.Error("no edges survived intersection threshold 1")
	}
}
