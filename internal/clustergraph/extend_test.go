package clustergraph

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
)

// randomSets draws m cluster sets over a small shared vocabulary so
// overlaps (and therefore edges) are common.
func randomSets(rng *rand.Rand, m int) [][]cluster.Cluster {
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	sets := make([][]cluster.Cluster, m)
	for i := range sets {
		n := rng.Intn(5) // 0..4 clusters; empty intervals must work too
		for j := 0; j < n; j++ {
			var kws []string
			for _, w := range vocab {
				if rng.Intn(3) == 0 {
					kws = append(kws, w)
				}
			}
			if len(kws) == 0 {
				kws = []string{vocab[rng.Intn(len(vocab))]}
			}
			sets[i] = append(sets[i], cluster.New(0, i, kws))
		}
	}
	return sets
}

// TestExtendMatchesOneShot grows a graph interval by interval and
// requires the result to be deeply identical to the one-shot build at
// every step, across gaps, both edge paths, and worker counts.
func TestExtendMatchesOneShot(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(5)
		sets := randomSets(rng, m)
		for _, gap := range []int{0, 1, 3} {
			for _, simjoin := range []bool{false, true} {
				for _, par := range []int{1, 8} {
					opts := FromClustersOptions{Gap: gap, UseSimJoin: simjoin, Parallelism: par, Theta: 0.3}
					name := fmt.Sprintf("trial=%d m=%d gap=%d simjoin=%v par=%d", trial, m, gap, simjoin, par)
					g, err := FromClustersCtx(ctx, sets[:1], opts)
					if err != nil {
						t.Fatalf("%s: seed build: %v", name, err)
					}
					for k := 2; k <= m; k++ {
						prev := g
						prevEdges := prev.NumEdges()
						g, err = ExtendCtx(ctx, g, sets[:k], opts)
						if err != nil {
							t.Fatalf("%s: extend to %d: %v", name, k, err)
						}
						full, err := FromClustersCtx(ctx, sets[:k], opts)
						if err != nil {
							t.Fatalf("%s: full build %d: %v", name, k, err)
						}
						if !reflect.DeepEqual(g, full) {
							t.Fatalf("%s: extended graph at %d intervals differs from one-shot build", name, k)
						}
						// The source graph must be untouched — a previous
						// generation may still be serving from it.
						if prev.NumIntervals() != k-1 || prev.NumEdges() != prevEdges {
							t.Fatalf("%s: extend mutated its input graph", name)
						}
						for id := int64(0); id < int64(prev.NumNodes()); id++ {
							for _, h := range prev.Children(id) {
								if prev.Interval(h.Peer) >= k-1 {
									t.Fatalf("%s: input graph gained an edge into interval %d", name, prev.Interval(h.Peer))
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestExtendRejectsNormalize pins the contract that normalized graphs
// rebuild instead of extending.
func TestExtendRejectsNormalize(t *testing.T) {
	sets := randomSets(rand.New(rand.NewSource(1)), 2)
	opts := FromClustersOptions{Gap: 1, Normalize: true, Affinity: cluster.Intersection}
	g, err := FromClusters(sets[:1], opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExtendCtx(context.Background(), g, sets, opts); err == nil {
		t.Fatal("ExtendCtx accepted a normalized graph")
	}
	if _, err := ExtendCtx(context.Background(), g, sets, FromClustersOptions{Gap: 2}); err == nil {
		t.Fatal("ExtendCtx accepted a gap mismatch")
	}
	if _, err := ExtendCtx(context.Background(), g, sets[:1], FromClustersOptions{Gap: 1}); err == nil {
		t.Fatal("ExtendCtx accepted a length mismatch")
	}
}
