// Package clustergraph builds and represents the cluster graph G of
// Section 4.1: nodes are per-interval keyword clusters, and an edge
// joins clusters of different intervals whose affinity exceeds θ, as
// long as the intervals are at most g+1 apart (g is the gap).
//
// Edge length is the temporal distance between the incident intervals
// (an edge across a single gap of size g has length g+1, per the
// paper); edge weight is the affinity. Children lists are kept sorted
// by descending weight — the paper's heuristic so the DFS explores
// heavy edges first.
package clustergraph

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/cluster"
	"repro/internal/par"
	"repro/internal/simjoin"
)

// Half is one directed half-edge: the far endpoint plus the edge's
// weight and temporal length.
type Half struct {
	Peer   int64
	Weight float64
	Length int
}

// Graph is the (immutable after Build) cluster graph.
type Graph struct {
	m         int
	gap       int
	interval  []int     // node id → interval index
	intervals [][]int64 // interval index → node ids
	parents   [][]Half  // node id → incoming half-edges (peer in earlier interval)
	children  [][]Half  // node id → outgoing half-edges, weight-descending
	clusters  []cluster.Cluster
	edges     int
	maxWeight float64
}

// NumIntervals returns m.
func (g *Graph) NumIntervals() int { return g.m }

// Gap returns the gap parameter g the graph was built with.
func (g *Graph) Gap() int { return g.gap }

// NumNodes returns the total number of cluster nodes.
func (g *Graph) NumNodes() int { return len(g.interval) }

// NumEdges returns the number of (undirected) edges.
func (g *Graph) NumEdges() int { return g.edges }

// MaxWeight returns the largest edge weight (0 for an edgeless graph).
func (g *Graph) MaxWeight() float64 { return g.maxWeight }

// Interval returns the interval index of node id.
func (g *Graph) Interval(id int64) int { return g.interval[id] }

// NodesAt returns the node ids of interval i.
func (g *Graph) NodesAt(i int) []int64 { return g.intervals[i] }

// Parents returns the incoming half-edges of id (peers in earlier
// intervals).
func (g *Graph) Parents(id int64) []Half { return g.parents[id] }

// Children returns the outgoing half-edges of id (peers in later
// intervals), sorted by descending weight.
func (g *Graph) Children(id int64) []Half { return g.children[id] }

// Cluster returns the keyword cluster behind node id. Synthetic graphs
// carry empty clusters.
func (g *Graph) Cluster(id int64) cluster.Cluster { return g.clusters[id] }

// Builder accumulates nodes and edges and then freezes them into a
// Graph.
type Builder struct {
	m     int
	gap   int
	g     *Graph
	built bool
}

// NewBuilder starts a graph over m temporal intervals with gap g.
func NewBuilder(m, gap int) (*Builder, error) {
	if m <= 0 {
		return nil, fmt.Errorf("clustergraph: m must be positive, got %d", m)
	}
	if gap < 0 {
		return nil, fmt.Errorf("clustergraph: gap must be >= 0, got %d", gap)
	}
	return &Builder{
		m:   m,
		gap: gap,
		g: &Graph{
			m:         m,
			gap:       gap,
			intervals: make([][]int64, m),
		},
	}, nil
}

// AddNode adds a cluster node in the given interval and returns its id.
// The cluster value may be zero for synthetic graphs.
func (b *Builder) AddNode(interval int, c cluster.Cluster) (int64, error) {
	if b.built {
		return 0, fmt.Errorf("clustergraph: AddNode after Build")
	}
	if interval < 0 || interval >= b.m {
		return 0, fmt.Errorf("clustergraph: interval %d outside [0,%d)", interval, b.m)
	}
	id := int64(len(b.g.interval))
	b.g.interval = append(b.g.interval, interval)
	b.g.intervals[interval] = append(b.g.intervals[interval], id)
	b.g.parents = append(b.g.parents, nil)
	b.g.children = append(b.g.children, nil)
	c.ID = id
	c.Interval = interval
	b.g.clusters = append(b.g.clusters, c)
	return id, nil
}

// AddEdge joins two nodes of different intervals with the given affinity
// weight. The temporal distance must be within gap+1 and the weight
// positive.
func (b *Builder) AddEdge(u, v int64, weight float64) error {
	if b.built {
		return fmt.Errorf("clustergraph: AddEdge after Build")
	}
	if u < 0 || v < 0 || int(u) >= len(b.g.interval) || int(v) >= len(b.g.interval) {
		return fmt.Errorf("clustergraph: edge (%d,%d) references unknown node", u, v)
	}
	iu, iv := b.g.interval[u], b.g.interval[v]
	if iu == iv {
		return fmt.Errorf("clustergraph: edge (%d,%d) joins nodes of the same interval %d", u, v, iu)
	}
	if iu > iv {
		u, v = v, u
		iu, iv = iv, iu
	}
	length := iv - iu
	if length > b.gap+1 {
		return fmt.Errorf("clustergraph: edge (%d,%d) spans %d intervals, max is gap+1 = %d", u, v, length, b.gap+1)
	}
	if weight <= 0 {
		return fmt.Errorf("clustergraph: edge (%d,%d) has non-positive weight %g", u, v, weight)
	}
	b.g.children[u] = append(b.g.children[u], Half{Peer: v, Weight: weight, Length: length})
	b.g.parents[v] = append(b.g.parents[v], Half{Peer: u, Weight: weight, Length: length})
	b.g.edges++
	if weight > b.g.maxWeight {
		b.g.maxWeight = weight
	}
	return nil
}

// Build freezes the graph. Children lists are sorted by descending
// weight (the DFS heuristic of Section 4.3); parents by ascending peer
// id for determinism. If normalize is true and any weight exceeds 1,
// all weights are scaled by the maximum weight so they lie in (0,1] —
// the normalization footnote of Section 4.1, needed by affinities such
// as raw intersection counts.
func (b *Builder) Build(normalize bool) *Graph {
	if b.built {
		return b.g
	}
	b.built = true
	g := b.g
	if normalize && g.maxWeight > 1 {
		scale := 1 / g.maxWeight
		for _, lists := range [][][]Half{g.children, g.parents} {
			for _, hs := range lists {
				for i := range hs {
					hs[i].Weight *= scale
				}
			}
		}
		g.maxWeight = 1
	}
	for _, hs := range g.children {
		sort.SliceStable(hs, func(i, j int) bool {
			if hs[i].Weight != hs[j].Weight {
				return hs[i].Weight > hs[j].Weight
			}
			return hs[i].Peer < hs[j].Peer
		})
	}
	for _, hs := range g.parents {
		sort.SliceStable(hs, func(i, j int) bool { return hs[i].Peer < hs[j].Peer })
	}
	return g
}

// FromClustersOptions configures FromClusters.
type FromClustersOptions struct {
	// Gap is g, the maximum number of skipped intervals.
	Gap int
	// Theta is the minimum affinity for an edge (default
	// cluster.DefaultAffinityThreshold).
	Theta float64
	// Affinity scores cluster overlap (default cluster.Jaccard).
	Affinity cluster.AffinityFunc
	// UseSimJoin computes Jaccard edges with the prefix-filter join
	// instead of the quadratic loop. Only valid when Affinity is nil
	// (Jaccard), since the join is Jaccard-specific.
	UseSimJoin bool
	// Normalize rescales weights into (0,1] when an affinity (e.g.
	// intersection) produces weights above 1.
	Normalize bool
	// Parallelism is the worker count for edge generation. The work is
	// sharded by (interval, gap-offset) pair — each pair of linked
	// intervals is one task — and, on the simjoin path, leftover
	// parallelism partitions the probe records inside each join. 0
	// means GOMAXPROCS; 1 selects the sequential path. The graph is
	// identical at any worker count.
	Parallelism int
}

// FromClusters builds the cluster graph from per-interval cluster sets
// by evaluating the affinity between clusters of intervals at most
// Gap+1 apart and keeping pairs with affinity >= Theta.
func FromClusters(sets [][]cluster.Cluster, opts FromClustersOptions) (*Graph, error) {
	return FromClustersCtx(context.Background(), sets, opts)
}

// FromClustersCtx is FromClusters with cancellation: edge-generation
// tasks are dispatched through the context-aware worker pool, so a
// canceled build stops scheduling interval pairs and returns ctx's
// error.
func FromClustersCtx(ctx context.Context, sets [][]cluster.Cluster, opts FromClustersOptions) (*Graph, error) {
	m := len(sets)
	b, err := NewBuilder(m, opts.Gap)
	if err != nil {
		return nil, err
	}
	theta := opts.Theta
	if theta == 0 {
		theta = cluster.DefaultAffinityThreshold
	}
	aff := opts.Affinity
	if aff == nil {
		aff = cluster.Jaccard
	} else if opts.UseSimJoin {
		return nil, fmt.Errorf("clustergraph: UseSimJoin requires the default Jaccard affinity")
	}

	ids := make([][]int64, m)
	for i, cs := range sets {
		ids[i] = make([]int64, len(cs))
		for j, c := range cs {
			id, err := b.AddNode(i, c)
			if err != nil {
				return nil, err
			}
			ids[i][j] = id
		}
	}

	// Edge generation is sharded by (interval, gap-offset): each pair
	// of linked intervals is one independent task producing a private
	// (Left, Right)-sorted edge buffer. Buffers are merged into the
	// builder in task order, so the AddEdge sequence — and therefore
	// the graph — is identical to the sequential loop's at any worker
	// count.
	type task struct{ i, j int }
	var tasks []task
	for i := 0; i < m; i++ {
		for j := i + 1; j <= i+opts.Gap+1 && j < m; j++ {
			tasks = append(tasks, task{i, j})
		}
	}
	width := opts.Parallelism
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	workers := min(width, len(tasks))
	if workers < 1 {
		workers = 1
	}

	// On the simjoin path the vocabulary is interned once for the whole
	// run (every interval joins against up to gap+1 partners; the
	// per-call frequency pass used to dominate) and leftover
	// parallelism partitions the probes inside each join.
	var (
		vocab    *simjoin.Vocab
		recs     [][]simjoin.Record
		innerPar = 1
	)
	if opts.UseSimJoin {
		vocab = simjoin.NewVocab(sets...)
		recs = make([][]simjoin.Record, m)
		for i, cs := range sets {
			if recs[i], err = vocab.Records(cs); err != nil {
				return nil, err
			}
		}
		innerPar = max(1, width/workers)
	}

	run := func(t task) ([]simjoin.Pair, error) {
		if opts.UseSimJoin {
			return vocab.JoinRecords(recs[t.i], recs[t.j], theta, innerPar)
		}
		var out []simjoin.Pair
		for a, ca := range sets[t.i] {
			for bj, cb := range sets[t.j] {
				if w := aff(ca, cb); w >= theta && w > 0 {
					out = append(out, simjoin.Pair{Left: a, Right: bj, Sim: w})
				}
			}
		}
		return out, nil
	}

	results := make([][]simjoin.Pair, len(tasks))
	if err := par.ForEachCtx(ctx, len(tasks), workers, func(ti int) error {
		var err error
		results[ti], err = run(tasks[ti])
		return err
	}); err != nil {
		return nil, err
	}
	for ti, t := range tasks {
		for _, p := range results[ti] {
			if err := b.AddEdge(ids[t.i][p.Left], ids[t.j][p.Right], p.Sim); err != nil {
				return nil, err
			}
		}
	}
	return b.Build(opts.Normalize), nil
}

// ExtendCtx grows an already-built graph by one interval and returns
// the extension as a NEW graph — g itself is never mutated, because
// queries against the previous generation may still be walking it.
// sets must be the full per-interval cluster sets, len(g.m)+1 long,
// whose first g.m entries produced g (same opts). The result is
// identical to FromClustersCtx over all of sets: node ids stay
// interval-major (new nodes come last), and the per-node half-edge
// orders — children by (weight desc, peer asc), parents by peer asc —
// are strict total orders (a peer appears at most once per list), so
// sorting the extended lists reproduces the one-shot build exactly.
//
// Normalized graphs cannot be extended: normalization already rescaled
// the old weights by a maximum the new interval may change, so the
// caller must rebuild those from scratch.
func ExtendCtx(ctx context.Context, g *Graph, sets [][]cluster.Cluster, opts FromClustersOptions) (*Graph, error) {
	if opts.Normalize {
		return nil, fmt.Errorf("clustergraph: cannot extend a normalized graph; rebuild instead")
	}
	if opts.Gap != g.gap {
		return nil, fmt.Errorf("clustergraph: extend with gap %d, graph was built with %d", opts.Gap, g.gap)
	}
	m := g.m // the new interval's index
	if len(sets) != m+1 {
		return nil, fmt.Errorf("clustergraph: extend wants %d cluster sets, got %d", m+1, len(sets))
	}
	for i := 0; i < m; i++ {
		if len(sets[i]) != len(g.intervals[i]) {
			return nil, fmt.Errorf("clustergraph: interval %d has %d clusters, graph has %d nodes there", i, len(sets[i]), len(g.intervals[i]))
		}
	}
	theta := opts.Theta
	if theta == 0 {
		theta = cluster.DefaultAffinityThreshold
	}
	aff := opts.Affinity
	if aff == nil {
		aff = cluster.Jaccard
	} else if opts.UseSimJoin {
		return nil, fmt.Errorf("clustergraph: UseSimJoin requires the default Jaccard affinity")
	}

	// Copy-on-write: fresh outer slices, shared inner lists except where
	// the new interval's edges land.
	nOld := len(g.interval)
	nNew := nOld + len(sets[m])
	ng := &Graph{
		m:         m + 1,
		gap:       g.gap,
		interval:  make([]int, nOld, nNew),
		intervals: make([][]int64, m+1),
		parents:   make([][]Half, nOld, nNew),
		children:  make([][]Half, nOld, nNew),
		clusters:  make([]cluster.Cluster, nOld, nNew),
		edges:     g.edges,
		maxWeight: g.maxWeight,
	}
	copy(ng.interval, g.interval)
	copy(ng.intervals, g.intervals)
	copy(ng.parents, g.parents)
	copy(ng.children, g.children)
	copy(ng.clusters, g.clusters)
	newIDs := make([]int64, len(sets[m]))
	for j, c := range sets[m] {
		id := int64(len(ng.interval))
		ng.interval = append(ng.interval, m)
		ng.intervals[m] = append(ng.intervals[m], id)
		ng.parents = append(ng.parents, nil)
		ng.children = append(ng.children, nil)
		c.ID = id
		c.Interval = m
		ng.clusters = append(ng.clusters, c)
		newIDs[j] = id
	}

	// Only intervals within gap+1 of the new one can gain edges.
	lo := max(0, m-g.gap-1)
	tasks := make([]int, 0, m-lo)
	for i := lo; i < m; i++ {
		tasks = append(tasks, i)
	}
	width := opts.Parallelism
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	workers := min(width, len(tasks))
	if workers < 1 {
		workers = 1
	}
	var (
		vocab    *simjoin.Vocab
		recs     map[int][]simjoin.Record
		innerPar = 1
	)
	if opts.UseSimJoin {
		involved := make([][]cluster.Cluster, 0, len(tasks)+1)
		for _, i := range tasks {
			involved = append(involved, sets[i])
		}
		involved = append(involved, sets[m])
		vocab = simjoin.NewVocab(involved...)
		recs = make(map[int][]simjoin.Record, len(tasks)+1)
		for _, i := range append(tasks, m) {
			r, err := vocab.Records(sets[i])
			if err != nil {
				return nil, err
			}
			recs[i] = r
		}
		innerPar = max(1, width/workers)
	}
	run := func(i int) ([]simjoin.Pair, error) {
		if opts.UseSimJoin {
			return vocab.JoinRecords(recs[i], recs[m], theta, innerPar)
		}
		var out []simjoin.Pair
		for a, ca := range sets[i] {
			for bj, cb := range sets[m] {
				if w := aff(ca, cb); w >= theta && w > 0 {
					out = append(out, simjoin.Pair{Left: a, Right: bj, Sim: w})
				}
			}
		}
		return out, nil
	}
	results := make([][]simjoin.Pair, len(tasks))
	if err := par.ForEachCtx(ctx, len(tasks), workers, func(ti int) error {
		var err error
		results[ti], err = run(tasks[ti])
		return err
	}); err != nil {
		return nil, err
	}

	// Splice the new edges in. An old node's children list is shared
	// with g, so it is deep-copied before the first append — mutating it
	// in place (or re-sorting it) would corrupt the graph a previous
	// generation is still serving.
	touched := make(map[int64]bool)
	for ti, i := range tasks {
		for _, p := range results[ti] {
			u, v := g.intervals[i][p.Left], newIDs[p.Right]
			if !touched[u] {
				ng.children[u] = append([]Half(nil), ng.children[u]...)
				touched[u] = true
			}
			ng.children[u] = append(ng.children[u], Half{Peer: v, Weight: p.Sim, Length: m - i})
			ng.parents[v] = append(ng.parents[v], Half{Peer: u, Weight: p.Sim, Length: m - i})
			ng.edges++
			if p.Sim > ng.maxWeight {
				ng.maxWeight = p.Sim
			}
		}
	}
	for u := range touched {
		hs := ng.children[u]
		sort.SliceStable(hs, func(i, j int) bool {
			if hs[i].Weight != hs[j].Weight {
				return hs[i].Weight > hs[j].Weight
			}
			return hs[i].Peer < hs[j].Peer
		})
	}
	for _, v := range newIDs {
		hs := ng.parents[v]
		sort.SliceStable(hs, func(i, j int) bool { return hs[i].Peer < hs[j].Peer })
	}
	return ng, nil
}
