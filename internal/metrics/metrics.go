// Package metrics is a dependency-free Prometheus instrumentation
// core: atomic counters, gauges and fixed-bucket histograms behind a
// Registry that renders the text exposition format (version 0.0.4) —
// HELP/TYPE headers, escaped label values, cumulative histogram
// buckets ending in +Inf. It exists so the serving layer can expose
// GET /metrics without pulling client_golang into go.mod (the module
// stays dependency-free by policy).
//
// Two usage modes coexist:
//
//   - live instruments: middleware calls Inc/Observe on the hot path
//     (lock-free atomics; safe under -race).
//   - scrape-time mirrors: values that already exist as monotone
//     counters elsewhere (cache stats, EngineStats, planner solve
//     histograms) are copied in with Set/SetHistogram just before
//     WriteTo, so one exposition path serves both without double
//     counting.
//
// Output is deterministic: families in registration order, series
// sorted by label values — scrape diffing and the smoke scripts rely
// on that.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition TYPE of a family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families and renders them. The zero value is
// not usable; create with NewRegistry.
type Registry struct {
	mu    sync.Mutex
	fams  []*family
	names map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending; +Inf implicit

	mu     sync.Mutex
	series map[string]*Series
}

// Vec is a metric family handle: resolve a concrete series with With.
type Vec struct{ f *family }

// Series is one labeled time series of a family. Counter/gauge series
// hold a single float; histogram series hold per-bucket counts plus a
// sum. All mutators are safe for concurrent use.
type Series struct {
	f         *family
	labelVals []string

	bits    atomic.Uint64 // counter/gauge value (float64 bits)
	buckets []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

// register validates and adds a family; duplicate or malformed names
// are programmer errors and panic.
func (r *Registry) register(name, help string, kind Kind, buckets []float64, labels []string) *Vec {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("metrics: buckets for %q not strictly ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.names[name] = true
	f := &family{name: name, help: help, kind: kind, labels: labels, buckets: buckets, series: map[string]*Series{}}
	r.fams = append(r.fams, f)
	return &Vec{f: f}
}

// Counter registers a counter family (monotone non-decreasing).
func (r *Registry) Counter(name, help string, labels ...string) *Vec {
	return r.register(name, help, KindCounter, nil, labels)
}

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Vec {
	return r.register(name, help, KindGauge, nil, labels)
}

// Histogram registers a histogram family over the given upper bounds
// (ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Vec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	return r.register(name, help, KindHistogram, buckets, labels)
}

// DefBuckets is the default latency histogram layout, in seconds.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// With resolves the series for the given label values, creating it on
// first use. The value count must match the family's label names.
func (v *Vec) With(labelValues ...string) *Series {
	f := v.f
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &Series{f: f, labelVals: append([]string(nil), labelValues...)}
		if f.kind == KindHistogram {
			s.buckets = make([]atomic.Int64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

// Inc adds 1 to a counter or gauge series.
func (s *Series) Inc() { s.Add(1) }

// Add adds d (non-negative for counters) to a counter or gauge series.
func (s *Series) Add(d float64) {
	for {
		old := s.bits.Load()
		if s.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Set overwrites the series value. For gauges, and for counters that
// mirror an external already-monotone source at scrape time — never
// for live counters.
func (s *Series) Set(v float64) { s.bits.Store(math.Float64bits(v)) }

// Observe records one measurement into a histogram series. Bucket
// slots hold per-bucket (non-cumulative) hit counts; values beyond the
// largest bound land in the final overflow slot. Rendering accumulates
// and emits the +Inf line from the total count, so both live and
// mirrored series produce monotone cumulative buckets.
func (s *Series) Observe(v float64) {
	placed := false
	for i, ub := range s.f.buckets {
		if v <= ub {
			s.buckets[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		s.buckets[len(s.buckets)-1].Add(1)
	}
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	s.count.Add(1)
}

// SetHistogram mirrors an external histogram snapshot: counts are
// per-bucket (non-cumulative) hit counts, len(counts) ==
// len(buckets)+1 with the final slot the +Inf overflow; sum is the
// total of all observed values. The series count becomes the sum of
// counts. Like Set, only for scrape-time mirroring of monotone
// sources.
func (s *Series) SetHistogram(counts []int64, sum float64) {
	if len(counts) != len(s.buckets) {
		panic(fmt.Sprintf("metrics: %q SetHistogram wants %d counts, got %d", s.f.name, len(s.buckets), len(counts)))
	}
	var total int64
	for i, c := range counts {
		s.buckets[i].Store(c)
		total += c
	}
	s.sumBits.Store(math.Float64bits(sum))
	s.count.Store(total)
}

// WriteTo renders the full exposition. Families appear in
// registration order, series sorted by label values.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		series := make([]*Series, 0, len(keys))
		sort.Strings(keys)
		for _, k := range keys {
			series = append(series, f.series[k])
		}
		f.mu.Unlock()
		if len(series) == 0 {
			continue
		}
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range series {
			s.render(&b)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func (s *Series) render(b *strings.Builder) {
	f := s.f
	switch f.kind {
	case KindCounter, KindGauge:
		b.WriteString(f.name)
		s.renderLabels(b, "", "")
		b.WriteByte(' ')
		b.WriteString(formatValue(math.Float64frombits(s.bits.Load())))
		b.WriteByte('\n')
	case KindHistogram:
		var cum int64
		for i, ub := range f.buckets {
			cum += s.buckets[i].Load()
			b.WriteString(f.name)
			b.WriteString("_bucket")
			s.renderLabels(b, "le", formatValue(ub))
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(cum, 10))
			b.WriteByte('\n')
		}
		total := s.count.Load()
		b.WriteString(f.name)
		b.WriteString("_bucket")
		s.renderLabels(b, "le", "+Inf")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(total, 10))
		b.WriteByte('\n')
		b.WriteString(f.name)
		b.WriteString("_sum")
		s.renderLabels(b, "", "")
		b.WriteByte(' ')
		b.WriteString(formatValue(math.Float64frombits(s.sumBits.Load())))
		b.WriteByte('\n')
		b.WriteString(f.name)
		b.WriteString("_count")
		s.renderLabels(b, "", "")
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(total, 10))
		b.WriteByte('\n')
	}
}

// renderLabels writes {l1="v1",...} plus an optional extra pair (the
// histogram le label); nothing when there are no labels at all.
func (s *Series) renderLabels(b *strings.Builder, extraName, extraVal string) {
	if len(s.labelVals) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, name := range s.f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(s.labelVals[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(s.labelVals) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip float, with the special values spelled +Inf,
// -Inf and NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
