package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// --- a strict text-format parser for the tests ---

// parsedFamily is one exposition family as the parser saw it.
type parsedFamily struct {
	name    string
	help    string
	kind    string
	samples []parsedSample
}

type parsedSample struct {
	name   string            // full sample name, e.g. foo_bucket
	labels map[string]string // unescaped label values
	value  float64
}

// parseExposition validates the Prometheus text format strictly:
// every family must open with a # HELP line immediately followed by
// its # TYPE line; every sample must parse and belong to the family
// declared above it; histogram suffixes are only legal for histogram
// families. It fails the test on any violation.
func parseExposition(t *testing.T, text string) map[string]*parsedFamily {
	t.Helper()
	fams := map[string]*parsedFamily{}
	var cur *parsedFamily
	var pendingHelp string
	var pendingName string
	lines := strings.Split(text, "\n")
	if lines[len(lines)-1] != "" {
		t.Fatalf("exposition does not end in a newline")
	}
	for ln, line := range lines[:len(lines)-1] {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if pendingName != "" {
				t.Fatalf("line %d: HELP %s while HELP %s awaits its TYPE", ln+1, name, pendingName)
			}
			pendingName, pendingHelp = name, help
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: TYPE without kind: %q", ln+1, line)
			}
			if name != pendingName {
				t.Fatalf("line %d: TYPE %s not preceded by its HELP (pending %q)", ln+1, name, pendingName)
			}
			if kind != "counter" && kind != "gauge" && kind != "histogram" {
				t.Fatalf("line %d: unknown TYPE %q", ln+1, kind)
			}
			if _, dup := fams[name]; dup {
				t.Fatalf("line %d: duplicate family %s", ln+1, name)
			}
			cur = &parsedFamily{name: name, help: pendingHelp, kind: kind}
			fams[name] = cur
			pendingName, pendingHelp = "", ""
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		default:
			if cur == nil {
				t.Fatalf("line %d: sample before any TYPE: %q", ln+1, line)
			}
			s := parseSample(t, ln+1, line)
			base := s.name
			if cur.kind == "histogram" {
				base = strings.TrimSuffix(base, "_bucket")
				base = strings.TrimSuffix(base, "_sum")
				base = strings.TrimSuffix(base, "_count")
			}
			if base != cur.name {
				t.Fatalf("line %d: sample %s under family %s", ln+1, s.name, cur.name)
			}
			if cur.kind != "histogram" && s.name != cur.name {
				t.Fatalf("line %d: suffixed sample %s in %s family", ln+1, s.name, cur.kind)
			}
			cur.samples = append(cur.samples, s)
		}
	}
	if pendingName != "" {
		t.Fatalf("HELP %s never got its TYPE", pendingName)
	}
	return fams
}

// parseSample parses `name{l1="v1",...} value`, unescaping label
// values and rejecting malformed escapes.
func parseSample(t *testing.T, ln int, line string) parsedSample {
	t.Helper()
	s := parsedSample{labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	}
	s.name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			eq := strings.Index(rest, `="`)
			if eq < 0 {
				t.Fatalf("line %d: malformed labels: %q", ln, line)
			}
			lname := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			j := 0
			for ; j < len(rest); j++ {
				c := rest[j]
				if c == '\\' {
					j++
					if j >= len(rest) {
						t.Fatalf("line %d: dangling escape", ln)
					}
					switch rest[j] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: bad escape \\%c", ln, rest[j])
					}
					continue
				}
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			if j >= len(rest) {
				t.Fatalf("line %d: unterminated label value", ln)
			}
			s.labels[lname] = val.String()
			rest = rest[j+1:]
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			t.Fatalf("line %d: malformed label list: %q", ln, line)
		}
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("line %d: no space before value: %q", ln, line)
	}
	v, err := parseValue(strings.TrimPrefix(rest, " "))
	if err != nil {
		t.Fatalf("line %d: bad value in %q: %v", ln, line, err)
	}
	s.value = v
	return s
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// checkHistogram asserts the family's buckets are cumulative,
// monotone, end at +Inf, and agree with _count.
func checkHistogram(t *testing.T, f *parsedFamily) {
	t.Helper()
	type key string
	series := map[key][]parsedSample{}
	sums := map[key]float64{}
	counts := map[key]float64{}
	for _, s := range f.samples {
		labels := make([]string, 0, len(s.labels))
		for k, v := range s.labels {
			if k == "le" {
				continue
			}
			labels = append(labels, k+"="+v)
		}
		sort.Strings(labels)
		k := key(strings.Join(labels, ","))
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			series[k] = append(series[k], s)
		case strings.HasSuffix(s.name, "_sum"):
			sums[k] = s.value
		case strings.HasSuffix(s.name, "_count"):
			counts[k] = s.value
		}
	}
	for k, buckets := range series {
		prev := -1.0
		prevUB := math.Inf(-1)
		for _, b := range buckets {
			ub, err := parseValue(b.labels["le"])
			if err != nil {
				t.Fatalf("%s{%s}: bad le %q", f.name, k, b.labels["le"])
			}
			if ub <= prevUB {
				t.Fatalf("%s{%s}: le %v not ascending after %v", f.name, k, ub, prevUB)
			}
			if b.value < prev {
				t.Fatalf("%s{%s}: bucket at le=%v went down: %v < %v", f.name, k, ub, b.value, prev)
			}
			prev, prevUB = b.value, ub
		}
		last := buckets[len(buckets)-1]
		if last.labels["le"] != "+Inf" {
			t.Fatalf("%s{%s}: final bucket is le=%q, want +Inf", f.name, k, last.labels["le"])
		}
		if c, ok := counts[k]; !ok || c != last.value {
			t.Fatalf("%s{%s}: _count %v != +Inf bucket %v", f.name, k, c, last.value)
		}
		if _, ok := sums[k]; !ok {
			t.Fatalf("%s{%s}: missing _sum", f.name, k)
		}
	}
}

// --- tests ---

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("test_requests_total", "Requests with a \\ backslash\nand newline in help.", "route", "status")
	gauge := r.Gauge("test_inflight", "Gauge.").With()
	hist := r.Histogram("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "route")

	reqs.With("home", "200").Add(3)
	reqs.With(`we"ird\route`+"\n", "500").Inc()
	gauge.Set(7.5)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		hist.With("home").Observe(v)
	}

	text := scrape(t, r)
	fams := parseExposition(t, text)

	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3: %q", len(fams), text)
	}
	rf := fams["test_requests_total"]
	if rf == nil || rf.kind != "counter" {
		t.Fatalf("test_requests_total missing or wrong kind: %+v", rf)
	}
	if !strings.Contains(rf.help, "\\") || !strings.Contains(rf.help, "backslash") {
		// The parser keeps HELP raw; the escaped form must be on the wire.
		if !strings.Contains(text, `backslash\nand`) || !strings.Contains(text, `\\ backslash`) {
			t.Fatalf("help not escaped on the wire: %q", text)
		}
	}
	var found bool
	for _, s := range rf.samples {
		if s.labels["route"] == `we"ird\route`+"\n" && s.labels["status"] == "500" {
			found = true
			if s.value != 1 {
				t.Fatalf("escaped-label series = %v, want 1", s.value)
			}
		}
	}
	if !found {
		t.Fatalf("escaped label value did not round-trip: %q", text)
	}

	if g := fams["test_inflight"]; g == nil || g.kind != "gauge" || g.samples[0].value != 7.5 {
		t.Fatalf("gauge wrong: %+v", g)
	}

	hf := fams["test_latency_seconds"]
	if hf == nil || hf.kind != "histogram" {
		t.Fatalf("histogram missing: %+v", hf)
	}
	checkHistogram(t, hf)
	for _, s := range hf.samples {
		if s.name == "test_latency_seconds_count" && s.value != 4 {
			t.Fatalf("histogram count = %v, want 4", s.value)
		}
		if s.name == "test_latency_seconds_bucket" && s.labels["le"] == "0.1" && s.value != 2 {
			t.Fatalf("le=0.1 cumulative = %v, want 2", s.value)
		}
	}
}

func TestCounterMonotoneAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "Events.", "kind")
	h := r.Histogram("test_work_seconds", "Work.", []float64{1, 10}, "kind")

	read := func() (map[string]float64, map[string]*parsedFamily) {
		fams := parseExposition(t, scrape(t, r))
		vals := map[string]float64{}
		for _, f := range fams {
			for _, s := range f.samples {
				key := s.name + "{"
				labels := make([]string, 0, len(s.labels))
				for k, v := range s.labels {
					labels = append(labels, k+"="+v)
				}
				sort.Strings(labels)
				vals[key+strings.Join(labels, ",")+"}"] = s.value
			}
		}
		return vals, fams
	}

	c.With("a").Inc()
	h.With("a").Observe(0.5)
	before, _ := read()
	c.With("a").Add(2)
	c.With("b").Inc()
	h.With("a").Observe(100)
	after, fams := read()
	checkHistogram(t, fams["test_work_seconds"])

	for k, v := range before {
		if after[k] < v {
			t.Fatalf("series %s went backwards: %v -> %v", k, v, after[k])
		}
	}
	if got := after[`test_events_total{kind=a}`]; got != 3 {
		t.Fatalf("test_events_total{kind=a} = %v, want 3", got)
	}
}

func TestSetHistogramMirror(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_mirror_seconds", "Mirrored.", []float64{1, 2, 3}, "algo")
	// Per-bucket counts with the final overflow slot; sum is arbitrary.
	h.With("bfs").SetHistogram([]int64{5, 0, 2, 1}, 12.5)
	fams := parseExposition(t, scrape(t, r))
	f := fams["test_mirror_seconds"]
	checkHistogram(t, f)
	want := map[string]float64{"1": 5, "2": 5, "3": 7, "+Inf": 8}
	for _, s := range f.samples {
		if s.name != "test_mirror_seconds_bucket" {
			continue
		}
		if got := s.value; got != want[s.labels["le"]] {
			t.Fatalf("le=%s = %v, want %v", s.labels["le"], got, want[s.labels["le"]])
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	build := func() string {
		r := NewRegistry()
		c := r.Counter("test_a_total", "A.", "x")
		g := r.Gauge("test_b", "B.")
		c.With("2").Inc()
		c.With("1").Inc()
		g.With().Set(1)
		return scrape(t, r)
	}
	first := build()
	for i := 0; i < 5; i++ {
		if got := build(); got != first {
			t.Fatalf("output not deterministic:\n%q\nvs\n%q", first, got)
		}
	}
	if strings.Index(first, `x="1"`) > strings.Index(first, `x="2"`) {
		t.Fatalf("series not sorted by label value: %q", first)
	}
}

// TestConcurrentScrape hammers live instruments from many goroutines
// while scraping; run under -race this is the data-race gate, and the
// parser run on every scrape asserts each snapshot is well-formed.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_hits_total", "Hits.", "worker")
	h := r.Histogram("test_dur_seconds", "Durations.", []float64{0.001, 0.01, 0.1}, "worker")
	g := r.Gauge("test_level", "Level.").With()

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := fmt.Sprintf("w%d", w)
			for i := 0; i < perWorker; i++ {
				c.With(lbl).Inc()
				h.With(lbl).Observe(float64(i%200) / 1000)
				g.Set(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			fams := parseExposition(t, scrape(t, r))
			var total float64
			for _, s := range fams["test_hits_total"].samples {
				total += s.value
			}
			if total != workers*perWorker {
				t.Fatalf("lost increments: %v, want %v", total, workers*perWorker)
			}
			checkHistogram(t, fams["test_dur_seconds"])
			return
		default:
			// Mid-flight scrapes must be well-formed text; the strict
			// cumulative checks run only on the quiesced snapshot above (a
			// live histogram's bucket/count pair is not read atomically, so
			// a racing scrape may see them one observation apart).
			parseExposition(t, scrape(t, r))
		}
	}
}
