package burst

import (
	"math/rand"
	"testing"
)

// flat builds a series of n intervals with the given per-interval
// document total and baseline count, then injects spikes.
func flat(n int, total, base int64) ([]int64, []int64) {
	counts := make([]int64, n)
	totals := make([]int64, n)
	for i := range counts {
		counts[i] = base
		totals[i] = total
	}
	return counts, totals
}

func TestZScoreDetectsSpike(t *testing.T) {
	counts, totals := flat(10, 1000, 10)
	counts[4] = 200
	bursts, err := ZScore(counts, totals, ZScoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 1 || bursts[0].Start != 4 || bursts[0].End != 4 {
		t.Fatalf("bursts = %v, want single burst at 4", bursts)
	}
	if bursts[0].Score < 2.5 || bursts[0].Length() != 1 {
		t.Errorf("burst = %+v, want z >= 2.5, length 1", bursts[0])
	}
}

func TestZScoreMergesAdjacent(t *testing.T) {
	counts, totals := flat(12, 1000, 10)
	counts[5], counts[6], counts[7] = 300, 250, 280
	bursts, err := ZScore(counts, totals, ZScoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 1 || bursts[0].Start != 5 || bursts[0].End != 7 {
		t.Fatalf("bursts = %v, want one merged burst [5,7]", bursts)
	}
}

func TestZScoreRateNormalization(t *testing.T) {
	// Count doubles but so does the corpus: rate is flat, no burst.
	counts := []int64{10, 10, 10, 20, 10, 10}
	totals := []int64{1000, 1000, 1000, 2000, 1000, 1000}
	bursts, err := ZScore(counts, totals, ZScoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 0 {
		t.Errorf("rate-flat series produced bursts: %v", bursts)
	}
}

func TestZScoreEdgeCases(t *testing.T) {
	if _, err := ZScore([]int64{1}, []int64{1, 2}, ZScoreOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := ZScore([]int64{5}, []int64{2}, ZScoreOptions{}); err == nil {
		t.Error("count > total accepted")
	}
	// Flat series: no bursts, no error.
	counts, totals := flat(5, 100, 7)
	bursts, err := ZScore(counts, totals, ZScoreOptions{})
	if err != nil || len(bursts) != 0 {
		t.Errorf("flat series: %v, %v", bursts, err)
	}
	// Empty and single-interval series.
	if b, err := ZScore(nil, nil, ZScoreOptions{}); err != nil || b != nil {
		t.Errorf("empty series: %v, %v", b, err)
	}
	// Intervals below MinDocs are ignored.
	counts = []int64{1, 50, 1, 1}
	totals = []int64{2, 100, 100, 100}
	if _, err := ZScore(counts, totals, ZScoreOptions{MinDocs: 10}); err != nil {
		t.Errorf("MinDocs series: %v", err)
	}
}

func TestKleinbergDetectsSustainedBurst(t *testing.T) {
	counts, totals := flat(14, 1000, 10)
	for i := 6; i <= 9; i++ {
		counts[i] = 60
	}
	bursts, err := Kleinberg(counts, totals, KleinbergOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 1 || bursts[0].Start != 6 || bursts[0].End != 9 {
		t.Fatalf("bursts = %v, want [6,9]", bursts)
	}
	if bursts[0].Score <= 0 {
		t.Errorf("burst score = %g, want positive saving", bursts[0].Score)
	}
}

func TestKleinbergResistsSingleSpikes(t *testing.T) {
	// A mild single-interval wobble should not open a burst when gamma
	// is high.
	counts, totals := flat(10, 1000, 10)
	counts[3] = 16
	bursts, err := Kleinberg(counts, totals, KleinbergOptions{Gamma: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 0 {
		t.Errorf("mild wobble burst under high gamma: %v", bursts)
	}
}

func TestKleinbergOptionsValidation(t *testing.T) {
	counts, totals := flat(3, 10, 1)
	if _, err := Kleinberg(counts, totals, KleinbergOptions{S: 0.5}); err == nil {
		t.Error("S <= 1 accepted")
	}
	if _, err := Kleinberg(counts, totals, KleinbergOptions{Gamma: -1}); err == nil {
		t.Error("negative gamma accepted")
	}
	if _, err := Kleinberg([]int64{1}, []int64{1, 1}, KleinbergOptions{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Kleinberg([]int64{5}, []int64{2}, KleinbergOptions{}); err == nil {
		t.Error("count > total accepted")
	}
	// All-zero series: nothing to detect.
	if b, err := Kleinberg([]int64{0, 0}, []int64{10, 10}, KleinbergOptions{}); err != nil || len(b) != 0 {
		t.Errorf("zero series: %v, %v", b, err)
	}
	if b, err := Kleinberg(nil, nil, KleinbergOptions{}); err != nil || b != nil {
		t.Errorf("empty series: %v, %v", b, err)
	}
}

func TestKleinbergVersusZScoreOnNoise(t *testing.T) {
	// Noisy baseline with one strong 3-interval event: both detectors
	// must find an overlap with the true window, and Kleinberg must not
	// fragment it.
	rng := rand.New(rand.NewSource(3))
	n := 30
	counts := make([]int64, n)
	totals := make([]int64, n)
	for i := range counts {
		totals[i] = 1000
		counts[i] = 8 + int64(rng.Intn(5))
	}
	for i := 12; i <= 14; i++ {
		counts[i] = 70 + int64(rng.Intn(10))
	}
	kb, err := Kleinberg(counts, totals, KleinbergOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(kb) != 1 || kb[0].Start > 12 || kb[0].End < 14 {
		t.Errorf("Kleinberg = %v, want one burst covering [12,14]", kb)
	}
	zb, err := ZScore(counts, totals, ZScoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range zb {
		if b.Start <= 12 && b.End >= 14 {
			found = true
		}
	}
	if !found {
		t.Errorf("ZScore = %v, no burst covering [12,14]", zb)
	}
}

func TestBurstString(t *testing.T) {
	b := Burst{Start: 2, End: 5, Score: 1.234}
	if got, want := b.String(), "[2,5] score 1.23"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if b.Length() != 4 {
		t.Errorf("Length = %d, want 4", b.Length())
	}
}

func BenchmarkKleinberg(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 365
	counts := make([]int64, n)
	totals := make([]int64, n)
	for i := range counts {
		totals[i] = 10000
		counts[i] = int64(50 + rng.Intn(20))
	}
	counts[100], counts[101] = 400, 380
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Kleinberg(counts, totals, KleinbergOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
