// Package burst detects information bursts in keyword time series —
// the BlogScope feature the paper's introduction describes ("points to
// events of interest via information bursts") and the phenomenon that
// makes keyword clusters appear in the first place: an event drives a
// keyword's document frequency far above its baseline for a few
// intervals.
//
// Two detectors are provided:
//
//   - ZScore: flags intervals where the frequency (as a fraction of
//     the interval's documents, so growing corpora do not fake bursts)
//     exceeds a trimmed baseline — the mean of the lower 75% of rates —
//     by a multiple of that baseline's standard deviation. Cheap,
//     stateless, good for dashboards.
//   - Kleinberg: the classic two-state automaton (J. Kleinberg,
//     "Bursty and Hierarchical Structure in Streams", KDD 2002) solved
//     exactly with Viterbi dynamic programming over a binomial cost
//     model; it produces clean maximal burst intervals and resists
//     single-interval noise.
package burst

import (
	"fmt"
	"math"
	"sort"
)

// Burst is one maximal bursty stretch of intervals, inclusive on both
// ends.
type Burst struct {
	Start, End int
	// Score quantifies the burst: peak z-score for ZScore, cost saving
	// over the quiescent state for Kleinberg.
	Score float64
}

// Length returns the number of intervals the burst spans.
func (b Burst) Length() int { return b.End - b.Start + 1 }

func (b Burst) String() string {
	return fmt.Sprintf("[%d,%d] score %.2f", b.Start, b.End, b.Score)
}

// ZScoreOptions configures the z-score detector.
type ZScoreOptions struct {
	// Threshold is the minimum z-score to call an interval bursty
	// (default 2.5).
	Threshold float64
	// MinDocs skips intervals with fewer total documents, where rates
	// are noise (default 1).
	MinDocs int64
}

// ZScore detects bursts in counts[i] occurrences out of totals[i]
// documents per interval. Consecutive bursty intervals merge into one
// Burst with the peak z-score.
func ZScore(counts, totals []int64, opts ZScoreOptions) ([]Burst, error) {
	if len(counts) != len(totals) {
		return nil, fmt.Errorf("burst: counts (%d) and totals (%d) differ in length", len(counts), len(totals))
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = 2.5
	}
	minDocs := opts.MinDocs
	if minDocs <= 0 {
		minDocs = 1
	}
	rates := make([]float64, len(counts))
	var usable []float64
	for i := range counts {
		if totals[i] < minDocs {
			rates[i] = math.NaN()
			continue
		}
		if counts[i] < 0 || counts[i] > totals[i] {
			return nil, fmt.Errorf("burst: interval %d: count %d outside [0,%d]", i, counts[i], totals[i])
		}
		rates[i] = float64(counts[i]) / float64(totals[i])
		usable = append(usable, rates[i])
	}
	if len(usable) < 2 {
		return nil, nil // no baseline to deviate from
	}
	// Baseline statistics come from the lower 75% of rates so that the
	// bursts themselves (which can be a sizable fraction of a short
	// series) do not inflate the mean and variance they are judged
	// against.
	sort.Float64s(usable)
	cut := (len(usable)*3 + 3) / 4
	if cut < 2 {
		cut = 2
	}
	base := usable[:cut]
	var mean float64
	for _, r := range base {
		mean += r
	}
	mean /= float64(len(base))
	var variance float64
	for _, r := range base {
		variance += (r - mean) * (r - mean)
	}
	variance /= float64(len(base))
	sd := math.Sqrt(variance)

	var out []Burst
	open := -1
	peak := 0.0
	flush := func(end int) {
		if open >= 0 {
			out = append(out, Burst{Start: open, End: end, Score: peak})
			open = -1
			peak = 0
		}
	}
	for i, r := range rates {
		z := math.NaN()
		switch {
		case math.IsNaN(r):
		case sd > 0:
			z = (r - mean) / sd
		case r > mean:
			// Perfectly flat baseline: any excursion above it is an
			// unambiguous burst.
			z = math.Inf(1)
		}
		if !math.IsNaN(z) && z >= threshold {
			if open < 0 {
				open = i
			}
			if z > peak {
				peak = z
			}
			continue
		}
		flush(i - 1)
	}
	flush(len(rates) - 1)
	return out, nil
}

// KleinbergOptions configures the two-state automaton.
type KleinbergOptions struct {
	// S scales the burst state's rate relative to the baseline
	// (default 2: the bursty state emits at twice the base rate).
	S float64
	// Gamma is the cost of entering the burst state (default 1); higher
	// values demand stronger evidence, suppressing one-off spikes.
	Gamma float64
}

// Kleinberg runs the two-state automaton over counts[i] of totals[i]
// per interval and returns the maximal stretches labeled bursty by the
// minimum-cost state sequence. The Score of each burst is the cost
// saved versus staying quiescent across it.
func Kleinberg(counts, totals []int64, opts KleinbergOptions) ([]Burst, error) {
	if len(counts) != len(totals) {
		return nil, fmt.Errorf("burst: counts (%d) and totals (%d) differ in length", len(counts), len(totals))
	}
	s := opts.S
	if s == 0 {
		s = 2
	}
	if s <= 1 {
		return nil, fmt.Errorf("burst: S must exceed 1, got %g", s)
	}
	gamma := opts.Gamma
	if gamma == 0 {
		gamma = 1
	}
	if gamma < 0 {
		return nil, fmt.Errorf("burst: Gamma must be >= 0, got %g", gamma)
	}
	n := len(counts)
	if n == 0 {
		return nil, nil
	}

	// Baseline rate p0 across the whole series; burst rate p1 = s*p0.
	var totalCount, totalDocs int64
	for i := range counts {
		if counts[i] < 0 || (totals[i] > 0 && counts[i] > totals[i]) {
			return nil, fmt.Errorf("burst: interval %d: count %d outside [0,%d]", i, counts[i], totals[i])
		}
		totalCount += counts[i]
		totalDocs += totals[i]
	}
	if totalDocs == 0 || totalCount == 0 {
		return nil, nil
	}
	p0 := float64(totalCount) / float64(totalDocs)
	p1 := s * p0
	if p1 >= 1 {
		p1 = 1 - 1e-9
	}

	// Per-interval emission cost under each state: negative binomial
	// log-likelihood -[k ln p + (n-k) ln (1-p)].
	cost := func(k, t int64, p float64) float64 {
		if t == 0 {
			return 0
		}
		return -(float64(k)*math.Log(p) + float64(t-k)*math.Log(1-p))
	}

	// Viterbi over states {0: quiescent, 1: bursty}; entering state 1
	// costs gamma, falling back is free (Kleinberg's asymmetry).
	const inf = math.MaxFloat64 / 4
	prev := [2]float64{0, gamma}
	type choice [2]uint8 // back-pointers for this interval
	back := make([]choice, n)
	for i := 0; i < n; i++ {
		c0 := cost(counts[i], totals[i], p0)
		c1 := cost(counts[i], totals[i], p1)
		var cur [2]float64
		// To state 0: from 0 (free) or from 1 (free).
		if prev[0] <= prev[1] {
			cur[0] = prev[0] + c0
			back[i][0] = 0
		} else {
			cur[0] = prev[1] + c0
			back[i][0] = 1
		}
		// To state 1: from 1 (free) or from 0 (pay gamma).
		if prev[1] <= prev[0]+gamma {
			cur[1] = prev[1] + c1
			back[i][1] = 1
		} else {
			cur[1] = prev[0] + gamma + c1
			back[i][1] = 0
		}
		if cur[0] > inf || cur[1] > inf {
			return nil, fmt.Errorf("burst: cost overflow at interval %d", i)
		}
		prev = cur
	}

	// Reconstruct the optimal state sequence.
	states := make([]uint8, n)
	var last uint8
	if prev[1] < prev[0] {
		last = 1
	}
	states[n-1] = last
	for i := n - 1; i > 0; i-- {
		last = back[i][last]
		states[i-1] = last
	}

	// Extract maximal bursty stretches, scoring each by the emission
	// cost saved versus the quiescent state.
	var out []Burst
	open := -1
	saved := 0.0
	flush := func(end int) {
		if open >= 0 {
			out = append(out, Burst{Start: open, End: end, Score: saved})
			open = -1
			saved = 0
		}
	}
	for i := 0; i < n; i++ {
		if states[i] == 1 {
			if open < 0 {
				open = i
			}
			saved += cost(counts[i], totals[i], p0) - cost(counts[i], totals[i], p1)
			continue
		}
		flush(i - 1)
	}
	flush(n - 1)
	return out, nil
}
