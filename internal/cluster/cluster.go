// Package cluster defines keyword clusters — the per-interval output of
// the cluster-generation stage (Section 3) and the nodes of the cluster
// graph (Section 4) — together with the affinity functions used to
// weigh edges between clusters of nearby intervals.
package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Cluster is a set of correlated keywords discovered in one temporal
// interval.
type Cluster struct {
	// ID is the cluster's node id in the cluster graph. IDs are unique
	// across all intervals.
	ID int64 `json:"id"`
	// Interval is the index of the temporal interval the cluster was
	// discovered in.
	Interval int `json:"interval"`
	// Keywords is the sorted, de-duplicated keyword set.
	Keywords []string `json:"keywords"`
}

// New builds a cluster, sorting and de-duplicating keywords.
func New(id int64, interval int, keywords []string) Cluster {
	kws := append([]string(nil), keywords...)
	sort.Strings(kws)
	kws = dedupSorted(kws)
	return Cluster{ID: id, Interval: interval, Keywords: kws}
}

func dedupSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Contains reports whether the cluster includes keyword w.
func (c Cluster) Contains(w string) bool {
	i := sort.SearchStrings(c.Keywords, w)
	return i < len(c.Keywords) && c.Keywords[i] == w
}

// Size returns the number of keywords.
func (c Cluster) Size() int { return len(c.Keywords) }

// String renders the cluster compactly for logs and examples.
func (c Cluster) String() string {
	return fmt.Sprintf("c%d@t%d{%s}", c.ID, c.Interval, strings.Join(c.Keywords, ","))
}

// IntersectionSize returns |a ∩ b| for two sorted keyword sets.
func IntersectionSize(a, b Cluster) int {
	i, j, n := 0, 0, 0
	for i < len(a.Keywords) && j < len(b.Keywords) {
		switch {
		case a.Keywords[i] == b.Keywords[j]:
			n++
			i++
			j++
		case a.Keywords[i] < b.Keywords[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// AffinityFunc quantifies the overlap of two clusters (Section 4: "we
// can quantify the affinity of the clusters by functions measuring
// their overlap"). Larger is more affine; 0 means unrelated.
type AffinityFunc func(a, b Cluster) float64

// Jaccard is |a∩b| / |a∪b|, the affinity the paper uses for its
// qualitative study. Its range is [0,1], which the path-pruning rules
// of Section 4.3 require.
func Jaccard(a, b Cluster) float64 {
	inter := IntersectionSize(a, b)
	union := len(a.Keywords) + len(b.Keywords) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Intersection is the raw overlap count |a∩b|. Weights from this
// affinity are not bounded by 1; the cluster-graph construction
// normalizes them (Section 4.1, footnote 1).
func Intersection(a, b Cluster) float64 {
	return float64(IntersectionSize(a, b))
}

// OverlapCoefficient is |a∩b| / min(|a|,|b|): forgiving when a small
// cluster is absorbed into a larger one across intervals, which suits
// growing stories (the paper's Figure 16 shows cluster sizes swelling).
func OverlapCoefficient(a, b Cluster) float64 {
	inter := IntersectionSize(a, b)
	m := len(a.Keywords)
	if len(b.Keywords) < m {
		m = len(b.Keywords)
	}
	if m == 0 {
		return 0
	}
	return float64(inter) / float64(m)
}

// DefaultAffinityThreshold is θ, the minimum affinity for a cluster-graph
// edge (the paper uses θ = 0.1).
const DefaultAffinityThreshold = 0.1

// WriteSetsJSONL streams per-interval cluster sets to w, one cluster
// per line, so the cluster-generation and stable-cluster stages can run
// as separate processes over a file.
func WriteSetsJSONL(w io.Writer, sets [][]Cluster) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, cs := range sets {
		for _, c := range cs {
			if c.Interval != i {
				return fmt.Errorf("cluster: cluster %d claims interval %d but is stored under %d", c.ID, c.Interval, i)
			}
			if err := enc.Encode(c); err != nil {
				return fmt.Errorf("cluster: encode cluster %d: %w", c.ID, err)
			}
		}
	}
	return bw.Flush()
}

// ReadSetsJSONL rebuilds per-interval cluster sets from the stream
// produced by WriteSetsJSONL. Keyword sets are re-normalized (sorted,
// de-duplicated) so hand-written files behave.
func ReadSetsJSONL(r io.Reader) ([][]Cluster, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	byInterval := map[int][]Cluster{}
	maxIdx := -1
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var c Cluster
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			return nil, fmt.Errorf("cluster: line %d: %w", line, err)
		}
		if c.Interval < 0 {
			return nil, fmt.Errorf("cluster: line %d: negative interval %d", line, c.Interval)
		}
		c = New(c.ID, c.Interval, c.Keywords)
		byInterval[c.Interval] = append(byInterval[c.Interval], c)
		if c.Interval > maxIdx {
			maxIdx = c.Interval
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: scan: %w", err)
	}
	sets := make([][]Cluster, maxIdx+1)
	for i := 0; i <= maxIdx; i++ {
		sets[i] = byInterval[i]
	}
	return sets, nil
}

// ParseAffinity maps a name to an affinity function. Names: "jaccard",
// "intersection", "overlap".
func ParseAffinity(name string) (AffinityFunc, error) {
	switch strings.ToLower(name) {
	case "jaccard":
		return Jaccard, nil
	case "intersection":
		return Intersection, nil
	case "overlap":
		return OverlapCoefficient, nil
	default:
		return nil, fmt.Errorf("cluster: unknown affinity %q (want jaccard, intersection or overlap)", name)
	}
}
