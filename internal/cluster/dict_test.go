package cluster

import "testing"

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	b := d.Intern("beta")
	if a == b {
		t.Fatalf("distinct words share id %d", a)
	}
	if got := d.Intern("alpha"); got != a {
		t.Errorf("re-interning alpha: id %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if w := d.Word(b); w != "beta" {
		t.Errorf("Word(%d) = %q, want beta", b, w)
	}
	if id, ok := d.ID("beta"); !ok || id != b {
		t.Errorf("ID(beta) = %d,%v; want %d,true", id, ok, b)
	}
	if _, ok := d.ID("gamma"); ok {
		t.Error("ID reports an uninterned word as present")
	}
}
