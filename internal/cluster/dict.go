package cluster

// Dict interns keywords to dense int32 ids in first-seen order. It is
// the string→id layer shared by consumers that want to leave strings
// behind on their hot paths (the similarity join interns every keyword
// once per run and works on int32 token ids from then on).
//
// A Dict is not safe for concurrent mutation; build it up front and
// share it read-only afterwards (ID and Word are pure lookups).
type Dict struct {
	ids   map[string]int32
	words []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: make(map[string]int32)} }

// Intern returns the id of w, assigning the next free id on first
// sight.
func (d *Dict) Intern(w string) int32 {
	if id, ok := d.ids[w]; ok {
		return id
	}
	id := int32(len(d.words))
	d.words = append(d.words, w)
	d.ids[w] = id
	return id
}

// ID returns the id of w and whether w has been interned.
func (d *Dict) ID(w string) (int32, bool) {
	id, ok := d.ids[w]
	return id, ok
}

// Len returns the number of interned keywords.
func (d *Dict) Len() int { return len(d.words) }

// Word returns the keyword behind id.
func (d *Dict) Word(id int32) string { return d.words[id] }
