package cluster

import (
	"bytes"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	c := New(1, 0, []string{"zebra", "apple", "zebra", "mango"})
	want := []string{"apple", "mango", "zebra"}
	if !reflect.DeepEqual(c.Keywords, want) {
		t.Errorf("Keywords = %v, want %v", c.Keywords, want)
	}
	if c.ID != 1 || c.Interval != 0 || c.Size() != 3 {
		t.Errorf("metadata wrong: %+v", c)
	}
}

func TestNewDoesNotAliasInput(t *testing.T) {
	in := []string{"b", "a"}
	c := New(1, 0, in)
	in[0] = "mutated"
	if c.Keywords[0] != "a" || c.Keywords[1] != "b" {
		t.Errorf("cluster aliases caller slice: %v", c.Keywords)
	}
}

func TestContains(t *testing.T) {
	c := New(1, 0, []string{"b", "a", "c"})
	for _, w := range []string{"a", "b", "c"} {
		if !c.Contains(w) {
			t.Errorf("Contains(%q) = false", w)
		}
	}
	if c.Contains("z") || c.Contains("") {
		t.Error("Contains true for absent keyword")
	}
}

func TestString(t *testing.T) {
	c := New(3, 2, []string{"b", "a"})
	if got, want := c.String(), "c3@t2{a,b}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestAffinities(t *testing.T) {
	a := New(1, 0, []string{"w", "x", "y"})
	b := New(2, 1, []string{"x", "y", "z", "q"})
	if got := IntersectionSize(a, b); got != 2 {
		t.Errorf("IntersectionSize = %d, want 2", got)
	}
	if got := Intersection(a, b); got != 2 {
		t.Errorf("Intersection = %g, want 2", got)
	}
	if got, want := Jaccard(a, b), 2.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Jaccard = %g, want %g", got, want)
	}
	if got, want := OverlapCoefficient(a, b), 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("OverlapCoefficient = %g, want %g", got, want)
	}
}

func TestAffinityEdgeCases(t *testing.T) {
	empty := New(1, 0, nil)
	other := New(2, 0, []string{"x"})
	if Jaccard(empty, empty) != 0 || Jaccard(empty, other) != 0 {
		t.Error("Jaccard with empty cluster should be 0")
	}
	if OverlapCoefficient(empty, other) != 0 {
		t.Error("OverlapCoefficient with empty cluster should be 0")
	}
	same := New(3, 0, []string{"x", "y"})
	if got := Jaccard(same, same); got != 1 {
		t.Errorf("Jaccard(self) = %g, want 1", got)
	}
	if got := OverlapCoefficient(same, same); got != 1 {
		t.Errorf("OverlapCoefficient(self) = %g, want 1", got)
	}
}

// Properties: symmetry, bounds, and consistency with a map-based oracle.
func TestAffinityProperties(t *testing.T) {
	mk := func(raw []string) Cluster {
		// Constrain vocabulary so overlaps actually happen.
		var kws []string
		for _, r := range raw {
			if len(r) == 0 {
				continue
			}
			kws = append(kws, string(rune('a'+int(r[0])%12)))
		}
		return New(0, 0, kws)
	}
	f := func(ra, rb []string) bool {
		a, b := mk(ra), mk(rb)
		inter := IntersectionSize(a, b)
		// Oracle.
		set := map[string]struct{}{}
		for _, w := range a.Keywords {
			set[w] = struct{}{}
		}
		want := 0
		for _, w := range b.Keywords {
			if _, ok := set[w]; ok {
				want++
			}
		}
		if inter != want {
			return false
		}
		j, j2 := Jaccard(a, b), Jaccard(b, a)
		if j != j2 || j < 0 || j > 1 {
			return false
		}
		o := OverlapCoefficient(a, b)
		if o != OverlapCoefficient(b, a) || o < 0 || o > 1 {
			return false
		}
		return j <= o || inter == 0 // Jaccard never exceeds overlap coefficient
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestParseAffinity(t *testing.T) {
	for _, name := range []string{"jaccard", "Intersection", "OVERLAP"} {
		if _, err := ParseAffinity(name); err != nil {
			t.Errorf("ParseAffinity(%q): %v", name, err)
		}
	}
	if _, err := ParseAffinity("cosine"); err == nil {
		t.Error("ParseAffinity accepted unknown name")
	}
}

func TestSetsJSONLRoundTrip(t *testing.T) {
	sets := [][]Cluster{
		{New(0, 0, []string{"b", "a"}), New(1, 0, []string{"x"})},
		{New(2, 1, []string{"c", "d"})},
		nil, // empty interval survives the trip as empty
		{New(3, 3, []string{"z"})},
	}
	var buf bytes.Buffer
	if err := WriteSetsJSONL(&buf, sets); err != nil {
		t.Fatalf("WriteSetsJSONL: %v", err)
	}
	got, err := ReadSetsJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadSetsJSONL: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d intervals, want 4", len(got))
	}
	if len(got[0]) != 2 || len(got[1]) != 1 || len(got[2]) != 0 || len(got[3]) != 1 {
		t.Fatalf("interval sizes wrong: %v", got)
	}
	if !reflect.DeepEqual(got[0][0].Keywords, []string{"a", "b"}) {
		t.Errorf("keywords = %v, want sorted [a b]", got[0][0].Keywords)
	}
}

func TestWriteSetsJSONLDetectsMisfiledCluster(t *testing.T) {
	sets := [][]Cluster{{{ID: 0, Interval: 1, Keywords: []string{"a"}}}}
	var buf bytes.Buffer
	if err := WriteSetsJSONL(&buf, sets); err == nil {
		t.Fatal("misfiled cluster accepted")
	}
}

func TestReadSetsJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadSetsJSONL(strings.NewReader("{bad}\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadSetsJSONL(strings.NewReader(`{"id":0,"interval":-1,"keywords":["a"]}` + "\n")); err == nil {
		t.Error("negative interval accepted")
	}
	got, err := ReadSetsJSONL(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank stream: %v, %v", got, err)
	}
}

func TestContainsOnLargeCluster(t *testing.T) {
	var kws []string
	for i := 0; i < 1000; i++ {
		kws = append(kws, string(rune('a'+i%26))+string(rune('a'+(i/26)%26))+string(rune('a'+(i/676)%26)))
	}
	c := New(1, 0, kws)
	if !sort.StringsAreSorted(c.Keywords) {
		t.Fatal("keywords not sorted")
	}
	for _, w := range c.Keywords {
		if !c.Contains(w) {
			t.Fatalf("Contains(%q) = false", w)
		}
	}
}
