package text

// Porter stemming algorithm, implemented from the original description:
// M.F. Porter, "An algorithm for suffix stripping", Program 14(3) 1980.
//
// The paper stems every keyword before building the co-occurrence graph
// ("after stemming and removal of stop words", Section 3); the example
// figures show stemmed keywords ("madr", "beckham", "galaxi"). This is a
// faithful, allocation-light implementation operating on ASCII lower-case
// input (the tokenizer lower-cases; non-ASCII words pass through
// unchanged).

// Stem returns the Porter stem of word. The input is expected to be
// lower-case; words shorter than 3 bytes or containing non a-z bytes are
// returned unchanged.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	b := []byte(word)
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isCons reports whether b[i] is a consonant in Porter's sense: a letter
// other than a,e,i,o,u, and 'y' is a consonant only when preceded by a
// vowel position (or at the start).
func isCons(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(b, i-1)
	default:
		return true
	}
}

// measure computes m of the stem b[:end]: the number of VC sequences in
// the [C](VC)^m[V] decomposition.
func measure(b []byte, end int) int {
	n := 0
	i := 0
	// Skip initial consonant run.
	for i < end && isCons(b, i) {
		i++
	}
	for {
		// Vowel run.
		if i >= end {
			return n
		}
		for i < end && !isCons(b, i) {
			i++
		}
		if i >= end {
			return n
		}
		// Consonant run closes a VC pair.
		for i < end && isCons(b, i) {
			i++
		}
		n++
	}
}

// hasVowel reports whether the stem b[:end] contains a vowel.
func hasVowel(b []byte, end int) bool {
	for i := 0; i < end; i++ {
		if !isCons(b, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports whether b ends with a doubled consonant (*d).
func endsDoubleCons(b []byte) bool {
	n := len(b)
	if n < 2 || b[n-1] != b[n-2] {
		return false
	}
	return isCons(b, n-1)
}

// endsCVC reports *o: stem ends consonant-vowel-consonant where the final
// consonant is not w, x or y.
func endsCVC(b []byte, end int) bool {
	if end < 3 {
		return false
	}
	if !isCons(b, end-3) || isCons(b, end-2) || !isCons(b, end-1) {
		return false
	}
	switch b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether b ends with suf.
func hasSuffix(b []byte, suf string) bool {
	if len(b) < len(suf) {
		return false
	}
	return string(b[len(b)-len(suf):]) == suf
}

// replaceSuffix replaces suffix suf with rep when the remaining stem has
// measure > m. It reports whether the suffix matched (regardless of
// whether the replacement fired), so rule lists can stop at the first
// matching suffix, as Porter specifies.
func replaceSuffix(b []byte, suf, rep string, m int) ([]byte, bool) {
	if !hasSuffix(b, suf) {
		return b, false
	}
	stem := len(b) - len(suf)
	if measure(b, stem) > m {
		b = append(b[:stem], rep...)
	}
	return b, true
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2] // sses -> ss
	case hasSuffix(b, "ies"):
		return b[:len(b)-2] // ies -> i
	case hasSuffix(b, "ss"):
		return b // ss -> ss
	case hasSuffix(b, "s"):
		return b[:len(b)-1] // s ->
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b, len(b)-3) > 0 {
			return b[:len(b)-1] // eed -> ee when m>0
		}
		return b
	}
	cleanup := false
	if hasSuffix(b, "ed") && hasVowel(b, len(b)-2) {
		b = b[:len(b)-2]
		cleanup = true
	} else if hasSuffix(b, "ing") && hasVowel(b, len(b)-3) {
		b = b[:len(b)-3]
		cleanup = true
	}
	if !cleanup {
		return b
	}
	switch {
	case hasSuffix(b, "at"), hasSuffix(b, "bl"), hasSuffix(b, "iz"):
		return append(b, 'e')
	case endsDoubleCons(b) && !hasSuffix(b, "l") && !hasSuffix(b, "s") && !hasSuffix(b, "z"):
		return b[:len(b)-1]
	case measure(b, len(b)) == 1 && endsCVC(b, len(b)):
		return append(b, 'e')
	}
	return b
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && hasVowel(b, len(b)-1) {
		b[len(b)-1] = 'i'
	}
	return b
}

// step2 maps double suffixes to single ones when m>0. Order follows
// Porter's list; only the first matching suffix is considered.
func step2(b []byte) []byte {
	rules := []struct{ suf, rep string }{
		{"ational", "ate"},
		{"tional", "tion"},
		{"enci", "ence"},
		{"anci", "ance"},
		{"izer", "ize"},
		{"abli", "able"},
		{"alli", "al"},
		{"entli", "ent"},
		{"eli", "e"},
		{"ousli", "ous"},
		{"ization", "ize"},
		{"ation", "ate"},
		{"ator", "ate"},
		{"alism", "al"},
		{"iveness", "ive"},
		{"fulness", "ful"},
		{"ousness", "ous"},
		{"aliti", "al"},
		{"iviti", "ive"},
		{"biliti", "ble"},
	}
	for _, r := range rules {
		if nb, matched := replaceSuffix(b, r.suf, r.rep, 0); matched {
			return nb
		}
	}
	return b
}

func step3(b []byte) []byte {
	rules := []struct{ suf, rep string }{
		{"icate", "ic"},
		{"ative", ""},
		{"alize", "al"},
		{"iciti", "ic"},
		{"ical", "ic"},
		{"ful", ""},
		{"ness", ""},
	}
	for _, r := range rules {
		if nb, matched := replaceSuffix(b, r.suf, r.rep, 0); matched {
			return nb
		}
	}
	return b
}

// step4 strips residual suffixes when m>1.
func step4(b []byte) []byte {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
		"ement", "ment", "ent", "ion", "ou", "ism", "ate", "iti",
		"ous", "ive", "ize",
	}
	for _, suf := range suffixes {
		if !hasSuffix(b, suf) {
			continue
		}
		stem := len(b) - len(suf)
		if suf == "ion" {
			// (m>1 and (*S or *T)) ION ->
			if stem > 0 && (b[stem-1] == 's' || b[stem-1] == 't') && measure(b, stem) > 1 {
				return b[:stem]
			}
			return b
		}
		if measure(b, stem) > 1 {
			return b[:stem]
		}
		return b
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stem := len(b) - 1
	m := measure(b, stem)
	if m > 1 || (m == 1 && !endsCVC(b, stem)) {
		return b[:stem]
	}
	return b
}

func step5b(b []byte) []byte {
	if hasSuffix(b, "ll") && measure(b, len(b)) > 1 {
		return b[:len(b)-1]
	}
	return b
}
