// Package text provides the lexical substrate of the pipeline: a
// Unicode-aware tokenizer, an English stop-word list and a from-scratch
// implementation of the Porter stemming algorithm.
//
// Section 3 of the paper processes each blog post by tokenizing it,
// stemming every keyword and removing stop words before keyword pairs
// are emitted. Analyzer bundles those three steps.
package text

import (
	"strings"
	"unicode"
)

// MinTokenLen is the minimum length (in runes) of a token that survives
// analysis. One- and two-letter fragments carry almost no topical signal
// and would otherwise dominate the co-occurrence graph.
const MinTokenLen = 3

// MaxTokenLen caps pathological tokens (base64 blobs, URLs that slipped
// through markup stripping) so they cannot bloat the keyword index.
const MaxTokenLen = 40

// Tokenize splits s into lower-cased word tokens. A token is a maximal
// run of letters or digits. Apostrophes act as separators, so "don't"
// yields "don" and "t"; the short fragment is later removed by the
// Analyzer's length filter. Everything else (punctuation, markup
// leftovers) separates tokens too.
func Tokenize(s string) []string {
	tokens := make([]string, 0, len(s)/6)
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Analyzer converts raw post text into the bag of keywords used by the
// co-occurrence stage: tokenize, drop stop words, stem, drop tokens that
// are too short or too long, and de-duplicate (a document is a set of
// keywords for the purposes of A(u,v); see Section 3: AD(u,v) is 0/1).
type Analyzer struct {
	// Stem disables stemming when false. The paper always stems; the
	// switch exists for ablation and tests.
	Stem bool
	// StopWords is the active stop-word set. Nil means DefaultStopWords.
	StopWords map[string]struct{}
	// KeepNumbers retains pure-digit tokens when true. Bare numbers are
	// dropped by default: "2007" style tokens co-occur with everything
	// and add noise without topical value.
	KeepNumbers bool
}

// NewAnalyzer returns an Analyzer configured the way the paper's
// pipeline is described: stemming on, default stop words, numbers
// dropped.
func NewAnalyzer() *Analyzer {
	return &Analyzer{Stem: true}
}

// Keywords returns the sorted-free (insertion-ordered) set of analyzed
// keywords in s. Each keyword appears once regardless of its frequency
// inside the document.
func (a *Analyzer) Keywords(s string) []string {
	stop := a.StopWords
	if stop == nil {
		stop = DefaultStopWords
	}
	seen := make(map[string]struct{})
	var out []string
	for _, tok := range Tokenize(s) {
		if len(tok) < MinTokenLen || len(tok) > MaxTokenLen {
			continue
		}
		if !a.KeepNumbers && isAllDigits(tok) {
			continue
		}
		if _, ok := stop[tok]; ok {
			continue
		}
		if a.Stem {
			tok = Stem(tok)
		}
		if len(tok) < MinTokenLen {
			continue
		}
		// Stemming can map a non-stop word onto a stop word
		// ("being" -> "be" would, if "be" were produced); re-check.
		if _, ok := stop[tok]; ok {
			continue
		}
		if _, dup := seen[tok]; dup {
			continue
		}
		seen[tok] = struct{}{}
		out = append(out, tok)
	}
	return out
}

func isAllDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}
