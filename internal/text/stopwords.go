package text

import "strings"

// stopWordList is a standard English stop-word inventory (articles,
// pronouns, auxiliaries, prepositions, conjunctions, common adverbs and
// high-frequency web/blog boilerplate). The paper removes stop words
// before keyword pairs are generated; without this the co-occurrence
// graph is dominated by function words that co-occur with everything.
const stopWordList = `
a about above after again against all also although always am an and any
are aren arent as at back be because been before being below between both
but by came can cannot cant com could couldnt day did didnt do does doesnt
doing dont down during each even ever every few first for from further get
go going good got had hadnt has hasnt have havent having he hed hell her
here heres hers herself hes him himself his how hows however i id if ill im
in into is isnt it its itself ive just know last like ll long made make
many may me might more most much must my myself never new no nor not now of
off on once one only or other ought our ours ourselves out over own people
re really right said same say see she shed shell shes should shouldnt since
so some something still such take than that thats the their theirs them
themselves then there theres these they theyd theyll theyre theyve thing
think this those through time to too two under until up upon us use used
very want was wasnt way we wed well were werent weve what whats when
whens where wheres which while who whom whos why whys will with without
wont would wouldnt yes yet you youd youll your youre yours yourself
yourselves youve
`

// DefaultStopWords is the stop-word set used by NewAnalyzer. Keys are the
// raw (unstemmed) lower-case forms.
var DefaultStopWords = buildStopWords()

func buildStopWords() map[string]struct{} {
	m := make(map[string]struct{}, 256)
	for _, w := range strings.Fields(stopWordList) {
		if isASCIILower(w) {
			m[w] = struct{}{}
		}
	}
	return m
}

func isASCIILower(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 'a' || s[i] > 'z' {
			return false
		}
	}
	return len(s) > 0
}

// IsStopWord reports whether w (lower-case) is in the default stop-word
// set.
func IsStopWord(w string) bool {
	_, ok := DefaultStopWords[w]
	return ok
}
