package text

import (
	"testing"
	"testing/quick"
)

// Vectors from Porter's paper and from the sample vocabulary distributed
// with the reference implementation, plus the stemmed keywords visible in
// the paper's figures (e.g. "galaxi", "madr" appear in Figure 2).
func TestStemVectors(t *testing.T) {
	cases := map[string]string{
		// Step 1a.
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// Step 1b.
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// Step 1c.
		"happy": "happi",
		"sky":   "sky",
		// Step 2.
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// Step 3.
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// Step 4.
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// Step 5.
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// Words from the paper's figures.
		"galaxy":  "galaxi",
		"madrid":  "madrid",
		"soccer":  "soccer",
		"beckham": "beckham",
		"iphone":  "iphon",
		"somalia": "somalia",
		// Misc regression checks.
		"running":     "run",
		"generation":  "gener",
		"generically": "gener",
		"stemming":    "stem",
		"algorithms":  "algorithm",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemLeavesShortAndNonASCIIAlone(t *testing.T) {
	for _, w := range []string{"", "a", "it", "héllo", "a1c", "日本"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// Porter stems are fixed points: stemming a stem must not change it for
// the overwhelming majority of words. (True idempotence does not hold for
// every English word under Porter — e.g. rare -ion interactions — so the
// property is asserted on the curated vector set, all of which are fixed
// points.)
func TestStemIdempotentOnVectors(t *testing.T) {
	words := []string{
		"caress", "poni", "plaster", "motor", "hop", "relat", "digit",
		"oper", "triplic", "reviv", "adjust", "depend", "control",
		"galaxi", "iphon", "run", "gener", "stem", "algorithm",
	}
	for _, w := range words {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want fixed point", w, got)
		}
	}
}

// Property: Stem never panics and never grows a word.
func TestStemNeverGrows(t *testing.T) {
	f := func(raw string) bool {
		// Constrain to plausible tokens: lower-case ASCII.
		var b []byte
		for i := 0; i < len(raw) && len(b) < 30; i++ {
			c := raw[i]
			b = append(b, 'a'+c%26)
		}
		w := string(b)
		s := Stem(w)
		return len(s) <= len(w)+1 // step1b can append 'e'
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMeasure(t *testing.T) {
	cases := map[string]int{
		"tr": 0, "ee": 0, "tree": 0, "y": 0, "by": 0,
		"trouble": 1, "oats": 1, "trees": 1, "ivy": 1,
		"troubles": 2, "private": 2, "oaten": 2, "orrery": 2,
	}
	for w, want := range cases {
		if got := measure([]byte(w), len(w)); got != want {
			t.Errorf("measure(%q) = %d, want %d", w, got, want)
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"generalization", "running", "troubles", "iphone", "relational", "stability"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
