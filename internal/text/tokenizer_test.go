package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"Hello, World!", []string{"hello", "world"}},
		{"stem-cell research (amniotic)", []string{"stem", "cell", "research", "amniotic"}},
		{"don't stop", []string{"don", "t", "stop"}},
		{"  spaced   out  ", []string{"spaced", "out"}},
		{"MLS2007 LA-Galaxy", []string{"mls2007", "la", "galaxy"}},
		{"ÜBER Café", []string{"über", "café"}},
		{"a.b.c", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: every token is non-empty, lower-case, and contains only
// letters/digits.
func TestTokenizeProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
			if tok != strings.ToLower(tok) {
				return false
			}
			for _, r := range tok {
				if !isLetterOrDigit(r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func isLetterOrDigit(r rune) bool {
	return ('a' <= r && r <= 'z') || ('0' <= r && r <= '9') || r > 127
}

func TestAnalyzerKeywords(t *testing.T) {
	a := NewAnalyzer()
	got := a.Keywords("The scientists discovered new stem cells; the scientists were thrilled about stem cells!")
	// "the", "were", "about" are stop words; duplicates collapse;
	// "scientists" stems to "scientist", "cells" to "cell",
	// "discovered" to "discov", "thrilled" to "thrill".
	want := []string{"scientist", "discov", "stem", "cell", "thrill"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords = %v, want %v", got, want)
	}
}

func TestAnalyzerDropsNumbersAndShortTokens(t *testing.T) {
	a := NewAnalyzer()
	got := a.Keywords("in 2007 an ox ate 42 apples")
	want := []string{"appl"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords = %v, want %v", got, want)
	}
	a.KeepNumbers = true
	got = a.Keywords("in 2007 an ox ate 42 apples")
	want = []string{"2007", "appl"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords with numbers = %v, want %v", got, want)
	}
}

func TestAnalyzerNoStemming(t *testing.T) {
	a := &Analyzer{Stem: false}
	got := a.Keywords("running galaxies")
	want := []string{"running", "galaxies"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords = %v, want %v", got, want)
	}
}

func TestAnalyzerCustomStopWords(t *testing.T) {
	a := &Analyzer{Stem: true, StopWords: map[string]struct{}{"galaxy": {}}}
	got := a.Keywords("the galaxy and the stars")
	// Custom set does not include "the"/"and", so they survive as stems.
	want := []string{"the", "and", "star"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Keywords = %v, want %v", got, want)
	}
}

func TestAnalyzerKeywordsAreSet(t *testing.T) {
	a := NewAnalyzer()
	f := func(s string) bool {
		kws := a.Keywords(s)
		seen := map[string]struct{}{}
		for _, k := range kws {
			if _, dup := seen[k]; dup {
				return false
			}
			seen[k] = struct{}{}
			if len(k) < MinTokenLen {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "and", "was", "of"} {
		if !IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"galaxy", "stem", "iphone"} {
		if IsStopWord(w) {
			t.Errorf("IsStopWord(%q) = true, want false", w)
		}
	}
}

func BenchmarkAnalyzerKeywords(b *testing.B) {
	a := NewAnalyzer()
	post := strings.Repeat("Scientists at Wake Forest University report discovery of a new type of stem cell in amniotic fluid, a potential alternative to embryonic stem cells. ", 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Keywords(post)
	}
}
