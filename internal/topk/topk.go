// Package topk provides weighted cluster-graph paths and fixed-capacity
// top-k heaps.
//
// These are the h^x_ij per-node heaps and the global heap H of
// Algorithm 2, the bestpaths structures of Algorithm 3, and the
// intermediate result buffer of the TA adaptation (Section 4.4). A heap
// retains the k highest-weight paths seen; "checking a path against a
// heap" (the paper's phrase) is Consider.
package topk

import (
	"container/heap"
	"fmt"
	"math"
	"slices"
	"strings"
)

// Path is a path in the cluster graph. Nodes are cluster-node ids in
// temporal order; Length is the temporal length (sum of edge lengths,
// where an edge spanning a gap counts its full interval distance);
// Weight is the aggregated affinity along the path.
type Path struct {
	Nodes  []int64
	Length int
	Weight float64
}

// Append returns a new path extending p by one edge to node, with edge
// length edgeLen and edge weight w. p is not modified; the node slice is
// copied so heap entries never alias caller state.
func (p Path) Append(node int64, edgeLen int, w float64) Path {
	nodes := make([]int64, len(p.Nodes), len(p.Nodes)+1)
	copy(nodes, p.Nodes)
	return Path{
		Nodes:  append(nodes, node),
		Length: p.Length + edgeLen,
		Weight: p.Weight + w,
	}
}

// Stability is weight normalized by length (Section 4.5). Zero-length
// paths have zero stability.
func (p Path) Stability() float64 {
	if p.Length == 0 {
		return 0
	}
	return p.Weight / float64(p.Length)
}

// String renders the path for logs and goldens, e.g. "c1→c5→c9 (w=1.50, l=2)".
func (p Path) String() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString("→")
		}
		fmt.Fprintf(&b, "c%d", n)
	}
	fmt.Fprintf(&b, " (w=%.3f, l=%d)", p.Weight, p.Length)
	return b.String()
}

// Better reports whether a should outrank b in a top-k result: higher
// weight wins; ties break toward the lexicographically smaller node
// sequence so results are deterministic.
func Better(a, b Path) bool {
	if a.Weight != b.Weight {
		return a.Weight > b.Weight
	}
	return lexLess(a.Nodes, b.Nodes)
}

func lexLess(a, b []int64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// K is a fixed-capacity collection of the k best paths seen so far,
// implemented as a min-heap keyed by Better so the worst retained path
// is evictable in O(log k). The zero value is unusable; call NewK.
type K struct {
	k     int
	items pathHeap
}

// NewK returns an empty top-k collector. k must be positive.
func NewK(k int) *K {
	if k <= 0 {
		panic(fmt.Sprintf("topk: k must be positive, got %d", k))
	}
	return &K{k: k, items: make(pathHeap, 0, k)}
}

// Consider offers p; it is retained iff it ranks among the k best seen
// and is not already present. Duplicate suppression matters because the
// DFS algorithm can rediscover a path after visited flags are unmarked
// (Section 4.3) and a duplicate must not occupy two of the k slots.
// When the duplicate outranks the retained copy (rediscoveries may
// carry weights differing in the last ulp; see indexOf), the retained
// copy is replaced, so the surviving representative — and therefore the
// final ordering — does not depend on the order paths were offered.
// Reports whether p was retained (replacement counts as retained).
func (t *K) Consider(p Path) bool {
	if i := t.indexOf(p); i >= 0 {
		if !Better(p, t.items[i]) {
			return false
		}
		t.items[i] = p
		heap.Fix(&t.items, i)
		return true
	}
	if t.items.Len() < t.k {
		heap.Push(&t.items, p)
		return true
	}
	if Better(p, t.items[0]) {
		t.items[0] = p
		heap.Fix(&t.items, 0)
		return true
	}
	return false
}

// indexOf returns the heap index of the retained path with the same
// node sequence, or -1. The node sequence alone identifies a path — two
// discoveries of it may carry weights differing in the last ulp when
// algorithms sum edge weights in different orders (TA assembles
// prefix+edge+suffix, DFS prepends, BFS appends), so weights must not
// participate in the identity check. Linear in k, which is small.
func (t *K) indexOf(p Path) int {
	for j, q := range t.items {
		if len(q.Nodes) != len(p.Nodes) {
			continue
		}
		same := true
		for i := range q.Nodes {
			if q.Nodes[i] != p.Nodes[i] {
				same = false
				break
			}
		}
		if same {
			return j
		}
	}
	return -1
}

// Len returns the number of retained paths (≤ k).
func (t *K) Len() int { return t.items.Len() }

// Cap returns k.
func (t *K) Cap() int { return t.k }

// Threshold returns the weight of the worst retained path when the
// collector is full, and -Inf otherwise. Pruning rules (CanPrune in
// Algorithm 3, the TA stopping rule) compare candidate upper bounds
// against this value; while the collector is not full nothing may be
// pruned, hence -Inf.
func (t *K) Threshold() float64 {
	if t.items.Len() < t.k {
		return math.Inf(-1)
	}
	return t.items[0].Weight
}

// Items returns the retained paths, best first. The collector is not
// modified.
func (t *K) Items() []Path {
	out := make([]Path, len(t.items))
	copy(out, t.items)
	slices.SortFunc(out, comparePaths)
	return out
}

// comparePaths orders paths best first under Better.
func comparePaths(a, b Path) int {
	if Better(a, b) {
		return -1
	}
	if Better(b, a) {
		return 1
	}
	return 0
}

// Weights returns the retained weights, best first.
func (t *K) Weights() []float64 {
	items := t.Items()
	ws := make([]float64, len(items))
	for i, p := range items {
		ws[i] = p.Weight
	}
	return ws
}

// pathHeap is a min-heap under Better (the root is the *worst* path).
type pathHeap []Path

func (h pathHeap) Len() int            { return len(h) }
func (h pathHeap) Less(i, j int) bool  { return Better(h[j], h[i]) }
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(Path)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
