package topk

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestAppendCopies(t *testing.T) {
	base := Path{Nodes: []int64{1}, Length: 0, Weight: 0}
	a := base.Append(2, 1, 0.5)
	b := base.Append(3, 2, 0.7)
	if !reflect.DeepEqual(a.Nodes, []int64{1, 2}) {
		t.Errorf("a.Nodes = %v", a.Nodes)
	}
	if !reflect.DeepEqual(b.Nodes, []int64{1, 3}) {
		t.Errorf("b.Nodes = %v (aliasing?)", b.Nodes)
	}
	if a.Length != 1 || b.Length != 2 {
		t.Errorf("lengths = %d, %d; want 1, 2", a.Length, b.Length)
	}
	if a.Weight != 0.5 || b.Weight != 0.7 {
		t.Errorf("weights = %g, %g", a.Weight, b.Weight)
	}
}

func TestStability(t *testing.T) {
	p := Path{Nodes: []int64{1, 2, 3}, Length: 2, Weight: 1.0}
	if got := p.Stability(); got != 0.5 {
		t.Errorf("Stability = %g, want 0.5", got)
	}
	if got := (Path{}).Stability(); got != 0 {
		t.Errorf("zero-length Stability = %g, want 0", got)
	}
}

func TestPathString(t *testing.T) {
	p := Path{Nodes: []int64{1, 5}, Length: 1, Weight: 0.25}
	if got, want := p.String(), "c1→c5 (w=0.250, l=1)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestBetterOrdering(t *testing.T) {
	heavy := Path{Nodes: []int64{9}, Weight: 2}
	light := Path{Nodes: []int64{1}, Weight: 1}
	if !Better(heavy, light) || Better(light, heavy) {
		t.Error("weight ordering broken")
	}
	// Tie: smaller node sequence wins.
	a := Path{Nodes: []int64{1, 2}, Weight: 1}
	b := Path{Nodes: []int64{1, 3}, Weight: 1}
	if !Better(a, b) || Better(b, a) {
		t.Error("tie-break ordering broken")
	}
	// Prefix ties: shorter sequence is smaller.
	c := Path{Nodes: []int64{1}, Weight: 1}
	if !Better(c, a) {
		t.Error("prefix tie-break broken")
	}
}

func TestNewKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewK(0) did not panic")
		}
	}()
	NewK(0)
}

func TestConsiderKeepsTopK(t *testing.T) {
	k := NewK(3)
	weights := []float64{0.5, 0.1, 0.9, 0.7, 0.3, 0.8}
	for i, w := range weights {
		k.Consider(Path{Nodes: []int64{int64(i)}, Weight: w})
	}
	got := k.Weights()
	want := []float64{0.9, 0.8, 0.7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Weights = %v, want %v", got, want)
	}
	if k.Len() != 3 || k.Cap() != 3 {
		t.Errorf("Len/Cap = %d/%d, want 3/3", k.Len(), k.Cap())
	}
}

func TestThreshold(t *testing.T) {
	k := NewK(2)
	if got := k.Threshold(); !math.IsInf(got, -1) {
		t.Errorf("empty Threshold = %g, want -Inf", got)
	}
	k.Consider(Path{Nodes: []int64{1}, Weight: 5})
	if got := k.Threshold(); !math.IsInf(got, -1) {
		t.Errorf("not-full Threshold = %g, want -Inf", got)
	}
	k.Consider(Path{Nodes: []int64{2}, Weight: 3})
	if got := k.Threshold(); got != 3 {
		t.Errorf("full Threshold = %g, want 3", got)
	}
	k.Consider(Path{Nodes: []int64{3}, Weight: 4})
	if got := k.Threshold(); got != 4 {
		t.Errorf("after eviction Threshold = %g, want 4", got)
	}
}

func TestConsiderSuppressesDuplicates(t *testing.T) {
	k := NewK(3)
	p := Path{Nodes: []int64{1, 2}, Length: 1, Weight: 0.5}
	if !k.Consider(p) {
		t.Fatal("first offer rejected")
	}
	if k.Consider(p) {
		t.Error("duplicate offer retained")
	}
	if k.Len() != 1 {
		t.Errorf("Len = %d, want 1", k.Len())
	}
	// Same weight, different nodes is not a duplicate.
	if !k.Consider(Path{Nodes: []int64{1, 3}, Length: 1, Weight: 0.5}) {
		t.Error("distinct path rejected as duplicate")
	}
}

func TestConsiderReportsRetention(t *testing.T) {
	k := NewK(1)
	if !k.Consider(Path{Nodes: []int64{1}, Weight: 1}) {
		t.Error("first Consider not retained")
	}
	if k.Consider(Path{Nodes: []int64{2}, Weight: 0.5}) {
		t.Error("worse path retained")
	}
	if !k.Consider(Path{Nodes: []int64{3}, Weight: 2}) {
		t.Error("better path not retained")
	}
}

// Property: Items() always equals the brute-force top-k of everything
// offered, under the Better order.
func TestTopKMatchesBruteForce(t *testing.T) {
	f := func(seed int64, kSeed uint8, nSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		kk := int(kSeed)%10 + 1
		n := int(nSeed)%100 + 1
		col := NewK(kk)
		var all []Path
		seen := map[[2]int64]struct{}{}
		for i := 0; i < n; i++ {
			a, b := int64(rng.Intn(20)), int64(rng.Intn(20))
			// Weight is a function of the node sequence, as for real
			// paths: rediscoveries carry the same weight.
			p := Path{Nodes: []int64{a, b}, Weight: float64((a*7+b*3)%11) / 4}
			col.Consider(p)
			// The collector identifies paths by node sequence; the
			// oracle must dedupe the same way.
			key := [2]int64{a, b}
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				all = append(all, p)
			}
		}
		sort.Slice(all, func(i, j int) bool { return Better(all[i], all[j]) })
		want := all
		if len(want) > kk {
			want = want[:kk]
		}
		got := col.Items()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Weight != want[i].Weight {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkConsider(b *testing.B) {
	k := NewK(5)
	rng := rand.New(rand.NewSource(1))
	paths := make([]Path, 1024)
	for i := range paths {
		paths[i] = Path{Nodes: []int64{int64(i)}, Weight: rng.Float64()}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Consider(paths[i%len(paths)])
	}
}

func TestConsiderReplacesWorseDuplicate(t *testing.T) {
	// Two discoveries of one path whose summation orders differ in the
	// last ulp: whichever arrives first, the Better copy must survive,
	// so merge results do not depend on offer order.
	lo := Path{Nodes: []int64{1, 2, 3}, Length: 2, Weight: 1.0}
	hi := lo
	hi.Weight = math.Nextafter(1.0, 2.0)

	first := NewK(3)
	first.Consider(lo)
	first.Consider(hi)
	second := NewK(3)
	second.Consider(hi)
	second.Consider(lo)

	for name, k := range map[string]*K{"lo-first": first, "hi-first": second} {
		items := k.Items()
		if len(items) != 1 {
			t.Fatalf("%s: %d items, want 1 (duplicate occupies two slots)", name, len(items))
		}
		if items[0].Weight != hi.Weight {
			t.Errorf("%s: surviving weight %v, want the better copy %v", name, items[0].Weight, hi.Weight)
		}
	}

	// A worse duplicate must not displace the retained copy.
	k := NewK(3)
	k.Consider(hi)
	if k.Consider(lo) {
		t.Error("worse duplicate reported as retained")
	}
	if got := k.Items()[0].Weight; got != hi.Weight {
		t.Errorf("worse duplicate displaced the better copy: weight %v", got)
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	// Merging the same candidate multiset in any order yields identical
	// Items — the property distributed scatter-gather merges rely on.
	rng := rand.New(rand.NewSource(7))
	var candidates []Path
	for i := 0; i < 40; i++ {
		n := []int64{int64(rng.Intn(5)), int64(5 + rng.Intn(5)), int64(10 + rng.Intn(5))}
		w := 1 + rng.Float64()
		candidates = append(candidates, Path{Nodes: n, Length: 2, Weight: w})
		if rng.Intn(2) == 0 {
			// Duplicate identity with an ulp-perturbed weight.
			candidates = append(candidates, Path{Nodes: n, Length: 2, Weight: math.Nextafter(w, 2)})
		}
	}
	reference := NewK(5)
	for _, p := range candidates {
		reference.Consider(p)
	}
	want := reference.Items()
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Path(nil), candidates...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		k := NewK(5)
		for _, p := range shuffled {
			k.Consider(p)
		}
		if got := k.Items(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merge order changed the result:\ngot  %v\nwant %v", trial, got, want)
		}
	}
}
