// Typed corruption errors for the disk segment format. Every format
// violation — bad magic, checksum mismatch, skip entries that
// contradict their blocks — flows through corruptf so callers can test
// errors.Is(err, ErrCorrupt) instead of sniffing message text. The
// wrapper also chains diskstore.ErrCorrupt, which is what keeps the
// retry layer honest: diskstore.IsTransient refuses anything carrying
// that sentinel, so corrupt bytes are never re-read in a retry loop.
package index

import (
	"errors"
	"fmt"

	"repro/internal/diskstore"
)

// ErrCorrupt marks a segment whose bytes fail validation. All format
// errors raised by OpenDisk, the dictionary parser, and the block
// decoder wrap it (and diskstore.ErrCorrupt).
var ErrCorrupt = errors.New("index: corrupt segment")

// corruptf builds a format-violation error that satisfies
// errors.Is(err, ErrCorrupt) and errors.Is(err, diskstore.ErrCorrupt).
func corruptf(format string, args ...any) error {
	return &corruptError{fmt.Errorf(format, args...)}
}

type corruptError struct{ err error }

func (e *corruptError) Error() string { return e.err.Error() }
func (e *corruptError) Unwrap() []error {
	return []error{ErrCorrupt, diskstore.ErrCorrupt, e.err}
}
