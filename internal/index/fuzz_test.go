package index

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

// fuzzCorpus derives a deterministic small collection from raw fuzz
// bytes: byte 0 picks the interval count and block size, and the rest
// stream out as (interval, keyword...) document descriptors over a
// 16-word vocabulary. Doc ids are sequential, so the collection is
// always valid for both backends.
func fuzzCorpus(data []byte) (*corpus.Collection, int) {
	if len(data) == 0 {
		data = []byte{0}
	}
	m := 1 + int(data[0])%4
	blockSize := 1 + int(data[0]>>4)%8
	byInterval := make([][]corpus.Document, m)
	vocab := [16]string{
		"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7",
		"k8", "k9", "ka", "kb", "kc", "kd", "ke", "kf",
	}
	id := int64(0)
	pos := 1
	for pos < len(data) {
		b := data[pos]
		pos++
		iv := int(b) % m
		nk := 1 + int(b>>4)%4
		var kws []string
		for j := 0; j < nk && pos < len(data); j++ {
			kws = append(kws, vocab[data[pos]%16])
			pos++
		}
		if len(kws) == 0 {
			break
		}
		byInterval[iv] = append(byInterval[iv], corpus.Document{ID: id, Interval: iv, Keywords: kws})
		id++
	}
	col := &corpus.Collection{Intervals: make([]corpus.Interval, m)}
	for i := 0; i < m; i++ {
		col.Intervals[i] = corpus.Interval{Index: i, Docs: byInterval[i]}
	}
	return col, blockSize
}

// FuzzDiskIndexRoundTrip builds both backends from fuzz-derived
// corpora and asserts every primitive agrees — the round-trip
// invariant of the segment format, run for ~60s each night by the
// fuzz-smoke CI job.
func FuzzDiskIndexRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x13, 0x21, 0x05, 0x30, 0x07, 0x09, 0xff, 0x00, 0x41})
	f.Add([]byte{0x72, 0x11, 0x11, 0x11, 0x12, 0x13, 0x24, 0x35, 0x46, 0x57, 0x68})
	f.Fuzz(func(t *testing.T, data []byte) {
		col, blockSize := fuzzCorpus(data)
		x, err := New(col)
		if err != nil {
			t.Fatalf("New rejected a fuzz corpus: %v", err)
		}
		path := filepath.Join(t.TempDir(), "seg")
		if err := BuildDisk(col, path, Config{BlockSize: blockSize, SortMemoryBudget: 512}); err != nil {
			t.Fatalf("BuildDisk: %v", err)
		}
		d, err := OpenDisk(path, Config{MemBudget: 4 << 10})
		if err != nil {
			t.Fatalf("OpenDisk: %v", err)
		}
		defer d.Close()
		seed := int64(len(data))
		if len(data) > 0 {
			seed = int64(data[0])<<8 | int64(data[len(data)-1])
		}
		assertReadersAgree(t, x.Reader(), d, rand.New(rand.NewSource(seed)))
	})
}
