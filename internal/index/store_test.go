package index

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"

	"repro/internal/corpus"
	"repro/internal/faultfs"
)

// storeCorpus generates an m-interval collection for store tests.
func storeCorpus(t *testing.T, seed int64, m, posts int) *corpus.Collection {
	t.Helper()
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: seed, NumIntervals: m, BackgroundPosts: posts, BackgroundVocab: 30, WordsPerPost: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// prefix returns the collection truncated to its first k intervals.
func prefix(col *corpus.Collection, k int) *corpus.Collection {
	return &corpus.Collection{Intervals: col.Intervals[:k:k]}
}

// assertReadersEqual compares every read the Reader interface offers:
// per-interval vocabularies, postings, doc counts and frequencies, plus
// whole-timeline series and conjunctive search.
func assertReadersEqual(t *testing.T, name string, got, want Reader) {
	t.Helper()
	if g, w := got.NumIntervals(), want.NumIntervals(); g != w {
		t.Fatalf("%s: NumIntervals = %d, want %d", name, g, w)
	}
	for i := 0; i < want.NumIntervals(); i++ {
		if g, w := got.NumDocs(i), want.NumDocs(i); g != w {
			t.Fatalf("%s: NumDocs(%d) = %d, want %d", name, i, g, w)
		}
		gv, err := got.Vocabulary(i)
		if err != nil {
			t.Fatal(err)
		}
		wv, err := want.Vocabulary(i)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gv, wv) {
			t.Fatalf("%s: Vocabulary(%d) = %v, want %v", name, i, gv, wv)
		}
		for _, w := range wv {
			gp, err := got.Postings(w, i)
			if err != nil {
				t.Fatal(err)
			}
			wp, err := want.Postings(w, i)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gp, wp) {
				t.Fatalf("%s: Postings(%q, %d) = %v, want %v", name, w, i, gp, wp)
			}
			gdf, err := got.DocFreq(w, i)
			if err != nil {
				t.Fatal(err)
			}
			wdf, err := want.DocFreq(w, i)
			if err != nil {
				t.Fatal(err)
			}
			if gdf != wdf {
				t.Fatalf("%s: DocFreq(%q, %d) = %d, want %d", name, w, i, gdf, wdf)
			}
		}
		if len(wv) >= 2 {
			gs, err := got.Search(wv[:2], i)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := want.Search(wv[:2], i)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gs, ws) {
				t.Fatalf("%s: Search(%v, %d) = %v, want %v", name, wv[:2], i, gs, ws)
			}
			gcd, err := got.CoDocFreq(wv[0], wv[1], i)
			if err != nil {
				t.Fatal(err)
			}
			wcd, err := want.CoDocFreq(wv[0], wv[1], i)
			if err != nil {
				t.Fatal(err)
			}
			if gcd != wcd {
				t.Fatalf("%s: CoDocFreq(%q,%q,%d) = %d, want %d", name, wv[0], wv[1], i, gcd, wcd)
			}
		}
	}
	if want.NumIntervals() > 0 {
		wv, err := want.Vocabulary(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range wv {
			gts, err := got.TimeSeries(w)
			if err != nil {
				t.Fatal(err)
			}
			wts, err := want.TimeSeries(w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gts, wts) {
				t.Fatalf("%s: TimeSeries(%q) = %v, want %v", name, w, gts, wts)
			}
		}
	}
}

// TestStoreDeltaEquivalence is the randomized acceptance test for the
// LSM layer: a store opened over a prefix and grown by pushing the
// remaining intervals — with compactions forced at random points —
// must answer every read exactly like the one-shot index over the full
// corpus, on both backends.
func TestStoreDeltaEquivalence(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 6; trial++ {
		m := 3 + rng.Intn(4)
		col := storeCorpus(t, int64(100+trial), m, 25+rng.Intn(40))
		base := 1 + rng.Intn(m-1)
		oneShot, err := New(col)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range []string{BackendMem, BackendDisk} {
			name := fmt.Sprintf("trial=%d backend=%s base=%d/%d", trial, backend, base, m)
			// CompactAfter -1 disables the policy so the test controls
			// compaction points explicitly; BlockSize 4 forces multi-block
			// postings on the disk path.
			s, err := OpenStore(ctx, prefix(col, base), backend, "", Config{BlockSize: 4, CompactAfter: -1})
			if err != nil {
				t.Fatalf("%s: OpenStore: %v", name, err)
			}
			for k := base; k < m; k++ {
				if err := s.Push(ctx, col.Intervals[k]); err != nil {
					t.Fatalf("%s: Push(%d): %v", name, k, err)
				}
				if rng.Intn(3) == 0 {
					if err := s.Compact(ctx); err != nil {
						t.Fatalf("%s: Compact after %d: %v", name, k, err)
					}
					if got := s.NumSegments(); got != 1 {
						t.Fatalf("%s: %d segments after compaction, want 1", name, got)
					}
				}
			}
			full, err := New(col)
			if err != nil {
				t.Fatal(err)
			}
			assertReadersEqual(t, name, s, full.Reader())
			// One final fold must change nothing observable.
			if err := s.Compact(ctx); err != nil {
				t.Fatalf("%s: final Compact: %v", name, err)
			}
			assertReadersEqual(t, name+" compacted", s, oneShot.Reader())
			if err := s.Close(); err != nil {
				t.Fatalf("%s: Close: %v", name, err)
			}
		}
	}
}

// TestStoreCompactionByteEquality pins the strongest disk-path
// guarantee: compacting base+deltas produces a segment file
// byte-identical to BuildDisk over the equivalent one-shot corpus, so
// every downstream tool (checksums, backups, the open path) is
// oblivious to how the segment was produced.
func TestStoreCompactionByteEquality(t *testing.T) {
	ctx := context.Background()
	col := storeCorpus(t, 11, 5, 40)
	dir := t.TempDir()
	cfg := Config{BlockSize: 4, CompactAfter: -1}

	want := filepath.Join(dir, "oneshot.seg")
	if err := BuildDisk(col, want, cfg); err != nil {
		t.Fatal(err)
	}
	wantBytes, err := os.ReadFile(want)
	if err != nil {
		t.Fatal(err)
	}

	base := filepath.Join(dir, "grown.seg")
	s, err := OpenStore(ctx, prefix(col, 2), BackendDisk, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for k := 2; k < 5; k++ {
		if err := s.Push(ctx, col.Intervals[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBytes, wantBytes) {
		t.Fatalf("compacted segment differs from one-shot build (%d vs %d bytes)", len(gotBytes), len(wantBytes))
	}
	// Delta files are gone after the fold; only the two .seg files
	// remain.
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("leftover files after compaction: %v", files)
	}
}

// TestStoreCompactionPolicy pins the count-based policy: pushes beyond
// CompactAfter deltas report NeedsCompaction, and a negative threshold
// disables it.
func TestStoreCompactionPolicy(t *testing.T) {
	ctx := context.Background()
	col := storeCorpus(t, 12, 4, 15)
	s, err := OpenStore(ctx, prefix(col, 1), BackendMem, "", Config{CompactAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for k := 1; k < 3; k++ {
		if err := s.Push(ctx, col.Intervals[k]); err != nil {
			t.Fatal(err)
		}
		if s.NeedsCompaction() {
			t.Fatalf("NeedsCompaction true at %d deltas, threshold 2", k)
		}
	}
	if err := s.Push(ctx, col.Intervals[3]); err != nil {
		t.Fatal(err)
	}
	if !s.NeedsCompaction() {
		t.Fatal("NeedsCompaction false at 3 deltas, threshold 2")
	}
	off, err := OpenStore(ctx, prefix(col, 1), BackendMem, "", Config{CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	for k := 1; k < 4; k++ {
		if err := off.Push(ctx, col.Intervals[k]); err != nil {
			t.Fatal(err)
		}
	}
	if off.NeedsCompaction() {
		t.Fatal("negative CompactAfter still asks for compaction")
	}
}

// TestStorePushOutOfOrder pins the append-only contract.
func TestStorePushOutOfOrder(t *testing.T) {
	ctx := context.Background()
	col := storeCorpus(t, 13, 3, 15)
	s, err := OpenStore(ctx, prefix(col, 2), BackendMem, "", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, iv := range []corpus.Interval{col.Intervals[0], col.Intervals[1]} {
		if err := s.Push(ctx, iv); err == nil {
			t.Fatalf("replaying interval %d succeeded", iv.Index)
		}
	}
	if err := s.Push(ctx, corpus.Interval{Index: 5}); err == nil {
		t.Fatal("skipping ahead succeeded")
	}
	if got := s.NumIntervals(); got != 2 {
		t.Fatalf("failed pushes changed the store: %d intervals, want 2", got)
	}
}

// TestFaultStorePushENOSPC proves a delta build that dies on a full
// disk (the write is torn: a prefix lands, then ENOSPC) leaves the
// store exactly as it was — same intervals, same segments, no .partial
// or orphaned delta files — and that the same push succeeds once space
// returns.
func TestFaultStorePushENOSPC(t *testing.T) {
	ctx := context.Background()
	col := storeCorpus(t, 14, 3, 30)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.seg")
	in := faultfs.NewInjector(nil, 1)
	s, err := OpenStore(ctx, prefix(col, 2), BackendDisk, base, Config{BlockSize: 4, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Tear the delta build partway through its writes.
	in.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: ".delta", Err: syscall.ENOSPC})
	err = s.Push(ctx, col.Intervals[2])
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("push under ENOSPC = %v, want ENOSPC", err)
	}
	if got := s.NumIntervals(); got != 2 {
		t.Fatalf("failed push changed interval count to %d", got)
	}
	if got := s.NumSegments(); got != 1 {
		t.Fatalf("failed push changed segment count to %d", got)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || !strings.HasSuffix(files[0], "base.seg") {
		t.Fatalf("failed push left files behind: %v", files)
	}

	// Space returns: the identical push must now land and serve.
	in.SetEnabled(false)
	if err := s.Push(ctx, col.Intervals[2]); err != nil {
		t.Fatalf("push after ENOSPC cleared: %v", err)
	}
	full, err := New(col)
	if err != nil {
		t.Fatal(err)
	}
	assertReadersEqual(t, "post-recovery", s, full.Reader())
}

// TestFaultStoreCompactionFailure proves a compaction that dies
// mid-write (torn write into the .partial fold target) leaves the
// store serving exactly as before from its existing segments, with the
// .partial removed; and that stray .partial residue from a crashed
// process is inert — the store ignores it and the next fold replaces
// it.
func TestFaultStoreCompactionFailure(t *testing.T) {
	ctx := context.Background()
	col := storeCorpus(t, 15, 4, 30)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.seg")
	in := faultfs.NewInjector(nil, 1)
	s, err := OpenStore(ctx, prefix(col, 2), BackendDisk, base, Config{BlockSize: 4, FS: in, CompactAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for k := 2; k < 4; k++ {
		if err := s.Push(ctx, col.Intervals[k]); err != nil {
			t.Fatal(err)
		}
	}

	// Simulate a previous process that crashed mid-compaction: its
	// half-written fold target is lying around.
	stray := base + ".compact.partial"
	if err := os.WriteFile(stray, []byte("torn mid-compaction"), 0o644); err != nil {
		t.Fatal(err)
	}

	in.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: ".compact.partial", Err: syscall.ENOSPC})
	if err := s.Compact(ctx); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("compact under ENOSPC = %v, want ENOSPC", err)
	}
	if got := s.NumSegments(); got != 3 {
		t.Fatalf("failed compaction changed segment count to %d, want 3", got)
	}
	if _, err := os.Stat(stray); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf(".compact.partial survives a failed fold (stat err: %v)", err)
	}
	full, err := New(col)
	if err != nil {
		t.Fatal(err)
	}
	assertReadersEqual(t, "after failed compaction", s, full.Reader())

	// The retry folds cleanly.
	in.SetEnabled(false)
	if err := s.Compact(ctx); err != nil {
		t.Fatalf("compact after fault cleared: %v", err)
	}
	if got := s.NumSegments(); got != 1 {
		t.Fatalf("%d segments after recovery fold, want 1", got)
	}
	assertReadersEqual(t, "after recovery fold", s, full.Reader())
}
