package index

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"repro/internal/diskstore"
	"repro/internal/faultfs"
)

// DiskIndex serves the keyword primitives from an immutable segment
// file written by BuildDisk. The per-interval term dictionaries and
// skip indexes are resident; posting blocks are read on demand through
// a bytes-bounded LRU cache. Safe for concurrent readers.
type DiskIndex struct {
	f     faultfs.File
	size  int64
	docs  []int
	dicts []diskDict
	cache *blockCache
	retry diskstore.RetryPolicy
	rctx  context.Context // bounds retry backoff sleeps

	mu    sync.Mutex
	stats diskstore.IOStats
}

// diskDict is one interval's resident term dictionary: terms sorted
// ascending, entries parallel.
type diskDict struct {
	terms   []string
	entries []diskTerm
}

type diskTerm struct {
	docFreq int64
	blocks  []blockRef
}

var _ Reader = (*DiskIndex)(nil)

// OpenDisk opens a segment file written by BuildDisk, loading the
// footer and every interval dictionary (CRC-verified) into memory. The
// zero Config opens with the defaults.
func OpenDisk(path string, cfg Config) (*DiskIndex, error) {
	fs := cfg.fs()
	f, err := fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: open segment: %w", err)
	}
	d, err := openDisk(f, cfg)
	if err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

func openDisk(f faultfs.File, cfg Config) (*DiskIndex, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("index: stat segment: %w", err)
	}
	size := st.Size()
	if size < int64(len(segMagic)+segTailLen) {
		return nil, corruptf("index: segment too short (%d bytes)", size)
	}
	budget := cfg.MemBudget
	if budget <= 0 {
		budget = DefaultDiskMemBudget
	}
	d := &DiskIndex{f: f, size: size, cache: newBlockCache(int64(budget)), retry: cfg.Retry, rctx: cfg.Ctx}

	head, err := d.readSection(0, int64(len(segMagic)))
	if err != nil {
		return nil, err
	}
	if string(head) != segMagic {
		return nil, corruptf("index: bad segment magic %q", head)
	}
	tail, err := d.readSection(size-int64(segTailLen), int64(segTailLen))
	if err != nil {
		return nil, err
	}
	if string(tail[16:]) != footMagic {
		return nil, corruptf("index: bad segment tail magic %q", tail[16:])
	}
	footOff := int64(binary.LittleEndian.Uint64(tail[0:8]))
	footLen := int64(binary.LittleEndian.Uint64(tail[8:16]))
	if footOff < int64(len(segMagic)) || footLen < 4 || footOff+footLen != size-int64(segTailLen) {
		return nil, corruptf("index: corrupt segment tail (footer %d+%d, size %d)", footOff, footLen, size)
	}
	foot, err := d.readChecked(footOff, footLen, "footer")
	if err != nil {
		return nil, err
	}
	fr := &byteReader{b: foot}
	m := int(fr.uvarint())
	if fr.err != nil || m < 0 || int64(m) > footLen {
		return nil, corruptf("index: corrupt footer (numIntervals)")
	}
	d.docs = make([]int, m)
	dictOff := make([]int64, m)
	dictLen := make([]int64, m)
	for i := 0; i < m; i++ {
		d.docs[i] = int(fr.uvarint())
		dictOff[i] = int64(fr.uvarint())
		dictLen[i] = int64(fr.uvarint())
	}
	if fr.err != nil || fr.pos != len(foot) {
		return nil, corruptf("index: corrupt footer")
	}
	d.dicts = make([]diskDict, m)
	for i := 0; i < m; i++ {
		if dictOff[i] < int64(len(segMagic)) || dictLen[i] < 4 || dictOff[i]+dictLen[i] > footOff {
			return nil, corruptf("index: interval %d: dictionary outside segment", i)
		}
		raw, err := d.readChecked(dictOff[i], dictLen[i], fmt.Sprintf("interval %d dictionary", i))
		if err != nil {
			return nil, err
		}
		if err := d.parseDict(i, raw, dictOff[i]); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// parseDict decodes one interval dictionary and validates every skip
// entry against the segment's block region.
func (d *DiskIndex) parseDict(i int, raw []byte, dictStart int64) error {
	r := &byteReader{b: raw}
	n := int(r.uvarint())
	if r.err != nil || n < 0 || n > len(raw) {
		return corruptf("index: interval %d: corrupt dictionary", i)
	}
	dict := diskDict{
		terms:   make([]string, 0, n),
		entries: make([]diskTerm, 0, n),
	}
	for t := 0; t < n; t++ {
		tl := int(r.uvarint())
		term := string(r.bytes(tl))
		e := diskTerm{docFreq: int64(r.uvarint())}
		nb := int(r.uvarint())
		if r.err != nil || nb < 0 || nb > len(raw) {
			return corruptf("index: interval %d: corrupt dictionary entry %d", i, t)
		}
		e.blocks = make([]blockRef, nb)
		var total int64
		for b := 0; b < nb; b++ {
			ref := blockRef{
				off:    int64(r.uvarint()),
				length: int32(r.uvarint()),
				count:  int32(r.uvarint()),
				first:  int64(r.uvarint()),
				last:   int64(r.uvarint()),
			}
			if r.err != nil || ref.length < 5 || ref.count < 1 ||
				ref.off < int64(len(segMagic)) || ref.off+int64(ref.length) > dictStart ||
				ref.first > ref.last {
				return corruptf("index: interval %d term %q: bad skip entry %d", i, term, b)
			}
			if b > 0 && ref.first <= e.blocks[b-1].last {
				return corruptf("index: interval %d term %q: skip entries out of order", i, term)
			}
			e.blocks[b] = ref
			total += int64(ref.count)
		}
		if total != e.docFreq {
			return corruptf("index: interval %d term %q: docFreq %d != %d postings in blocks", i, term, e.docFreq, total)
		}
		if len(dict.terms) > 0 && term <= dict.terms[len(dict.terms)-1] {
			return corruptf("index: interval %d: dictionary terms out of order at %q", i, term)
		}
		dict.terms = append(dict.terms, term)
		dict.entries = append(dict.entries, e)
	}
	if r.err != nil || r.pos != len(raw) {
		return corruptf("index: interval %d: corrupt dictionary", i)
	}
	d.dicts[i] = dict
	return nil
}

// readSection reads [off, off+n) counting one sequential read.
// Transient faults are retried under the index's RetryPolicy.
func (d *DiskIndex) readSection(off, n int64) ([]byte, error) {
	buf := make([]byte, n)
	retries, err := d.retry.Do(d.rctx, func() error {
		_, rerr := d.f.ReadAt(buf, off)
		return rerr
	})
	d.mu.Lock()
	d.stats.RetriedReads += int64(retries)
	if err == nil {
		d.stats.SequentialReads++
		d.stats.BytesRead += n
	}
	d.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("index: read segment at %d: %w", off, err)
	}
	return buf, nil
}

// readChecked reads a CRC-trailed section and verifies it, returning
// the payload without the checksum.
func (d *DiskIndex) readChecked(off, n int64, what string) ([]byte, error) {
	raw, err := d.readSection(off, n)
	if err != nil {
		return nil, err
	}
	payload := raw[:n-4]
	stored := binary.LittleEndian.Uint32(raw[n-4:])
	if crc32.ChecksumIEEE(payload) != stored {
		d.mu.Lock()
		d.stats.CorruptReads++
		d.mu.Unlock()
		return nil, corruptf("index: %s: checksum mismatch", what)
	}
	return payload, nil
}

// lookup returns the resident entry for (w, i), or nil.
func (d *DiskIndex) lookup(w string, i int) *diskTerm {
	if i < 0 || i >= len(d.dicts) {
		return nil
	}
	dict := &d.dicts[i]
	j := sort.SearchStrings(dict.terms, w)
	if j < len(dict.terms) && dict.terms[j] == w {
		return &dict.entries[j]
	}
	return nil
}

// fetchBlock returns the decoded postings of one block, reading and
// CRC-verifying it on cache miss (one random read). Transient read
// faults are retried; a block that fails validation is counted as a
// corrupt read and returned as ErrCorrupt, never retried.
func (d *DiskIndex) fetchBlock(ref blockRef) ([]int64, error) {
	if ids, ok := d.cache.get(ref.off); ok {
		return ids, nil
	}
	buf := make([]byte, ref.length)
	retries, err := d.retry.Do(d.rctx, func() error {
		_, rerr := d.f.ReadAt(buf, ref.off)
		return rerr
	})
	d.mu.Lock()
	d.stats.RetriedReads += int64(retries)
	if err == nil {
		d.stats.RandomReads++
		d.stats.BytesRead += int64(ref.length)
	}
	d.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("index: read block at %d: %w", ref.off, err)
	}
	ids, err := decodeBlock(buf, ref)
	if err != nil {
		d.mu.Lock()
		d.stats.CorruptReads++
		d.mu.Unlock()
		return nil, err
	}
	d.cache.put(ref.off, ids)
	return ids, nil
}

// decodeBlock verifies and expands one posting block against its skip
// entry, so a corrupt block or a stale skip entry cannot yield silent
// wrong results.
func decodeBlock(raw []byte, ref blockRef) ([]int64, error) {
	if len(raw) < 5 {
		return nil, corruptf("index: block at %d: too short", ref.off)
	}
	payload := raw[:len(raw)-4]
	stored := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.ChecksumIEEE(payload) != stored {
		return nil, corruptf("index: block at %d: checksum mismatch", ref.off)
	}
	r := &byteReader{b: payload}
	count := int(r.uvarint())
	if r.err != nil || count != int(ref.count) {
		return nil, corruptf("index: block at %d: count %d does not match skip entry %d", ref.off, count, ref.count)
	}
	ids := make([]int64, count)
	ids[0] = int64(r.uvarint())
	for k := 1; k < count; k++ {
		delta := int64(r.uvarint())
		if delta <= 0 {
			return nil, corruptf("index: block at %d: non-increasing posting", ref.off)
		}
		ids[k] = ids[k-1] + delta
	}
	if r.err != nil || r.pos != len(payload) {
		return nil, corruptf("index: block at %d: malformed payload", ref.off)
	}
	if ids[0] != ref.first || ids[count-1] != ref.last {
		return nil, corruptf("index: block at %d: postings disagree with skip entry", ref.off)
	}
	return ids, nil
}

// readAll decodes every block of a term into one fresh slice.
func (d *DiskIndex) readAll(e *diskTerm) ([]int64, error) {
	out := make([]int64, 0, e.docFreq)
	for _, ref := range e.blocks {
		ids, err := d.fetchBlock(ref)
		if err != nil {
			return nil, err
		}
		out = append(out, ids...)
	}
	return out, nil
}

// NumIntervals returns the number of indexed intervals.
func (d *DiskIndex) NumIntervals() int { return len(d.dicts) }

// NumDocs returns the number of documents in interval i.
func (d *DiskIndex) NumDocs(i int) int {
	if i < 0 || i >= len(d.docs) {
		return 0
	}
	return d.docs[i]
}

// DocFreq returns A(u) for interval i from the resident dictionary —
// no I/O.
func (d *DiskIndex) DocFreq(w string, i int) (int64, error) {
	if e := d.lookup(w, i); e != nil {
		return e.docFreq, nil
	}
	return 0, nil
}

// CoDocFreq returns A(u,v) for interval i via skip-driven posting
// intersection.
func (d *DiskIndex) CoDocFreq(u, v string, i int) (int64, error) {
	ids, err := d.Search([]string{u, v}, i)
	if err != nil {
		return 0, err
	}
	return int64(len(ids)), nil
}

// Search returns the sorted ids of interval-i documents containing all
// keywords. The rarest list is decoded whole; every other list is
// probed through its skip index, so only blocks whose doc-id range
// overlaps a surviving candidate are read — O(blocks touched) random
// reads, not O(postings).
func (d *DiskIndex) Search(keywords []string, i int) ([]int64, error) {
	if len(keywords) == 0 {
		return nil, nil
	}
	entries := make([]*diskTerm, len(keywords))
	for j, w := range keywords {
		e := d.lookup(w, i)
		if e == nil {
			return nil, nil
		}
		entries[j] = e
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].docFreq < entries[b].docFreq })
	acc, err := d.readAll(entries[0])
	if err != nil {
		return nil, err
	}
	for _, e := range entries[1:] {
		acc, err = d.intersectEntry(acc, e)
		if err != nil {
			return nil, err
		}
		if len(acc) == 0 {
			return nil, nil
		}
	}
	if len(acc) == 0 {
		return nil, nil
	}
	return acc, nil
}

// intersectEntry filters acc (sorted, owned by the caller) down to the
// ids also present in e, fetching only the blocks whose range overlaps
// a candidate.
func (d *DiskIndex) intersectEntry(acc []int64, e *diskTerm) ([]int64, error) {
	out := acc[:0]
	bi := 0
	var (
		cur    []int64
		curIdx = -1
	)
	for _, v := range acc {
		for bi < len(e.blocks) && e.blocks[bi].last < v {
			bi++
		}
		if bi == len(e.blocks) {
			break
		}
		ref := e.blocks[bi]
		if v < ref.first {
			continue
		}
		if curIdx != bi {
			ids, err := d.fetchBlock(ref)
			if err != nil {
				return nil, err
			}
			cur, curIdx = ids, bi
		}
		k := sort.Search(len(cur), func(j int) bool { return cur[j] >= v })
		if k < len(cur) && cur[k] == v {
			out = append(out, v)
		}
	}
	return out, nil
}

// TimeSeries returns A(w) for every interval, straight from the
// resident dictionaries — no I/O.
func (d *DiskIndex) TimeSeries(w string) ([]int64, error) {
	out := make([]int64, len(d.dicts))
	for i := range d.dicts {
		if e := d.lookup(w, i); e != nil {
			out[i] = e.docFreq
		}
	}
	return out, nil
}

// Vocabulary returns the sorted distinct keywords of interval i.
func (d *DiskIndex) Vocabulary(i int) ([]string, error) {
	if i < 0 || i >= len(d.dicts) {
		return nil, nil
	}
	out := make([]string, len(d.dicts[i].terms))
	copy(out, d.dicts[i].terms)
	return out, nil
}

// Postings returns the sorted document ids containing keyword w in
// interval i (a fresh slice).
func (d *DiskIndex) Postings(w string, i int) ([]int64, error) {
	e := d.lookup(w, i)
	if e == nil {
		return nil, nil
	}
	return d.readAll(e)
}

// Stats returns a snapshot of the I/O counters: random reads are
// block fetches, sequential reads are the open-time footer and
// dictionary loads.
func (d *DiskIndex) Stats() diskstore.IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the I/O counters (used between experiment phases).
func (d *DiskIndex) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = diskstore.IOStats{}
}

// CacheStats reports the block cache's hit/miss counters and resident
// bytes.
func (d *DiskIndex) CacheStats() (hits, misses, bytes int64) {
	return d.cache.counters()
}

// Close closes the segment file.
func (d *DiskIndex) Close() error { return d.f.Close() }

// byteReader decodes uvarint-framed sections, latching the first
// error.
type byteReader struct {
	b   []byte
	pos int
	err error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("index: truncated uvarint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.pos {
		r.err = fmt.Errorf("index: truncated bytes at %d", r.pos)
		return nil
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out
}
