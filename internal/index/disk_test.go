package index

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/corpus"
)

// buildDisk builds a segment for col in a test temp dir and opens it.
func buildDisk(t *testing.T, col *corpus.Collection, cfg Config) (*DiskIndex, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg")
	if err := BuildDisk(col, path, cfg); err != nil {
		t.Fatalf("BuildDisk: %v", err)
	}
	d, err := OpenDisk(path, cfg)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d, path
}

// assertReadersAgree runs the full primitive surface of both backends
// over every term (and sampled pairs/triples) and fails on the first
// divergence.
func assertReadersAgree(t *testing.T, mem Reader, disk Reader, rng *rand.Rand) {
	t.Helper()
	if mem.NumIntervals() != disk.NumIntervals() {
		t.Fatalf("NumIntervals: mem %d disk %d", mem.NumIntervals(), disk.NumIntervals())
	}
	m := mem.NumIntervals()
	var vocab []string
	for i := -1; i <= m; i++ { // includes out-of-range probes
		if mem.NumDocs(i) != disk.NumDocs(i) {
			t.Fatalf("NumDocs(%d): mem %d disk %d", i, mem.NumDocs(i), disk.NumDocs(i))
		}
		mv, err := mem.Vocabulary(i)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := disk.Vocabulary(i)
		if err != nil {
			t.Fatalf("disk Vocabulary(%d): %v", i, err)
		}
		if !reflect.DeepEqual(mv, dv) {
			t.Fatalf("Vocabulary(%d): mem %d terms, disk %d terms", i, len(mv), len(dv))
		}
		if i >= 0 && i < m {
			vocab = append(vocab, mv...)
		}
	}
	if len(vocab) == 0 {
		return
	}
	probe := append([]string{}, vocab...)
	probe = append(probe, "zz-not-a-term")
	for _, w := range probe {
		mts, err := mem.TimeSeries(w)
		if err != nil {
			t.Fatal(err)
		}
		dts, err := disk.TimeSeries(w)
		if err != nil {
			t.Fatalf("disk TimeSeries(%q): %v", w, err)
		}
		if !reflect.DeepEqual(mts, dts) {
			t.Fatalf("TimeSeries(%q): mem %v disk %v", w, mts, dts)
		}
		for i := -1; i <= m; i++ {
			mf, _ := mem.DocFreq(w, i)
			df, err := disk.DocFreq(w, i)
			if err != nil {
				t.Fatal(err)
			}
			if mf != df {
				t.Fatalf("DocFreq(%q, %d): mem %d disk %d", w, i, mf, df)
			}
			mp, _ := mem.Postings(w, i)
			dp, err := disk.Postings(w, i)
			if err != nil {
				t.Fatalf("disk Postings(%q, %d): %v", w, i, err)
			}
			if !reflect.DeepEqual(mp, dp) {
				t.Fatalf("Postings(%q, %d): mem %v disk %v", w, i, mp, dp)
			}
		}
	}
	// Randomized pair/triple lookups, including misses and duplicates.
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(m+2) - 1
		kws := make([]string, 1+rng.Intn(3))
		for j := range kws {
			if rng.Intn(8) == 0 {
				kws[j] = "zz-not-a-term"
			} else {
				kws[j] = probe[rng.Intn(len(probe))]
			}
		}
		mc, _ := mem.CoDocFreq(kws[0], kws[len(kws)-1], i)
		dc, err := disk.CoDocFreq(kws[0], kws[len(kws)-1], i)
		if err != nil {
			t.Fatal(err)
		}
		if mc != dc {
			t.Fatalf("CoDocFreq(%q, %q, %d): mem %d disk %d", kws[0], kws[len(kws)-1], i, mc, dc)
		}
		ms, _ := mem.Search(kws, i)
		ds, err := disk.Search(kws, i)
		if err != nil {
			t.Fatalf("disk Search(%v, %d): %v", kws, i, err)
		}
		if !reflect.DeepEqual(ms, ds) {
			t.Fatalf("Search(%v, %d): mem %v disk %v", kws, i, ms, ds)
		}
	}
	if ms, _ := mem.Search(nil, 0); ms != nil {
		t.Fatal("mem Search(nil) not nil")
	}
	if ds, err := disk.Search(nil, 0); err != nil || ds != nil {
		t.Fatalf("disk Search(nil) = %v, %v", ds, err)
	}
}

// TestDiskEquivalenceRandom: disk and in-memory backends must return
// identical results for every primitive on randomized corpora — the
// acceptance criterion of the disk layout.
func TestDiskEquivalenceRandom(t *testing.T) {
	configs := []corpus.GeneratorConfig{
		{Seed: 11, NumIntervals: 1, BackgroundPosts: 60, BackgroundVocab: 40, WordsPerPost: 5},
		{Seed: 12, NumIntervals: 3, BackgroundPosts: 120, BackgroundVocab: 90, WordsPerPost: 7},
		{Seed: 13, NumIntervals: 4, BackgroundPosts: 250, BackgroundVocab: 60, WordsPerPost: 9,
			Events: []corpus.Event{{Name: "e", Phases: []corpus.Phase{{
				Keywords: []string{"alpha", "beta", "gamma"}, Intervals: []int{1, 2}, Posts: 40,
			}}}}},
	}
	for _, cfg := range configs {
		col, err := corpus.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		x, err := New(col)
		if err != nil {
			t.Fatal(err)
		}
		// A tiny sort budget forces spilled extsort runs — the
		// larger-than-RAM build route.
		d, _ := buildDisk(t, col, Config{SortMemoryBudget: 1 << 10})
		assertReadersAgree(t, x.Reader(), d, rand.New(rand.NewSource(cfg.Seed)))
	}
}

// TestDiskSmallBlockSizes exercises the multi-block paths: block
// splits, skip-driven probes and block-boundary intersections.
func TestDiskSmallBlockSizes(t *testing.T) {
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: 21, NumIntervals: 2, BackgroundPosts: 150, BackgroundVocab: 30, WordsPerPost: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(col)
	if err != nil {
		t.Fatal(err)
	}
	for _, bs := range []int{1, 2, 3, 7, 64} {
		d, _ := buildDisk(t, col, Config{BlockSize: bs})
		assertReadersAgree(t, x.Reader(), d, rand.New(rand.NewSource(int64(bs))))
	}
}

func TestBuildDiskRejectsBadInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg")
	cases := map[string]*corpus.Collection{
		"misfiled document": {Intervals: []corpus.Interval{
			{Index: 0, Docs: []corpus.Document{{ID: 1, Interval: 2, Keywords: []string{"a"}}}},
		}},
		"duplicate doc id": {Intervals: []corpus.Interval{
			{Index: 0, Docs: []corpus.Document{
				{ID: 1, Interval: 0, Keywords: []string{"a"}},
				{ID: 1, Interval: 0, Keywords: []string{"a", "b"}},
			}},
		}},
		"negative doc id": {Intervals: []corpus.Interval{
			{Index: 0, Docs: []corpus.Document{{ID: -4, Interval: 0, Keywords: []string{"a"}}}},
		}},
		"keyword with newline": {Intervals: []corpus.Interval{
			{Index: 0, Docs: []corpus.Document{{ID: 1, Interval: 0, Keywords: []string{"a\nb"}}}},
		}},
		"keyword with NUL": {Intervals: []corpus.Interval{
			{Index: 0, Docs: []corpus.Document{{ID: 1, Interval: 0, Keywords: []string{"a\x00b"}}}},
		}},
	}
	for name, col := range cases {
		if err := BuildDisk(col, path, Config{}); err == nil {
			t.Errorf("%s: BuildDisk accepted it", name)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Errorf("%s: partial segment left behind", name)
		}
	}
}

func TestBuildDiskEmptyCollection(t *testing.T) {
	col := &corpus.Collection{Intervals: []corpus.Interval{{Index: 0}, {Index: 1}}}
	d, _ := buildDisk(t, col, Config{})
	if d.NumIntervals() != 2 || d.NumDocs(0) != 0 {
		t.Fatalf("shape: %d intervals, %d docs", d.NumIntervals(), d.NumDocs(0))
	}
	if ids, err := d.Search([]string{"a"}, 0); err != nil || ids != nil {
		t.Fatalf("Search on empty = %v, %v", ids, err)
	}
}

// TestDiskCorruptionSingleByteFlips is the corrupt-file gate mirroring
// the diskstore corruption tests: for EVERY byte of a small segment,
// flipping it must either fail OpenDisk or make at least the affected
// queries error — never silently change a result. Single-byte errors
// are always caught by CRC32, so a surviving mutant that alters output
// is a format bug.
func TestDiskCorruptionSingleByteFlips(t *testing.T) {
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: 31, NumIntervals: 2, BackgroundPosts: 25, BackgroundVocab: 12, WordsPerPost: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(col)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	if err := BuildDisk(col, path, Config{BlockSize: 4}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Reference answers per (term, interval).
	type key struct {
		w string
		i int
	}
	ref := map[key][]int64{}
	var terms []string
	for i := 0; i < x.NumIntervals(); i++ {
		for _, w := range x.Vocabulary(i) {
			ref[key{w, i}] = x.Postings(w, i)
		}
	}
	terms = x.Vocabulary(0)

	mut := filepath.Join(dir, "mut")
	for pos := range good {
		flipped := append([]byte(nil), good...)
		flipped[pos] ^= 0xFF
		if err := os.WriteFile(mut, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDisk(mut, Config{})
		if err != nil {
			// Detected at open: must carry the typed sentinel so the
			// serving layers can tell corruption from transient faults.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("byte %d flipped: open error %v does not wrap ErrCorrupt", pos, err)
			}
			continue
		}
		// Open survived (the flip is in a lazily-read block): every
		// query must now either error or agree with the reference.
		for k, want := range ref {
			got, err := d.Postings(k.w, k.i)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("byte %d flipped: Postings(%q, %d) error %v does not wrap ErrCorrupt", pos, k.w, k.i, err)
				}
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("byte %d flipped: Postings(%q, %d) silently wrong: got %v want %v", pos, k.w, k.i, got, want)
			}
		}
		if len(terms) >= 2 {
			want := x.Search(terms[:2], 0)
			if got, err := d.Search(terms[:2], 0); err == nil && !reflect.DeepEqual(got, want) {
				t.Fatalf("byte %d flipped: Search silently wrong", pos)
			}
		}
		d.Close()
	}
}

func TestDiskTruncationRejected(t *testing.T) {
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: 32, NumIntervals: 1, BackgroundPosts: 40, BackgroundVocab: 15, WordsPerPost: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	if err := BuildDisk(col, path, Config{}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := filepath.Join(dir, "mut")
	for _, n := range []int{0, 1, len(segMagic), len(good) / 2, len(good) - 1} {
		if err := os.WriteFile(mut, good[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if d, err := OpenDisk(mut, Config{}); err == nil {
			d.Close()
			t.Fatalf("OpenDisk accepted a segment truncated to %d bytes", n)
		}
	}
	// Truncating a block region AFTER open (the dictionary points past
	// EOF — a stale skip entry) must surface as a read error, not a
	// wrong result.
	d, err := OpenDisk(path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := os.Truncate(path, int64(len(segMagic))); err != nil {
		t.Fatal(err)
	}
	w := col.Vocabulary()[0]
	if ids, err := d.Postings(w, 0); err == nil {
		t.Fatalf("Postings over truncated blocks returned %v without error", ids)
	}
}

// TestDiskSearchIOBound asserts the EMBANKS-style access-cost claim:
// disk-backed Search performs O(blocks touched) random reads, not
// O(postings) — intersecting a rare term with a very frequent one must
// not read the frequent term's whole posting list.
func TestDiskSearchIOBound(t *testing.T) {
	const n = 4000
	rare := []int64{10, 1500, 2500, 3900}
	docs := make([]corpus.Document, n)
	isRare := map[int64]bool{}
	for _, id := range rare {
		isRare[id] = true
	}
	for i := range docs {
		kws := []string{"heavy"}
		if isRare[int64(i)] {
			kws = append(kws, "rare")
		}
		docs[i] = corpus.Document{ID: int64(i), Interval: 0, Keywords: kws}
	}
	col := &corpus.Collection{Intervals: []corpus.Interval{{Index: 0, Docs: docs}}}
	const blockSize = 64
	d, _ := buildDisk(t, col, Config{BlockSize: blockSize})

	heavyBlocks := int64((n + blockSize - 1) / blockSize)
	d.ResetStats()
	got, err := d.Search([]string{"heavy", "rare"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rare) {
		t.Fatalf("Search = %v, want %v", got, rare)
	}
	st := d.Stats()
	// One block holds all four rare postings; each candidate probes at
	// most one heavy block.
	maxReads := int64(1 + len(rare))
	if st.RandomReads > maxReads {
		t.Errorf("Search did %d random reads, want <= %d (blocks touched)", st.RandomReads, maxReads)
	}
	if st.RandomReads >= heavyBlocks {
		t.Errorf("Search did %d random reads, not better than decoding all %d heavy blocks", st.RandomReads, heavyBlocks)
	}
	if st.SequentialReads != 0 {
		t.Errorf("Search did %d sequential reads, want 0", st.SequentialReads)
	}
	// Warm cache: the same search must do zero additional reads.
	if _, err := d.Search([]string{"heavy", "rare"}, 0); err != nil {
		t.Fatal(err)
	}
	if again := d.Stats(); again.RandomReads != st.RandomReads {
		t.Errorf("warm Search added %d reads, want 0", again.RandomReads-st.RandomReads)
	}
}

// TestDiskCacheBounded: with a tiny MemBudget the LRU must stay within
// budget and re-read evicted blocks rather than grow.
func TestDiskCacheBounded(t *testing.T) {
	docs := make([]corpus.Document, 2000)
	for i := range docs {
		docs[i] = corpus.Document{ID: int64(i), Interval: 0, Keywords: []string{"heavy"}}
	}
	col := &corpus.Collection{Intervals: []corpus.Interval{{Index: 0, Docs: docs}}}
	const budget = 2 << 10
	d, _ := buildDisk(t, col, Config{BlockSize: 32, MemBudget: budget})
	blocks := int64((2000 + 31) / 32)

	d.ResetStats()
	if _, err := d.Postings("heavy", 0); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.RandomReads != blocks {
		t.Fatalf("cold scan did %d reads, want %d", st.RandomReads, blocks)
	}
	if _, _, bytes := d.CacheStats(); bytes > budget {
		t.Errorf("cache holds %d bytes, budget %d", bytes, budget)
	}
	// The working set exceeds the budget, so a second scan must re-read
	// most blocks (the cache cannot silently exceed its bound).
	d.ResetStats()
	if _, err := d.Postings("heavy", 0); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.RandomReads < blocks/2 {
		t.Errorf("second scan did only %d reads for %d blocks despite %d-byte budget", st.RandomReads, blocks, budget)
	}
}

func TestOpenDiskRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("this is not a segment file at all........"), 0o644); err != nil {
		t.Fatal(err)
	}
	if d, err := OpenDisk(path, Config{}); err == nil {
		d.Close()
		t.Fatal("OpenDisk accepted garbage")
	}
	if _, err := OpenDisk(filepath.Join(t.TempDir(), "missing"), Config{}); err == nil {
		t.Fatal("OpenDisk accepted a missing file")
	}
}
