// Multi-segment index store: the mutable, LSM-style layer over the
// immutable segment formats. A Store starts as one base segment built
// from the opening corpus; each pushed interval becomes a small delta
// segment (the same delta+varint block format, local interval indices
// starting at 0), and a multi-segment Reader routes every query to the
// segment covering its interval — segments cover contiguous,
// non-overlapping global interval ranges, so "merging at read time" is
// routing plus concatenation, never a k-way merge. Compaction folds
// every segment into one new base (written to a .partial file and
// renamed over the old base, so a crash leaves only .partial residue)
// once more than CompactAfter deltas accumulate.
package index

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/diskstore"
	"repro/internal/faultfs"
)

// DefaultCompactAfter is the delta-count threshold beyond which a push
// asks for compaction.
const DefaultCompactAfter = 4

// Backend names for OpenStore.
const (
	BackendMem  = "mem"
	BackendDisk = "disk"
)

// storeSeg is one live segment: a reader over local intervals
// [0, n) standing for global intervals [start, start+n).
type storeSeg struct {
	r     Reader
	start int
	n     int
	path  string // "" for mem segments and unlinked files
}

// Store is the mutable multi-segment index. It implements Reader (the
// merged view over every segment) plus Push and Compact. Reads are
// safe concurrently with pushes and compaction; Push calls must be
// serialized by the caller (the Engine holds its push lock).
type Store struct {
	cfg      Config
	backend  string
	basePath string // disk backend: the base segment file
	dir      string // owned temp directory, removed on Close ("" if none)
	fs       faultfs.FS

	mu     sync.RWMutex
	segs   []storeSeg
	closed bool
	// baseIO accumulates the I/O counters of segments retired by
	// compaction, so Stats never goes backwards.
	baseIO diskstore.IOStats

	// compactMu serializes compaction (and orders Close after it).
	compactMu   sync.Mutex
	deltaSeq    atomic.Int64
	pushes      atomic.Int64
	compactions atomic.Int64
}

var _ Reader = (*Store)(nil)

// OpenStore builds the base segment from the collection and returns
// the live store. backend is BackendMem or BackendDisk; path is where
// the disk backend's base segment lives — empty means a private
// temporary directory removed on Close. ctx bounds the build; cfg.Ctx
// bounds the opened segments' retry backoff for the store's lifetime.
func OpenStore(ctx context.Context, c *corpus.Collection, backend, path string, cfg Config) (*Store, error) {
	s := &Store{cfg: cfg, backend: backend, fs: cfg.fs()}
	switch backend {
	case "", BackendMem:
		s.backend = BackendMem
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x, err := New(c)
		if err != nil {
			return nil, err
		}
		s.segs = []storeSeg{{r: x.Reader(), start: 0, n: len(c.Intervals)}}
		return s, nil
	case BackendDisk:
		if path == "" {
			dir, err := s.fs.MkdirTemp("", "blogclusters-idx-")
			if err != nil {
				return nil, fmt.Errorf("index: temp segment dir: %w", err)
			}
			s.dir = dir
			path = filepath.Join(dir, "base.seg")
		}
		s.basePath = path
		if err := BuildDiskCtx(ctx, c, path, cfg); err != nil {
			s.removeOwnedDir()
			return nil, err
		}
		d, err := OpenDisk(path, cfg)
		if err != nil {
			s.removeOwnedDir()
			return nil, err
		}
		s.segs = []storeSeg{{r: d, start: 0, n: len(c.Intervals), path: path}}
		return s, nil
	default:
		return nil, fmt.Errorf("index: unknown store backend %q (want mem or disk)", backend)
	}
}

func (s *Store) removeOwnedDir() {
	if s.dir != "" {
		s.fs.RemoveAll(s.dir)
	}
}

// localize returns one interval's corpus with the documents remapped to
// local interval 0, so the existing single-segment builders (New,
// BuildDiskCtx) produce a correct delta segment.
func localize(iv corpus.Interval) *corpus.Collection {
	docs := make([]corpus.Document, len(iv.Docs))
	for i, d := range iv.Docs {
		d.Interval = 0
		docs[i] = d
	}
	return &corpus.Collection{Intervals: []corpus.Interval{{Index: 0, Label: iv.Label, Docs: docs}}}
}

// Push appends one interval as a delta segment. iv.Index must be
// exactly NumIntervals() — intervals are append-only and contiguous.
// On error the store is unchanged (the disk build removes its .partial
// file on every failure path).
func (s *Store) Push(ctx context.Context, iv corpus.Interval) error {
	s.mu.RLock()
	next := s.numIntervalsLocked()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return fmt.Errorf("index: push on closed store")
	}
	if iv.Index != next {
		return fmt.Errorf("index: pushed interval %d, store expects %d", iv.Index, next)
	}
	local := localize(iv)
	var (
		r    Reader
		path string
	)
	switch s.backend {
	case BackendMem:
		if err := ctx.Err(); err != nil {
			return err
		}
		x, err := New(local)
		if err != nil {
			return err
		}
		r = x.Reader()
	default:
		path = fmt.Sprintf("%s.delta%04d", s.basePath, s.deltaSeq.Add(1))
		if err := BuildDiskCtx(ctx, local, path, s.cfg); err != nil {
			return err
		}
		d, err := OpenDisk(path, s.cfg)
		if err != nil {
			s.fs.Remove(path)
			return err
		}
		r = d
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.numIntervalsLocked() != next {
		r.Close()
		if path != "" {
			s.fs.Remove(path)
		}
		return fmt.Errorf("index: store changed under push of interval %d", iv.Index)
	}
	s.segs = append(s.segs, storeSeg{r: r, start: next, n: 1, path: path})
	s.pushes.Add(1)
	return nil
}

// NeedsCompaction reports whether the delta count exceeds the policy
// threshold.
func (s *Store) NeedsCompaction() bool {
	after := s.cfg.compactAfter()
	if after < 0 {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segs)-1 > after
}

// Compact folds every current segment into one new base segment and
// swaps it in; intervals pushed while the fold runs survive as deltas
// on top of the new base. The new base is written to a .partial file
// and renamed over the old base path, so a crash mid-compaction leaves
// the live segments untouched plus inert .partial residue. On error
// the store serves exactly as before.
func (s *Store) Compact(ctx context.Context) error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return fmt.Errorf("index: compact on closed store")
	}
	snap := make([]storeSeg, len(s.segs))
	copy(snap, s.segs)
	s.mu.RUnlock()
	if len(snap) <= 1 {
		return nil
	}
	covered := snap[len(snap)-1].start + snap[len(snap)-1].n
	view := &segView{segs: snap, total: covered}

	var (
		merged storeSeg
		err    error
	)
	if s.backend == BackendMem {
		var x *Index
		x, err = memIndexFromReader(ctx, view)
		if err != nil {
			return err
		}
		merged = storeSeg{r: x.Reader(), start: 0, n: covered}
	} else {
		tmp := s.basePath + ".compact.partial"
		if err = writeSegmentFromReader(ctx, s.fs, tmp, view, s.cfg.blockSize()); err != nil {
			s.fs.Remove(tmp)
			return err
		}
		// POSIX rename over the old base: segments already open keep
		// serving from their file handles until the swap closes them.
		if err = s.fs.Rename(tmp, s.basePath); err != nil {
			s.fs.Remove(tmp)
			return fmt.Errorf("index: swap compacted segment: %w", err)
		}
		var d *DiskIndex
		if d, err = OpenDisk(s.basePath, s.cfg); err != nil {
			return err
		}
		merged = storeSeg{r: d, start: 0, n: covered, path: s.basePath}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		merged.r.Close()
		return fmt.Errorf("index: compact on closed store")
	}
	newSegs := []storeSeg{merged}
	for _, seg := range s.segs {
		if seg.start >= covered {
			newSegs = append(newSegs, seg) // pushed mid-compaction
			continue
		}
		if io, ok := seg.r.(interface{ Stats() diskstore.IOStats }); ok {
			s.baseIO.Add(io.Stats())
		}
		seg.r.Close()
		if seg.path != "" && seg.path != s.basePath {
			s.fs.Remove(seg.path)
		}
	}
	s.segs = newSegs
	s.compactions.Add(1)
	s.mu.Unlock()
	return nil
}

// segView is a read-only multi-segment Reader over a snapshot of
// segments — the compactor's input. It does no locking: the snapshot's
// readers stay open for the duration of the compaction that holds it.
type segView struct {
	segs  []storeSeg
	total int
}

func (v *segView) find(i int) (Reader, int, bool) {
	if i < 0 || i >= v.total {
		return nil, 0, false
	}
	for _, seg := range v.segs {
		if i < seg.start+seg.n {
			return seg.r, i - seg.start, true
		}
	}
	return nil, 0, false
}

func (v *segView) NumIntervals() int { return v.total }
func (v *segView) NumDocs(i int) int {
	if r, li, ok := v.find(i); ok {
		return r.NumDocs(li)
	}
	return 0
}
func (v *segView) DocFreq(w string, i int) (int64, error) {
	if r, li, ok := v.find(i); ok {
		return r.DocFreq(w, li)
	}
	return 0, nil
}
func (v *segView) CoDocFreq(u, w string, i int) (int64, error) {
	if r, li, ok := v.find(i); ok {
		return r.CoDocFreq(u, w, li)
	}
	return 0, nil
}
func (v *segView) Search(keywords []string, i int) ([]int64, error) {
	if r, li, ok := v.find(i); ok {
		return r.Search(keywords, li)
	}
	return nil, nil
}
func (v *segView) TimeSeries(w string) ([]int64, error) {
	out := make([]int64, v.total)
	for _, seg := range v.segs {
		ts, err := seg.r.TimeSeries(w)
		if err != nil {
			return nil, err
		}
		copy(out[seg.start:seg.start+seg.n], ts)
	}
	return out, nil
}
func (v *segView) Vocabulary(i int) ([]string, error) {
	if r, li, ok := v.find(i); ok {
		return r.Vocabulary(li)
	}
	return nil, nil
}
func (v *segView) Postings(w string, i int) ([]int64, error) {
	if r, li, ok := v.find(i); ok {
		return r.Postings(w, li)
	}
	return nil, nil
}
func (v *segView) Close() error { return nil }

// memIndexFromReader materializes an in-memory Index equal to the
// reader's merged contents (the mem backend's compaction).
func memIndexFromReader(ctx context.Context, r Reader) (*Index, error) {
	m := r.NumIntervals()
	x := &Index{
		intervals: make([]intervalIndex, m),
		docs:      make([]int, m),
	}
	for i := 0; i < m; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		x.docs[i] = r.NumDocs(i)
		vocab, err := r.Vocabulary(i)
		if err != nil {
			return nil, err
		}
		postings := make(map[string][]int64, len(vocab))
		for _, w := range vocab {
			ids, err := r.Postings(w, i)
			if err != nil {
				return nil, err
			}
			cp := make([]int64, len(ids))
			copy(cp, ids)
			postings[w] = cp
		}
		x.intervals[i].postings = postings
	}
	return x, nil
}

// writeSegmentFromReader writes a segment file whose bytes are
// identical to BuildDisk over the equivalent one-shot corpus: the
// reader's vocabularies and postings are already in (interval, term,
// doc) order, so the fold needs no external sort — it streams straight
// into the same block/dictionary/footer encoder.
func writeSegmentFromReader(ctx context.Context, fs faultfs.FS, path string, r Reader, blockSize int) (err error) {
	sw, err := newSegmentWriter(fs, path)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			sw.f.Close()
			fs.Remove(path)
		}
	}()
	if err = sw.write([]byte(segMagic)); err != nil {
		return err
	}
	m := r.NumIntervals()
	dicts := make([][]dictEntry, m)
	var blockBuf []byte
	for i := 0; i < m; i++ {
		vocab, verr := r.Vocabulary(i)
		if verr != nil {
			return verr
		}
		for _, term := range vocab {
			if err = ctx.Err(); err != nil {
				return err
			}
			ids, perr := r.Postings(term, i)
			if perr != nil {
				return perr
			}
			if len(ids) == 0 {
				continue
			}
			var blocks []blockRef
			for lo := 0; lo < len(ids); lo += blockSize {
				hi := min(lo+blockSize, len(ids))
				ref, werr := sw.writeBlock(ids[lo:hi], &blockBuf)
				if werr != nil {
					return werr
				}
				blocks = append(blocks, ref)
			}
			dicts[i] = append(dicts[i], dictEntry{term: term, docFreq: int64(len(ids)), blocks: blocks})
		}
	}
	dictOff := make([]int64, m)
	dictLen := make([]int64, m)
	for i := 0; i < m; i++ {
		dictOff[i] = sw.off
		if err = sw.writeDict(dicts[i]); err != nil {
			return err
		}
		dictLen[i] = sw.off - dictOff[i]
	}
	footOff := sw.off
	foot := binary.AppendUvarint(nil, uint64(m))
	for i := 0; i < m; i++ {
		foot = binary.AppendUvarint(foot, uint64(r.NumDocs(i)))
		foot = binary.AppendUvarint(foot, uint64(dictOff[i]))
		foot = binary.AppendUvarint(foot, uint64(dictLen[i]))
	}
	foot = binary.LittleEndian.AppendUint32(foot, crc32.ChecksumIEEE(foot))
	if err = sw.write(foot); err != nil {
		return err
	}
	tail := binary.LittleEndian.AppendUint64(nil, uint64(footOff))
	tail = binary.LittleEndian.AppendUint64(tail, uint64(len(foot)))
	tail = append(tail, footMagic...)
	if err = sw.write(tail); err != nil {
		return err
	}
	return sw.finish()
}

// --- the merged Reader ---

func (s *Store) numIntervalsLocked() int {
	if len(s.segs) == 0 {
		return 0
	}
	last := s.segs[len(s.segs)-1]
	return last.start + last.n
}

// route returns the segment covering global interval i. The caller
// must hold mu.RLock (reads hold it across the segment call so
// compaction cannot close a reader mid-query).
func (s *Store) routeLocked(i int) (Reader, int, bool) {
	if i < 0 {
		return nil, 0, false
	}
	for _, seg := range s.segs {
		if i < seg.start+seg.n {
			if i < seg.start {
				return nil, 0, false
			}
			return seg.r, i - seg.start, true
		}
	}
	return nil, 0, false
}

// NumIntervals returns the number of intervals across all segments.
func (s *Store) NumIntervals() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.numIntervalsLocked()
}

// NumDocs returns the number of documents in interval i.
func (s *Store) NumDocs(i int) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r, li, ok := s.routeLocked(i); ok {
		return r.NumDocs(li)
	}
	return 0
}

// DocFreq returns A(u) for interval i.
func (s *Store) DocFreq(w string, i int) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r, li, ok := s.routeLocked(i); ok {
		return r.DocFreq(w, li)
	}
	return 0, nil
}

// CoDocFreq returns A(u,v) for interval i.
func (s *Store) CoDocFreq(u, v string, i int) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r, li, ok := s.routeLocked(i); ok {
		return r.CoDocFreq(u, v, li)
	}
	return 0, nil
}

// Search returns the sorted ids of interval-i documents containing all
// keywords.
func (s *Store) Search(keywords []string, i int) ([]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r, li, ok := s.routeLocked(i); ok {
		return r.Search(keywords, li)
	}
	return nil, nil
}

// TimeSeries returns A(w) for every interval — each segment's series
// concatenated in interval order.
func (s *Store) TimeSeries(w string) ([]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, s.numIntervalsLocked())
	for _, seg := range s.segs {
		ts, err := seg.r.TimeSeries(w)
		if err != nil {
			return nil, err
		}
		copy(out[seg.start:seg.start+seg.n], ts)
	}
	return out, nil
}

// Vocabulary returns the sorted distinct keywords of interval i.
func (s *Store) Vocabulary(i int) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r, li, ok := s.routeLocked(i); ok {
		return r.Vocabulary(li)
	}
	return nil, nil
}

// Postings returns the sorted document ids containing keyword w in
// interval i.
func (s *Store) Postings(w string, i int) ([]int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if r, li, ok := s.routeLocked(i); ok {
		return r.Postings(w, li)
	}
	return nil, nil
}

// Close closes every segment and removes delta files (and the owned
// temporary directory, when the store created one). Idempotent.
func (s *Store) Close() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var first error
	for _, seg := range s.segs {
		if err := seg.r.Close(); err != nil && first == nil {
			first = err
		}
		if seg.path != "" && seg.path != s.basePath && s.dir == "" {
			s.fs.Remove(seg.path)
		}
	}
	s.segs = nil
	if s.dir != "" {
		if err := s.fs.RemoveAll(s.dir); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- observability ---

// Stats aggregates the disk segments' I/O counters (zero for the mem
// backend), including segments already retired by compaction.
func (s *Store) Stats() diskstore.IOStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	io := s.baseIO
	for _, seg := range s.segs {
		if st, ok := seg.r.(interface{ Stats() diskstore.IOStats }); ok {
			io.Add(st.Stats())
		}
	}
	return io
}

// CacheStats aggregates the disk segments' block-cache counters:
// hits, misses and resident bytes (all zero for the mem backend).
func (s *Store) CacheStats() (hits, misses, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, seg := range s.segs {
		if d, ok := seg.r.(*DiskIndex); ok {
			h, m, b := d.CacheStats()
			hits, misses, bytes = hits+h, misses+m, bytes+b
		}
	}
	return hits, misses, bytes
}

// ResetStats zeroes the aggregated I/O counters (used between
// experiment phases).
func (s *Store) ResetStats() {
	s.mu.Lock()
	s.baseIO = diskstore.IOStats{}
	segs := make([]storeSeg, len(s.segs))
	copy(segs, s.segs)
	s.mu.Unlock()
	for _, seg := range segs {
		if d, ok := seg.r.(*DiskIndex); ok {
			d.ResetStats()
		}
	}
}

// NumSegments returns the live segment count (base plus deltas).
func (s *Store) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segs)
}

// Pushes returns how many delta segments were appended over the
// store's lifetime.
func (s *Store) Pushes() int64 { return s.pushes.Load() }

// Compactions returns how many folds completed.
func (s *Store) Compactions() int64 { return s.compactions.Load() }
