package index

import (
	"container/list"
	"sync"
)

// blockCache is a bytes-bounded LRU over decoded posting blocks,
// keyed by block file offset. It bounds the disk index's residency:
// the dictionaries are always resident, but postings only occupy
// memory up to the budget. Cached slices are shared — callers must
// not modify them.
type blockCache struct {
	mu           sync.Mutex
	budget       int64
	used         int64
	ll           *list.List // front = most recently used
	items        map[int64]*list.Element
	hits, misses int64
}

type cacheItem struct {
	key  int64
	ids  []int64
	size int64
}

// cacheItemOverhead approximates the bookkeeping bytes per cached
// block (list element, map entry, headers).
const cacheItemOverhead = 96

func newBlockCache(budget int64) *blockCache {
	return &blockCache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[int64]*list.Element),
	}
}

func (c *blockCache) get(key int64) ([]int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).ids, true
}

func (c *blockCache) put(key int64, ids []int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	it := &cacheItem{key: key, ids: ids, size: int64(len(ids))*8 + cacheItemOverhead}
	c.items[key] = c.ll.PushFront(it)
	c.used += it.size
	// Evict from the LRU end, but keep at least the newest entry so a
	// single block larger than the whole budget still serves repeated
	// probes within one lookup.
	for c.used > c.budget && c.ll.Len() > 1 {
		el := c.ll.Back()
		victim := el.Value.(*cacheItem)
		c.ll.Remove(el)
		delete(c.items, victim.key)
		c.used -= victim.size
	}
}

func (c *blockCache) counters() (hits, misses, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.used
}
