// Package index implements the keyword index underlying BlogScope, the
// host system of the paper (Sections 1 and 3): per-interval inverted
// posting lists over a temporally ordered document stream.
//
// The index answers the primitives the rest of the pipeline and the
// search features need:
//
//   - A(u): how many documents of an interval contain keyword u;
//   - A(u,v): how many contain both u and v (posting intersection);
//   - boolean keyword search within an interval or range;
//   - per-keyword time series across intervals (the input to burst
//     detection, internal/burst).
//
// Postings are sorted document-id slices; intersections run in
// O(|shorter| + |longer|) with a galloping fallback for very skewed
// pairs.
package index

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/corpus"
)

// Index is an inverted keyword index over a collection's intervals.
// Build one with New; it is immutable and safe for concurrent readers
// afterwards.
type Index struct {
	intervals []intervalIndex
	// docs counts documents per interval.
	docs []int
}

type intervalIndex struct {
	postings map[string][]int64 // keyword → sorted doc ids
}

// New indexes every interval of the collection. Document keywords are
// treated as sets (duplicates within a document are counted once),
// matching the binary per-document semantics of Section 3.
func New(c *corpus.Collection) (*Index, error) {
	idx := &Index{
		intervals: make([]intervalIndex, len(c.Intervals)),
		docs:      make([]int, len(c.Intervals)),
	}
	var scratch []string
	for i, iv := range c.Intervals {
		postings := make(map[string][]int64)
		idx.docs[i] = len(iv.Docs)
		for _, d := range iv.Docs {
			if d.Interval != i {
				return nil, fmt.Errorf("index: document %d claims interval %d but lives in %d", d.ID, d.Interval, i)
			}
			scratch = dedupKeywords(scratch, d.Keywords)
			for _, w := range scratch {
				postings[w] = append(postings[w], d.ID)
			}
		}
		for w := range postings {
			p := postings[w]
			slices.Sort(p)
			// Document ids must be unique within an interval, or A(u)
			// counts would double-count.
			for j := 1; j < len(p); j++ {
				if p[j] == p[j-1] {
					return nil, fmt.Errorf("index: interval %d: duplicate document id %d", i, p[j])
				}
			}
		}
		idx.intervals[i].postings = postings
	}
	return idx, nil
}

// dedupKeywords overwrites dst with the distinct keywords of kws and
// returns it. A document's keywords are a set (the per-document
// indicator AD(u,v) of Section 3 is binary); deduping through a
// reusable slice instead of a per-document map keeps the build hot
// path allocation-free. Typical documents are short, so a linear scan
// wins; long documents fall back to sort + compact.
func dedupKeywords(dst, kws []string) []string {
	dst = dst[:0]
	if len(kws) <= 16 {
		for _, w := range kws {
			if !slices.Contains(dst, w) {
				dst = append(dst, w)
			}
		}
		return dst
	}
	dst = append(dst, kws...)
	slices.Sort(dst)
	return slices.Compact(dst)
}

// NumIntervals returns the number of indexed intervals.
func (x *Index) NumIntervals() int { return len(x.intervals) }

// NumDocs returns the number of documents in interval i.
func (x *Index) NumDocs(i int) int {
	if i < 0 || i >= len(x.docs) {
		return 0
	}
	return x.docs[i]
}

// Postings returns the sorted document ids containing keyword w in
// interval i. The returned slice is shared; callers must not modify it.
func (x *Index) Postings(w string, i int) []int64 {
	if i < 0 || i >= len(x.intervals) {
		return nil
	}
	return x.intervals[i].postings[w]
}

// DocFreq returns A(u) for interval i.
func (x *Index) DocFreq(w string, i int) int64 {
	return int64(len(x.Postings(w, i)))
}

// CoDocFreq returns A(u,v) for interval i via posting intersection.
func (x *Index) CoDocFreq(u, v string, i int) int64 {
	return int64(len(Intersect(x.Postings(u, i), x.Postings(v, i))))
}

// Search returns the sorted ids of interval-i documents containing ALL
// the given keywords (boolean AND). An empty keyword list matches
// nothing.
func (x *Index) Search(keywords []string, i int) []int64 {
	if len(keywords) == 0 {
		return nil
	}
	// Intersect rarest-first so intermediate results shrink fastest.
	lists := make([][]int64, len(keywords))
	for j, w := range keywords {
		lists[j] = x.Postings(w, i)
		if len(lists[j]) == 0 {
			return nil
		}
	}
	sort.Slice(lists, func(a, b int) bool { return len(lists[a]) < len(lists[b]) })
	acc := lists[0]
	for _, l := range lists[1:] {
		acc = Intersect(acc, l)
		if len(acc) == 0 {
			return nil
		}
	}
	// acc may alias a posting list; copy before returning.
	out := make([]int64, len(acc))
	copy(out, acc)
	return out
}

// TimeSeries returns A(w) for every interval — the document-frequency
// trajectory burst detection consumes.
func (x *Index) TimeSeries(w string) []int64 {
	out := make([]int64, len(x.intervals))
	for i := range x.intervals {
		out[i] = x.DocFreq(w, i)
	}
	return out
}

// Vocabulary returns the sorted distinct keywords of interval i.
func (x *Index) Vocabulary(i int) []string {
	if i < 0 || i >= len(x.intervals) {
		return nil
	}
	words := make([]string, 0, len(x.intervals[i].postings))
	for w := range x.intervals[i].postings {
		words = append(words, w)
	}
	sort.Strings(words)
	return words
}

// Intersect returns the sorted intersection of two sorted id slices.
// When one list is much shorter, it gallops (doubling binary search)
// through the longer one.
func Intersect(a, b []int64) []int64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return nil
	}
	var out []int64
	if len(b) >= 16*len(a) {
		// Galloping: binary-search each element of the short list.
		lo := 0
		for _, v := range a {
			i := lo + sort.Search(len(b)-lo, func(j int) bool { return b[lo+j] >= v })
			if i < len(b) && b[i] == v {
				out = append(out, v)
				lo = i + 1
			} else {
				lo = i
			}
			if lo >= len(b) {
				break
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}
