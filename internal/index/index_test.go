package index

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/corpus"
)

func testCollection() *corpus.Collection {
	return &corpus.Collection{Intervals: []corpus.Interval{
		{Index: 0, Docs: []corpus.Document{
			{ID: 1, Interval: 0, Keywords: []string{"a", "b"}},
			{ID: 2, Interval: 0, Keywords: []string{"a", "c"}},
			{ID: 3, Interval: 0, Keywords: []string{"b", "c", "a"}},
		}},
		{Index: 1, Docs: []corpus.Document{
			{ID: 4, Interval: 1, Keywords: []string{"a"}},
			{ID: 5, Interval: 1, Keywords: []string{"c", "c"}}, // dup keyword in one doc
		}},
	}}
}

func TestDocFreqAndCoDocFreq(t *testing.T) {
	x, err := New(testCollection())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if x.NumIntervals() != 2 || x.NumDocs(0) != 3 || x.NumDocs(1) != 2 {
		t.Errorf("shape wrong: %d intervals, %d/%d docs", x.NumIntervals(), x.NumDocs(0), x.NumDocs(1))
	}
	if got := x.DocFreq("a", 0); got != 3 {
		t.Errorf("A(a)@0 = %d, want 3", got)
	}
	if got := x.DocFreq("c", 1); got != 1 {
		t.Errorf("A(c)@1 = %d, want 1 (duplicate keyword must count once)", got)
	}
	if got := x.DocFreq("zzz", 0); got != 0 {
		t.Errorf("A(zzz) = %d, want 0", got)
	}
	if got := x.CoDocFreq("a", "b", 0); got != 2 {
		t.Errorf("A(a,b)@0 = %d, want 2", got)
	}
	if got := x.CoDocFreq("a", "c", 1); got != 0 {
		t.Errorf("A(a,c)@1 = %d, want 0", got)
	}
	if got := x.NumDocs(9); got != 0 {
		t.Errorf("NumDocs out of range = %d, want 0", got)
	}
}

func TestSearch(t *testing.T) {
	x, err := New(testCollection())
	if err != nil {
		t.Fatal(err)
	}
	if got := x.Search([]string{"a", "b"}, 0); !reflect.DeepEqual(got, []int64{1, 3}) {
		t.Errorf("Search(a AND b) = %v, want [1 3]", got)
	}
	if got := x.Search([]string{"a", "b", "c"}, 0); !reflect.DeepEqual(got, []int64{3}) {
		t.Errorf("Search(a AND b AND c) = %v, want [3]", got)
	}
	if got := x.Search([]string{"a", "zzz"}, 0); got != nil {
		t.Errorf("Search with unknown term = %v, want nil", got)
	}
	if got := x.Search(nil, 0); got != nil {
		t.Errorf("empty Search = %v, want nil", got)
	}
	if got := x.Search([]string{"a"}, 5); got != nil {
		t.Errorf("out-of-range Search = %v, want nil", got)
	}
}

func TestTimeSeriesAndVocabulary(t *testing.T) {
	x, err := New(testCollection())
	if err != nil {
		t.Fatal(err)
	}
	if got := x.TimeSeries("a"); !reflect.DeepEqual(got, []int64{3, 1}) {
		t.Errorf("TimeSeries(a) = %v, want [3 1]", got)
	}
	if got := x.TimeSeries("b"); !reflect.DeepEqual(got, []int64{2, 0}) {
		t.Errorf("TimeSeries(b) = %v, want [2 0]", got)
	}
	if got := x.Vocabulary(1); !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("Vocabulary(1) = %v, want [a c]", got)
	}
	if x.Vocabulary(7) != nil {
		t.Error("out-of-range Vocabulary not nil")
	}
}

func TestNewRejectsBadCollections(t *testing.T) {
	misfiled := &corpus.Collection{Intervals: []corpus.Interval{
		{Index: 0, Docs: []corpus.Document{{ID: 1, Interval: 2, Keywords: []string{"a"}}}},
	}}
	if _, err := New(misfiled); err == nil {
		t.Error("misfiled document accepted")
	}
	dupID := &corpus.Collection{Intervals: []corpus.Interval{
		{Index: 0, Docs: []corpus.Document{
			{ID: 1, Interval: 0, Keywords: []string{"a"}},
			{ID: 1, Interval: 0, Keywords: []string{"a"}},
		}},
	}}
	if _, err := New(dupID); err == nil {
		t.Error("duplicate document id accepted")
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct{ a, b, want []int64 }{
		{nil, nil, nil},
		{[]int64{1}, nil, nil},
		{[]int64{1, 3, 5}, []int64{3, 5, 7}, []int64{3, 5}},
		{[]int64{1, 2}, []int64{3, 4}, nil},
		{[]int64{2}, []int64{2}, []int64{2}},
	}
	for _, c := range cases {
		got := Intersect(c.a, c.b)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: Intersect agrees with a map-based oracle regardless of
// skew, covering both the merge and galloping paths.
func TestIntersectProperty(t *testing.T) {
	f := func(seedA, seedB int64, skew uint8) bool {
		rngA := rand.New(rand.NewSource(seedA))
		rngB := rand.New(rand.NewSource(seedB))
		na := rngA.Intn(8) + 1
		nb := rngB.Intn(200) + 1 // often >16x na, exercising galloping
		if skew%2 == 0 {
			na, nb = nb, na
		}
		mk := func(rng *rand.Rand, n int) []int64 {
			set := map[int64]struct{}{}
			for len(set) < n {
				set[int64(rng.Intn(500))] = struct{}{}
			}
			out := make([]int64, 0, n)
			for v := range set {
				out = append(out, v)
			}
			sortInt64s(out)
			return out
		}
		a, b := mk(rngA, na), mk(rngB, nb)
		got := Intersect(a, b)
		inB := map[int64]struct{}{}
		for _, v := range b {
			inB[v] = struct{}{}
		}
		var want []int64
		for _, v := range a {
			if _, ok := inB[v]; ok {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func sortInt64s(s []int64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// The index's counts must agree with the co-occurrence pipeline on a
// synthetic corpus: same A(u), same A(u,v).
func TestIndexAgreesWithCooccur(t *testing.T) {
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: 5, NumIntervals: 2, BackgroundPosts: 150,
		BackgroundVocab: 120, WordsPerPost: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, err := New(col)
	if err != nil {
		t.Fatal(err)
	}
	// Brute-force counts straight from the documents.
	for i := 0; i < 2; i++ {
		freq := map[string]int64{}
		for _, d := range col.Intervals[i].Docs {
			for _, w := range d.Keywords {
				freq[w]++
			}
		}
		for w, want := range freq {
			if got := x.DocFreq(w, i); got != want {
				t.Fatalf("interval %d: A(%s) = %d, want %d", i, w, got, want)
			}
		}
	}
}

// BenchmarkIndexBuild measures New on the hot build path (the
// per-document dedup dominates allocations).
func BenchmarkIndexBuild(b *testing.B) {
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: 9, NumIntervals: 2, BackgroundPosts: 2000,
		BackgroundVocab: 1500, WordsPerPost: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(col); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: 9, NumIntervals: 1, BackgroundPosts: 5000,
		BackgroundVocab: 2000, WordsPerPost: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	x, err := New(col)
	if err != nil {
		b.Fatal(err)
	}
	vocab := x.Vocabulary(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Search([]string{vocab[i%len(vocab)], vocab[(i*7)%len(vocab)]}, 0)
	}
}
