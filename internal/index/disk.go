// Disk-backed posting layout (EMBANKS-style): an immutable segment
// file holding every interval's posting lists, built by streaming
// (interval, keyword, docID) tuples through the external sorter so
// corpora larger than RAM index in bounded memory.
//
// Segment file layout (integers are uvarint unless noted):
//
//	header    8 bytes, the magic "BSIX001\n"
//	blocks    per (interval, term), in (interval, term) order: posting
//	          blocks of up to BlockSize doc ids each —
//	            count, first id, then deltas (strictly positive),
//	            CRC32-IEEE of the payload (4 bytes LE)
//	dicts     one term dictionary per interval —
//	            numTerms, then per term (sorted ascending):
//	              len(term), term bytes, docFreq, numBlocks,
//	              per block: off, len, count, first id, last id
//	            CRC32 of the payload (4 bytes LE)
//	footer    numIntervals, per interval: numDocs, dictOff, dictLen;
//	          CRC32 of the payload (4 bytes LE)
//	tail      24 bytes fixed: footerOff (8 LE), footerLen (8 LE),
//	          the magic "BSIXFTR\n"
//
// The dictionaries and footer are small and resident after OpenDisk
// (the skip index); posting blocks stay on disk and are fetched on
// demand through an LRU cache, so query-time I/O is O(blocks touched),
// measurable via diskstore.IOStats like the Section 4 solvers.
package index

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"

	"repro/internal/corpus"
	"repro/internal/extsort"
	"repro/internal/faultfs"
)

const (
	segMagic   = "BSIX001\n"
	footMagic  = "BSIXFTR\n"
	segTailLen = 8 + 8 + len(footMagic) // footerOff + footerLen + magic

	// DefaultBlockSize is the posting count per on-disk block.
	DefaultBlockSize = 128
	// DefaultDiskMemBudget bounds the decoded-block LRU cache (8 MiB).
	DefaultDiskMemBudget = 8 << 20
)

// encodePosting renders one (interval, term, doc) tuple as a binary
// record whose bytewise order equals the tuple order: big-endian
// fixed-width integers (byte order is monotonic in the value) and a
// NUL terminator after the term (NUL sorts before every valid term
// byte, so "ab" precedes "abc"). The records ride extsort's
// length-prefixed binary run format — 13 bytes of framing per posting
// instead of the 26 hex digits the original newline-terminated text
// encoding spent, and no ParseUint on the way back out.
func encodePosting(buf []byte, interval int, term string, doc int64) []byte {
	buf = binary.BigEndian.AppendUint32(buf[:0], uint32(interval))
	buf = append(buf, term...)
	buf = append(buf, 0)
	return binary.BigEndian.AppendUint64(buf, uint64(doc))
}

const postingFixedLen = 4 + 1 + 8 // interval + NUL + doc id

func decodePosting(rec string) (interval int, term string, doc int64, err error) {
	if len(rec) < postingFixedLen || rec[len(rec)-9] != 0 {
		return 0, "", 0, corruptf("index: malformed posting record %q", rec)
	}
	iv := uint32(rec[0])<<24 | uint32(rec[1])<<16 | uint32(rec[2])<<8 | uint32(rec[3])
	var id uint64
	for _, b := range []byte(rec[len(rec)-8:]) {
		id = id<<8 | uint64(b)
	}
	return int(iv), rec[4 : len(rec)-9], int64(id), nil
}

// blockRef is one skip-index entry: where a posting block lives and
// the doc-id range it covers, so lookups fetch only blocks that can
// contain a candidate.
type blockRef struct {
	off         int64
	length      int32
	count       int32
	first, last int64
}

type dictEntry struct {
	term    string
	docFreq int64
	blocks  []blockRef
}

// BuildDisk streams the collection's (interval, keyword, docID)
// tuples through internal/extsort and writes the immutable segment
// file at path (atomically, via rename). Document keywords are
// deduplicated per document, matching New; doc ids must be
// non-negative and keywords must not contain NUL or newline bytes.
func BuildDisk(c *corpus.Collection, path string, cfg Config) error {
	return BuildDiskCtx(context.Background(), c, path, cfg)
}

// BuildDiskCtx is BuildDisk with cancellation: the tuple-emission and
// segment-write loops poll ctx every few thousand records, and the
// external sorter's merge passes poll it too, so an abandoned build
// stops promptly and leaves no partial segment behind (the .partial
// temp file is removed on every error path, cancellation included).
func BuildDiskCtx(ctx context.Context, c *corpus.Collection, path string, cfg Config) (err error) {
	if err := ctx.Err(); err != nil {
		return err
	}
	blockSize := cfg.blockSize()
	fs := cfg.fs()
	const pollEvery = 4096
	sorter := extsort.NewWithOptions(extsort.Options{
		MemoryBudget: cfg.SortMemoryBudget,
		Binary:       true,
		Ctx:          ctx,
		FS:           fs,
	})
	defer sorter.Discard()
	var scratch []string
	var recBuf []byte
	emitted := 0
	for i := range c.Intervals {
		for _, d := range c.Intervals[i].Docs {
			if d.Interval != i {
				return fmt.Errorf("index: document %d claims interval %d but lives in %d", d.ID, d.Interval, i)
			}
			if d.ID < 0 {
				return fmt.Errorf("index: document id %d is negative; the disk layout requires non-negative ids", d.ID)
			}
			scratch = dedupKeywords(scratch, d.Keywords)
			for _, w := range scratch {
				if strings.ContainsAny(w, "\x00\n") {
					return fmt.Errorf("index: interval %d: keyword %q contains NUL or newline", i, w)
				}
				recBuf = encodePosting(recBuf, i, w, d.ID)
				if err := sorter.Add(string(recBuf)); err != nil {
					return err
				}
				if emitted++; emitted%pollEvery == 0 {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
			}
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	defer it.Close()

	tmp := path + ".partial"
	sw, err := newSegmentWriter(fs, tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			sw.f.Close()
			fs.Remove(tmp)
		}
	}()
	if err = sw.write([]byte(segMagic)); err != nil {
		return err
	}

	m := len(c.Intervals)
	dicts := make([][]dictEntry, m)
	var (
		open     bool
		curIV    int
		curTerm  string
		ids      []int64
		blocks   []blockRef
		df       int64
		blockBuf []byte
		prevRec  string
	)
	flushBlock := func() error {
		if len(ids) == 0 {
			return nil
		}
		ref, werr := sw.writeBlock(ids, &blockBuf)
		if werr != nil {
			return werr
		}
		blocks = append(blocks, ref)
		df += int64(len(ids))
		ids = ids[:0]
		return nil
	}
	finishTerm := func() error {
		if !open {
			return nil
		}
		if ferr := flushBlock(); ferr != nil {
			return ferr
		}
		dicts[curIV] = append(dicts[curIV], dictEntry{
			term:    curTerm,
			docFreq: df,
			blocks:  blocks,
		})
		blocks = nil
		df = 0
		return nil
	}
	written := 0
	for {
		if written++; written%pollEvery == 0 {
			if err = ctx.Err(); err != nil {
				return err
			}
		}
		rec, ok := it.Next()
		if !ok {
			break
		}
		if open && rec == prevRec {
			iv, _, doc, _ := decodePosting(rec)
			return fmt.Errorf("index: interval %d: duplicate document id %d", iv, doc)
		}
		iv, term, doc, derr := decodePosting(rec)
		if derr != nil {
			return derr
		}
		if !open || iv != curIV || term != curTerm {
			if err = finishTerm(); err != nil {
				return err
			}
			curIV, curTerm, open = iv, term, true
		}
		ids = append(ids, doc)
		if len(ids) >= blockSize {
			if err = flushBlock(); err != nil {
				return err
			}
		}
		prevRec = rec
	}
	if err = it.Err(); err != nil {
		return err
	}
	if err = finishTerm(); err != nil {
		return err
	}

	// Dictionaries, then footer, then the fixed tail.
	dictOff := make([]int64, m)
	dictLen := make([]int64, m)
	for i := 0; i < m; i++ {
		dictOff[i] = sw.off
		if err = sw.writeDict(dicts[i]); err != nil {
			return err
		}
		dictLen[i] = sw.off - dictOff[i]
	}
	footOff := sw.off
	foot := binary.AppendUvarint(nil, uint64(m))
	for i := 0; i < m; i++ {
		foot = binary.AppendUvarint(foot, uint64(len(c.Intervals[i].Docs)))
		foot = binary.AppendUvarint(foot, uint64(dictOff[i]))
		foot = binary.AppendUvarint(foot, uint64(dictLen[i]))
	}
	foot = binary.LittleEndian.AppendUint32(foot, crc32.ChecksumIEEE(foot))
	if err = sw.write(foot); err != nil {
		return err
	}
	tail := binary.LittleEndian.AppendUint64(nil, uint64(footOff))
	tail = binary.LittleEndian.AppendUint64(tail, uint64(len(foot)))
	tail = append(tail, footMagic...)
	if err = sw.write(tail); err != nil {
		return err
	}
	if err = sw.finish(); err != nil {
		return err
	}
	return fs.Rename(tmp, path)
}

type segmentWriter struct {
	f   faultfs.File
	w   *bufio.Writer
	off int64
}

func newSegmentWriter(fs faultfs.FS, path string) (*segmentWriter, error) {
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("index: create segment: %w", err)
	}
	return &segmentWriter{f: f, w: bufio.NewWriterSize(f, 256<<10)}, nil
}

func (s *segmentWriter) write(p []byte) error {
	n, err := s.w.Write(p)
	s.off += int64(n)
	if err != nil {
		return fmt.Errorf("index: write segment: %w", err)
	}
	return nil
}

// writeBlock encodes one posting block (count, first id, deltas, CRC)
// reusing *buf as scratch and returns its skip entry.
func (s *segmentWriter) writeBlock(ids []int64, buf *[]byte) (blockRef, error) {
	b := (*buf)[:0]
	b = binary.AppendUvarint(b, uint64(len(ids)))
	b = binary.AppendUvarint(b, uint64(ids[0]))
	for k := 1; k < len(ids); k++ {
		b = binary.AppendUvarint(b, uint64(ids[k]-ids[k-1]))
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	*buf = b
	ref := blockRef{
		off:    s.off,
		length: int32(len(b)),
		count:  int32(len(ids)),
		first:  ids[0],
		last:   ids[len(ids)-1],
	}
	return ref, s.write(b)
}

func (s *segmentWriter) writeDict(entries []dictEntry) error {
	b := binary.AppendUvarint(nil, uint64(len(entries)))
	for _, e := range entries {
		b = binary.AppendUvarint(b, uint64(len(e.term)))
		b = append(b, e.term...)
		b = binary.AppendUvarint(b, uint64(e.docFreq))
		b = binary.AppendUvarint(b, uint64(len(e.blocks)))
		for _, ref := range e.blocks {
			b = binary.AppendUvarint(b, uint64(ref.off))
			b = binary.AppendUvarint(b, uint64(ref.length))
			b = binary.AppendUvarint(b, uint64(ref.count))
			b = binary.AppendUvarint(b, uint64(ref.first))
			b = binary.AppendUvarint(b, uint64(ref.last))
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return s.write(b)
}

func (s *segmentWriter) finish() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("index: flush segment: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("index: sync segment: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("index: close segment: %w", err)
	}
	return nil
}
