package index

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/diskstore"
	"repro/internal/faultfs"
)

func faultCorpus(t *testing.T, seed int64, posts int) *corpus.Collection {
	t.Helper()
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: seed, NumIntervals: 3, BackgroundPosts: posts, BackgroundVocab: 14, WordsPerPost: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// TestFaultDiskIndexRetriesTransientReads is the headline robustness
// gate: with a 10% injected EIO rate on every segment read, queries
// must still succeed — via retry — and return exactly the reference
// results, with zero corrupted reads. Wrong-but-plausible answers are
// the failure mode this guards against; the CRC layer plus the
// retry/corrupt split makes them structurally impossible.
func TestFaultDiskIndexRetriesTransientReads(t *testing.T) {
	col := faultCorpus(t, 41, 60)
	x, err := New(col)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	if err := BuildDisk(col, path, Config{BlockSize: 4}); err != nil {
		t.Fatal(err)
	}
	in := faultfs.NewInjector(nil, 1)
	in.AddRule(faultfs.Rule{Op: faultfs.OpRead, Prob: 0.10})
	d, err := OpenDisk(path, Config{
		FS:    in,
		Retry: diskstore.RetryPolicy{Attempts: 6, Backoff: time.Microsecond},
		Ctx:   context.Background(),
	})
	if err != nil {
		t.Fatalf("open under 10%% fault rate failed: %v", err)
	}
	defer d.Close()
	for i := 0; i < x.NumIntervals(); i++ {
		vocab := x.Vocabulary(i)
		for _, w := range vocab {
			got, err := d.Postings(w, i)
			if err != nil {
				t.Fatalf("Postings(%q, %d) under faults: %v", w, i, err)
			}
			if want := x.Postings(w, i); !reflect.DeepEqual(got, want) {
				t.Fatalf("Postings(%q, %d) corrupted under faults: got %v want %v", w, i, got, want)
			}
		}
		if len(vocab) >= 2 {
			got, err := d.Search(vocab[:2], i)
			if err != nil {
				t.Fatalf("Search under faults: %v", err)
			}
			if want := x.Search(vocab[:2], i); !reflect.DeepEqual(got, want) {
				t.Fatalf("Search corrupted under faults: got %v want %v", got, want)
			}
		}
	}
	st := d.Stats()
	if st.RetriedReads == 0 {
		t.Fatalf("10%% fault rate produced zero retries (injected=%d)", in.Injected())
	}
	if st.CorruptReads != 0 {
		t.Fatalf("transient faults were misclassified as corruption %d times", st.CorruptReads)
	}
}

// TestFaultDiskIndexRetryExhaustion pins the other side: a fault that
// never clears surfaces as ErrTransient (not a silent wrong answer,
// not ErrCorrupt) once the retry budget runs out.
func TestFaultDiskIndexRetryExhaustion(t *testing.T) {
	col := faultCorpus(t, 42, 30)
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	if err := BuildDisk(col, path, Config{BlockSize: 4}); err != nil {
		t.Fatal(err)
	}
	in := faultfs.NewInjector(nil, 1)
	d, err := OpenDisk(path, Config{
		FS:    in,
		Retry: diskstore.RetryPolicy{Attempts: 3, Backoff: time.Microsecond},
		Ctx:   context.Background(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	in.AddRule(faultfs.Rule{Op: faultfs.OpRead}) // every read fails, forever
	w := col.Vocabulary()[0]
	_, err = d.Postings(w, 0)
	if !errors.Is(err, diskstore.ErrTransient) {
		t.Fatalf("exhausted retries = %v, want ErrTransient in chain", err)
	}
	if errors.Is(err, ErrCorrupt) {
		t.Fatalf("persistent EIO misreported as corruption: %v", err)
	}
	if st := d.Stats(); st.RetriedReads != 2 {
		t.Fatalf("RetriedReads = %d, want 2 (three attempts)", st.RetriedReads)
	}
}

// TestFaultBuildDiskENOSPCRemovesPartial proves a build that dies on a
// full disk leaves no .partial segment behind, and that the same path
// builds cleanly once space returns.
func TestFaultBuildDiskENOSPCRemovesPartial(t *testing.T) {
	col := faultCorpus(t, 43, 40)
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	in := faultfs.NewInjector(nil, 1)
	in.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: ".partial", Err: syscall.ENOSPC})
	err := BuildDisk(col, path, Config{BlockSize: 4, FS: in})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("build under ENOSPC = %v, want ENOSPC", err)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("failed build left files behind: %v", leftovers)
	}
	// Space comes back: the same injector (faults off) must build a
	// segment that opens and answers.
	in.SetEnabled(false)
	if err := BuildDisk(col, path, Config{BlockSize: 4, FS: in}); err != nil {
		t.Fatalf("rebuild after ENOSPC cleared: %v", err)
	}
	d, err := OpenDisk(path, Config{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()
}

// cancelOnCreateFS cancels the build's context as soon as the
// .partial segment file is created, so cancellation lands mid-write.
type cancelOnCreateFS struct {
	faultfs.FS
	cancel context.CancelFunc
	match  string
}

func (c *cancelOnCreateFS) Create(name string) (faultfs.File, error) {
	f, err := c.FS.Create(name)
	if err == nil && strings.Contains(name, c.match) {
		c.cancel()
	}
	return f, err
}

// TestFaultBuildDiskCancellationRemovesPartial proves an abandoned
// build (context cancelled while the segment is being written) removes
// its .partial file on the way out.
func TestFaultBuildDiskCancellationRemovesPartial(t *testing.T) {
	col := faultCorpus(t, 44, 2000)
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfs := &cancelOnCreateFS{FS: faultfs.OS(), cancel: cancel, match: ".partial"}
	err := BuildDiskCtx(ctx, col, path, Config{BlockSize: 4, FS: cfs})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build = %v, want context.Canceled", err)
	}
	if _, err := os.Stat(path + ".partial"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf(".partial survives a cancelled build (stat err: %v)", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("cancelled build produced a segment (stat err: %v)", err)
	}
}
