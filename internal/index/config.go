package index

import (
	"context"

	"repro/internal/diskstore"
	"repro/internal/faultfs"
)

// Config is the one coherent option set of the index backends: segment
// building (BuildDisk, Store.Push), segment opening (OpenDisk) and the
// multi-segment Store's compaction policy all consume it. It replaces
// the former DiskOptions/OpenOptions split — a live Store both writes
// and reads segments, so the knobs have to travel together.
type Config struct {
	// BlockSize is the number of postings per on-disk block; smaller
	// blocks mean finer-grained skips at the cost of more per-block
	// overhead. Non-positive means DefaultBlockSize.
	BlockSize int
	// SortMemoryBudget bounds the external sorter's in-memory buffer
	// while a segment is built; 0 uses the extsort default. Tiny budgets
	// force spilled runs, exercising the larger-than-RAM route.
	SortMemoryBudget int
	// MemBudget bounds the resident bytes of each opened segment's
	// decoded-block LRU cache. Non-positive means DefaultDiskMemBudget.
	MemBudget int
	// FS is the filesystem segments are built on and read through. Nil
	// means the OS passthrough; tests substitute a faultfs.Injector to
	// exercise the retry and cleanup paths end to end.
	FS faultfs.FS
	// Retry bounds how block and section reads retry transient faults
	// (EIO, short reads). The zero value uses the diskstore defaults;
	// Attempts=1 disables retry. Corrupt blocks (ErrCorrupt) are never
	// retried — re-reading wrong bytes yields the same wrong bytes.
	Retry diskstore.RetryPolicy
	// Ctx bounds retry backoff sleeps for the life of the opened
	// segments, not just the opening call: readers outlive the query
	// that opened them, so pass a session-lifetime context. Nil means no
	// cancellation.
	Ctx context.Context
	// CompactAfter is the Store's compaction threshold: once more than
	// CompactAfter delta segments accumulate, the next push schedules a
	// fold of every segment into one new base. 0 means
	// DefaultCompactAfter; negative disables compaction.
	CompactAfter int
}

// fs returns the configured filesystem or the OS passthrough.
func (c Config) fs() faultfs.FS {
	if c.FS != nil {
		return c.FS
	}
	return faultfs.OS()
}

// blockSize returns the configured block size or the default.
func (c Config) blockSize() int {
	if c.BlockSize > 0 {
		return c.BlockSize
	}
	return DefaultBlockSize
}

// compactAfter returns the configured delta threshold, 0 meaning the
// default and negative meaning "never".
func (c Config) compactAfter() int {
	if c.CompactAfter == 0 {
		return DefaultCompactAfter
	}
	return c.CompactAfter
}
