package index

// Reader is the backend-neutral view of the keyword index: the
// primitives BlogScope's features consume (A(u), A(u,v), boolean
// search, per-keyword time series), answerable by the in-memory index
// or by the on-disk segment layout. Implementations are safe for
// concurrent readers.
//
// Methods that can touch storage return errors; the in-memory adapter
// never fails. Semantics match *Index exactly: unknown keywords have
// frequency zero, Search returns nil for empty keyword lists or empty
// results, and out-of-range intervals behave like empty ones.
type Reader interface {
	// NumIntervals returns the number of indexed intervals.
	NumIntervals() int
	// NumDocs returns the number of documents in interval i.
	NumDocs(i int) int
	// DocFreq returns A(u) for interval i.
	DocFreq(w string, i int) (int64, error)
	// CoDocFreq returns A(u,v) for interval i.
	CoDocFreq(u, v string, i int) (int64, error)
	// Search returns the sorted ids of interval-i documents containing
	// all keywords.
	Search(keywords []string, i int) ([]int64, error)
	// TimeSeries returns A(w) for every interval.
	TimeSeries(w string) ([]int64, error)
	// Vocabulary returns the sorted distinct keywords of interval i.
	Vocabulary(i int) ([]string, error)
	// Postings returns the sorted document ids containing keyword w in
	// interval i. The slice must not be modified by the caller.
	Postings(w string, i int) ([]int64, error)
	// Close releases backend resources. The in-memory adapter's Close
	// is a no-op.
	Close() error
}

// Reader adapts the in-memory index to the backend-neutral interface,
// so callers can switch between New and OpenDisk without changing
// query code.
func (x *Index) Reader() Reader { return memReader{x} }

type memReader struct{ x *Index }

var _ Reader = memReader{}

func (r memReader) NumIntervals() int { return r.x.NumIntervals() }
func (r memReader) NumDocs(i int) int { return r.x.NumDocs(i) }
func (r memReader) DocFreq(w string, i int) (int64, error) {
	return r.x.DocFreq(w, i), nil
}
func (r memReader) CoDocFreq(u, v string, i int) (int64, error) {
	return r.x.CoDocFreq(u, v, i), nil
}
func (r memReader) Search(keywords []string, i int) ([]int64, error) {
	return r.x.Search(keywords, i), nil
}
func (r memReader) TimeSeries(w string) ([]int64, error) {
	return r.x.TimeSeries(w), nil
}
func (r memReader) Vocabulary(i int) ([]string, error) {
	return r.x.Vocabulary(i), nil
}
func (r memReader) Postings(w string, i int) ([]int64, error) {
	return r.x.Postings(w, i), nil
}
func (r memReader) Close() error { return nil }
