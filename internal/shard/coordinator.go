package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	blogclusters "repro"
	"repro/internal/par"
	"repro/internal/plan"
)

// Options tunes a Coordinator.
type Options struct {
	// Graph is the default cluster-graph options of the session. It
	// must match the shards' own default graph (the same -gap/-theta/
	// -simjoin on every shard server) or merged answers would be built
	// on a different graph than scattered ones.
	Graph blogclusters.GraphOptions
	// PlanMode is passed to the coordinator's merged engine ("auto" or
	// "off"), mirroring WithPlanMode.
	PlanMode string
	// SolverParallelism is the merged engine's and the boundary-window
	// solves' worker count (0 = GOMAXPROCS).
	SolverParallelism int
	// Workers caps concurrent fan-out to shards; 0 means one worker per
	// shard (fan-out is I/O bound, not CPU bound).
	Workers int
	// StatsTimeout bounds the shard fan-out behind the synchronous
	// Stats() call; 0 means 2s.
	StatsTimeout time.Duration
}

// Coordinator fronts N shard Backends as one Engine-shaped session: it
// implements the same query surface (internal/server's Session), so the
// serving layer cannot tell it from a single Engine. See the package
// comment for the partition map, merge rules and failure policy.
type Coordinator struct {
	backends []Backend
	opts     Options
	metrics  *coordMetrics

	// root is canceled by Close; every query context joins it.
	root context.Context
	stop context.CancelFunc

	// mu guards the partition map and per-shard generations.
	mu        sync.Mutex
	counts    []int // per-shard interval counts
	shardGens []int64

	// gen is the composite generation: sum(shardGens) - N + 1.
	gen atomic.Int64

	// pushMu serializes Push (generations are a total order).
	pushMu sync.Mutex

	// stateMu guards the per-generation cache state. Retired states are
	// kept so their merged engines can be closed at Close (in-flight
	// queries may still hold them; see curState).
	stateMu sync.Mutex
	state   *coordState
	retired []*coordState

	queries atomic.Int64
	pushes  atomic.Int64
}

// NewCoordinator assembles a coordinator over backends (shard order is
// interval order: backends[0] owns the earliest intervals). It fetches
// each shard's Meta to build the partition map; every shard must
// already hold at least one interval. The coordinator owns the
// backends: Close closes them.
func NewCoordinator(ctx context.Context, backends []Backend, opts Options) (*Coordinator, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("shard: need at least one backend")
	}
	c := &Coordinator{
		backends:  make([]Backend, len(backends)),
		opts:      opts,
		metrics:   newCoordMetrics(),
		counts:    make([]int, len(backends)),
		shardGens: make([]int64, len(backends)),
	}
	// Wrap every backend in its metering decorator so all fan-out hops
	// — the Meta handshake below included — feed the per-shard latency
	// histograms, error counters and ?trace=1 spans.
	for s, b := range backends {
		c.backends[s] = c.meter(s, b)
	}
	c.root, c.stop = context.WithCancel(context.Background())
	metas := make([]Meta, len(backends))
	err := c.gather(ctx, len(backends), func(ctx context.Context, s int) error {
		m, err := c.backends[s].Meta(ctx)
		metas[s] = m
		return err
	})
	if err != nil {
		c.stop()
		return nil, fmt.Errorf("shard: fetch shard meta: %w", err)
	}
	composite := int64(1 - len(backends))
	for s, m := range metas {
		if m.Intervals < 1 {
			c.stop()
			return nil, fmt.Errorf("shard: shard %d owns no intervals", s)
		}
		c.counts[s] = m.Intervals
		c.shardGens[s] = m.Generation
		composite += m.Generation
	}
	c.gen.Store(composite)
	return c, nil
}

// Close cancels in-flight queries, closes every backend and every
// merged engine built along the way. Idempotent.
func (c *Coordinator) Close() error {
	c.stop()
	var first error
	c.stateMu.Lock()
	states := append(c.retired, c.state)
	c.retired, c.state = nil, nil
	c.stateMu.Unlock()
	for _, st := range states {
		if st == nil {
			continue
		}
		for _, eng := range st.engines() {
			if err := eng.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	for _, b := range c.backends {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Generation returns the composite generation: 1 when every shard is at
// its open generation, +1 for every push routed through the
// coordinator — the same contract as Engine.Generation, so response
// caches key by it unchanged. Pushes applied directly to a shard
// (bypassing the coordinator) are not observed.
func (c *Coordinator) Generation() int64 { return c.gen.Load() }

// NumIntervals returns the total corpus width across all shards.
func (c *Coordinator) NumIntervals() int {
	_, m := c.partition()
	return m
}

// partition snapshots the partition map: starts[s] is the first global
// interval of shard s, starts[N] == m (the total width).
func (c *Coordinator) partition() (starts []int, m int) {
	_, starts, m = c.snap()
	return starts, m
}

// snap reads the composite generation and the partition map under one
// lock, so a caller never pairs a post-push partition with a pre-push
// generation (Push stores the new generation while still holding mu).
func (c *Coordinator) snap() (gen int64, starts []int, m int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	starts = make([]int, len(c.counts)+1)
	for s, n := range c.counts {
		starts[s+1] = starts[s] + n
	}
	return c.gen.Load(), starts, starts[len(c.counts)]
}

// shardFor locates the shard owning global interval gi under starts.
func shardFor(starts []int, gi int) int {
	for s := 0; s < len(starts)-1; s++ {
		if gi < starts[s+1] {
			return s
		}
	}
	return len(starts) - 2
}

// queryCtx joins the caller's context with the coordinator's lifetime.
func (c *Coordinator) queryCtx(ctx context.Context) (context.Context, context.CancelFunc, error) {
	if err := c.root.Err(); err != nil {
		return nil, nil, blogclusters.ErrEngineClosed
	}
	c.queries.Add(1)
	jctx, cancel := context.WithCancel(ctx)
	unlink := context.AfterFunc(c.root, cancel)
	return jctx, func() { unlink(); cancel() }, nil
}

// gather fans fn out over n items with the configured concurrency and
// returns the lowest-index error — the fail-closed policy: any failed
// shard fails the whole merge, never a silently truncated one.
func (c *Coordinator) gather(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	workers := c.opts.Workers
	if workers <= 0 {
		workers = n
	}
	return par.ForEachCtx(ctx, n, workers, func(i int) error { return fn(ctx, i) })
}

// Push appends the next global interval: it must be interval m (else
// ErrOutOfOrderInterval), is rebased and routed to the last shard (the
// owner of the tail of the sequence), and on success bumps the
// composite generation — invalidating exactly the generation-keyed
// response-cache entries, like a single Engine's push would.
func (c *Coordinator) Push(ctx context.Context, iv blogclusters.Interval) (int64, error) {
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return 0, err
	}
	defer cancel()
	c.pushMu.Lock()
	defer c.pushMu.Unlock()

	starts, m := c.partition()
	if iv.Index != m {
		return 0, fmt.Errorf("shard: pushed interval %d, coordinator expects %d: %w", iv.Index, m, blogclusters.ErrOutOfOrderInterval)
	}
	last := len(c.backends) - 1
	local := iv.Index - starts[last]
	liv := blogclusters.Interval{Index: local, Label: iv.Label}
	liv.Docs = make([]blogclusters.Document, len(iv.Docs))
	for i, d := range iv.Docs {
		if d.Interval != iv.Index {
			// The shard would accept the rebased doc, so the coordinator
			// must apply the single-engine rule itself: every doc claims
			// the interval it is pushed into.
			return 0, fmt.Errorf("shard: document %d claims interval %d inside pushed interval %d: %w", d.ID, d.Interval, iv.Index, blogclusters.ErrMalformedInterval)
		}
		d.Interval = local
		liv.Docs[i] = d
	}
	gen, err := c.backends[last].Push(ctx, liv)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.counts[last]++
	c.shardGens[last] = gen
	composite := int64(1 - len(c.backends))
	for _, g := range c.shardGens {
		composite += g
	}
	c.gen.Store(composite)
	c.mu.Unlock()
	c.pushes.Add(1)
	return composite, nil
}

// ShardStat is one shard's slice of /debug/stats.
type ShardStat struct {
	// Shard is the shard index (interval order).
	Shard int `json:"shard"`
	// Start is the shard's first global interval; Intervals its width.
	Start     int `json:"start"`
	Intervals int `json:"intervals"`
	// Generation is the shard's own generation (the composite is the
	// sum over shards minus N-1).
	Generation int64 `json:"generation"`
	// Error is set when the shard's stats could not be fetched (stats
	// are best-effort; queries still fail closed).
	Error string `json:"error,omitempty"`
	// Engine is the shard's EngineStats (nil when Error is set).
	Engine *blogclusters.EngineStats `json:"engine,omitempty"`
}

// ShardStats snapshots every shard, best-effort: an unreachable shard
// contributes its partition-map row with Error set instead of failing
// the whole dashboard.
func (c *Coordinator) ShardStats() []ShardStat {
	starts, _ := c.partition()
	ctx, cancel := c.statsCtx()
	defer cancel()
	out := make([]ShardStat, len(c.backends))
	_ = c.gather(ctx, len(c.backends), func(ctx context.Context, s int) error {
		out[s] = ShardStat{Shard: s, Start: starts[s], Intervals: starts[s+1] - starts[s]}
		st, err := c.backends[s].Stats(ctx)
		if err != nil {
			out[s].Error = err.Error()
			return nil // best-effort: report, don't fail the gather
		}
		out[s].Generation = st.Generation
		out[s].Engine = &st
		return nil
	})
	return out
}

func (c *Coordinator) statsCtx() (context.Context, context.CancelFunc) {
	timeout := c.opts.StatsTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if c.root.Err() != nil {
		return context.WithTimeout(context.Background(), time.Nanosecond)
	}
	return context.WithTimeout(c.root, timeout)
}

// Stats aggregates the shards' EngineStats into one Engine-shaped
// snapshot: counters sum, stage timings merge, the generation is the
// composite and Intervals the total width. Per-shard detail is on
// ShardStats. Unreachable shards contribute nothing (best-effort, like
// ShardStats).
func (c *Coordinator) Stats() blogclusters.EngineStats {
	_, m := c.partition()
	out := blogclusters.EngineStats{
		Generation: c.Generation(),
		Intervals:  m,
		Stages:     map[string]blogclusters.StageTiming{},
	}
	for _, ss := range c.ShardStats() {
		if ss.Engine == nil {
			continue
		}
		mergeEngineStats(&out, *ss.Engine)
	}
	return out
}

// mergeEngineStats accumulates src's counters into dst (generation and
// intervals are owned by the caller).
func mergeEngineStats(dst *blogclusters.EngineStats, src blogclusters.EngineStats) {
	dst.Queries += src.Queries
	dst.Pushes += src.Pushes
	dst.IndexSegments += src.IndexSegments
	dst.IndexCompactions += src.IndexCompactions
	dst.IndexIO.Add(src.IndexIO)
	dst.IndexCache.Hits += src.IndexCache.Hits
	dst.IndexCache.Misses += src.IndexCache.Misses
	dst.IndexCache.Bytes += src.IndexCache.Bytes
	for name, t := range src.Stages {
		cur := dst.Stages[name]
		cur.Builds += t.Builds
		cur.Total += t.Total
		dst.Stages[name] = cur
	}
	dst.Planner.Decisions += src.Planner.Decisions
	dst.Planner.CacheHits += src.Planner.CacheHits
	dst.Planner.CacheMisses += src.Planner.CacheMisses
	dst.Planner.Invalidations += src.Planner.Invalidations
	dst.Planner.Observations += src.Planner.Observations
	dst.Planner.Explored += src.Planner.Explored
	dst.Planner.Exploited += src.Planner.Exploited
	for algo, n := range src.Planner.ByAlgorithm {
		if dst.Planner.ByAlgorithm == nil {
			dst.Planner.ByAlgorithm = map[string]int64{}
		}
		dst.Planner.ByAlgorithm[algo] += n
	}
	for algo, h := range src.Planner.SolveNs {
		if dst.Planner.SolveNs == nil {
			dst.Planner.SolveNs = map[string]plan.SolveHist{}
		}
		cur := dst.Planner.SolveNs[algo]
		cur.Merge(h)
		dst.Planner.SolveNs[algo] = cur
	}
}
