package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	blogclusters "repro"
	"repro/internal/obs"
	"repro/internal/plan"
)

// HTTPBackend is the remote shard transport: it speaks the JSON API of
// internal/server, so any ordinary blogserved instance can serve as a
// shard. Request contexts propagate the coordinator's deadlines; HTTP
// statuses map back onto the typed error taxonomy (400 →
// ErrInvalidQuery, 409 → ErrOutOfOrderInterval, 422 →
// ErrMalformedInterval, everything transient → ErrUnavailable), so the
// coordinator — and the serving layer above it — handle remote shards
// exactly like in-process ones.
type HTTPBackend struct {
	base   *url.URL
	client *http.Client
}

// NewHTTPBackend wraps the shard server at baseURL (e.g.
// "http://host:8080"). client may be nil for http.DefaultClient-like
// behavior (no client-level timeout; per-request contexts bound every
// call).
func NewHTTPBackend(baseURL string, client *http.Client) (*HTTPBackend, error) {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("shard: parse shard url %q: %w", baseURL, err)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("shard: shard url %q has no host", baseURL)
	}
	if client == nil {
		client = &http.Client{}
	}
	return &HTTPBackend{base: u, client: client}, nil
}

// URL returns the shard's base URL.
func (b *HTTPBackend) URL() string { return b.base.String() }

// do issues one request and decodes the JSON response into out,
// translating error statuses into the sentinel taxonomy.
func (b *HTTPBackend) do(ctx context.Context, method, path string, query url.Values, body any, out any) error {
	u := *b.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	if query != nil {
		u.RawQuery = query.Encode()
	}
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("shard: encode %s body: %w", path, err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), rd)
	if err != nil {
		return fmt.Errorf("shard: build %s request: %w", path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Forward the coordinator-side request id so one query's access-log
	// lines correlate across the coordinator and every shard it touched.
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		// The transport wraps context errors; surface cancellation as
		// itself so ctx-joined callers see their own deadline, and
		// everything else as a transient shard failure.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("shard: %s %s: %v: %w", method, path, err, ErrUnavailable)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("shard: read %s response: %v: %w", path, err, ErrUnavailable)
	}
	if resp.StatusCode != http.StatusOK {
		return statusError(resp.StatusCode, path, raw)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("shard: decode %s response: %v: %w", path, err, ErrUnavailable)
	}
	return nil
}

// statusError maps a non-200 shard response onto the sentinel taxonomy,
// carrying the shard's own error message.
func statusError(status int, path string, raw []byte) error {
	msg := strings.TrimSpace(string(raw))
	var eb struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
		msg = eb.Error
	}
	var sentinel error
	switch status {
	case http.StatusBadRequest:
		sentinel = blogclusters.ErrInvalidQuery
	case http.StatusConflict:
		sentinel = blogclusters.ErrOutOfOrderInterval
	case http.StatusUnprocessableEntity:
		sentinel = blogclusters.ErrMalformedInterval
	default:
		// 404 (wrong server), 429 (shedding), 5xx, 503, 504 — all
		// transient or operational: retryable from the client's seat.
		sentinel = ErrUnavailable
	}
	return fmt.Errorf("shard: %s: %d: %s: %w", path, status, msg, sentinel)
}

func (b *HTTPBackend) Meta(ctx context.Context) (Meta, error) {
	var resp struct {
		Generation int64   `json:"generation"`
		Intervals  int     `json:"intervals"`
		Totals     []int64 `json:"totals"`
	}
	if err := b.do(ctx, http.MethodGet, "/v1/meta", nil, nil, &resp); err != nil {
		return Meta{}, err
	}
	return Meta{Intervals: resp.Intervals, Generation: resp.Generation, Totals: resp.Totals}, nil
}

func (b *HTTPBackend) ClusterSets(ctx context.Context, from, to int) ([][]blogclusters.Cluster, error) {
	q := url.Values{"from": {strconv.Itoa(from)}, "to": {strconv.Itoa(to)}}
	var resp struct {
		Sets [][]blogclusters.Cluster `json:"sets"`
	}
	if err := b.do(ctx, http.MethodGet, "/v1/clusters", q, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Sets, nil
}

func (b *HTTPBackend) ClusterCounts(ctx context.Context, from, to int) ([]int, error) {
	q := url.Values{"from": {strconv.Itoa(from)}, "to": {strconv.Itoa(to)}, "counts": {"1"}}
	var resp struct {
		Counts []int `json:"counts"`
	}
	if err := b.do(ctx, http.MethodGet, "/v1/clusters", q, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Counts, nil
}

func (b *HTTPBackend) Solve(ctx context.Context, spec blogclusters.QuerySpec) (*blogclusters.Result, error) {
	spec = spec.Normalize()
	algo := spec.Algorithm
	if algo == "" {
		algo = "auto"
	}
	q := url.Values{
		"variant":   {spec.Variant},
		"algorithm": {algo},
		"k":         {strconv.Itoa(spec.K)},
	}
	switch spec.Variant {
	case plan.VariantNormalized:
		q.Set("lmin", strconv.Itoa(spec.LMin))
	case plan.VariantDiverse:
		q.Set("l", strconv.Itoa(spec.L))
		q.Set("mode", spec.Mode)
	default:
		q.Set("l", strconv.Itoa(spec.L))
	}
	var resp struct {
		Paths []struct {
			Nodes  []int64 `json:"nodes"`
			Length int     `json:"length"`
			Weight float64 `json:"weight"`
		} `json:"paths"`
		Stats struct {
			NodeReads     int64 `json:"node_reads"`
			NodeWrites    int64 `json:"node_writes"`
			EdgeReads     int64 `json:"edge_reads"`
			HeapConsiders int64 `json:"heap_considers"`
			Pruned        int64 `json:"pruned"`
		} `json:"stats"`
	}
	if err := b.do(ctx, http.MethodGet, "/v1/stable-clusters", q, nil, &resp); err != nil {
		return nil, err
	}
	res := &blogclusters.Result{Paths: make([]blogclusters.Path, len(resp.Paths))}
	for i, p := range resp.Paths {
		res.Paths[i] = blogclusters.Path{Nodes: p.Nodes, Length: p.Length, Weight: p.Weight}
	}
	res.Stats.NodeReads = resp.Stats.NodeReads
	res.Stats.NodeWrites = resp.Stats.NodeWrites
	res.Stats.EdgeReads = resp.Stats.EdgeReads
	res.Stats.HeapConsiders = resp.Stats.HeapConsiders
	res.Stats.Pruned = resp.Stats.Pruned
	return res, nil
}

func (b *HTTPBackend) TimeSeries(ctx context.Context, keyword string) (counts, totals []int64, err error) {
	q := url.Values{"keyword": {keyword}}
	var resp struct {
		Counts []int64 `json:"counts"`
		Totals []int64 `json:"totals"`
	}
	if err := b.do(ctx, http.MethodGet, "/v1/timeseries", q, nil, &resp); err != nil {
		return nil, nil, err
	}
	return resp.Counts, resp.Totals, nil
}

func (b *HTTPBackend) Search(ctx context.Context, terms []string, interval int) ([]int64, error) {
	q := url.Values{
		"terms":    {strings.Join(terms, ",")},
		"interval": {strconv.Itoa(interval)},
	}
	var resp struct {
		IDs []int64 `json:"ids"`
	}
	if err := b.do(ctx, http.MethodGet, "/v1/search", q, nil, &resp); err != nil {
		return nil, err
	}
	if len(resp.IDs) == 0 {
		return nil, nil
	}
	return resp.IDs, nil
}

func (b *HTTPBackend) Refine(ctx context.Context, query string, interval int) ([]string, error) {
	q := url.Values{"query": {query}, "interval": {strconv.Itoa(interval)}}
	var resp struct {
		Keywords []string `json:"keywords"`
	}
	if err := b.do(ctx, http.MethodGet, "/v1/refine", q, nil, &resp); err != nil {
		return nil, err
	}
	if len(resp.Keywords) == 0 {
		return nil, nil
	}
	return resp.Keywords, nil
}

func (b *HTTPBackend) Correlations(ctx context.Context, keyword string, interval, n int) ([]blogclusters.Correlation, error) {
	q := url.Values{
		"keyword":  {keyword},
		"interval": {strconv.Itoa(interval)},
		"n":        {strconv.Itoa(n)},
	}
	var resp struct {
		Correlations []struct {
			Keyword string  `json:"keyword"`
			Rho     float64 `json:"rho"`
			Count   int64   `json:"count"`
		} `json:"correlations"`
	}
	if err := b.do(ctx, http.MethodGet, "/v1/correlations", q, nil, &resp); err != nil {
		return nil, err
	}
	out := make([]blogclusters.Correlation, len(resp.Correlations))
	for i, c := range resp.Correlations {
		out[i] = blogclusters.Correlation{Keyword: c.Keyword, Rho: c.Rho, Count: c.Count}
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

func (b *HTTPBackend) Push(ctx context.Context, iv blogclusters.Interval) (int64, error) {
	type pushDoc struct {
		ID       int64    `json:"id"`
		Keywords []string `json:"keywords"`
	}
	body := struct {
		Interval int       `json:"interval"`
		Label    string    `json:"label"`
		Docs     []pushDoc `json:"docs"`
	}{Interval: iv.Index, Label: iv.Label, Docs: make([]pushDoc, len(iv.Docs))}
	for i, d := range iv.Docs {
		body.Docs[i] = pushDoc{ID: d.ID, Keywords: d.Keywords}
	}
	var resp struct {
		Generation int64 `json:"generation"`
	}
	if err := b.do(ctx, http.MethodPost, "/v1/push", nil, body, &resp); err != nil {
		return 0, err
	}
	return resp.Generation, nil
}

func (b *HTTPBackend) Stats(ctx context.Context) (blogclusters.EngineStats, error) {
	var resp struct {
		Engine *blogclusters.EngineStats `json:"engine"`
	}
	if err := b.do(ctx, http.MethodGet, "/debug/stats", nil, nil, &resp); err != nil {
		return blogclusters.EngineStats{}, err
	}
	if resp.Engine == nil {
		return blogclusters.EngineStats{}, fmt.Errorf("shard: %s has no session attached: %w", b.base.Host, ErrUnavailable)
	}
	return *resp.Engine, nil
}

// Close is a no-op: the remote shard owns its own session.
func (b *HTTPBackend) Close() error { return nil }

// WaitReady polls the shard server's /readyz until it answers 200 or
// ctx expires — the startup handshake for a coordinator fanning out to
// shard servers that are still loading their sub-corpora.
func WaitReady(ctx context.Context, baseURL string, client *http.Client) error {
	b, err := NewHTTPBackend(baseURL, client)
	if err != nil {
		return err
	}
	for {
		err := b.do(ctx, http.MethodGet, "/readyz", nil, nil, nil)
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return fmt.Errorf("shard: %s not ready: %v: %w", b.base.Host, err, cerr)
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return fmt.Errorf("shard: %s not ready: %v: %w", b.base.Host, err, ctx.Err())
		}
	}
}
