package shard

import (
	"context"
	"fmt"

	blogclusters "repro"
	"repro/internal/burst"
)

// gatherSeries fetches one keyword's (counts, totals) from every shard
// and concatenates them in shard order into the global trajectory. Each
// shard's pair is clamped to its partition width, so a racing
// direct-to-shard push cannot skew the global alignment.
func (c *Coordinator) gatherSeries(ctx context.Context, st *coordState, keyword string) (counts, totals []int64, err error) {
	perC := make([][]int64, len(c.backends))
	perT := make([][]int64, len(c.backends))
	err = c.gather(ctx, len(c.backends), func(ctx context.Context, s int) error {
		cs, ts, err := c.backends[s].TimeSeries(ctx, keyword)
		if err != nil {
			return err
		}
		width := st.starts[s+1] - st.starts[s]
		perC[s] = clampSeries(cs, width)
		perT[s] = clampSeries(ts, width)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	counts = make([]int64, 0, st.m)
	totals = make([]int64, 0, st.m)
	for s := range c.backends {
		counts = append(counts, perC[s]...)
		totals = append(totals, perT[s]...)
	}
	return counts, totals, nil
}

// clampSeries trims or zero-pads s to exactly width entries.
func clampSeries(s []int64, width int) []int64 {
	if len(s) == width {
		return s
	}
	out := make([]int64, width)
	copy(out, s)
	return out
}

// TimeSeries returns the keyword's per-interval document frequency over
// the whole sharded corpus (shard series concatenated in interval
// order).
func (c *Coordinator) TimeSeries(ctx context.Context, keyword string) ([]int64, error) {
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	counts, _, err := c.gatherSeries(ctx, c.curState(), keyword)
	return counts, err
}

// DocTotals returns the per-interval document totals across all shards.
func (c *Coordinator) DocTotals(ctx context.Context) ([]int64, error) {
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	st := c.curState()
	perT := make([][]int64, len(c.backends))
	err = c.gather(ctx, len(c.backends), func(ctx context.Context, s int) error {
		m, err := c.backends[s].Meta(ctx)
		if err != nil {
			return err
		}
		perT[s] = clampSeries(m.Totals, st.starts[s+1]-st.starts[s])
		return nil
	})
	if err != nil {
		return nil, err
	}
	totals := make([]int64, 0, st.m)
	for s := range c.backends {
		totals = append(totals, perT[s]...)
	}
	return totals, nil
}

// Bursts returns the keyword's information bursts over the whole
// corpus. Burst detection cannot scatter — the Kleinberg automaton's
// state at interval i depends on the entire prefix, and a burst may
// span a shard boundary — so the coordinator gathers the per-shard
// (counts, totals) pairs, concatenates them, and runs the automaton
// itself: the exact computation the unsharded engine performs.
func (c *Coordinator) Bursts(ctx context.Context, keyword string) ([]blogclusters.KeywordBurst, error) {
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	counts, totals, err := c.gatherSeries(ctx, c.curState(), keyword)
	if err != nil {
		return nil, err
	}
	return burst.Kleinberg(counts, totals, burst.KleinbergOptions{})
}

// route resolves a global interval to (shard, local interval),
// rejecting out-of-range intervals with the same sentinel (and shape)
// the Engine uses.
func (c *Coordinator) route(st *coordState, interval int) (shard, local int, err error) {
	if interval < 0 || interval >= st.m {
		return 0, 0, fmt.Errorf("shard: interval %d outside [0,%d): %w", interval, st.m, blogclusters.ErrInvalidQuery)
	}
	s := shardFor(st.starts, interval)
	return s, interval - st.starts[s], nil
}

// Search returns the ids of interval documents containing every term,
// routed to the single shard owning the interval.
func (c *Coordinator) Search(ctx context.Context, terms []string, interval int) ([]int64, error) {
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	s, local, err := c.route(c.curState(), interval)
	if err != nil {
		return nil, err
	}
	return c.backends[s].Search(ctx, terms, local)
}

// Refine returns the other keywords of the interval cluster containing
// the query keyword, routed to the owning shard.
func (c *Coordinator) Refine(ctx context.Context, query string, interval int) ([]string, error) {
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	s, local, err := c.route(c.curState(), interval)
	if err != nil {
		return nil, err
	}
	return c.backends[s].Refine(ctx, query, local)
}

// Correlations returns the keyword's strongest in-interval
// correlations, routed to the owning shard.
func (c *Coordinator) Correlations(ctx context.Context, keyword string, interval, n int) ([]blogclusters.Correlation, error) {
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	s, local, err := c.route(c.curState(), interval)
	if err != nil {
		return nil, err
	}
	return c.backends[s].Correlations(ctx, keyword, local, n)
}
