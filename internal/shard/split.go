package shard

import (
	"context"
	"fmt"

	blogclusters "repro"
)

// SplitCollection partitions col into n contiguous interval ranges —
// shard s owns global intervals [s*m/n, (s+1)*m/n) — re-stamping each
// interval and its documents to shard-local indices, exactly the
// sub-corpus a standalone shard server would load with -intervals.
// Every shard must receive at least one interval (n ≤ m).
func SplitCollection(col *blogclusters.Collection, n int) ([]*blogclusters.Collection, error) {
	m := len(col.Intervals)
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	if n > m {
		return nil, fmt.Errorf("shard: %d shards over %d intervals leaves an empty shard", n, m)
	}
	out := make([]*blogclusters.Collection, n)
	for s := 0; s < n; s++ {
		lo, hi := s*m/n, (s+1)*m/n
		sub := &blogclusters.Collection{Intervals: make([]blogclusters.Interval, hi-lo)}
		for gi := lo; gi < hi; gi++ {
			iv := col.Intervals[gi]
			liv := blogclusters.Interval{Index: gi - lo, Label: iv.Label}
			liv.Docs = make([]blogclusters.Document, len(iv.Docs))
			for i, d := range iv.Docs {
				d.Interval = gi - lo
				liv.Docs[i] = d
			}
			sub.Intervals[gi-lo] = liv
		}
		out[s] = sub
	}
	return out, nil
}

// SliceCollection extracts global intervals [from, to) of col as a
// standalone collection with local indices — the loader behind a shard
// server's -intervals from:to flag.
func SliceCollection(col *blogclusters.Collection, from, to int) (*blogclusters.Collection, error) {
	m := len(col.Intervals)
	if from < 0 || to > m || from >= to {
		return nil, fmt.Errorf("shard: interval slice [%d,%d) outside [0,%d)", from, to, m)
	}
	sub, err := SplitCollection(&blogclusters.Collection{Intervals: col.Intervals[from:to]}, 1)
	if err != nil {
		return nil, err
	}
	return sub[0], nil
}

// OpenInProcess splits col into shards in-process Engines and fronts
// them with a Coordinator — the single-binary deployment
// (blogserved -shard-count=N). engOpts apply to every shard engine;
// copts.Graph and copts.SolverParallelism should mirror them so merged
// answers are built on the same graph.
func OpenInProcess(ctx context.Context, col *blogclusters.Collection, shards int, copts Options, engOpts ...blogclusters.Option) (*Coordinator, error) {
	subs, err := SplitCollection(col, shards)
	if err != nil {
		return nil, err
	}
	backends := make([]Backend, 0, len(subs))
	fail := func(err error) (*Coordinator, error) {
		for _, b := range backends {
			b.Close()
		}
		return nil, err
	}
	for s, sub := range subs {
		eng, err := blogclusters.Open(ctx, blogclusters.FromCollection(sub), engOpts...)
		if err != nil {
			return fail(fmt.Errorf("shard: open shard %d: %w", s, err))
		}
		backends = append(backends, NewEngineBackend(eng))
	}
	c, err := NewCoordinator(ctx, backends, copts)
	if err != nil {
		return fail(err)
	}
	return c, nil
}
