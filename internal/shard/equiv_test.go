package shard_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http/httptest"
	"testing"

	blogclusters "repro"
	"repro/internal/corpus"
	"repro/internal/server"
	"repro/internal/shard"
)

// The shard subsystem's contract is exact equivalence: a Coordinator
// over any shard count, on either transport, answers every query with
// byte-for-byte the same result as one unsharded Engine over the full
// corpus — before and after a push. These tests check that contract on
// a corpus with events deliberately spanning shard boundaries (the
// paths a naive shard-local solve would miss).

// equivGraph is the one graph every party builds: the reference
// engine, the shard engines and the coordinator's merged/window
// engines must agree on it or node ids and weights drift.
var equivGraph = blogclusters.GraphOptions{Gap: 1, Theta: 0.1}

func equivCollection(t testing.TB, m int) *blogclusters.Collection {
	t.Helper()
	cfg := blogclusters.NewsWeekCorpus(42, 0)
	cfg.NumIntervals = m
	cfg.BackgroundPosts = 120
	cfg.BackgroundVocab = 100
	cfg.WordsPerPost = 6
	all := make([]int, m)
	for i := range all {
		all[i] = i
	}
	cfg.Events = []corpus.Event{
		{Name: "span", Phases: []corpus.Phase{{
			Keywords: []string{"alpha", "beta", "gamma"}, Intervals: all, Posts: 25,
		}}},
		{Name: "drift", Phases: []corpus.Phase{
			{Keywords: []string{"delta", "epsilon"}, Intervals: all[:m/2+1], Posts: 20},
			{Keywords: []string{"epsilon", "zeta"}, Intervals: all[m/2:], Posts: 20},
		}},
	}
	col, err := blogclusters.GenerateCorpus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func engineOpts() []blogclusters.Option {
	return []blogclusters.Option{blogclusters.WithGraphOptions(equivGraph)}
}

func coordOpts() shard.Options {
	return shard.Options{Graph: equivGraph}
}

// newQuietServer is a shard HTTP server with access logs discarded.
func newQuietServer() *server.Server {
	return server.New(server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
}

// openCoordinator builds a coordinator over n shards of col on the
// given transport ("inproc" or "http").
func openCoordinator(t testing.TB, col *blogclusters.Collection, n int, transport string) *shard.Coordinator {
	t.Helper()
	ctx := context.Background()
	if transport == "inproc" {
		c, err := shard.OpenInProcess(ctx, col, n, coordOpts(), engineOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	subs, err := shard.SplitCollection(col, n)
	if err != nil {
		t.Fatal(err)
	}
	backends := make([]shard.Backend, n)
	for s, sub := range subs {
		eng, err := blogclusters.Open(ctx, blogclusters.FromCollection(sub), engineOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		srv := newQuietServer()
		srv.SetEngine(eng)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		b, err := shard.NewHTTPBackend(ts.URL, ts.Client())
		if err != nil {
			t.Fatal(err)
		}
		backends[s] = b
	}
	c, err := shard.NewCoordinator(ctx, backends, coordOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustJSON(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// assertSame fails unless got and want marshal to identical JSON —
// the same byte-identity the HTTP layer would serve.
func assertSame(t *testing.T, what string, got, want any) {
	t.Helper()
	g, w := mustJSON(t, got), mustJSON(t, want)
	if g != w {
		t.Errorf("%s diverged:\n  coordinator: %s\n  engine:      %s", what, g, w)
	}
}

// equivSpecs covers every solve route: scatterable bounded top-k
// (pinned and planner-chosen algorithms), full paths and brute force
// (merged route), and the normalized and diverse variants.
func equivSpecs() []blogclusters.QuerySpec {
	return []blogclusters.QuerySpec{
		{Variant: "topk", K: 5, L: 2},
		{Variant: "topk", K: 3, L: 1, Algorithm: "bfs"},
		{Variant: "topk", K: 5, L: 3, Algorithm: "dfs"},
		{Variant: "topk", K: 6, L: 4, Algorithm: "brute"},
		{Variant: "topk", K: 4, L: -1},
		{Variant: "topk", K: 4, L: -1, Algorithm: "ta"},
		{Variant: "normalized", K: 4, LMin: 2},
		{Variant: "diverse", K: 4, L: 2, Mode: "endpoints"},
		{Variant: "diverse", K: 3, L: 3, Mode: "disjoint"},
	}
}

// checkEquivalence runs the full query surface against both sessions
// and compares rendered answers.
func checkEquivalence(t *testing.T, c *shard.Coordinator, ref *blogclusters.Engine) {
	t.Helper()
	ctx := context.Background()
	m := ref.NumIntervals()

	if got, want := c.Generation(), ref.Generation(); got != want {
		t.Errorf("generation: coordinator %d, engine %d", got, want)
	}
	if got := c.NumIntervals(); got != m {
		t.Errorf("intervals: coordinator %d, engine %d", got, m)
	}

	for _, spec := range equivSpecs() {
		res, err := c.Solve(ctx, spec)
		if err != nil {
			t.Fatalf("coordinator solve %+v: %v", spec, err)
		}
		want, err := ref.Solve(ctx, spec)
		if err != nil {
			t.Fatalf("engine solve %+v: %v", spec, err)
		}
		assertSame(t, "solve "+spec.CacheKey(), res.Paths, want.Paths)
	}

	for _, kw := range []string{"alpha", "epsilon", "zeta"} {
		gc, err := c.TimeSeries(ctx, kw)
		if err != nil {
			t.Fatalf("coordinator timeseries %q: %v", kw, err)
		}
		wc, err := ref.TimeSeries(ctx, kw)
		if err != nil {
			t.Fatalf("engine timeseries %q: %v", kw, err)
		}
		assertSame(t, "timeseries "+kw, gc, wc)

		gb, err := c.Bursts(ctx, kw)
		if err != nil {
			t.Fatalf("coordinator bursts %q: %v", kw, err)
		}
		wb, err := ref.Bursts(ctx, kw)
		if err != nil {
			t.Fatalf("engine bursts %q: %v", kw, err)
		}
		assertSame(t, "bursts "+kw, gb, wb)
	}

	gt, err := c.DocTotals(ctx)
	if err != nil {
		t.Fatalf("coordinator doc totals: %v", err)
	}
	wt, err := ref.DocTotals(ctx)
	if err != nil {
		t.Fatalf("engine doc totals: %v", err)
	}
	assertSame(t, "doc totals", gt, wt)

	for iv := 0; iv < m; iv++ {
		gids, err := c.Search(ctx, []string{"alpha", "beta"}, iv)
		if err != nil {
			t.Fatalf("coordinator search iv=%d: %v", iv, err)
		}
		wids, err := ref.Search(ctx, []string{"alpha", "beta"}, iv)
		if err != nil {
			t.Fatalf("engine search iv=%d: %v", iv, err)
		}
		assertSame(t, "search", gids, wids)

		gkw, err := c.Refine(ctx, "alpha", iv)
		if err != nil {
			t.Fatalf("coordinator refine iv=%d: %v", iv, err)
		}
		wkw, err := ref.Refine(ctx, "alpha", iv)
		if err != nil {
			t.Fatalf("engine refine iv=%d: %v", iv, err)
		}
		assertSame(t, "refine", gkw, wkw)

		gco, err := c.Correlations(ctx, "alpha", iv, 5)
		if err != nil {
			t.Fatalf("coordinator correlations iv=%d: %v", iv, err)
		}
		wco, err := ref.Correlations(ctx, "alpha", iv, 5)
		if err != nil {
			t.Fatalf("engine correlations iv=%d: %v", iv, err)
		}
		assertSame(t, "correlations", gco, wco)
	}

	gsets, err := c.ClusterSets(ctx, 0, m)
	if err != nil {
		t.Fatalf("coordinator cluster sets: %v", err)
	}
	wsets, err := ref.ClusterSets(ctx, 0, m)
	if err != nil {
		t.Fatalf("engine cluster sets: %v", err)
	}
	assertSame(t, "cluster sets", gsets, wsets)

	// Describe the reference engine's best full paths through both
	// sessions: global node ids must resolve to the same clusters.
	res, err := ref.Solve(ctx, blogclusters.QuerySpec{Variant: "topk", K: 3, L: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Paths {
		gd, err := c.Describe(ctx, p)
		if err != nil {
			t.Fatalf("coordinator describe %v: %v", p.Nodes, err)
		}
		wd, err := ref.Describe(ctx, p)
		if err != nil {
			t.Fatalf("engine describe %v: %v", p.Nodes, err)
		}
		if gd != wd {
			t.Errorf("describe %v diverged:\n  coordinator: %q\n  engine:      %q", p.Nodes, gd, wd)
		}
	}
}

// pushInterval builds the next interval (global index m) with docs
// that extend the cross-boundary events.
func pushInterval(m int) blogclusters.Interval {
	iv := blogclusters.Interval{Index: m, Label: "pushed"}
	for i := 0; i < 30; i++ {
		kws := []string{"alpha", "beta", "gamma"}
		if i%2 == 0 {
			kws = []string{"epsilon", "zeta"}
		}
		iv.Docs = append(iv.Docs, blogclusters.Document{
			ID: int64(900000 + i), Interval: m, Keywords: kws,
		})
	}
	return iv
}

func TestCoordinatorMatchesEngine(t *testing.T) {
	const m = 7
	col := equivCollection(t, m)
	ctx := context.Background()

	ref, err := blogclusters.Open(ctx, blogclusters.FromCollection(col), engineOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ref.Close() })
	// Drive the reference through the same pre/post-push states the
	// coordinators will see.
	pushed := false
	ensurePushed := func(t *testing.T) {
		if pushed {
			return
		}
		if _, err := ref.Push(ctx, pushInterval(m)); err != nil {
			t.Fatal(err)
		}
		pushed = true
	}

	for _, transport := range []string{"inproc", "http"} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", transport, shards), func(t *testing.T) {
				if pushed {
					t.Fatal("test ordering bug: pushes must come after all pre-push subtests")
				}
				c := openCoordinator(t, col, shards, transport)
				checkEquivalence(t, c, ref)
			})
		}
	}

	// Push through the coordinator and re-check: the composite
	// generation must advance in lockstep with the unsharded engine's
	// and every answer must track the grown corpus.
	for _, transport := range []string{"inproc", "http"} {
		t.Run(transport+"/push", func(t *testing.T) {
			c := openCoordinator(t, col, 2, transport)
			preGen := c.Generation()
			gen, err := c.Push(ctx, pushInterval(m))
			if err != nil {
				t.Fatal(err)
			}
			if gen != preGen+1 {
				t.Errorf("push generation: got %d, want %d", gen, preGen+1)
			}
			ensurePushed(t)
			checkEquivalence(t, c, ref)
		})
	}
}

// TestConcurrentPushAndQuery hammers the coordinator with the full
// query surface while pushes land, under -race: every answer must be
// internally consistent (a query sees one generation's partition, not
// a torn mix), and after the dust settles the coordinator must still
// match a reference engine that took the same pushes.
func TestConcurrentPushAndQuery(t *testing.T) {
	const m = 6
	const pushes = 3
	col := equivCollection(t, m)
	ctx := context.Background()

	for _, transport := range []string{"inproc", "http"} {
		t.Run(transport, func(t *testing.T) {
			c := openCoordinator(t, col, 2, transport)
			stop := make(chan struct{})
			done := make(chan struct{})
			var qerr error
			go func() {
				defer close(done)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := c.Solve(ctx, blogclusters.QuerySpec{Variant: "topk", K: 3, L: 2}); err != nil {
						qerr = err
						return
					}
					if _, err := c.TimeSeries(ctx, "alpha"); err != nil {
						qerr = err
						return
					}
					if _, err := c.Search(ctx, []string{"alpha"}, i%m); err != nil {
						qerr = err
						return
					}
				}
			}()
			for p := 0; p < pushes; p++ {
				if _, err := c.Push(ctx, pushInterval(m+p)); err != nil {
					t.Fatalf("push %d: %v", p, err)
				}
			}
			close(stop)
			<-done
			if qerr != nil {
				t.Fatalf("concurrent query failed: %v", qerr)
			}
			if got := c.Generation(); got != 1+pushes {
				t.Errorf("generation %d after %d pushes, want %d", got, pushes, 1+pushes)
			}

			ref, err := blogclusters.Open(ctx, blogclusters.FromCollection(col), engineOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { ref.Close() })
			for p := 0; p < pushes; p++ {
				if _, err := ref.Push(ctx, pushInterval(m+p)); err != nil {
					t.Fatal(err)
				}
			}
			checkEquivalence(t, c, ref)
		})
	}
}

// TestCoordinatorStats checks the aggregate and per-shard stats views.
func TestCoordinatorStats(t *testing.T) {
	col := equivCollection(t, 6)
	c := openCoordinator(t, col, 3, "inproc")
	ctx := context.Background()
	if _, err := c.Solve(ctx, blogclusters.QuerySpec{Variant: "topk", K: 3, L: 2}); err != nil {
		t.Fatal(err)
	}

	rows := c.ShardStats()
	if len(rows) != 3 {
		t.Fatalf("got %d shard rows, want 3", len(rows))
	}
	total := 0
	for s, row := range rows {
		if row.Shard != s {
			t.Errorf("row %d has shard index %d", s, row.Shard)
		}
		if row.Error != "" || row.Engine == nil {
			t.Errorf("shard %d stats unavailable: %q", s, row.Error)
		}
		if row.Start != total {
			t.Errorf("shard %d starts at %d, want %d", s, row.Start, total)
		}
		total += row.Intervals
	}
	if total != 6 {
		t.Errorf("partition covers %d intervals, want 6", total)
	}

	agg := c.Stats()
	if agg.Generation != c.Generation() {
		t.Errorf("aggregate generation %d, want %d", agg.Generation, c.Generation())
	}
	if agg.Intervals != 6 {
		t.Errorf("aggregate intervals %d, want 6", agg.Intervals)
	}
	if agg.Queries == 0 {
		t.Error("aggregate queries is 0 after a scatter solve")
	}
}
