// Package shard scales the serving layer past one machine: a
// Coordinator owns N Engine shards partitioned by contiguous interval
// ranges and answers the whole Engine query surface by scatter-gather —
// route each query to the shards whose ranges overlap it, gather the
// partial results concurrently, merge them into exactly what a single
// unsharded Engine over the full corpus would have returned.
//
// Partition map. Shard s owns the contiguous global intervals
// [starts[s], starts[s+1]); every shard holds its sub-corpus with
// interval indexes rebased to 0, so a shard is an ordinary Engine (or
// an ordinary blogserved instance) that knows nothing about sharding.
// The coordinator translates global↔local interval indexes at the
// boundary, and node ids by offset: cluster-graph node ids are assigned
// sequentially interval by interval, so a shard-local node id maps to
// the global id by adding the cumulative cluster count of all earlier
// intervals.
//
// Merge rules:
//
//   - Interval-scoped queries (Search, Refine, Correlations) route to
//     the single owning shard with the interval rebased.
//   - TimeSeries and per-interval doc totals concatenate in shard
//     order. Bursts cannot concatenate (the Kleinberg automaton is
//     global over the trajectory), so the coordinator gathers counts
//     and totals and runs the automaton itself.
//   - Bounded-length top-k (variant topk, 0 < l < m-1) scatters: each
//     wide-enough shard solves locally, and for each shard boundary b
//     the coordinator solves the window [b-l, b+l) of gathered cluster
//     sets — any path of temporal length l that crosses b lies inside
//     that window, so shard-local top-k plus per-boundary window top-k
//     together contain the exact global top-k. Partials merge through
//     one topk.K with deterministic duplicate handling.
//   - Everything else (normalized, diverse, full paths, TA) is not
//     decomposable — the answer depends on global state — so the
//     coordinator assembles a merged engine from the gathered cluster
//     sets (canonical per interval, hence identical to the unsharded
//     engine's) and answers on it. Correct for every variant, at the
//     cost of gathering all sets once per generation.
//   - Push routes to the last shard (the next global interval is
//     always in its range) and bumps the composite generation.
//
// Generations compose as sum(shard generations) - N + 1: 1 at open,
// +1 per push — indistinguishable from a single Engine's generation,
// so the serving layer's g<gen>| response-cache keys and invalidation
// carry over unchanged.
//
// Failure policy: fail closed. Any shard error fails the whole query —
// a merge missing one shard's contribution would be a silently wrong
// answer, not a degraded one. Transient shard failures surface as
// ErrUnavailable so the serving layer maps them to 503 (retryable),
// while shard-side validation sentinels pass through unchanged.
//
// Two transports implement Backend: EngineBackend wraps an in-process
// Engine (N shards in one binary), and HTTPBackend speaks the JSON API
// of internal/server (a coordinator blogserved fanning out to ordinary
// shard blogserveds), propagating deadlines via the request context and
// mapping HTTP statuses back onto the typed error taxonomy.
package shard

import (
	"context"
	"errors"
	"fmt"

	blogclusters "repro"
)

// ErrUnavailable marks transient fan-out failures: a shard that cannot
// be reached, is shedding load, or answered with a server-side error.
// The serving layer maps it to 503 + Retry-After; the query may succeed
// on retry without any client-side change.
var ErrUnavailable = errors.New("shard: shard unavailable")

// Meta is a shard's self-description: how many intervals it owns, its
// ingest generation, and its per-interval document totals (the burst
// denominators, gathered so the coordinator can run the global burst
// automaton).
type Meta struct {
	Intervals  int
	Generation int64
	Totals     []int64
}

// Backend is one shard as the coordinator sees it: the Engine query
// surface in shard-local interval coordinates. Implementations must be
// safe for concurrent use.
type Backend interface {
	// Meta describes the shard's current state.
	Meta(ctx context.Context) (Meta, error)
	// ClusterSets returns the cluster sets of local intervals [from, to).
	ClusterSets(ctx context.Context, from, to int) ([][]blogclusters.Cluster, error)
	// ClusterCounts returns the per-interval cluster counts of local
	// intervals [from, to) — enough to build node-id offset maps without
	// shipping the keyword sets.
	ClusterCounts(ctx context.Context, from, to int) ([]int, error)
	// Solve answers a stable-cluster query over the shard's sub-graph.
	Solve(ctx context.Context, spec blogclusters.QuerySpec) (*blogclusters.Result, error)
	// TimeSeries returns the keyword's per-interval document frequency
	// alongside the matching per-interval totals (trimmed to the same
	// width, so burst inputs always line up).
	TimeSeries(ctx context.Context, keyword string) (counts, totals []int64, err error)
	// Search returns the ids of local-interval documents containing
	// every term.
	Search(ctx context.Context, terms []string, interval int) ([]int64, error)
	// Refine returns the other keywords of the cluster containing the
	// query keyword in the local interval.
	Refine(ctx context.Context, query string, interval int) ([]string, error)
	// Correlations returns the keyword's strongest correlations in the
	// local interval.
	Correlations(ctx context.Context, keyword string, interval, n int) ([]blogclusters.Correlation, error)
	// Push appends the next local interval and returns the shard's new
	// generation.
	Push(ctx context.Context, iv blogclusters.Interval) (int64, error)
	// Stats snapshots the shard's EngineStats.
	Stats(ctx context.Context) (blogclusters.EngineStats, error)
	// Close releases whatever the backend owns (the wrapped Engine for
	// in-process shards; nothing for remote ones).
	Close() error
}

// EngineBackend adapts an in-process Engine to the Backend interface.
// The wrapped Engine must have been opened over the shard's
// sub-collection (see SplitCollection) with the same options as every
// other shard. Close closes the Engine.
type EngineBackend struct {
	eng *blogclusters.Engine
}

// NewEngineBackend wraps eng; the backend owns it from here on.
func NewEngineBackend(eng *blogclusters.Engine) *EngineBackend {
	return &EngineBackend{eng: eng}
}

// Engine returns the wrapped Engine (tests reach through for direct
// comparisons).
func (b *EngineBackend) Engine() *blogclusters.Engine { return b.eng }

func (b *EngineBackend) Meta(ctx context.Context) (Meta, error) {
	totals, err := b.eng.DocTotals(ctx)
	if err != nil {
		return Meta{}, err
	}
	return Meta{
		Intervals:  b.eng.NumIntervals(),
		Generation: b.eng.Generation(),
		Totals:     totals,
	}, nil
}

func (b *EngineBackend) ClusterSets(ctx context.Context, from, to int) ([][]blogclusters.Cluster, error) {
	return b.eng.ClusterSets(ctx, from, to)
}

func (b *EngineBackend) ClusterCounts(ctx context.Context, from, to int) ([]int, error) {
	sets, err := b.eng.ClusterSets(ctx, from, to)
	if err != nil {
		return nil, err
	}
	counts := make([]int, len(sets))
	for i, cs := range sets {
		counts[i] = len(cs)
	}
	return counts, nil
}

func (b *EngineBackend) Solve(ctx context.Context, spec blogclusters.QuerySpec) (*blogclusters.Result, error) {
	return b.eng.Solve(ctx, spec)
}

func (b *EngineBackend) TimeSeries(ctx context.Context, keyword string) (counts, totals []int64, err error) {
	counts, err = b.eng.TimeSeries(ctx, keyword)
	if err != nil {
		return nil, nil, err
	}
	totals, err = b.eng.DocTotals(ctx)
	if err != nil {
		return nil, nil, err
	}
	// The index store outlives the snapshot the totals came from; a
	// concurrent push can make counts one longer. Trim so they line up.
	if len(counts) > len(totals) {
		counts = counts[:len(totals)]
	}
	return counts, totals, nil
}

func (b *EngineBackend) Search(ctx context.Context, terms []string, interval int) ([]int64, error) {
	if err := b.checkInterval(interval); err != nil {
		return nil, err
	}
	return b.eng.Search(ctx, terms, interval)
}

// checkInterval rejects out-of-range intervals the way the serving
// layer does for Search (the index itself treats them as empty).
func (b *EngineBackend) checkInterval(interval int) error {
	if n := b.eng.NumIntervals(); interval < 0 || interval >= n {
		return fmt.Errorf("shard: interval %d outside [0,%d): %w", interval, n, blogclusters.ErrInvalidQuery)
	}
	return nil
}

func (b *EngineBackend) Refine(ctx context.Context, query string, interval int) ([]string, error) {
	return b.eng.Refine(ctx, query, interval)
}

func (b *EngineBackend) Correlations(ctx context.Context, keyword string, interval, n int) ([]blogclusters.Correlation, error) {
	return b.eng.Correlations(ctx, keyword, interval, n)
}

func (b *EngineBackend) Push(ctx context.Context, iv blogclusters.Interval) (int64, error) {
	return b.eng.Push(ctx, iv)
}

func (b *EngineBackend) Stats(ctx context.Context) (blogclusters.EngineStats, error) {
	return b.eng.Stats(), nil
}

func (b *EngineBackend) Close() error { return b.eng.Close() }
