package shard_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	blogclusters "repro"
	"repro/internal/shard"
)

// TestPushValidation checks the coordinator applies the single-engine
// sequencing rules itself, with the same sentinels.
func TestPushValidation(t *testing.T) {
	col := equivCollection(t, 4)
	c := openCoordinator(t, col, 2, "inproc")
	ctx := context.Background()

	_, err := c.Push(ctx, blogclusters.Interval{Index: 9, Label: "skip"})
	if !errors.Is(err, blogclusters.ErrOutOfOrderInterval) {
		t.Errorf("out-of-order push: got %v, want ErrOutOfOrderInterval", err)
	}

	bad := blogclusters.Interval{Index: 4, Label: "bad docs"}
	bad.Docs = []blogclusters.Document{{ID: 1, Interval: 2, Keywords: []string{"alpha"}}}
	_, err = c.Push(ctx, bad)
	if !errors.Is(err, blogclusters.ErrMalformedInterval) {
		t.Errorf("doc claiming wrong interval: got %v, want ErrMalformedInterval", err)
	}

	if got := c.Generation(); got != 1 {
		t.Errorf("generation moved to %d on rejected pushes", got)
	}
}

// TestQueryValidation checks routed and ranged queries reject bad
// intervals with ErrInvalidQuery, like the Engine.
func TestQueryValidation(t *testing.T) {
	col := equivCollection(t, 4)
	c := openCoordinator(t, col, 2, "inproc")
	ctx := context.Background()

	if _, err := c.Search(ctx, []string{"alpha"}, -1); !errors.Is(err, blogclusters.ErrInvalidQuery) {
		t.Errorf("search interval -1: got %v, want ErrInvalidQuery", err)
	}
	if _, err := c.Refine(ctx, "alpha", 4); !errors.Is(err, blogclusters.ErrInvalidQuery) {
		t.Errorf("refine interval 4: got %v, want ErrInvalidQuery", err)
	}
	if _, err := c.Correlations(ctx, "alpha", 99, 5); !errors.Is(err, blogclusters.ErrInvalidQuery) {
		t.Errorf("correlations interval 99: got %v, want ErrInvalidQuery", err)
	}
	if _, err := c.ClusterSets(ctx, 2, 1); !errors.Is(err, blogclusters.ErrInvalidQuery) {
		t.Errorf("cluster sets [2,1): got %v, want ErrInvalidQuery", err)
	}
	if _, err := c.Solve(ctx, blogclusters.QuerySpec{Variant: "topk", K: 0, L: 2}); !errors.Is(err, blogclusters.ErrInvalidQuery) {
		t.Errorf("solve k=0: got %v, want ErrInvalidQuery", err)
	}
}

// TestClosedCoordinator checks queries after Close fail with
// ErrEngineClosed, like a closed Engine.
func TestClosedCoordinator(t *testing.T) {
	col := equivCollection(t, 4)
	c := openCoordinator(t, col, 2, "inproc")
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TimeSeries(context.Background(), "alpha"); !errors.Is(err, blogclusters.ErrEngineClosed) {
		t.Errorf("query after close: got %v, want ErrEngineClosed", err)
	}
}

// TestFailClosed kills one of two HTTP shards and checks every fan-out
// query fails with ErrUnavailable instead of serving a truncated
// answer, while single-shard routes to the live shard still work.
func TestFailClosed(t *testing.T) {
	col := equivCollection(t, 4)
	subs, err := shard.SplitCollection(col, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	backends := make([]shard.Backend, 2)
	var servers [2]*httptest.Server
	for s, sub := range subs {
		eng, err := blogclusters.Open(ctx, blogclusters.FromCollection(sub), engineOpts()...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		srv := newQuietServer()
		srv.SetEngine(eng)
		servers[s] = httptest.NewServer(srv.Handler())
		t.Cleanup(servers[s].Close)
		if backends[s], err = shard.NewHTTPBackend(servers[s].URL, servers[s].Client()); err != nil {
			t.Fatal(err)
		}
	}
	c, err := shard.NewCoordinator(ctx, backends, coordOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	servers[1].Close() // shard 1 goes dark

	if _, err := c.TimeSeries(ctx, "alpha"); !errors.Is(err, shard.ErrUnavailable) {
		t.Errorf("timeseries with dead shard: got %v, want ErrUnavailable", err)
	}
	if _, err := c.Solve(ctx, blogclusters.QuerySpec{Variant: "topk", K: 3, L: 2}); !errors.Is(err, shard.ErrUnavailable) {
		t.Errorf("solve with dead shard: got %v, want ErrUnavailable", err)
	}
	// Interval 0 lives on the live shard: routed queries still answer.
	if _, err := c.Search(ctx, []string{"alpha"}, 0); err != nil {
		t.Errorf("search on live shard: %v", err)
	}
	// Interval 2 lives on the dead shard.
	if _, err := c.Search(ctx, []string{"alpha"}, 2); !errors.Is(err, shard.ErrUnavailable) {
		t.Errorf("search on dead shard: got %v, want ErrUnavailable", err)
	}
}

// TestHTTPStatusMapping checks the remote transport folds shard
// response statuses back into the typed error taxonomy.
func TestHTTPStatusMapping(t *testing.T) {
	cases := []struct {
		status int
		want   error
	}{
		{http.StatusBadRequest, blogclusters.ErrInvalidQuery},
		{http.StatusConflict, blogclusters.ErrOutOfOrderInterval},
		{http.StatusUnprocessableEntity, blogclusters.ErrMalformedInterval},
		{http.StatusNotFound, shard.ErrUnavailable},
		{http.StatusTooManyRequests, shard.ErrUnavailable},
		{http.StatusInternalServerError, shard.ErrUnavailable},
		{http.StatusServiceUnavailable, shard.ErrUnavailable},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprint(tc.status), func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(tc.status)
				fmt.Fprintf(w, `{"error":"synthetic %d"}`, tc.status)
			}))
			defer ts.Close()
			b, err := shard.NewHTTPBackend(ts.URL, ts.Client())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := b.Meta(context.Background()); !errors.Is(err, tc.want) {
				t.Errorf("status %d: got %v, want %v", tc.status, err, tc.want)
			}
		})
	}
}

// TestSplitValidation checks the partitioning rejects empty shards.
func TestSplitValidation(t *testing.T) {
	col := equivCollection(t, 3)
	if _, err := shard.SplitCollection(col, 4); err == nil {
		t.Error("4 shards over 3 intervals did not fail")
	}
	if _, err := shard.SplitCollection(col, 0); err == nil {
		t.Error("0 shards did not fail")
	}
	if _, err := shard.SliceCollection(col, 2, 1); err == nil {
		t.Error("inverted slice did not fail")
	}
	if _, err := shard.SliceCollection(col, 0, 4); err == nil {
		t.Error("overlong slice did not fail")
	}
}
