package shard

import (
	"context"
	"sync"
)

// cell is a single-flight memo: the first caller fills, concurrent
// callers wait, later callers hit. Errors are not cached — a failed
// fill (a shard briefly unreachable, a canceled request) leaves the
// cell empty so the next caller retries. Waiters honor their own
// context, so one slow fill cannot pin an unrelated request past its
// deadline.
type cell[T any] struct {
	mu      sync.Mutex
	ok      bool
	val     T
	filling chan struct{} // non-nil while a fill is in flight
}

func (c *cell[T]) get(ctx context.Context, fill func() (T, error)) (T, error) {
	for {
		c.mu.Lock()
		if c.ok {
			v := c.val
			c.mu.Unlock()
			return v, nil
		}
		if c.filling == nil {
			ch := make(chan struct{})
			c.filling = ch
			c.mu.Unlock()
			v, err := fill()
			c.mu.Lock()
			c.filling = nil
			if err == nil {
				c.ok, c.val = true, v
			}
			c.mu.Unlock()
			close(ch)
			return v, err
		}
		ch := c.filling
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			var zero T
			return zero, ctx.Err()
		}
	}
}

// cached returns the value without filling.
func (c *cell[T]) cached() (T, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.val, c.ok
}
