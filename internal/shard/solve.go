package shard

import (
	"context"
	"fmt"
	"sync"

	blogclusters "repro"
	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/topk"
)

// coordState is the per-composite-generation cache state: the node-id
// offset map, the merged engine and the boundary-window engines. A push
// retires the state (curState builds a successor); retired states stay
// alive until Close because in-flight queries may still hold them.
type coordState struct {
	gen    int64
	starts []int
	m      int

	// bases caches the global node-id offsets: bases[i] is the number
	// of cluster nodes in global intervals [0, i), so a node that is
	// local to a sub-graph starting at interval i maps to the global id
	// by adding bases[i]. len(bases) == m+1.
	bases cell[[]int]
	// merged caches the whole-corpus engine assembled from the gathered
	// cluster sets — the fallback route for every query shape that is
	// not decomposable.
	merged cell[*blogclusters.Engine]
	// windows caches per-boundary-window engines, keyed [lo, hi).
	winMu   sync.Mutex
	windows map[[2]int]*cell[*blogclusters.Engine]
}

// engines returns every engine this state has materialized, for Close.
func (st *coordState) engines() []*blogclusters.Engine {
	var out []*blogclusters.Engine
	if eng, ok := st.merged.cached(); ok {
		out = append(out, eng)
	}
	st.winMu.Lock()
	for _, ce := range st.windows {
		if eng, ok := ce.cached(); ok {
			out = append(out, eng)
		}
	}
	st.winMu.Unlock()
	return out
}

// curState returns the cache state of the current composite generation,
// building (and retiring the predecessor) when a push moved it.
func (c *Coordinator) curState() *coordState {
	gen, starts, m := c.snap()
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	if c.state != nil && c.state.gen == gen {
		return c.state
	}
	st := &coordState{gen: gen, starts: starts, m: m, windows: map[[2]int]*cell[*blogclusters.Engine]{}}
	if c.state != nil {
		c.retired = append(c.retired, c.state)
	}
	c.state = st
	return st
}

// nodeBases fills (once per generation) the prefix cluster counts that
// translate sub-graph node ids to global ones.
func (c *Coordinator) nodeBases(ctx context.Context, st *coordState) ([]int, error) {
	return st.bases.get(ctx, func() ([]int, error) {
		perShard := make([][]int, len(c.backends))
		err := c.gather(ctx, len(c.backends), func(ctx context.Context, s int) error {
			width := st.starts[s+1] - st.starts[s]
			counts, err := c.backends[s].ClusterCounts(ctx, 0, width)
			if err != nil {
				return err
			}
			if len(counts) < width {
				return fmt.Errorf("shard: shard %d returned %d cluster counts, want %d: %w", s, len(counts), width, ErrUnavailable)
			}
			perShard[s] = counts[:width]
			return nil
		})
		if err != nil {
			return nil, err
		}
		bases := make([]int, st.m+1)
		i := 0
		for _, counts := range perShard {
			for _, n := range counts {
				bases[i+1] = bases[i] + n
				i++
			}
		}
		return bases, nil
	})
}

// gatherSets fetches the cluster sets of global intervals [lo, hi) from
// the owning shards concurrently. Each cluster's Interval is re-stamped
// to stampBase+position (pass lo for global coordinates, 0 for a
// window-local engine); within-interval IDs are already canonical.
func (c *Coordinator) gatherSets(ctx context.Context, st *coordState, lo, hi, stampBase int) ([][]blogclusters.Cluster, error) {
	type span struct{ shard, from, to, off int } // off: global interval of from
	var spans []span
	for s := range c.backends {
		a, b := st.starts[s], st.starts[s+1]
		f, t := max(lo, a), min(hi, b)
		if f < t {
			spans = append(spans, span{s, f - a, t - a, f})
		}
	}
	out := make([][]blogclusters.Cluster, hi-lo)
	err := c.gather(ctx, len(spans), func(ctx context.Context, i int) error {
		sp := spans[i]
		sets, err := c.backends[sp.shard].ClusterSets(ctx, sp.from, sp.to)
		if err != nil {
			return err
		}
		if len(sets) != sp.to-sp.from {
			return fmt.Errorf("shard: shard %d returned %d cluster sets for [%d,%d): %w", sp.shard, len(sets), sp.from, sp.to, ErrUnavailable)
		}
		for j, cs := range sets {
			gi := sp.off + j
			restamped := make([]blogclusters.Cluster, len(cs))
			for k, cl := range cs {
				cl.Interval = stampBase + (gi - lo)
				restamped[k] = cl
			}
			out[gi-lo] = restamped
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// openSetsEngine opens a cluster-set engine with the coordinator's
// session options — the same graph the shards (and the unsharded
// reference engine) build, so node ids and weights line up exactly.
func (c *Coordinator) openSetsEngine(sets [][]blogclusters.Cluster) (*blogclusters.Engine, error) {
	opts := []blogclusters.Option{
		blogclusters.WithGraphOptions(c.opts.Graph),
		blogclusters.WithSolverParallelism(c.opts.SolverParallelism),
	}
	if c.opts.PlanMode != "" {
		opts = append(opts, blogclusters.WithPlanMode(c.opts.PlanMode))
	}
	return blogclusters.Open(context.Background(), blogclusters.FromClusterSets(sets), opts...)
}

// mergedEngine fills (once per generation) the whole-corpus engine.
func (c *Coordinator) mergedEngine(ctx context.Context, st *coordState) (*blogclusters.Engine, error) {
	return st.merged.get(ctx, func() (*blogclusters.Engine, error) {
		sets, err := c.gatherSets(ctx, st, 0, st.m, 0)
		if err != nil {
			return nil, err
		}
		return c.openSetsEngine(sets)
	})
}

// windowEngine fills (once per generation and window) the engine over
// global intervals [lo, hi), with intervals rebased to window-local.
func (c *Coordinator) windowEngine(ctx context.Context, st *coordState, lo, hi int) (*blogclusters.Engine, error) {
	st.winMu.Lock()
	ce, ok := st.windows[[2]int{lo, hi}]
	if !ok {
		ce = &cell[*blogclusters.Engine]{}
		st.windows[[2]int{lo, hi}] = ce
	}
	st.winMu.Unlock()
	return ce.get(ctx, func() (*blogclusters.Engine, error) {
		sets, err := c.gatherSets(ctx, st, lo, hi, 0)
		if err != nil {
			return nil, err
		}
		return c.openSetsEngine(sets)
	})
}

// scatterable reports whether the query decomposes into shard-local
// solves plus boundary windows: bounded-length top-k only. Full paths
// (L == m-1 or -1) span every shard; normalized and diverse variants
// rank against global state; TA requires l = m-1 of whatever graph it
// runs on, which no boundary window satisfies.
func scatterable(spec blogclusters.QuerySpec, m int) bool {
	if spec.Variant != plan.VariantTopK {
		return false
	}
	if spec.L <= 0 || spec.L >= m-1 {
		return false
	}
	if spec.Algorithm != "" {
		info, ok := core.Lookup(spec.Algorithm)
		if !ok || info.FullPathsOnly {
			return false
		}
	}
	return true
}

// boundaryWindows returns the coalesced scatter windows for temporal
// length l: for each shard boundary b the window [max(0,b-l),
// min(m,b+l)) — every path of length l crossing b lies inside it —
// with overlapping windows merged so shared intervals are gathered and
// solved once.
func boundaryWindows(starts []int, m, l int) [][2]int {
	var out [][2]int
	for s := 1; s < len(starts)-1; s++ {
		b := starts[s]
		lo, hi := max(0, b-l), min(m, b+l)
		if n := len(out); n > 0 && lo <= out[n-1][1] {
			if hi > out[n-1][1] {
				out[n-1][1] = hi
			}
			continue
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// addStats folds one partial solve's work counters into the aggregate.
func addStats(dst *core.Stats, src core.Stats) {
	dst.NodeReads += src.NodeReads
	dst.NodeWrites += src.NodeWrites
	dst.EdgeReads += src.EdgeReads
	dst.HeapConsiders += src.HeapConsiders
	dst.Pruned += src.Pruned
	dst.Repushes += src.Repushes
	dst.RandomSeeks += src.RandomSeeks
	dst.PeakStatePaths += src.PeakStatePaths
}

// Solve answers a stable-cluster query over the sharded corpus,
// returning exactly what one unsharded Engine over the full corpus
// would. Bounded-length top-k scatters (shard-local solves plus
// boundary-window solves, merged through one deterministic top-k heap);
// everything else runs on the merged engine. With a single backend the
// whole query forwards verbatim — the shard is the corpus.
func (c *Coordinator) Solve(ctx context.Context, spec blogclusters.QuerySpec) (*blogclusters.Result, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	if len(c.backends) == 1 {
		c.metrics.solves.With("forward").Inc()
		return c.backends[0].Solve(ctx, spec)
	}
	st := c.curState()
	if scatterable(spec, st.m) {
		c.metrics.solves.With("scatter").Inc()
		return c.scatterSolve(ctx, st, spec)
	}
	c.metrics.solves.With("merged").Inc()
	eng, err := c.mergedEngine(ctx, st)
	if err != nil {
		return nil, err
	}
	return eng.Solve(ctx, spec)
}

// scatterSolve runs the decomposed top-k: every shard wide enough to
// hold a length-l path solves its own sub-graph, every boundary window
// is solved on a window engine, and the partials — remapped to global
// node ids by offset — merge through one topk.K. Exactness: a length-l
// path either lies within one shard (found by that shard's solve) or
// crosses a boundary b, in which case its intervals lie inside
// [b-l, b+l) and the window solve finds it. Work counters sum across
// partials.
func (c *Coordinator) scatterSolve(ctx context.Context, st *coordState, spec blogclusters.QuerySpec) (*blogclusters.Result, error) {
	l := spec.L
	bases, err := c.nodeBases(ctx, st)
	if err != nil {
		return nil, err
	}
	var locals []int
	for s := range c.backends {
		if st.starts[s+1]-st.starts[s] > l {
			locals = append(locals, s)
		}
	}
	wins := boundaryWindows(st.starts, st.m, l)

	n := len(locals) + len(wins)
	c.metrics.fanout.Observe(float64(n))
	c.metrics.partials.With("local").Add(float64(len(locals)))
	c.metrics.partials.With("window").Add(float64(len(wins)))
	partials := make([]*blogclusters.Result, n)
	offsets := make([]int64, n)
	err = c.gather(ctx, n, func(ctx context.Context, i int) error {
		var res *blogclusters.Result
		var err error
		if i < len(locals) {
			s := locals[i]
			res, err = c.backends[s].Solve(ctx, spec)
			offsets[i] = int64(bases[st.starts[s]])
		} else {
			w := wins[i-len(locals)]
			var eng *blogclusters.Engine
			eng, err = c.windowEngine(ctx, st, w[0], w[1])
			if err == nil {
				res, err = eng.Solve(ctx, spec)
			}
			offsets[i] = int64(bases[w[0]])
		}
		if err != nil {
			return err
		}
		partials[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Merge in deterministic order. Duplicates (a window path also found
	// by a shard) collapse by node-sequence identity inside Consider.
	best := topk.NewK(spec.K)
	var stats core.Stats
	for i, res := range partials {
		addStats(&stats, res.Stats)
		for _, p := range res.Paths {
			nodes := make([]int64, len(p.Nodes))
			for j, id := range p.Nodes {
				nodes[j] = id + offsets[i]
			}
			best.Consider(topk.Path{Nodes: nodes, Length: p.Length, Weight: p.Weight})
		}
	}
	return &blogclusters.Result{Paths: best.Items(), Stats: stats}, nil
}

// Describe renders a stable-cluster path (global node ids) with its
// keyword clusters, resolving through the merged engine's graph — the
// same graph, node for node, as the unsharded session's.
func (c *Coordinator) Describe(ctx context.Context, p blogclusters.Path) (string, error) {
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return "", err
	}
	defer cancel()
	eng, err := c.mergedEngine(ctx, c.curState())
	if err != nil {
		return "", err
	}
	return eng.Describe(ctx, p)
}

// ClusterSets returns the cluster sets of global intervals [from, to),
// gathered from the owning shards and re-stamped to global interval
// coordinates.
func (c *Coordinator) ClusterSets(ctx context.Context, from, to int) ([][]blogclusters.Cluster, error) {
	ctx, cancel, err := c.queryCtx(ctx)
	if err != nil {
		return nil, err
	}
	defer cancel()
	st := c.curState()
	if from < 0 || to < from || to > st.m {
		return nil, fmt.Errorf("shard: interval range [%d,%d) outside [0,%d]: %w", from, to, st.m, blogclusters.ErrInvalidQuery)
	}
	return c.gatherSets(ctx, st, from, to, from)
}
