package shard

import (
	"context"
	"io"
	"strconv"
	"time"

	blogclusters "repro"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// coordMetrics is the coordinator's own registry. The serving layer
// appends it to the server exposition (see internal/server's
// metricsAppender), so every family here is prefixed coordinator_ or
// shard_ to keep the merged output collision-free. Per-hop series are
// live (recorded by the instrumented backend wrappers); per-shard
// state gauges are mirrored from ShardStats at scrape time.
type coordMetrics struct {
	reg *metrics.Registry

	// Live, per backend hop.
	hopDur  *metrics.Vec // coordinator_shard_gather_duration_seconds{shard,method}
	hopErrs *metrics.Vec // coordinator_backend_errors_total{shard,method}

	// Live, per Solve.
	solves   *metrics.Vec    // coordinator_solves_total{route}
	partials *metrics.Vec    // coordinator_scatter_partials_total{kind}
	fanout   *metrics.Series // coordinator_fanout_width

	// Scrape-time mirrors of ShardStats.
	shardGen         *metrics.Vec // shard_generation{shard}
	shardIntervals   *metrics.Vec // shard_intervals{shard}
	shardQueries     *metrics.Vec // shard_queries_total{shard}
	shardPushes      *metrics.Vec // shard_pushes_total{shard}
	shardUnreachable *metrics.Vec // shard_unreachable{shard}
}

// fanoutBuckets covers realistic scatter widths: a handful of shards
// plus their boundary windows.
var fanoutBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}

func newCoordMetrics() *coordMetrics {
	reg := metrics.NewRegistry()
	m := &coordMetrics{reg: reg}
	m.hopDur = reg.Histogram("coordinator_shard_gather_duration_seconds",
		"Latency of one backend hop during a gather, by shard and method.",
		nil, "shard", "method")
	m.hopErrs = reg.Counter("coordinator_backend_errors_total",
		"Failed backend hops, by shard and method.", "shard", "method")
	m.solves = reg.Counter("coordinator_solves_total",
		"Coordinator Solve calls, by route (forward: single backend; scatter: decomposed top-k; merged: whole-corpus engine).", "route")
	m.partials = reg.Counter("coordinator_scatter_partials_total",
		"Partial solves issued by scatterSolve, by kind (local: one shard's sub-graph; window: a boundary-window engine).", "kind")
	m.fanout = reg.Histogram("coordinator_fanout_width",
		"Concurrent partial solves per scattered query (shard-local plus boundary-window).",
		fanoutBuckets).With()
	m.shardGen = reg.Gauge("shard_generation",
		"Per-shard ingest generation.", "shard")
	m.shardIntervals = reg.Gauge("shard_intervals",
		"Per-shard corpus width in intervals.", "shard")
	m.shardQueries = reg.Counter("shard_queries_total",
		"Per-shard Engine query calls (mirrored from the shard's stats).", "shard")
	m.shardPushes = reg.Counter("shard_pushes_total",
		"Per-shard successful pushes (mirrored from the shard's stats).", "shard")
	m.shardUnreachable = reg.Gauge("shard_unreachable",
		"1 when the shard's stats could not be fetched on the last scrape.", "shard")
	return m
}

// WriteMetrics renders the coordinator registry after refreshing the
// per-shard gauges from a best-effort ShardStats fan-out. The serving
// layer calls this from /metrics after its own registry; shard rows
// that do not answer within the stats timeout expose
// shard_unreachable=1 instead of stale numbers.
func (c *Coordinator) WriteMetrics(w io.Writer) (int64, error) {
	for _, ss := range c.ShardStats() {
		label := strconv.Itoa(ss.Shard)
		c.metrics.shardIntervals.With(label).Set(float64(ss.Intervals))
		if ss.Error != "" || ss.Engine == nil {
			c.metrics.shardUnreachable.With(label).Set(1)
			continue
		}
		c.metrics.shardUnreachable.With(label).Set(0)
		c.metrics.shardGen.With(label).Set(float64(ss.Generation))
		c.metrics.shardQueries.With(label).Set(float64(ss.Engine.Queries))
		c.metrics.shardPushes.With(label).Set(float64(ss.Engine.Pushes))
	}
	return c.metrics.reg.WriteTo(w)
}

// metered decorates a Backend with per-hop accounting: every call
// observes the per-shard latency histogram, failed calls bump the
// error counter, and — when the request context carries a ?trace=1
// span recorder — the hop is recorded as a "shard<N>.<method>" span.
// The wrapper is applied inside NewCoordinator, so even the initial
// Meta handshake is measured.
type metered struct {
	b     Backend
	m     *coordMetrics
	shard string // label value, the shard index
	span  string // "shard<N>.", the span-name prefix
}

func (c *Coordinator) meter(s int, b Backend) Backend {
	label := strconv.Itoa(s)
	return &metered{b: b, m: c.metrics, shard: label, span: "shard" + label + "."}
}

// hop wraps one backend call with the full accounting.
func (mb *metered) hop(ctx context.Context, method string, call func() error) error {
	start := time.Now()
	err := call()
	mb.m.hopDur.With(mb.shard, method).Observe(time.Since(start).Seconds())
	if err != nil {
		mb.m.hopErrs.With(mb.shard, method).Inc()
	}
	obs.RecorderFrom(ctx).Record(mb.span+method, start, err)
	return err
}

func (mb *metered) Meta(ctx context.Context) (Meta, error) {
	var out Meta
	err := mb.hop(ctx, "meta", func() (err error) {
		out, err = mb.b.Meta(ctx)
		return err
	})
	return out, err
}

func (mb *metered) ClusterSets(ctx context.Context, from, to int) ([][]blogclusters.Cluster, error) {
	var out [][]blogclusters.Cluster
	err := mb.hop(ctx, "cluster-sets", func() (err error) {
		out, err = mb.b.ClusterSets(ctx, from, to)
		return err
	})
	return out, err
}

func (mb *metered) ClusterCounts(ctx context.Context, from, to int) ([]int, error) {
	var out []int
	err := mb.hop(ctx, "cluster-counts", func() (err error) {
		out, err = mb.b.ClusterCounts(ctx, from, to)
		return err
	})
	return out, err
}

func (mb *metered) Solve(ctx context.Context, spec blogclusters.QuerySpec) (*blogclusters.Result, error) {
	var out *blogclusters.Result
	err := mb.hop(ctx, "solve", func() (err error) {
		out, err = mb.b.Solve(ctx, spec)
		return err
	})
	return out, err
}

func (mb *metered) TimeSeries(ctx context.Context, keyword string) (counts, totals []int64, err error) {
	err = mb.hop(ctx, "timeseries", func() (err error) {
		counts, totals, err = mb.b.TimeSeries(ctx, keyword)
		return err
	})
	return counts, totals, err
}

func (mb *metered) Search(ctx context.Context, terms []string, interval int) ([]int64, error) {
	var out []int64
	err := mb.hop(ctx, "search", func() (err error) {
		out, err = mb.b.Search(ctx, terms, interval)
		return err
	})
	return out, err
}

func (mb *metered) Refine(ctx context.Context, query string, interval int) ([]string, error) {
	var out []string
	err := mb.hop(ctx, "refine", func() (err error) {
		out, err = mb.b.Refine(ctx, query, interval)
		return err
	})
	return out, err
}

func (mb *metered) Correlations(ctx context.Context, keyword string, interval, n int) ([]blogclusters.Correlation, error) {
	var out []blogclusters.Correlation
	err := mb.hop(ctx, "correlations", func() (err error) {
		out, err = mb.b.Correlations(ctx, keyword, interval, n)
		return err
	})
	return out, err
}

func (mb *metered) Push(ctx context.Context, iv blogclusters.Interval) (int64, error) {
	var out int64
	err := mb.hop(ctx, "push", func() (err error) {
		out, err = mb.b.Push(ctx, iv)
		return err
	})
	return out, err
}

func (mb *metered) Stats(ctx context.Context) (blogclusters.EngineStats, error) {
	var out blogclusters.EngineStats
	err := mb.hop(ctx, "stats", func() (err error) {
		out, err = mb.b.Stats(ctx)
		return err
	})
	return out, err
}

func (mb *metered) Close() error { return mb.b.Close() }
