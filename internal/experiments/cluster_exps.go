package experiments

import (
	"fmt"
	"time"

	"repro/internal/bicc"
	"repro/internal/cooccur"
	"repro/internal/corpus"
	"repro/internal/diskstore"
	"repro/internal/stats"
)

// dayCorpus generates a two-day corpus dense enough that the keyword
// graph dwarfs the vertex count, as in the paper's Table 1 (2.9M
// keywords, 138M edges for one day of BlogScope). The synthetic stand-in
// is laptop-sized; the shape (edges >> keywords) is what matters.
func dayCorpus(scale Scale, seed int64) (*corpus.Collection, error) {
	posts := scale.nodes(4000)
	return corpus.Generate(corpus.GeneratorConfig{
		Seed:            seed,
		NumIntervals:    2,
		BackgroundPosts: posts,
		BackgroundVocab: scale.nodes(6000),
		WordsPerPost:    12,
		Events: []corpus.Event{
			{Name: "e1", Phases: []corpus.Phase{{
				Keywords:  []string{"stem", "cell", "amniot", "fluid", "research"},
				Intervals: []int{0}, Posts: posts / 20,
			}}},
			{Name: "e2", Phases: []corpus.Phase{{
				Keywords:  []string{"somalia", "mogadishu", "airstrik"},
				Intervals: []int{0, 1}, Posts: posts / 25,
			}}},
		},
	})
}

// buildOptions translates the experiment configuration into the
// keyword-graph pipeline knobs.
func buildOptions(cfg Config) cooccur.BuildOptions {
	return cooccur.BuildOptions{Parallelism: cfg.Parallelism, MemBudget: cfg.MemBudget}
}

// Table1 reproduces Table 1: keyword-graph sizes for two consecutive
// days (keywords, edges, plus the bytes the triplet file would occupy).
func Table1(cfg Config) (*Table, error) {
	col, err := dayCorpus(cfg.Scale, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table1",
		Title:  "keyword graph sizes per day (paper: Jan 6/7 2007, 2.9M keywords, 138M edges)",
		Header: []string{"day", "posts", "keywords", "edges", "triplet bytes"},
		Notes:  "synthetic corpus at laptop scale; expect edges >> keywords, stable across days",
	}
	for day := 0; day < 2; day++ {
		g, err := cooccur.BuildCtx(cfg.Context(), col, day, day, buildOptions(cfg))
		if err != nil {
			return nil, err
		}
		var bytes int64
		for _, e := range g.Edges {
			bytes += int64(len(g.Keywords[e.U]) + len(g.Keywords[e.V]) + 12)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("day %d", day),
			itoa(len(col.Intervals[day].Docs)),
			itoa(g.NumVertices()),
			itoa(g.NumEdges()),
			i64toa(bytes),
		})
	}
	return t, nil
}

// Fig6 reproduces Figure 6: running time of the full cluster-generation
// procedure (read, χ² test, ρ pruning, Art algorithm) as the ρ pruning
// threshold increases. Time must fall sharply with ρ.
func Fig6(cfg Config) (*Table, error) {
	col, err := dayCorpus(cfg.Scale, 2)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig6",
		Title:  "cluster generation time vs ρ threshold (secondary-storage Art algorithm, Section 3)",
		Header: []string{"rho", "edges after prune", "clusters", "store reads", "seconds"},
		Notes:  "paper shape: time decreases drastically as ρ increases (fewer edges/vertices survive pruning)",
	}
	// The raw keyword graph is built and annotated once; the paper's
	// ρ-dependent cost is the pruning plus the secondary-storage Art
	// run over what survives.
	g, err := cooccur.BuildCtx(cfg.Context(), col, 0, 0, buildOptions(cfg))
	if err != nil {
		return nil, err
	}
	g.AnnotateStats()
	for _, rho := range []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9} {
		start := time.Now()
		pruned := g.Prune(stats.ChiSquared95, rho)
		st, err := diskstore.Open()
		if err != nil {
			return nil, err
		}
		adj := pruned.Adjacency()
		for u := range adj {
			if err := st.Put(int64(u), bicc.EncodeAdjacency(adj[u])); err != nil {
				st.Close()
				return nil, err
			}
		}
		dec, err := bicc.DecomposeStore(st, pruned.NumVertices())
		if err != nil {
			st.Close()
			return nil, err
		}
		clusters := dec.Clusters(2)
		reads := st.Stats().RandomReads
		st.Close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", rho),
			itoa(pruned.NumEdges()),
			itoa(len(clusters)),
			i64toa(reads),
			fmtDur(time.Since(start)),
		})
	}
	return t, nil
}

// Qualitative reproduces the Section 5.3 study: the news-week corpus,
// per-day clusters for the figures' events, and the counts the paper
// reports (1100–1500 clusters per day at BlogScope scale; proportional
// here).
func Qualitative(cfg Config) (*Table, error) {
	sets, err := weekSets(cfg, 2007)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "qualitative",
		Title:  "Section 5.3 qualitative week (events per figure; see examples/newsweek for full paths)",
		Header: []string{"day", "clusters", "figure event found"},
		Notes:  "paper: 1100-1500 clusters/day, 42 full-week paths at BlogScope scale",
	}
	probe := map[int]string{0: "liverpool", 2: "stem", 3: "iphon", 5: "cisco", 6: "beckham"}
	for day, clusters := range sets {
		found := "-"
		if kw, ok := probe[day]; ok {
			found = fmt.Sprintf("%s: no", kw)
			for _, c := range clusters {
				if c.Contains(kw) {
					found = fmt.Sprintf("%s: yes (cluster of %d keywords)", kw, c.Size())
				}
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("Jan %d", day+6), itoa(len(clusters)), found})
	}
	return t, nil
}
