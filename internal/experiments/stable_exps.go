package experiments

import (
	"context"
	"errors"
	"time"

	"repro/internal/clustergraph"
	"repro/internal/core"
	"repro/internal/synth"
)

// timeBFS runs BFS and reports the duration.
func timeBFS(g *clustergraph.Graph, k, l int) (time.Duration, *core.Result, error) {
	start := time.Now()
	res, err := core.Solve(context.Background(), g, core.Request{Algorithm: "bfs", K: k, L: l, Parallelism: 1})
	return time.Since(start), res, err
}

func timeDFS(g *clustergraph.Graph, k, l int) (time.Duration, *core.Result, error) {
	start := time.Now()
	res, err := core.Solve(context.Background(), g, core.Request{Algorithm: "dfs", K: k, L: l, Parallelism: 1})
	return time.Since(start), res, err
}

func timeTA(g *clustergraph.Graph, k int, maxSeeks int64) (time.Duration, *core.Result, error) {
	start := time.Now()
	res, err := core.Solve(context.Background(), g, core.Request{Algorithm: "ta", K: k, L: core.FullPaths, MaxSeeks: maxSeeks, Parallelism: 1})
	return time.Since(start), res, err
}

// Table3 reproduces Table 3: BFS vs DFS vs TA wall-clock for top-5 full
// paths, n=400, g=0, d=5, m ∈ {3,6,9,12,15}. TA is capped by a seek
// budget beyond which the paper itself gave up (">10 hours" at m=12).
func Table3(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "BFS vs DFS vs TA, top-5 full paths (n=400, g=0, d=5)",
		Header: []string{"m", "BFS s", "DFS s", "TA s"},
		Notes:  "paper shape: BFS << DFS; TA competitive at m=3, explodes by m=9, infeasible at m=12+",
	}
	n := scale.nodes(400)
	for _, m := range []int{3, 6, 9, 12, 15} {
		g, err := synth.Generate(synth.Config{Seed: 10 + int64(m), M: m, N: n, D: 5, G: 0})
		if err != nil {
			return nil, err
		}
		bfsT, _, err := timeBFS(g, 5, core.FullPaths)
		if err != nil {
			return nil, err
		}
		dfsT, _, err := timeDFS(g, 5, core.FullPaths)
		if err != nil {
			return nil, err
		}
		taCell := "n/a"
		if m <= 9 {
			taT, _, err := timeTA(g, 5, 50_000_000)
			switch {
			case errors.Is(err, core.ErrSeekBudget):
				taCell = "> budget"
			case err != nil:
				return nil, err
			default:
				taCell = fmtDur(taT)
			}
		} else {
			taCell = "> budget (paper: >10h)"
		}
		t.Rows = append(t.Rows, []string{itoa(m), fmtDur(bfsT), fmtDur(dfsT), taCell})
	}
	return t, nil
}

// Fig7 reproduces Figure 7: BFS, top-5 full paths, g ∈ {0,1,2},
// m = 5..25, n = 1000, d = 5.
func Fig7(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "BFS full paths vs gap g (n=1000, d=5)",
		Header: []string{"m", "g=0 s", "g=1 s", "g=2 s"},
		Notes:  "paper shape: times grow with m; larger g costs more, but the effect is milder than for DFS",
	}
	n := scale.nodes(1000)
	for _, m := range []int{5, 10, 15, 20, 25} {
		row := []string{itoa(m)}
		for _, g := range []int{0, 1, 2} {
			cg, err := synth.Generate(synth.Config{Seed: int64(100*m + g), M: m, N: n, D: 5, G: g})
			if err != nil {
				return nil, err
			}
			d, _, err := timeBFS(cg, 5, core.FullPaths)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig8 reproduces Figure 8: BFS, top-5 full paths, d ∈ {3,5,7},
// m = 5..25, n = 1000, g = 2.
func Fig8(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "BFS full paths vs out-degree d (n=1000, g=2)",
		Header: []string{"m", "d=3 s", "d=5 s", "d=7 s"},
		Notes:  "paper shape: running time positively correlated with d",
	}
	n := scale.nodes(1000)
	for _, m := range []int{5, 10, 15, 20, 25} {
		row := []string{itoa(m)}
		for _, d := range []int{3, 5, 7} {
			cg, err := synth.Generate(synth.Config{Seed: int64(200*m + d), M: m, N: n, D: d, G: 2})
			if err != nil {
				return nil, err
			}
			dur, _, err := timeBFS(cg, 5, core.FullPaths)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(dur))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig9 reproduces Figure 9: BFS scalability in n (2000..14000) for
// m ∈ {25, 50}, d = 5, g = 1. Expect linear growth in n.
func Fig9(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "BFS scalability in nodes per interval (d=5, g=1)",
		Header: []string{"n", "m=25 s", "m=50 s"},
		Notes:  "paper shape: running time linear in n",
	}
	for _, n := range []int{2000, 5000, 8000, 11000, 14000} {
		row := []string{itoa(scale.nodes(n))}
		for _, m := range []int{25, 50} {
			cg, err := synth.Generate(synth.Config{Seed: int64(n + m), M: m, N: scale.nodes(n), D: 5, G: 1})
			if err != nil {
				return nil, err
			}
			dur, _, err := timeBFS(cg, 5, core.FullPaths)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(dur))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig10 reproduces Figure 10: BFS seeking top-5 subpaths of length l
// over m = 15 intervals, n = 500..2500, d = 5, g = 2.
func Fig10(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "BFS subpaths of length l (m=15, d=5, g=2)",
		Header: []string{"n", "l=4 s", "l=8 s", "l=12 s"},
		Notes:  "paper shape: time grows with l (more heaps per node) and linearly with n",
	}
	for _, n := range []int{500, 1000, 1500, 2000, 2500} {
		row := []string{itoa(scale.nodes(n))}
		for _, l := range []int{4, 8, 12} {
			cg, err := synth.Generate(synth.Config{Seed: int64(10*n + l), M: 15, N: scale.nodes(n), D: 5, G: 2})
			if err != nil {
				return nil, err
			}
			dur, _, err := timeBFS(cg, 5, l)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(dur))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig11 reproduces Figure 11: DFS, top-5 full paths for varying m and
// n; g = 1, d = 5.
func Fig11(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "DFS full paths (g=1, d=5)",
		Header: []string{"n", "m=3 s", "m=6 s", "m=9 s"},
		Notes:  "paper shape: DFS grows much faster than BFS in both m and n",
	}
	for _, n := range []int{100, 200, 400} {
		row := []string{itoa(scale.nodes(n))}
		for _, m := range []int{3, 6, 9} {
			cg, err := synth.Generate(synth.Config{Seed: int64(20*n + m), M: m, N: scale.nodes(n), D: 5, G: 1})
			if err != nil {
				return nil, err
			}
			dur, _, err := timeDFS(cg, 5, core.FullPaths)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(dur))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig12 reproduces Figure 12: DFS, top-5 full paths vs gap g as the
// average out-degree grows; m = 6, n = 400.
func Fig12(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "fig12",
		Title:  "DFS full paths vs gap and out-degree (m=6, n=400)",
		Header: []string{"d", "g=0 s", "g=1 s", "g=2 s"},
		Notes:  "paper shape: DFS more sensitive to g than BFS — time more than doubles from g=0 to g=2",
	}
	n := scale.nodes(400)
	for _, d := range []int{2, 4, 6, 8} {
		row := []string{itoa(d)}
		for _, g := range []int{0, 1, 2} {
			cg, err := synth.Generate(synth.Config{Seed: int64(30*d + g), M: 6, N: n, D: d, G: g})
			if err != nil {
				return nil, err
			}
			dur, _, err := timeDFS(cg, 5, core.FullPaths)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(dur))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13 reproduces Figure 13: DFS seeking top-5 subpaths of length l;
// m = 6, d = 5, g = 1.
func Fig13(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "DFS subpaths of length l (m=6, d=5, g=1)",
		Header: []string{"n", "l=2 s", "l=3 s", "l=4 s"},
		Notes:  "paper shape: time grows with l and with n",
	}
	for _, n := range []int{100, 200, 300} {
		row := []string{itoa(scale.nodes(n))}
		for _, l := range []int{2, 3, 4} {
			cg, err := synth.Generate(synth.Config{Seed: int64(40*n + l), M: 6, N: scale.nodes(n), D: 5, G: 1})
			if err != nil {
				return nil, err
			}
			dur, _, err := timeDFS(cg, 5, l)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(dur))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig14 reproduces Figure 14: BFS-based normalized stable clusters,
// top-5 with length >= lmin; n = 400, d = 3, g = 0, m = 6..14.
func Fig14(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "normalized stable clusters vs lmin (n=400, d=3, g=0, top-scoring bestpaths)",
		Header: []string{"m", "lmin=2 s", "lmin=3 s", "lmin=4 s"},
		Notes:  "paper shape: time grows with m (all path lengths maintained) and with lmin; bestpaths bounded to the top-scoring candidates per node (BeamWidth), the reading that keeps the paper's m=14 sweep feasible",
	}
	n := scale.nodes(400)
	for _, m := range []int{6, 8, 10, 12, 14} {
		row := []string{itoa(m)}
		for _, lmin := range []int{2, 3, 4} {
			cg, err := synth.Generate(synth.Config{Seed: int64(50*m + lmin), M: m, N: n, D: 3, G: 0})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := core.Solve(context.Background(), cg, core.Request{Algorithm: "normalized", K: 5, LMin: lmin, BeamWidth: 5, Parallelism: 1}); err != nil {
				return nil, err
			}
			row = append(row, fmtDur(time.Since(start)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// KSensitivity reproduces the Section 5.2 claim that k barely affects
// running time.
func KSensitivity(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "ksens",
		Title:  "impact of k on running time (m=9, n=400, d=5, g=1)",
		Header: []string{"k", "BFS s", "DFS s"},
		Notes:  "paper shape: minimal impact; times increase slowly with k",
	}
	n := scale.nodes(400)
	cg, err := synth.Generate(synth.Config{Seed: 60, M: 9, N: n, D: 5, G: 1})
	if err != nil {
		return nil, err
	}
	for _, k := range []int{1, 5, 10, 25} {
		bfsT, _, err := timeBFS(cg, k, core.FullPaths)
		if err != nil {
			return nil, err
		}
		dfsT, _, err := timeDFS(cg, k, core.FullPaths)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{itoa(k), fmtDur(bfsT), fmtDur(dfsT)})
	}
	return t, nil
}

// Memory reproduces the Section 5.2 memory comparison: "for finding
// top-3 paths of length 6 on a dataset with n=2000, m=9 and g=0, DFS
// required less than 2MB RAM as compared to 35MB for BFS". The proxy
// is the peak number of paths held in live per-node state, plus an
// approximate byte figure.
func Memory(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "memory",
		Title:  "peak in-memory state, BFS vs DFS (top-3, l=6, n=2000, m=9, g=0)",
		Header: []string{"algorithm", "peak paths", "approx bytes", "seconds"},
		Notes:  "paper: DFS < 2MB vs BFS 35MB — expect an order-of-magnitude gap in DFS's favour",
	}
	n := scale.nodes(2000)
	cg, err := synth.Generate(synth.Config{Seed: 61, M: 9, N: n, D: 5, G: 0})
	if err != nil {
		return nil, err
	}
	const pathBytes = 96 // nodes slice + header + weight/length, rough
	bfsT, bfsRes, err := timeBFS(cg, 3, 6)
	if err != nil {
		return nil, err
	}
	dfsT, dfsRes, err := timeDFS(cg, 3, 6)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"BFS", i64toa(bfsRes.Stats.PeakStatePaths),
		i64toa(bfsRes.Stats.PeakStatePaths * pathBytes), fmtDur(bfsT),
	})
	t.Rows = append(t.Rows, []string{
		"DFS", i64toa(dfsRes.Stats.PeakStatePaths),
		i64toa(dfsRes.Stats.PeakStatePaths * pathBytes), fmtDur(dfsT),
	})
	return t, nil
}
