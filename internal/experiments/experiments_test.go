package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string, scale Scale) *Table {
	t.Helper()
	tbl, err := Run(id, scale)
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	if tbl.ID != id {
		t.Errorf("table ID = %q, want %q", tbl.ID, id)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Errorf("%s row %d has %d cells, header has %d", id, i, len(row), len(tbl.Header))
		}
	}
	if r := tbl.Render(); !strings.Contains(r, tbl.Header[0]) {
		t.Errorf("%s Render missing header", id)
	}
	return tbl
}

func cellInt(t *testing.T, tbl *Table, row, col int) int {
	t.Helper()
	v, err := strconv.Atoi(tbl.Rows[row][col])
	if err != nil {
		t.Fatalf("%s cell (%d,%d) = %q not an int", tbl.ID, row, col, tbl.Rows[row][col])
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tbl := runExp(t, "table1", 0.05)
	if len(tbl.Rows) != 2 {
		t.Fatalf("table1 rows = %d, want 2", len(tbl.Rows))
	}
	for day := 0; day < 2; day++ {
		keywords := cellInt(t, tbl, day, 2)
		edges := cellInt(t, tbl, day, 3)
		if edges <= keywords {
			t.Errorf("day %d: edges (%d) not >> keywords (%d); the paper's shape requires a dense graph", day, edges, keywords)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	tbl := runExp(t, "fig6", 0.05)
	// Edges after pruning must be non-increasing in rho, and the
	// secondary-storage reads must fall accordingly.
	for i := 1; i < len(tbl.Rows); i++ {
		if cellInt(t, tbl, i, 1) > cellInt(t, tbl, i-1, 1) {
			t.Errorf("fig6: edges increased from rho %s to %s", tbl.Rows[i-1][0], tbl.Rows[i][0])
		}
		if cellInt(t, tbl, i, 3) > cellInt(t, tbl, i-1, 3) {
			t.Errorf("fig6: store reads increased from rho %s to %s", tbl.Rows[i-1][0], tbl.Rows[i][0])
		}
	}
}

func TestQualitativeShape(t *testing.T) {
	tbl := runExp(t, "qualitative", 0.2)
	if len(tbl.Rows) != 7 {
		t.Fatalf("qualitative rows = %d, want 7", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if strings.Contains(row[2], ": no") {
			t.Errorf("day %s: probe event not found in clusters (%s)", row[0], row[2])
		}
	}
}

func TestMemoryShape(t *testing.T) {
	tbl := runExp(t, "memory", 0.05)
	bfsPeak := cellInt(t, tbl, 0, 1)
	dfsPeak := cellInt(t, tbl, 1, 1)
	if dfsPeak >= bfsPeak {
		t.Errorf("memory: DFS peak (%d) not below BFS peak (%d); paper claims an order-of-magnitude gap", dfsPeak, bfsPeak)
	}
}

func TestKSensitivityRuns(t *testing.T) {
	runExp(t, "ksens", 0.05)
}

func TestFig12Runs(t *testing.T) {
	tbl := runExp(t, "fig12", 0.1)
	if len(tbl.Rows) != 4 {
		t.Fatalf("fig12 rows = %d, want 4", len(tbl.Rows))
	}
}

// TestTimingSweepsTinyScale exercises the timing sweeps at the floor
// scale so the table plumbing is covered; the real measurements run via
// cmd/experiments. Table 3 and Figure 14 are excluded: the TA column
// and the normalized smallpaths are exponential in m regardless of n.
func TestClusterGraphShape(t *testing.T) {
	tbl := runExp(t, "clustergraph", 0.05)
	if len(tbl.Rows) != 4 {
		t.Fatalf("clustergraph rows = %d, want 4 (quadratic/simjoin × seq/parallel)", len(tbl.Rows))
	}
	// All four variants must report the identical graph.
	nodes, edges := cellInt(t, tbl, 0, 2), cellInt(t, tbl, 0, 3)
	for i := 1; i < len(tbl.Rows); i++ {
		if cellInt(t, tbl, i, 2) != nodes || cellInt(t, tbl, i, 3) != edges {
			t.Errorf("row %d graph (%s/%s nodes/edges) differs from row 0 (%d/%d)",
				i, tbl.Rows[i][2], tbl.Rows[i][3], nodes, edges)
		}
	}
}

func TestTimingSweepsTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweeps skipped in short mode")
	}
	for _, id := range []string{"fig7", "fig8", "fig9", "fig10", "fig11", "fig13"} {
		runExp(t, id, 0.01)
	}
}

func TestDiskIndexShape(t *testing.T) {
	tbl := runExp(t, "diskindex", 0.02)
	if len(tbl.Rows) != 2 {
		t.Fatalf("diskindex rows = %d, want 2 (mem + disk)", len(tbl.Rows))
	}
	if tbl.Rows[0][0] != "mem" || tbl.Rows[1][0] != "disk" {
		t.Errorf("backends = %q, %q; want mem, disk", tbl.Rows[0][0], tbl.Rows[1][0])
	}
	// The disk row must report measurable I/O; the mem row must not.
	if tbl.Rows[0][4] != "-" {
		t.Errorf("mem rand_reads = %q, want -", tbl.Rows[0][4])
	}
	if v := cellInt(t, tbl, 1, 4); v <= 0 {
		t.Errorf("disk rand_reads = %d, want > 0", v)
	}
	restricted, err := RunConfig("diskindex", Config{Scale: 0.02, IndexBackend: "disk", IndexMemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(restricted.Rows) != 1 || restricted.Rows[0][0] != "disk" {
		t.Errorf("restricted run rows = %v, want one disk row", restricted.Rows)
	}
	if _, err := RunConfig("diskindex", Config{Scale: 0.02, IndexBackend: "bogus"}); err == nil {
		t.Error("bogus backend accepted")
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != 16 {
		t.Errorf("registry has %d experiments, want 16: %v", len(ids), ids)
	}
	if _, err := Run("nope", 0.5); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := Run("table1", 0); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Run("table1", 1.5); err == nil {
		t.Error("scale > 1 accepted")
	}
}

func TestScaleNodes(t *testing.T) {
	if got := Scale(0.5).nodes(1000); got != 500 {
		t.Errorf("Scale(0.5).nodes(1000) = %d, want 500", got)
	}
	if got := Scale(0.001).nodes(1000); got != 10 {
		t.Errorf("tiny scale floor = %d, want 10", got)
	}
}
