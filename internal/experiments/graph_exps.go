package experiments

import (
	"time"

	"repro/internal/bicc"
	"repro/internal/cluster"
	"repro/internal/clustergraph"
	"repro/internal/cooccur"
	"repro/internal/corpus"
	"repro/internal/stats"
)

// weekSets runs the Section 3 pipeline over every day of the news-week
// corpus and returns the per-interval cluster sets that feed Section 4.
func weekSets(cfg Config, seed int64) ([][]cluster.Cluster, error) {
	col, err := corpus.Generate(corpus.NewsWeek(seed, cfg.Scale.nodes(600)))
	if err != nil {
		return nil, err
	}
	sets := make([][]cluster.Cluster, len(col.Intervals))
	for day := range col.Intervals {
		g, err := cooccur.Build(col, day, day, buildOptions(cfg))
		if err != nil {
			return nil, err
		}
		g.AnnotateStats()
		pruned := g.Prune(stats.ChiSquared95, stats.DefaultRhoThreshold)
		bg := bicc.NewGraph(pruned.NumVertices())
		for _, e := range pruned.Edges {
			bg.AddEdge(e.U, e.V)
		}
		for _, comp := range bicc.Decompose(bg).Clusters(2) {
			kws := make([]string, len(comp))
			for i, v := range comp {
				kws[i] = pruned.Keywords[v]
			}
			sets[day] = append(sets[day], cluster.New(int64(len(sets[day])), day, kws))
		}
	}
	return sets, nil
}

// ClusterGraph measures Section 4.1 cluster-graph construction over the
// news week: the quadratic pair loop against the prefix-filter
// similarity join, each sequential and sharded across cfg workers. All
// four variants build the identical graph (the equivalence tests assert
// it); this table records what that interchangeability costs.
func ClusterGraph(cfg Config) (*Table, error) {
	sets, err := weekSets(cfg, 2007)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "clustergraph",
		Title:  "cluster-graph construction: quadratic vs prefix-filter simjoin, sequential vs sharded (Section 4.1)",
		Header: []string{"variant", "workers", "nodes", "edges", "seconds"},
		Notes:  "identical graphs by construction; simjoin interns the token vocabulary once per run",
	}
	variants := []struct {
		name string
		opts clustergraph.FromClustersOptions
	}{
		{"quadratic", clustergraph.FromClustersOptions{Gap: 1, Theta: 0.1, Parallelism: 1}},
		{"quadratic", clustergraph.FromClustersOptions{Gap: 1, Theta: 0.1, Parallelism: cfg.Parallelism}},
		{"simjoin", clustergraph.FromClustersOptions{Gap: 1, Theta: 0.1, UseSimJoin: true, Parallelism: 1}},
		{"simjoin", clustergraph.FromClustersOptions{Gap: 1, Theta: 0.1, UseSimJoin: true, Parallelism: cfg.Parallelism}},
	}
	for _, v := range variants {
		workers := v.opts.Parallelism
		if workers <= 0 {
			workers = cfg.Workers()
		}
		start := time.Now()
		g, err := clustergraph.FromClusters(sets, v.opts)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			itoa(workers),
			itoa(g.NumNodes()),
			itoa(g.NumEdges()),
			fmtDur(time.Since(start)),
		})
	}
	return t, nil
}
