package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
)

// Config carries the workload scale plus the keyword-graph pipeline
// knobs threaded down from cmd/experiments, so full-scale sweeps
// exercise the sharded parallel build.
type Config struct {
	// Scale shrinks workloads; 1.0 is the paper's parameters.
	Scale Scale
	// Parallelism is the keyword-graph worker count; 0 = GOMAXPROCS,
	// 1 = the sequential ablation path.
	Parallelism int
	// MemBudget bounds the pair-counting tables in bytes; 0 = default.
	MemBudget int
	// IndexBackend restricts the diskindex experiment to one keyword
	// index backend ("mem" or "disk"); empty runs both.
	IndexBackend string
	// IndexMemBudget bounds the disk index backend's block cache in
	// bytes; 0 = default.
	IndexMemBudget int

	// ctx cancels long experiment pipelines; set via RunContext.
	ctx context.Context
}

// Context returns the run's cancellation context (never nil).
func (c Config) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Workers reports the effective keyword-graph worker count.
func (c Config) Workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Runner regenerates one paper artifact for the given configuration.
type Runner func(Config) (*Table, error)

// scaled adapts the solver-side experiments, which only depend on the
// workload scale, to the Runner signature.
func scaled(f func(Scale) (*Table, error)) Runner {
	return func(cfg Config) (*Table, error) { return f(cfg.Scale) }
}

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"table1":       Table1,
	"fig6":         Fig6,
	"qualitative":  Qualitative,
	"clustergraph": ClusterGraph,
	"diskindex":    DiskIndexExp,
	"table3":       scaled(Table3),
	"fig7":         scaled(Fig7),
	"fig8":         scaled(Fig8),
	"fig9":         scaled(Fig9),
	"fig10":        scaled(Fig10),
	"fig11":        scaled(Fig11),
	"fig12":        scaled(Fig12),
	"fig13":        scaled(Fig13),
	"fig14":        scaled(Fig14),
	"ksens":        scaled(KSensitivity),
	"memory":       scaled(Memory),
}

// IDs returns the known experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id at the given scale with default
// pipeline knobs.
func Run(id string, scale Scale) (*Table, error) {
	return RunConfig(id, Config{Scale: scale})
}

// RunConfig executes one experiment by id.
func RunConfig(id string, cfg Config) (*Table, error) {
	return RunContext(context.Background(), id, cfg)
}

// RunContext executes one experiment by id under a cancellation
// context (Ctrl-C in cmd/experiments aborts the pipeline stages that
// poll it).
func RunContext(ctx context.Context, id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("experiments: scale must be in (0,1], got %g", float64(cfg.Scale))
	}
	cfg.ctx = ctx
	return r(cfg)
}
