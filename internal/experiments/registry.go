package experiments

import (
	"fmt"
	"sort"
)

// Runner regenerates one paper artifact at the given scale.
type Runner func(Scale) (*Table, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"table1":      Table1,
	"fig6":        Fig6,
	"qualitative": Qualitative,
	"table3":      Table3,
	"fig7":        Fig7,
	"fig8":        Fig8,
	"fig9":        Fig9,
	"fig10":       Fig10,
	"fig11":       Fig11,
	"fig12":       Fig12,
	"fig13":       Fig13,
	"fig14":       Fig14,
	"ksens":       KSensitivity,
	"memory":      Memory,
}

// IDs returns the known experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, scale Scale) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("experiments: scale must be in (0,1], got %g", float64(scale))
	}
	return r(scale)
}
