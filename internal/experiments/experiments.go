// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 5) on the synthetic substrates described
// in DESIGN.md. Each experiment returns a Table whose rows mirror what
// the paper reports; cmd/experiments prints them and EXPERIMENTS.md
// records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's output.
type Table struct {
	// ID is the paper artifact this reproduces, e.g. "table3", "fig7".
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data, stringified.
	Rows [][]string
	// Notes records scale substitutions and expectations about shape.
	Notes string
}

// Render formats the table for terminals.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "-- %s\n", t.Notes)
	}
	return b.String()
}

// Scale shrinks experiment workloads: 1.0 runs the paper's parameters
// (minutes of wall-clock); smaller values shrink node counts
// proportionally for quick runs and benchmarks.
type Scale float64

func (s Scale) nodes(n int) int {
	v := int(float64(n) * float64(s))
	if v < 10 {
		v = 10
	}
	return v
}

// fmtDur renders durations in seconds with millisecond resolution,
// matching how the paper reports times.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func i64toa(v int64) string { return fmt.Sprintf("%d", v) }
