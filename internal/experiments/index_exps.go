package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/corpus"
	"repro/internal/index"
)

// DiskIndexExp measures the BlogScope serving layer's two index
// backends on the same corpus and workload, the way Section 5 measures
// the solvers: wall-clock plus observable I/O. The mem backend holds
// every posting list resident; the disk backend keeps only term
// dictionaries resident and reads CRC-checked posting blocks through
// an LRU cache, so the random-read column is the EMBANKS-style access
// cost. Config.IndexBackend restricts the run to one backend;
// Config.IndexMemBudget sets the disk block-cache bytes.
func DiskIndexExp(cfg Config) (*Table, error) {
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed:            77,
		NumIntervals:    6,
		BackgroundPosts: cfg.Scale.nodes(4000),
		BackgroundVocab: cfg.Scale.nodes(3000),
		WordsPerPost:    8,
	})
	if err != nil {
		return nil, err
	}
	backends := []string{"mem", "disk"}
	if cfg.IndexBackend != "" {
		backends = []string{cfg.IndexBackend}
	}
	t := &Table{
		ID:     "diskindex",
		Title:  "keyword index backends: build + query cost (BlogScope serving layer)",
		Header: []string{"backend", "build_s", "queries", "query_s", "rand_reads", "seq_reads", "read_MB", "cache_hit%"},
		Notes: fmt.Sprintf("corpus: %d docs, %d intervals; identical results asserted by internal/index equivalence tests",
			col.NumDocs(), len(col.Intervals)),
	}
	for _, backend := range backends {
		row, err := runIndexBackend(cfg.Context(), col, backend, cfg.IndexMemBudget)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func runIndexBackend(ctx context.Context, col *corpus.Collection, backend string, cacheBytes int) ([]string, error) {
	var (
		r     index.Reader
		disk  *index.DiskIndex
		start = time.Now()
	)
	switch backend {
	case "mem":
		x, err := index.New(col)
		if err != nil {
			return nil, err
		}
		r = x.Reader()
	case "disk":
		dir, err := os.MkdirTemp("", "diskindex-exp-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "seg")
		if err := index.BuildDiskCtx(ctx, col, path, index.Config{}); err != nil {
			return nil, err
		}
		disk, err = index.OpenDisk(path, index.Config{MemBudget: cacheBytes})
		if err != nil {
			return nil, err
		}
		r = disk
	default:
		return nil, fmt.Errorf("experiments: unknown index backend %q (want mem or disk)", backend)
	}
	defer r.Close()
	buildTime := time.Since(start)

	vocab, err := r.Vocabulary(0)
	if err != nil {
		return nil, err
	}
	if len(vocab) == 0 {
		return nil, fmt.Errorf("experiments: empty interval-0 vocabulary")
	}
	if disk != nil {
		disk.ResetStats()
	}
	rng := rand.New(rand.NewSource(7))
	const queries = 2000
	start = time.Now()
	for q := 0; q < queries; q++ {
		u := vocab[rng.Intn(len(vocab))]
		v := vocab[rng.Intn(len(vocab))]
		iv := rng.Intn(r.NumIntervals())
		if _, err := r.Search([]string{u, v}, iv); err != nil {
			return nil, err
		}
		if _, err := r.TimeSeries(u); err != nil {
			return nil, err
		}
	}
	queryTime := time.Since(start)

	randReads, seqReads, readMB, hitRate := "-", "-", "-", "-"
	if disk != nil {
		st := disk.Stats()
		hits, misses, _ := disk.CacheStats()
		randReads = i64toa(st.RandomReads)
		seqReads = i64toa(st.SequentialReads)
		readMB = fmt.Sprintf("%.1f", float64(st.BytesRead)/(1<<20))
		if hits+misses > 0 {
			hitRate = fmt.Sprintf("%.1f", 100*float64(hits)/float64(hits+misses))
		}
	}
	return []string{
		backend,
		fmtDur(buildTime),
		itoa(queries),
		fmtDur(queryTime),
		randReads,
		seqReads,
		readMB,
		hitRate,
	}, nil
}
