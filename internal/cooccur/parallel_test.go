package cooccur

import (
	"fmt"
	"slices"
	"testing"

	"repro/internal/corpus"
	"repro/internal/stats"
)

func equivCorpus(t testing.TB, seed int64, posts int) *corpus.Collection {
	t.Helper()
	col, err := corpus.Generate(corpus.GeneratorConfig{
		Seed: seed, NumIntervals: 2, BackgroundPosts: posts,
		BackgroundVocab: 500, WordsPerPost: 8,
		Events: []corpus.Event{{Name: "e", Phases: []corpus.Phase{{
			Keywords: []string{"alpha", "beta", "gamma"}, Intervals: []int{0, 1}, Posts: posts / 10,
		}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// requireIdenticalGraphs asserts byte-identical Graph output: keyword
// table, document counts, and edge list (order included).
func requireIdenticalGraphs(t *testing.T, want, got *Graph, label string) {
	t.Helper()
	if want.N != got.N {
		t.Fatalf("%s: N = %d, want %d", label, got.N, want.N)
	}
	if !slices.Equal(want.Keywords, got.Keywords) {
		t.Fatalf("%s: Keywords differ (%d vs %d entries)", label, len(got.Keywords), len(want.Keywords))
	}
	if !slices.Equal(want.DocCount, got.DocCount) {
		t.Fatalf("%s: DocCount differs", label)
	}
	if !slices.Equal(want.Edges, got.Edges) {
		if len(want.Edges) != len(got.Edges) {
			t.Fatalf("%s: %d edges, want %d", label, len(got.Edges), len(want.Edges))
		}
		for i := range want.Edges {
			if want.Edges[i] != got.Edges[i] {
				t.Fatalf("%s: edge %d = %+v, want %+v", label, i, got.Edges[i], want.Edges[i])
			}
		}
	}
	for i, w := range want.Keywords {
		id, ok := got.KeywordID(w)
		if !ok || id != int32(i) {
			t.Fatalf("%s: index out of sync for %q: id %d ok=%t, want %d", label, w, id, ok, i)
		}
	}
}

// TestParallelMatchesSequential is the tentpole equivalence guarantee:
// any worker count and any memory budget (spilling or not) must produce
// the exact graph the sequential in-memory path produces.
func TestParallelMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		col := equivCorpus(t, seed, 300)
		ref, err := Build(col, 0, 1, BuildOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		for _, par := range []int{0, 2, 3, 8} {
			for _, budget := range []int{0, 1 << 12} {
				label := fmt.Sprintf("seed=%d par=%d budget=%d", seed, par, budget)
				g, err := Build(col, 0, 1, BuildOptions{Parallelism: par, MemBudget: budget})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				requireIdenticalGraphs(t, ref, g, label)
			}
		}
	}
}

// TestSequentialSpillMatches forces the sequential path itself through
// the spill-and-merge route and checks it against the in-memory fold.
func TestSequentialSpillMatches(t *testing.T) {
	col := equivCorpus(t, 5, 200)
	ref, err := Build(col, 0, 1, BuildOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	spilled, err := Build(col, 0, 1, BuildOptions{Parallelism: 1, MemBudget: 1 << 10, SortMemoryBudget: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalGraphs(t, ref, spilled, "sequential spill")
}

// TestBuildCanonicalOrder pins the canonical representation both paths
// share: lexicographically sorted keywords, edges sorted by (U, V) with
// U < V, and DocCount consistent with edge counts.
func TestBuildCanonicalOrder(t *testing.T) {
	col := equivCorpus(t, 9, 150)
	for _, par := range []int{1, 4} {
		g, err := Build(col, 0, 0, BuildOptions{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.IsSorted(g.Keywords) {
			t.Fatalf("par=%d: keywords not sorted", par)
		}
		for i, e := range g.Edges {
			if e.U >= e.V {
				t.Fatalf("par=%d: edge %d has U >= V: %+v", par, i, e)
			}
			if i > 0 && compareEdges(g.Edges[i-1], e) >= 0 {
				t.Fatalf("par=%d: edges out of order at %d: %+v then %+v", par, i, g.Edges[i-1], e)
			}
			if e.Count > g.DocCount[e.U] || e.Count > g.DocCount[e.V] {
				t.Fatalf("par=%d: edge %d count %d exceeds endpoint doc counts", par, i, e.Count)
			}
		}
	}
}

// TestParallelAnnotateAndPrune checks that the parallel statistics and
// pruning passes agree with the sequential ones on a graph large enough
// to cross the fan-out threshold.
func TestParallelAnnotateAndPrune(t *testing.T) {
	col := equivCorpus(t, 3, 600)
	seqG, err := Build(col, 0, 1, BuildOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parG, err := Build(col, 0, 1, BuildOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqG.Edges) < parallelEdgeThreshold {
		t.Fatalf("test corpus too small to exercise the parallel stats path: %d edges", len(seqG.Edges))
	}
	seqG.AnnotateStats()
	parG.AnnotateStats()
	requireIdenticalGraphs(t, seqG, parG, "annotated")

	seqP := seqG.Prune(stats.ChiSquared95, stats.DefaultRhoThreshold)
	parP := parG.Prune(stats.ChiSquared95, stats.DefaultRhoThreshold)
	requireIdenticalGraphs(t, seqP, parP, "pruned")
}

// TestMinPairCountParallel checks the early triplet filter on both
// aggregation routes.
func TestMinPairCountParallel(t *testing.T) {
	col := equivCorpus(t, 13, 250)
	ref, err := Build(col, 0, 1, BuildOptions{Parallelism: 1, MinPairCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []BuildOptions{
		{Parallelism: 4, MinPairCount: 2},
		{Parallelism: 4, MinPairCount: 2, MemBudget: 1 << 12},
	} {
		g, err := Build(col, 0, 1, opts)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalGraphs(t, ref, g, fmt.Sprintf("minpair budget=%d", opts.MemBudget))
	}
	for _, e := range ref.Edges {
		if e.Count < 2 {
			t.Fatalf("MinPairCount leaked edge %+v", e)
		}
	}
}

func TestSpillRecordRoundTrip(t *testing.T) {
	keys := []uint64{0, 1, pairKey(0, 1), pairKey(123456, 654321), pairKey(1<<31-1, 1<<31-1)}
	counts := []int64{1, 7, 1 << 40}
	var buf []byte
	for _, k := range keys {
		for _, c := range counts {
			buf = appendSpillRecord(buf[:0], k, c)
			gk, gc, err := parseSpillRecord(string(buf))
			if err != nil {
				t.Fatalf("parse(%q): %v", buf, err)
			}
			if gk != k || gc != c {
				t.Fatalf("round trip (%d,%d) → (%d,%d)", k, c, gk, gc)
			}
		}
	}
	for _, bad := range []string{"", "short", "zzzzzzzzzzzzzzzz 3", "0123456789abcdef x", "0123456789abcdef"} {
		if _, _, err := parseSpillRecord(bad); err == nil {
			t.Errorf("parseSpillRecord(%q) accepted", bad)
		}
	}
}

// TestPairTable exercises the open-addressing table directly: growth,
// duplicate accumulation, extraction and reset.
func TestPairTable(t *testing.T) {
	pt := newPairTable()
	const n = 5000
	for i := 0; i < n; i++ {
		k := pairKey(int32(i%100), int32(i%700))
		pt.add(k, 1)
		pt.add(k, 2)
	}
	entries := pt.appendEntries(nil)
	if len(entries) != pt.n {
		t.Fatalf("extracted %d entries, table says %d", len(entries), pt.n)
	}
	var total int64
	for _, e := range entries {
		total += e.count
	}
	if total != 3*n {
		t.Fatalf("total count %d, want %d", total, 3*n)
	}
	sortEntries(entries)
	for i := 1; i < len(entries); i++ {
		if entries[i-1].key >= entries[i].key {
			t.Fatalf("entries not strictly ascending at %d", i)
		}
	}
	pt.reset()
	if pt.n != 0 || len(pt.slots) != minTableSlots {
		t.Fatalf("reset left n=%d cap=%d", pt.n, len(pt.slots))
	}
}
