package cooccur

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/stats"
)

// tinyCollection: 4 docs in one interval.
//
//	d0: a b
//	d1: a b
//	d2: a c
//	d3: c
//
// A(a)=3 A(b)=2 A(c)=2; A(a,b)=2 A(a,c)=1; no (b,c).
func tinyCollection() *corpus.Collection {
	return &corpus.Collection{Intervals: []corpus.Interval{{
		Index: 0,
		Docs: []corpus.Document{
			{ID: 0, Interval: 0, Keywords: []string{"a", "b"}},
			{ID: 1, Interval: 0, Keywords: []string{"b", "a"}},
			{ID: 2, Interval: 0, Keywords: []string{"a", "c"}},
			{ID: 3, Interval: 0, Keywords: []string{"c"}},
		},
	}}}
}

func TestBuildCounts(t *testing.T) {
	g, err := Build(tinyCollection(), 0, 0, BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.N != 4 {
		t.Errorf("N = %d, want 4", g.N)
	}
	if g.NumVertices() != 3 {
		t.Errorf("vertices = %d, want 3", g.NumVertices())
	}
	wantDoc := map[string]int64{"a": 3, "b": 2, "c": 2}
	for w, want := range wantDoc {
		id, ok := g.KeywordID(w)
		if !ok {
			t.Fatalf("keyword %q missing", w)
		}
		if got := g.DocCount[id]; got != want {
			t.Errorf("A(%s) = %d, want %d", w, got, want)
		}
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if e, ok := g.EdgeBetween("a", "b"); !ok || e.Count != 2 {
		t.Errorf("A(a,b) = %+v, %t; want count 2", e, ok)
	}
	if e, ok := g.EdgeBetween("a", "c"); !ok || e.Count != 1 {
		t.Errorf("A(a,c) = %+v, %t; want count 1", e, ok)
	}
	if _, ok := g.EdgeBetween("b", "c"); ok {
		t.Error("unexpected edge (b,c)")
	}
	if _, ok := g.EdgeBetween("a", "zzz"); ok {
		t.Error("EdgeBetween found edge for unknown keyword")
	}
}

func TestBuildOrderInsensitive(t *testing.T) {
	// Same multiset of docs with keywords in different orders must yield
	// identical counts. Pair emission normalizes u < v lexicographically.
	c := &corpus.Collection{Intervals: []corpus.Interval{{
		Index: 0,
		Docs: []corpus.Document{
			{ID: 0, Interval: 0, Keywords: []string{"zebra", "apple", "mango"}},
		},
	}}}
	g, err := Build(c, 0, 0, BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	for _, pair := range [][2]string{{"apple", "zebra"}, {"apple", "mango"}, {"mango", "zebra"}} {
		if e, ok := g.EdgeBetween(pair[0], pair[1]); !ok || e.Count != 1 {
			t.Errorf("edge %v: %+v, %t", pair, e, ok)
		}
	}
}

func TestBuildRangeSpansIntervals(t *testing.T) {
	c := &corpus.Collection{Intervals: []corpus.Interval{
		{Index: 0, Docs: []corpus.Document{{ID: 0, Interval: 0, Keywords: []string{"x", "y"}}}},
		{Index: 1, Docs: []corpus.Document{{ID: 1, Interval: 1, Keywords: []string{"x", "y"}}}},
	}}
	g, err := Build(c, 0, 1, BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.N != 2 {
		t.Errorf("N = %d, want 2", g.N)
	}
	if e, _ := g.EdgeBetween("x", "y"); e.Count != 2 {
		t.Errorf("A(x,y) = %d, want 2", e.Count)
	}
}

func TestBuildRejectsBadRange(t *testing.T) {
	c := tinyCollection()
	for _, r := range [][2]int{{-1, 0}, {0, 5}, {1, 0}} {
		if _, err := Build(c, r[0], r[1], BuildOptions{}); err == nil {
			t.Errorf("Build(%v) accepted bad range", r)
		}
	}
}

func TestMinPairCount(t *testing.T) {
	g, err := Build(tinyCollection(), 0, 0, BuildOptions{MinPairCount: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (a,c dropped)", g.NumEdges())
	}
	if _, ok := g.EdgeBetween("a", "b"); !ok {
		t.Error("edge (a,b) missing")
	}
}

func TestBuildWithTinySortBudgetMatches(t *testing.T) {
	// Forcing spills must not change the result. MemBudget pushes every
	// shard through the spill path; SortMemoryBudget splits each spill
	// into many one-record runs.
	big, err := Build(tinyCollection(), 0, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Build(tinyCollection(), 0, 0, BuildOptions{MemBudget: 64, SortMemoryBudget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if big.NumEdges() != small.NumEdges() || big.NumVertices() != small.NumVertices() {
		t.Fatalf("spilled build differs: %d/%d edges, %d/%d vertices",
			big.NumEdges(), small.NumEdges(), big.NumVertices(), small.NumVertices())
	}
	for _, e := range big.Edges {
		u, v := big.Keywords[e.U], big.Keywords[e.V]
		se, ok := small.EdgeBetween(u, v)
		if !ok || se.Count != e.Count {
			t.Errorf("edge (%s,%s): spilled count %d, want %d", u, v, se.Count, e.Count)
		}
	}
}

func TestAnnotateAndPrune(t *testing.T) {
	// Build a corpus where (hot1,hot2) is strongly correlated and
	// (bg1,bg2) co-occurs only at chance level.
	docs := make([]corpus.Document, 0, 400)
	id := int64(0)
	add := func(kws ...string) {
		docs = append(docs, corpus.Document{ID: id, Interval: 0, Keywords: kws})
		id++
	}
	for i := 0; i < 50; i++ {
		add("hot1", "hot2")
	}
	for i := 0; i < 100; i++ {
		add("bg1", "filler1")
	}
	for i := 0; i < 100; i++ {
		add("bg2", "filler2")
	}
	for i := 0; i < 50; i++ {
		add("bg1", "bg2") // chance-ish co-occurrence given their base rates
	}
	for i := 0; i < 100; i++ {
		add("filler3", "filler4")
	}
	c := &corpus.Collection{Intervals: []corpus.Interval{{Index: 0, Docs: docs}}}
	g, err := Build(c, 0, 0, BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g.AnnotateStats()
	e, ok := g.EdgeBetween("hot1", "hot2")
	if !ok {
		t.Fatal("missing hot edge")
	}
	if e.Chi2 <= stats.ChiSquared95 || e.Rho <= stats.DefaultRhoThreshold {
		t.Errorf("hot edge stats χ²=%g ρ=%g, want strong", e.Chi2, e.Rho)
	}
	pruned := g.Prune(stats.ChiSquared95, stats.DefaultRhoThreshold)
	if _, ok := pruned.EdgeBetween("hot1", "hot2"); !ok {
		t.Error("pruning dropped the hot edge")
	}
	// Vertices with no surviving edges must be gone.
	for _, kw := range pruned.Keywords {
		found := false
		for _, e := range pruned.Edges {
			if pruned.Keywords[e.U] == kw || pruned.Keywords[e.V] == kw {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pruned graph retains isolated vertex %q", kw)
		}
	}
	// Pruned edge stats must be preserved.
	pe, _ := pruned.EdgeBetween("hot1", "hot2")
	if pe.Chi2 != e.Chi2 || pe.Rho != e.Rho || pe.Count != e.Count {
		t.Error("pruning corrupted edge annotations")
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	g, err := Build(tinyCollection(), 0, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	adj := g.Adjacency()
	degSum := 0
	for u, ns := range adj {
		degSum += len(ns)
		for _, v := range ns {
			found := false
			for _, back := range adj[v] {
				if back == int32(u) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency not symmetric: %d->%d", u, v)
			}
		}
	}
	if degSum != 2*g.NumEdges() {
		t.Errorf("degree sum = %d, want %d", degSum, 2*g.NumEdges())
	}
}

func TestStrongestCorrelations(t *testing.T) {
	docs := make([]corpus.Document, 0, 300)
	id := int64(0)
	add := func(n int, kws ...string) {
		for i := 0; i < n; i++ {
			docs = append(docs, corpus.Document{ID: id, Interval: 0, Keywords: kws})
			id++
		}
	}
	add(60, "apple", "iphone")
	add(30, "apple", "pie")
	add(100, "noise1", "noise2")
	add(80, "noise3")
	c := &corpus.Collection{Intervals: []corpus.Interval{{Index: 0, Docs: docs}}}
	g, err := Build(c, 0, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g.AnnotateStats()
	got := g.StrongestCorrelations("apple", 2)
	if len(got) != 2 {
		t.Fatalf("got %d correlations, want 2: %v", len(got), got)
	}
	if got[0].Keyword != "iphone" || got[1].Keyword != "pie" {
		t.Errorf("order = %s, %s; want iphone, pie", got[0].Keyword, got[1].Keyword)
	}
	if got[0].Rho <= got[1].Rho {
		t.Errorf("rho not descending: %g, %g", got[0].Rho, got[1].Rho)
	}
	if got[0].Count != 60 {
		t.Errorf("iphone count = %d, want 60", got[0].Count)
	}
	if g.StrongestCorrelations("missing", 3) != nil {
		t.Error("unknown keyword returned correlations")
	}
	if g.StrongestCorrelations("apple", 0) != nil {
		t.Error("n=0 returned correlations")
	}
	if one := g.StrongestCorrelations("apple", 1); len(one) != 1 {
		t.Errorf("n=1 returned %d", len(one))
	}
}

func TestBuildOnSyntheticEventCorpus(t *testing.T) {
	cfg := corpus.GeneratorConfig{
		Seed: 11, NumIntervals: 1, BackgroundPosts: 400,
		BackgroundVocab: 800, WordsPerPost: 6,
		Events: []corpus.Event{{Name: "e", Phases: []corpus.Phase{{
			Keywords: []string{"alpha", "beta", "gamma"}, Intervals: []int{0}, Posts: 60, KeywordProb: 0.95,
		}}}},
	}
	c, err := corpus.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(c, 0, 0, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g.AnnotateStats()
	pruned := g.Prune(stats.ChiSquared95, stats.DefaultRhoThreshold)
	// The event triangle must survive pruning.
	for _, pair := range [][2]string{{"alpha", "beta"}, {"alpha", "gamma"}, {"beta", "gamma"}} {
		if _, ok := pruned.EdgeBetween(pair[0], pair[1]); !ok {
			t.Errorf("event edge %v pruned away", pair)
		}
	}
	// Pruning must remove the bulk of background edges.
	if pruned.NumEdges() >= g.NumEdges()/2 {
		t.Errorf("pruning kept %d of %d edges; expected substantial reduction", pruned.NumEdges(), g.NumEdges())
	}
}
