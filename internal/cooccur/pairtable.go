package cooccur

import (
	"fmt"
	"slices"
	"strconv"
)

// pairKey packs an ordered keyword-id pair (u ≤ v) into one uint64 so
// the counting tables and spill records never materialize strings on
// the hot path. Diagonal keys (u == u) carry the per-keyword document
// counts A(u); off-diagonal keys carry A(u,v).
func pairKey(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func splitPairKey(key uint64) (u, v int32) {
	return int32(key >> 32), int32(uint32(key))
}

// pairEntry is one (key, count) pair extracted from a table.
type pairEntry struct {
	key   uint64
	count int64
}

// pairEntryBytes is the per-entry footprint used for memory budgeting
// (one uint64 slot + one int64 count).
const pairEntryBytes = 16

const minTableSlots = 1 << 10 // power of two

// pairTable is an open-addressing (linear probing) hash table from
// packed pair key to count. Slots store key+1 so zero marks an empty
// slot; the maximum packed key is below 1<<63, so the increment cannot
// wrap. Capacity is always a power of two and grows at 3/4 load.
type pairTable struct {
	slots  []uint64
	counts []int64
	n      int
}

func newPairTable() *pairTable {
	return &pairTable{
		slots:  make([]uint64, minTableSlots),
		counts: make([]int64, minTableSlots),
	}
}

// mix is the 64-bit finalizer of MurmurHash3: packed keys are highly
// regular (vocab ids in both halves), so they need real mixing before
// masking down to a table index.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// add increments key's count by delta, growing the table as needed.
func (t *pairTable) add(key uint64, delta int64) {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	k := key + 1
	for i := mix(key) & mask; ; i = (i + 1) & mask {
		switch t.slots[i] {
		case k:
			t.counts[i] += delta
			return
		case 0:
			t.slots[i] = k
			t.counts[i] = delta
			t.n++
			return
		}
	}
}

func (t *pairTable) grow() {
	oldSlots, oldCounts := t.slots, t.counts
	t.slots = make([]uint64, 2*len(oldSlots))
	t.counts = make([]int64, 2*len(oldCounts))
	mask := uint64(len(t.slots) - 1)
	for i, k := range oldSlots {
		if k == 0 {
			continue
		}
		j := mix(k-1) & mask
		for t.slots[j] != 0 {
			j = (j + 1) & mask
		}
		t.slots[j] = k
		t.counts[j] = oldCounts[i]
	}
}

// entryBytes is the resident footprint charged against the shard's
// memory budget (occupied entries only — the spill trigger, unlike the
// capacity, must track what a sorted spill would have to write).
func (t *pairTable) entryBytes() int { return t.n * pairEntryBytes }

// appendEntries appends all occupied entries to dst and returns it.
func (t *pairTable) appendEntries(dst []pairEntry) []pairEntry {
	if cap(dst)-len(dst) < t.n {
		grown := make([]pairEntry, len(dst), len(dst)+t.n)
		copy(grown, dst)
		dst = grown
	}
	for i, k := range t.slots {
		if k != 0 {
			dst = append(dst, pairEntry{key: k - 1, count: t.counts[i]})
		}
	}
	return dst
}

// reset empties the table, shrinking it back to the minimum size so a
// shard that just spilled returns to its small-footprint state.
func (t *pairTable) reset() {
	if len(t.slots) > minTableSlots {
		t.slots = make([]uint64, minTableSlots)
		t.counts = make([]int64, minTableSlots)
	} else {
		clear(t.slots)
		clear(t.counts)
	}
	t.n = 0
}

// sortEntries orders entries by ascending key, i.e. by (u, v).
func sortEntries(entries []pairEntry) {
	slices.SortFunc(entries, func(a, b pairEntry) int {
		switch {
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		}
		return 0
	})
}

// --- spill record codec ---
//
// Spilled entries travel through internal/extsort as text records of
// the form "<16 lowercase hex digits of key> <decimal count>". The
// fixed-width key prefix makes lexicographic record order equal to
// numeric key order, so identical keys from different shards are
// adjacent in the merged stream and can be aggregated in one pass.

const hexDigits = "0123456789abcdef"

func appendSpillRecord(b []byte, key uint64, count int64) []byte {
	var kb [16]byte
	for i := 15; i >= 0; i-- {
		kb[i] = hexDigits[key&0xf]
		key >>= 4
	}
	b = append(b, kb[:]...)
	b = append(b, ' ')
	return strconv.AppendInt(b, count, 10)
}

// combineSpillRecords is the extsort pre-merge aggregation hook: two
// adjacent records with the same 16-hex-digit key fold into one record
// carrying the summed count. The combined record keeps the key prefix,
// so it sorts identically to its inputs relative to every other key.
// Malformed records are left alone (false) so the aggregation pass
// downstream surfaces the error instead of it vanishing mid-merge.
func combineSpillRecords(acc, next string) (string, bool) {
	if len(acc) < 18 || len(next) < 18 || acc[:17] != next[:17] {
		return "", false
	}
	key, ca, err := parseSpillRecord(acc)
	if err != nil {
		return "", false
	}
	_, cb, err := parseSpillRecord(next)
	if err != nil {
		return "", false
	}
	return string(appendSpillRecord(nil, key, ca+cb)), true
}

func parseSpillRecord(rec string) (key uint64, count int64, err error) {
	if len(rec) < 18 || rec[16] != ' ' {
		return 0, 0, fmt.Errorf("cooccur: malformed spill record %q", rec)
	}
	for i := 0; i < 16; i++ {
		c := rec[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, 0, fmt.Errorf("cooccur: malformed spill key in %q", rec)
		}
		key = key<<4 | d
	}
	count, perr := strconv.ParseInt(rec[17:], 10, 64)
	if perr != nil {
		return 0, 0, fmt.Errorf("cooccur: malformed spill count in %q: %w", rec, perr)
	}
	return key, count, nil
}
