package cooccur

import "testing"

// TestCombineSpillRecords covers the extsort pre-merge hook directly:
// equal keys fold with summed counts, different keys and malformed
// records are left alone.
func TestCombineSpillRecords(t *testing.T) {
	a := string(appendSpillRecord(nil, pairKey(3, 7), 5))
	b := string(appendSpillRecord(nil, pairKey(3, 7), 11))
	c := string(appendSpillRecord(nil, pairKey(3, 8), 2))

	merged, ok := combineSpillRecords(a, b)
	if !ok {
		t.Fatalf("equal keys did not combine: %q %q", a, b)
	}
	key, count, err := parseSpillRecord(merged)
	if err != nil {
		t.Fatalf("combined record unparseable: %v", err)
	}
	if key != pairKey(3, 7) || count != 16 {
		t.Fatalf("combined to key %x count %d, want key %x count 16", key, count, pairKey(3, 7))
	}
	// The combined record must sort like its inputs: same key prefix.
	if merged[:17] != a[:17] {
		t.Fatalf("combined record changed its key prefix: %q vs %q", merged, a)
	}

	if _, ok := combineSpillRecords(a, c); ok {
		t.Fatal("different keys combined")
	}
	if _, ok := combineSpillRecords("short", a); ok {
		t.Fatal("malformed acc combined")
	}
	if _, ok := combineSpillRecords(a, a[:16]+"x999"); ok {
		t.Fatal("malformed next combined")
	}
}

// TestBuildSpillCombineEquivalence forces many tiny spilled runs (so
// extsort pre-merges with the combine hook) and checks the graph is
// identical to the pure in-memory build.
func TestBuildSpillCombineEquivalence(t *testing.T) {
	col := equivCorpus(t, 11, 400)
	want, err := Build(col, 0, 0, BuildOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A tiny MemBudget forces a spill per handful of documents and a
	// tiny SortMemoryBudget splits each spill into many runs, pushing
	// the run count past the merge fan-in so pre-merge combining runs.
	got, err := Build(col, 0, 0, BuildOptions{Parallelism: 4, MemBudget: 4 << 10, SortMemoryBudget: 256})
	if err != nil {
		t.Fatal(err)
	}
	requireIdenticalGraphs(t, want, got, "combine-spill")
}
