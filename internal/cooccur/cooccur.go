// Package cooccur builds the keyword co-occurrence graph of Section 3.
//
// A single pass over the documents of a temporal interval emits every
// keyword pair (u,v) present in each document, plus (u,u) pairs so the
// per-keyword document counts A(u) are produced by the same machinery.
// The pair stream is sorted with external-memory merge sort
// (internal/extsort) so identical pairs become adjacent, and a second
// single pass aggregates them into triplets (u, v, A(u,v)) — exactly the
// methodology the paper describes for BlogScope-scale data.
//
// The resulting Graph carries A(u), A(u,v) and n, from which the χ² and
// ρ statistics (internal/stats) annotate and prune edges, yielding G'.
package cooccur

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/extsort"
	"repro/internal/stats"
)

// Edge is one co-occurrence triplet with its statistics. U < V always
// (indices into Graph.Keywords).
type Edge struct {
	U, V  int32
	Count int64 // A(u,v): documents containing both
	Chi2  float64
	Rho   float64
}

// Graph is the keyword graph G (or, after Prune, G').
type Graph struct {
	// N is the number of documents the graph was built from.
	N int64
	// Keywords maps keyword id → keyword string.
	Keywords []string
	// DocCount maps keyword id → A(u), the number of documents
	// containing the keyword.
	DocCount []int64
	// Edges holds the co-occurrence triplets, sorted by (U, V).
	Edges []Edge

	index map[string]int32
}

// KeywordID returns the id of keyword w.
func (g *Graph) KeywordID(w string) (int32, bool) {
	id, ok := g.index[w]
	return id, ok
}

// NumVertices returns the number of distinct keywords.
func (g *Graph) NumVertices() int { return len(g.Keywords) }

// NumEdges returns the number of co-occurrence edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// BuildOptions configures graph construction.
type BuildOptions struct {
	// SortMemoryBudget is the in-memory budget handed to the external
	// sorter. Zero means extsort.DefaultMemoryBudget.
	SortMemoryBudget int
	// MinPairCount drops triplets with A(u,v) below this value before
	// statistics are computed. The paper's graphs keep everything
	// (threshold 1); larger corpora benefit from dropping singleton
	// noise pairs early. Zero means 1.
	MinPairCount int64
}

// pairSep separates the two keywords in a sort record. It cannot occur
// inside an analyzed keyword (the tokenizer emits only letters/digits).
const pairSep = " "

// Build constructs the keyword graph for the documents of intervals
// [from, to] of c (inclusive; pass the same value twice for a single
// day, as in Table 1).
func Build(c *corpus.Collection, from, to int, opts BuildOptions) (*Graph, error) {
	if from < 0 || to >= len(c.Intervals) || from > to {
		return nil, fmt.Errorf("cooccur: interval range [%d,%d] outside collection of %d intervals", from, to, len(c.Intervals))
	}
	minCount := opts.MinPairCount
	if minCount <= 0 {
		minCount = 1
	}

	// Pass 1: emit keyword pairs (including (u,u)) for every document.
	sorter := extsort.New(opts.SortMemoryBudget)
	var n int64
	for i := from; i <= to; i++ {
		for _, d := range c.Intervals[i].Docs {
			n++
			kws := d.Keywords
			for a := 0; a < len(kws); a++ {
				if strings.Contains(kws[a], pairSep) {
					return nil, fmt.Errorf("cooccur: keyword %q contains separator", kws[a])
				}
				if err := sorter.Add(kws[a] + pairSep + kws[a]); err != nil {
					return nil, err
				}
				for b := a + 1; b < len(kws); b++ {
					u, v := kws[a], kws[b]
					if u > v {
						u, v = v, u
					}
					if err := sorter.Add(u + pairSep + v); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	it, err := sorter.Sort()
	if err != nil {
		return nil, err
	}
	defer it.Close()

	// Pass 2: aggregate runs of identical pairs into triplets.
	g := &Graph{N: n, index: make(map[string]int32)}
	intern := func(w string) int32 {
		if id, ok := g.index[w]; ok {
			return id
		}
		id := int32(len(g.Keywords))
		g.index[w] = id
		g.Keywords = append(g.Keywords, w)
		g.DocCount = append(g.DocCount, 0)
		return id
	}
	var cur string
	var count int64
	emit := func() error {
		if count == 0 {
			return nil
		}
		i := strings.Index(cur, pairSep)
		if i < 0 {
			return fmt.Errorf("cooccur: malformed pair record %q", cur)
		}
		u, v := cur[:i], cur[i+1:]
		if u == v {
			g.DocCount[intern(u)] = count
			return nil
		}
		if count >= minCount {
			g.Edges = append(g.Edges, Edge{U: intern(u), V: intern(v), Count: count})
		}
		return nil
	}
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		if rec == cur {
			count++
			continue
		}
		if err := emit(); err != nil {
			return nil, err
		}
		cur, count = rec, 1
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	if err := emit(); err != nil {
		return nil, err
	}

	// (u,u) records sort before (u,x) for every x>u but after pairs led
	// by earlier keywords, so interning order is not id-sorted; normalize
	// edge endpoints to U < V by id for a canonical representation.
	for i := range g.Edges {
		if g.Edges[i].U > g.Edges[i].V {
			g.Edges[i].U, g.Edges[i].V = g.Edges[i].V, g.Edges[i].U
		}
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].U != g.Edges[j].U {
			return g.Edges[i].U < g.Edges[j].U
		}
		return g.Edges[i].V < g.Edges[j].V
	})
	return g, nil
}

// AnnotateStats fills in the χ² and ρ fields of every edge in one pass,
// as the paper prescribes ("this test can be computed with a single pass
// of the edges of G").
func (g *Graph) AnnotateStats() {
	for i := range g.Edges {
		e := &g.Edges[i]
		au := g.DocCount[e.U]
		av := g.DocCount[e.V]
		e.Chi2 = stats.ChiSquared(g.N, au, av, e.Count)
		e.Rho = stats.Correlation(g.N, au, av, e.Count)
	}
}

// Prune returns G': the subgraph with only edges passing the χ² test at
// the given critical value AND with ρ above rhoThreshold. Vertices with
// no surviving edges are dropped and ids are re-packed. AnnotateStats
// must have been called.
func (g *Graph) Prune(chi2Critical, rhoThreshold float64) *Graph {
	out := &Graph{N: g.N, index: make(map[string]int32)}
	remap := make(map[int32]int32)
	keep := func(old int32) int32 {
		if id, ok := remap[old]; ok {
			return id
		}
		id := int32(len(out.Keywords))
		remap[old] = id
		out.Keywords = append(out.Keywords, g.Keywords[old])
		out.DocCount = append(out.DocCount, g.DocCount[old])
		out.index[g.Keywords[old]] = id
		return id
	}
	for _, e := range g.Edges {
		if e.Chi2 <= chi2Critical || e.Rho <= rhoThreshold {
			continue
		}
		ne := Edge{U: keep(e.U), V: keep(e.V), Count: e.Count, Chi2: e.Chi2, Rho: e.Rho}
		if ne.U > ne.V {
			ne.U, ne.V = ne.V, ne.U
		}
		out.Edges = append(out.Edges, ne)
	}
	sort.Slice(out.Edges, func(i, j int) bool {
		if out.Edges[i].U != out.Edges[j].U {
			return out.Edges[i].U < out.Edges[j].U
		}
		return out.Edges[i].V < out.Edges[j].V
	})
	return out
}

// Adjacency materializes adjacency lists (neighbor ids per vertex).
func (g *Graph) Adjacency() [][]int32 {
	adj := make([][]int32, len(g.Keywords))
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}

// Correlated is one keyword correlated with a query keyword, with the
// strength of the association.
type Correlated struct {
	Keyword string
	Rho     float64
	Count   int64 // documents containing both
}

// StrongestCorrelations returns up to n keywords most strongly
// correlated with w, by descending ρ. The paper's introduction proposes
// exactly this as query refinement: "for a query keyword we may suggest
// the strongest correlation as a refinement". AnnotateStats must have
// been called.
func (g *Graph) StrongestCorrelations(w string, n int) []Correlated {
	id, ok := g.KeywordID(w)
	if !ok || n <= 0 {
		return nil
	}
	var out []Correlated
	for _, e := range g.Edges {
		var other int32
		switch id {
		case e.U:
			other = e.V
		case e.V:
			other = e.U
		default:
			continue
		}
		out = append(out, Correlated{Keyword: g.Keywords[other], Rho: e.Rho, Count: e.Count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rho != out[j].Rho {
			return out[i].Rho > out[j].Rho
		}
		return out[i].Keyword < out[j].Keyword
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// EdgeBetween returns the edge joining keywords u and v, if present.
func (g *Graph) EdgeBetween(u, v string) (Edge, bool) {
	iu, ok := g.KeywordID(u)
	if !ok {
		return Edge{}, false
	}
	iv, ok := g.KeywordID(v)
	if !ok {
		return Edge{}, false
	}
	if iu > iv {
		iu, iv = iv, iu
	}
	i := sort.Search(len(g.Edges), func(i int) bool {
		e := g.Edges[i]
		return e.U > iu || (e.U == iu && e.V >= iv)
	})
	if i < len(g.Edges) && g.Edges[i].U == iu && g.Edges[i].V == iv {
		return g.Edges[i], true
	}
	return Edge{}, false
}
