// Package cooccur builds the keyword co-occurrence graph of Section 3.
//
// The paper's pipeline makes a single pass over the documents of a
// temporal interval emitting every keyword pair (u,v) present in each
// document — plus (u,u) pairs so the per-keyword document counts A(u)
// are produced by the same machinery — then external-merge-sorts the
// pair stream so identical pairs become adjacent, and aggregates them
// into triplets (u, v, A(u,v)).
//
// This implementation keeps that shape but shards it for parallel
// hardware (see DESIGN.md, "Sharded keyword-graph construction"):
//
//   - documents are partitioned across BuildOptions.Parallelism worker
//     goroutines, each counting pairs into a private open-addressing
//     hash table keyed by the packed id pair uint64(u)<<32|v;
//   - a shard whose table exceeds its share of BuildOptions.MemBudget
//     spills the table as one sorted run through internal/extsort;
//     when nothing spills — the common case for per-interval graphs —
//     the shard tables are merged entirely in memory with a parallel,
//     range-partitioned fold, and the sort path is never touched;
//   - if any shard spilled, all shards drain through the external
//     sorter and a single pass over the globally sorted run stream
//     aggregates the counts, exactly the paper's merge.
//
// Either way the resulting Graph is canonical — keyword ids are ranks
// in the sorted vocabulary and edges are sorted by (U, V) — so the
// sequential (Parallelism: 1) and parallel paths are bit-for-bit
// interchangeable. From A(u), A(u,v) and n, the χ² and ρ statistics
// (internal/stats) annotate and prune edges in parallel over edge
// ranges, yielding G'.
package cooccur

import (
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/stats"
)

// Edge is one co-occurrence triplet with its statistics. U < V always
// (indices into Graph.Keywords).
type Edge struct {
	U, V  int32
	Count int64 // A(u,v): documents containing both
	Chi2  float64
	Rho   float64
}

// Graph is the keyword graph G (or, after Prune, G').
type Graph struct {
	// N is the number of documents the graph was built from.
	N int64
	// Keywords maps keyword id → keyword string, sorted
	// lexicographically by Build.
	Keywords []string
	// DocCount maps keyword id → A(u), the number of documents
	// containing the keyword.
	DocCount []int64
	// Edges holds the co-occurrence triplets, sorted by (U, V).
	Edges []Edge

	index map[string]int32
	par   int // worker count inherited from BuildOptions.Parallelism
}

// KeywordID returns the id of keyword w.
func (g *Graph) KeywordID(w string) (int32, bool) {
	id, ok := g.index[w]
	return id, ok
}

// NumVertices returns the number of distinct keywords.
func (g *Graph) NumVertices() int { return len(g.Keywords) }

// NumEdges returns the number of co-occurrence edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// parallelism resolves the graph's worker count for the statistics and
// pruning passes.
func (g *Graph) parallelism() int {
	if g.par > 0 {
		return g.par
	}
	return runtime.GOMAXPROCS(0)
}

// parallelEdgeThreshold is the edge count below which the statistics
// and pruning passes stay single-threaded: goroutine fan-out costs more
// than it saves on tiny graphs.
const parallelEdgeThreshold = 1 << 12

// forEachEdgeChunk runs fn over contiguous chunks of g.Edges, fanning
// out to the graph's worker count when the edge list is large enough.
func (g *Graph) forEachEdgeChunk(fn func(lo, hi int)) {
	par := g.parallelism()
	if par <= 1 || len(g.Edges) < parallelEdgeThreshold {
		fn(0, len(g.Edges))
		return
	}
	chunk := (len(g.Edges) + par - 1) / par
	var wg sync.WaitGroup
	for lo := 0; lo < len(g.Edges); lo += chunk {
		hi := min(lo+chunk, len(g.Edges))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// AnnotateStats fills in the χ² and ρ fields of every edge in one pass,
// as the paper prescribes ("this test can be computed with a single pass
// of the edges of G"). The pass runs in parallel over edge ranges; each
// edge's statistics depend only on that edge and the shared counts, so
// the result is identical at any worker count.
func (g *Graph) AnnotateStats() {
	g.forEachEdgeChunk(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := &g.Edges[i]
			au := g.DocCount[e.U]
			av := g.DocCount[e.V]
			e.Chi2 = stats.ChiSquared(g.N, au, av, e.Count)
			e.Rho = stats.Correlation(g.N, au, av, e.Count)
		}
	})
}

// Prune returns G': the subgraph with only edges passing the χ² test at
// the given critical value AND with ρ above rhoThreshold. Vertices with
// no surviving edges are dropped and ids are re-packed. AnnotateStats
// must have been called. The threshold tests run in parallel over edge
// ranges; the deterministic id re-packing stays sequential.
func (g *Graph) Prune(chi2Critical, rhoThreshold float64) *Graph {
	keep := make([]bool, len(g.Edges))
	g.forEachEdgeChunk(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := &g.Edges[i]
			keep[i] = e.Chi2 > chi2Critical && e.Rho > rhoThreshold
		}
	})
	out := &Graph{N: g.N, index: make(map[string]int32), par: g.par}
	remap := make(map[int32]int32)
	renumber := func(old int32) int32 {
		if id, ok := remap[old]; ok {
			return id
		}
		id := int32(len(out.Keywords))
		remap[old] = id
		out.Keywords = append(out.Keywords, g.Keywords[old])
		out.DocCount = append(out.DocCount, g.DocCount[old])
		out.index[g.Keywords[old]] = id
		return id
	}
	for i, e := range g.Edges {
		if !keep[i] {
			continue
		}
		ne := Edge{U: renumber(e.U), V: renumber(e.V), Count: e.Count, Chi2: e.Chi2, Rho: e.Rho}
		if ne.U > ne.V {
			ne.U, ne.V = ne.V, ne.U
		}
		out.Edges = append(out.Edges, ne)
	}
	slices.SortFunc(out.Edges, compareEdges)
	return out
}

// compareEdges orders edges by (U, V).
func compareEdges(a, b Edge) int {
	if a.U != b.U {
		return int(a.U) - int(b.U)
	}
	return int(a.V) - int(b.V)
}

// Adjacency materializes adjacency lists (neighbor ids per vertex).
func (g *Graph) Adjacency() [][]int32 {
	adj := make([][]int32, len(g.Keywords))
	for _, e := range g.Edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	return adj
}

// Correlated is one keyword correlated with a query keyword, with the
// strength of the association.
type Correlated struct {
	Keyword string
	Rho     float64
	Count   int64 // documents containing both
}

// StrongestCorrelations returns up to n keywords most strongly
// correlated with w, by descending ρ. The paper's introduction proposes
// exactly this as query refinement: "for a query keyword we may suggest
// the strongest correlation as a refinement". AnnotateStats must have
// been called.
func (g *Graph) StrongestCorrelations(w string, n int) []Correlated {
	id, ok := g.KeywordID(w)
	if !ok || n <= 0 {
		return nil
	}
	var out []Correlated
	for _, e := range g.Edges {
		var other int32
		switch id {
		case e.U:
			other = e.V
		case e.V:
			other = e.U
		default:
			continue
		}
		out = append(out, Correlated{Keyword: g.Keywords[other], Rho: e.Rho, Count: e.Count})
	}
	slices.SortFunc(out, func(a, b Correlated) int {
		if a.Rho != b.Rho {
			if a.Rho > b.Rho {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Keyword, b.Keyword)
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// EdgeBetween returns the edge joining keywords u and v, if present.
func (g *Graph) EdgeBetween(u, v string) (Edge, bool) {
	iu, ok := g.KeywordID(u)
	if !ok {
		return Edge{}, false
	}
	iv, ok := g.KeywordID(v)
	if !ok {
		return Edge{}, false
	}
	if iu > iv {
		iu, iv = iv, iu
	}
	i := sort.Search(len(g.Edges), func(i int) bool {
		e := g.Edges[i]
		return e.U > iu || (e.U == iu && e.V >= iv)
	})
	if i < len(g.Edges) && g.Edges[i].U == iu && g.Edges[i].V == iv {
		return g.Edges[i], true
	}
	return Edge{}, false
}
