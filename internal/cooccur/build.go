package cooccur

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"repro/internal/corpus"
	"repro/internal/extsort"
)

// BuildOptions configures graph construction.
type BuildOptions struct {
	// SortMemoryBudget bounds the byte size of each sorted run a shard
	// spills to the external sorter (and the sorter's own buffering),
	// so the sort layer's transient memory stays bounded independently
	// of MemBudget. Zero means runs are spilled whole.
	SortMemoryBudget int
	// MinPairCount drops triplets with A(u,v) below this value before
	// statistics are computed. The paper's graphs keep everything
	// (threshold 1); larger corpora benefit from dropping singleton
	// noise pairs early. Zero means 1.
	MinPairCount int64
	// Parallelism is the number of shard workers counting pairs (and
	// the width of the downstream merge, statistics and pruning
	// passes). Zero means GOMAXPROCS; 1 selects the fully sequential
	// path, preserved for ablation benchmarks.
	Parallelism int
	// MemBudget bounds the resident bytes of the pair-counting hash
	// tables, summed across shards. A shard whose share is exceeded
	// spills its table as a sorted run through internal/extsort; small
	// and medium intervals never spill and are aggregated entirely in
	// memory. Zero means DefaultMemBudget.
	MemBudget int
}

// DefaultMemBudget is the default total pair-table budget (256 MiB).
const DefaultMemBudget = 256 << 20

// Build constructs the keyword graph for the documents of intervals
// [from, to] of c (inclusive; pass the same value twice for a single
// day, as in Table 1).
//
// The output is canonical regardless of Parallelism and MemBudget:
// keywords are sorted lexicographically (ids are ranks in that order),
// DocCount is aligned with Keywords, and Edges is sorted by (U, V) with
// U < V. The parallel and sequential paths therefore produce identical
// graphs; the equivalence tests assert this byte for byte.
func Build(c *corpus.Collection, from, to int, opts BuildOptions) (*Graph, error) {
	return BuildCtx(context.Background(), c, from, to, opts)
}

// BuildCtx is Build with cancellation: the counting pass polls ctx
// every few thousand documents, the spill path hands ctx to the
// external sorter's merge loops, and the aggregation passes poll it per
// record batch, so a canceled build returns promptly instead of
// finishing the interval.
func BuildCtx(ctx context.Context, c *corpus.Collection, from, to int, opts BuildOptions) (*Graph, error) {
	if from < 0 || to >= len(c.Intervals) || from > to {
		return nil, fmt.Errorf("cooccur: interval range [%d,%d] outside collection of %d intervals", from, to, len(c.Intervals))
	}
	minCount := opts.MinPairCount
	if minCount <= 0 {
		minCount = 1
	}
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	memBudget := opts.MemBudget
	if memBudget <= 0 {
		memBudget = DefaultMemBudget
	}

	var docs []*corpus.Document
	for i := from; i <= to; i++ {
		for j := range c.Intervals[i].Docs {
			docs = append(docs, &c.Intervals[i].Docs[j])
		}
	}

	// Pass 1: the keyword dictionary. Ids are ranks in the sorted
	// vocabulary, making them (and everything derived from them)
	// independent of document partitioning.
	vocab := buildVocab(docs, par)
	index := make(map[string]int32, len(vocab))
	for i, w := range vocab {
		index[w] = int32(i)
	}
	g := &Graph{
		N:        int64(len(docs)),
		Keywords: vocab,
		DocCount: make([]int64, len(vocab)),
		index:    index,
		par:      par,
	}

	// Pass 2: sharded pair counting. Each worker owns one shard table;
	// a shard over its budget share spills a sorted run into the shared
	// external sorter.
	sorter := extsort.NewWithOptions(extsort.Options{
		MemoryBudget: opts.SortMemoryBudget,
		Parallelism:  par,
		Ctx:          ctx,
		// Every shard re-spills the interval's hot pairs on every spill;
		// folding equal keys during the sorter's grouped pre-merge keeps
		// the final merge (and aggregateSpilled's stream) proportional to
		// the number of distinct pairs, not the number of spills.
		Combine: combineSpillRecords,
	})
	// Error paths below may abandon the sorter after shards have
	// spilled; Discard removes its temp files then (and is a no-op
	// once aggregateSpilled's iterator has taken ownership).
	defer sorter.Discard()
	shards := make([]*buildShard, par)
	for i := range shards {
		shards[i] = &buildShard{
			table:      newPairTable(),
			budget:     memBudget / par,
			sorter:     sorter,
			sortBudget: opts.SortMemoryBudget,
			index:      index,
			ctx:        ctx,
		}
	}
	if par == 1 {
		if err := shards[0].processDocs(docs); err != nil {
			return nil, err
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, par)
		chunk := (len(docs) + par - 1) / par
		for w := 0; w < par; w++ {
			lo := w * chunk
			if lo >= len(docs) {
				break
			}
			hi := min(lo+chunk, len(docs))
			wg.Add(1)
			go func(w int, part []*corpus.Document) {
				defer wg.Done()
				errs[w] = shards[w].processDocs(part)
			}(w, docs[lo:hi])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Pass 3: aggregate shard tables into the canonical triplet list.
	spilled := false
	for _, sh := range shards {
		if sh.spilled {
			spilled = true
			break
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var err error
	if spilled {
		err = aggregateSpilled(ctx, g, shards, sorter, minCount)
	} else {
		err = aggregateInMemory(g, shards, par, minCount)
	}
	if err != nil {
		return nil, err
	}
	return g, nil
}

// buildVocab returns the sorted set of distinct keywords across docs.
func buildVocab(docs []*corpus.Document, par int) []string {
	collect := func(part []*corpus.Document) []string {
		set := make(map[string]struct{}, 1024)
		for _, d := range part {
			for _, w := range d.Keywords {
				set[w] = struct{}{}
			}
		}
		words := make([]string, 0, len(set))
		for w := range set {
			words = append(words, w)
		}
		slices.Sort(words)
		return words
	}
	if par == 1 || len(docs) < 2*par {
		return collect(docs)
	}
	chunk := (len(docs) + par - 1) / par
	nChunks := (len(docs) + chunk - 1) / chunk
	locals := make([][]string, nChunks)
	var wg sync.WaitGroup
	for slot := 0; slot < nChunks; slot++ {
		lo := slot * chunk
		hi := min(lo+chunk, len(docs))
		wg.Add(1)
		go func(slot int, part []*corpus.Document) {
			defer wg.Done()
			locals[slot] = collect(part)
		}(slot, docs[lo:hi])
	}
	wg.Wait()
	return mergeSortedUnique(locals)
}

// mergeSortedUnique merges sorted duplicate-free lists into one sorted
// duplicate-free list with a loop-min scan (the list count is the
// worker count, so a heap would be overkill).
func mergeSortedUnique(lists [][]string) []string {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]string, 0, total)
	pos := make([]int, len(lists))
	for {
		best := -1
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best < 0 || l[pos[i]] < lists[best][pos[best]] {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		w := lists[best][pos[best]]
		pos[best]++
		if len(out) == 0 || out[len(out)-1] != w {
			out = append(out, w)
		}
	}
}

// buildShard is one worker's counting state.
type buildShard struct {
	table      *pairTable
	budget     int
	sorter     *extsort.Sorter
	sortBudget int // max bytes per spilled run; 0 = whole table
	index      map[string]int32
	ctx        context.Context
	spilled    bool

	ids     []int32     // per-document keyword-id scratch
	scratch []pairEntry // spill extraction scratch
	recs    []string    // spill record scratch
	recBuf  []byte
}

// processDocs counts every pair (including the diagonal (u,u) entries
// that become A(u)) of each document into the shard table, spilling
// when the table outgrows the shard's budget share.
func (sh *buildShard) processDocs(docs []*corpus.Document) error {
	const pollEvery = 1024
	for di, d := range docs {
		if di%pollEvery == pollEvery-1 {
			if err := sh.ctx.Err(); err != nil {
				return err
			}
		}
		ids := sh.ids[:0]
		for _, w := range d.Keywords {
			ids = append(ids, sh.index[w])
		}
		sh.ids = ids
		for a := 0; a < len(ids); a++ {
			sh.table.add(pairKey(ids[a], ids[a]), 1)
			for b := a + 1; b < len(ids); b++ {
				sh.table.add(pairKey(ids[a], ids[b]), 1)
			}
		}
		if sh.table.entryBytes() >= sh.budget {
			if err := sh.spill(); err != nil {
				return err
			}
		}
	}
	return nil
}

// spill writes the table's entries as one sorted run and resets it.
func (sh *buildShard) spill() error {
	if sh.table.n == 0 {
		return nil
	}
	entries := sh.table.appendEntries(sh.scratch[:0])
	sh.scratch = entries[:0]
	sortEntries(entries)
	recs := sh.recs[:0]
	for _, e := range entries {
		sh.recBuf = appendSpillRecord(sh.recBuf[:0], e.key, e.count)
		recs = append(recs, string(sh.recBuf))
	}
	sh.recs = recs[:0]
	// Honor the sort-layer budget by splitting the sorted batch into
	// runs of bounded byte size; each slice is itself sorted, so every
	// piece is a valid run.
	start, runBytes := 0, 0
	for i, rec := range recs {
		if sh.sortBudget > 0 && runBytes > 0 && runBytes+len(rec)+1 > sh.sortBudget {
			if err := sh.sorter.AddSortedRun(recs[start:i]); err != nil {
				return err
			}
			start, runBytes = i, 0
		}
		runBytes += len(rec) + 1
	}
	if err := sh.sorter.AddSortedRun(recs[start:]); err != nil {
		return err
	}
	sh.table.reset()
	sh.spilled = true
	return nil
}

// aggregateSpilled drains every shard through the external sorter and
// folds the globally sorted record stream into the graph. Used whenever
// any shard spilled: the merged stream already interleaves the spilled
// runs, so the leftover in-memory tables just join it as final runs.
func aggregateSpilled(ctx context.Context, g *Graph, shards []*buildShard, sorter *extsort.Sorter, minCount int64) error {
	for _, sh := range shards {
		if err := sh.spill(); err != nil {
			return err
		}
	}
	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	defer it.Close()
	var (
		curKey   uint64
		curCount int64
		started  bool
		seen     int
	)
	emit := func() {
		u, v := splitPairKey(curKey)
		if u == v {
			g.DocCount[u] = curCount
		} else if curCount >= minCount {
			g.Edges = append(g.Edges, Edge{U: u, V: v, Count: curCount})
		}
	}
	const pollEvery = 4096
	for {
		if seen++; seen%pollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rec, ok := it.Next()
		if !ok {
			break
		}
		key, count, err := parseSpillRecord(rec)
		if err != nil {
			return err
		}
		if started && key == curKey {
			curCount += count
			continue
		}
		if started {
			emit()
		}
		curKey, curCount, started = key, count, true
	}
	if err := it.Err(); err != nil {
		return err
	}
	if started {
		emit()
	}
	return nil
}

// aggregateInMemory merges the shard tables without touching the sort
// path: the key space is range-partitioned by leading keyword id, every
// shard's entries are bucketed by range in parallel, and each range is
// then sorted and folded independently — ranges are disjoint and
// ascending, so concatenating their outputs yields Edges sorted by
// (U, V) with no global sort.
func aggregateInMemory(g *Graph, shards []*buildShard, par int, minCount int64) error {
	v := len(g.Keywords)
	if v == 0 {
		return nil
	}
	nRanges := par * 4
	if nRanges > v {
		nRanges = v
	}
	rangeOf := func(key uint64) int {
		u := key >> 32
		return int(u * uint64(nRanges) / uint64(v))
	}

	// Bucket each shard's entries by range, in parallel across shards.
	buckets := make([][][]pairEntry, len(shards))
	var wg sync.WaitGroup
	for si, sh := range shards {
		wg.Add(1)
		go func(si int, sh *buildShard) {
			defer wg.Done()
			counts := make([]int, nRanges)
			t := sh.table
			for _, k := range t.slots {
				if k != 0 {
					counts[rangeOf(k-1)]++
				}
			}
			byRange := make([][]pairEntry, nRanges)
			for r, c := range counts {
				if c > 0 {
					byRange[r] = make([]pairEntry, 0, c)
				}
			}
			for i, k := range t.slots {
				if k != 0 {
					r := rangeOf(k - 1)
					byRange[r] = append(byRange[r], pairEntry{key: k - 1, count: t.counts[i]})
				}
			}
			buckets[si] = byRange
		}(si, sh)
	}
	wg.Wait()

	// Fold each range: gather entries from every shard, sort by key,
	// aggregate equal keys. DocCount writes are disjoint across ranges.
	edgesByRange := make([][]Edge, nRanges)
	rangeCh := make(chan int)
	workers := min(par, nRanges)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for r := range rangeCh {
				total := 0
				for si := range buckets {
					total += len(buckets[si][r])
				}
				if total == 0 {
					continue
				}
				gathered := make([]pairEntry, 0, total)
				for si := range buckets {
					gathered = append(gathered, buckets[si][r]...)
				}
				sortEntries(gathered)
				var edges []Edge
				for i := 0; i < len(gathered); {
					j := i + 1
					count := gathered[i].count
					for j < len(gathered) && gathered[j].key == gathered[i].key {
						count += gathered[j].count
						j++
					}
					u, v := splitPairKey(gathered[i].key)
					if u == v {
						g.DocCount[u] = count
					} else if count >= minCount {
						edges = append(edges, Edge{U: u, V: v, Count: count})
					}
					i = j
				}
				edgesByRange[r] = edges
			}
		}()
	}
	for r := 0; r < nRanges; r++ {
		rangeCh <- r
	}
	close(rangeCh)
	wg.Wait()

	total := 0
	for _, es := range edgesByRange {
		total += len(es)
	}
	if total == 0 {
		return nil
	}
	out := make([]Edge, 0, total)
	for _, es := range edgesByRange {
		out = append(out, es...)
	}
	g.Edges = out
	return nil
}
