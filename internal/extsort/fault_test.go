package extsort

import (
	"context"
	"errors"
	"fmt"
	"os"
	"syscall"
	"testing"

	"repro/internal/faultfs"
)

// recorderFS remembers the temp dirs it hands out so tests can assert
// they are gone after cleanup.
type recorderFS struct {
	faultfs.FS
	dirs []string
}

func (r *recorderFS) MkdirTemp(dir, pattern string) (string, error) {
	d, err := r.FS.MkdirTemp(dir, pattern)
	if err == nil {
		r.dirs = append(r.dirs, d)
	}
	return d, err
}

// TestFaultSpillENOSPCDiscardCleansTempDir proves the cleanup contract
// under a full disk: a spill that dies with ENOSPC must not orphan the
// run directory once the sorter is discarded.
func TestFaultSpillENOSPCDiscardCleansTempDir(t *testing.T) {
	in := faultfs.NewInjector(nil, 1)
	in.AddRule(faultfs.Rule{Op: faultfs.OpWrite, Path: "run-", Err: syscall.ENOSPC})
	rec := &recorderFS{FS: in}
	s := NewWithOptions(Options{MemoryBudget: 64, FS: rec})
	var err error
	for i := 0; i < 1000 && err == nil; i++ {
		err = s.Add(fmt.Sprintf("record-%06d", i))
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Add under injected ENOSPC = %v, want ENOSPC", err)
	}
	if len(rec.dirs) != 1 {
		t.Fatalf("sorter created %d temp dirs, want 1", len(rec.dirs))
	}
	s.Discard()
	if _, err := os.Stat(rec.dirs[0]); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp dir %s survives Discard after ENOSPC (stat err: %v)", rec.dirs[0], err)
	}
}

// cancelOnCreateFS cancels a context when the Nth file is created,
// modelling an operator abandoning a build mid-spill.
type cancelOnCreateFS struct {
	faultfs.FS
	cancel  context.CancelFunc
	creates int
	onNth   int
}

func (c *cancelOnCreateFS) Create(name string) (faultfs.File, error) {
	f, err := c.FS.Create(name)
	if err == nil {
		if c.creates++; c.creates == c.onNth {
			c.cancel()
		}
	}
	return f, err
}

// TestFaultCancellationDiscardCleansTempDir proves that a sort
// cancelled between spills removes its run directory: the next
// writeRun observes the dead context and Discard sweeps the dir.
func TestFaultCancellationDiscardCleansTempDir(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := &recorderFS{FS: faultfs.OS()}
	cfs := &cancelOnCreateFS{FS: rec, cancel: cancel, onNth: 2}
	s := NewWithOptions(Options{MemoryBudget: 64, FS: cfs, Ctx: ctx})
	var err error
	for i := 0; i < 1000 && err == nil; i++ {
		err = s.Add(fmt.Sprintf("record-%06d", i))
	}
	if err == nil {
		_, err = s.Sort()
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sort = %v, want context.Canceled", err)
	}
	s.Discard()
	for _, d := range rec.dirs {
		if _, err := os.Stat(d); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("temp dir %s survives Discard after cancellation (stat err: %v)", d, err)
		}
	}
}
