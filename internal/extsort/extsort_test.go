package extsort

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func drain(t *testing.T, it *Iterator) []string {
	t.Helper()
	var out []string
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	if err := it.Err(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return out
}

func sortThrough(t *testing.T, budget int, recs []string) []string {
	t.Helper()
	s := New(budget)
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			t.Fatalf("Add(%q): %v", r, err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	return drain(t, it)
}

func TestInMemorySort(t *testing.T) {
	got := sortThrough(t, 1<<20, []string{"pear", "apple", "orange", "apple"})
	want := []string{"apple", "apple", "orange", "pear"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestSpillingSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var recs []string
	for i := 0; i < 5000; i++ {
		recs = append(recs, fmt.Sprintf("key-%06d", rng.Intn(2000)))
	}
	s := New(256) // force many spills
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if s.Stats().Runs == 0 {
		t.Fatal("expected spills with a 256-byte budget")
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	got := drain(t, it)
	want := append([]string(nil), recs...)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEmptySort(t *testing.T) {
	got := sortThrough(t, 1024, nil)
	if len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestRejectsNewlines(t *testing.T) {
	s := New(1024)
	if err := s.Add("bad\nrecord"); err == nil {
		t.Fatal("Add accepted a record with a newline")
	}
}

func TestSortTwiceFails(t *testing.T) {
	s := New(1024)
	it, err := s.Sort()
	if err != nil {
		t.Fatalf("first Sort: %v", err)
	}
	it.Close()
	if _, err := s.Sort(); err == nil {
		t.Fatal("second Sort succeeded")
	}
	if err := s.Add("x"); err == nil {
		t.Fatal("Add after Sort succeeded")
	}
}

func TestStatsCounting(t *testing.T) {
	s := New(8)
	for _, r := range []string{"aaaa", "bbbb", "cccc"} {
		if err := s.Add(r); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	st := s.Stats()
	if st.Records != 3 {
		t.Errorf("Records = %d, want 3", st.Records)
	}
	if st.Runs == 0 {
		t.Error("expected at least one spill run")
	}
	if st.SpilledBytes == 0 {
		t.Error("expected spilled bytes > 0")
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	it.Close()
}

// Property: for any record multiset and any small budget, the output is a
// sorted permutation of the input. Runs both spilling and in-memory paths.
func TestSortedPermutationProperty(t *testing.T) {
	f := func(raw []string, budgetSeed uint8) bool {
		recs := make([]string, len(raw))
		for i, r := range raw {
			// Sanitize: strip newlines, cap length.
			b := []byte(r)
			for j := range b {
				if b[j] == '\n' {
					b[j] = '_'
				}
			}
			if len(b) > 20 {
				b = b[:20]
			}
			recs[i] = string(b)
		}
		budget := 1 + int(budgetSeed)%64
		s := New(budget)
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				return false
			}
		}
		it, err := s.Sort()
		if err != nil {
			return false
		}
		var got []string
		for {
			rec, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, rec)
		}
		if it.Err() != nil || it.Close() != nil {
			return false
		}
		want := append([]string(nil), recs...)
		sort.Strings(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSpillingSort(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	recs := make([]string, 20000)
	for i := range recs {
		recs[i] = fmt.Sprintf("pair %08d %08d", rng.Intn(4000), rng.Intn(4000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(64 << 10)
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := it.Next(); !ok {
				break
			}
		}
		it.Close()
	}
}
