// Package extsort implements external-memory merge sort over string
// records.
//
// Section 3 of the paper sorts the file of emitted keyword pairs
// "lexicography (using external memory merge sort) such that all
// identical keyword pairs appear together". This package provides that
// primitive: records are buffered in memory up to a budget, spilled as
// sorted runs to temporary files, and merged with a k-way heap merge.
// The same code path is exercised whether or not a spill happens, so
// tests can force tiny budgets while production callers use large ones.
package extsort

import (
	"bufio"
	"container/heap"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Stats describes the I/O behaviour of one sort.
type Stats struct {
	// Records is the number of records added.
	Records int
	// Runs is the number of sorted runs spilled to disk. Zero means the
	// sort completed entirely in memory.
	Runs int
	// SpilledBytes counts bytes written to run files.
	SpilledBytes int64
}

// Sorter accumulates records and then streams them back in sorted order.
// The zero value is not usable; call New.
type Sorter struct {
	dir       string // temp dir holding run files; "" until first spill
	maxBytes  int    // in-memory budget before spilling
	buf       []string
	bufBytes  int
	runFiles  []string
	stats     Stats
	finalized bool
}

// DefaultMemoryBudget is the in-memory buffer budget used when New is
// given a non-positive budget (64 MiB).
const DefaultMemoryBudget = 64 << 20

// New returns a Sorter that buffers up to maxBytes of record data in
// memory before spilling a sorted run to a temporary file.
func New(maxBytes int) *Sorter {
	if maxBytes <= 0 {
		maxBytes = DefaultMemoryBudget
	}
	return &Sorter{maxBytes: maxBytes}
}

// Add appends one record. Records must not contain '\n'.
func (s *Sorter) Add(rec string) error {
	if s.finalized {
		return fmt.Errorf("extsort: Add after Sort")
	}
	for i := 0; i < len(rec); i++ {
		if rec[i] == '\n' {
			return fmt.Errorf("extsort: record contains newline: %q", rec)
		}
	}
	s.buf = append(s.buf, rec)
	s.bufBytes += len(rec)
	s.stats.Records++
	if s.bufBytes >= s.maxBytes {
		return s.spill()
	}
	return nil
}

func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	if s.dir == "" {
		dir, err := os.MkdirTemp("", "extsort-")
		if err != nil {
			return fmt.Errorf("extsort: create temp dir: %w", err)
		}
		s.dir = dir
	}
	sort.Strings(s.buf)
	name := filepath.Join(s.dir, fmt.Sprintf("run-%06d", len(s.runFiles)))
	f, err := os.Create(name)
	if err != nil {
		return fmt.Errorf("extsort: create run file: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range s.buf {
		n, err := w.WriteString(rec)
		if err == nil {
			err = w.WriteByte('\n')
		}
		if err != nil {
			f.Close()
			return fmt.Errorf("extsort: write run: %w", err)
		}
		s.stats.SpilledBytes += int64(n) + 1
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("extsort: flush run: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("extsort: close run: %w", err)
	}
	s.runFiles = append(s.runFiles, name)
	s.stats.Runs++
	s.buf = s.buf[:0]
	s.bufBytes = 0
	return nil
}

// Sort finalizes the sorter and returns an iterator over all records in
// ascending order. The caller must Close the iterator, which also
// removes any temporary files.
func (s *Sorter) Sort() (*Iterator, error) {
	if s.finalized {
		return nil, fmt.Errorf("extsort: Sort called twice")
	}
	s.finalized = true
	if len(s.runFiles) == 0 {
		// Pure in-memory path.
		sort.Strings(s.buf)
		return &Iterator{mem: s.buf}, nil
	}
	// Spill the tail so the merge only deals with files.
	if err := s.spill(); err != nil {
		return nil, err
	}
	it := &Iterator{dir: s.dir}
	for _, name := range s.runFiles {
		f, err := os.Open(name)
		if err != nil {
			it.Close()
			return nil, fmt.Errorf("extsort: open run: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		src := &runSource{f: f, sc: sc}
		if src.advance() {
			it.h = append(it.h, src)
		} else {
			src.close()
			if src.err != nil {
				it.Close()
				return nil, src.err
			}
		}
	}
	heap.Init(&it.h)
	return it, nil
}

// Stats returns I/O statistics for the sort so far.
func (s *Sorter) Stats() Stats { return s.stats }

// runSource reads one sorted run file.
type runSource struct {
	f    *os.File
	sc   *bufio.Scanner
	cur  string
	err  error
	done bool
}

func (r *runSource) advance() bool {
	if r.sc.Scan() {
		r.cur = r.sc.Text()
		return true
	}
	r.err = r.sc.Err()
	r.done = true
	return false
}

func (r *runSource) close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// mergeHeap is a min-heap of run sources ordered by current record.
type mergeHeap []*runSource

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].cur < h[j].cur }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*runSource)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Iterator yields records in sorted order.
type Iterator struct {
	// In-memory path.
	mem []string
	pos int
	// Merge path.
	dir string
	h   mergeHeap
	err error
}

// Next returns the next record. ok is false when the stream is
// exhausted or an error occurred; check Err afterwards.
func (it *Iterator) Next() (rec string, ok bool) {
	if it.err != nil {
		return "", false
	}
	if it.dir == "" {
		if it.pos >= len(it.mem) {
			return "", false
		}
		rec = it.mem[it.pos]
		it.pos++
		return rec, true
	}
	if len(it.h) == 0 {
		return "", false
	}
	src := it.h[0]
	rec = src.cur
	if src.advance() {
		heap.Fix(&it.h, 0)
	} else {
		if src.err != nil {
			it.err = src.err
			return "", false
		}
		src.close()
		heap.Pop(&it.h)
	}
	return rec, true
}

// Err returns the first error encountered while iterating.
func (it *Iterator) Err() error { return it.err }

// Close releases run files and the temporary directory.
func (it *Iterator) Close() error {
	for _, src := range it.h {
		src.close()
	}
	it.h = nil
	if it.dir != "" {
		if err := os.RemoveAll(it.dir); err != nil {
			return fmt.Errorf("extsort: remove temp dir: %w", err)
		}
		it.dir = ""
	}
	return nil
}
