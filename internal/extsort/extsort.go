// Package extsort implements external-memory merge sort over string
// records.
//
// Section 3 of the paper sorts the file of emitted keyword pairs
// "lexicography (using external memory merge sort) such that all
// identical keyword pairs appear together". This package provides that
// primitive: records are buffered in memory up to a budget, spilled as
// sorted runs to temporary files, and merged with a k-way heap merge.
// The same code path is exercised whether or not a spill happens, so
// tests can force tiny budgets while production callers use large ones.
//
// Two extensions serve the sharded keyword-graph pipeline
// (internal/cooccur, see DESIGN.md):
//
//   - AddSortedRun accepts an already-sorted batch of records and spills
//     it directly as a run, bypassing the Add buffer. It is safe for
//     concurrent use, so parallel shards can spill into one Sorter.
//   - When the number of runs exceeds the merge fan-in, groups of runs
//     are pre-merged concurrently (one goroutine per group, capped by
//     Options.Parallelism) into longer runs before the final streaming
//     heap merge, keeping the final merge cheap even after thousands of
//     tiny spills.
//   - Options.Combine lets those pre-merges fold aggregatable records
//     (same key, combinable payloads) into one as they stream by, so
//     hot keys that every producer re-spills collapse before the final
//     merge instead of being carried to the consumer once per spill.
//   - Options.Binary switches run files from newline-terminated text
//     records to length-prefixed binary records (uvarint length +
//     payload). Binary records may contain any byte, including '\n',
//     and skip the per-record newline scan and the ParseX/FormatX
//     round-trips text encodings force on callers; the record order is
//     plain bytewise comparison either way.
//
// Long-running merges honor Options.Ctx: the pre-merge and streaming
// merge loops poll for cancellation every few thousand records, so an
// abandoned build releases the CPU and its temp files promptly.
//
// File readers and writers draw their buffers from sync.Pools so
// repeated sorts do not reallocate I/O buffers.
package extsort

import (
	"bufio"
	"container/heap"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"sync"

	"repro/internal/faultfs"
)

// Stats describes the I/O behaviour of one sort.
type Stats struct {
	// Records is the number of records added.
	Records int
	// Runs is the number of sorted runs spilled to disk. Zero means the
	// sort completed entirely in memory.
	Runs int
	// SpilledBytes counts bytes written to run files (pre-merge passes
	// excluded; this measures what the producers spilled).
	SpilledBytes int64
	// Combined counts records collapsed into their predecessor by
	// Options.Combine during pre-merge passes. Zero when no Combine is
	// set or no pre-merge ran.
	Combined int64
}

// Options configures a Sorter.
type Options struct {
	// MemoryBudget is the in-memory buffer budget before Add spills a
	// sorted run. Non-positive means DefaultMemoryBudget.
	MemoryBudget int
	// Parallelism caps the goroutines used to pre-merge runs when their
	// count exceeds FanIn. Non-positive means GOMAXPROCS.
	Parallelism int
	// FanIn is the maximum number of runs the final streaming merge
	// reads at once; more runs than this are first pre-merged in
	// parallel groups of FanIn. Non-positive means DefaultFanIn.
	FanIn int
	// Binary stores run records length-prefixed (uvarint + payload)
	// instead of newline-terminated, allowing arbitrary record bytes
	// and skipping the newline validation scan.
	Binary bool
	// Ctx, when non-nil, cancels long merge loops: pre-merge passes and
	// the streaming merge poll it periodically and abort with its
	// error. Nil means no cancellation.
	Ctx context.Context
	// Combine, when non-nil, folds aggregatable records together during
	// the grouped pre-merge of spilled runs: when record next follows
	// record acc in merge order, Combine(acc, next) may return a
	// replacement for both and true, or ("", false) to keep them
	// separate. Sorts whose producers spill many runs of repeated keys
	// (e.g. pair-count spills, where each shard re-emits the same hot
	// keys every spill) collapse duplicates early, shrinking every
	// subsequent merge pass instead of carrying the repeats to the
	// consumer.
	//
	// The combined record must sort exactly like the records it
	// replaces relative to every other key (same key prefix, only the
	// aggregated payload may differ), or the merge order breaks.
	// Combine must be safe for concurrent use: pre-merge groups run in
	// parallel. The final streaming merge does not apply Combine, so
	// consumers must still aggregate adjacent equal-key records — with
	// Combine the stream just contains far fewer of them.
	Combine func(acc, next string) (string, bool)
	// FS is the filesystem beneath run files. Nil means the OS
	// passthrough; tests substitute a faultfs.Injector to prove the
	// sorter cleans up its spills under injected ENOSPC/EIO faults.
	FS faultfs.FS
}

// ctxErr reports the context's error if o.Ctx is set and done.
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	default:
		return nil
	}
}

// Sorter accumulates records and then streams them back in sorted order.
// The zero value is not usable; call New or NewWithOptions.
//
// Add is intended for a single producing goroutine; AddSortedRun may be
// called from many goroutines concurrently (also concurrently with one
// Add producer).
type Sorter struct {
	opts       Options
	buf        []string
	bufBytes   int
	addRecords int // Add-path record count; owned by the producer

	mu            sync.Mutex // guards dir, runFiles, stats, finalized
	dir           string     // temp dir holding run files; "" until first spill
	runFiles      []string
	stats         Stats
	finalized     bool
	iteratorTaken bool
}

// DefaultMemoryBudget is the in-memory buffer budget used when New is
// given a non-positive budget (64 MiB).
const DefaultMemoryBudget = 64 << 20

// DefaultFanIn is the maximum fan-in of the final streaming merge.
const DefaultFanIn = 16

// New returns a Sorter that buffers up to maxBytes of record data in
// memory before spilling a sorted run to a temporary file.
func New(maxBytes int) *Sorter {
	return NewWithOptions(Options{MemoryBudget: maxBytes})
}

// NewWithOptions returns a Sorter configured by opts.
func NewWithOptions(opts Options) *Sorter {
	if opts.MemoryBudget <= 0 {
		opts.MemoryBudget = DefaultMemoryBudget
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.FanIn <= 1 {
		opts.FanIn = DefaultFanIn
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS()
	}
	return &Sorter{opts: opts}
}

// Add appends one record. Records must not contain '\n' unless the
// sorter uses Options.Binary.
//
// Add is single-producer and never concurrent with Sort, so the hot
// path reads finalized and counts records without taking the mutex;
// only spills synchronize.
func (s *Sorter) Add(rec string) error {
	if s.finalized {
		return fmt.Errorf("extsort: Add after Sort")
	}
	if !s.opts.Binary && strings.ContainsRune(rec, '\n') {
		return fmt.Errorf("extsort: record contains newline: %q", rec)
	}
	s.buf = append(s.buf, rec)
	s.bufBytes += len(rec)
	s.addRecords++
	if s.bufBytes >= s.opts.MemoryBudget {
		return s.spill()
	}
	return nil
}

// AddSortedRun spills recs, which must already be in ascending order, as
// one run. The records are written out immediately; recs may be reused
// by the caller afterwards. Safe for concurrent use. Records must not
// contain '\n' unless the sorter uses Options.Binary.
func (s *Sorter) AddSortedRun(recs []string) error {
	if s.isFinalized() {
		return fmt.Errorf("extsort: AddSortedRun after Sort")
	}
	if len(recs) == 0 {
		return nil
	}
	for i, rec := range recs {
		if !s.opts.Binary && strings.ContainsRune(rec, '\n') {
			return fmt.Errorf("extsort: record contains newline: %q", rec)
		}
		if i > 0 && recs[i-1] > rec {
			return fmt.Errorf("extsort: AddSortedRun records out of order at %d (%q > %q)", i, recs[i-1], rec)
		}
	}
	if err := s.writeRun(recs); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Records += len(recs)
	s.mu.Unlock()
	return nil
}

func (s *Sorter) isFinalized() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.finalized
}

func (s *Sorter) spill() error {
	if len(s.buf) == 0 {
		return nil
	}
	slices.Sort(s.buf)
	if err := s.writeRun(s.buf); err != nil {
		return err
	}
	s.buf = s.buf[:0]
	s.bufBytes = 0
	return nil
}

// tempDir lazily creates the run directory. Callers must not hold mu.
func (s *Sorter) tempDir() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		dir, err := s.opts.FS.MkdirTemp("", "extsort-")
		if err != nil {
			return "", fmt.Errorf("extsort: create temp dir: %w", err)
		}
		s.dir = dir
	}
	return s.dir, nil
}

// registerRun reserves the next run filename.
func (s *Sorter) registerRun(dir string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	name := filepath.Join(dir, fmt.Sprintf("run-%06d", len(s.runFiles)))
	s.runFiles = append(s.runFiles, name)
	s.stats.Runs++
	return name
}

// writeRun streams one sorted batch to a fresh run file, framed per
// the sorter's record format (newline-terminated text or
// length-prefixed binary).
func (s *Sorter) writeRun(recs []string) error {
	if err := s.opts.ctxErr(); err != nil {
		return err
	}
	dir, err := s.tempDir()
	if err != nil {
		return err
	}
	name := s.registerRun(dir)
	f, err := s.opts.FS.Create(name)
	if err != nil {
		return fmt.Errorf("extsort: create run file: %w", err)
	}
	w := getWriter(f)
	var written int64
	var lenBuf []byte
	for _, rec := range recs {
		n, err := writeRecord(w, rec, s.opts.Binary, &lenBuf)
		if err != nil {
			putWriter(w)
			f.Close()
			return fmt.Errorf("extsort: write run: %w", err)
		}
		written += int64(n)
	}
	err = w.Flush()
	putWriter(w)
	if err != nil {
		f.Close()
		return fmt.Errorf("extsort: flush run: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("extsort: close run: %w", err)
	}
	s.mu.Lock()
	s.stats.SpilledBytes += written
	s.mu.Unlock()
	return nil
}

// Sort finalizes the sorter and returns an iterator over all records in
// ascending order. The caller must Close the iterator, which also
// removes any temporary files. Sort must not be called concurrently
// with Add or AddSortedRun.
func (s *Sorter) Sort() (*Iterator, error) {
	s.mu.Lock()
	if s.finalized {
		s.mu.Unlock()
		return nil, fmt.Errorf("extsort: Sort called twice")
	}
	s.finalized = true
	spilled := len(s.runFiles) > 0
	s.mu.Unlock()

	if !spilled {
		// Pure in-memory path.
		slices.Sort(s.buf)
		return &Iterator{mem: s.buf}, nil
	}
	// Spill the tail so the merge only deals with files.
	if len(s.buf) > 0 {
		slices.Sort(s.buf)
		if err := s.writeRun(s.buf); err != nil {
			return nil, err
		}
		s.buf = nil
	}
	runs := s.runFiles
	// Pre-merge in parallel until the final merge's fan-in is modest.
	for len(runs) > s.opts.FanIn {
		if err := s.opts.ctxErr(); err != nil {
			s.opts.FS.RemoveAll(s.dir)
			return nil, err
		}
		merged, err := s.preMerge(runs)
		if err != nil {
			s.opts.FS.RemoveAll(s.dir)
			return nil, err
		}
		runs = merged
	}
	it := &Iterator{dir: s.dir, fs: s.opts.FS}
	for _, name := range runs {
		src, err := openRunSource(name, s.opts.Binary, s.opts.FS)
		if err != nil {
			it.Close()
			return nil, err
		}
		if src.advance() {
			it.h = append(it.h, src)
		} else {
			src.close()
			if src.err != nil {
				it.Close()
				return nil, src.err
			}
		}
	}
	heap.Init(&it.h)
	s.mu.Lock()
	s.iteratorTaken = true
	s.mu.Unlock()
	return it, nil
}

// Discard releases the sorter's temporary files when its iterator was
// never obtained — the cleanup for error paths that abandon a sorter
// after spills. Once Sort has succeeded the Iterator owns the files
// (Close removes them) and Discard is a no-op. Safe to call more than
// once; afterwards the sorter is finalized.
func (s *Sorter) Discard() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finalized = true
	if s.iteratorTaken {
		return
	}
	if s.dir != "" {
		s.opts.FS.RemoveAll(s.dir)
		s.dir = ""
		s.runFiles = nil
	}
}

// preMerge merges groups of up to FanIn runs concurrently, each group
// into one longer run, and removes the source files. Group g holds
// runs[g*FanIn : (g+1)*FanIn], so the relative order of records across
// the returned files is preserved for the final merge.
func (s *Sorter) preMerge(runs []string) ([]string, error) {
	fanIn := s.opts.FanIn
	groups := (len(runs) + fanIn - 1) / fanIn
	out := make([]string, groups)
	errs := make([]error, groups)
	sem := make(chan struct{}, s.opts.Parallelism)
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		lo, hi := g*fanIn, (g+1)*fanIn
		if hi > len(runs) {
			hi = len(runs)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(g int, group []string) {
			defer wg.Done()
			defer func() { <-sem }()
			var combined int64
			out[g], combined, errs[g] = mergeRuns(s.dir, fmt.Sprintf("merge-%06d-%06d", len(runs), g), group, s.opts)
			if combined > 0 {
				s.mu.Lock()
				s.stats.Combined += combined
				s.mu.Unlock()
			}
		}(g, runs[lo:hi])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// mergeRuns streams the heap merge of the given run files into a single
// new run file and deletes the inputs, folding aggregatable duplicates
// with opts.Combine along the way (combined reports how many records
// were collapsed). The merge loop polls opts.Ctx every ctxPollEvery
// records so a canceled build stops burning I/O mid-merge.
func mergeRuns(dir, name string, runs []string, opts Options) (path string, combined int64, err error) {
	if len(runs) == 1 {
		return runs[0], 0, nil
	}
	var h mergeHeap
	closeAll := func() {
		for _, src := range h {
			src.close()
		}
	}
	for _, rn := range runs {
		src, err := openRunSource(rn, opts.Binary, opts.FS)
		if err != nil {
			closeAll()
			return "", 0, err
		}
		if src.advance() {
			h = append(h, src)
		} else {
			src.close()
			if src.err != nil {
				closeAll()
				return "", 0, src.err
			}
		}
	}
	heap.Init(&h)
	path = filepath.Join(dir, name)
	f, err := opts.FS.Create(path)
	if err != nil {
		closeAll()
		return "", 0, fmt.Errorf("extsort: create merged run: %w", err)
	}
	w := getWriter(f)
	fail := func(err error) (string, int64, error) {
		putWriter(w)
		f.Close()
		closeAll()
		return "", 0, err
	}
	var lenBuf []byte
	var sinceCheck int
	// With Combine, one record is held back (pending) instead of being
	// written immediately: the next record in merge order either folds
	// into it or flushes it. Without Combine every record is written as
	// it is popped, exactly as before.
	var pending string
	var havePending bool
	emit := func(rec string) error {
		if opts.Combine == nil {
			_, err := writeRecord(w, rec, opts.Binary, &lenBuf)
			return err
		}
		if havePending {
			if merged, ok := opts.Combine(pending, rec); ok {
				pending = merged
				combined++
				return nil
			}
			if _, err := writeRecord(w, pending, opts.Binary, &lenBuf); err != nil {
				return err
			}
		}
		pending, havePending = rec, true
		return nil
	}
	for len(h) > 0 {
		if sinceCheck++; sinceCheck >= ctxPollEvery {
			sinceCheck = 0
			if err := opts.ctxErr(); err != nil {
				return fail(err)
			}
		}
		src := h[0]
		if err := emit(src.cur); err != nil {
			return fail(fmt.Errorf("extsort: write merged run: %w", err))
		}
		if src.advance() {
			heap.Fix(&h, 0)
		} else {
			if src.err != nil {
				return fail(src.err)
			}
			src.close()
			heap.Pop(&h)
		}
	}
	if havePending {
		if _, err := writeRecord(w, pending, opts.Binary, &lenBuf); err != nil {
			return fail(fmt.Errorf("extsort: write merged run: %w", err))
		}
	}
	err = w.Flush()
	putWriter(w)
	if err != nil {
		f.Close()
		return "", 0, fmt.Errorf("extsort: flush merged run: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", 0, fmt.Errorf("extsort: close merged run: %w", err)
	}
	for _, rn := range runs {
		opts.FS.Remove(rn)
	}
	return path, combined, nil
}

// Stats returns I/O statistics for the sort so far. Like Sort, it must
// not be called concurrently with Add.
func (s *Sorter) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Records += s.addRecords
	return st
}

// --- pooled buffered I/O ---

const ioBufSize = 256 << 10

// ctxPollEvery is the record stride between cancellation polls inside
// merge loops: rare enough to stay off the hot path, frequent enough
// that cancellation lands within microseconds of work.
const ctxPollEvery = 4096

// writeRecord frames one record: uvarint length + payload in binary
// mode, the record + '\n' in text mode. Returns the bytes written.
// *lenBuf is reused across calls for the uvarint scratch.
func writeRecord(w *bufio.Writer, rec string, bin bool, lenBuf *[]byte) (int, error) {
	if !bin {
		n, err := w.WriteString(rec)
		if err == nil {
			err = w.WriteByte('\n')
		}
		return n + 1, err
	}
	b := binary.AppendUvarint((*lenBuf)[:0], uint64(len(rec)))
	*lenBuf = b
	if _, err := w.Write(b); err != nil {
		return 0, err
	}
	n, err := w.WriteString(rec)
	return len(b) + n, err
}

var writerPool = sync.Pool{
	New: func() any { return bufio.NewWriterSize(io.Discard, ioBufSize) },
}

func getWriter(w io.Writer) *bufio.Writer {
	bw := writerPool.Get().(*bufio.Writer)
	bw.Reset(w)
	return bw
}

func putWriter(bw *bufio.Writer) {
	bw.Reset(io.Discard)
	writerPool.Put(bw)
}

var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, ioBufSize) },
}

// runSource reads one sorted run file (text or binary framing).
type runSource struct {
	f    faultfs.File
	br   *bufio.Reader
	bin  bool
	buf  []byte // binary-mode payload scratch
	cur  string
	err  error
	done bool
}

func openRunSource(name string, bin bool, fs faultfs.FS) (*runSource, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, fmt.Errorf("extsort: open run: %w", err)
	}
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(f)
	return &runSource{f: f, br: br, bin: bin}, nil
}

func (r *runSource) advance() bool {
	if r.bin {
		return r.advanceBinary()
	}
	line, err := r.br.ReadString('\n')
	if err == nil {
		r.cur = line[:len(line)-1]
		return true
	}
	if err == io.EOF {
		if len(line) > 0 {
			// Final record without trailing newline (not produced by our
			// writers, but tolerated).
			r.cur = line
			return true
		}
	} else {
		r.err = err
	}
	r.done = true
	return false
}

// advanceBinary reads one length-prefixed record.
func (r *runSource) advanceBinary() bool {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err != io.EOF {
			r.err = fmt.Errorf("extsort: read run record length: %w", err)
		}
		r.done = true
		return false
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	buf := r.buf[:n]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		r.err = fmt.Errorf("extsort: read run record: %w", err)
		r.done = true
		return false
	}
	r.cur = string(buf)
	return true
}

func (r *runSource) close() {
	if r.br != nil {
		r.br.Reset(nil)
		readerPool.Put(r.br)
		r.br = nil
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// mergeHeap is a min-heap of run sources ordered by current record.
type mergeHeap []*runSource

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].cur < h[j].cur }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*runSource)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Iterator yields records in sorted order.
type Iterator struct {
	// In-memory path.
	mem []string
	pos int
	// Merge path.
	dir string
	fs  faultfs.FS
	h   mergeHeap
	err error
}

// Next returns the next record. ok is false when the stream is
// exhausted or an error occurred; check Err afterwards.
func (it *Iterator) Next() (rec string, ok bool) {
	if it.err != nil {
		return "", false
	}
	if it.dir == "" {
		if it.pos >= len(it.mem) {
			return "", false
		}
		rec = it.mem[it.pos]
		it.pos++
		return rec, true
	}
	if len(it.h) == 0 {
		return "", false
	}
	src := it.h[0]
	rec = src.cur
	if src.advance() {
		heap.Fix(&it.h, 0)
	} else {
		if src.err != nil {
			it.err = src.err
			return "", false
		}
		src.close()
		heap.Pop(&it.h)
	}
	return rec, true
}

// Err returns the first error encountered while iterating.
func (it *Iterator) Err() error { return it.err }

// Close releases run files and the temporary directory.
func (it *Iterator) Close() error {
	for _, src := range it.h {
		src.close()
	}
	it.h = nil
	if it.dir != "" {
		if err := it.fs.RemoveAll(it.dir); err != nil {
			return fmt.Errorf("extsort: remove temp dir: %w", err)
		}
		it.dir = ""
	}
	return nil
}
