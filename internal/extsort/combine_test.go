package extsort

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// combineRec is the test record shape: "<4-digit key> <count>". The
// fixed-width key prefix makes record order equal key order, mirroring
// the cooccur spill codec.
func combineRec(key, count int) string {
	return fmt.Sprintf("%04d %d", key, count)
}

func parseCombineRec(t *testing.T, rec string) (string, int) {
	t.Helper()
	k, v, ok := strings.Cut(rec, " ")
	if !ok {
		t.Fatalf("malformed record %q", rec)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		t.Fatalf("malformed count in %q: %v", rec, err)
	}
	return k, n
}

func sumCombine(acc, next string) (string, bool) {
	if len(acc) < 5 || len(next) < 5 || acc[:5] != next[:5] {
		return "", false
	}
	_, a := splitCount(acc)
	_, b := splitCount(next)
	return acc[:5] + strconv.Itoa(a+b), true
}

func splitCount(rec string) (string, int) {
	n, _ := strconv.Atoi(rec[5:])
	return rec[:4], n
}

// drainTotals sorts the given sorter and folds the stream into
// per-key totals, counting the records it saw.
func drainTotals(t *testing.T, s *Sorter) (map[string]int, int) {
	t.Helper()
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	totals := map[string]int{}
	records := 0
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		records++
		k, n := parseCombineRec(t, rec)
		totals[k] += n
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return totals, records
}

// TestCombinePreMerge proves the pre-merge aggregation is an
// equivalence-preserving optimization: with and without Combine the
// folded per-key totals are identical, but with Combine the stream the
// consumer sees is collapsed to (at most a few multiples of) the
// distinct key count, and Stats.Combined accounts for every collapsed
// record.
func TestCombinePreMerge(t *testing.T) {
	const (
		keys    = 40
		runs    = 64 // far above FanIn, forcing multiple pre-merge passes
		perRun  = keys
		fanIn   = 4
		records = runs * perRun
	)
	for _, bin := range []bool{false, true} {
		name := "text"
		if bin {
			name = "binary"
		}
		t.Run(name, func(t *testing.T) {
			build := func(combine func(string, string) (string, bool)) *Sorter {
				s := NewWithOptions(Options{FanIn: fanIn, Binary: bin, Combine: combine})
				for r := 0; r < runs; r++ {
					recs := make([]string, 0, perRun)
					for k := 0; k < keys; k++ {
						recs = append(recs, combineRec(k, r+k+1))
					}
					if err := s.AddSortedRun(recs); err != nil {
						t.Fatal(err)
					}
				}
				return s
			}

			plain := build(nil)
			wantTotals, wantRecords := drainTotals(t, plain)
			if wantRecords != records {
				t.Fatalf("baseline streamed %d records, want %d", wantRecords, records)
			}

			combined := build(sumCombine)
			gotTotals, gotRecords := drainTotals(t, combined)
			if len(gotTotals) != len(wantTotals) {
				t.Fatalf("combined run lost keys: %d vs %d", len(gotTotals), len(wantTotals))
			}
			for k, want := range wantTotals {
				if gotTotals[k] != want {
					t.Errorf("key %s: combined total %d, want %d", k, gotTotals[k], want)
				}
			}
			if gotRecords >= wantRecords {
				t.Fatalf("combine did not shrink the stream: %d records vs %d", gotRecords, wantRecords)
			}
			// The final merge reads at most FanIn pre-merged runs, each
			// already collapsed to distinct keys, so the stream is bounded
			// by FanIn*keys — far below the raw record count.
			if gotRecords > fanIn*keys {
				t.Fatalf("combined stream has %d records, want <= %d", gotRecords, fanIn*keys)
			}
			st := combined.Stats()
			if st.Combined == 0 {
				t.Fatal("Stats.Combined is zero after pre-merge with Combine")
			}
			if int(st.Combined) != records-gotRecords {
				t.Fatalf("Stats.Combined = %d, want %d (records %d → %d)", st.Combined, records-gotRecords, records, gotRecords)
			}
		})
	}
}

// TestCombineNotAppliedWithoutPreMerge pins the contract that the
// final streaming merge never combines: with few runs (<= FanIn) the
// consumer sees every record and must aggregate itself.
func TestCombineNotAppliedWithoutPreMerge(t *testing.T) {
	s := NewWithOptions(Options{FanIn: 16, Combine: sumCombine})
	for r := 0; r < 4; r++ {
		if err := s.AddSortedRun([]string{combineRec(1, 10), combineRec(2, 20)}); err != nil {
			t.Fatal(err)
		}
	}
	totals, records := drainTotals(t, s)
	if records != 8 {
		t.Fatalf("streamed %d records, want 8 (no pre-merge, no combining)", records)
	}
	if totals["0001"] != 40 || totals["0002"] != 80 {
		t.Fatalf("bad totals: %v", totals)
	}
	if st := s.Stats(); st.Combined != 0 {
		t.Fatalf("Stats.Combined = %d, want 0", st.Combined)
	}
}
