package extsort

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"
)

// TestBinaryRoundTrip sorts records containing every byte class the
// text format cannot carry (newlines, NULs, high bytes) through forced
// spills and asserts the stream comes back complete and ordered.
func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var recs []string
	for i := 0; i < 5000; i++ {
		n := rng.Intn(24)
		b := make([]byte, n)
		rng.Read(b)
		recs = append(recs, string(b))
	}
	recs = append(recs, "", "\n", "a\nb", "\x00", "plain")

	s := NewWithOptions(Options{MemoryBudget: 256, Binary: true, FanIn: 4})
	for _, r := range recs {
		if err := s.Add(r); err != nil {
			t.Fatalf("Add(%q): %v", r, err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, rec)
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	want := slices.Clone(recs)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("binary sort lost or reordered records: got %d, want %d", len(got), len(want))
	}
	if s.Stats().Runs == 0 {
		t.Fatal("expected spilled runs with a 256-byte budget")
	}
}

// TestBinaryAddSortedRun drives the concurrent-producer path with
// binary framing.
func TestBinaryAddSortedRun(t *testing.T) {
	s := NewWithOptions(Options{Binary: true})
	if err := s.AddSortedRun([]string{"a\n1", "a\n2", "b\x00"}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddSortedRun([]string{"a\n0", "c"}); err != nil {
		t.Fatal(err)
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	var got []string
	for {
		rec, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, rec)
	}
	want := []string{"a\n0", "a\n1", "a\n2", "b\x00", "c"}
	if !slices.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// TestTextModeStillRejectsNewlines pins the compatibility contract:
// only Binary sorters accept newline bytes.
func TestTextModeStillRejectsNewlines(t *testing.T) {
	s := New(0)
	if err := s.Add("a\nb"); err == nil {
		t.Fatal("text-mode Add accepted a newline record")
	}
	if err := s.AddSortedRun([]string{"a\nb"}); err == nil {
		t.Fatal("text-mode AddSortedRun accepted a newline record")
	}
}

// TestCanceledMergeAborts spills enough runs to force pre-merge passes
// and asserts a canceled context surfaces from Sort.
func TestCanceledMergeAborts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewWithOptions(Options{MemoryBudget: 64, FanIn: 2, Binary: true, Ctx: ctx})
	for i := 0; i < 4000; i++ {
		if err := s.Add(fmt.Sprintf("record-%06d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	if _, err := s.Sort(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sort on canceled ctx returned %v, want context.Canceled", err)
	}
	s.Discard()
}
