package extsort

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
)

// TestAddSortedRun spills pre-sorted batches from several goroutines
// concurrently with a regular Add producer and checks the merged stream.
func TestAddSortedRun(t *testing.T) {
	s := NewWithOptions(Options{MemoryBudget: 64, FanIn: 4})
	var want []string

	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < 4; w++ {
		batch := make([]string, 0, 50)
		for i := 0; i < 50; i++ {
			batch = append(batch, fmt.Sprintf("run%d-%04d", w, i))
		}
		mu.Lock()
		want = append(want, batch...)
		mu.Unlock()
		wg.Add(1)
		go func(batch []string) {
			defer wg.Done()
			if err := s.AddSortedRun(batch); err != nil {
				t.Errorf("AddSortedRun: %v", err)
			}
		}(batch)
	}
	for i := 0; i < 100; i++ {
		rec := fmt.Sprintf("add-%04d", i%37)
		want = append(want, rec)
		if err := s.Add(rec); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	wg.Wait()

	it, err := s.Sort()
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	got := drain(t, it)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("merged stream mismatch: got %d records, want %d", len(got), len(want))
	}
	if st := s.Stats(); st.Records != len(want) {
		t.Errorf("Records = %d, want %d", st.Records, len(want))
	}
}

func TestAddSortedRunRejectsUnsorted(t *testing.T) {
	s := New(1024)
	if err := s.AddSortedRun([]string{"b", "a"}); err == nil {
		t.Fatal("unsorted run accepted")
	}
	if err := s.AddSortedRun([]string{"a", "bad\nrec"}); err == nil {
		t.Fatal("run with newline accepted")
	}
	if err := s.AddSortedRun(nil); err != nil {
		t.Fatalf("empty run rejected: %v", err)
	}
}

// TestParallelPreMerge forces far more runs than the final fan-in so the
// grouped parallel pre-merge path runs, possibly over multiple passes.
func TestParallelPreMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewWithOptions(Options{MemoryBudget: 64, FanIn: 3, Parallelism: 4})
	var want []string
	for i := 0; i < 3000; i++ {
		rec := fmt.Sprintf("key-%05d", rng.Intn(1500))
		want = append(want, rec)
		if err := s.Add(rec); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	runs := s.Stats().Runs
	if runs <= 3 {
		t.Fatalf("expected many runs, got %d", runs)
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatalf("Sort: %v", err)
	}
	got := drain(t, it)
	slices.Sort(want)
	if !slices.Equal(got, want) {
		t.Fatalf("pre-merged stream is not the sorted input (got %d, want %d records)", len(got), len(want))
	}
}

// TestDiscardRemovesSpills covers the error-path cleanup: a sorter
// abandoned after spills must not leave run files behind, while a
// sorter whose iterator was taken leaves ownership with the iterator.
func TestDiscardRemovesSpills(t *testing.T) {
	countDirs := func() int {
		m, err := filepath.Glob(filepath.Join(os.TempDir(), "extsort-*"))
		if err != nil {
			t.Fatal(err)
		}
		return len(m)
	}
	before := countDirs()
	s := New(8)
	for _, r := range []string{"aaaa", "bbbb", "cccc"} {
		if err := s.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if countDirs() != before+1 {
		t.Fatalf("expected one new temp dir after spills")
	}
	s.Discard()
	s.Discard() // idempotent
	if countDirs() != before {
		t.Fatalf("Discard left temp dirs behind")
	}
	if err := s.Add("x"); err == nil {
		t.Fatal("Add after Discard succeeded")
	}

	// After Sort, Discard must not pull files out from under the
	// iterator.
	s2 := New(8)
	for _, r := range []string{"dddd", "eeee", "ffff"} {
		if err := s2.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s2.Sort()
	if err != nil {
		t.Fatal(err)
	}
	s2.Discard()
	got := drain(t, it)
	if len(got) != 3 {
		t.Fatalf("drained %d records, want 3", len(got))
	}
	if countDirs() != before {
		t.Fatalf("iterator Close left temp dirs behind")
	}
}

func TestAddSortedRunAfterSortFails(t *testing.T) {
	s := New(1024)
	it, err := s.Sort()
	if err != nil {
		t.Fatal(err)
	}
	it.Close()
	if err := s.AddSortedRun([]string{"x"}); err == nil {
		t.Fatal("AddSortedRun after Sort succeeded")
	}
}
