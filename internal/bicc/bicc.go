// Package bicc identifies articulation points and biconnected components
// (Section 3, Algorithm 1 of the paper) and extracts keyword clusters
// from them.
//
// The paper runs a DFS over the pruned keyword graph G', maintaining
// discovery order un[u] and low-link low[u], with an edge stack from
// which each biconnected component is popped when a child w of u
// satisfies low[w] >= un[u]. Graphs at blogosphere scale have millions
// of edges, so the implementation here is iterative (explicit frame
// stack, no recursion) and also comes in a secondary-storage flavour
// where adjacency lists are fetched from a diskstore.Store with counted
// I/Os — the realization sketched in the paper via refs [4, 5].
package bicc

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/diskstore"
)

// Graph is a simple undirected graph over vertices 0..n-1. Parallel
// edges and self-loops are not supported (AddEdge ignores self-loops;
// duplicate edges must not be added).
type Graph struct {
	adj   [][]int32
	edges int
}

// NewGraph returns an empty graph with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]int32, n)}
}

// AddEdge inserts the undirected edge (u,v). Self-loops are ignored:
// they can never affect biconnectivity.
func (g *Graph) AddEdge(u, v int32) {
	if u == v {
		return
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Component is one biconnected component, given by its edge set. A
// bridge forms a two-vertex component of a single edge.
type Component struct {
	Edges [][2]int32
}

// Vertices returns the sorted distinct vertices of the component.
func (c Component) Vertices() []int32 {
	set := map[int32]struct{}{}
	for _, e := range c.Edges {
		set[e[0]] = struct{}{}
		set[e[1]] = struct{}{}
	}
	vs := make([]int32, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	return vs
}

// Result is the decomposition of a graph.
type Result struct {
	// Components are the biconnected components; every edge of the graph
	// belongs to exactly one.
	Components []Component
	// Articulation lists the articulation points in increasing order.
	Articulation []int32
}

// IsArticulation reports whether v is an articulation point.
func (r *Result) IsArticulation(v int32) bool {
	i := sort.Search(len(r.Articulation), func(i int) bool { return r.Articulation[i] >= v })
	return i < len(r.Articulation) && r.Articulation[i] == v
}

// adjSource abstracts where adjacency lists come from: memory or a
// disk store.
type adjSource interface {
	neighbors(u int32) ([]int32, error)
	numVertices() int
}

type memSource struct{ g *Graph }

func (m memSource) neighbors(u int32) ([]int32, error) { return m.g.adj[u], nil }
func (m memSource) numVertices() int                   { return len(m.g.adj) }

// Decompose runs the biconnected-components algorithm over an in-memory
// graph.
func Decompose(g *Graph) *Result {
	r, err := decompose(memSource{g})
	if err != nil {
		// memSource never fails.
		panic(fmt.Sprintf("bicc: in-memory decompose failed: %v", err))
	}
	return r
}

// storeSource reads adjacency lists from a diskstore, one random read
// per first visit of a vertex.
type storeSource struct {
	st *diskstore.Store
	n  int
}

func (s storeSource) neighbors(u int32) ([]int32, error) {
	val, err := s.st.Get(int64(u))
	if err != nil {
		return nil, fmt.Errorf("bicc: adjacency of %d: %w", u, err)
	}
	return DecodeAdjacency(val)
}

func (s storeSource) numVertices() int { return s.n }

// DecomposeStore runs the algorithm with adjacency lists fetched from
// st (vertex id → EncodeAdjacency payload). Every vertex in 0..n-1 must
// have a record, even if empty. The caller can read st.Stats() to
// observe the I/O the traversal performed.
func DecomposeStore(st *diskstore.Store, n int) (*Result, error) {
	return decompose(storeSource{st: st, n: n})
}

// EncodeAdjacency serializes a neighbor list for DecomposeStore.
func EncodeAdjacency(neighbors []int32) []byte {
	buf := make([]byte, 4+4*len(neighbors))
	binary.LittleEndian.PutUint32(buf, uint32(len(neighbors)))
	for i, v := range neighbors {
		binary.LittleEndian.PutUint32(buf[4+4*i:], uint32(v))
	}
	return buf
}

// DecodeAdjacency reverses EncodeAdjacency.
func DecodeAdjacency(b []byte) ([]int32, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("bicc: adjacency record too short (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if len(b) != int(4+4*n) {
		return nil, fmt.Errorf("bicc: adjacency record length %d does not match count %d", len(b), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4+4*i:]))
	}
	return out, nil
}

// frame is one suspended DFS call in the iterative traversal.
type frame struct {
	u         int32
	parent    int32
	neighbors []int32
	next      int // index of the next neighbor to consider
	children  int // DFS-tree children discovered so far (root rule)
}

func decompose(src adjSource) (*Result, error) {
	n := src.numVertices()
	un := make([]int32, n)  // discovery order, 0 = unvisited (time starts at 1)
	low := make([]int32, n) // low-link
	isArt := make([]bool, n)
	var edgeStack [][2]int32
	res := &Result{}
	var time int32

	popComponent := func(u, w int32) {
		// Pop all edges on top of the stack until (inclusively) (u,w),
		// and report them as one biconnected component (Algorithm 1,
		// line 14).
		var comp Component
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			comp.Edges = append(comp.Edges, e)
			if e[0] == u && e[1] == w {
				break
			}
		}
		res.Components = append(res.Components, comp)
	}

	var stack []frame
	for root := int32(0); int(root) < n; root++ {
		if un[root] != 0 {
			continue
		}
		time++
		un[root], low[root] = time, time
		rootNs, err := src.neighbors(root)
		if err != nil {
			return nil, err
		}
		stack = append(stack[:0], frame{u: root, parent: -1, neighbors: rootNs})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(f.neighbors) {
				w := f.neighbors[f.next]
				f.next++
				switch {
				case un[w] == 0:
					// Tree edge: push and descend.
					edgeStack = append(edgeStack, [2]int32{f.u, w})
					f.children++
					time++
					un[w], low[w] = time, time
					ns, err := src.neighbors(w)
					if err != nil {
						return nil, err
					}
					stack = append(stack, frame{u: w, parent: f.u, neighbors: ns})
				case w != f.parent && un[w] < un[f.u]:
					// Back edge to a proper ancestor.
					edgeStack = append(edgeStack, [2]int32{f.u, w})
					if un[w] < low[f.u] {
						low[f.u] = un[w]
					}
				}
			} else {
				// All neighbors of f.u processed: return to parent.
				stack = stack[:len(stack)-1]
				if len(stack) == 0 {
					break
				}
				p := &stack[len(stack)-1]
				if low[f.u] < low[p.u] {
					low[p.u] = low[f.u]
				}
				if low[f.u] >= un[p.u] {
					popComponent(p.u, f.u)
					// p is an articulation point unless it is the root;
					// the root qualifies only with >= 2 DFS children.
					if p.parent != -1 || p.children >= 2 {
						isArt[p.u] = true
					}
				}
			}
		}
	}
	for v := int32(0); int(v) < n; v++ {
		if isArt[v] {
			res.Articulation = append(res.Articulation, v)
		}
	}
	return res, nil
}

// Clusters converts the decomposition into keyword clusters per the
// paper: every biconnected component with at least minVertices vertices
// becomes one cluster (vertex set, sorted). minVertices < 2 is treated
// as 2 (a component always has ≥ 2 vertices).
func (r *Result) Clusters(minVertices int) [][]int32 {
	if minVertices < 2 {
		minVertices = 2
	}
	var out [][]int32
	for _, c := range r.Components {
		vs := c.Vertices()
		if len(vs) >= minVertices {
			out = append(out, vs)
		}
	}
	return out
}
