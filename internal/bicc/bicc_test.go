package bicc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/diskstore"
)

func sortedClusters(r *Result) [][]int32 {
	cl := r.Clusters(2)
	sort.Slice(cl, func(i, j int) bool {
		return lexLess(cl[i], cl[j])
	})
	return cl
}

func lexLess(a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// TestPaperFigure3 reconstructs the worked example of Figure 3: a DFS
// from a with back edges (c,a) and (f,d); internal nodes b and d are
// articulation points, and the biconnected components are the triangle
// {a,b,c}, the bridge {b,d} and the triangle {d,e,f}.
func TestPaperFigure3(t *testing.T) {
	const (
		a = int32(iota)
		b
		c
		d
		e
		f
	)
	g := NewGraph(6)
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, a)
	g.AddEdge(b, d)
	g.AddEdge(d, e)
	g.AddEdge(e, f)
	g.AddEdge(f, d)

	r := Decompose(g)
	if want := []int32{b, d}; !reflect.DeepEqual(r.Articulation, want) {
		t.Errorf("articulation points = %v, want %v", r.Articulation, want)
	}
	got := sortedClusters(r)
	want := [][]int32{{a, b, c}, {b, d}, {d, e, f}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("components = %v, want %v", got, want)
	}
	if !r.IsArticulation(b) || !r.IsArticulation(d) || r.IsArticulation(a) {
		t.Error("IsArticulation disagrees with Articulation list")
	}
}

func TestSingleEdge(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1)
	r := Decompose(g)
	if len(r.Components) != 1 || len(r.Components[0].Edges) != 1 {
		t.Fatalf("components = %+v, want one single-edge component", r.Components)
	}
	if len(r.Articulation) != 0 {
		t.Errorf("articulation = %v, want none", r.Articulation)
	}
}

func TestPathGraph(t *testing.T) {
	// 0-1-2-3: every edge is a bridge; 1 and 2 are articulation points.
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	r := Decompose(g)
	if len(r.Components) != 3 {
		t.Errorf("components = %d, want 3", len(r.Components))
	}
	if want := []int32{1, 2}; !reflect.DeepEqual(r.Articulation, want) {
		t.Errorf("articulation = %v, want %v", r.Articulation, want)
	}
}

func TestCycleIsBiconnected(t *testing.T) {
	g := NewGraph(5)
	for i := int32(0); i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	r := Decompose(g)
	if len(r.Components) != 1 {
		t.Fatalf("components = %d, want 1", len(r.Components))
	}
	if len(r.Articulation) != 0 {
		t.Errorf("articulation = %v, want none", r.Articulation)
	}
	if got := r.Components[0].Vertices(); len(got) != 5 {
		t.Errorf("component vertices = %v, want all 5", got)
	}
}

func TestStarGraph(t *testing.T) {
	// Center 0 with leaves 1..4: 0 is the only articulation point and
	// each spoke is its own component.
	g := NewGraph(5)
	for i := int32(1); i < 5; i++ {
		g.AddEdge(0, i)
	}
	r := Decompose(g)
	if len(r.Components) != 4 {
		t.Errorf("components = %d, want 4", len(r.Components))
	}
	if want := []int32{0}; !reflect.DeepEqual(r.Articulation, want) {
		t.Errorf("articulation = %v, want %v", r.Articulation, want)
	}
}

func TestDisconnectedAndIsolated(t *testing.T) {
	g := NewGraph(7) // two triangles + isolated vertex 6
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	r := Decompose(g)
	if len(r.Components) != 2 {
		t.Errorf("components = %d, want 2", len(r.Components))
	}
	if len(r.Articulation) != 0 {
		t.Errorf("articulation = %v, want none", r.Articulation)
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
	r := Decompose(g)
	if len(r.Components) != 1 {
		t.Errorf("components = %d, want 1", len(r.Components))
	}
}

func TestClustersMinSize(t *testing.T) {
	g := NewGraph(5) // triangle 0-1-2 plus bridge 2-3 and 3-4
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	r := Decompose(g)
	if got := r.Clusters(3); len(got) != 1 || len(got[0]) != 3 {
		t.Errorf("Clusters(3) = %v, want one 3-vertex cluster", got)
	}
	if got := r.Clusters(0); len(got) != 3 {
		t.Errorf("Clusters(0) = %v, want 3 clusters", got)
	}
}

// randomGraph builds a random simple graph with n vertices and ~p edge
// probability.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(int32(u), int32(v))
			}
		}
	}
	return g
}

// bruteArticulation finds articulation points by deletion: v is an
// articulation point iff removing it increases the number of connected
// components among the remaining vertices (counting only components
// that contained v's neighbors).
func bruteArticulation(g *Graph) []int32 {
	n := g.NumVertices()
	countComponents := func(skip int32) int {
		seen := make([]bool, n)
		comps := 0
		for s := 0; s < n; s++ {
			if int32(s) == skip || seen[s] {
				continue
			}
			// BFS.
			comps++
			queue := []int32{int32(s)}
			seen[s] = true
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, w := range g.adj[u] {
					if w == skip || seen[w] {
						continue
					}
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		return comps
	}
	base := countComponents(-1)
	var arts []int32
	for v := 0; v < n; v++ {
		if len(g.adj[v]) == 0 {
			continue
		}
		// Removing v also removes the singleton component it would form.
		if countComponents(int32(v)) > base {
			arts = append(arts, int32(v))
		}
	}
	return arts
}

// Properties on random graphs:
//  1. every edge appears in exactly one component;
//  2. articulation points match the deletion-based brute force;
//  3. two distinct components share at most one vertex.
func TestDecomposeProperties(t *testing.T) {
	f := func(seed int64, nSeed, pSeed uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSeed)%14 + 2
		p := 0.05 + float64(pSeed%200)/250.0
		g := randomGraph(rng, n, p)
		r := Decompose(g)

		// 1. Edge partition.
		type ekey [2]int32
		norm := func(u, v int32) ekey {
			if u > v {
				u, v = v, u
			}
			return ekey{u, v}
		}
		seen := map[ekey]int{}
		total := 0
		for _, c := range r.Components {
			for _, e := range c.Edges {
				seen[norm(e[0], e[1])]++
				total++
			}
		}
		if total != g.NumEdges() || len(seen) != g.NumEdges() {
			return false
		}
		for _, cnt := range seen {
			if cnt != 1 {
				return false
			}
		}

		// 2. Articulation points.
		want := bruteArticulation(g)
		if len(want) != len(r.Articulation) {
			return false
		}
		for i := range want {
			if want[i] != r.Articulation[i] {
				return false
			}
		}

		// 3. Pairwise component overlap ≤ 1 vertex.
		vsets := make([]map[int32]struct{}, len(r.Components))
		for i, c := range r.Components {
			vsets[i] = map[int32]struct{}{}
			for _, v := range c.Vertices() {
				vsets[i][v] = struct{}{}
			}
		}
		for i := 0; i < len(vsets); i++ {
			for j := i + 1; j < len(vsets); j++ {
				overlap := 0
				for v := range vsets[i] {
					if _, ok := vsets[j][v]; ok {
						overlap++
					}
				}
				if overlap > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestDecomposeStoreMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 20, 0.12)
		want := Decompose(g)

		st, err := diskstore.Open()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.NumVertices(); u++ {
			if err := st.Put(int64(u), EncodeAdjacency(g.adj[u])); err != nil {
				t.Fatal(err)
			}
		}
		st.ResetStats()
		got, err := DecomposeStore(st, g.NumVertices())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedClusters(got), sortedClusters(want)) {
			t.Errorf("trial %d: store-backed components differ", trial)
		}
		if !reflect.DeepEqual(got.Articulation, want.Articulation) {
			t.Errorf("trial %d: store-backed articulation differs", trial)
		}
		// Every vertex's adjacency is fetched exactly once.
		if reads := st.Stats().RandomReads; reads != int64(g.NumVertices()) {
			t.Errorf("trial %d: %d random reads, want %d", trial, reads, g.NumVertices())
		}
		st.Close()
	}
}

func TestDecomposeStoreMissingVertex(t *testing.T) {
	st, err := diskstore.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Vertex 0 present with neighbor 1, but vertex 1 has no record.
	if err := st.Put(0, EncodeAdjacency([]int32{1})); err != nil {
		t.Fatal(err)
	}
	if _, err := DecomposeStore(st, 2); err == nil {
		t.Fatal("DecomposeStore succeeded with missing adjacency record")
	}
}

func TestAdjacencyCodecRoundTrip(t *testing.T) {
	cases := [][]int32{nil, {}, {1}, {5, 2, 9, 2_000_000_000}}
	for _, c := range cases {
		got, err := DecodeAdjacency(EncodeAdjacency(c))
		if err != nil {
			t.Fatalf("decode(%v): %v", c, err)
		}
		if len(got) != len(c) {
			t.Fatalf("round trip %v = %v", c, got)
		}
		for i := range c {
			if got[i] != c[i] {
				t.Fatalf("round trip %v = %v", c, got)
			}
		}
	}
	if _, err := DecodeAdjacency([]byte{1, 2}); err == nil {
		t.Error("DecodeAdjacency accepted short record")
	}
	if _, err := DecodeAdjacency(EncodeAdjacency([]int32{1})[:6]); err == nil {
		t.Error("DecodeAdjacency accepted truncated record")
	}
}

func BenchmarkDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 2000, 0.004)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(g)
	}
}
