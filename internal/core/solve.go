package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/clustergraph"
	"repro/internal/diskstore"
)

// ErrInvalidRequest marks request-validation failures: an unknown
// algorithm, a non-positive K, a path length the graph cannot hold.
// Callers serving remote clients map it to a client error (400) via
// errors.Is instead of sniffing message text. The root package aliases
// it as blogclusters.ErrInvalidQuery.
var ErrInvalidRequest = errors.New("core: invalid request")

// DefaultAlgorithm is what an empty Request.Algorithm means.
const DefaultAlgorithm = "bfs"

// Request is the one query shape every solver accepts. Planner, Engine,
// server and cmds all build a Request and hand it to Solve; the
// algorithm registry dispatches on Request.Algorithm. Knobs that a
// given algorithm does not use are ignored by it (they exist so the
// ablation experiments can sweep every solver through one surface).
type Request struct {
	// Algorithm names the registered solver: "bfs" (Algorithm 2),
	// "dfs" (Algorithm 3), "ta" (Section 4.4), "normalized"
	// (Section 4.5), or the exhaustive oracles "brute" and
	// "brute-normalized". Empty means DefaultAlgorithm.
	Algorithm string
	// K is the number of top paths to return.
	K int
	// L is the exact temporal path length sought (Problem 1 solvers).
	// The special value FullPaths (or m−1) requests full paths,
	// enabling the paper's single-heap fast path in BFS and the TA
	// algorithm.
	L int
	// LMin is the minimum temporal path length (normalized solvers,
	// Problem 2).
	LMin int
	// Parallelism is the solver worker count. 0 or 1 runs the exact
	// sequential code path (the ablation baseline); higher values fan
	// the solver out on a bounded pool. Results are byte-identical at
	// any worker count; Stats counters for DFS and TA may differ in
	// parallel runs (pruning thresholds are shared less eagerly).
	Parallelism int
	// Store, when non-nil, persists per-node algorithm state (heaps,
	// maxweight annotations) to secondary storage so that the I/O
	// behaviour of the algorithms is real and measurable. Nil keeps all
	// state in memory; logical I/O counters are maintained either way.
	// The store must be fresh per solve (leftover state is read back).
	Store *diskstore.Store

	// MaxWindowNodes caps the number of window nodes whose heaps may be
	// held in memory at once (BFS). When the g+1-interval window
	// exceeds the cap, the interval is processed in block-nested-loop
	// passes — the Mreq/M-passes behaviour at the end of Section 4.2.
	// Zero means unlimited.
	MaxWindowNodes int
	// DisableFullPathFastPath turns off BFS's single-heap optimization
	// for l = m−1 (ablation).
	DisableFullPathFastPath bool

	// DisablePruning turns off DFS's maxweight/CanPrune machinery
	// (ablation).
	DisablePruning bool
	// WorstFirstChildren reverses DFS's best-first child order
	// (ablation).
	WorstFirstChildren bool

	// DisableBoundHashTables turns off TA's startwts/endwts upper-bound
	// optimization (ablation).
	DisableBoundHashTables bool
	// MaxSeeks aborts a TA run after this many random seeks (the paper
	// reports TA needing up to m^(d−1) seeks). Zero means unlimited.
	MaxSeeks int64

	// SuffixDominance enables the aggressive Section 4.5 suffix rule
	// (normalized).
	SuffixDominance bool
	// DisableTheorem1Pruning keeps every normalized candidate instead
	// of dropping prefixes per Theorem 1, making the algorithm exact
	// for every k at the cost of larger state.
	DisableTheorem1Pruning bool
	// BeamWidth, when positive, caps each node's normalized candidate
	// set to the BeamWidth highest-stability paths.
	BeamWidth int
}

// workers resolves Request.Parallelism: 0 and 1 are the sequential
// path, negative is rejected at validation, and anything above the
// CPU count is clamped (more workers than cores only adds scheduling
// noise for these CPU-bound solvers).
func (r Request) workers() int {
	w := r.Parallelism
	if w <= 1 {
		return 1
	}
	if max := runtime.GOMAXPROCS(0); w > max && max > 1 {
		w = max
	}
	return w
}

// validate checks the algorithm-independent fields.
func (r Request) validate() error {
	if r.K <= 0 {
		return fmt.Errorf("%w: K must be positive, got %d", ErrInvalidRequest, r.K)
	}
	if r.Parallelism < 0 {
		return fmt.Errorf("%w: Parallelism must be >= 0, got %d", ErrInvalidRequest, r.Parallelism)
	}
	return nil
}

// resolveL normalizes Request.L against the graph's interval count.
func (r Request) resolveL(g *clustergraph.Graph) (int, error) {
	if err := r.validate(); err != nil {
		return 0, err
	}
	l := r.L
	if l == FullPaths {
		l = g.NumIntervals() - 1
	}
	if l <= 0 {
		return 0, fmt.Errorf("%w: path length must be positive, got %d", ErrInvalidRequest, l)
	}
	if l > g.NumIntervals()-1 {
		return 0, fmt.Errorf("%w: path length %d exceeds m-1 = %d", ErrInvalidRequest, l, g.NumIntervals()-1)
	}
	return l, nil
}

// resolveLMin validates the normalized-solver fields.
func (r Request) resolveLMin(g *clustergraph.Graph) (int, error) {
	if err := r.validate(); err != nil {
		return 0, err
	}
	if r.LMin <= 0 {
		return 0, fmt.Errorf("%w: LMin must be positive, got %d", ErrInvalidRequest, r.LMin)
	}
	if r.BeamWidth < 0 {
		return 0, fmt.Errorf("%w: BeamWidth must be >= 0, got %d", ErrInvalidRequest, r.BeamWidth)
	}
	if r.LMin > g.NumIntervals()-1 {
		return 0, fmt.Errorf("%w: LMin %d exceeds m-1 = %d", ErrInvalidRequest, r.LMin, g.NumIntervals()-1)
	}
	return r.LMin, nil
}

// ctxErr reports ctx's error without blocking; nil ctx never cancels.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// Info describes one registered solver, for planners and CLIs.
type Info struct {
	// Name is the Request.Algorithm value.
	Name string
	// Normalized solvers rank by stability and use LMin (Problem 2);
	// the rest rank by weight and use L (Problem 1).
	Normalized bool
	// FullPathsOnly solvers require l = m−1 (TA).
	FullPathsOnly bool
	// Exhaustive marks the brute-force oracles — exact but exponential,
	// never chosen by a planner.
	Exhaustive bool
}

type solverFunc func(ctx context.Context, g *clustergraph.Graph, req Request) (*Result, error)

type solverEntry struct {
	info  Info
	solve solverFunc
}

// registry maps algorithm name → solver. Entries are fixed at init;
// the map is read-only afterwards, so Solve needs no lock.
var registry = map[string]solverEntry{
	"bfs": {Info{Name: "bfs"}, solveBFS},
	"dfs": {Info{Name: "dfs"}, solveDFS},
	"ta":  {Info{Name: "ta", FullPathsOnly: true}, solveTA},
	"normalized": {
		Info{Name: "normalized", Normalized: true}, solveNormalized},
	"brute": {Info{Name: "brute", Exhaustive: true}, solveBrute},
	"brute-normalized": {
		Info{Name: "brute-normalized", Normalized: true, Exhaustive: true},
		solveBruteNormalized},
}

// Algorithms lists the registered solvers, sorted by name.
func Algorithms() []Info {
	out := make([]Info, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the descriptor of one registered solver.
func Lookup(name string) (Info, bool) {
	if name == "" {
		name = DefaultAlgorithm
	}
	e, ok := registry[name]
	return e.info, ok
}

// Solve answers one stable-clusters request by dispatching to the
// registered solver. It is the single entry point for every algorithm;
// ctx cancels the solve at each algorithm's natural loop boundary
// (BFS per interval and per seek batch, DFS every few thousand stack
// steps, TA per round and per seek batch).
func Solve(ctx context.Context, g *clustergraph.Graph, req Request) (*Result, error) {
	name := req.Algorithm
	if name == "" {
		name = DefaultAlgorithm
	}
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown algorithm %q (want %s)",
			ErrInvalidRequest, req.Algorithm, strings.Join(algorithmNames(), ", "))
	}
	return e.solve(ctx, g, req)
}

func algorithmNames() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
