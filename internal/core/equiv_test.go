package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/diskstore"
	"repro/internal/synth"
)

// The central correctness argument of this reproduction: on randomized
// cluster graphs spanning gaps, subpath lengths and k values, the BFS,
// DFS and TA algorithms and the exhaustive enumerator must return
// identical top-k weight vectors.

type equivCase struct {
	cfg  synth.Config
	k, l int
}

func equivCases() []equivCase {
	var cases []equivCase
	seed := int64(100)
	for _, m := range []int{2, 3, 4, 5, 6} {
		for _, g := range []int{0, 1, 2} {
			for _, l := range []int{1, 2, m - 1} {
				if l <= 0 || l > m-1 {
					continue
				}
				for _, k := range []int{1, 3} {
					seed++
					cases = append(cases, equivCase{
						cfg: synth.Config{Seed: seed, M: m, N: 5, D: 2, G: g},
						k:   k, l: l,
					})
				}
			}
		}
	}
	return cases
}

func TestBFSDFSBruteEquivalence(t *testing.T) {
	for _, c := range equivCases() {
		c := c
		name := fmt.Sprintf("m%d_g%d_l%d_k%d_seed%d", c.cfg.M, c.cfg.G, c.l, c.k, c.cfg.Seed)
		t.Run(name, func(t *testing.T) {
			g, err := synth.Generate(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want, err := solve(g, Request{Algorithm: "brute", K: c.k, L: c.l})
			if err != nil {
				t.Fatal(err)
			}
			bfs, err := solve(g, Request{K: c.k, L: c.l})
			if err != nil {
				t.Fatal(err)
			}
			if !weightsAlmostEqual(bfs.Weights(), want.Weights()) {
				t.Errorf("BFS weights %v != brute %v", bfs.Weights(), want.Weights())
			}
			dfs, err := solve(g, Request{Algorithm: "dfs", K: c.k, L: c.l})
			if err != nil {
				t.Fatal(err)
			}
			if !weightsAlmostEqual(dfs.Weights(), want.Weights()) {
				t.Errorf("DFS weights %v != brute %v", dfs.Weights(), want.Weights())
			}
			dfsNoPrune, err := solve(g, Request{Algorithm: "dfs", K: c.k, L: c.l, DisablePruning: true})
			if err != nil {
				t.Fatal(err)
			}
			if !weightsAlmostEqual(dfsNoPrune.Weights(), want.Weights()) {
				t.Errorf("unpruned DFS weights %v != brute %v", dfsNoPrune.Weights(), want.Weights())
			}
			if c.l == c.cfg.M-1 {
				ta, err := solve(g, Request{Algorithm: "ta", K: c.k, L: c.l})
				if err != nil {
					t.Fatal(err)
				}
				if !weightsAlmostEqual(ta.Weights(), want.Weights()) {
					t.Errorf("TA weights %v != brute %v", ta.Weights(), want.Weights())
				}
				taNoBound, err := solve(g, Request{Algorithm: "ta", K: c.k, L: c.l, DisableBoundHashTables: true})
				if err != nil {
					t.Fatal(err)
				}
				if !weightsAlmostEqual(taNoBound.Weights(), want.Weights()) {
					t.Errorf("TA-no-bound weights %v != brute %v", taNoBound.Weights(), want.Weights())
				}
			}
		})
	}
}

func TestBFSFastPathMatchesGeneric(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g, err := synth.Generate(synth.Config{Seed: seed, M: 5, N: 8, D: 2, G: 1})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := solve(g, Request{K: 4, L: FullPaths})
		if err != nil {
			t.Fatal(err)
		}
		slow, err := solve(g, Request{K: 4, L: FullPaths, DisableFullPathFastPath: true})
		if err != nil {
			t.Fatal(err)
		}
		if !weightsAlmostEqual(fast.Weights(), slow.Weights()) {
			t.Errorf("seed %d: fast path %v != generic %v", seed, fast.Weights(), slow.Weights())
		}
	}
}

func TestBFSBlockNestedMatchesUnlimited(t *testing.T) {
	for seed := int64(20); seed < 30; seed++ {
		g, err := synth.Generate(synth.Config{Seed: seed, M: 6, N: 10, D: 2, G: 2})
		if err != nil {
			t.Fatal(err)
		}
		full, err := solve(g, Request{K: 3, L: 3})
		if err != nil {
			t.Fatal(err)
		}
		blocked, err := solve(g, Request{K: 3, L: 3, MaxWindowNodes: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !weightsAlmostEqual(full.Weights(), blocked.Weights()) {
			t.Errorf("seed %d: blocked %v != unlimited %v", seed, blocked.Weights(), full.Weights())
		}
		if blocked.Stats.NodeReads <= full.Stats.NodeReads {
			t.Errorf("seed %d: block-nested reads %d not above unlimited %d",
				seed, blocked.Stats.NodeReads, full.Stats.NodeReads)
		}
	}
}

func TestStoreBackedMatchesInMemory(t *testing.T) {
	for seed := int64(40); seed < 46; seed++ {
		g, err := synth.Generate(synth.Config{Seed: seed, M: 5, N: 6, D: 2, G: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range []int{2, 4} {
			mem, err := solve(g, Request{K: 3, L: l})
			if err != nil {
				t.Fatal(err)
			}
			st, err := diskstore.Open()
			if err != nil {
				t.Fatal(err)
			}
			disk, err := solve(g, Request{K: 3, L: l, Store: st})
			if err != nil {
				t.Fatal(err)
			}
			if !weightsAlmostEqual(mem.Weights(), disk.Weights()) {
				t.Errorf("seed %d l %d: BFS store-backed %v != memory %v", seed, l, disk.Weights(), mem.Weights())
			}
			if st.Stats().Writes == 0 {
				t.Error("store-backed BFS wrote nothing")
			}
			st.Close()

			memD, err := solve(g, Request{Algorithm: "dfs", K: 3, L: l})
			if err != nil {
				t.Fatal(err)
			}
			st2, err := diskstore.Open()
			if err != nil {
				t.Fatal(err)
			}
			diskD, err := solve(g, Request{Algorithm: "dfs", K: 3, L: l, Store: st2})
			if err != nil {
				t.Fatal(err)
			}
			if !weightsAlmostEqual(memD.Weights(), diskD.Weights()) {
				t.Errorf("seed %d l %d: DFS store-backed %v != memory %v", seed, l, diskD.Weights(), memD.Weights())
			}
			if st2.Stats().Writes == 0 || st2.Stats().RandomReads == 0 {
				t.Error("store-backed DFS performed no real I/O")
			}
			st2.Close()
		}
	}
}

// randomClusterSets builds per-interval cluster sets over a small
// vocabulary so affinities above θ occur.
func randomClusterSets(rng *rand.Rand, m, perInterval int) [][]cluster.Cluster {
	sets := make([][]cluster.Cluster, m)
	id := int64(0)
	for i := range sets {
		sets[i] = make([]cluster.Cluster, perInterval)
		for j := range sets[i] {
			size := rng.Intn(5) + 2
			kws := make([]string, 0, size)
			for len(kws) < size {
				kws = append(kws, fmt.Sprintf("w%d", rng.Intn(15)))
			}
			sets[i][j] = cluster.New(id, i, kws)
			id++
		}
	}
	return sets
}

func TestStatsPopulated(t *testing.T) {
	g, err := synth.Generate(synth.Config{Seed: 7, M: 6, N: 20, D: 3, G: 1})
	if err != nil {
		t.Fatal(err)
	}
	bfs, err := solve(g, Request{K: 5, L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Stats.NodeReads == 0 || bfs.Stats.NodeWrites == 0 || bfs.Stats.EdgeReads == 0 ||
		bfs.Stats.HeapConsiders == 0 || bfs.Stats.PeakStatePaths == 0 {
		t.Errorf("BFS stats unpopulated: %+v", bfs.Stats)
	}
	dfs, err := solve(g, Request{Algorithm: "dfs", K: 5, L: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dfs.Stats.NodeReads == 0 || dfs.Stats.NodeWrites == 0 || dfs.Stats.EdgeReads == 0 {
		t.Errorf("DFS stats unpopulated: %+v", dfs.Stats)
	}
	// The paper's memory claim: DFS holds far fewer paths in memory
	// than BFS holds in its window.
	if dfs.Stats.PeakStatePaths >= bfs.Stats.PeakStatePaths {
		t.Errorf("DFS peak paths %d not below BFS %d", dfs.Stats.PeakStatePaths, bfs.Stats.PeakStatePaths)
	}
}
