package core

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/diskstore"
	"repro/internal/synth"
)

// The parallel solvers' contract: for every algorithm and any worker
// count, Solve returns byte-identical Result.Paths to the sequential
// (Parallelism: 1) run. The top-k heap's strict total order plus the
// admissibility of every concurrent pruning decision make this exact,
// not approximate — see the solver file comments for the arguments.

func TestParallelSolversMatchSequential(t *testing.T) {
	algos := []struct {
		name string
		req  func(k, l int) Request
	}{
		{"bfs", func(k, l int) Request { return Request{Algorithm: "bfs", K: k, L: l} }},
		{"dfs", func(k, l int) Request { return Request{Algorithm: "dfs", K: k, L: l} }},
		{"normalized", func(k, l int) Request { return Request{Algorithm: "normalized", K: k, LMin: l} }},
	}
	for seed := int64(1000); seed < 1006; seed++ {
		cfg := synth.Config{Seed: seed, M: 6, N: 9, D: 3, G: int(seed % 3)}
		g, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range algos {
			for _, l := range []int{2, 5} {
				for _, k := range []int{1, 4} {
					base := a.req(k, l)
					base.Parallelism = 1
					want, err := solve(g, base)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{2, 8} {
						req := a.req(k, l)
						req.Parallelism = workers
						got, err := solve(g, req)
						if err != nil {
							t.Fatalf("%s seed %d workers %d: %v", a.name, seed, workers, err)
						}
						if !reflect.DeepEqual(got.Paths, want.Paths) {
							t.Errorf("%s seed %d l %d k %d workers %d: paths %v != sequential %v",
								a.name, seed, l, k, workers, got.Paths, want.Paths)
						}
						// BFS and normalized runs also promise identical
						// Stats (per-worker sinks count exactly the
						// sequential events); DFS chunking legitimately
						// changes Pruned/Repushes.
						if a.name != "dfs" && got.Stats != want.Stats {
							t.Errorf("%s seed %d workers %d: stats %+v != sequential %+v",
								a.name, seed, workers, got.Stats, want.Stats)
						}
					}
				}
			}
		}
	}
}

func TestParallelTAMatchesSequential(t *testing.T) {
	for seed := int64(1100); seed < 1108; seed++ {
		g, err := synth.Generate(synth.Config{Seed: seed, M: 5, N: 8, D: 3, G: int(seed % 2)})
		if err != nil {
			t.Fatal(err)
		}
		want, err := solve(g, Request{Algorithm: "ta", K: 3, L: FullPaths, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, err := solve(g, Request{Algorithm: "ta", K: 3, L: FullPaths, Parallelism: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if !reflect.DeepEqual(got.Paths, want.Paths) {
				t.Errorf("seed %d workers %d: TA paths %v != sequential %v", seed, workers, got.Paths, want.Paths)
			}
			// The parallel run freezes bounds per round, so it prunes at
			// most as much as the in-round-merging sequential pass: it can
			// only expand (seek) more, never less.
			if got.Stats.RandomSeeks < want.Stats.RandomSeeks {
				t.Errorf("seed %d workers %d: TA seeks %d below sequential %d",
					seed, workers, got.Stats.RandomSeeks, want.Stats.RandomSeeks)
			}
		}
	}
}

// Store-backed runs must stay equivalent under parallelism too. Each
// run gets a fresh store: solvers persist per-run node state under their
// own key namespaces, so reusing a store across solves reads stale
// state back.
func TestParallelStoreBackedMatchesSequential(t *testing.T) {
	g, err := synth.Generate(synth.Config{Seed: 1200, M: 6, N: 8, D: 2, G: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"bfs", "dfs"} {
		run := func(workers int) *Result {
			st, err := diskstore.Open()
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			res, err := solve(g, Request{Algorithm: algo, K: 3, L: 3, Store: st, Parallelism: workers})
			if err != nil {
				t.Fatalf("%s workers %d: %v", algo, workers, err)
			}
			if st.Stats().Writes == 0 {
				t.Fatalf("%s workers %d: store-backed run wrote nothing", algo, workers)
			}
			return res
		}
		want := run(1)
		for _, workers := range []int{2, 8} {
			got := run(workers)
			if !reflect.DeepEqual(got.Paths, want.Paths) {
				t.Errorf("%s workers %d: store-backed paths %v != sequential %v", algo, workers, got.Paths, want.Paths)
			}
		}
	}
}

func TestSolveRequestValidation(t *testing.T) {
	g, _ := synth.Figure5()
	if _, err := Solve(context.Background(), g, Request{Algorithm: "simulated-annealing", K: 1, L: 1}); err == nil {
		t.Error("Solve accepted an unknown algorithm")
	} else if !strings.Contains(err.Error(), "bfs") {
		t.Errorf("unknown-algorithm error does not list the registry: %v", err)
	}
	if _, err := Solve(context.Background(), g, Request{K: 1, L: 1, Parallelism: -1}); err == nil {
		t.Error("Solve accepted negative Parallelism")
	}
	// Parallelism beyond GOMAXPROCS is clamped, not rejected.
	if _, err := Solve(context.Background(), g, Request{K: 1, L: 1, Parallelism: 1 << 20}); err != nil {
		t.Errorf("Solve rejected large Parallelism: %v", err)
	}
}

func TestSolveCancellation(t *testing.T) {
	g, err := synth.Generate(synth.Config{Seed: 9, M: 8, N: 20, D: 3, G: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range Algorithms() {
		req := Request{Algorithm: algo.Name, K: 3, Parallelism: 4}
		if algo.Normalized {
			req.LMin = 2
		} else if algo.FullPathsOnly {
			req.L = FullPaths
		} else {
			req.L = 3
		}
		if _, err := Solve(ctx, g, req); err == nil {
			t.Errorf("%s ignored a canceled context", algo.Name)
		}
	}
}

func TestRegistry(t *testing.T) {
	algos := Algorithms()
	if len(algos) != 6 {
		t.Fatalf("registry lists %d algorithms, want 6: %v", len(algos), algos)
	}
	for _, want := range []string{"bfs", "brute", "brute-normalized", "dfs", "normalized", "ta"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("Lookup(%q) missed", want)
		}
	}
	if info, ok := Lookup(""); !ok || info.Name != DefaultAlgorithm {
		t.Errorf(`Lookup("") = %+v, want the default %q`, info, DefaultAlgorithm)
	}
	if _, ok := Lookup("nope"); ok {
		t.Error(`Lookup("nope") succeeded`)
	}
	for i := 1; i < len(algos); i++ {
		if algos[i-1].Name >= algos[i].Name {
			t.Fatalf("Algorithms() not sorted: %v", algos)
		}
	}
}

// TestParallelEquivalenceFuzz drives random worker counts across random
// graphs for all four real solvers; skipped under -short.
func TestParallelEquivalenceFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel equivalence fuzz skipped in short mode")
	}
	for trial := 0; trial < 25; trial++ {
		seed := int64(2000 + trial)
		m := 3 + trial%5
		g, err := synth.Generate(synth.Config{Seed: seed, M: m, N: 4 + trial%6, D: 1 + trial%3, G: trial % 3})
		if err != nil {
			t.Fatal(err)
		}
		workers := 2 + trial%7
		for _, algo := range []string{"bfs", "dfs", "ta", "normalized"} {
			req := Request{Algorithm: algo, K: 1 + trial%4}
			switch algo {
			case "ta":
				req.L = FullPaths
			case "normalized":
				req.LMin = 1 + trial%(m-1)
			default:
				req.L = 1 + trial%(m-1)
			}
			seq := req
			seq.Parallelism = 1
			want, err := solve(g, seq)
			if err != nil {
				t.Fatal(err)
			}
			par := req
			par.Parallelism = workers
			got, err := solve(g, par)
			if err != nil {
				t.Fatalf("trial %d %s workers %d: %v", trial, algo, workers, err)
			}
			if !reflect.DeepEqual(got.Paths, want.Paths) {
				t.Fatalf("trial %d %s workers %d: %v != %v", trial, algo, workers, got.Paths, want.Paths)
			}
		}
	}
}
