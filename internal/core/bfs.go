package core

import (
	"context"
	"fmt"

	"repro/internal/clustergraph"
	"repro/internal/par"
	"repro/internal/topk"
)

// solveBFS solves the kl-stable-clusters problem with Algorithm 2:
// process intervals left to right, keeping the nodes of the previous
// g+1 intervals (with their heaps) in memory, and annotate every node
// cij with heaps h^x_ij of the top-k subpaths of each length x ≤ l
// ending there. The global heap H accumulates the top-k paths of length
// exactly l.
//
// With Parallelism > 1 the nodes of each interval are expanded on a
// bounded pool: intra-interval nodes are independent (edges only span
// distinct intervals, so interval i's nodes read only frozen window
// state and write only their own heaps), each worker collects its
// global-heap candidates and counters in a private sink, and the sinks
// are merged after the join. The merge order does not matter — the
// top-k order is a strict total order — so results and Stats are
// byte-identical to the sequential pass.
func solveBFS(ctx context.Context, g *clustergraph.Graph, req Request) (*Result, error) {
	l, err := req.resolveL(g)
	if err != nil {
		return nil, err
	}
	if req.MaxWindowNodes < 0 {
		return nil, fmt.Errorf("%w: MaxWindowNodes must be >= 0, got %d", ErrInvalidRequest, req.MaxWindowNodes)
	}
	r := &bfsRun{
		g:        g,
		k:        req.K,
		l:        l,
		fullPath: l == g.NumIntervals()-1 && !req.DisableFullPathFastPath,
		window:   req.MaxWindowNodes,
		workers:  req.workers(),
		store:    newStoreBackend(req.Store),
		heaps:    make(map[int64]map[int]*topk.K),
		global:   topk.NewK(req.K),
	}
	for i := 0; i < g.NumIntervals(); i++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if err := r.processInterval(i); err != nil {
			return nil, err
		}
	}
	return &Result{Paths: r.global.Items(), Stats: r.stats}, nil
}

// bfsRun carries the state of one BFS execution. It is shared with the
// online (streaming) version, which feeds intervals as they arrive.
type bfsRun struct {
	g        *clustergraph.Graph
	k, l     int
	fullPath bool
	window   int // MaxWindowNodes; 0 = unlimited
	workers  int // 1 = sequential
	store    *storeBackend

	// heaps maps node id → (path length → heap). In full-path mode each
	// node has exactly one entry, at x = interval(node).
	heaps  map[int64]map[int]*topk.K
	global *topk.K
	stats  Stats
}

// bfsSink receives one worker's global-heap offers and counters. The
// sequential path uses a sink aliasing the run's own heap and stats, so
// both paths run the same code.
type bfsSink struct {
	stats  *Stats
	global *topk.K
}

// processInterval computes heaps for every node of interval i, using
// the heaps of the previous g+1 intervals, then evicts intervals that
// fall out of the window (Algorithm 2 lines 2–18).
func (r *bfsRun) processInterval(i int) error {
	nodes := r.g.NodesAt(i)
	// "Read Gi' in memory": the window nodes were computed in earlier
	// iterations and retained; the read cost the paper accounts is one
	// node-state read per window node per interval processed (a single
	// sequential pass when memory suffices). With a window cap, the
	// current interval's nodes are re-scanned once per block
	// (block-nested loops), multiplying reads of Gi.
	windowNodes := r.windowNodeIDs(i)
	blocks := r.splitBlocks(windowNodes)
	r.stats.NodeReads += int64(len(windowNodes)) // window scan
	if len(blocks) > 1 {
		// Each extra block re-reads interval i's nodes.
		r.stats.NodeReads += int64((len(blocks) - 1) * len(nodes))
	}

	for _, id := range nodes {
		r.heaps[id] = make(map[int]*topk.K)
	}
	for _, block := range blocks {
		inBlock := make(map[int64]bool, len(block))
		for _, id := range block {
			inBlock[id] = true
		}
		if r.workers > 1 && len(nodes) > 1 {
			stats := make([]Stats, len(nodes))
			locals := make([]*topk.K, len(nodes))
			par.ForEach(len(nodes), r.workers, func(n int) error {
				locals[n] = topk.NewK(r.k)
				r.extendNode(nodes[n], inBlock, bfsSink{stats: &stats[n], global: locals[n]})
				return nil
			})
			for n := range nodes {
				r.stats.add(stats[n])
				for _, p := range locals[n].Items() {
					r.global.Consider(p)
				}
			}
		} else {
			sk := bfsSink{stats: &r.stats, global: r.global}
			for _, id := range nodes {
				r.extendNode(id, inBlock, sk)
			}
		}
	}
	// "save cij along with h^x_ij to disk" (line 17).
	for _, id := range nodes {
		r.stats.NodeWrites++
		if r.store != nil {
			if err := r.store.save(id, encodePaths(heapsToPaths(r.heaps[id]))); err != nil {
				return err
			}
		}
	}
	r.evict(i)
	r.trackPeak()
	return nil
}

// extendNode folds every in-block parent of node id across its edge.
func (r *bfsRun) extendNode(id int64, inBlock map[int64]bool, sk bfsSink) {
	for _, ph := range r.g.Parents(id) {
		if !inBlock[ph.Peer] {
			continue
		}
		sk.stats.EdgeReads++
		r.extend(id, ph, sk)
	}
}

// extend merges parent ph's heaps into node id's heaps across the edge
// (Algorithm 2 lines 7–14).
func (r *bfsRun) extend(id int64, ph clustergraph.Half, sk bfsSink) {
	edgeLen := ph.Length
	parentHeaps := r.heaps[ph.Peer]
	// The edge alone is a path of length edgeLen (the implicit h^0 =
	// {empty path} case).
	r.offer(id, topk.Path{Nodes: []int64{ph.Peer}}.Append(id, edgeLen, ph.Weight), sk)
	for x, h := range parentHeaps {
		if x+edgeLen > r.l {
			continue
		}
		for _, pi := range h.Items() {
			r.offer(id, pi.Append(id, edgeLen, ph.Weight), sk)
		}
	}
}

// offer places path p (ending at node id) into the appropriate h^x heap
// and, when it has length exactly l, into the sink's global heap.
func (r *bfsRun) offer(id int64, p topk.Path, sk bfsSink) {
	if p.Length > r.l {
		return
	}
	if r.fullPath && r.g.Interval(p.Nodes[0]) != 0 {
		// Full-path mode: only prefixes that started at interval 0 can
		// grow into full paths; everything else is dead weight. This is
		// the paper's "one heap per node suffices" optimization —
		// temporal lengths make length(p) == interval(id) automatic.
		return
	}
	hs := r.heaps[id]
	h, ok := hs[p.Length]
	if !ok {
		h = topk.NewK(r.k)
		hs[p.Length] = h
	}
	sk.stats.HeapConsiders++
	h.Consider(p)
	if p.Length == r.l {
		sk.stats.HeapConsiders++
		sk.global.Consider(p)
	}
}

// windowNodeIDs lists the node ids of intervals [i-g-1, i-1] — the
// parents reachable from interval i.
func (r *bfsRun) windowNodeIDs(i int) []int64 {
	var ids []int64
	lo := i - r.g.Gap() - 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < i; j++ {
		ids = append(ids, r.g.NodesAt(j)...)
	}
	return ids
}

// splitBlocks partitions the window per MaxWindowNodes.
func (r *bfsRun) splitBlocks(window []int64) [][]int64 {
	if r.window == 0 || len(window) <= r.window {
		if len(window) == 0 {
			return [][]int64{nil}
		}
		return [][]int64{window}
	}
	var blocks [][]int64
	for len(window) > 0 {
		n := r.window
		if n > len(window) {
			n = len(window)
		}
		blocks = append(blocks, window[:n])
		window = window[n:]
	}
	return blocks
}

// evict drops heaps of nodes that can no longer be parents ("Gi−g−1 is
// discarded").
func (r *bfsRun) evict(i int) {
	old := i - r.g.Gap() - 1
	if old < 0 {
		return
	}
	for _, id := range r.g.NodesAt(old) {
		delete(r.heaps, id)
	}
}

// trackPeak records the number of paths currently held across window
// heaps (the memory-footprint proxy reported in Stats).
func (r *bfsRun) trackPeak() {
	var n int64
	for _, hs := range r.heaps {
		for _, h := range hs {
			n += int64(h.Len())
		}
	}
	if n > r.stats.PeakStatePaths {
		r.stats.PeakStatePaths = n
	}
}
