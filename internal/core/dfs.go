package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/clustergraph"
	"repro/internal/par"
	"repro/internal/topk"
)

// sourceID is the virtual source node pushed first (Section 4.3 "start
// by pushing the source node"). Its edges have weight and length zero.
const sourceID int64 = -1

// solveDFS solves the kl-stable-clusters problem with Algorithm 3: a
// depth-first traversal that annotates every node with maxweight (the
// best known prefix weight per prefix length, used for pruning) and
// bestpaths (top-k paths of each length starting at the node, built
// while backtracking). Each node push reads the node's state from
// storage and each pop writes it back, so memory holds only the stack —
// the low-memory/high-I/O trade-off the paper measures against BFS.
//
// Pruning assumes edge weights lie in (0,1] (Section 4.3); DFS returns
// an error for graphs with larger weights unless pruning is disabled.
//
// One deliberate deviation from the pseudocode: CanPrune also considers
// prefix length x = 0 (with maxweight 0) whenever a sought path could
// *start* at the candidate node. The paper's x-range starts at 1, which
// can discard subtrees that are unreachable through any worthwhile
// prefix yet still host high-weight paths starting inside them; the
// extra case keeps the algorithm exact for subpath queries (verified
// against brute force in the tests).
//
// With Parallelism > 1 the virtual source's children are split into
// contiguous chunks dispatched to a bounded pool (more chunks than
// workers, so finished workers steal remaining chunks). Each chunk is
// an independent sequential traversal with its own state map, local
// top-k and — when store-backed — its own key namespace; chunk-local
// pruning thresholds are at most the final global threshold, so the
// pruning stays admissible and the merged top-k is byte-identical to
// the sequential answer. Stats (Pruned, Repushes, reads/writes) differ
// in parallel runs: chunks prune against weaker local thresholds.
func solveDFS(ctx context.Context, g *clustergraph.Graph, req Request) (*Result, error) {
	l, err := req.resolveL(g)
	if err != nil {
		return nil, err
	}
	if !req.DisablePruning && g.MaxWeight() > 1 {
		return nil, fmt.Errorf("core: DFS pruning requires edge weights in (0,1]; graph max weight is %g (normalize the graph or disable pruning)", g.MaxWeight())
	}
	newRun := func(keyBase int64) *dfsRun {
		return &dfsRun{
			g:        g,
			k:        req.K,
			l:        l,
			fullPath: l == g.NumIntervals()-1,
			prune:    !req.DisablePruning,
			worst:    req.WorstFirstChildren,
			store:    newStoreBackend(req.Store),
			keyBase:  keyBase,
			ctx:      ctx,
			states:   make(map[int64]*dfsState),
			global:   topk.NewK(req.K),
		}
	}
	root := newRun(0)
	children := root.sourceChildren()
	workers := req.workers()
	if workers <= 1 || len(children) < 2 {
		if err := root.run(children); err != nil {
			return nil, err
		}
		return &Result{Paths: root.global.Items(), Stats: root.stats}, nil
	}
	// Over-partition so the pool load-balances uneven subtrees.
	chunks := workers * 4
	if chunks > len(children) {
		chunks = len(children)
	}
	runs := make([]*dfsRun, chunks)
	err = par.ForEachCtx(ctx, chunks, workers, func(ci int) error {
		lo := ci * len(children) / chunks
		hi := (ci + 1) * len(children) / chunks
		// Disjoint per-chunk key namespaces keep store-backed chunks from
		// reading each other's threshold-dependent partial state.
		sub := newRun(int64(ci) * int64(g.NumNodes()))
		runs[ci] = sub
		return sub.run(children[lo:hi])
	})
	if err != nil {
		return nil, err
	}
	merged := topk.NewK(req.K)
	var stats Stats
	for _, sub := range runs {
		stats.add(sub.stats)
		for _, p := range sub.global.Items() {
			merged.Consider(p)
		}
	}
	return &Result{Paths: merged.Items(), Stats: stats}, nil
}

type dfsRun struct {
	g        *clustergraph.Graph
	k, l     int
	fullPath bool
	prune    bool
	worst    bool
	store    *storeBackend
	keyBase  int64 // store-key namespace offset (parallel chunks)
	ctx      context.Context

	// states holds node state: all nodes when running purely in memory,
	// or only stack-resident nodes when a store is attached.
	states map[int64]*dfsState
	global *topk.K
	stats  Stats
}

// dfsFrame is one stack entry: a node plus its remaining children list.
type dfsFrame struct {
	node     int64
	children []clustergraph.Half
	next     int
}

// sourceChildren builds the virtual source's child list: interval-0
// nodes for full-path queries, every node otherwise (a subpath may
// start anywhere).
func (r *dfsRun) sourceChildren() []clustergraph.Half {
	var hs []clustergraph.Half
	add := func(id int64) { hs = append(hs, clustergraph.Half{Peer: id, Weight: 0, Length: 0}) }
	if r.fullPath {
		for _, id := range r.g.NodesAt(0) {
			add(id)
		}
		return hs
	}
	for i := 0; i < r.g.NumIntervals(); i++ {
		for _, id := range r.g.NodesAt(i) {
			add(id)
		}
	}
	return hs
}

// maxSteps bounds the traversal against pathological re-exploration
// loops; reaching it indicates a bug, not a big input.
func (r *dfsRun) maxSteps() int64 {
	v := int64(r.g.NumNodes()) + 1
	e := int64(r.g.NumEdges()) + int64(r.g.NumNodes()) + 1
	return 1000 * v * e
}

func (r *dfsRun) run(sourceChildren []clustergraph.Half) error {
	stack := []dfsFrame{{node: sourceID, children: sourceChildren}}
	var steps int64
	limit := r.maxSteps()
	const pollEvery = 4096
	for len(stack) > 0 {
		if steps++; steps > limit {
			return fmt.Errorf("core: DFS exceeded %d steps; suspected re-exploration loop", limit)
		}
		if steps%pollEvery == 0 {
			if err := ctxErr(r.ctx); err != nil {
				return err
			}
		}
		f := &stack[len(stack)-1]
		if f.next < len(f.children) {
			edge := f.children[f.next]
			f.next++
			r.stats.EdgeReads++
			child, err := r.loadState(edge.Peer)
			if err != nil {
				return err
			}
			if child.visited {
				// Line 10: update bestpaths(c) using the child's info.
				if f.node != sourceID {
					r.combine(f.node, edge, child)
				}
				r.releaseIfUnstacked(edge.Peer, stack)
				continue
			}
			child.visited = true
			if child.everPushed {
				r.stats.Repushes++
			}
			child.everPushed = true
			r.updateMaxweight(f.node, edge, child)
			if r.prune && r.canPrune(edge.Peer, child) {
				r.stats.Pruned++
				// Postpone the subtree: unmark every stacked node (the
				// all-descendants-considered guarantee is broken for
				// them) and shelve the child.
				child.visited = false
				for _, fr := range stack {
					if fr.node != sourceID {
						r.states[fr.node].visited = false
					}
				}
				if err := r.saveState(edge.Peer); err != nil {
					return err
				}
				continue
			}
			stack = append(stack, dfsFrame{node: edge.Peer, children: r.childList(edge.Peer)})
			r.trackPeak(stack)
		} else {
			// All children considered: pop, save, propagate to parent.
			stack = stack[:len(stack)-1]
			if f.node == sourceID {
				continue
			}
			state := r.states[f.node]
			if len(stack) > 0 {
				if p := &stack[len(stack)-1]; p.node != sourceID {
					// Find the edge parent→f.node (the one just consumed).
					edge := p.children[p.next-1]
					r.combine(p.node, edge, state)
				}
			}
			if err := r.saveState(f.node); err != nil {
				return err
			}
		}
	}
	return nil
}

// childList returns the node's children in the configured order. The
// graph stores them weight-descending (the paper's heuristic);
// WorstFirstChildren reverses for the ablation study.
func (r *dfsRun) childList(id int64) []clustergraph.Half {
	hs := r.g.Children(id)
	if !r.worst {
		return hs
	}
	rev := make([]clustergraph.Half, len(hs))
	for i, h := range hs {
		rev[len(hs)-1-i] = h
	}
	return rev
}

// loadState fetches (or creates) node state, reading from the store
// when one is attached (Algorithm 3 line 8).
func (r *dfsRun) loadState(id int64) (*dfsState, error) {
	r.stats.NodeReads++
	if s, ok := r.states[id]; ok {
		return s, nil
	}
	if r.store != nil {
		b, ok, err := r.store.load(r.keyBase + id)
		if err != nil {
			return nil, err
		}
		if ok {
			s, err := decodeDFSState(b, r.k)
			if err != nil {
				return nil, err
			}
			r.states[id] = s
			return s, nil
		}
	}
	s := newDFSState()
	r.states[id] = s
	return s, nil
}

// saveState persists node state (lines 20, 24) and, when a store is
// attached, evicts it from memory so RAM holds only the stack.
func (r *dfsRun) saveState(id int64) error {
	r.stats.NodeWrites++
	if r.store == nil {
		return nil
	}
	s := r.states[id]
	if err := r.store.save(r.keyBase+id, encodeDFSState(s)); err != nil {
		return err
	}
	delete(r.states, id)
	return nil
}

// releaseIfUnstacked drops an already-visited child's state from memory
// after a combine, when store-backed and the node is not on the stack.
func (r *dfsRun) releaseIfUnstacked(id int64, stack []dfsFrame) {
	if r.store == nil {
		return
	}
	for _, fr := range stack {
		if fr.node == id {
			return
		}
	}
	// The state was only needed for the combine; it is already on disk
	// (it was saved when the node was popped).
	delete(r.states, id)
}

// updateMaxweight propagates the parent's prefix weights across the
// edge (Algorithm 3 line 16): maxweight(c',x) =
// max(maxweight(c',x), maxweight(c, x−len) + w).
func (r *dfsRun) updateMaxweight(parent int64, edge clustergraph.Half, child *dfsState) {
	if parent == sourceID {
		return // the empty prefix is already seeded at x = 0
	}
	ps := r.states[parent]
	for x, w := range ps.maxweight {
		nx := x + edge.Length
		if nx > r.l {
			continue
		}
		nw := w + edge.Weight
		if cur, ok := child.maxweight[nx]; !ok || nw > cur {
			child.maxweight[nx] = nw
		}
	}
}

// canPrune implements CanPrune (Algorithm 3): the node may be shelved
// when, for every feasible prefix length x, even the best known prefix
// extended by a maximum-weight suffix cannot beat the current top-k
// threshold. Feasible x additionally includes 0 when a sought path can
// start at the node (see the deviation note on solveDFS).
func (r *dfsRun) canPrune(id int64, s *dfsState) bool {
	minK := r.global.Threshold()
	i := r.g.Interval(id)
	m := r.g.NumIntervals()
	// Feasible prefix lengths x of a length-l path meeting this node:
	// the suffix l−x must fit in the remaining intervals and the prefix
	// within the elapsed ones. Unlike the paper's range, x = l is
	// included: at a node in the final position of a sought path the
	// whole path is the prefix and the bound degenerates to
	// maxweight(c', l) — exactly how the paper's own Table 2 trace
	// treats the interval-3 nodes.
	xmin := r.l - (m - 1 - i)
	if xmin < 0 {
		xmin = 0
	}
	xmax := r.l
	if i < xmax {
		xmax = i
	}
	if xmin > xmax {
		// No length-l path can touch this node in any position.
		return true
	}
	if math.IsInf(minK, -1) {
		return false
	}
	for x := xmin; x <= xmax; x++ {
		mw, ok := s.maxweight[x]
		if !ok {
			continue // no prefix of this length known yet
		}
		if mw+float64(r.l-x) >= minK {
			return false
		}
	}
	return true
}

// combine folds a finished child's bestpaths into the parent's
// (Algorithm 3 lines 10 and 26): every path starting at the child
// extends, via the edge, to a path starting at the parent; the edge by
// itself is also such a path.
func (r *dfsRun) combine(parent int64, edge clustergraph.Half, child *dfsState) {
	ps := r.states[parent]
	r.addBest(ps, topk.Path{
		Nodes:  []int64{parent, edge.Peer},
		Length: edge.Length,
		Weight: edge.Weight,
	})
	for y, h := range child.best {
		ny := y + edge.Length
		if ny > r.l {
			continue
		}
		for _, p := range h.Items() {
			r.addBest(ps, prepend(parent, edge.Length, edge.Weight, p))
		}
	}
}

// addBest inserts a path into the owner's bestpaths heap for its length
// and, when the length is exactly l, offers it to the global heap.
func (r *dfsRun) addBest(s *dfsState, p topk.Path) {
	if p.Length > r.l {
		return
	}
	if r.fullPath {
		// Only suffixes that can complete a full path matter: the path
		// must end at the last interval.
		last := p.Nodes[len(p.Nodes)-1]
		if r.g.Interval(last) != r.g.NumIntervals()-1 {
			return
		}
	}
	h, ok := s.best[p.Length]
	if !ok {
		h = topk.NewK(r.k)
		s.best[p.Length] = h
	}
	r.stats.HeapConsiders++
	h.Consider(p)
	if p.Length == r.l {
		first := p.Nodes[0]
		if !r.fullPath || r.g.Interval(first) == 0 {
			r.stats.HeapConsiders++
			r.global.Consider(p)
		}
	}
}

// prepend extends p backwards by one edge from node.
func prepend(node int64, edgeLen int, w float64, p topk.Path) topk.Path {
	nodes := make([]int64, 0, len(p.Nodes)+1)
	nodes = append(nodes, node)
	nodes = append(nodes, p.Nodes...)
	return topk.Path{Nodes: nodes, Length: p.Length + edgeLen, Weight: p.Weight + w}
}

// trackPeak records the paths held by stack-resident states (the DFS
// memory footprint).
func (r *dfsRun) trackPeak(stack []dfsFrame) {
	var n int64
	for _, fr := range stack {
		if fr.node == sourceID {
			continue
		}
		if s, ok := r.states[fr.node]; ok {
			n += s.pathCount()
		}
	}
	if n > r.stats.PeakStatePaths {
		r.stats.PeakStatePaths = n
	}
}
