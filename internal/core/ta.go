package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/clustergraph"
	"repro/internal/par"
	"repro/internal/topk"
)

// ErrSeekBudget is returned (wrapped) when a TA run exceeds MaxSeeks.
var ErrSeekBudget = fmt.Errorf("core: TA random-seek budget exhausted")

// solveTA solves the stable-clusters problem for full paths (l must be
// m−1, per Section 4.4) by adapting the threshold algorithm: one
// weight-descending edge list per interval pair, consumed round-robin;
// every seen edge is expanded — via random seeks — into all full paths
// containing it; the run stops when the current k-th best weight
// reaches the virtual-tuple bound (the sum of the top unseen weights of
// all lists).
//
// With Parallelism > 1 each round's head edges (one per non-exhausted
// list) are expanded concurrently: workers read the round-start
// startwts/endwts bounds and top-k threshold (frozen during the round,
// so the skip test stays admissible — it can only prune less than the
// sequential pass) and collect candidate paths and bound updates in
// private sinks, merged in list order after the join. Candidate sets
// at each round boundary are supersets of the sequential pass's
// survivors with identical exact bound values, so the final top-k is
// byte-identical; Pruned/HeapConsiders counters can differ.
func solveTA(ctx context.Context, g *clustergraph.Graph, req Request) (*Result, error) {
	l, err := req.resolveL(g)
	if err != nil {
		return nil, err
	}
	if l != g.NumIntervals()-1 {
		return nil, fmt.Errorf("%w: TA finds full paths only (l = m-1 = %d), got l = %d", ErrInvalidRequest, g.NumIntervals()-1, l)
	}
	r := &taRun{
		g:        g,
		k:        req.K,
		useBound: !req.DisableBoundHashTables,
		maxSeeks: req.MaxSeeks,
		workers:  req.workers(),
		ctx:      ctx,
		global:   topk.NewK(req.K),
		startwts: make(map[int64]float64),
		endwts:   make(map[int64]float64),
	}
	if err := r.run(); err != nil {
		return nil, err
	}
	r.stats.RandomSeeks = r.seeks.Load()
	return &Result{Paths: r.global.Items(), Stats: r.stats}, nil
}

type taEdge struct {
	from, to int64
	weight   float64
	length   int
}

type taRun struct {
	g        *clustergraph.Graph
	k        int
	useBound bool
	maxSeeks int64
	workers  int
	ctx      context.Context
	global   *topk.K
	stats    Stats
	// seeks is shared by all workers of a round so MaxSeeks bounds the
	// whole run, not each worker.
	seeks atomic.Int64

	// startwts[c] is the weight of the best full-suffix starting at c
	// (reaching the last interval); endwts[c] the best full-prefix
	// ending at c (from interval 0). Populated lazily as nodes are
	// expanded, exactly as Section 4.4 describes.
	startwts map[int64]float64
	endwts   map[int64]float64
}

// taSink collects one expansion's output: candidate full paths, bound
// updates and counters. The sequential path merges each sink
// immediately (matching the original in-place algorithm); the parallel
// path merges all of a round's sinks after the join.
type taSink struct {
	cands    []topk.Path
	startwts map[int64]float64
	endwts   map[int64]float64
	pruned   int64
}

// buildLists materializes one weight-descending edge list per interval
// pair (i, j), j−i ≤ g+1.
func (r *taRun) buildLists() [][]taEdge {
	g := r.g
	listIndex := map[[2]int]int{}
	var lists [][]taEdge
	for i := 0; i < g.NumIntervals(); i++ {
		for j := i + 1; j <= i+g.Gap()+1 && j < g.NumIntervals(); j++ {
			listIndex[[2]int{i, j}] = len(lists)
			lists = append(lists, nil)
		}
	}
	for i := 0; i < g.NumIntervals(); i++ {
		for _, u := range g.NodesAt(i) {
			for _, h := range g.Children(u) {
				key := [2]int{i, i + h.Length}
				li := listIndex[key]
				lists[li] = append(lists[li], taEdge{from: u, to: h.Peer, weight: h.Weight, length: h.Length})
			}
		}
	}
	for _, list := range lists {
		sort.Slice(list, func(a, b int) bool {
			if list[a].weight != list[b].weight {
				return list[a].weight > list[b].weight
			}
			if list[a].from != list[b].from {
				return list[a].from < list[b].from
			}
			return list[a].to < list[b].to
		})
	}
	return lists
}

func (r *taRun) run() error {
	lists := r.buildLists()
	pos := make([]int, len(lists))
	m := r.g.NumIntervals()

	for {
		if err := ctxErr(r.ctx); err != nil {
			return err
		}
		// Virtual tuple: the sum of the best unseen weight of every
		// list. Any entirely-unseen path is composed of unseen edges, a
		// subset of the lists, so (weights being positive) the full sum
		// is a safe upper bound.
		virtual := 0.0
		exhausted := true
		for li, list := range lists {
			if pos[li] < len(list) {
				virtual += list[pos[li]].weight
				exhausted = false
			}
		}
		if exhausted {
			return nil
		}
		if r.global.Len() == r.k && r.global.Threshold() >= virtual {
			return nil // the stopping rule
		}
		// Round-robin: consume the head of each non-empty list.
		heads := make([]taEdge, 0, len(lists))
		for li := range lists {
			if pos[li] >= len(lists[li]) {
				continue
			}
			heads = append(heads, lists[li][pos[li]])
			pos[li]++
		}
		if r.workers > 1 && len(heads) > 1 {
			sinks := make([]taSink, len(heads))
			err := par.ForEachCtx(r.ctx, len(heads), r.workers, func(i int) error {
				return r.expand(heads[i], m, &sinks[i])
			})
			if err != nil {
				return err
			}
			for i := range sinks {
				r.merge(&sinks[i])
			}
		} else {
			for _, e := range heads {
				var sk taSink
				if err := r.expand(e, m, &sk); err != nil {
					return err
				}
				r.merge(&sk)
			}
		}
	}
}

// merge folds one expansion sink into the run: bound values are exact
// per node (identical whichever worker computed them), and the top-k
// heap is offer-order independent, so merge order does not matter.
func (r *taRun) merge(sk *taSink) {
	for c, w := range sk.endwts {
		r.endwts[c] = w
	}
	for c, w := range sk.startwts {
		r.startwts[c] = w
	}
	r.stats.Pruned += sk.pruned
	for _, p := range sk.cands {
		r.stats.HeapConsiders++
		r.global.Consider(p)
	}
}

// expand performs the random seeks that materialize every full path
// containing edge e and records each candidate in the sink. It only
// reads the run's shared bounds and heap (frozen during a parallel
// round); all writes go to the sink.
func (r *taRun) expand(e taEdge, m int, sk *taSink) error {
	if r.useBound {
		sw, swOK := r.startwts[e.to]
		ew, ewOK := r.endwts[e.from]
		if swOK && ewOK {
			// Both bounds known: skip the expansion when even the best
			// combination cannot qualify.
			if r.global.Len() == r.k && ew+e.weight+sw < r.global.Threshold() {
				sk.pruned++
				return nil
			}
		}
	}
	prefixes, err := r.pathsEnding(e.from, sk)
	if err != nil {
		return err
	}
	suffixes, err := r.pathsStarting(e.to, sk)
	if err != nil {
		return err
	}
	for _, p := range prefixes {
		for _, s := range suffixes {
			nodes := make([]int64, 0, len(p.Nodes)+len(s.Nodes))
			nodes = append(nodes, p.Nodes...)
			nodes = append(nodes, s.Nodes...)
			sk.cands = append(sk.cands, topk.Path{
				Nodes:  nodes,
				Length: m - 1,
				Weight: p.Weight + e.weight + s.Weight,
			})
		}
	}
	return nil
}

// pathsEnding enumerates all full prefixes: paths from interval 0
// ending at node c. Each adjacency examination is a random seek.
func (r *taRun) pathsEnding(c int64, sk *taSink) ([]topk.Path, error) {
	if r.g.Interval(c) == 0 {
		return []topk.Path{{Nodes: []int64{c}}}, nil
	}
	var out []topk.Path
	var rec func(c int64, suffix topk.Path) error
	rec = func(c int64, suffix topk.Path) error {
		if err := r.seek(); err != nil {
			return err
		}
		for _, h := range r.g.Parents(c) {
			p := prepend(h.Peer, h.Length, h.Weight, suffix)
			if r.g.Interval(h.Peer) == 0 {
				out = append(out, p)
				continue
			}
			if err := rec(h.Peer, p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(c, topk.Path{Nodes: []int64{c}}); err != nil {
		return nil, err
	}
	if r.useBound && len(out) > 0 {
		best := 0.0
		for i, p := range out {
			if i == 0 || p.Weight > best {
				best = p.Weight
			}
		}
		if sk.endwts == nil {
			sk.endwts = make(map[int64]float64)
		}
		sk.endwts[c] = best
	}
	return out, nil
}

// pathsStarting enumerates all full suffixes: paths from node c to the
// last interval.
func (r *taRun) pathsStarting(c int64, sk *taSink) ([]topk.Path, error) {
	last := r.g.NumIntervals() - 1
	if r.g.Interval(c) == last {
		return []topk.Path{{Nodes: []int64{c}}}, nil
	}
	var out []topk.Path
	var rec func(c int64, prefix topk.Path) error
	rec = func(c int64, prefix topk.Path) error {
		if err := r.seek(); err != nil {
			return err
		}
		for _, h := range r.g.Children(c) {
			p := prefix.Append(h.Peer, h.Length, h.Weight)
			if r.g.Interval(h.Peer) == last {
				out = append(out, p)
				continue
			}
			if err := rec(h.Peer, p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(c, topk.Path{Nodes: []int64{c}}); err != nil {
		return nil, err
	}
	if r.useBound && len(out) > 0 {
		best := 0.0
		for i, p := range out {
			if i == 0 || p.Weight > best {
				best = p.Weight
			}
		}
		if sk.startwts == nil {
			sk.startwts = make(map[int64]float64)
		}
		sk.startwts[c] = best
	}
	return out, nil
}

// seek accounts one random seek and enforces the budget. Seeks also
// carry the cancellation poll: a single round can expand into
// exponentially many seeks, so the per-round check alone is not prompt.
// The counter is shared across a round's workers, so MaxSeeks bounds
// the run at any Parallelism.
func (r *taRun) seek() error {
	n := r.seeks.Add(1)
	if r.maxSeeks > 0 && n > r.maxSeeks {
		return fmt.Errorf("%w (limit %d)", ErrSeekBudget, r.maxSeeks)
	}
	if n%4096 == 0 {
		if err := ctxErr(r.ctx); err != nil {
			return err
		}
	}
	return nil
}
