package core

import (
	"fmt"
	"sort"

	"repro/internal/clustergraph"
	"repro/internal/topk"
)

// TAOptions extends Options with knobs specific to the threshold
// algorithm adaptation of Section 4.4.
type TAOptions struct {
	Options
	// DisableBoundHashTables turns off the startwts/endwts upper-bound
	// optimization (ablation).
	DisableBoundHashTables bool
	// MaxSeeks aborts the run after this many random seeks. The paper
	// reports the TA adaptation needing up to m^(d−1) seeks and being
	// impractical beyond m ≈ 9; the cap turns a ">10 hours" run into an
	// error. Zero means unlimited.
	MaxSeeks int64
}

// ErrSeekBudget is returned (wrapped) when a TA run exceeds MaxSeeks.
var ErrSeekBudget = fmt.Errorf("core: TA random-seek budget exhausted")

// TA solves the stable-clusters problem for full paths (l must be m−1,
// per Section 4.4) by adapting the threshold algorithm: one
// weight-descending edge list per interval pair, consumed round-robin;
// every seen edge is expanded — via random seeks — into all full paths
// containing it; the run stops when the current k-th best weight
// reaches the virtual-tuple bound (the sum of the top unseen weights of
// all lists).
func TA(g *clustergraph.Graph, opts TAOptions) (*Result, error) {
	l, err := opts.resolveL(g)
	if err != nil {
		return nil, err
	}
	if l != g.NumIntervals()-1 {
		return nil, fmt.Errorf("core: TA finds full paths only (l = m-1 = %d), got l = %d", g.NumIntervals()-1, l)
	}
	r := &taRun{
		g:        g,
		k:        opts.K,
		useBound: !opts.DisableBoundHashTables,
		maxSeeks: opts.MaxSeeks,
		opts:     opts.Options,
		global:   topk.NewK(opts.K),
		startwts: make(map[int64]float64),
		endwts:   make(map[int64]float64),
	}
	if err := r.run(); err != nil {
		return nil, err
	}
	return &Result{Paths: r.global.Items(), Stats: r.stats}, nil
}

type taEdge struct {
	from, to int64
	weight   float64
	length   int
}

type taRun struct {
	g        *clustergraph.Graph
	k        int
	useBound bool
	maxSeeks int64
	opts     Options // for cancellation polls
	global   *topk.K
	stats    Stats

	// startwts[c] is the weight of the best full-suffix starting at c
	// (reaching the last interval); endwts[c] the best full-prefix
	// ending at c (from interval 0). Populated lazily as nodes are
	// expanded, exactly as Section 4.4 describes.
	startwts map[int64]float64
	endwts   map[int64]float64
}

// buildLists materializes one weight-descending edge list per interval
// pair (i, j), j−i ≤ g+1.
func (r *taRun) buildLists() [][]taEdge {
	g := r.g
	listIndex := map[[2]int]int{}
	var lists [][]taEdge
	for i := 0; i < g.NumIntervals(); i++ {
		for j := i + 1; j <= i+g.Gap()+1 && j < g.NumIntervals(); j++ {
			listIndex[[2]int{i, j}] = len(lists)
			lists = append(lists, nil)
		}
	}
	for i := 0; i < g.NumIntervals(); i++ {
		for _, u := range g.NodesAt(i) {
			for _, h := range g.Children(u) {
				key := [2]int{i, i + h.Length}
				li := listIndex[key]
				lists[li] = append(lists[li], taEdge{from: u, to: h.Peer, weight: h.Weight, length: h.Length})
			}
		}
	}
	for _, list := range lists {
		sort.Slice(list, func(a, b int) bool {
			if list[a].weight != list[b].weight {
				return list[a].weight > list[b].weight
			}
			if list[a].from != list[b].from {
				return list[a].from < list[b].from
			}
			return list[a].to < list[b].to
		})
	}
	return lists
}

func (r *taRun) run() error {
	lists := r.buildLists()
	pos := make([]int, len(lists))
	m := r.g.NumIntervals()

	for {
		if err := r.opts.ctxErr(); err != nil {
			return err
		}
		// Virtual tuple: the sum of the best unseen weight of every
		// list. Any entirely-unseen path is composed of unseen edges, a
		// subset of the lists, so (weights being positive) the full sum
		// is a safe upper bound.
		virtual := 0.0
		exhausted := true
		for li, list := range lists {
			if pos[li] < len(list) {
				virtual += list[pos[li]].weight
				exhausted = false
			}
		}
		if exhausted {
			return nil
		}
		if r.global.Len() == r.k && r.global.Threshold() >= virtual {
			return nil // the stopping rule
		}
		// Round-robin: consume the head of each non-empty list.
		for li := range lists {
			if pos[li] >= len(lists[li]) {
				continue
			}
			e := lists[li][pos[li]]
			pos[li]++
			if err := r.expand(e, m); err != nil {
				return err
			}
		}
	}
}

// expand performs the random seeks that materialize every full path
// containing edge e and checks each against the top-k heap.
func (r *taRun) expand(e taEdge, m int) error {
	if r.useBound {
		sw, swOK := r.startwts[e.to]
		ew, ewOK := r.endwts[e.from]
		if swOK && ewOK {
			// Both bounds known: skip the expansion when even the best
			// combination cannot qualify.
			if r.global.Len() == r.k && ew+e.weight+sw < r.global.Threshold() {
				r.stats.Pruned++
				return nil
			}
		}
	}
	prefixes, err := r.pathsEnding(e.from)
	if err != nil {
		return err
	}
	suffixes, err := r.pathsStarting(e.to)
	if err != nil {
		return err
	}
	for _, p := range prefixes {
		for _, s := range suffixes {
			nodes := make([]int64, 0, len(p.Nodes)+len(s.Nodes))
			nodes = append(nodes, p.Nodes...)
			nodes = append(nodes, s.Nodes...)
			full := topk.Path{
				Nodes:  nodes,
				Length: m - 1,
				Weight: p.Weight + e.weight + s.Weight,
			}
			r.stats.HeapConsiders++
			r.global.Consider(full)
		}
	}
	return nil
}

// pathsEnding enumerates all full prefixes: paths from interval 0
// ending at node c. Each adjacency examination is a random seek.
func (r *taRun) pathsEnding(c int64) ([]topk.Path, error) {
	if r.g.Interval(c) == 0 {
		return []topk.Path{{Nodes: []int64{c}}}, nil
	}
	var out []topk.Path
	var rec func(c int64, suffix topk.Path) error
	rec = func(c int64, suffix topk.Path) error {
		if err := r.seek(); err != nil {
			return err
		}
		for _, h := range r.g.Parents(c) {
			p := prepend(h.Peer, h.Length, h.Weight, suffix)
			if r.g.Interval(h.Peer) == 0 {
				out = append(out, p)
				continue
			}
			if err := rec(h.Peer, p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(c, topk.Path{Nodes: []int64{c}}); err != nil {
		return nil, err
	}
	if r.useBound {
		best := 0.0
		for i, p := range out {
			if i == 0 || p.Weight > best {
				best = p.Weight
			}
		}
		if len(out) > 0 {
			r.endwts[c] = best
		}
	}
	return out, nil
}

// pathsStarting enumerates all full suffixes: paths from node c to the
// last interval.
func (r *taRun) pathsStarting(c int64) ([]topk.Path, error) {
	last := r.g.NumIntervals() - 1
	if r.g.Interval(c) == last {
		return []topk.Path{{Nodes: []int64{c}}}, nil
	}
	var out []topk.Path
	var rec func(c int64, prefix topk.Path) error
	rec = func(c int64, prefix topk.Path) error {
		if err := r.seek(); err != nil {
			return err
		}
		for _, h := range r.g.Children(c) {
			p := prefix.Append(h.Peer, h.Length, h.Weight)
			if r.g.Interval(h.Peer) == last {
				out = append(out, p)
				continue
			}
			if err := rec(h.Peer, p); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(c, topk.Path{Nodes: []int64{c}}); err != nil {
		return nil, err
	}
	if r.useBound {
		best := 0.0
		for i, p := range out {
			if i == 0 || p.Weight > best {
				best = p.Weight
			}
		}
		if len(out) > 0 {
			r.startwts[c] = best
		}
	}
	return out, nil
}

// seek accounts one random seek and enforces the budget. Seeks also
// carry the cancellation poll: a single round can expand into
// exponentially many seeks, so the per-round check alone is not prompt.
func (r *taRun) seek() error {
	r.stats.RandomSeeks++
	if r.maxSeeks > 0 && r.stats.RandomSeeks > r.maxSeeks {
		return fmt.Errorf("%w (limit %d)", ErrSeekBudget, r.maxSeeks)
	}
	if r.stats.RandomSeeks%4096 == 0 {
		if err := r.opts.ctxErr(); err != nil {
			return err
		}
	}
	return nil
}
