package core

import (
	"context"
	"testing"

	"repro/internal/synth"
	"repro/internal/topk"
)

func pathOf(w float64, nodes ...int64) topk.Path {
	return topk.Path{Nodes: nodes, Length: len(nodes) - 1, Weight: w}
}

func TestDiversifyModes(t *testing.T) {
	paths := []topk.Path{
		pathOf(3.0, 1, 2, 3),
		pathOf(2.5, 1, 2, 4), // shares prefix edge (1,2) and start node 1
		pathOf(2.0, 5, 2, 3), // shares end node 3 and suffix edge (2,3)
		pathOf(1.5, 6, 7, 8), // disjoint from everything
	}
	cases := []struct {
		mode DiversityMode
		want []float64
	}{
		{DistinctEndpoints, []float64{3.0, 1.5}},   // #2 shares start 1, #3 shares end 3
		{DistinctPrefix, []float64{3.0, 2.0, 1.5}}, // #2 shares edge (1,2)
		{DistinctSuffix, []float64{3.0, 2.5, 1.5}}, // #3 shares edge (2,3)
		{DisjointNodes, []float64{3.0, 1.5}},       // #2 and #3 reuse nodes
	}
	for _, c := range cases {
		got, err := Diversify(paths, 10, c.mode)
		if err != nil {
			t.Fatalf("%v: %v", c.mode, err)
		}
		ws := make([]float64, len(got))
		for i, p := range got {
			ws[i] = p.Weight
		}
		if !weightsAlmostEqual(ws, c.want) {
			t.Errorf("%v: got %v, want %v", c.mode, ws, c.want)
		}
	}
}

func TestDiversifyRespectsK(t *testing.T) {
	paths := []topk.Path{pathOf(3, 1, 2), pathOf(2, 3, 4), pathOf(1, 5, 6)}
	got, err := Diversify(paths, 2, DisjointNodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("got %d paths, want 2", len(got))
	}
	if _, err := Diversify(paths, 0, DisjointNodes); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Diversify(paths, 1, DiversityMode(99)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestDiversityModeString(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range []DiversityMode{DistinctEndpoints, DistinctPrefix, DistinctSuffix, DisjointNodes} {
		s := m.String()
		if s == "" || seen[s] {
			t.Errorf("mode %d has empty or duplicate name %q", int(m), s)
		}
		seen[s] = true
	}
	if DiversityMode(42).String() != "DiversityMode(42)" {
		t.Errorf("unknown mode String = %q", DiversityMode(42).String())
	}
}

func TestDiverseKL(t *testing.T) {
	g, err := synth.Generate(synth.Config{Seed: 5, M: 5, N: 30, D: 4, G: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiverseKL(context.Background(), g, Request{K: 3, L: FullPaths}, DistinctEndpoints, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) == 0 {
		t.Fatal("no diverse paths found")
	}
	seenStart := map[int64]bool{}
	seenEnd := map[int64]bool{}
	for _, p := range res.Paths {
		s, e := p.Nodes[0], p.Nodes[len(p.Nodes)-1]
		if seenStart[s] || seenEnd[e] {
			t.Errorf("path %v violates endpoint diversity", p)
		}
		seenStart[s] = true
		seenEnd[e] = true
	}
	// The best diverse path must equal the best unconstrained path.
	plain, err := solve(g, Request{K: 1, L: FullPaths})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Paths[0].Weight, plain.Paths[0].Weight) {
		t.Errorf("diverse top-1 %g != plain top-1 %g", res.Paths[0].Weight, plain.Paths[0].Weight)
	}
}
