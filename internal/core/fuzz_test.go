package core

import (
	"math/rand"
	"testing"

	"repro/internal/synth"
)

// FuzzSolverEquivalence is the native-fuzzing form of
// TestFuzzEquivalence, driven through the unified Solve dispatch: the
// engine mutates the generator parameters plus a worker count, and the
// solvers must keep agreeing with the exhaustive oracle at any
// Parallelism. The nightly fuzz-smoke CI job runs it for ~60s;
// `go test` runs the seed corpus as a regression test.
func FuzzSolverEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(5), uint8(2), uint8(1), uint8(2), uint8(3), uint8(1))
	f.Add(int64(7), uint8(2), uint8(2), uint8(1), uint8(0), uint8(1), uint8(1), uint8(4))
	f.Add(int64(42), uint8(7), uint8(8), uint8(3), uint8(2), uint8(6), uint8(5), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, m8, n8, d8, g8, l8, k8, w8 uint8) {
		m := 2 + int(m8)%6
		cfg := synth.Config{
			Seed: seed,
			M:    m,
			N:    2 + int(n8)%7,
			D:    1 + int(d8)%3,
			G:    int(g8) % 3,
		}
		l := 1 + int(l8)%(m-1)
		k := 1 + int(k8)%5
		workers := 1 + int(w8)%8
		g, err := synth.Generate(cfg)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		want, err := solve(g, Request{Algorithm: "brute", K: k, L: l})
		if err != nil {
			t.Fatal(err)
		}
		dfs, err := solve(g, Request{Algorithm: "dfs", K: k, L: l, Parallelism: workers})
		if err != nil {
			t.Fatalf("cfg %+v l %d k %d: %v", cfg, l, k, err)
		}
		if !weightsAlmostEqual(dfs.Weights(), want.Weights()) {
			t.Fatalf("cfg %+v l %d k %d w %d: DFS %v != brute %v", cfg, l, k, workers, dfs.Weights(), want.Weights())
		}
		bfs, err := solve(g, Request{K: k, L: l, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !weightsAlmostEqual(bfs.Weights(), want.Weights()) {
			t.Fatalf("cfg %+v l %d k %d w %d: BFS %v != brute %v", cfg, l, k, workers, bfs.Weights(), want.Weights())
		}
	})
}

// TestFuzzEquivalence hammers BFS and DFS (with pruning) against the
// exhaustive oracle on randomized graph shapes. Skipped under -short.
func TestFuzzEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz equivalence skipped in short mode")
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 150; trial++ {
		m := 2 + rng.Intn(6)
		cfg := synth.Config{Seed: rng.Int63(), M: m, N: 2 + rng.Intn(7), D: 1 + rng.Intn(3), G: rng.Intn(3)}
		l := 1 + rng.Intn(m-1)
		k := 1 + rng.Intn(5)
		g, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := solve(g, Request{Algorithm: "brute", K: k, L: l})
		if err != nil {
			t.Fatal(err)
		}
		dfs, err := solve(g, Request{Algorithm: "dfs", K: k, L: l})
		if err != nil {
			t.Fatalf("trial %d cfg %+v l %d k %d: %v", trial, cfg, l, k, err)
		}
		if !weightsAlmostEqual(dfs.Weights(), want.Weights()) {
			t.Fatalf("trial %d cfg %+v l %d k %d: DFS %v != brute %v",
				trial, cfg, l, k, dfs.Weights(), want.Weights())
		}
		bfs, err := solve(g, Request{K: k, L: l})
		if err != nil {
			t.Fatal(err)
		}
		if !weightsAlmostEqual(bfs.Weights(), want.Weights()) {
			t.Fatalf("trial %d: BFS %v != brute %v", trial, bfs.Weights(), want.Weights())
		}
	}
}
