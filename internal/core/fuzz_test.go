package core

import (
	"math/rand"
	"testing"

	"repro/internal/synth"
)

// TestFuzzEquivalence hammers BFS and DFS (with pruning) against the
// exhaustive oracle on randomized graph shapes. Skipped under -short.
func TestFuzzEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz equivalence skipped in short mode")
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 150; trial++ {
		m := 2 + rng.Intn(6)
		cfg := synth.Config{Seed: rng.Int63(), M: m, N: 2 + rng.Intn(7), D: 1 + rng.Intn(3), G: rng.Intn(3)}
		l := 1 + rng.Intn(m-1)
		k := 1 + rng.Intn(5)
		g, err := synth.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteKL(g, Options{K: k, L: l})
		if err != nil {
			t.Fatal(err)
		}
		dfs, err := DFS(g, DFSOptions{Options: Options{K: k, L: l}})
		if err != nil {
			t.Fatalf("trial %d cfg %+v l %d k %d: %v", trial, cfg, l, k, err)
		}
		if !weightsAlmostEqual(dfs.Weights(), want.Weights()) {
			t.Fatalf("trial %d cfg %+v l %d k %d: DFS %v != brute %v",
				trial, cfg, l, k, dfs.Weights(), want.Weights())
		}
		bfs, err := BFS(g, BFSOptions{Options: Options{K: k, L: l}})
		if err != nil {
			t.Fatal(err)
		}
		if !weightsAlmostEqual(bfs.Weights(), want.Weights()) {
			t.Fatalf("trial %d: BFS %v != brute %v", trial, bfs.Weights(), want.Weights())
		}
	}
}
