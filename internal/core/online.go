package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/simjoin"
	"repro/internal/topk"
)

// Stream is the online version of the stable-clusters machinery
// (Section 4.6): intervals arrive one at a time, heaps for the new
// interval's clusters are computed against the retained g+1-interval
// window, and the global top-k is maintained incrementally — no past
// computation is redone.
//
// As the paper observes, the streaming BFS and DFS perform the same
// per-interval operations (only their bootstrap differs), so a single
// implementation serves both.
type Stream struct {
	k, l  int
	gap   int
	theta float64
	aff   cluster.AffinityFunc
	join  bool

	m      int // intervals consumed so far
	nextID int64
	// window holds the last gap+1 intervals: their clusters and their
	// per-node heaps.
	window []streamInterval
	global *topk.K
	stats  Stats
}

type streamInterval struct {
	interval int
	clusters []cluster.Cluster
	ids      []int64
	heaps    []map[int]*topk.K // parallel to ids: path length → heap
}

// StreamOptions configures a Stream.
type StreamOptions struct {
	// K is the number of top paths maintained.
	K int
	// L is the exact temporal path length sought. Full-path queries
	// (l = m−1) do not apply online, since m grows without bound.
	L int
	// Gap is g.
	Gap int
	// Theta is the minimum affinity for an edge (default
	// cluster.DefaultAffinityThreshold).
	Theta float64
	// Affinity scores cluster overlap (default cluster.Jaccard).
	Affinity cluster.AffinityFunc
	// UseSimJoin computes edges with the prefix-filter join (Jaccard
	// only).
	UseSimJoin bool
}

// NewStream starts an empty stream.
func NewStream(opts StreamOptions) (*Stream, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opts.K)
	}
	if opts.L <= 0 {
		return nil, fmt.Errorf("core: L must be positive, got %d (full-path queries do not apply online)", opts.L)
	}
	if opts.Gap < 0 {
		return nil, fmt.Errorf("core: Gap must be >= 0, got %d", opts.Gap)
	}
	theta := opts.Theta
	if theta == 0 {
		theta = cluster.DefaultAffinityThreshold
	}
	aff := opts.Affinity
	if aff == nil {
		aff = cluster.Jaccard
	} else if opts.UseSimJoin {
		return nil, fmt.Errorf("core: UseSimJoin requires the default Jaccard affinity")
	}
	return &Stream{
		k:      opts.K,
		l:      opts.L,
		gap:    opts.Gap,
		theta:  theta,
		aff:    aff,
		join:   opts.UseSimJoin,
		global: topk.NewK(opts.K),
	}, nil
}

// NumIntervals returns the number of intervals consumed.
func (s *Stream) NumIntervals() int { return s.m }

// Push consumes the cluster set of the next temporal interval: affinity
// edges against the window are computed, the new nodes' heaps are
// derived from their parents' heaps, and the global top-k is updated.
func (s *Stream) Push(clusters []cluster.Cluster) error {
	cur := streamInterval{
		interval: s.m,
		clusters: clusters,
		ids:      make([]int64, len(clusters)),
		heaps:    make([]map[int]*topk.K, len(clusters)),
	}
	for i := range clusters {
		cur.ids[i] = s.nextID
		s.nextID++
		cur.heaps[i] = make(map[int]*topk.K)
	}
	for _, w := range s.window {
		length := s.m - w.interval
		if length > s.gap+1 {
			continue
		}
		if err := s.link(&w, &cur, length); err != nil {
			return err
		}
	}
	s.stats.NodeReads += int64(s.windowNodes())
	s.stats.NodeWrites += int64(len(clusters))
	s.window = append(s.window, cur)
	if len(s.window) > s.gap+1 {
		s.window = s.window[1:]
	}
	s.m++
	s.trackPeak()
	return nil
}

// link computes the affinity edges between a window interval and the
// current one and extends heaps across them.
func (s *Stream) link(past *streamInterval, cur *streamInterval, length int) error {
	type edge struct {
		pi, ci int
		w      float64
	}
	var edges []edge
	if s.join {
		pairs, err := simjoin.Join(past.clusters, cur.clusters, s.theta)
		if err != nil {
			return err
		}
		for _, p := range pairs {
			edges = append(edges, edge{pi: p.Left, ci: p.Right, w: p.Sim})
		}
	} else {
		for pi := range past.clusters {
			for ci := range cur.clusters {
				if w := s.aff(past.clusters[pi], cur.clusters[ci]); w >= s.theta && w > 0 {
					edges = append(edges, edge{pi: pi, ci: ci, w: w})
				}
			}
		}
	}
	for _, e := range edges {
		s.stats.EdgeReads++
		if e.w > 1 {
			return fmt.Errorf("core: streaming affinity %g exceeds 1; use an affinity bounded by 1 (e.g. Jaccard)", e.w)
		}
		parentID, childID := past.ids[e.pi], cur.ids[e.ci]
		s.offer(cur, e.ci, topk.Path{Nodes: []int64{parentID}}.Append(childID, length, e.w))
		for x, h := range past.heaps[e.pi] {
			if x+length > s.l {
				continue
			}
			for _, p := range h.Items() {
				s.offer(cur, e.ci, p.Append(childID, length, e.w))
			}
		}
	}
	return nil
}

func (s *Stream) offer(cur *streamInterval, ci int, p topk.Path) {
	if p.Length > s.l {
		return
	}
	h, ok := cur.heaps[ci][p.Length]
	if !ok {
		h = topk.NewK(s.k)
		cur.heaps[ci][p.Length] = h
	}
	s.stats.HeapConsiders++
	h.Consider(p)
	if p.Length == s.l {
		s.stats.HeapConsiders++
		s.global.Consider(p)
	}
}

// TopK returns the current top-k paths, best first.
func (s *Stream) TopK() []topk.Path { return s.global.Items() }

// Stats returns the accumulated work counters.
func (s *Stream) Stats() Stats { return s.stats }

func (s *Stream) windowNodes() int {
	n := 0
	for _, w := range s.window {
		n += len(w.ids)
	}
	return n
}

func (s *Stream) trackPeak() {
	var n int64
	for _, w := range s.window {
		for _, hs := range w.heaps {
			for _, h := range hs {
				n += int64(h.Len())
			}
		}
	}
	if n > s.stats.PeakStatePaths {
		s.stats.PeakStatePaths = n
	}
}

// Replay pushes every interval of a prebuilt cluster-set sequence into
// a fresh stream and returns it; a convenience for tests and examples
// comparing batch and online answers.
func Replay(sets [][]cluster.Cluster, opts StreamOptions) (*Stream, error) {
	s, err := NewStream(opts)
	if err != nil {
		return nil, err
	}
	for _, cs := range sets {
		if err := s.Push(cs); err != nil {
			return nil, err
		}
	}
	return s, nil
}
