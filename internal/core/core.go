// Package core implements the paper's primary contribution: algorithms
// for the kl-stable-clusters problem (Problem 1) and the normalized
// stable-clusters problem (Problem 2) over a cluster graph.
//
// Every algorithm is reached through one unified surface: build a
// Request, call Solve (solve.go). The registry dispatches on
// Request.Algorithm, mirroring Section 4:
//
//   - "bfs" (Algorithm 2): a single pass over the intervals keeping the
//     previous g+1 intervals in memory, with per-node top-k heaps of
//     subpaths of each length (bfs.go).
//   - "dfs" (Algorithm 3): a stack-based depth-first traversal with
//     maxweight-based pruning, visited-flag unmarking and bestpaths
//     back-propagation; low memory, more I/O (dfs.go).
//   - "ta" (Section 4.4): an adaptation of the threshold algorithm over
//     per-interval-pair edge lists sorted by weight; full paths only
//     (ta.go).
//   - "normalized" (Section 4.5): Problem 2 via the BFS framework plus
//     the Theorem 1 prefix pruning (normalized.go).
//   - "brute", "brute-normalized": exhaustive oracles (brute.go).
//
// Request.Parallelism > 1 fans each solver out on a bounded worker
// pool; results are byte-identical at any worker count because the
// top-k order (topk.Better) is a strict total order and heap contents
// are offer-order independent. Streaming versions (Section 4.6) are in
// online.go.
package core

import (
	"repro/internal/topk"
)

// FullPaths is a sentinel for Request.L meaning l = m−1.
const FullPaths = -1

// Stats describes the work an algorithm performed, in the cost model
// the paper uses: node-state reads and writes against secondary
// storage, plus algorithm-specific counters. When Request.Store is set,
// NodeReads/NodeWrites correspond to real store operations.
type Stats struct {
	// NodeReads counts node-state loads.
	NodeReads int64
	// NodeWrites counts node-state saves.
	NodeWrites int64
	// EdgeReads counts edge/adjacency examinations.
	EdgeReads int64
	// HeapConsiders counts offers to any top-k heap.
	HeapConsiders int64
	// Pruned counts pruning events (DFS CanPrune firings, TA upper-bound
	// skips).
	Pruned int64
	// Repushes counts re-explorations of nodes whose visited flag was
	// unmarked (DFS only).
	Repushes int64
	// RandomSeeks counts TA random lookups.
	RandomSeeks int64
	// PeakStatePaths is the maximum number of paths simultaneously held
	// in per-node state — the memory-footprint proxy behind the paper's
	// "DFS needed 2MB vs BFS 35MB" claim.
	PeakStatePaths int64
}

// add folds a worker's counters into the aggregate. Flow counters sum;
// PeakStatePaths sums too — concurrent workers hold their state
// simultaneously, so the sum of their peaks is the honest footprint
// bound.
func (s *Stats) add(o Stats) {
	s.NodeReads += o.NodeReads
	s.NodeWrites += o.NodeWrites
	s.EdgeReads += o.EdgeReads
	s.HeapConsiders += o.HeapConsiders
	s.Pruned += o.Pruned
	s.Repushes += o.Repushes
	s.RandomSeeks += o.RandomSeeks
	s.PeakStatePaths += o.PeakStatePaths
}

// Result is the answer to a stable-clusters query.
type Result struct {
	// Paths are the top-k paths, best first.
	Paths []topk.Path
	// Stats describes the work performed.
	Stats Stats
}

// Weights returns the path weights, best first.
func (r *Result) Weights() []float64 {
	ws := make([]float64, len(r.Paths))
	for i, p := range r.Paths {
		ws[i] = p.Weight
	}
	return ws
}
