// Package core implements the paper's primary contribution: algorithms
// for the kl-stable-clusters problem (Problem 1) and the normalized
// stable-clusters problem (Problem 2) over a cluster graph.
//
// Three solutions to Problem 1 are provided, mirroring Section 4:
//
//   - BFS (Algorithm 2): a single pass over the intervals keeping the
//     previous g+1 intervals in memory, with per-node top-k heaps of
//     subpaths of each length (bfs.go).
//   - DFS (Algorithm 3): a stack-based depth-first traversal with
//     maxweight-based pruning, visited-flag unmarking and bestpaths
//     back-propagation; low memory, more I/O (dfs.go).
//   - TA (Section 4.4): an adaptation of the threshold algorithm over
//     per-interval-pair edge lists sorted by weight; full paths only
//     (ta.go).
//
// Problem 2 is solved with the BFS framework plus the Theorem 1 prefix
// pruning (normalized.go). Streaming versions (Section 4.6) are in
// online.go. A brute-force enumerator (brute.go) serves as the
// correctness oracle for all of them.
package core

import (
	"context"
	"fmt"

	"repro/internal/clustergraph"
	"repro/internal/diskstore"
	"repro/internal/topk"
)

// Options parameterizes a kl-stable-clusters query.
type Options struct {
	// K is the number of top paths to return.
	K int
	// L is the exact temporal path length sought. The special value
	// FullPaths (or m-1) requests full paths, enabling the paper's
	// single-heap fast path in BFS and the TA algorithm.
	L int
	// Store, when non-nil, persists per-node algorithm state (heaps,
	// maxweight annotations) to secondary storage so that the I/O
	// behaviour of the algorithms is real and measurable. Nil keeps all
	// state in memory; logical I/O counters are maintained either way.
	Store *diskstore.Store
	// Ctx, when non-nil, cancels the solve: each algorithm polls it at
	// its natural loop boundary (BFS per interval, DFS every few
	// thousand stack steps, TA per round) and returns its error. Nil
	// means no cancellation.
	Ctx context.Context
}

// ctxErr reports the options context's error, if any.
func (o Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	default:
		return nil
	}
}

// FullPaths is a sentinel for Options.L meaning l = m−1.
const FullPaths = -1

// resolveL normalizes Options.L against the graph's interval count.
func (o Options) resolveL(g *clustergraph.Graph) (int, error) {
	if o.K <= 0 {
		return 0, fmt.Errorf("core: K must be positive, got %d", o.K)
	}
	l := o.L
	if l == FullPaths {
		l = g.NumIntervals() - 1
	}
	if l <= 0 {
		return 0, fmt.Errorf("core: path length must be positive, got %d", l)
	}
	if l > g.NumIntervals()-1 {
		return 0, fmt.Errorf("core: path length %d exceeds m-1 = %d", l, g.NumIntervals()-1)
	}
	return l, nil
}

// Stats describes the work an algorithm performed, in the cost model
// the paper uses: node-state reads and writes against secondary
// storage, plus algorithm-specific counters. When Options.Store is set,
// NodeReads/NodeWrites correspond to real store operations.
type Stats struct {
	// NodeReads counts node-state loads.
	NodeReads int64
	// NodeWrites counts node-state saves.
	NodeWrites int64
	// EdgeReads counts edge/adjacency examinations.
	EdgeReads int64
	// HeapConsiders counts offers to any top-k heap.
	HeapConsiders int64
	// Pruned counts pruning events (DFS CanPrune firings, TA upper-bound
	// skips).
	Pruned int64
	// Repushes counts re-explorations of nodes whose visited flag was
	// unmarked (DFS only).
	Repushes int64
	// RandomSeeks counts TA random lookups.
	RandomSeeks int64
	// PeakStatePaths is the maximum number of paths simultaneously held
	// in per-node state — the memory-footprint proxy behind the paper's
	// "DFS needed 2MB vs BFS 35MB" claim.
	PeakStatePaths int64
}

// Result is the answer to a stable-clusters query.
type Result struct {
	// Paths are the top-k paths, best first.
	Paths []topk.Path
	// Stats describes the work performed.
	Stats Stats
}

// Weights returns the path weights, best first.
func (r *Result) Weights() []float64 {
	ws := make([]float64, len(r.Paths))
	for i, p := range r.Paths {
		ws[i] = p.Weight
	}
	return ws
}
