package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/diskstore"
	"repro/internal/topk"
)

// Node state persisted to secondary storage. The BFS algorithm saves
// each node's heaps after processing its interval (Algorithm 2 line
// 17); the DFS algorithm reads a node's state when it is pushed and
// writes it back when popped (Algorithm 3 lines 8, 20, 24). The format
// is a compact little-endian encoding:
//
//	u32 pathCount | paths…
//	path: u32 nodeCount | i64 nodes… | u32 length | f64 weight
//
// Heap groupings (which h^x a path belongs to) are recoverable from the
// path lengths, so they are not stored separately.

func encodePaths(paths []topk.Path) []byte {
	size := 4
	for _, p := range paths {
		size += 4 + 8*len(p.Nodes) + 4 + 8
	}
	buf := make([]byte, 0, size)
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	put32(uint32(len(paths)))
	for _, p := range paths {
		put32(uint32(len(p.Nodes)))
		for _, n := range p.Nodes {
			put64(uint64(n))
		}
		put32(uint32(p.Length))
		put64(math.Float64bits(p.Weight))
	}
	return buf
}

func decodePaths(b []byte) ([]topk.Path, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("core: path record too short (%d bytes)", len(b))
	}
	off := 0
	get32 := func() (uint32, error) {
		if off+4 > len(b) {
			return 0, fmt.Errorf("core: truncated path record at offset %d", off)
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, nil
	}
	get64 := func() (uint64, error) {
		if off+8 > len(b) {
			return 0, fmt.Errorf("core: truncated path record at offset %d", off)
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, nil
	}
	n, err := get32()
	if err != nil {
		return nil, err
	}
	paths := make([]topk.Path, 0, n)
	for i := uint32(0); i < n; i++ {
		nc, err := get32()
		if err != nil {
			return nil, err
		}
		nodes := make([]int64, nc)
		for j := range nodes {
			v, err := get64()
			if err != nil {
				return nil, err
			}
			nodes[j] = int64(v)
		}
		length, err := get32()
		if err != nil {
			return nil, err
		}
		wbits, err := get64()
		if err != nil {
			return nil, err
		}
		paths = append(paths, topk.Path{Nodes: nodes, Length: int(length), Weight: math.Float64frombits(wbits)})
	}
	if off != len(b) {
		return nil, fmt.Errorf("core: %d trailing bytes in path record", len(b)-off)
	}
	return paths, nil
}

// storeBackend adapts a diskstore.Store to the algorithms' node-state
// persistence. A nil *storeBackend disables persistence.
type storeBackend struct{ st *diskstore.Store }

func newStoreBackend(st *diskstore.Store) *storeBackend {
	if st == nil {
		return nil
	}
	return &storeBackend{st: st}
}

func (s *storeBackend) save(id int64, b []byte) error {
	if err := s.st.Put(id, b); err != nil {
		return fmt.Errorf("core: save node %d state: %w", id, err)
	}
	return nil
}

func (s *storeBackend) load(id int64) ([]byte, bool, error) {
	b, err := s.st.Get(id)
	if errors.Is(err, diskstore.ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("core: load node %d state: %w", id, err)
	}
	return b, true, nil
}

// heapsToPaths flattens per-length heaps into one path list for
// persistence.
func heapsToPaths(heaps map[int]*topk.K) []topk.Path {
	var out []topk.Path
	for _, h := range heaps {
		if h != nil {
			out = append(out, h.Items()...)
		}
	}
	return out
}

// dfsState is the per-node information Algorithm 3 keeps on disk: the
// visited flag, the maxweight annotations (best known prefix weight per
// prefix length), and the bestpaths heaps (top-k paths of each length
// *starting* at the node).
type dfsState struct {
	visited bool
	// everPushed distinguishes first explorations from re-explorations
	// after visited-flag unmarking (Stats.Repushes). Not persisted.
	everPushed bool
	maxweight  map[int]float64
	best       map[int]*topk.K
}

func newDFSState() *dfsState {
	return &dfsState{
		// maxweight[0] = 0: the empty prefix always exists, i.e. a path
		// may start at this node. This seeds the conservative x=0 case
		// of CanPrune (see dfs.go).
		maxweight: map[int]float64{0: 0},
		best:      make(map[int]*topk.K),
	}
}

// pathCount returns the number of paths held in the node's heaps (the
// memory-footprint proxy).
func (s *dfsState) pathCount() int64 {
	var n int64
	for _, h := range s.best {
		n += int64(h.Len())
	}
	return n
}

// encodeDFSState serializes s:
//
//	u8 flags (bit0 visited) | u32 mwCount | (u32 x, f64 w)* | paths
func encodeDFSState(s *dfsState) []byte {
	var buf []byte
	var flags byte
	if s.visited {
		flags |= 1
	}
	buf = append(buf, flags)
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(s.maxweight)))
	buf = append(buf, tmp[:4]...)
	// Deterministic order is unnecessary for correctness but keeps
	// byte-level round-trip tests simple.
	xs := make([]int, 0, len(s.maxweight))
	for x := range s.maxweight {
		xs = append(xs, x)
	}
	sort.Ints(xs)
	for _, x := range xs {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(x))
		buf = append(buf, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(s.maxweight[x]))
		buf = append(buf, tmp[:8]...)
	}
	return append(buf, encodePaths(heapsToPaths(s.best))...)
}

// decodeDFSState reverses encodeDFSState; k is the heap capacity to
// rebuild bestpaths with.
func decodeDFSState(b []byte, k int) (*dfsState, error) {
	if len(b) < 5 {
		return nil, fmt.Errorf("core: dfs state record too short (%d bytes)", len(b))
	}
	s := newDFSState()
	s.visited = b[0]&1 != 0
	off := 1
	mwCount := binary.LittleEndian.Uint32(b[off:])
	off += 4
	for i := uint32(0); i < mwCount; i++ {
		if off+12 > len(b) {
			return nil, fmt.Errorf("core: truncated dfs state at offset %d", off)
		}
		x := int(binary.LittleEndian.Uint32(b[off:]))
		w := math.Float64frombits(binary.LittleEndian.Uint64(b[off+4:]))
		s.maxweight[x] = w
		off += 12
	}
	paths, err := decodePaths(b[off:])
	if err != nil {
		return nil, err
	}
	for _, p := range paths {
		h, ok := s.best[p.Length]
		if !ok {
			h = topk.NewK(k)
			s.best[p.Length] = h
		}
		h.Consider(p)
	}
	return s, nil
}
