package core

import (
	"context"
	"fmt"

	"repro/internal/clustergraph"
	"repro/internal/topk"
)

// Section 4 notes that "the top-k paths produced may share common
// subpaths which, depending on the context, may not be very informative
// from an information discovery perspective. Variants of the kl-stable
// cluster problem with additional constraints are possible to discard
// paths with the same prefix or suffix." This file implements that
// variant as a re-ranking layer over any solver.

// DiversityMode selects which overlap disqualifies a lower-ranked path.
type DiversityMode int

const (
	// DistinctEndpoints discards a path whose first or last node was
	// already used by a better path.
	DistinctEndpoints DiversityMode = iota
	// DistinctPrefix discards a path sharing its first edge with a
	// better path.
	DistinctPrefix
	// DistinctSuffix discards a path sharing its last edge with a
	// better path.
	DistinctSuffix
	// DisjointNodes discards a path sharing any node with a better
	// path.
	DisjointNodes
)

func (m DiversityMode) String() string {
	switch m {
	case DistinctEndpoints:
		return "distinct-endpoints"
	case DistinctPrefix:
		return "distinct-prefix"
	case DistinctSuffix:
		return "distinct-suffix"
	case DisjointNodes:
		return "disjoint-nodes"
	default:
		return fmt.Sprintf("DiversityMode(%d)", int(m))
	}
}

// ParseDiversityMode maps a wire name onto a DiversityMode. Both the
// short forms the HTTP API uses ("endpoints", "prefix", "suffix",
// "disjoint") and the String() forms round-trip. The error wraps
// ErrInvalidRequest, so servers map it to a client error.
func ParseDiversityMode(s string) (DiversityMode, error) {
	switch s {
	case "", "endpoints", "distinct-endpoints":
		return DistinctEndpoints, nil
	case "prefix", "distinct-prefix":
		return DistinctPrefix, nil
	case "suffix", "distinct-suffix":
		return DistinctSuffix, nil
	case "disjoint", "disjoint-nodes":
		return DisjointNodes, nil
	default:
		return 0, fmt.Errorf("%w: unknown diversity mode %q (want endpoints, prefix, suffix or disjoint)", ErrInvalidRequest, s)
	}
}

// Diversify greedily filters a best-first path list down to at most k
// paths under the given mode. The input order is preserved, so feeding
// a solver's Result.Paths keeps the weight ranking.
func Diversify(paths []topk.Path, k int, mode DiversityMode) ([]topk.Path, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	type edge [2]int64
	usedNode := map[int64]bool{}
	usedEdge := map[edge]bool{}
	var out []topk.Path
	for _, p := range paths {
		if len(out) == k {
			break
		}
		if len(p.Nodes) == 0 {
			continue
		}
		first, last := p.Nodes[0], p.Nodes[len(p.Nodes)-1]
		conflict := false
		switch mode {
		case DistinctEndpoints:
			conflict = usedNode[first] || usedNode[last]
		case DistinctPrefix:
			if len(p.Nodes) >= 2 {
				conflict = usedEdge[edge{p.Nodes[0], p.Nodes[1]}]
			}
		case DistinctSuffix:
			if len(p.Nodes) >= 2 {
				conflict = usedEdge[edge{p.Nodes[len(p.Nodes)-2], last}]
			}
		case DisjointNodes:
			for _, n := range p.Nodes {
				if usedNode[n] {
					conflict = true
					break
				}
			}
		default:
			return nil, fmt.Errorf("core: unknown diversity mode %v", mode)
		}
		if conflict {
			continue
		}
		out = append(out, p)
		switch mode {
		case DistinctEndpoints:
			usedNode[first] = true
			usedNode[last] = true
		case DistinctPrefix:
			if len(p.Nodes) >= 2 {
				usedEdge[edge{p.Nodes[0], p.Nodes[1]}] = true
			}
		case DistinctSuffix:
			if len(p.Nodes) >= 2 {
				usedEdge[edge{p.Nodes[len(p.Nodes)-2], last}] = true
			}
		case DisjointNodes:
			for _, n := range p.Nodes {
				usedNode[n] = true
			}
		}
	}
	return out, nil
}

// DiverseKL answers the constrained variant end to end: it widens the
// underlying query (fetching overshoot·k candidates through Solve, so
// req.Algorithm and req.Parallelism are honored) and then filters. A
// larger overshoot trades work for a better chance of filling all k
// diverse slots.
func DiverseKL(ctx context.Context, g *clustergraph.Graph, req Request, mode DiversityMode, overshoot int) (*Result, error) {
	if overshoot < 1 {
		overshoot = 4
	}
	wide := req
	wide.K = req.K * overshoot
	res, err := Solve(ctx, g, wide)
	if err != nil {
		return nil, err
	}
	filtered, err := Diversify(res.Paths, req.K, mode)
	if err != nil {
		return nil, err
	}
	res.Paths = filtered
	return res, nil
}
