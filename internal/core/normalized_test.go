package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/synth"
	"repro/internal/topk"
)

// TestTheorem1 verifies the theorem exactly as the paper states it — a
// conditional: if stability(pre) <= stability(curr), then for any
// suffix, stability(pre·curr) <= stability(pre·curr·suff) IMPLIES
// stability(pre·curr·suff) <= stability(curr·suff). The antecedent
// matters: suffixes that worsen the combined path are not covered,
// which is why the derived pruning preserves the top-1 value but not
// necessarily deeper ranks (see Request.DisableTheorem1Pruning).
func TestTheorem1(t *testing.T) {
	for wp := 0.1; wp <= 2.0; wp += 0.3 {
		for np := 1; np <= 4; np++ {
			for wc := 0.1; wc <= 2.0; wc += 0.3 {
				for nc := 1; nc <= 4; nc++ {
					if wp/float64(np) > wc/float64(nc) {
						continue // hypothesis not met
					}
					for ws := 0.0; ws <= 2.0; ws += 0.4 {
						for ns := 1; ns <= 3; ns++ {
							full := (wp + wc + ws) / float64(np+nc+ns)
							precurr := (wp + wc) / float64(np+nc)
							if full < precurr-eps {
								continue // antecedent not met
							}
							rhs := (wc + ws) / float64(nc+ns)
							if full > rhs+eps {
								t.Fatalf("Theorem 1 violated: pre=(%g,%d) curr=(%g,%d) suff=(%g,%d): %g > %g",
									wp, np, wc, nc, ws, ns, full, rhs)
							}
						}
					}
				}
			}
		}
	}
}

// TestTheorem1AntecedentMatters documents why the prefix drop is not a
// blanket dominance rule: with a sufficiently poor suffix the pruned
// path can beat its prefix-less counterpart.
func TestTheorem1AntecedentMatters(t *testing.T) {
	// pre = (0.1, 1), curr = (0.1, 1), suff = (0.01, 1):
	// stability(pre) = stability(curr) = 0.1, so the pruning condition
	// fires, yet pre·curr·suff = 0.21/3 = 0.07 > curr·suff = 0.11/2 = 0.055.
	full := 0.21 / 3
	currSuff := 0.11 / 2
	if full <= currSuff {
		t.Fatal("expected the counterexample to hold; arithmetic wrong")
	}
}

func TestNormalizedOnFigure5(t *testing.T) {
	g, ids := synth.Figure5()
	// lmin = 2: candidates are all length-2 paths; the most stable is
	// c13c22c33 with stability 1.7/2 = 0.85.
	res, err := solve(g, Request{Algorithm: "normalized", K: 1, LMin: 2})
	if err != nil {
		t.Fatalf("NormalizedBFS: %v", err)
	}
	if len(res.Paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(res.Paths))
	}
	p := res.Paths[0]
	if !almostEqual(p.Weight, 0.85) {
		t.Errorf("stability = %g, want 0.85", p.Weight)
	}
	want := []int64{ids[0][2], ids[1][1], ids[2][2]}
	if fmt.Sprint(p.Nodes) != fmt.Sprint(want) {
		t.Errorf("path = %v, want c13c22c33", p.Nodes)
	}
	// lmin = 1 admits the single heavy edge c22c33 (stability 0.9).
	res, err = solve(g, Request{Algorithm: "normalized", K: 1, LMin: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Paths[0].Weight, 0.9) {
		t.Errorf("lmin=1 best stability = %g, want 0.9", res.Paths[0].Weight)
	}
}

// Exact mode (Theorem 1 pruning disabled) must agree with exhaustive
// enumeration for every k; paper mode must (a) be exact for k = 1,
// (b) report the exact top-1 value for any k, and (c) never report a
// rank above the exact answer.
func TestNormalizedMatchesBrute(t *testing.T) {
	seed := int64(300)
	for _, m := range []int{3, 4, 5} {
		for _, g := range []int{0, 1, 2} {
			for _, lmin := range []int{1, 2, m - 1} {
				if lmin <= 0 || lmin > m-1 {
					continue
				}
				for _, k := range []int{1, 3} {
					seed++
					cg, err := synth.Generate(synth.Config{Seed: seed, M: m, N: 5, D: 2, G: g})
					if err != nil {
						t.Fatal(err)
					}
					want, err := solve(cg, Request{Algorithm: "brute-normalized", K: k, LMin: lmin})
					if err != nil {
						t.Fatal(err)
					}
					exact, err := solve(cg, Request{Algorithm: "normalized", K: k, LMin: lmin, DisableTheorem1Pruning: true})
					if err != nil {
						t.Fatal(err)
					}
					if !weightsAlmostEqual(exact.Weights(), want.Weights()) {
						t.Errorf("m=%d g=%d lmin=%d k=%d seed=%d: exact normalized %v != brute %v",
							m, g, lmin, k, seed, exact.Weights(), want.Weights())
					}
					paper, err := solve(cg, Request{Algorithm: "normalized", K: k, LMin: lmin})
					if err != nil {
						t.Fatal(err)
					}
					pw, ww := paper.Weights(), want.Weights()
					if len(pw) > 0 && len(ww) > 0 && !almostEqual(pw[0], ww[0]) {
						t.Errorf("m=%d g=%d lmin=%d k=%d seed=%d: paper-mode top-1 %g != brute %g",
							m, g, lmin, k, seed, pw[0], ww[0])
					}
					if k == 1 && !weightsAlmostEqual(pw, ww) {
						t.Errorf("m=%d g=%d lmin=%d seed=%d: paper-mode k=1 %v != brute %v",
							m, g, lmin, seed, pw, ww)
					}
					for i := range pw {
						if i < len(ww) && pw[i] > ww[i]+eps {
							t.Errorf("m=%d g=%d lmin=%d k=%d seed=%d: paper-mode rank %d (%g) above brute (%g)",
								m, g, lmin, k, seed, i, pw[i], ww[i])
						}
					}
				}
			}
		}
	}
}

// Theorem 1 pruning must actually fire on graphs with weak prefixes.
func TestNormalizedPruningReducesState(t *testing.T) {
	g, err := synth.Generate(synth.Config{Seed: 77, M: 8, N: 12, D: 3, G: 0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solve(g, Request{Algorithm: "normalized", K: 5, LMin: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PeakStatePaths == 0 {
		t.Error("no state tracked")
	}
	// Sanity: stabilities are within (0, 1] for weights in (0,1].
	for _, p := range res.Paths {
		if p.Weight <= 0 || p.Weight > 1+eps {
			t.Errorf("stability %g outside (0,1]", p.Weight)
		}
	}
}

// With suffix dominance enabled, results may deviate from exact (the
// rule the paper sketches is aggressive); the run must still complete
// and produce plausible output.
func TestNormalizedSuffixDominanceRuns(t *testing.T) {
	g, err := synth.Generate(synth.Config{Seed: 12, M: 5, N: 6, D: 2, G: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solve(g, Request{Algorithm: "normalized", K: 3, LMin: 2, SuffixDominance: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Paths {
		if p.Length < 2 {
			t.Errorf("path %v shorter than lmin", p)
		}
		if math.IsNaN(p.Weight) {
			t.Errorf("NaN stability in %v", p)
		}
	}
}

func TestNormalizedBeam(t *testing.T) {
	if _, err := solve(nil, Request{Algorithm: "normalized", K: 1, LMin: 1, BeamWidth: -1}); err == nil {
		t.Error("negative beam accepted")
	}
	seed := int64(900)
	for trial := 0; trial < 10; trial++ {
		seed++
		g, err := synth.Generate(synth.Config{Seed: seed, M: 6, N: 8, D: 2, G: 0})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := solve(g, Request{Algorithm: "normalized", K: 3, LMin: 2, DisableTheorem1Pruning: true})
		if err != nil {
			t.Fatal(err)
		}
		beam, err := solve(g, Request{Algorithm: "normalized", K: 3, LMin: 2, BeamWidth: 3})
		if err != nil {
			t.Fatal(err)
		}
		// The beam is an approximation: every reported path must be a
		// real path (stability never above the exact answer at the same
		// rank) and respect lmin.
		ew := exact.Weights()
		for i, p := range beam.Paths {
			if p.Length < 2 {
				t.Errorf("seed %d: beam path %v below lmin", seed, p)
			}
			if i < len(ew) && p.Weight > ew[i]+eps {
				t.Errorf("seed %d: beam rank %d (%g) above exact (%g)", seed, i, p.Weight, ew[i])
			}
		}
		// The beam must hold per-node state well below the exact run on
		// graphs big enough to show a difference.
		if beam.Stats.PeakStatePaths > exact.Stats.PeakStatePaths {
			t.Errorf("seed %d: beam peak %d above exact %d", seed, beam.Stats.PeakStatePaths, exact.Stats.PeakStatePaths)
		}
	}
}

func TestPruneTheorem1DropsWeakPrefix(t *testing.T) {
	// Construct a concrete path on Figure 5 with a weak prefix:
	// c12(0.1)c22(0.9)c33 with lmin=1. The prefix c12c22 (stability
	// 0.1) is dominated by the suffix c22c33 (stability 0.9) once the
	// suffix alone satisfies lmin.
	g, ids := synth.Figure5()
	r := &normRun{g: g, lmin: 1}
	p := topk.Path{
		Nodes:  []int64{ids[0][1], ids[1][1], ids[2][2]},
		Length: 2,
		Weight: 1.0,
	}
	pruned := r.pruneTheorem1(p)
	want := []int64{ids[1][1], ids[2][2]}
	if fmt.Sprint(pruned.Nodes) != fmt.Sprint(want) {
		t.Errorf("pruned = %v, want suffix c22c33", pruned.Nodes)
	}
	if !almostEqual(pruned.Weight, 0.9) || pruned.Length != 1 {
		t.Errorf("pruned weight/length = %g/%d, want 0.9/1", pruned.Weight, pruned.Length)
	}
	// With lmin=2 the suffix is too short to stand alone: no pruning.
	r.lmin = 2
	if got := r.pruneTheorem1(p); len(got.Nodes) != 3 {
		t.Errorf("lmin=2 pruned to %v, want untouched", got.Nodes)
	}
}
