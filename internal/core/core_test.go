package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/clustergraph"
	"repro/internal/diskstore"
	"repro/internal/synth"
	"repro/internal/topk"
)

const eps = 1e-9

// solve is shorthand for Solve with a background context; tests that
// exercise cancellation pass their own context to Solve directly.
func solve(g *clustergraph.Graph, req Request) (*Result, error) {
	return Solve(context.Background(), g, req)
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < eps }

func weightsAlmostEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// TestPaperSection42BFSExample replays the worked BFS example of
// Section 4.2 on the Figure 5 graph with l = 2, k = 2: "In the end, the
// best two paths are identified as c13c22c31 and c13c22c33."
func TestPaperSection42BFSExample(t *testing.T) {
	g, ids := synth.Figure5()
	res, err := solve(g, Request{K: 2, L: 2})
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("got %d paths, want 2: %v", len(res.Paths), res.Paths)
	}
	wantBest := []int64{ids[0][2], ids[1][1], ids[2][2]} // c13 c22 c33
	if !reflect.DeepEqual(res.Paths[0].Nodes, wantBest) || !almostEqual(res.Paths[0].Weight, 1.7) {
		t.Errorf("best path = %v, want c13c22c33 with weight 1.7", res.Paths[0])
	}
	wantSecond := []int64{ids[0][2], ids[1][1], ids[2][0]} // c13 c22 c31
	if !reflect.DeepEqual(res.Paths[1].Nodes, wantSecond) || !almostEqual(res.Paths[1].Weight, 1.5) {
		t.Errorf("second path = %v, want c13c22c31 with weight 1.5", res.Paths[1])
	}
}

// TestPaperSection42HeapContents verifies the per-node heaps the paper
// lists for the Figure 5 graph (h^1 and h^2 of the interval-3 nodes) by
// reading them back from the store BFS saves node state to.
func TestPaperSection42HeapContents(t *testing.T) {
	g, ids := synth.Figure5()
	st, err := diskstore.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Use the generic (non-full-path) machinery so every h^x is
	// maintained, as in the paper's walk-through.
	if _, err := solve(g, Request{K: 2, L: 2, Store: st, DisableFullPathFastPath: true}); err != nil {
		t.Fatalf("BFS: %v", err)
	}
	heaps := func(id int64) map[int][][]int64 {
		b, err := st.Get(id)
		if err != nil {
			t.Fatalf("load node %d: %v", id, err)
		}
		paths, err := decodePaths(b)
		if err != nil {
			t.Fatalf("decode node %d: %v", id, err)
		}
		out := map[int][][]int64{}
		for _, p := range paths {
			out[p.Length] = append(out[p.Length], p.Nodes)
		}
		return out
	}
	c := func(i, j int) int64 { return ids[i-1][j-1] } // paper 1-based names

	// h^1_21 = {c11c21}
	h21 := heaps(c(2, 1))
	if len(h21[1]) != 1 || !reflect.DeepEqual(h21[1][0], []int64{c(1, 1), c(2, 1)}) {
		t.Errorf("h1_21 = %v, want {c11c21}", h21[1])
	}
	// h^1_22 = {c12c22, c13c22}
	h22 := heaps(c(2, 2))
	if len(h22[1]) != 2 {
		t.Errorf("h1_22 = %v, want two paths", h22[1])
	}
	// h^2_31 = {c11c21c31, c13c22c31}: c12c22c31 (0.8) is evicted.
	h31 := heaps(c(3, 1))
	if len(h31[2]) != 2 {
		t.Fatalf("h2_31 = %v, want two paths", h31[2])
	}
	got := map[string]bool{}
	for _, nodes := range h31[2] {
		got[signature(nodes)] = true
	}
	for _, want := range [][]int64{
		{c(1, 1), c(2, 1), c(3, 1)},
		{c(1, 3), c(2, 2), c(3, 1)},
	} {
		if !got[signature(want)] {
			t.Errorf("h2_31 missing %v; got %v", want, h31[2])
		}
	}
	// h^2_32 = {c11c21c32, c11c32} — includes the direct gap edge.
	h32 := heaps(c(3, 2))
	if len(h32[2]) != 2 {
		t.Fatalf("h2_32 = %v, want two paths", h32[2])
	}
	got = map[string]bool{}
	for _, nodes := range h32[2] {
		got[signature(nodes)] = true
	}
	if !got[signature([]int64{c(1, 1), c(3, 2)})] {
		t.Errorf("h2_32 missing the direct gap path c11c32: %v", h32[2])
	}
	// h^2_33 = {c13c22c33, c12c22c33}.
	h33 := heaps(c(3, 3))
	if len(h33[2]) != 2 {
		t.Fatalf("h2_33 = %v, want two paths", h33[2])
	}
}

// TestPaperTable2Trace replays the DFS worked example (Table 2):
// k = 1, l = 2 on the Figure 5 graph. The final result is c13c22c33 and
// pruning fires (the paper prunes c22 on first contact when min-k=1.2).
func TestPaperTable2Trace(t *testing.T) {
	g, ids := synth.Figure5()
	res, err := solve(g, Request{Algorithm: "dfs", K: 1, L: 2})
	if err != nil {
		t.Fatalf("DFS: %v", err)
	}
	if len(res.Paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(res.Paths))
	}
	want := []int64{ids[0][2], ids[1][1], ids[2][2]} // c13 c22 c33
	if !reflect.DeepEqual(res.Paths[0].Nodes, want) || !almostEqual(res.Paths[0].Weight, 1.7) {
		t.Errorf("result = %v, want c13c22c33 (1.7)", res.Paths[0])
	}
	if res.Stats.Pruned == 0 {
		t.Error("expected at least one pruning event in the Table 2 scenario")
	}
}

// TestPaperSection44TA runs the TA adaptation on the Figure 5 graph.
func TestPaperSection44TA(t *testing.T) {
	g, ids := synth.Figure5()
	res, err := solve(g, Request{Algorithm: "ta", K: 2, L: FullPaths})
	if err != nil {
		t.Fatalf("TA: %v", err)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(res.Paths))
	}
	if !almostEqual(res.Paths[0].Weight, 1.7) || !almostEqual(res.Paths[1].Weight, 1.5) {
		t.Errorf("weights = %v, want [1.7 1.5]", res.Weights())
	}
	wantBest := []int64{ids[0][2], ids[1][1], ids[2][2]}
	if !reflect.DeepEqual(res.Paths[0].Nodes, wantBest) {
		t.Errorf("best = %v, want c13c22c33", res.Paths[0])
	}
	if res.Stats.RandomSeeks == 0 {
		t.Error("TA performed no random seeks")
	}
}

func TestBruteOnFigure5(t *testing.T) {
	g, _ := synth.Figure5()
	res, err := solve(g, Request{Algorithm: "brute", K: 3, L: 2})
	if err != nil {
		t.Fatalf("brute: %v", err)
	}
	want := []float64{1.7, 1.5, 1.2}
	if !weightsAlmostEqual(res.Weights(), want) {
		t.Errorf("brute weights = %v, want %v", res.Weights(), want)
	}
	// Subpaths of length 1 are single edges; the best is c22c33 (0.9).
	res, err = solve(g, Request{Algorithm: "brute", K: 1, L: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !weightsAlmostEqual(res.Weights(), []float64{0.9}) {
		t.Errorf("best length-1 = %v, want [0.9]", res.Weights())
	}
}

func TestOptionValidation(t *testing.T) {
	g, _ := synth.Figure5()
	if _, err := solve(g, Request{K: 0, L: 1}); err == nil {
		t.Error("BFS accepted K=0")
	}
	if _, err := solve(g, Request{K: 1, L: 0}); err == nil {
		t.Error("BFS accepted L=0")
	}
	if _, err := solve(g, Request{K: 1, L: 7}); err == nil {
		t.Error("BFS accepted L > m-1")
	}
	if _, err := solve(g, Request{K: 1, L: 1, MaxWindowNodes: -1}); err == nil {
		t.Error("BFS accepted negative window")
	}
	if _, err := solve(g, Request{Algorithm: "dfs", K: 0, L: 1}); err == nil {
		t.Error("DFS accepted K=0")
	}
	if _, err := solve(g, Request{Algorithm: "ta", K: 1, L: 1}); err == nil {
		t.Error("TA accepted subpath query")
	}
	if _, err := solve(g, Request{Algorithm: "brute", K: -1, L: 1}); err == nil {
		t.Error("brute accepted K=-1")
	}
	if _, err := solve(g, Request{Algorithm: "brute-normalized", K: 0, LMin: 1}); err == nil {
		t.Error("BruteNormalized accepted K=0")
	}
	if _, err := solve(g, Request{Algorithm: "brute-normalized", K: 1, LMin: 0}); err == nil {
		t.Error("BruteNormalized accepted lmin=0")
	}
	if _, err := solve(g, Request{Algorithm: "normalized", K: 1, LMin: 0}); err == nil {
		t.Error("NormalizedBFS accepted lmin=0")
	}
	if _, err := solve(g, Request{Algorithm: "normalized", K: 1, LMin: 9}); err == nil {
		t.Error("NormalizedBFS accepted lmin > m-1")
	}
}

func TestTASeekBudget(t *testing.T) {
	g, err := synth.Generate(synth.Config{Seed: 1, M: 6, N: 20, D: 4, G: 0})
	if err != nil {
		t.Fatal(err)
	}
	_, err = solve(g, Request{Algorithm: "ta", K: 5, L: FullPaths, MaxSeeks: 10})
	if err == nil {
		t.Fatal("TA ignored the seek budget")
	}
}

func TestDFSRejectsUnnormalizedWeights(t *testing.T) {
	// Build a graph with weight > 1 via the synth path is impossible;
	// construct directly.
	g := mustWeightedGraph(t, 2.5)
	if _, err := solve(g, Request{Algorithm: "dfs", K: 1, L: 1}); err == nil {
		t.Error("DFS with pruning accepted weights > 1")
	}
	if _, err := solve(g, Request{Algorithm: "dfs", K: 1, L: 1, DisablePruning: true}); err != nil {
		t.Errorf("DFS without pruning rejected weights > 1: %v", err)
	}
}

func TestPathStateRoundTrip(t *testing.T) {
	paths := []topk.Path{
		{Nodes: []int64{1, 2, 3}, Length: 2, Weight: 1.25},
		{Nodes: []int64{9}, Length: 0, Weight: 0},
		{Nodes: []int64{5, 7}, Length: 3, Weight: 0.125},
	}
	got, err := decodePaths(encodePaths(paths))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, paths) {
		t.Errorf("round trip = %v, want %v", got, paths)
	}
	if _, err := decodePaths([]byte{1, 2}); err == nil {
		t.Error("decodePaths accepted short record")
	}
	if _, err := decodePaths(append(encodePaths(paths), 0)); err == nil {
		t.Error("decodePaths accepted trailing bytes")
	}
}

func TestDFSStateRoundTrip(t *testing.T) {
	s := newDFSState()
	s.visited = true
	s.maxweight[2] = 1.5
	s.maxweight[1] = 0.25
	h := topk.NewK(3)
	h.Consider(topk.Path{Nodes: []int64{1, 2}, Length: 1, Weight: 0.5})
	h.Consider(topk.Path{Nodes: []int64{1, 3}, Length: 1, Weight: 0.75})
	s.best[1] = h
	got, err := decodeDFSState(encodeDFSState(s), 3)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.visited {
		t.Error("visited flag lost")
	}
	if !reflect.DeepEqual(got.maxweight, s.maxweight) {
		t.Errorf("maxweight = %v, want %v", got.maxweight, s.maxweight)
	}
	if got.best[1] == nil || got.best[1].Len() != 2 {
		t.Errorf("bestpaths lost: %+v", got.best)
	}
	if !weightsAlmostEqual(got.best[1].Weights(), s.best[1].Weights()) {
		t.Error("bestpaths weights differ after round trip")
	}
	if _, err := decodeDFSState([]byte{0}, 3); err == nil {
		t.Error("decodeDFSState accepted short record")
	}
}

// mustWeightedGraph builds a 2-interval, 2-node graph with one edge of
// the given weight.
func mustWeightedGraph(t *testing.T, w float64) *clustergraph.Graph {
	t.Helper()
	b, err := clustergraph.NewBuilder(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	u, err := b.AddNode(0, cluster.Cluster{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := b.AddNode(1, cluster.Cluster{})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(u, v, w); err != nil {
		t.Fatal(err)
	}
	return b.Build(false)
}
