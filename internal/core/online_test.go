package core

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/clustergraph"
	"repro/internal/topk"
)

// The streaming answer after consuming a prefix of intervals must equal
// the batch BFS answer over the same prefix — the defining property of
// Section 4.6.
func TestStreamMatchesBatchAtEveryPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	for trial := 0; trial < 8; trial++ {
		m := 5 + rng.Intn(3)
		sets := randomClusterSets(rng, m, 5)
		for _, gap := range []int{0, 1} {
			for _, l := range []int{1, 2} {
				s, err := NewStream(StreamOptions{K: 3, L: l, Gap: gap, Theta: 0.1})
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < m; i++ {
					if err := s.Push(sets[i]); err != nil {
						t.Fatal(err)
					}
					if i+1 < l+1 {
						continue // no path of length l can exist yet
					}
					g, err := clustergraph.FromClusters(sets[:i+1], clustergraph.FromClustersOptions{
						Gap: gap, Theta: 0.1,
					})
					if err != nil {
						t.Fatal(err)
					}
					batch, err := solve(g, Request{K: 3, L: l})
					if err != nil {
						t.Fatal(err)
					}
					streamW := pathWeights(s.TopK())
					if !weightsAlmostEqual(streamW, batch.Weights()) {
						t.Fatalf("trial %d gap %d l %d after %d intervals: stream %v != batch %v",
							trial, gap, l, i+1, streamW, batch.Weights())
					}
				}
			}
		}
	}
}

func pathWeights(ps []topk.Path) []float64 {
	ws := make([]float64, len(ps))
	for i, p := range ps {
		ws[i] = p.Weight
	}
	return ws
}

func TestStreamValidation(t *testing.T) {
	if _, err := NewStream(StreamOptions{K: 0, L: 1}); err == nil {
		t.Error("NewStream accepted K=0")
	}
	if _, err := NewStream(StreamOptions{K: 1, L: 0}); err == nil {
		t.Error("NewStream accepted L=0 (full-path queries do not stream)")
	}
	if _, err := NewStream(StreamOptions{K: 1, L: 1, Gap: -1}); err == nil {
		t.Error("NewStream accepted negative gap")
	}
	if _, err := NewStream(StreamOptions{K: 1, L: 1, Affinity: cluster.Intersection, UseSimJoin: true}); err == nil {
		t.Error("NewStream accepted simjoin with non-Jaccard affinity")
	}
}

func TestStreamSimJoinMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	sets := randomClusterSets(rng, 6, 6)
	plain, err := Replay(sets, StreamOptions{K: 4, L: 2, Gap: 1, Theta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := Replay(sets, StreamOptions{K: 4, L: 2, Gap: 1, Theta: 0.2, UseSimJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if !weightsAlmostEqual(pathWeights(plain.TopK()), pathWeights(joined.TopK())) {
		t.Errorf("simjoin stream %v != plain %v", pathWeights(joined.TopK()), pathWeights(plain.TopK()))
	}
}

func TestStreamRejectsUnboundedAffinity(t *testing.T) {
	s, err := NewStream(StreamOptions{K: 1, L: 1, Theta: 1, Affinity: cluster.Intersection})
	if err != nil {
		t.Fatal(err)
	}
	big := []cluster.Cluster{cluster.New(0, 0, []string{"a", "b", "c"})}
	if err := s.Push(big); err != nil {
		t.Fatal(err)
	}
	// Intersection of 3 shared keywords has affinity 3 > 1.
	if err := s.Push([]cluster.Cluster{cluster.New(1, 1, []string{"a", "b", "c"})}); err == nil {
		t.Error("stream accepted affinity > 1")
	}
}

func TestStreamEvictsOldIntervals(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	s, err := NewStream(StreamOptions{K: 2, L: 1, Gap: 0, Theta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sets := randomClusterSets(rng, 10, 4)
	for _, cs := range sets {
		if err := s.Push(cs); err != nil {
			t.Fatal(err)
		}
		if got := s.windowNodes(); got > 4 {
			t.Fatalf("window holds %d nodes, want <= 4 with gap 0", got)
		}
	}
	if s.NumIntervals() != 10 {
		t.Errorf("NumIntervals = %d, want 10", s.NumIntervals())
	}
	if s.Stats().HeapConsiders == 0 {
		t.Error("stream did no work")
	}
}
