package core

import (
	"context"
	"sort"
	"strconv"
	"strings"

	"repro/internal/clustergraph"
	"repro/internal/par"
	"repro/internal/topk"
)

// solveNormalized solves Problem 2 (the top-k paths of temporal length
// at least LMin with the highest stability = weight/length) with the
// BFS framework of Section 4.5: nodes are processed interval by
// interval; each node carries smallpaths (all paths of length < lmin
// ending there) and bestpaths (candidate paths of length >= lmin ending
// there, pruned with the Theorem 1 prefix rule). Every generated path
// of qualifying length is checked against the global top-k by
// stability.
//
// The Weight field of returned paths holds the stability score.
//
// Parallelism follows the BFS pattern: each interval's nodes are
// expanded concurrently (they read only frozen window state and write
// only their own smallpaths/bestpaths), with per-worker sinks for the
// global heap and counters merged after the join — results and Stats
// are byte-identical to the sequential pass.
func solveNormalized(ctx context.Context, g *clustergraph.Graph, req Request) (*Result, error) {
	lmin, err := req.resolveLMin(g)
	if err != nil {
		return nil, err
	}
	r := &normRun{
		g:       g,
		k:       req.K,
		lmin:    lmin,
		suffix:  req.SuffixDominance,
		noPrune: req.DisableTheorem1Pruning,
		beam:    req.BeamWidth,
		workers: req.workers(),
		small:   make(map[int64]map[int][]topk.Path),
		best:    make(map[int64]map[string]topk.Path),
		global:  topk.NewK(req.K),
	}
	for i := 0; i < g.NumIntervals(); i++ {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		r.processInterval(i)
	}
	return &Result{Paths: r.global.Items(), Stats: r.stats}, nil
}

type normRun struct {
	g       *clustergraph.Graph
	k       int
	lmin    int
	suffix  bool
	noPrune bool
	beam    int
	workers int

	// small[c][x] holds all paths of length x < lmin ending at c.
	small map[int64]map[int][]topk.Path
	// best[c] holds the candidate paths of length >= lmin ending at c,
	// keyed by node signature for de-duplication.
	best   map[int64]map[string]topk.Path
	global *topk.K
	stats  Stats
}

// normSink receives one worker's global-heap offers and counters (the
// same split as bfsSink). Offered paths already carry their stability
// in Weight, so merged items go straight into the run's global heap.
type normSink struct {
	stats  *Stats
	global *topk.K
}

func (r *normRun) processInterval(i int) {
	window := 0
	lo := i - r.g.Gap() - 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < i; j++ {
		window += len(r.g.NodesAt(j))
	}
	r.stats.NodeReads += int64(window)

	nodes := r.g.NodesAt(i)
	for _, id := range nodes {
		r.small[id] = make(map[int][]topk.Path)
		r.best[id] = make(map[string]topk.Path)
	}
	if r.workers > 1 && len(nodes) > 1 {
		stats := make([]Stats, len(nodes))
		locals := make([]*topk.K, len(nodes))
		par.ForEach(len(nodes), r.workers, func(n int) error {
			locals[n] = topk.NewK(r.k)
			r.processNode(nodes[n], normSink{stats: &stats[n], global: locals[n]})
			return nil
		})
		for n := range nodes {
			r.stats.add(stats[n])
			for _, p := range locals[n].Items() {
				r.global.Consider(p)
			}
		}
	} else {
		sk := normSink{stats: &r.stats, global: r.global}
		for _, id := range nodes {
			r.processNode(id, sk)
		}
	}
	r.evict(i)
	r.trackPeak()
}

// processNode runs one node's full interval step: extend across every
// parent edge, then the optional suffix-dominance and beam filters.
func (r *normRun) processNode(id int64, sk normSink) {
	for _, ph := range r.g.Parents(id) {
		sk.stats.EdgeReads++
		r.extend(id, ph, sk)
	}
	if r.suffix {
		r.dropDominatedSuffixes(id)
	}
	if r.beam > 0 {
		r.capBeam(id)
	}
	sk.stats.NodeWrites++
}

// extend folds the parent's paths across the edge into the node's
// smallpaths/bestpaths, per the update rules of Section 4.5.
func (r *normRun) extend(id int64, ph clustergraph.Half, sk normSink) {
	el := ph.Length
	// The edge alone.
	r.place(id, topk.Path{Nodes: []int64{ph.Peer}}.Append(id, el, ph.Weight), sk)
	// Extensions of the parent's smallpaths (all lengths; gap edges can
	// jump from below lmin to above it, so unlike the paper's formula —
	// written for the exact x = lmin − length(c'c) — every extension is
	// routed by its resulting length). Both parent maps are iterated in
	// sorted order: the same path signature can be regenerated with
	// weights differing in the last ulp (direct summation vs Theorem 1's
	// subtraction), and the retained-variant choice is first-write-wins,
	// so randomized map order would make even sequential runs
	// bit-nondeterministic.
	small := r.small[ph.Peer]
	lens := make([]int, 0, len(small))
	for x := range small {
		lens = append(lens, x)
	}
	sort.Ints(lens)
	for _, x := range lens {
		for _, p := range small[x] {
			r.place(id, p.Append(id, el, ph.Weight), sk)
		}
	}
	// Extensions of the parent's bestpaths.
	best := r.best[ph.Peer]
	sigs := make([]string, 0, len(best))
	for s := range best {
		sigs = append(sigs, s)
	}
	sort.Strings(sigs)
	for _, s := range sigs {
		r.place(id, best[s].Append(id, el, ph.Weight), sk)
	}
}

// place routes a newly generated path ending at id: short paths go to
// smallpaths; qualifying paths are checked against the global heap,
// pruned with Theorem 1, and retained as candidates.
func (r *normRun) place(id int64, p topk.Path, sk normSink) {
	if p.Length < r.lmin {
		r.small[id][p.Length] = append(r.small[id][p.Length], p)
		return
	}
	r.considerGlobal(p, sk)
	if r.noPrune {
		r.best[id][signature(p.Nodes)] = p
		return
	}
	pruned := r.pruneTheorem1(p)
	if len(pruned.Nodes) != len(p.Nodes) {
		// The pruned remainder is itself a qualifying path that future
		// edges will extend; it was generated independently too, but
		// checking here is cheap and keeps the invariant local.
		r.considerGlobal(pruned, sk)
	}
	r.best[id][signature(pruned.Nodes)] = pruned
}

// considerGlobal offers a qualifying path to the sink's top-k, ranked
// by stability.
func (r *normRun) considerGlobal(p topk.Path, sk normSink) {
	sk.stats.HeapConsiders++
	sk.global.Consider(topk.Path{Nodes: p.Nodes, Length: p.Length, Weight: p.Stability()})
}

// pruneTheorem1 repeatedly drops prefixes justified by Theorem 1: if
// π = pre·curr with length(curr) >= lmin and stability(pre) <=
// stability(curr), then curr extends at least as well as π for every
// suffix, so pre is discarded.
func (r *normRun) pruneTheorem1(p topk.Path) topk.Path {
	weights := r.cumulativeWeights(p)
	for {
		t := len(p.Nodes) - 1
		dropped := false
		for j := 1; j < t; j++ {
			currLen := r.g.Interval(p.Nodes[t]) - r.g.Interval(p.Nodes[j])
			if currLen < r.lmin {
				break // later split points only shorten curr further
			}
			preLen := r.g.Interval(p.Nodes[j]) - r.g.Interval(p.Nodes[0])
			preW := weights[j]
			currW := p.Weight - preW
			// stability(pre) <= stability(curr), cross-multiplied to
			// avoid division.
			if preW*float64(currLen) <= currW*float64(preLen) {
				p = topk.Path{Nodes: append([]int64(nil), p.Nodes[j:]...), Length: currLen, Weight: currW}
				weights = weights[j:]
				base := weights[0]
				for i := range weights {
					weights[i] -= base
				}
				dropped = true
				break
			}
		}
		if !dropped {
			return p
		}
	}
}

// cumulativeWeights returns w[j] = weight of the prefix ending at
// p.Nodes[j], recovered from the graph's edges.
func (r *normRun) cumulativeWeights(p topk.Path) []float64 {
	w := make([]float64, len(p.Nodes))
	for j := 1; j < len(p.Nodes); j++ {
		for _, h := range r.g.Children(p.Nodes[j-1]) {
			if h.Peer == p.Nodes[j] {
				w[j] = w[j-1] + h.Weight
				break
			}
		}
	}
	return w
}

// capBeam keeps only the BeamWidth highest-stability candidates at a
// node.
func (r *normRun) capBeam(id int64) {
	best := r.best[id]
	if len(best) <= r.beam {
		return
	}
	paths := make([]topk.Path, 0, len(best))
	for _, p := range best {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool {
		si, sj := paths[i].Stability(), paths[j].Stability()
		if si != sj {
			return si > sj
		}
		return signature(paths[i].Nodes) < signature(paths[j].Nodes)
	})
	for _, p := range paths[r.beam:] {
		delete(best, signature(p.Nodes))
	}
}

// dropDominatedSuffixes removes retained paths that are suffixes of
// other retained paths (the optional, unsound-in-general rule the
// paper sketches; see Request.SuffixDominance).
func (r *normRun) dropDominatedSuffixes(id int64) {
	best := r.best[id]
	for sigA, a := range best {
		for sigB, b := range best {
			if sigA == sigB || len(b.Nodes) >= len(a.Nodes) {
				continue
			}
			if isSuffix(b.Nodes, a.Nodes) {
				delete(best, sigB)
			}
		}
	}
}

func isSuffix(short, long []int64) bool {
	off := len(long) - len(short)
	if off <= 0 {
		return false
	}
	for i := range short {
		if short[i] != long[off+i] {
			return false
		}
	}
	return true
}

// evict discards per-node state that has fallen out of the g+1 window.
func (r *normRun) evict(i int) {
	old := i - r.g.Gap() - 1
	if old < 0 {
		return
	}
	for _, id := range r.g.NodesAt(old) {
		delete(r.small, id)
		delete(r.best, id)
	}
}

func (r *normRun) trackPeak() {
	var n int64
	for _, byLen := range r.small {
		for _, ps := range byLen {
			n += int64(len(ps))
		}
	}
	for _, m := range r.best {
		n += int64(len(m))
	}
	if n > r.stats.PeakStatePaths {
		r.stats.PeakStatePaths = n
	}
}

func signature(nodes []int64) string {
	var b strings.Builder
	for i, n := range nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(n, 10))
	}
	return b.String()
}
