package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/clustergraph"
	"repro/internal/topk"
)

// NormalizedOptions parameterizes a normalized-stable-clusters query
// (Problem 2): the top-k paths of temporal length at least LMin with
// the highest stability = weight/length.
type NormalizedOptions struct {
	// K is the number of top paths to return.
	K int
	// LMin is the minimum temporal path length (avoids trivial
	// single-strong-edge answers).
	LMin int
	// SuffixDominance additionally deletes a retained path that is a
	// suffix of another retained path, as Section 4.5 suggests. It is
	// off by default: the deleted suffix can out-extend the longer path
	// when a heavy continuation arrives, losing results.
	SuffixDominance bool
	// DisableTheorem1Pruning keeps every candidate path instead of
	// dropping prefixes per Theorem 1. The paper's pruning preserves
	// the top-1 stability value exactly (see the analysis in the
	// tests), but because Theorem 1 is conditional — it only covers
	// suffixes that improve the combined path — ranks below the
	// dominating retained path can be under-filled. Disabling the
	// pruning makes the algorithm exact for every k at the cost of
	// larger per-node state.
	DisableTheorem1Pruning bool
	// BeamWidth, when positive, caps each node's bestpaths to the
	// BeamWidth highest-stability candidates. The paper describes
	// bestpaths as "a list of top scoring paths", and without some
	// bound the candidate sets grow combinatorially with m (every
	// qualifying path ending at the node survives); the beam is the
	// reading that makes the measured Figure 14 sweep feasible. The
	// result becomes a (usually exact in practice, not guaranteed)
	// approximation; 0 keeps the unbounded exact behaviour.
	BeamWidth int
	// Ctx, when non-nil, cancels the solve between intervals.
	Ctx context.Context
}

// NormalizedBFS solves Problem 2 with the BFS framework of Section 4.5:
// nodes are processed interval by interval; each node carries
// smallpaths (all paths of length < lmin ending there) and bestpaths
// (candidate paths of length >= lmin ending there, pruned with the
// Theorem 1 prefix rule). Every generated path of qualifying length is
// checked against the global top-k by stability.
//
// The Weight field of returned paths holds the stability score.
func NormalizedBFS(g *clustergraph.Graph, opts NormalizedOptions) (*Result, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opts.K)
	}
	if opts.LMin <= 0 {
		return nil, fmt.Errorf("core: LMin must be positive, got %d", opts.LMin)
	}
	if opts.BeamWidth < 0 {
		return nil, fmt.Errorf("core: BeamWidth must be >= 0, got %d", opts.BeamWidth)
	}
	if opts.LMin > g.NumIntervals()-1 {
		return nil, fmt.Errorf("core: LMin %d exceeds m-1 = %d", opts.LMin, g.NumIntervals()-1)
	}
	r := &normRun{
		g:       g,
		k:       opts.K,
		lmin:    opts.LMin,
		suffix:  opts.SuffixDominance,
		noPrune: opts.DisableTheorem1Pruning,
		beam:    opts.BeamWidth,
		small:   make(map[int64]map[int][]topk.Path),
		best:    make(map[int64]map[string]topk.Path),
		global:  topk.NewK(opts.K),
	}
	for i := 0; i < g.NumIntervals(); i++ {
		if err := (Options{Ctx: opts.Ctx}).ctxErr(); err != nil {
			return nil, err
		}
		r.processInterval(i)
	}
	return &Result{Paths: r.global.Items(), Stats: r.stats}, nil
}

type normRun struct {
	g       *clustergraph.Graph
	k       int
	lmin    int
	suffix  bool
	noPrune bool
	beam    int

	// small[c][x] holds all paths of length x < lmin ending at c.
	small map[int64]map[int][]topk.Path
	// best[c] holds the candidate paths of length >= lmin ending at c,
	// keyed by node signature for de-duplication.
	best   map[int64]map[string]topk.Path
	global *topk.K
	stats  Stats
}

func (r *normRun) processInterval(i int) {
	window := 0
	lo := i - r.g.Gap() - 1
	if lo < 0 {
		lo = 0
	}
	for j := lo; j < i; j++ {
		window += len(r.g.NodesAt(j))
	}
	r.stats.NodeReads += int64(window)

	for _, id := range r.g.NodesAt(i) {
		r.small[id] = make(map[int][]topk.Path)
		r.best[id] = make(map[string]topk.Path)
		for _, ph := range r.g.Parents(id) {
			r.stats.EdgeReads++
			r.extend(id, ph)
		}
		if r.suffix {
			r.dropDominatedSuffixes(id)
		}
		if r.beam > 0 {
			r.capBeam(id)
		}
		r.stats.NodeWrites++
	}
	r.evict(i)
	r.trackPeak()
}

// extend folds the parent's paths across the edge into the node's
// smallpaths/bestpaths, per the update rules of Section 4.5.
func (r *normRun) extend(id int64, ph clustergraph.Half) {
	el := ph.Length
	// The edge alone.
	r.place(id, topk.Path{Nodes: []int64{ph.Peer}}.Append(id, el, ph.Weight))
	// Extensions of the parent's smallpaths (all lengths; gap edges can
	// jump from below lmin to above it, so unlike the paper's formula —
	// written for the exact x = lmin − length(c'c) — every extension is
	// routed by its resulting length).
	for _, paths := range r.small[ph.Peer] {
		for _, p := range paths {
			r.place(id, p.Append(id, el, ph.Weight))
		}
	}
	// Extensions of the parent's bestpaths.
	for _, p := range r.best[ph.Peer] {
		r.place(id, p.Append(id, el, ph.Weight))
	}
}

// place routes a newly generated path ending at id: short paths go to
// smallpaths; qualifying paths are checked against the global heap,
// pruned with Theorem 1, and retained as candidates.
func (r *normRun) place(id int64, p topk.Path) {
	if p.Length < r.lmin {
		r.small[id][p.Length] = append(r.small[id][p.Length], p)
		return
	}
	r.considerGlobal(p)
	if r.noPrune {
		r.best[id][signature(p.Nodes)] = p
		return
	}
	pruned := r.pruneTheorem1(p)
	if len(pruned.Nodes) != len(p.Nodes) {
		// The pruned remainder is itself a qualifying path that future
		// edges will extend; it was generated independently too, but
		// checking here is cheap and keeps the invariant local.
		r.considerGlobal(pruned)
	}
	r.best[id][signature(pruned.Nodes)] = pruned
}

// considerGlobal offers a qualifying path to the global top-k, ranked
// by stability.
func (r *normRun) considerGlobal(p topk.Path) {
	r.stats.HeapConsiders++
	r.global.Consider(topk.Path{Nodes: p.Nodes, Length: p.Length, Weight: p.Stability()})
}

// pruneTheorem1 repeatedly drops prefixes justified by Theorem 1: if
// π = pre·curr with length(curr) >= lmin and stability(pre) <=
// stability(curr), then curr extends at least as well as π for every
// suffix, so pre is discarded.
func (r *normRun) pruneTheorem1(p topk.Path) topk.Path {
	weights := r.cumulativeWeights(p)
	for {
		t := len(p.Nodes) - 1
		dropped := false
		for j := 1; j < t; j++ {
			currLen := r.g.Interval(p.Nodes[t]) - r.g.Interval(p.Nodes[j])
			if currLen < r.lmin {
				break // later split points only shorten curr further
			}
			preLen := r.g.Interval(p.Nodes[j]) - r.g.Interval(p.Nodes[0])
			preW := weights[j]
			currW := p.Weight - preW
			// stability(pre) <= stability(curr), cross-multiplied to
			// avoid division.
			if preW*float64(currLen) <= currW*float64(preLen) {
				p = topk.Path{Nodes: append([]int64(nil), p.Nodes[j:]...), Length: currLen, Weight: currW}
				weights = weights[j:]
				base := weights[0]
				for i := range weights {
					weights[i] -= base
				}
				dropped = true
				break
			}
		}
		if !dropped {
			return p
		}
	}
}

// cumulativeWeights returns w[j] = weight of the prefix ending at
// p.Nodes[j], recovered from the graph's edges.
func (r *normRun) cumulativeWeights(p topk.Path) []float64 {
	w := make([]float64, len(p.Nodes))
	for j := 1; j < len(p.Nodes); j++ {
		for _, h := range r.g.Children(p.Nodes[j-1]) {
			if h.Peer == p.Nodes[j] {
				w[j] = w[j-1] + h.Weight
				break
			}
		}
	}
	return w
}

// capBeam keeps only the BeamWidth highest-stability candidates at a
// node.
func (r *normRun) capBeam(id int64) {
	best := r.best[id]
	if len(best) <= r.beam {
		return
	}
	paths := make([]topk.Path, 0, len(best))
	for _, p := range best {
		paths = append(paths, p)
	}
	sort.Slice(paths, func(i, j int) bool {
		si, sj := paths[i].Stability(), paths[j].Stability()
		if si != sj {
			return si > sj
		}
		return signature(paths[i].Nodes) < signature(paths[j].Nodes)
	})
	for _, p := range paths[r.beam:] {
		delete(best, signature(p.Nodes))
	}
}

// dropDominatedSuffixes removes retained paths that are suffixes of
// other retained paths (the optional, unsound-in-general rule the
// paper sketches; see NormalizedOptions.SuffixDominance).
func (r *normRun) dropDominatedSuffixes(id int64) {
	best := r.best[id]
	for sigA, a := range best {
		for sigB, b := range best {
			if sigA == sigB || len(b.Nodes) >= len(a.Nodes) {
				continue
			}
			if isSuffix(b.Nodes, a.Nodes) {
				delete(best, sigB)
			}
		}
	}
}

func isSuffix(short, long []int64) bool {
	off := len(long) - len(short)
	if off <= 0 {
		return false
	}
	for i := range short {
		if short[i] != long[off+i] {
			return false
		}
	}
	return true
}

// evict discards per-node state that has fallen out of the g+1 window.
func (r *normRun) evict(i int) {
	old := i - r.g.Gap() - 1
	if old < 0 {
		return
	}
	for _, id := range r.g.NodesAt(old) {
		delete(r.small, id)
		delete(r.best, id)
	}
}

func (r *normRun) trackPeak() {
	var n int64
	for _, byLen := range r.small {
		for _, ps := range byLen {
			n += int64(len(ps))
		}
	}
	for _, m := range r.best {
		n += int64(len(m))
	}
	if n > r.stats.PeakStatePaths {
		r.stats.PeakStatePaths = n
	}
}

func signature(nodes []int64) string {
	var b strings.Builder
	for i, n := range nodes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(n, 10))
	}
	return b.String()
}
