package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context canceled on SIGINT or SIGTERM — the
// graceful-shutdown trigger shared by every command. Interactive runs
// die to Ctrl-C exactly as before; process supervisors (systemd,
// Kubernetes, docker stop) send SIGTERM, which previously killed the
// commands without letting Engine sessions cancel builds or remove
// temp disk segments.
//
// The returned stop function releases the signal registration,
// restoring the default die-on-signal behavior. Callers that keep
// running after the context fires (drain loops) should call stop at
// that point so a second signal force-quits instead of being swallowed
// — the standard "press Ctrl-C twice" escape hatch; cmd/blogserved
// does exactly that.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
