// Package cli holds the flag, corpus and lifecycle boilerplate shared
// by the commands (cmd/blogscope, cmd/blogstable, cmd/blogserved,
// cmd/experiments): corpus selection (-input/-demo), pipeline knobs
// (-parallelism/-membudget) and index backend selection
// (-index/-indexcache/-indexfile) mapped onto a blogclusters.Engine
// source and option list, plus the SIGINT/SIGTERM graceful-shutdown
// context (SignalContext) every command cancels on. Each command keeps
// only the flags specific to its own query surface.
package cli

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	blogclusters "repro"
	"repro/internal/shard"
)

// EngineFlags is the shared flag set. Register it on a FlagSet before
// flag parsing; after parsing, Source and Options translate the values
// into Engine inputs.
type EngineFlags struct {
	// Corpus selection.
	Input string
	Demo  bool
	// Intervals restricts the loaded corpus to a "from:to" slice of
	// global intervals (half-open, re-stamped to local indices) — how a
	// shard server loads just its partition of a shared corpus.
	Intervals string

	// Section 3/4 pipeline knobs.
	Parallelism int
	MemBudget   int

	// Keyword-index backend.
	IndexBackend      string
	IndexCache        int
	IndexFile         string
	IndexCompactAfter int

	// Stable-cluster query execution.
	PlanMode          string
	SolverParallelism int
}

// Register installs the shared flags on fs (use flag.CommandLine in
// main).
func (f *EngineFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Input, "input", "", "JSONL corpus file (one document per line)")
	fs.BoolVar(&f.Demo, "demo", false, "use the synthetic news-week corpus")
	fs.StringVar(&f.Intervals, "intervals", "", "serve only global intervals FROM:TO of the corpus (half-open), e.g. 0:4 — the shard-server slice of a shared corpus")
	fs.IntVar(&f.Parallelism, "parallelism", 0, "worker count for cluster and edge generation; 0 = GOMAXPROCS, 1 = sequential")
	fs.IntVar(&f.MemBudget, "membudget", 0, "pair-table memory budget in bytes, split across concurrent interval builds; 0 = default")
	fs.StringVar(&f.IndexBackend, "index", "mem", "keyword-index backend: mem (resident) or disk (segment file + LRU block cache)")
	fs.IntVar(&f.IndexCache, "indexcache", 0, "disk backend: block-cache budget in bytes; 0 = default (8 MiB)")
	fs.StringVar(&f.IndexFile, "indexfile", "", "disk backend: segment file path; empty = private temp file")
	fs.IntVar(&f.IndexCompactAfter, "index-compact-after", 0, "fold pushed delta segments into the base once more than this many accumulate; 0 = default, negative = never compact")
	fs.StringVar(&f.PlanMode, "plan", "auto", "solver planning for auto-algorithm queries: auto (cost-based planner) or off (registry default)")
	fs.IntVar(&f.SolverParallelism, "solver-parallelism", 0, "worker count for the stable-cluster solvers; 0 = GOMAXPROCS, 1 = sequential")
}

// Source maps -input/-demo (and -intervals, when set) onto an Engine
// corpus source. An -intervals slice forces the corpus to be
// materialized eagerly so the slice can be cut and re-stamped before
// the Engine sees it.
func (f *EngineFlags) Source() (blogclusters.Source, error) {
	switch {
	case f.Demo && f.Input != "":
		return blogclusters.Source{}, fmt.Errorf("pass either -demo or -input, not both")
	case f.Demo, f.Input != "":
	default:
		return blogclusters.Source{}, fmt.Errorf("need -input FILE or -demo (see -help)")
	}
	if f.Intervals == "" {
		if f.Demo {
			return blogclusters.FromGenerator(blogclusters.NewsWeekCorpus(2007, 600)), nil
		}
		return blogclusters.FromJSONLFile(f.Input), nil
	}
	from, to, err := parseIntervalRange(f.Intervals)
	if err != nil {
		return blogclusters.Source{}, err
	}
	col, err := f.Collection()
	if err != nil {
		return blogclusters.Source{}, err
	}
	sub, err := shard.SliceCollection(col, from, to)
	if err != nil {
		return blogclusters.Source{}, err
	}
	return blogclusters.FromCollection(sub), nil
}

// Collection materializes the -input/-demo corpus (without any
// -intervals slicing).
func (f *EngineFlags) Collection() (*blogclusters.Collection, error) {
	if f.Demo {
		return blogclusters.GenerateCorpus(blogclusters.NewsWeekCorpus(2007, 600))
	}
	if f.Input == "" {
		return nil, fmt.Errorf("need -input FILE or -demo (see -help)")
	}
	r, err := os.Open(f.Input)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return blogclusters.ReadJSONL(r)
}

// parseIntervalRange parses the -intervals "from:to" syntax.
func parseIntervalRange(s string) (from, to int, err error) {
	lo, hi, ok := strings.Cut(s, ":")
	if ok {
		from, err = strconv.Atoi(strings.TrimSpace(lo))
		if err == nil {
			to, err = strconv.Atoi(strings.TrimSpace(hi))
		}
	}
	if !ok || err != nil || from < 0 || to <= from {
		return 0, 0, fmt.Errorf("-intervals wants FROM:TO with 0 <= FROM < TO, got %q", s)
	}
	return from, to, nil
}

// ClusterOptions maps the pipeline knobs onto ClusterOptions, starting
// from base (a command's query-specific settings).
func (f *EngineFlags) ClusterOptions(base blogclusters.ClusterOptions) blogclusters.ClusterOptions {
	base.Parallelism = f.Parallelism
	base.MemBudget = f.MemBudget
	return base
}

// IndexOptions maps the index flags onto IndexOptions.
func (f *EngineFlags) IndexOptions() blogclusters.IndexOptions {
	return blogclusters.IndexOptions{
		Backend:      f.IndexBackend,
		Path:         f.IndexFile,
		MemBudget:    f.IndexCache,
		CompactAfter: f.IndexCompactAfter,
	}
}

// Options assembles the Engine option list from the shared flags plus
// a command's own cluster/graph settings.
func (f *EngineFlags) Options(clusterBase blogclusters.ClusterOptions, graph blogclusters.GraphOptions) []blogclusters.Option {
	graph.Parallelism = f.Parallelism
	return []blogclusters.Option{
		blogclusters.WithClusterOptions(f.ClusterOptions(clusterBase)),
		blogclusters.WithGraphOptions(graph),
		blogclusters.WithIndexOptions(f.IndexOptions()),
		blogclusters.WithPlanMode(f.PlanMode),
		blogclusters.WithSolverParallelism(f.SolverParallelism),
	}
}
