package cli

import (
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartPprof serves the net/http/pprof handlers on their own listener
// and mux. Profiling stays off the public API listener on purpose:
// the handlers expose heap contents and can run seconds-long CPU
// captures, so they belong on an operator-chosen (typically localhost)
// port, operationally exempt from the serving stack's admission
// control and breakers the same way /healthz and /metrics are. The
// returned stop function closes the listener; in-flight profile
// captures are cut off, which is fine at process exit.
func StartPprof(addr string, logger *slog.Logger) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if serr := srv.Serve(ln); serr != http.ErrServerClosed {
			logger.Error("pprof server", "err", serr)
		}
	}()
	logger.Info("pprof listening", "addr", ln.Addr().String())
	return func() { srv.Close() }, nil
}
