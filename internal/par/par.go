// Package par provides the bounded worker-pool primitive shared by the
// parallel pipeline stages (interval-cluster builds, cluster-graph edge
// tasks, similarity-join probe chunks). Callers slot results into
// index-addressed slices, which keeps outputs canonical at any worker
// count.
package par

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines and returns the lowest-index error, or nil. After any task
// fails no new task is started (in-flight tasks finish), so a failure
// on a long run does not burn through the remaining work. workers <= 1
// (or n <= 1) runs sequentially on the calling goroutine, stopping at
// the first error — the no-goroutine ablation path.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done no new task
// is started (in-flight tasks finish) and ctx.Err() is returned unless
// an earlier task error takes precedence. Cancellation between tasks is
// the pool's responsibility; cancellation *inside* a long fn is the
// callee's (pass ctx down).
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	done := ctx.Done()
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	indexCh := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range indexCh {
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	canceled := false
dispatch:
	for i := 0; i < n; i++ {
		if done != nil {
			select {
			case <-done:
				canceled = true
				break dispatch
			default:
			}
		}
		indexCh <- i
	}
	close(indexCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if canceled {
		return ctx.Err()
	}
	return nil
}
