package par

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		const n = 37
		var hits [n]atomic.Int32
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers %d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := ForEach(10, 1, func(i int) error {
		switch i {
		case 3:
			return errA
		case 7:
			return errB
		}
		return nil
	})
	if err != errA {
		t.Fatalf("sequential error = %v, want %v", err, errA)
	}
}

func TestForEachStopsIssuingAfterFailure(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	err := ForEach(1000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		// Slow the survivors so the failure flag is up long before the
		// pool could drain the full range.
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Exact counts depend on scheduling, but after the first task fails
	// the pool must stop issuing new ones.
	if got := ran.Load(); got > 100 {
		t.Fatalf("pool ran %d tasks despite an early failure", got)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
