package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChiSquaredIndependentPair(t *testing.T) {
	// u in half the docs, v in half the docs, co-occurring in exactly a
	// quarter: perfectly independent, χ² must be 0.
	if got := ChiSquared(1000, 500, 500, 250); got != 0 {
		t.Errorf("χ² of independent pair = %g, want 0", got)
	}
}

func TestChiSquaredPerfectlyCorrelated(t *testing.T) {
	// u and v always co-occur in 100 of 1000 docs: χ² = n for a perfect
	// association of this shape.
	got := ChiSquared(1000, 100, 100, 100)
	if got < ChiSquared95 {
		t.Errorf("χ² of perfectly correlated pair = %g, want > %g", got, ChiSquared95)
	}
	// Hand-computed: E(uv)=10, cells give χ² = 81*1000/(9*100) ... verify
	// against the closed form n*(ad-bc)²/((a+b)(c+d)(a+c)(b+d)).
	want := closedForm(1000, 100, 100, 100)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("χ² = %g, want %g (closed form)", got, want)
	}
}

// closedForm is the standard 2x2 χ² formula used as an independent oracle:
// χ² = n(O11·O22 − O12·O21)² / (row1·row2·col1·col2).
func closedForm(n, au, av, auv int64) float64 {
	o11 := float64(auv)
	o12 := float64(au - auv)
	o21 := float64(av - auv)
	o22 := float64(n - au - av + auv)
	fn := float64(n)
	num := fn * (o11*o22 - o12*o21) * (o11*o22 - o12*o21)
	den := (o11 + o12) * (o21 + o22) * (o11 + o21) * (o12 + o22)
	if den == 0 {
		return 0
	}
	return num / den
}

// Property: Equation 1 agrees with the closed-form 2×2 χ² everywhere.
func TestChiSquaredMatchesClosedForm(t *testing.T) {
	f := func(nSeed, auSeed, avSeed, auvSeed uint16) bool {
		n := int64(nSeed)%5000 + 10
		au := int64(auSeed)%(n-1) + 1
		av := int64(avSeed)%(n-1) + 1
		maxAuv := au
		if av < maxAuv {
			maxAuv = av
		}
		minAuv := au + av - n
		if minAuv < 0 {
			minAuv = 0
		}
		if maxAuv < minAuv {
			return true
		}
		auv := minAuv + int64(auvSeed)%(maxAuv-minAuv+1)
		got := ChiSquared(n, au, av, auv)
		want := closedForm(n, au, av, auv)
		return math.Abs(got-want) < 1e-6*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestChiSquaredDegenerateInputs(t *testing.T) {
	cases := []struct{ n, au, av, auv int64 }{
		{0, 0, 0, 0},
		{100, 0, 50, 0},
		{100, 50, 0, 0},
		{100, 100, 50, 50}, // u in every doc
		{100, 50, 100, 50}, // v in every doc
		{100, 50, 50, 60},  // inconsistent: auv > au
		{100, 50, 50, -1},  // inconsistent: negative
	}
	for _, c := range cases {
		if got := ChiSquared(c.n, c.au, c.av, c.auv); got != 0 {
			t.Errorf("ChiSquared(%v) = %g, want 0", c, got)
		}
	}
}

func TestIsCorrelated(t *testing.T) {
	if !IsCorrelated(1000, 100, 100, 100) {
		t.Error("perfectly co-occurring pair not flagged correlated")
	}
	if IsCorrelated(1000, 500, 500, 250) {
		t.Error("independent pair flagged correlated")
	}
}

func TestCorrelationBounds(t *testing.T) {
	// Perfect positive correlation: identical indicator vectors.
	if got := Correlation(1000, 100, 100, 100); math.Abs(got-1) > 1e-9 {
		t.Errorf("ρ of identical keywords = %g, want 1", got)
	}
	// Perfect negative correlation: u and v partition the corpus.
	if got := Correlation(100, 50, 50, 0); math.Abs(got+1) > 1e-9 {
		t.Errorf("ρ of complementary keywords = %g, want -1", got)
	}
	// Independence.
	if got := Correlation(1000, 500, 500, 250); got != 0 {
		t.Errorf("ρ of independent pair = %g, want 0", got)
	}
}

// Property: ρ is always in [-1, 1] and symmetric in u and v.
func TestCorrelationProperties(t *testing.T) {
	f := func(nSeed, auSeed, avSeed, auvSeed uint16) bool {
		n := int64(nSeed)%5000 + 10
		au := int64(auSeed)%(n-1) + 1
		av := int64(avSeed)%(n-1) + 1
		maxAuv := au
		if av < maxAuv {
			maxAuv = av
		}
		minAuv := au + av - n
		if minAuv < 0 {
			minAuv = 0
		}
		if maxAuv < minAuv {
			return true
		}
		auv := minAuv + int64(auvSeed)%(maxAuv-minAuv+1)
		rho := Correlation(n, au, av, auv)
		if rho < -1 || rho > 1 {
			return false
		}
		return rho == Correlation(n, av, au, auv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// The paper's motivation for ρ: with lots of data, χ² flags weak but real
// correlations that ρ correctly reports as weak.
func TestWeakCorrelationScenario(t *testing.T) {
	// Over a day, two terms co-occur slightly more than chance in a big
	// corpus: n=200000, A(u)=2000, A(v)=2000, expected co-occurrence 20,
	// observed 60.
	n, au, av, auv := int64(200000), int64(2000), int64(2000), int64(60)
	if !IsCorrelated(n, au, av, auv) {
		t.Error("χ² failed to detect the weak-but-real correlation")
	}
	rho := Correlation(n, au, av, auv)
	if rho <= 0 || rho >= DefaultRhoThreshold {
		t.Errorf("ρ = %g, want weak positive below the %g pruning threshold", rho, DefaultRhoThreshold)
	}
}

func TestChiSquaredCritical(t *testing.T) {
	v, err := ChiSquaredCritical(0.95)
	if err != nil || v != 3.84 {
		t.Errorf("ChiSquaredCritical(0.95) = %g, %v; want 3.84, nil", v, err)
	}
	if _, err := ChiSquaredCritical(0.42); err == nil {
		t.Error("ChiSquaredCritical accepted unsupported level")
	}
	if v, _ := ChiSquaredCritical(0.999); v != 10.83 {
		t.Errorf("ChiSquaredCritical(0.999) = %g, want 10.83", v)
	}
}

func BenchmarkChiSquaredAndCorrelation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := int64(100000 + i%100)
		ChiSquared(n, 500, 700, 90)
		Correlation(n, 500, 700, 90)
	}
}
