// Package stats implements the statistical machinery of Section 3 of
// the paper: the χ² independence test over 2×2 keyword contingency
// tables (Equation 1) and the binary correlation coefficient ρ in its
// single-pass form (Equation 3).
package stats

import (
	"fmt"
	"math"
)

// ChiSquared95 is the critical value of the χ² distribution with one
// degree of freedom at the 95% confidence level. The paper prunes edges
// whose χ² statistic does not exceed it.
const ChiSquared95 = 3.84

// chi2Quantiles maps confidence level → critical value for 1 degree of
// freedom, from standard tables, so callers can pick significance levels
// other than the paper's 95%.
var chi2Quantiles = map[float64]float64{
	0.90:  2.71,
	0.95:  3.84,
	0.975: 5.02,
	0.99:  6.63,
	0.995: 7.88,
	0.999: 10.83,
}

// ChiSquaredCritical returns the critical χ² value (1 dof) for the given
// confidence level. Supported levels are 0.90, 0.95, 0.975, 0.99, 0.995
// and 0.999.
func ChiSquaredCritical(confidence float64) (float64, error) {
	if v, ok := chi2Quantiles[confidence]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("stats: unsupported confidence level %g", confidence)
}

// ChiSquared computes the χ² statistic of Equation 1 for a keyword pair:
// au = A(u) documents contain u, av = A(v) contain v, auv = A(u,v)
// contain both, out of n documents total. The four contingency cells
// (uv, ūv, uv̄, ūv̄) are derived from these counts.
//
// Degenerate tables — a keyword appearing in no document or in every
// document — have an expected count of zero in some cell; independence is
// untestable there and the statistic is defined as 0 (the edge fails the
// test), matching the filter semantics of the pipeline.
func ChiSquared(n, au, av, auv int64) float64 {
	if n <= 0 || au <= 0 || av <= 0 || au >= n || av >= n {
		return 0
	}
	if auv > au || auv > av || auv < 0 {
		// Inconsistent counts: treat as failing rather than panicking;
		// upstream validation reports these separately.
		return 0
	}
	fn := float64(n)
	fau := float64(au)
	fav := float64(av)

	// Observed cells.
	oUV := float64(auv)
	oUnV := fav - oUV        // ū v: v without u
	oUVn := fau - oUV        // u v̄: u without v
	oUnVn := fn - fau - oUnV // ū v̄

	// Expected cells under independence.
	eUV := fau * fav / fn
	eUnV := (fn - fau) * fav / fn
	eUVn := fau * (fn - fav) / fn
	eUnVn := (fn - fau) * (fn - fav) / fn

	cell := func(o, e float64) float64 {
		d := o - e
		return d * d / e
	}
	return cell(oUV, eUV) + cell(oUnV, eUnV) + cell(oUVn, eUVn) + cell(oUnVn, eUnVn)
}

// IsCorrelated reports whether the pair passes the χ² test at the 95%
// confidence level, i.e. χ² > 3.84 (Section 3).
func IsCorrelated(n, au, av, auv int64) bool {
	return ChiSquared(n, au, av, auv) > ChiSquared95
}

// Correlation computes ρ(u,v) using the paper's single-pass rewrite
// (Equation 3):
//
//	ρ(u,v) = (n·A(u,v) − A(u)·A(v)) / (sqrt((n−A(u))·A(u)) · sqrt((n−A(v))·A(v)))
//
// valid because the per-document indicators are 0/1 (ΣA_i² = ΣA_i). The
// result is in [−1, 1]; pairs involving a keyword that appears in no or
// every document have undefined correlation and return 0.
func Correlation(n, au, av, auv int64) float64 {
	if n <= 0 || au <= 0 || av <= 0 || au >= n || av >= n {
		return 0
	}
	num := float64(n)*float64(auv) - float64(au)*float64(av)
	den := math.Sqrt(float64(n-au)*float64(au)) * math.Sqrt(float64(n-av)*float64(av))
	if den == 0 {
		return 0
	}
	rho := num / den
	// Clamp tiny floating-point excursions outside [-1, 1].
	if rho > 1 {
		rho = 1
	} else if rho < -1 {
		rho = -1
	}
	return rho
}

// DefaultRhoThreshold is the correlation-coefficient pruning threshold
// the paper uses (ρ > 0.2) to keep only strongly correlated pairs.
const DefaultRhoThreshold = 0.2
