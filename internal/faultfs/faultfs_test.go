package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func writeFile(t *testing.T, fs FS, path string, data []byte) {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOSPassthrough(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	writeFile(t, fs, path, []byte("hello"))
	f, err := fs.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read %q", buf)
	}
	if err := fs.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorNoRulesIsTransparent(t *testing.T) {
	in := NewInjector(nil, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	writeFile(t, in, path, []byte("payload"))
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 7)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if in.Injected() != 0 {
		t.Fatalf("injected %d faults with no rules", in.Injected())
	}
}

func TestInjectedEIOOnRead(t *testing.T) {
	in := NewInjector(nil, 1)
	in.AddRule(Rule{Op: OpRead})
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	writeFile(t, in, path, []byte("payload"))
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 7)
	if _, err := f.ReadAt(buf, 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("ReadAt error = %v, want EIO", err)
	}
}

func TestENOSPCOnWrite(t *testing.T) {
	in := NewInjector(nil, 1)
	in.AddRule(Rule{Op: OpWrite, Err: syscall.ENOSPC})
	dir := t.TempDir()
	f, err := in.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Write error = %v, want ENOSPC", err)
	}
}

func TestShortReadDeliversPrefix(t *testing.T) {
	in := NewInjector(nil, 1)
	in.AddRule(Rule{Op: OpRead, ShortBy: 3, Err: io.ErrUnexpectedEOF})
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	writeFile(t, in, path, []byte("abcdefgh"))
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8)
	n, err := f.ReadAt(buf, 0)
	if n != 5 || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("ReadAt = (%d, %v), want (5, unexpected EOF)", n, err)
	}
	if string(buf[:n]) != "abcde" {
		t.Fatalf("prefix %q", buf[:n])
	}
}

func TestTornWriteDeliversPrefix(t *testing.T) {
	in := NewInjector(nil, 1)
	in.AddRule(Rule{Op: OpWrite, ShortBy: 4, MaxFires: 1})
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := in.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("abcdefgh"))
	f.Close()
	if n != 4 || !errors.Is(werr, syscall.EIO) {
		t.Fatalf("torn write = (%d, %v), want (4, EIO)", n, werr)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Fatalf("file holds %q after torn write, want the 4-byte prefix", got)
	}
}

// TestEveryNAfterNMaxFires exercises the op-count predicates: skip the
// first 2 reads, then fail every 2nd matching read, at most twice.
func TestEveryNAfterNMaxFires(t *testing.T) {
	in := NewInjector(nil, 1)
	r := in.AddRule(Rule{Op: OpRead, AfterN: 2, EveryN: 2, MaxFires: 2})
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	writeFile(t, in, path, []byte("abcdefgh"))
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 2)
	var outcomes []bool
	for i := 0; i < 10; i++ {
		_, err := f.ReadAt(buf, 0)
		outcomes = append(outcomes, err != nil)
	}
	// Reads 1,2 skipped (AfterN); then every 2nd of the rest fails:
	// reads 4 and 6; MaxFires stops it there.
	want := []bool{false, false, false, true, false, true, false, false, false, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("read %d: failed=%v, want %v (all: %v)", i+1, outcomes[i], want[i], outcomes)
		}
	}
	if st := in.Stats(r); st.Fired != 2 {
		t.Fatalf("rule fired %d times, want 2", st.Fired)
	}
}

// TestProbDeterministicPerSeed pins the seed-driven probability path:
// the same seed yields the same fault sequence, a different seed a
// (almost surely) different one, and the empirical rate is near Prob.
func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		in := NewInjector(nil, seed)
		in.AddRule(Rule{Op: OpRead, Prob: 0.3})
		dir := t.TempDir()
		path := filepath.Join(dir, "f")
		writeFile(t, in, path, []byte("abcdefgh"))
		f, err := in.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		buf := make([]byte, 1)
		out := make([]bool, 200)
		for i := range out {
			_, err := f.ReadAt(buf, 0)
			out[i] = err != nil
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	same, diff, fails := true, false, 0
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
		if a[i] {
			fails++
		}
	}
	if !same {
		t.Fatal("same seed produced different fault sequences")
	}
	if !diff {
		t.Fatal("different seeds produced identical fault sequences")
	}
	if fails < 30 || fails > 90 {
		t.Fatalf("Prob 0.3 fired %d/200 times", fails)
	}
}

func TestOffsetPredicate(t *testing.T) {
	in := NewInjector(nil, 1)
	in.AddRule(Rule{Op: OpRead, OffsetLo: 4, OffsetHi: 8})
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	writeFile(t, in, path, []byte("abcdefgh"))
	f, err := in.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 2)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read at 0 failed: %v", err)
	}
	if _, err := f.ReadAt(buf, 5); err == nil {
		t.Fatal("read at 5 (inside fault window) succeeded")
	}
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read at 0 failed after windowed fault: %v", err)
	}
}

func TestPathPredicateAndSetEnabled(t *testing.T) {
	in := NewInjector(nil, 1)
	in.AddRule(Rule{Op: OpOpen, Path: "segment"})
	dir := t.TempDir()
	writeFile(t, in, filepath.Join(dir, "segment.seg"), []byte("x"))
	writeFile(t, in, filepath.Join(dir, "other"), []byte("x"))
	if _, err := in.Open(filepath.Join(dir, "segment.seg")); err == nil {
		t.Fatal("open of matching path succeeded")
	}
	f, err := in.Open(filepath.Join(dir, "other"))
	if err != nil {
		t.Fatalf("open of non-matching path failed: %v", err)
	}
	f.Close()
	in.SetEnabled(false)
	f, err = in.Open(filepath.Join(dir, "segment.seg"))
	if err != nil {
		t.Fatalf("open failed after SetEnabled(false): %v", err)
	}
	f.Close()
	in.SetEnabled(true)
	if _, err := in.Open(filepath.Join(dir, "segment.seg")); err == nil {
		t.Fatal("open succeeded after re-enable")
	}
}
