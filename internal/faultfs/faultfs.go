// Package faultfs is the filesystem seam beneath the storage layers
// (internal/diskstore, internal/extsort, internal/index): a minimal
// FS/File abstraction whose production implementation is a zero-cost
// passthrough to package os, and whose test implementation — Injector —
// injects programmable faults deterministically.
//
// The point is the failure model, not the abstraction: before the
// snapshot/replication and shard fan-out work multiplies the ways disk
// I/O can fail mid-operation, every "what happens when the read
// fails?" claim in this repo should be provable by a test that makes
// the read fail. Injector makes faults first-class:
//
//   - fault kinds: any error (syscall.EIO, syscall.ENOSPC, ...), short
//     reads, torn writes (a prefix reaches the file, then the error),
//     and added latency;
//   - predicates: operation kind (read/write/open/...), path substring,
//     every-Nth matching op, after-the-first-N ops, byte-offset range,
//     and a seeded probability — all deterministic for a fixed seed and
//     operation sequence;
//   - accounting: per-rule match/fire counters and a global injected
//     count, so tests can assert a fault actually fired.
//
// Faults injected through Err default to syscall.EIO, which the
// storage layers classify as transient (diskstore.IsTransient) and
// retry with bounded backoff; ENOSPC and corruption are not retried.
package faultfs

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// File is the slice of *os.File the storage layers consume. *os.File
// implements it.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.Closer
	Name() string
	Sync() error
	Stat() (os.FileInfo, error)
}

// FS is the slice of package os the storage layers consume.
// Implementations must be safe for concurrent use.
type FS interface {
	Create(name string) (File, error)
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	MkdirTemp(dir, pattern string) (string, error)
	Remove(name string) error
	RemoveAll(path string) error
	Rename(oldpath, newpath string) error
}

// OS returns the passthrough FS over package os — the production
// default everywhere an FS is optional.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}
func (osFS) MkdirTemp(dir, pattern string) (string, error) {
	return os.MkdirTemp(dir, pattern)
}
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Op classifies one filesystem operation for rule matching.
type Op uint8

const (
	OpOpen Op = iota
	OpCreate
	OpRead
	OpWrite
	OpSync
	OpClose
	OpRemove
	OpRename
)

func (o Op) String() string {
	switch o {
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	case OpRemove:
		return "remove"
	case OpRename:
		return "rename"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Rule is one programmable fault: which operations it matches, when it
// fires, and what happens. The zero predicate fields widen the match
// (any path, any offset, every op); the fire condition is the AND of
// the set predicates, with Prob sampled last.
type Rule struct {
	// Op is the operation kind the rule applies to.
	Op Op
	// Path, when non-empty, matches only files whose name contains it.
	Path string
	// AfterN skips the first N matching operations (so a build can
	// succeed past its header before faults start).
	AfterN int64
	// EveryN, when positive, fires on every Nth matching operation
	// (counted after AfterN). Zero means every matching operation is a
	// candidate.
	EveryN int64
	// Prob, when in (0,1), fires with this probability per candidate
	// operation, sampled from the Injector's seeded generator. Zero or
	// >=1 means fire on every candidate.
	Prob float64
	// OffsetLo/OffsetHi, when not both zero, restrict read faults to
	// ReadAt offsets in [OffsetLo, OffsetHi) and write faults to writes
	// whose cumulative file offset starts in that range.
	OffsetLo, OffsetHi int64
	// MaxFires, when positive, deactivates the rule after that many
	// fires — "fail exactly once" is MaxFires: 1.
	MaxFires int64

	// Err is the injected error. Nil means syscall.EIO. ENOSPC and
	// friends go here.
	Err error
	// ShortBy, for reads and writes, performs a partial transfer: a
	// read returns len(p)-ShortBy bytes, a torn write delivers
	// len(p)-ShortBy bytes to the underlying file; both then return the
	// rule's error alongside the short count, per the io contracts.
	ShortBy int
	// Latency is added before the operation runs (and before any
	// error), modeling a slow device rather than a broken one. A rule
	// with only Latency set delays but does not fail.
	Latency time.Duration

	matched int64
	fired   int64
}

// RuleStats reports one rule's accounting.
type RuleStats struct {
	Matched int64 // operations that matched the Op/Path/offset predicates
	Fired   int64 // operations the rule actually faulted (or delayed)
}

// Injector wraps an FS and applies fault rules to every operation that
// flows through it. Safe for concurrent use; determinism holds for a
// fixed seed and a fixed operation order (single-goroutine use, or
// tests that don't care about cross-goroutine interleaving).
type Injector struct {
	inner FS

	mu       sync.Mutex
	rng      *rand.Rand
	rules    []*Rule
	disabled bool
	injected int64
}

// NewInjector wraps inner (nil means the OS passthrough) with a
// deterministic, seed-driven fault injector. With no rules installed it
// is transparent.
func NewInjector(inner FS, seed int64) *Injector {
	if inner == nil {
		inner = OS()
	}
	return &Injector{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// AddRule installs a rule and returns it (the pointer identifies the
// rule in Stats).
func (in *Injector) AddRule(r Rule) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	rp := &r
	in.rules = append(in.rules, rp)
	return rp
}

// SetEnabled atomically enables or disables every rule — the switch a
// recovery test flips to let the system heal.
func (in *Injector) SetEnabled(enabled bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.disabled = !enabled
}

// Injected reports how many operations were faulted (or delayed) in
// total.
func (in *Injector) Injected() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Stats reports one rule's counters.
func (in *Injector) Stats(r *Rule) RuleStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return RuleStats{Matched: r.matched, Fired: r.fired}
}

// decide finds the firing rule (if any) for one operation. offset < 0
// means the operation has no meaningful offset.
func (in *Injector) decide(op Op, name string, offset int64) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.disabled {
		return nil
	}
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(name, r.Path) {
			continue
		}
		if (r.OffsetLo != 0 || r.OffsetHi != 0) &&
			(offset < 0 || offset < r.OffsetLo || offset >= r.OffsetHi) {
			continue
		}
		r.matched++
		if r.matched <= r.AfterN {
			continue
		}
		if r.MaxFires > 0 && r.fired >= r.MaxFires {
			continue
		}
		if r.EveryN > 0 && (r.matched-r.AfterN)%r.EveryN != 0 {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		in.injected++
		return r
	}
	return nil
}

// fire applies the non-transfer parts of a fault (latency, plain
// error). Transfer faults (ShortBy) are handled at the call sites that
// move bytes.
func fire(r *Rule) error {
	if r == nil {
		return nil
	}
	if r.Latency > 0 {
		time.Sleep(r.Latency)
	}
	if r.Err == nil && r.ShortBy == 0 && r.Latency > 0 {
		return nil // latency-only rule
	}
	return r.ruleErr()
}

func (r *Rule) ruleErr() error {
	if r.Err != nil {
		return r.Err
	}
	return syscall.EIO
}

var _ FS = (*Injector)(nil)

func (in *Injector) Create(name string) (File, error) {
	if err := fire(in.decide(OpCreate, name, -1)); err != nil {
		return nil, &os.PathError{Op: "create", Path: name, Err: err}
	}
	f, err := in.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if err := fire(in.decide(OpOpen, name, -1)); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := fire(in.decide(OpCreate, dir+"/"+pattern, -1)); err != nil {
		return nil, &os.PathError{Op: "createtemp", Path: pattern, Err: err}
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

func (in *Injector) MkdirTemp(dir, pattern string) (string, error) {
	if err := fire(in.decide(OpCreate, dir+"/"+pattern, -1)); err != nil {
		return "", &os.PathError{Op: "mkdirtemp", Path: pattern, Err: err}
	}
	return in.inner.MkdirTemp(dir, pattern)
}

func (in *Injector) Remove(name string) error {
	if err := fire(in.decide(OpRemove, name, -1)); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return in.inner.Remove(name)
}

func (in *Injector) RemoveAll(path string) error {
	if err := fire(in.decide(OpRemove, path, -1)); err != nil {
		return &os.PathError{Op: "removeall", Path: path, Err: err}
	}
	return in.inner.RemoveAll(path)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := fire(in.decide(OpRename, oldpath, -1)); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return in.inner.Rename(oldpath, newpath)
}

// faultFile applies read/write/sync/close rules to one open file.
type faultFile struct {
	in *Injector
	f  File

	mu    sync.Mutex
	wrOff int64 // cumulative write offset, for write offset predicates
}

var _ File = (*faultFile)(nil)

func (f *faultFile) Name() string               { return f.f.Name() }
func (f *faultFile) Stat() (os.FileInfo, error) { return f.f.Stat() }

func (f *faultFile) Read(p []byte) (int, error) {
	r := f.in.decide(OpRead, f.f.Name(), -1)
	if r != nil {
		if r.Latency > 0 {
			time.Sleep(r.Latency)
		}
		if r.ShortBy > 0 && len(p) > r.ShortBy {
			n, err := f.f.Read(p[:len(p)-r.ShortBy])
			if err != nil {
				return n, err
			}
			return n, r.ruleErr()
		}
		if r.Err != nil || r.ShortBy > 0 || r.Latency == 0 {
			return 0, r.ruleErr()
		}
	}
	return f.f.Read(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	r := f.in.decide(OpRead, f.f.Name(), off)
	if r != nil {
		if r.Latency > 0 {
			time.Sleep(r.Latency)
		}
		if r.ShortBy > 0 && len(p) > r.ShortBy {
			// Short read: a prefix arrives, then the error — ReadAt's
			// contract requires an error whenever n < len(p).
			n, err := f.f.ReadAt(p[:len(p)-r.ShortBy], off)
			if err != nil {
				return n, err
			}
			return n, r.ruleErr()
		}
		if r.Err != nil || r.ShortBy > 0 || r.Latency == 0 {
			return 0, r.ruleErr()
		}
	}
	return f.f.ReadAt(p, off)
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.wrOff
	f.mu.Unlock()
	r := f.in.decide(OpWrite, f.f.Name(), off)
	if r != nil {
		if r.Latency > 0 {
			time.Sleep(r.Latency)
		}
		if r.ShortBy > 0 && len(p) > r.ShortBy {
			// Torn write: a prefix reaches the device, then the error.
			n, err := f.f.Write(p[:len(p)-r.ShortBy])
			f.advance(n)
			if err != nil {
				return n, err
			}
			return n, r.ruleErr()
		}
		if r.Err != nil || r.ShortBy > 0 || r.Latency == 0 {
			return 0, r.ruleErr()
		}
	}
	n, err := f.f.Write(p)
	f.advance(n)
	return n, err
}

func (f *faultFile) advance(n int) {
	f.mu.Lock()
	f.wrOff += int64(n)
	f.mu.Unlock()
}

func (f *faultFile) Sync() error {
	if err := fire(f.in.decide(OpSync, f.f.Name(), -1)); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *faultFile) Close() error {
	if err := fire(f.in.decide(OpClose, f.f.Name(), -1)); err != nil {
		f.f.Close() // release the descriptor regardless
		return err
	}
	return f.f.Close()
}
