package synth

import (
	"testing"
)

func TestGenerateShape(t *testing.T) {
	cfg := Config{Seed: 1, M: 5, N: 40, D: 3, G: 1}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.NumIntervals() != 5 || g.NumNodes() != 200 {
		t.Fatalf("shape: %d intervals %d nodes", g.NumIntervals(), g.NumNodes())
	}
	// Every node in a non-final interval has between 1 and 2D children
	// per reachable later interval.
	for i := 0; i < 4; i++ {
		for _, id := range g.NodesAt(i) {
			perDist := map[int]int{}
			for _, h := range g.Children(id) {
				perDist[h.Length]++
				if h.Weight <= 0 || h.Weight > 1 {
					t.Fatalf("weight %g outside (0,1]", h.Weight)
				}
				if h.Length < 1 || h.Length > cfg.G+1 {
					t.Fatalf("edge length %d outside [1,%d]", h.Length, cfg.G+1)
				}
			}
			for dist, cnt := range perDist {
				if cnt < 1 || cnt > 2*cfg.D {
					t.Fatalf("node %d: %d edges at distance %d, want in [1,%d]", id, cnt, dist, 2*cfg.D)
				}
			}
			// Every reachable distance must have at least one edge.
			for dist := 1; dist <= cfg.G+1 && i+dist < 5; dist++ {
				if perDist[dist] == 0 {
					t.Fatalf("node %d has no edges at distance %d", id, dist)
				}
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, M: 3, N: 10, D: 2, G: 0}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for id := int64(0); id < int64(a.NumNodes()); id++ {
		ca, cb := a.Children(id), b.Children(id)
		if len(ca) != len(cb) {
			t.Fatalf("node %d: child counts differ", id)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("node %d child %d differs", id, i)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []Config{
		{M: 0, N: 1, D: 1},
		{M: 1, N: 0, D: 1},
		{M: 1, N: 1, D: 0},
		{M: 1, N: 1, D: 1, G: -1},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) accepted invalid config", cfg)
		}
	}
}

func TestGenerateDegreeCappedBySmallN(t *testing.T) {
	// N smaller than 2D must not loop forever or exceed N targets.
	g, err := Generate(Config{Seed: 3, M: 2, N: 3, D: 5, G: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range g.NodesAt(0) {
		if len(g.Children(id)) > 3 {
			t.Fatalf("node %d has %d children, only 3 targets exist", id, len(g.Children(id)))
		}
	}
}

func TestFigure5Fixture(t *testing.T) {
	g, ids := Figure5()
	if g.NumIntervals() != 3 || g.NumNodes() != 9 || g.NumEdges() != 10 || g.Gap() != 1 {
		t.Fatalf("fixture shape: %d intervals %d nodes %d edges gap %d",
			g.NumIntervals(), g.NumNodes(), g.NumEdges(), g.Gap())
	}
	// Spot-check the two edges the paper's trace pivots on.
	c13, c22, c33 := ids[0][2], ids[1][1], ids[2][2]
	var w1322, w2233 float64
	for _, h := range g.Children(c13) {
		if h.Peer == c22 {
			w1322 = h.Weight
		}
	}
	for _, h := range g.Children(c22) {
		if h.Peer == c33 {
			w2233 = h.Weight
		}
	}
	if w1322 != 0.8 || w2233 != 0.9 {
		t.Errorf("edge weights c13-c22 = %g, c22-c33 = %g; want 0.8, 0.9", w1322, w2233)
	}
	// The gap edge c11-c32 must have length 2.
	c11, c32 := ids[0][0], ids[2][1]
	found := false
	for _, h := range g.Children(c11) {
		if h.Peer == c32 {
			found = true
			if h.Length != 2 {
				t.Errorf("gap edge length = %d, want 2", h.Length)
			}
		}
	}
	if !found {
		t.Error("gap edge c11-c32 missing")
	}
}
