// Package synth generates synthetic cluster graphs following the
// experimental methodology of Section 5.2 of the paper, and provides
// the worked-example graph of Figure 5 used by the paper's Sections 4.2
// and 4.3.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/clustergraph"
)

// Config mirrors the paper's synthetic data generator: "first creating
// a set of nodes of size n for each of the m temporal intervals. For
// pairs of temporal intervals i and i', i − i' ≤ g + 1 ..., edges were
// added as follows: for each node cij from the first temporal interval,
// its out degree dij was selected randomly and uniformly between 1 and
// 2·d, and then dij nodes were randomly selected from the second
// temporal interval to construct edges for cij. Edge weights were
// selected from (0,1] uniformly."
type Config struct {
	// Seed makes the graph reproducible.
	Seed int64
	// M is the number of temporal intervals.
	M int
	// N is the number of nodes per interval.
	N int
	// D is the average out degree per interval pair; actual out degrees
	// are uniform in [1, 2D].
	D int
	// G is the gap size.
	G int
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.M <= 0 {
		return fmt.Errorf("synth: M must be positive, got %d", c.M)
	}
	if c.N <= 0 {
		return fmt.Errorf("synth: N must be positive, got %d", c.N)
	}
	if c.D <= 0 {
		return fmt.Errorf("synth: D must be positive, got %d", c.D)
	}
	if c.G < 0 {
		return fmt.Errorf("synth: G must be >= 0, got %d", c.G)
	}
	return nil
}

// Generate builds the synthetic cluster graph.
func Generate(c Config) (*clustergraph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	b, err := clustergraph.NewBuilder(c.M, c.G)
	if err != nil {
		return nil, err
	}
	ids := make([][]int64, c.M)
	for i := 0; i < c.M; i++ {
		ids[i] = make([]int64, c.N)
		for j := 0; j < c.N; j++ {
			id, err := b.AddNode(i, cluster.Cluster{})
			if err != nil {
				return nil, err
			}
			ids[i][j] = id
		}
	}
	// For each ordered interval pair (i, i') with distance <= g+1, give
	// every node of interval i a random out degree into interval i'.
	for i := 0; i < c.M; i++ {
		for dist := 1; dist <= c.G+1 && i+dist < c.M; dist++ {
			tgt := ids[i+dist]
			for _, u := range ids[i] {
				deg := rng.Intn(2*c.D) + 1
				if deg > len(tgt) {
					deg = len(tgt)
				}
				// Sample deg distinct targets.
				seen := map[int]struct{}{}
				for len(seen) < deg {
					j := rng.Intn(len(tgt))
					if _, dup := seen[j]; dup {
						continue
					}
					seen[j] = struct{}{}
					// Weight uniform in (0,1]: 1 - [0,1) is (0,1].
					if err := b.AddEdge(u, tgt[j], 1-rng.Float64()); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return b.Build(false), nil
}

// Figure5IDs names the nodes of the Figure 5 fixture: ID[i][j] is the
// paper's c(i+1)(j+1).
type Figure5IDs [3][3]int64

// Figure5 reconstructs the cluster graph of the paper's Figure 5 with
// the edge weights implied by the worked examples of Sections 4.2
// (BFS heap contents) and 4.3 (Table 2 DFS trace): three intervals of
// three clusters each, gap 1, and one length-2 gap edge c11–c32.
//
//	c11─0.5─c21  c21─0.7─c31   c11─0.6─c32 (length 2)
//	c12─0.1─c22  c22─0.7─c31
//	c13─0.8─c22  c21─0.4─c32
//	c12─0.4─c23  c22─0.9─c33
//	             c23─0.4─c33
//
// The top-2 full paths are c13c22c33 (1.7) and c13c22c31 (1.5), matching
// the paper.
func Figure5() (*clustergraph.Graph, Figure5IDs) {
	b, err := clustergraph.NewBuilder(3, 1)
	if err != nil {
		panic(err)
	}
	var ids Figure5IDs
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			id, err := b.AddNode(i, cluster.Cluster{})
			if err != nil {
				panic(err)
			}
			ids[i][j] = id
		}
	}
	edges := []struct {
		u, v int64
		w    float64
	}{
		{ids[0][0], ids[1][0], 0.5}, // c11-c21
		{ids[0][1], ids[1][1], 0.1}, // c12-c22
		{ids[0][2], ids[1][1], 0.8}, // c13-c22
		{ids[0][1], ids[1][2], 0.4}, // c12-c23
		{ids[1][0], ids[2][0], 0.7}, // c21-c31
		{ids[1][1], ids[2][0], 0.7}, // c22-c31
		{ids[1][0], ids[2][1], 0.4}, // c21-c32
		{ids[1][1], ids[2][2], 0.9}, // c22-c33
		{ids[1][2], ids[2][2], 0.4}, // c23-c33
		{ids[0][0], ids[2][1], 0.6}, // c11-c32 (gap edge, length 2)
	}
	for _, e := range edges {
		if err := b.AddEdge(e.u, e.v, e.w); err != nil {
			panic(err)
		}
	}
	return b.Build(false), ids
}
