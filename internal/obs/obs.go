// Package obs carries per-request observability state through
// contexts: the request id that ties one query's access-log lines
// together across coordinator→shard HTTP hops, and the span recorder
// behind ?trace=1 — every layer (server handlers, Engine stage builds,
// shard fan-out hops) appends spans to the recorder it finds in the
// context, and the serving layer renders them into the response's
// trace block. Both are nil-safe no-ops when the context carries
// nothing, so instrumented code paths cost two context lookups on
// untraced requests.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

type ctxKey int

const (
	requestIDKey ctxKey = iota
	recorderKey
)

// --- request ids ---

// idPrefix is a per-process random prefix so ids from different
// processes cannot collide; the cheap per-request suffix is an atomic
// counter (request ids need uniqueness, not unpredictability, and the
// hot path must not pay a crypto/rand read per request).
var idPrefix = func() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000ff"
	}
	return hex.EncodeToString(b[:])
}()

var idCounter atomic.Int64

// NewRequestID mints a process-unique request id.
func NewRequestID() string {
	return fmt.Sprintf("%s-%06x", idPrefix, idCounter.Add(1))
}

// WithRequestID returns ctx carrying the id.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the id carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// --- trace spans ---

// Span is one timed unit of work inside a traced request: an Engine
// stage build, a solver run, a shard hop. Offsets are relative to the
// recorder's creation (the start of request handling) so a client can
// reconstruct the waterfall without clock agreement.
type Span struct {
	// Name identifies the work: an Engine stage ("clusters", "graph"),
	// "solve:<algorithm>", or "shard<N>.<method>" for a fan-out hop.
	Name string `json:"name"`
	// StartUs/DurUs are microseconds from the recorder epoch / duration.
	StartUs int64 `json:"start_us"`
	DurUs   int64 `json:"dur_us"`
	// Err carries a hop's failure; successful spans omit it.
	Err string `json:"err,omitempty"`
}

// Recorder accumulates spans for one traced request. Safe for
// concurrent use — shard fan-outs append from many goroutines.
type Recorder struct {
	epoch time.Time
	mu    sync.Mutex
	spans []Span
}

// WithRecorder returns ctx carrying a fresh recorder (epoch now) and
// the recorder itself.
func WithRecorder(ctx context.Context) (context.Context, *Recorder) {
	r := &Recorder{epoch: time.Now()}
	return context.WithValue(ctx, recorderKey, r), r
}

// RecorderFrom returns the recorder carried by ctx, or nil.
func RecorderFrom(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey).(*Recorder)
	return r
}

// Record appends one finished span; start is its wall-clock begin.
// Safe on a nil recorder (the untraced path).
func (r *Recorder) Record(name string, start time.Time, err error) {
	if r == nil {
		return
	}
	sp := Span{
		Name:    name,
		StartUs: start.Sub(r.epoch).Microseconds(),
		DurUs:   time.Since(start).Microseconds(),
	}
	if err != nil {
		sp.Err = err.Error()
	}
	r.mu.Lock()
	r.spans = append(r.spans, sp)
	r.mu.Unlock()
}

// Spans snapshots the recorded spans in append order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}
