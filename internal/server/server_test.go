package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	blogclusters "repro"
)

// quietConfig returns a Config that logs nowhere, with the given
// overrides applied after.
func quietConfig(mut func(*Config)) Config {
	cfg := Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

// newTestServer opens a small seeded news-week session, attaches it to
// a fresh Server and exposes it over httptest. Cleanup closes both.
func newTestServer(t *testing.T, cfg Config, opts ...blogclusters.Option) (*Server, *blogclusters.Engine, *httptest.Server) {
	t.Helper()
	eng, err := blogclusters.Open(t.Context(), blogclusters.FromGenerator(blogclusters.NewsWeekCorpus(2007, 60)), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := New(cfg)
	srv.SetEngine(eng)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, eng, ts
}

// get fetches path and decodes the JSON body into a generic map,
// returning the response for header/status assertions.
func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: not JSON (%v): %s", path, err, body)
	}
	return resp, m
}

func wantStatus(t *testing.T, resp *http.Response, body map[string]any, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("%s: status %d, want %d (body %v)", resp.Request.URL, resp.StatusCode, want, body)
	}
}

// TestEndpoints drives every route once against one shared session and
// sanity-checks the response shapes.
func TestEndpoints(t *testing.T) {
	_, _, ts := newTestServer(t, quietConfig(nil))

	resp, m := get(t, ts, "/healthz")
	wantStatus(t, resp, m, 200)
	if m["status"] != "ok" {
		t.Fatalf("healthz body %v", m)
	}

	resp, m = get(t, ts, "/readyz")
	wantStatus(t, resp, m, 200)
	if m["status"] != "ok" {
		t.Fatalf("readyz body %v", m)
	}

	resp, m = get(t, ts, "/v1/timeseries?keyword=somalia")
	wantStatus(t, resp, m, 200)
	counts, ok := m["counts"].([]any)
	if !ok || len(counts) != 7 {
		t.Fatalf("timeseries counts %v, want 7 intervals", m["counts"])
	}

	resp, m = get(t, ts, "/v1/bursts?keyword=somalia")
	wantStatus(t, resp, m, 200)
	if _, ok := m["bursts"].([]any); !ok {
		t.Fatalf("bursts body %v", m)
	}

	resp, m = get(t, ts, "/v1/search?terms=somalia&interval=0")
	wantStatus(t, resp, m, 200)
	if _, ok := m["count"].(float64); !ok {
		t.Fatalf("search body %v", m)
	}

	resp, m = get(t, ts, "/v1/refine?query=somalia&interval=0")
	wantStatus(t, resp, m, 200)
	if _, ok := m["keywords"].([]any); !ok {
		t.Fatalf("refine body %v", m)
	}

	resp, m = get(t, ts, "/v1/correlations?keyword=somalia&interval=0&n=3")
	wantStatus(t, resp, m, 200)
	if _, ok := m["correlations"].([]any); !ok {
		t.Fatalf("correlations body %v", m)
	}

	resp, m = get(t, ts, "/v1/stable-clusters?k=3")
	wantStatus(t, resp, m, 200)
	paths, ok := m["paths"].([]any)
	if !ok || len(paths) == 0 {
		t.Fatalf("stable-clusters paths %v, want non-empty", m["paths"])
	}
	first := paths[0].(map[string]any)
	nodes := first["nodes"].([]any)
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = fmt.Sprintf("%d", int64(n.(float64)))
	}

	resp, m = get(t, ts, "/v1/stable-clusters?variant=normalized&k=3&lmin=2")
	wantStatus(t, resp, m, 200)
	resp, m = get(t, ts, "/v1/stable-clusters?variant=diverse&k=3&mode=prefix")
	wantStatus(t, resp, m, 200)

	resp, m = get(t, ts, "/v1/describe?nodes="+strings.Join(ids, ","))
	wantStatus(t, resp, m, 200)
	if desc, ok := m["description"].(string); !ok || !strings.Contains(desc, "t0") && !strings.Contains(desc, "t1") {
		t.Fatalf("describe body %v", m)
	}

	resp, m = get(t, ts, "/debug/stats")
	wantStatus(t, resp, m, 200)
	engStats, ok := m["engine"].(map[string]any)
	if !ok {
		t.Fatalf("debug/stats engine %v", m["engine"])
	}
	stages := engStats["stages"].(map[string]any)
	for _, stage := range []string{"index", "clusters", "graph", "kwgraph"} {
		if _, ok := stages[stage]; !ok {
			t.Errorf("debug/stats missing stage %q: %v", stage, stages)
		}
	}
	srvStats := m["server"].(map[string]any)
	if srvStats["ready"] != true {
		t.Fatalf("server stats not ready: %v", srvStats)
	}
	cache := srvStats["cache"].(map[string]any)
	if cache["misses"].(float64) == 0 {
		t.Fatalf("cache stats show no misses after queries: %v", cache)
	}
}

// TestBadParams covers the 400 surface: missing/invalid parameters
// and out-of-range intervals never reach (or are rejected by) the
// Engine.
func TestBadParams(t *testing.T) {
	_, _, ts := newTestServer(t, quietConfig(nil))
	for _, path := range []string{
		"/v1/timeseries",                             // missing keyword
		"/v1/timeseries?keyword=the",                 // stop word: no analyzable keyword
		"/v1/bursts?keyword=",                        // empty keyword
		"/v1/search?terms=somalia",                   // missing interval
		"/v1/search?terms=&interval=0",               // no terms
		"/v1/search?terms=somalia&interval=x",        // non-integer interval
		"/v1/refine?query=somalia",                   // missing interval
		"/v1/refine?query=somalia&interval=99",       // interval outside corpus
		"/v1/correlations?keyword=somalia",           // missing interval
		"/v1/stable-clusters?k=0",                    // non-positive k
		"/v1/stable-clusters?k=x",                    // non-integer k
		"/v1/stable-clusters?algorithm=astar",        // unknown algorithm
		"/v1/stable-clusters?variant=quantum",        // unknown variant
		"/v1/stable-clusters?variant=diverse&mode=x", // unknown mode
		"/v1/search?terms=somalia&interval=99",       // interval outside corpus
		"/v1/search?terms=somalia&interval=-1",       // negative interval
		"/v1/describe?nodes=1e5",                     // malformed node list
		"/v1/describe?nodes=999999",                  // node outside graph
		"/v1/describe",                               // missing nodes
		"/v1/describe?nodes=0&weight=NaN",            // non-finite weight
		"/v1/describe?nodes=0&weight=Inf",            // non-finite weight
	} {
		resp, m := get(t, ts, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %v)", path, resp.StatusCode, m)
		}
		if _, ok := m["error"].(string); !ok {
			t.Errorf("%s: no error field in %v", path, m)
		}
	}
}

// TestNotReadyAndNoCorpus covers the two degraded-session cases: no
// Engine attached yet (503 + Retry-After on every query and /readyz),
// and a cluster-set session where corpus-backed queries are 422 while
// graph queries still work.
func TestNotReadyAndNoCorpus(t *testing.T) {
	srv := New(quietConfig(nil))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, m := get(t, ts, "/readyz")
	wantStatus(t, resp, m, http.StatusServiceUnavailable)
	resp, m = get(t, ts, "/v1/timeseries?keyword=somalia")
	wantStatus(t, resp, m, http.StatusServiceUnavailable)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("not-ready rejection missing Retry-After")
	}
	resp, m = get(t, ts, "/healthz")
	wantStatus(t, resp, m, 200)
	resp, m = get(t, ts, "/debug/stats")
	wantStatus(t, resp, m, 200)
	if m["engine"] != nil {
		t.Fatalf("debug/stats engine should be null before SetEngine: %v", m["engine"])
	}

	// Cluster-set session: Section 4 queries fine, corpus queries 422.
	sets := [][]blogclusters.Cluster{
		{newCluster(0, 0, "alpha", "beta")},
		{newCluster(1, 1, "alpha", "beta", "gamma")},
	}
	eng, err := blogclusters.Open(t.Context(), blogclusters.FromClusterSets(sets))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv.SetEngine(eng)

	resp, m = get(t, ts, "/readyz")
	wantStatus(t, resp, m, 200)
	resp, m = get(t, ts, "/v1/stable-clusters?k=1&l=1")
	wantStatus(t, resp, m, 200)
	resp, m = get(t, ts, "/v1/search?terms=alpha&interval=0")
	wantStatus(t, resp, m, http.StatusUnprocessableEntity)
}

func newCluster(id int64, interval int, kws ...string) blogclusters.Cluster {
	return blogclusters.Cluster{ID: id, Interval: interval, Keywords: kws}
}

// TestCacheHitMissNormalization pins the cache-key normalization:
// defaults, parameter order, and keyword surface forms all unify.
func TestCacheHitMissNormalization(t *testing.T) {
	srv, _, ts := newTestServer(t, quietConfig(nil))

	xcache := func(path string) string {
		resp, m := get(t, ts, path)
		wantStatus(t, resp, m, 200)
		return resp.Header.Get("X-Cache")
	}

	if got := xcache("/v1/stable-clusters"); got != "miss" {
		t.Fatalf("first query X-Cache %q, want miss", got)
	}
	// Explicit defaults and reordered params share the first entry.
	for _, path := range []string{
		"/v1/stable-clusters?variant=topk&algorithm=auto&k=5&l=-1",
		"/v1/stable-clusters?l=-1&k=5",
		"/v1/stable-clusters",
	} {
		if got := xcache(path); got != "hit" {
			t.Fatalf("%s: X-Cache %q, want hit", path, got)
		}
	}
	// A different k is a different entry, and so is forcing a solver
	// instead of the planner's auto pick.
	if got := xcache("/v1/stable-clusters?k=4"); got != "miss" {
		t.Fatalf("distinct k X-Cache %q, want miss", got)
	}
	if got := xcache("/v1/stable-clusters?algorithm=bfs"); got != "miss" {
		t.Fatalf("forced algorithm X-Cache %q, want miss", got)
	}
	// Any negative l means full paths; it must not fragment the cache.
	if got := xcache("/v1/stable-clusters?l=-7"); got != "hit" {
		t.Fatalf("negative l X-Cache %q, want hit (clamped to -1)", got)
	}
	// Diversity-mode spellings unify on the canonical short form.
	if got := xcache("/v1/stable-clusters?variant=diverse&mode=endpoints"); got != "miss" {
		t.Fatalf("first diverse query X-Cache %q, want miss", got)
	}
	if got := xcache("/v1/stable-clusters?variant=diverse&mode=distinct-endpoints"); got != "hit" {
		t.Fatalf("mode spelling variant X-Cache %q, want hit", got)
	}

	// Keyword surface forms unify on the analyzed form.
	if got := xcache("/v1/timeseries?keyword=Somalia"); got != "miss" {
		t.Fatalf("first keyword query X-Cache %q, want miss", got)
	}
	for _, path := range []string{
		"/v1/timeseries?keyword=somalia",
		"/v1/timeseries?keyword=SOMALIA",
	} {
		if got := xcache(path); got != "hit" {
			t.Fatalf("%s: X-Cache %q, want hit", path, got)
		}
	}
	// Search term order is normalized away.
	if got := xcache("/v1/search?terms=somalia,election&interval=1"); got != "miss" {
		t.Fatalf("first search X-Cache %q, want miss", got)
	}
	if got := xcache("/v1/search?terms=election,somalia&interval=1"); got != "hit" {
		t.Fatalf("reordered search X-Cache %q, want hit", got)
	}

	// Describe keys on parsed values: spacing and float spelling unify.
	if got := xcache("/v1/describe?nodes=0&weight=0"); got != "miss" {
		t.Fatalf("first describe X-Cache %q, want miss", got)
	}
	for _, path := range []string{
		"/v1/describe?nodes=%200&weight=0.0",
		"/v1/describe?nodes=0",
	} {
		if got := xcache(path); got != "hit" {
			t.Fatalf("%s: X-Cache %q, want hit", path, got)
		}
	}

	st := srv.Stats()
	if st.Cache.Hits < 6 || st.Cache.Misses < 3 {
		t.Fatalf("cache stats %+v, want >=6 hits and >=3 misses", st.Cache)
	}
	if st.Cache.Entries == 0 || st.Cache.Bytes == 0 {
		t.Fatalf("cache stats %+v, want resident entries", st.Cache)
	}
}

// TestConcurrentSingleFlight is the acceptance test for the
// single-flight response cache: N identical hot queries admitted
// together trigger exactly one Engine build chain (clusters + graph
// built once, one cache fill) and return identical bodies. Run under
// -race this also exercises the whole handler stack concurrently.
func TestConcurrentSingleFlight(t *testing.T) {
	const n = 16
	srv, eng, ts := newTestServer(t, quietConfig(func(c *Config) { c.MaxInflight = n }))

	var wg sync.WaitGroup
	bodies := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/stable-clusters?k=3")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}

	cs := srv.Stats().Cache
	if cs.Misses != 1 || cs.Hits != n-1 {
		t.Fatalf("cache stats %+v, want exactly 1 miss and %d hits", cs, n-1)
	}
	es := eng.Stats()
	for _, stage := range []string{"clusters", "graph"} {
		if b := es.Stages[stage].Builds; b != 1 {
			t.Fatalf("stage %q built %d times under %d concurrent identical queries, want 1", stage, b, n)
		}
	}
}

// TestAdmissionControl deterministically fills the only admission slot
// with a request blocked inside an Engine build (via a progress hook),
// asserts the next request is rejected with 429 + Retry-After while
// operational endpoints stay reachable, then releases the build and
// sees the queued-for-retry request succeed.
func TestAdmissionControl(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hook := func(ev blogclusters.StageEvent) {
		if ev.Stage == "clusters" && !ev.Done {
			once.Do(func() {
				close(started)
				<-release
			})
		}
	}
	srv, _, ts := newTestServer(t,
		quietConfig(func(c *Config) { c.MaxInflight = 1 }),
		blogclusters.WithProgress(hook),
	)

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/stable-clusters?k=2")
		if err != nil {
			firstDone <- err
			return
		}
		defer resp.Body.Close()
		io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			firstDone <- fmt.Errorf("first request status %d", resp.StatusCode)
			return
		}
		firstDone <- nil
	}()

	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the clusters build")
	}

	// The slot is held mid-build: the next query must bounce.
	resp, m := get(t, ts, "/v1/timeseries?keyword=somalia")
	wantStatus(t, resp, m, http.StatusTooManyRequests)
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	if srv.Stats().Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", srv.Stats().Rejected)
	}

	// Operational endpoints bypass admission.
	resp, m = get(t, ts, "/healthz")
	wantStatus(t, resp, m, 200)
	resp, m = get(t, ts, "/debug/stats")
	wantStatus(t, resp, m, 200)
	if m["server"].(map[string]any)["inflight"].(float64) != 1 {
		t.Fatalf("debug/stats inflight %v, want 1", m["server"])
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}

	// Slot free again: the bounced query now succeeds.
	resp, m = get(t, ts, "/v1/timeseries?keyword=somalia")
	wantStatus(t, resp, m, 200)
}

// TestConcurrentMixedQueries is the -race soak over the whole surface:
// many goroutines across distinct endpoints and parameters, one shared
// session, with admission small enough that some requests 429. Every
// response must be either a successful query or a well-formed 429.
func TestConcurrentMixedQueries(t *testing.T) {
	srv, _, ts := newTestServer(t, quietConfig(func(c *Config) { c.MaxInflight = 4 }))
	paths := []string{
		"/v1/stable-clusters?k=2",
		"/v1/stable-clusters?variant=normalized&k=2",
		"/v1/timeseries?keyword=somalia",
		"/v1/bursts?keyword=somalia",
		"/v1/search?terms=somalia&interval=0",
		"/v1/refine?query=somalia&interval=1",
		"/v1/correlations?keyword=somalia&interval=0",
		"/debug/stats",
	}
	const rounds = 6
	var wg sync.WaitGroup
	errCh := make(chan error, rounds*len(paths))
	for r := 0; r < rounds; r++ {
		for _, p := range paths {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				resp, err := http.Get(ts.URL + p)
				if err != nil {
					errCh <- err
					return
				}
				defer resp.Body.Close()
				body, _ := io.ReadAll(resp.Body)
				switch resp.StatusCode {
				case 200:
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" {
						errCh <- fmt.Errorf("%s: 429 without Retry-After", p)
					}
				default:
					errCh <- fmt.Errorf("%s: status %d: %s", p, resp.StatusCode, body)
				}
			}(p)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight %d after drain, want 0", st.Inflight)
	}
}
