package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	blogclusters "repro"
)

// pushBody renders a /v1/push request for one synthetic interval whose
// docs all mention kw. IDs start high so they never collide with the
// generated corpus.
func pushBody(t *testing.T, index int, kw string, docs int) *bytes.Reader {
	t.Helper()
	type doc struct {
		ID       int64    `json:"id"`
		Keywords []string `json:"keywords"`
	}
	body := struct {
		Interval int    `json:"interval"`
		Label    string `json:"label"`
		Docs     []doc  `json:"docs"`
	}{Interval: index, Label: fmt.Sprintf("pushed-t%d", index)}
	for i := 0; i < docs; i++ {
		body.Docs = append(body.Docs, doc{
			ID:       int64(1_000_000 + index*1000 + i),
			Keywords: []string{kw, "pushedfiller"},
		})
	}
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func postPush(t *testing.T, ts *httptest.Server, body io.Reader) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/push", "application/json", body)
	if err != nil {
		t.Fatalf("POST /v1/push: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("POST /v1/push: not JSON (%v): %s", err, raw)
	}
	return resp, m
}

// TestCacheFillStaleGeneration is the regression test for the
// single-flight/ingest race: a cache fill that starts against
// generation N must not be stored if the Engine has moved to N+1 by
// the time the fill completes. Without the guard, the stale-snapshot
// response would be replayed as a "hit" to clients who pushed the new
// interval and expect to see it.
func TestCacheFillStaleGeneration(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	hook := func(ev blogclusters.StageEvent) {
		if ev.Stage == "index" && !ev.Done {
			once.Do(func() {
				close(started)
				<-release
			})
		}
	}
	srv, eng, ts := newTestServer(t, quietConfig(nil), blogclusters.WithProgress(hook))

	// Kick off a timeseries query; its fill blocks inside the index
	// build, holding the generation-1 snapshot.
	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/timeseries?keyword=somalia")
		if err != nil {
			firstDone <- err
			return
		}
		defer resp.Body.Close()
		io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			firstDone <- fmt.Errorf("first request status %d", resp.StatusCode)
			return
		}
		firstDone <- nil
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the index build")
	}

	// Push interval 7 mid-fill: the Engine is now at generation 2.
	n := len(eng.Collection().Intervals)
	if _, err := eng.Push(t.Context(), blogclusters.Interval{
		Index: n, Label: "pushed",
		Docs: []blogclusters.Document{{ID: 9_000_001, Interval: n, Keywords: []string{"somalia"}}},
	}); err != nil {
		t.Fatalf("Push: %v", err)
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}

	// The fill straddled the push, so its entry must not have been
	// stored: a stale 7-interval answer served post-push would hide the
	// interval the client just ingested.
	if cs := srv.Stats().Cache; cs.Entries != 0 {
		t.Fatalf("stale-generation fill was stored: %+v", cs)
	}
	resp, m := get(t, ts, "/v1/timeseries?keyword=somalia")
	wantStatus(t, resp, m, 200)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("post-push query X-Cache %q, want miss (stale-generation entry must not be replayed)", got)
	}
	counts, _ := m["counts"].([]any)
	if len(counts) != n+1 {
		t.Fatalf("post-push timeseries has %d intervals, want %d", len(counts), n+1)
	}
}

// TestPushEndpoint drives POST /v1/push through the full status
// surface: a successful ingest bumps the generation everywhere it is
// reported, a replayed or skipped interval is 409, and bodies that do
// not decode or fail interval validation are 422.
func TestPushEndpoint(t *testing.T) {
	srv, eng, ts := newTestServer(t, quietConfig(nil))
	n := len(eng.Collection().Intervals)

	resp, m := get(t, ts, "/debug/stats")
	wantStatus(t, resp, m, 200)
	if m["generation"].(float64) != 1 {
		t.Fatalf("debug/stats generation %v, want 1", m["generation"])
	}

	resp, m = postPush(t, ts, pushBody(t, n, "somalia", 40))
	wantStatus(t, resp, m, 200)
	if m["generation"].(float64) != 2 || m["docs"].(float64) != 40 {
		t.Fatalf("push response %v, want generation 2 with 40 docs", m)
	}
	if got := eng.Generation(); got != 2 {
		t.Fatalf("Engine generation %d after push, want 2", got)
	}
	if st := srv.Stats(); st.Pushes != 1 {
		t.Fatalf("server pushes %d, want 1", st.Pushes)
	}
	resp, m = get(t, ts, "/debug/stats")
	wantStatus(t, resp, m, 200)
	if m["generation"].(float64) != 2 {
		t.Fatalf("debug/stats generation %v after push, want 2", m["generation"])
	}

	// Replaying the same interval (or skipping ahead) is a sequencing
	// conflict, not a bad request.
	resp, m = postPush(t, ts, pushBody(t, n, "somalia", 1))
	wantStatus(t, resp, m, http.StatusConflict)
	resp, m = postPush(t, ts, pushBody(t, n+5, "somalia", 1))
	wantStatus(t, resp, m, http.StatusConflict)

	// Malformed bodies and malformed intervals are 422.
	for name, body := range map[string]io.Reader{
		"not json":      bytes.NewReader([]byte("{")),
		"unknown field": bytes.NewReader([]byte(`{"interval":8,"surprise":true}`)),
		"negative id":   bytes.NewReader([]byte(`{"interval":8,"docs":[{"id":-1,"keywords":["x"]}]}`)),
		"dup id":        bytes.NewReader([]byte(`{"interval":8,"docs":[{"id":1,"keywords":["x"]},{"id":1,"keywords":["y"]}]}`)),
	} {
		resp, m = postPush(t, ts, body)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422 (body %v)", name, resp.StatusCode, m)
		}
	}
	// None of the failures moved the session.
	if got := eng.Generation(); got != 2 {
		t.Fatalf("Engine generation %d after failed pushes, want 2", got)
	}
}

// TestPushEvictsExactlyDependentEntries is the acceptance test for
// generation-keyed invalidation: after a push, whole-timeline queries
// (timeseries here) refill under the new generation while
// interval-scoped queries (search) keep hitting their old entries.
func TestPushEvictsExactlyDependentEntries(t *testing.T) {
	_, eng, ts := newTestServer(t, quietConfig(nil))
	n := len(eng.Collection().Intervals)

	xcache := func(path string, wantGen float64) string {
		t.Helper()
		resp, m := get(t, ts, path)
		wantStatus(t, resp, m, 200)
		if m["generation"] != wantGen {
			t.Fatalf("%s: generation %v, want %v", path, m["generation"], wantGen)
		}
		return resp.Header.Get("X-Cache")
	}

	// Warm both classes at generation 1.
	if got := xcache("/v1/timeseries?keyword=somalia", 1); got != "miss" {
		t.Fatalf("cold timeseries X-Cache %q, want miss", got)
	}
	if got := xcache("/v1/search?terms=somalia&interval=0", 1); got != "miss" {
		t.Fatalf("cold search X-Cache %q, want miss", got)
	}
	if got := xcache("/v1/timeseries?keyword=somalia", 1); got != "hit" {
		t.Fatalf("warm timeseries X-Cache %q, want hit", got)
	}

	resp, m := postPush(t, ts, pushBody(t, n, "somalia", 30))
	wantStatus(t, resp, m, 200)

	// The generation-keyed entry is dead: same query refills and sees
	// the pushed interval. The interval-scoped entry survives — its
	// interval is immutable — so the untouched query's hit is preserved
	// (still answering for the generation it was rendered at).
	if got := xcache("/v1/timeseries?keyword=somalia", 2); got != "miss" {
		t.Fatalf("post-push timeseries X-Cache %q, want miss", got)
	}
	if got := xcache("/v1/search?terms=somalia&interval=0", 1); got != "hit" {
		t.Fatalf("post-push search X-Cache %q, want hit (interval 0 is immutable)", got)
	}
	resp, m = get(t, ts, "/v1/timeseries?keyword=somalia")
	wantStatus(t, resp, m, 200)
	counts := m["counts"].([]any)
	if len(counts) != n+1 || counts[n].(float64) == 0 {
		t.Fatalf("post-push timeseries %v, want %d intervals with activity in the pushed one", m["counts"], n+1)
	}
}
