package server

import "net/http"

// routes maps the HTTP surface onto Engine queries. Every /v1 route is
// a GET (queries are reads; the session is the only state), wrapped in
// its circuit breaker, the admission semaphore and the per-request
// deadline. The operational endpoints stay outside all three so probes
// and dashboards keep working while the query surface is saturated or
// shedding.
//
//	/v1/stable-clusters  → StableClusters / NormalizedStableClusters /
//	                       DiverseStableClusters (?variant=)
//	/v1/bursts           → Bursts
//	/v1/timeseries       → TimeSeries
//	/v1/search           → Search
//	/v1/refine           → Refine
//	/v1/correlations     → Correlations
//	/v1/describe         → Describe (over the default graph)
//	/v1/meta             → session shape: generation, width, doc totals
//	/v1/clusters         → canonical per-interval cluster sets (the
//	                       scatter-gather exchange a shard coordinator
//	                       reads; ?counts=1 for sizes only)
//	/v1/push (POST)      → Engine.Push — live ingest of the next interval
//	/healthz             → process liveness
//	/readyz              → corpus loaded (SetEngine ran)
//	/debug/stats         → EngineStats + server/cache counters
//	/metrics             → Prometheus text exposition
//
// /v1/push is the one write. It takes only the request deadline: the
// breaker must not let a failing query route block ingest, and the
// admission semaphore exists to shed expensive fan-out queries, which
// a single append-one-interval push is not.
//
// Every route — operational ones included — is wrapped in instrument,
// outermost, so http_requests_total{route,status} counts shed 429/503
// responses under the route that shed them and the per-route latency
// histogram sees every served byte.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/stable-clusters", s.instrument("stable-clusters", s.query("stable-clusters", s.handleStableClusters)))
	mux.HandleFunc("GET /v1/bursts", s.instrument("bursts", s.query("bursts", s.handleBursts)))
	mux.HandleFunc("GET /v1/timeseries", s.instrument("timeseries", s.query("timeseries", s.handleTimeSeries)))
	mux.HandleFunc("GET /v1/search", s.instrument("search", s.query("search", s.handleSearch)))
	mux.HandleFunc("GET /v1/refine", s.instrument("refine", s.query("refine", s.handleRefine)))
	mux.HandleFunc("GET /v1/correlations", s.instrument("correlations", s.query("correlations", s.handleCorrelations)))
	mux.HandleFunc("GET /v1/describe", s.instrument("describe", s.query("describe", s.handleDescribe)))
	mux.HandleFunc("GET /v1/meta", s.instrument("meta", s.query("meta", s.handleMeta)))
	mux.HandleFunc("GET /v1/clusters", s.instrument("clusters", s.query("clusters", s.handleClusters)))
	mux.HandleFunc("POST /v1/push", s.instrument("push", s.withTimeout(s.handlePush)))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.HandleFunc("GET /debug/stats", s.instrument("debug-stats", s.handleDebugStats))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	return mux
}
