package server

import (
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/plan"
)

// serverMetrics is the Server's Prometheus registry plus the resolved
// instrument handles. Two kinds of series live here (see the
// internal/metrics package comment): live instruments the middleware
// drives per request (route counters, latency histograms, shed
// counters), and scrape-time mirrors of counters that already exist
// elsewhere — the response cache, EngineStats, the planner's solve
// histograms — copied in by syncMetrics just before every exposition
// so one registry serves both without double counting.
type serverMetrics struct {
	reg *metrics.Registry

	// Live, driven by instrument/withAdmission/withBreaker.
	requests *metrics.Vec // http_requests_total{route,status}
	duration *metrics.Vec // http_request_duration_seconds{route}
	shed     *metrics.Vec // http_requests_shed_total{reason}

	// Scrape-time mirrors of server counters.
	inflight    *metrics.Series
	maxInflight *metrics.Series
	panics      *metrics.Series

	// Response cache mirrors (states match the X-Cache header values).
	cacheReq       *metrics.Vec // cache_requests_total{state}
	cacheEvictions *metrics.Series
	cacheEntries   *metrics.Series
	cacheBytes     *metrics.Series
	cacheMaxBytes  *metrics.Series

	// EngineStats mirrors.
	engGen         *metrics.Series
	engIntervals   *metrics.Series
	engQueries     *metrics.Series
	engPushes      *metrics.Series
	stageBuilds    *metrics.Vec // engine_stage_builds_total{stage}
	stageSeconds   *metrics.Vec // engine_stage_seconds_total{stage}
	engSegments    *metrics.Series
	engCompactions *metrics.Series

	// Disk index I/O and block-cache mirrors.
	ioRandom       *metrics.Series
	ioSeq          *metrics.Series
	ioWrites       *metrics.Series
	ioBytesRead    *metrics.Series
	ioBytesWritten *metrics.Series
	ioRetried      *metrics.Series
	ioCorrupt      *metrics.Series
	idxCacheHits   *metrics.Series
	idxCacheMisses *metrics.Series
	idxCacheBytes  *metrics.Series

	// Planner mirrors.
	planDecisions     *metrics.Series
	planCacheHits     *metrics.Series
	planCacheMisses   *metrics.Series
	planInvalidations *metrics.Series
	planObservations  *metrics.Series
	planExplored      *metrics.Series
	planExploited     *metrics.Series
	planByAlgo        *metrics.Vec // planner_decisions_by_algorithm_total{algorithm}
	solveDur          *metrics.Vec // engine_solve_duration_seconds{algorithm}
}

// solveDurBuckets converts plan.SolveNsBuckets (nanoseconds) into the
// histogram's second-valued upper bounds, so the exposition layout
// matches the planner's internal accounting one-for-one and
// SetHistogram can mirror SolveHist.Counts without resampling.
func solveDurBuckets() []float64 {
	out := make([]float64, len(plan.SolveNsBuckets))
	for i, ns := range plan.SolveNsBuckets {
		out[i] = float64(ns) / 1e9
	}
	return out
}

func newServerMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg}

	m.requests = reg.Counter("http_requests_total",
		"HTTP requests served, by route and response status.", "route", "status")
	m.duration = reg.Histogram("http_request_duration_seconds",
		"Wall-clock request latency by route, including shed responses.", nil, "route")
	m.shed = reg.Counter("http_requests_shed_total",
		"Requests rejected before reaching the Engine, by reason (admission: 429 over the in-flight cap; breaker: 503 from an open route breaker).", "reason")
	m.inflight = reg.Gauge("http_requests_inflight",
		"Queries currently holding an admission slot.").With()
	m.maxInflight = reg.Gauge("http_requests_max_inflight",
		"The admission semaphore capacity (Config.MaxInflight).").With()
	m.panics = reg.Counter("http_panics_total",
		"Handler panics swallowed by the recovery middleware.").With()

	m.cacheReq = reg.Counter("cache_requests_total",
		"Response-cache outcomes, by state; states match the X-Cache response header.", "state")
	m.cacheEvictions = reg.Counter("cache_evictions_total",
		"Response-cache LRU evictions.").With()
	m.cacheEntries = reg.Gauge("cache_entries",
		"Resident response-cache entries.").With()
	m.cacheBytes = reg.Gauge("cache_bytes",
		"Resident response-cache bytes.").With()
	m.cacheMaxBytes = reg.Gauge("cache_max_bytes",
		"Response-cache byte budget.").With()

	m.engGen = reg.Gauge("engine_generation",
		"Session ingest generation (0 at open, +1 per push).").With()
	m.engIntervals = reg.Gauge("engine_intervals",
		"Current corpus width in intervals.").With()
	m.engQueries = reg.Counter("engine_queries_total",
		"Engine query/artifact calls issued.").With()
	m.engPushes = reg.Counter("engine_pushes_total",
		"Successful Engine.Push ingests.").With()
	m.stageBuilds = reg.Counter("engine_stage_builds_total",
		"Completed stage builds, by stage.", "stage")
	m.stageSeconds = reg.Counter("engine_stage_seconds_total",
		"Cumulative stage build wall-clock seconds, by stage.", "stage")
	m.engSegments = reg.Gauge("engine_index_segments",
		"Live index segments (base + deltas).").With()
	m.engCompactions = reg.Counter("engine_index_compactions_total",
		"Completed background index compactions.").With()

	m.ioRandom = reg.Counter("index_io_random_reads_total",
		"Disk index random block reads.").With()
	m.ioSeq = reg.Counter("index_io_sequential_reads_total",
		"Disk index sequential block reads.").With()
	m.ioWrites = reg.Counter("index_io_writes_total",
		"Disk index block writes.").With()
	m.ioBytesRead = reg.Counter("index_io_bytes_read_total",
		"Disk index bytes read.").With()
	m.ioBytesWritten = reg.Counter("index_io_bytes_written_total",
		"Disk index bytes written.").With()
	m.ioRetried = reg.Counter("index_io_retried_reads_total",
		"Disk index reads reissued after a transient fault.").With()
	m.ioCorrupt = reg.Counter("index_io_corrupt_reads_total",
		"Disk index reads rejected by validation (checksum/framing).").With()
	m.idxCacheHits = reg.Counter("index_cache_hits_total",
		"Disk index block-cache hits.").With()
	m.idxCacheMisses = reg.Counter("index_cache_misses_total",
		"Disk index block-cache misses.").With()
	m.idxCacheBytes = reg.Gauge("index_cache_bytes",
		"Disk index block-cache resident bytes.").With()

	m.planDecisions = reg.Counter("planner_decisions_total",
		"Planner Decide calls (auto-algorithm queries planned).").With()
	m.planCacheHits = reg.Counter("planner_plan_cache_hits_total",
		"Planner decisions answered from the plan cache.").With()
	m.planCacheMisses = reg.Counter("planner_plan_cache_misses_total",
		"Planner decisions computed fresh.").With()
	m.planInvalidations = reg.Counter("planner_invalidations_total",
		"Plan-cache invalidations from cost-model generation bumps.").With()
	m.planObservations = reg.Counter("planner_observations_total",
		"Completed solves fed back into the cost model.").With()
	m.planExplored = reg.Counter("planner_explored_total",
		"Decisions that picked an unobserved candidate to gather cost data.").With()
	m.planExploited = reg.Counter("planner_exploited_total",
		"Decisions that picked the cheapest observed algorithm (plan-cache hits included).").With()
	m.planByAlgo = reg.Counter("planner_decisions_by_algorithm_total",
		"Planner decisions, by chosen algorithm.", "algorithm")
	m.solveDur = reg.Histogram("engine_solve_duration_seconds",
		"Completed stable-cluster solve wall-clock, by algorithm (planned and forced solves).",
		solveDurBuckets(), "algorithm")

	return m
}

// instrument is the outermost per-route middleware: it counts the
// request under its final status and observes the route latency —
// including 429/503 shed responses (they are served work too) and
// panics (counted as 500 on their way up to the recovery middleware).
func (s *Server) instrument(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.m.requests.With(route, "500").Inc()
				s.m.duration.With(route).Observe(time.Since(start).Seconds())
				panic(v)
			}
		}()
		next(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.m.requests.With(route, strconv.Itoa(sw.status)).Inc()
		s.m.duration.With(route).Observe(time.Since(start).Seconds())
	}
}

// syncMetrics copies every mirrored counter into the registry: the
// server gauges, the response-cache counters, and — when a session is
// attached — its EngineStats (for a shard Coordinator this is already
// the cross-shard aggregate). Called once per scrape; the Set calls
// are safe against concurrent scrapes because the sources are
// themselves monotone snapshots.
func (s *Server) syncMetrics() {
	m := s.m
	m.inflight.Set(float64(len(s.sem)))
	m.maxInflight.Set(float64(s.cfg.MaxInflight))
	m.panics.Set(float64(s.panics.Load()))

	cs := s.cache.Stats()
	m.cacheReq.With(string(cacheHit)).Set(float64(cs.Hits))
	m.cacheReq.With(string(cacheMiss)).Set(float64(cs.Misses))
	m.cacheReq.With(string(cacheBypass)).Set(float64(cs.Bypass))
	m.cacheReq.With(string(cacheStale)).Set(float64(cs.Stale))
	m.cacheEvictions.Set(float64(cs.Evictions))
	m.cacheEntries.Set(float64(cs.Entries))
	m.cacheBytes.Set(float64(cs.Bytes))
	m.cacheMaxBytes.Set(float64(cs.MaxBytes))

	sess := s.Session()
	if sess == nil {
		return
	}
	st := sess.Stats()
	m.engGen.Set(float64(st.Generation))
	m.engIntervals.Set(float64(st.Intervals))
	m.engQueries.Set(float64(st.Queries))
	m.engPushes.Set(float64(st.Pushes))
	for stage, t := range st.Stages {
		m.stageBuilds.With(stage).Set(float64(t.Builds))
		m.stageSeconds.With(stage).Set(t.Total.Seconds())
	}
	m.engSegments.Set(float64(st.IndexSegments))
	m.engCompactions.Set(float64(st.IndexCompactions))

	m.ioRandom.Set(float64(st.IndexIO.RandomReads))
	m.ioSeq.Set(float64(st.IndexIO.SequentialReads))
	m.ioWrites.Set(float64(st.IndexIO.Writes))
	m.ioBytesRead.Set(float64(st.IndexIO.BytesRead))
	m.ioBytesWritten.Set(float64(st.IndexIO.BytesWritten))
	m.ioRetried.Set(float64(st.IndexIO.RetriedReads))
	m.ioCorrupt.Set(float64(st.IndexIO.CorruptReads))
	m.idxCacheHits.Set(float64(st.IndexCache.Hits))
	m.idxCacheMisses.Set(float64(st.IndexCache.Misses))
	m.idxCacheBytes.Set(float64(st.IndexCache.Bytes))

	p := st.Planner
	m.planDecisions.Set(float64(p.Decisions))
	m.planCacheHits.Set(float64(p.CacheHits))
	m.planCacheMisses.Set(float64(p.CacheMisses))
	m.planInvalidations.Set(float64(p.Invalidations))
	m.planObservations.Set(float64(p.Observations))
	m.planExplored.Set(float64(p.Explored))
	m.planExploited.Set(float64(p.Exploited))
	for algo, n := range p.ByAlgorithm {
		m.planByAlgo.With(algo).Set(float64(n))
	}
	for algo, h := range p.SolveNs {
		if len(h.Counts) != len(plan.SolveNsBuckets)+1 {
			continue
		}
		m.solveDur.With(algo).SetHistogram(h.Counts, float64(h.SumNs)/1e9)
	}
}

// metricsAppender is implemented by sessions that carry their own
// registry — the shard Coordinator appends its coordinator_* and
// shard_* families after the server's (distinct name prefixes keep the
// exposition well-formed).
type metricsAppender interface {
	WriteMetrics(w io.Writer) (int64, error)
}

// handleMetrics serves the Prometheus text exposition. Operational
// like /healthz: no breaker, no admission slot, no deadline — an
// overloaded or shedding server must still be scrapable.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := s.m.reg.WriteTo(w); err != nil {
		return
	}
	if ma, ok := s.Session().(metricsAppender); ok {
		ma.WriteMetrics(w)
	}
}
