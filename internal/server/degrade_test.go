package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	blogclusters "repro"
)

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		timeout time.Duration
		want    string
	}{
		{0, "1"},                      // degenerate: still a valid hint
		{500 * time.Millisecond, "1"}, // ceil(0.25) = 1
		{30 * time.Second, "15"},
		{31 * time.Second, "16"}, // ceil rounds up
		{10 * time.Minute, "30"}, // clamped
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.timeout); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.timeout, got, c.want)
		}
	}
}

// TestPanicRecovery proves a handler panic becomes a 500 — with the
// process (and the server) still alive to answer the next request —
// and that http.ErrAbortHandler passes through untouched.
func TestPanicRecovery(t *testing.T) {
	srv := New(quietConfig(nil))
	mux := http.NewServeMux()
	mux.HandleFunc("GET /boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	mux.HandleFunc("GET /abort", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	mux.HandleFunc("GET /fine", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct{}{})
	})
	ts := httptest.NewServer(srv.withAccessLog(srv.withRecovery(mux)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatalf("panicking handler killed the connection: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic returned %d, want 500", resp.StatusCode)
	}
	// The process survived: the next request is served normally.
	resp, err = http.Get(ts.URL + "/fine")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic returned %d, want 200", resp.StatusCode)
	}
	if got := srv.Stats().Panics; got != 1 {
		t.Fatalf("Stats().Panics = %d, want 1", got)
	}
	// ErrAbortHandler is the sanctioned hang-up: the connection dies
	// (the client sees an error), the counter does not move, and the
	// server keeps serving.
	if resp, err := http.Get(ts.URL + "/abort"); err == nil {
		resp.Body.Close()
		t.Fatal("ErrAbortHandler did not abort the connection")
	}
	if got := srv.Stats().Panics; got != 1 {
		t.Fatalf("ErrAbortHandler counted as a panic (Panics = %d)", got)
	}
	resp, err = http.Get(ts.URL + "/fine")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after abort returned %d, want 200", resp.StatusCode)
	}
}

// TestBreakerTripsAndRecovers drives a route into repeated mid-query
// Engine failures until its circuit breaker opens, checks that the
// open breaker sheds with 503 + Retry-After and degrades /readyz (but
// does not fail it), then restores the Engine and watches the breaker
// half-open, probe, and reclose.
func TestBreakerTripsAndRecovers(t *testing.T) {
	cfg := quietConfig(func(c *Config) {
		c.CacheBytes = -1 // bypass the cache: every request hits the Engine
		c.BreakerCooldown = 50 * time.Millisecond
	})
	srv, eng, ts := newTestServer(t, cfg)
	// Kill the session out from under the server: every query now dies
	// with ErrEngineClosed (503), which is exactly the failure shape the
	// breaker watches for. The serving process must survive all of it.
	eng.Close()

	path := "/v1/timeseries?keyword=somalia"
	var tripped bool
	for i := 0; i < breakerMinSamples+2; i++ {
		resp, m := get(t, ts, path)
		wantStatus(t, resp, m, http.StatusServiceUnavailable)
		if strings.Contains(m["error"].(string), "circuit breaker") {
			tripped = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("breaker 503 missing Retry-After")
			}
			break
		}
	}
	if !tripped {
		t.Fatalf("breaker never opened after %d consecutive 503s", breakerMinSamples+2)
	}
	if st := srv.Stats().Breakers["timeseries"]; st != "open" {
		t.Fatalf("breaker state = %q, want open", st)
	}
	// Degraded, not failing: /readyz stays 200 so the instance keeps
	// taking traffic for its healthy routes.
	resp, m := get(t, ts, "/readyz")
	wantStatus(t, resp, m, http.StatusOK)
	if m["status"] != "degraded" {
		t.Fatalf("readyz status = %v, want degraded", m["status"])
	}
	if !strings.Contains(m["reason"].(string), "timeseries") {
		t.Fatalf("readyz reason %q does not name the shedding route", m["reason"])
	}

	// Replace the session and let the cooldown lapse: the next request
	// is the half-open probe, it succeeds, and the breaker recloses.
	eng2, err := blogclusters.Open(context.Background(),
		blogclusters.FromGenerator(blogclusters.NewsWeekCorpus(2007, 60)))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	srv.SetEngine(eng2)
	time.Sleep(60 * time.Millisecond)
	resp, m = get(t, ts, path)
	wantStatus(t, resp, m, http.StatusOK)
	if st := srv.Stats().Breakers["timeseries"]; st != "closed" {
		t.Fatalf("breaker state after successful probe = %q, want closed", st)
	}
	resp, m = get(t, ts, "/readyz")
	wantStatus(t, resp, m, http.StatusOK)
	if m["status"] != "ok" {
		t.Fatalf("readyz after recovery = %v, want ok", m["status"])
	}
}

// TestBreakerHalfOpenReopens pins the other probe outcome: a failing
// probe sends the breaker straight back to open.
func TestBreakerHalfOpenReopens(t *testing.T) {
	b := &breaker{cooldown: 10 * time.Millisecond}
	for i := 0; i < breakerMinSamples; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.record(true)
	}
	if st, _ := b.snapshot(); st != "open" {
		t.Fatalf("state after %d failures = %q, want open", breakerMinSamples, st)
	}
	if b.allow() {
		t.Fatal("open breaker allowed a request inside the cooldown")
	}
	time.Sleep(15 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	// Only one probe at a time.
	if b.allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	b.record(true)
	if st, _ := b.snapshot(); st != "open" {
		t.Fatalf("state after failed probe = %q, want open", st)
	}
	if _, trips := b.snapshot(); trips != 2 {
		t.Fatalf("trips = %d, want 2", trips)
	}
}

// TestStaleOnError is the stale-serving gate: a cached answer past its
// TTL is replayed — marked "X-Cache: stale" — when the refill fails,
// and a recovered Engine resumes serving fresh responses.
func TestStaleOnError(t *testing.T) {
	cfg := quietConfig(func(c *Config) {
		c.CacheTTL = 5 * time.Millisecond
	})
	srv, eng, ts := newTestServer(t, cfg)
	path := "/v1/timeseries?keyword=somalia"

	// Prime the cache while the Engine is healthy.
	resp, m := get(t, ts, path)
	wantStatus(t, resp, m, http.StatusOK)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("priming request X-Cache = %q, want miss", got)
	}
	fresh := m["counts"]

	// Let the entry expire, then take the Engine away: the refill fails,
	// and yesterday's bytes come back marked stale instead of a 503.
	time.Sleep(10 * time.Millisecond)
	eng.Close()
	resp, m = get(t, ts, path)
	wantStatus(t, resp, m, http.StatusOK)
	if got := resp.Header.Get("X-Cache"); got != "stale" {
		t.Fatalf("X-Cache after failed refill = %q, want stale", got)
	}
	if len(m["counts"].([]any)) != len(fresh.([]any)) {
		t.Fatalf("stale body %v does not match the cached answer %v", m["counts"], fresh)
	}
	if st := srv.Stats().Cache.Stale; st != 1 {
		t.Fatalf("CacheStats.Stale = %d, want 1", st)
	}

	// An uncached query has no stale fallback: it surfaces the failure.
	resp, m = get(t, ts, "/v1/timeseries?keyword=election")
	wantStatus(t, resp, m, http.StatusServiceUnavailable)

	// Recovery: a new session serves a fresh miss again.
	eng2, err := blogclusters.Open(context.Background(),
		blogclusters.FromGenerator(blogclusters.NewsWeekCorpus(2007, 60)))
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	srv.SetEngine(eng2)
	time.Sleep(10 * time.Millisecond) // expire the stale entry's window again
	resp, m = get(t, ts, path)
	wantStatus(t, resp, m, http.StatusOK)
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache after recovery = %q, want miss (a fresh fill)", got)
	}
}

// TestReadyzOpenFailure covers the background-open failure surface: the
// server reports failing with the open error in the /readyz body and on
// /v1 503s, keeps /healthz at 200 (the process is fine), and a later
// successful SetEngine clears the failure.
func TestReadyzOpenFailure(t *testing.T) {
	srv := New(quietConfig(nil))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// No engine yet: failing, still loading.
	resp, m := get(t, ts, "/readyz")
	wantStatus(t, resp, m, http.StatusServiceUnavailable)
	if m["status"] != "failing" {
		t.Fatalf("readyz before load = %v, want failing", m["status"])
	}

	srv.SetOpenError(errors.New("corpus file is unreadable"))
	resp, m = get(t, ts, "/readyz")
	wantStatus(t, resp, m, http.StatusServiceUnavailable)
	if m["status"] != "failing" || !strings.Contains(m["reason"].(string), "corpus file is unreadable") {
		t.Fatalf("readyz after open failure = %v, want failing with the open error", m)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("failing readyz missing Retry-After")
	}
	// Queries surface the same error; liveness is unaffected.
	resp, m = get(t, ts, "/v1/timeseries?keyword=somalia")
	wantStatus(t, resp, m, http.StatusServiceUnavailable)
	if !strings.Contains(m["error"].(string), "corpus file is unreadable") {
		t.Fatalf("query 503 body %v does not surface the open error", m)
	}
	resp, m = get(t, ts, "/healthz")
	wantStatus(t, resp, m, http.StatusOK)

	// A retried load that succeeds clears the failure.
	eng, err := blogclusters.Open(context.Background(),
		blogclusters.FromGenerator(blogclusters.NewsWeekCorpus(2007, 60)))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv.SetEngine(eng)
	resp, m = get(t, ts, "/readyz")
	wantStatus(t, resp, m, http.StatusOK)
	if m["status"] != "ok" {
		t.Fatalf("readyz after recovery = %v, want ok", m["status"])
	}
	st := srv.Stats()
	if st.Health != "ok" || st.HealthReason != "" {
		t.Fatalf("Stats health = %q/%q, want ok with no reason", st.Health, st.HealthReason)
	}
}
