// Degradation plumbing: the pieces that keep one Server useful while
// things around it fail. A panic in a handler becomes a 500 and a log
// record, not a dead process (middleware.go); an Engine that errors
// repeatedly on one route trips that route's circuit breaker so the
// failing path sheds fast instead of burning admission slots; expired
// cache entries are served stale when a refill fails (cache.go); and
// the whole picture is summarized as a three-state health model —
// ok / degraded / failing — on /readyz and /debug/stats.
package server

import (
	"math"
	"sort"
	"strconv"
	"sync"
	"time"
)

// retryAfterSeconds derives the Retry-After hint every shedding path
// shares (admission 429s, not-ready 503s, breaker 503s) from the
// request timeout: half the timeout, rounded up, clamped to [1,30]
// seconds. One load knob, one coherent backoff story — not three
// hardcoded "1"s that stay wrong when the timeout changes.
func retryAfterSeconds(timeout time.Duration) string {
	secs := int(math.Ceil(timeout.Seconds() / 2))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return strconv.Itoa(secs)
}

// Breaker tuning. The window is deliberately small: these routes fan
// into multi-second Engine builds, so shedding after ~10 observed
// failures beats sampling hundreds of them first.
const (
	breakerWindow     = 20  // outcomes remembered per route
	breakerMinSamples = 10  // don't judge a route on fewer
	breakerFailRatio  = 0.5 // trip at >= half the window failing
	// DefaultBreakerCooldown is how long an open breaker sheds before
	// letting one probe through (Config.BreakerCooldown overrides).
	DefaultBreakerCooldown = 5 * time.Second
)

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one route's error-rate circuit breaker. Closed: requests
// flow, outcomes fill a ring; at >= breakerFailRatio failures over >=
// breakerMinSamples it opens. Open: requests shed with 503 +
// Retry-After until the cooldown passes. Half-open: exactly one probe
// runs; success recloses (fresh window), failure reopens the clock.
// Only 5xx outcomes count as failures — 4xx is the client's fault and
// a canceled request (499) proves nothing about the route.
type breaker struct {
	mu       sync.Mutex
	cooldown time.Duration

	outcomes [breakerWindow]bool // true = failure
	n, idx   int
	fails    int

	state    breakerState
	openedAt time.Time
	probing  bool
	trips    int64
}

// allow reports whether a request may proceed now.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record feeds one completed (allowed) request's outcome back.
func (b *breaker) record(fail bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if fail {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.trips++
		} else {
			b.state = breakerClosed
			b.n, b.idx, b.fails = 0, 0, 0
		}
		return
	case breakerOpen:
		// A request admitted just before the trip finished late; its
		// outcome no longer matters.
		return
	}
	if b.n == breakerWindow {
		if b.outcomes[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.outcomes[b.idx] = fail
	if fail {
		b.fails++
	}
	b.idx = (b.idx + 1) % breakerWindow
	if b.n >= breakerMinSamples && float64(b.fails) >= breakerFailRatio*float64(b.n) {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.trips++
		b.n, b.idx, b.fails = 0, 0, 0
	}
}

// snapshot returns the state name for /debug/stats.
func (b *breaker) snapshot() (state string, trips int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.trips
}

// breakerFor returns (creating on first use) the breaker of one route.
func (s *Server) breakerFor(route string) *breaker {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	b, ok := s.breakers[route]
	if !ok {
		b = &breaker{cooldown: s.cfg.BreakerCooldown}
		s.breakers[route] = b
	}
	return b
}

// breakerStates snapshots every route's breaker for stats and health.
func (s *Server) breakerStates() map[string]string {
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	out := make(map[string]string, len(s.breakers))
	for route, b := range s.breakers {
		state, _ := b.snapshot()
		out[route] = state
	}
	return out
}

// Health states: failing means the service cannot answer queries at
// all (no Engine: still loading, or the open failed); degraded means
// it answers but some route's breaker is shedding; ok is everything
// else. /readyz maps failing to 503 and both other states to 200 —
// a degraded server is still worth routing to.
const (
	healthOK       = "ok"
	healthDegraded = "degraded"
	healthFailing  = "failing"
)

// health computes the three-state summary and a human reason for the
// non-ok states.
func (s *Server) health() (state, reason string) {
	if s.Session() == nil {
		if p := s.openErr.Load(); p != nil {
			return healthFailing, "engine open failed: " + p.err.Error()
		}
		return healthFailing, "corpus is still loading"
	}
	var shedding []string
	for route, st := range s.breakerStates() {
		if st != "closed" {
			shedding = append(shedding, route)
		}
	}
	if len(shedding) > 0 {
		sort.Strings(shedding)
		return healthDegraded, "circuit breaker shedding: " + joinRoutes(shedding)
	}
	return healthOK, ""
}

func joinRoutes(routes []string) string {
	out := routes[0]
	for _, r := range routes[1:] {
		out += ", " + r
	}
	return out
}
