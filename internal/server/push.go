package server

import (
	"encoding/json"
	"net/http"

	blogclusters "repro"
)

// pushDoc is one ingested post: the document's interval is implied by
// the enclosing request, so clients cannot ingest a doc into the wrong
// bucket.
type pushDoc struct {
	ID       int64    `json:"id"`
	Keywords []string `json:"keywords"`
}

// pushRequest is the POST /v1/push body: exactly one interval, which
// must be the next one in the session's sequence.
type pushRequest struct {
	// Interval is the 0-based index of the pushed interval; it must
	// equal the session's current interval count (409 otherwise).
	Interval int `json:"interval"`
	// Label is the human-readable tag ("Jan 8 2007").
	Label string `json:"label"`
	// Docs are the interval's posts with pre-analyzed keywords.
	Docs []pushDoc `json:"docs"`
}

// handlePush ingests one interval via Engine.Push. Unlike the /v1
// queries it mutates the session, so it sits outside the circuit
// breaker and the admission semaphore (only the request deadline
// applies): a query surface shedding load must not also block ingest,
// and one push per interval is too rare to need admission control.
//
// Status mapping: 422 for bodies that do not decode or fail interval
// validation (ErrMalformedInterval), 409 when the interval is not the
// next one (ErrOutOfOrderInterval) — the client should refetch
// /debug/stats and resequence. Success returns the new generation, the
// same value subsequent query envelopes carry.
func (s *Server) handlePush(w http.ResponseWriter, r *http.Request) {
	sess := s.Session()
	if sess == nil {
		w.Header().Set("Retry-After", s.retryHint)
		writeError(w, http.StatusServiceUnavailable, "corpus is still loading; retry shortly")
		return
	}
	var req pushRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "malformed push body: "+err.Error())
		return
	}
	iv := blogclusters.Interval{Index: req.Interval, Label: req.Label}
	iv.Docs = make([]blogclusters.Document, len(req.Docs))
	for i, d := range req.Docs {
		iv.Docs[i] = blogclusters.Document{ID: d.ID, Interval: req.Interval, Keywords: d.Keywords}
	}
	gen, err := sess.Push(r.Context(), iv)
	if err != nil {
		writeError(w, errStatus(err), err.Error())
		return
	}
	s.pushes.Add(1)
	writeJSON(w, http.StatusOK, struct {
		Generation int64  `json:"generation"`
		Interval   int    `json:"interval"`
		Label      string `json:"label"`
		Docs       int    `json:"docs"`
	}{gen, req.Interval, req.Label, len(req.Docs)})
}
