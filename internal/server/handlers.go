package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"time"

	blogclusters "repro"
	"repro/internal/obs"
	"repro/internal/shard"
)

// --- JSON plumbing ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		// Response structs are plain data; a marshal failure is a bug.
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorBody{Error: msg})
}

// renderEntry marshals v into a replayable cache entry.
func renderEntry(v any) (*cacheEntry, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return &cacheEntry{status: http.StatusOK, contentType: "application/json", body: buf.Bytes()}, nil
}

// writeEntry replays a (possibly cached) entry, tagging how the cache
// treated it.
func writeEntry(w http.ResponseWriter, e *cacheEntry, state cacheState) {
	w.Header().Set("Content-Type", e.contentType)
	w.Header().Set("X-Cache", string(state))
	w.WriteHeader(e.status)
	w.Write(e.body)
}

// errStatus maps an Engine/query error onto an HTTP status via its
// sentinel: validation failures (ErrInvalidQuery) are the client's
// fault, session-state errors are availability, everything else is a
// server bug.
func errStatus(err error) int {
	switch {
	case errors.Is(err, blogclusters.ErrInvalidQuery):
		return http.StatusBadRequest
	case errors.Is(err, blogclusters.ErrOutOfOrderInterval):
		// The pushed interval is not the next one: a sequencing conflict
		// with the session's current state, not a malformed request.
		return http.StatusConflict
	case errors.Is(err, blogclusters.ErrMalformedInterval):
		return http.StatusUnprocessableEntity
	case errors.Is(err, blogclusters.ErrNoCorpus):
		return http.StatusUnprocessableEntity
	case errors.Is(err, blogclusters.ErrEngineClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, shard.ErrUnavailable):
		// A shard behind the coordinator failed or was unreachable; the
		// merge fails closed rather than serving a truncated answer.
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the access log only.
		return statusClientClosedRequest
	}
	return http.StatusInternalServerError
}

// statusClientClosedRequest is nginx's conventional 499 for
// client-canceled requests; net/http has no name for it.
const statusClientClosedRequest = 499

// serve runs one cacheable query: resolve the session, consult the
// response cache under the normalized key, fill via the Engine on a
// miss, replay the rendered bytes. result builds the response body
// (receiving the generation the request is keyed against, for the
// response envelope); it runs at most once across concurrent identical
// requests.
//
// genKeyed marks queries whose answers depend on the whole interval
// sequence (stable clusters, timeseries, bursts): their cache keys are
// prefixed with the Engine generation, so a Push invalidates exactly
// those entries — post-push requests key a fresh namespace while
// stale-generation entries age out of the LRU. Interval-scoped queries
// (search, refine, correlations, describe) answer from intervals that
// are immutable once pushed, so their entries survive a Push and the
// hit ratio for untouched queries is preserved.
//
// Either way a fill that straddles a Push is marked noStore: the
// Engine snapshot it read is ambiguous, so the result is served to the
// waiting clients but never cached.
func (s *Server) serve(w http.ResponseWriter, r *http.Request, key string, genKeyed bool, result func(ctx context.Context, sess Session, gen int64) (any, error)) {
	sess := s.Session()
	if sess == nil {
		w.Header().Set("Retry-After", s.retryHint)
		if p := s.openErr.Load(); p != nil {
			writeError(w, http.StatusServiceUnavailable, "corpus failed to load: "+p.err.Error())
			return
		}
		writeError(w, http.StatusServiceUnavailable, "corpus is still loading; retry shortly")
		return
	}
	gen := sess.Generation()
	if r.URL.Query().Get("trace") == "1" {
		s.serveTraced(w, r, sess, gen, result)
		return
	}
	if genKeyed {
		key = "g" + strconv.FormatInt(gen, 10) + "|" + key
	}
	entry, state, err := s.cache.Do(r.Context(), key, func(ctx context.Context) (*cacheEntry, error) {
		v, err := result(ctx, sess, gen)
		if err != nil {
			return nil, err
		}
		e, err := renderEntry(v)
		if err == nil && sess.Generation() != gen {
			e.noStore = true
		}
		return e, err
	})
	if err != nil {
		writeError(w, errStatus(err), err.Error())
		return
	}
	writeEntry(w, entry, state)
}

// serveTraced handles ?trace=1: the request bypasses the response
// cache (a replayed body cannot carry this request's spans — the point
// is to watch the work happen), runs the query with a span recorder in
// its context, and splices the recorded spans into the JSON envelope
// as a trailing "trace" array. Engine stage builds, solver runs and
// shard fan-out hops all record into the same recorder; a memo-hot
// request honestly shows few or no engine spans, because the work was
// already done by an earlier request.
func (s *Server) serveTraced(w http.ResponseWriter, r *http.Request, sess Session, gen int64, result func(ctx context.Context, sess Session, gen int64) (any, error)) {
	ctx, rec := obs.WithRecorder(r.Context())
	start := time.Now()
	v, err := result(ctx, sess, gen)
	rec.Record("request", start, err)
	s.cache.noteBypass()
	if err != nil {
		writeError(w, errStatus(err), err.Error())
		return
	}
	e, rerr := renderEntry(v)
	if rerr != nil {
		writeError(w, http.StatusInternalServerError, "encode response")
		return
	}
	e.body = spliceTrace(e.body, rec.Spans())
	writeEntry(w, e, cacheBypass)
}

// spliceTrace injects `"trace":[...]` as the last member of a JSON
// object body (every /v1 envelope is an object, so splicing before its
// closing brace is safe without re-decoding).
func spliceTrace(body []byte, spans []obs.Span) []byte {
	if spans == nil {
		spans = []obs.Span{}
	}
	tr, err := json.Marshal(spans)
	if err != nil {
		return body
	}
	i := bytes.LastIndexByte(body, '}')
	if i < 0 {
		return body
	}
	out := make([]byte, 0, len(body)+len(tr)+16)
	out = append(out, body[:i]...)
	out = append(out, `,"trace":`...)
	out = append(out, tr...)
	out = append(out, body[i:]...)
	return out
}

// --- param parsing ---

// params wraps url.Values with typed accessors that accumulate the
// first error, and records every (name, value) pair it resolved —
// including defaults — so the cache key is the normalized parameter
// set, not the raw query string: ?k=5 and ?? (absent, default 5) and
// ?k=05 all share one cache entry.
type params struct {
	q        url.Values
	resolved [][2]string
	err      error
}

func newParams(r *http.Request) *params { return &params{q: r.URL.Query()} }

func (p *params) fail(name, val, want string) {
	if p.err == nil {
		p.err = fmt.Errorf("parameter %q: %q is not %s", name, val, want)
	}
}

func (p *params) record(name, val string) {
	p.resolved = append(p.resolved, [2]string{name, val})
}

// str returns the raw parameter or def when absent.
func (p *params) str(name, def string) string {
	v := p.q.Get(name)
	if v == "" {
		v = def
	}
	p.record(name, v)
	return v
}

// requiredRaw fails when the parameter is missing or empty, without
// recording it in the cache key: keyword- and list-shaped parameters
// key the cache on a normalized form the handler records afterwards
// (the analyzed keyword, the re-rendered node list), so surface
// variants share one entry.
func (p *params) requiredRaw(name string) string {
	v := p.q.Get(name)
	if v == "" && p.err == nil {
		p.err = fmt.Errorf("parameter %q is required", name)
	}
	return v
}

func (p *params) intDef(name string, def int) int {
	raw := p.q.Get(name)
	if raw == "" {
		p.record(name, strconv.Itoa(def))
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		p.fail(name, raw, "an integer")
		return def
	}
	p.record(name, strconv.Itoa(n))
	return n
}

// intFloor is intDef with a floor: parsed values below floor clamp to
// it before being recorded, so requests that mean the same thing (any
// negative l = full paths) share one cache key.
func (p *params) intFloor(name string, def, floor int) int {
	raw := p.q.Get(name)
	n := def
	if raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil {
			p.fail(name, raw, "an integer")
		} else {
			n = v
		}
	}
	if n < floor {
		n = floor
	}
	p.record(name, strconv.Itoa(n))
	return n
}

func (p *params) requiredInt(name string) int {
	raw := p.q.Get(name)
	if raw == "" {
		if p.err == nil {
			p.err = fmt.Errorf("parameter %q is required", name)
		}
		return 0
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		p.fail(name, raw, "an integer")
		return 0
	}
	p.record(name, strconv.Itoa(n))
	return n
}

// enum returns the parameter (or def) and fails unless it is one of
// allowed.
func (p *params) enum(name, def string, allowed ...string) string {
	v := p.str(name, def)
	for _, a := range allowed {
		if v == a {
			return v
		}
	}
	p.fail(name, v, "one of "+strings.Join(allowed, "|"))
	return def
}

// key builds the canonical cache key: route name plus the resolved
// (name, value) pairs in sorted order.
func (p *params) key(route string) string {
	pairs := make([]string, len(p.resolved))
	for i, kv := range p.resolved {
		pairs[i] = kv[0] + "=" + kv[1]
	}
	sort.Strings(pairs)
	return route + "?" + strings.Join(pairs, "&")
}

// analyzedKeyword normalizes a raw query term exactly like the Engine
// (and the corpus analyzer) does and records the analyzed form as the
// parameter's cache-key value, so surface variants — "Somalia",
// "somalia", "somalias" — share one cache entry, mirroring the
// paper's rule that queries are analyzed exactly like documents.
// Response bodies echo the analyzed form for the same reason: it is
// the term the Engine actually answered for.
func analyzedKeyword(p *params, name string, raw string) string {
	if raw == "" {
		return ""
	}
	kws := blogclusters.NewAnalyzer().Keywords(raw)
	if len(kws) == 0 {
		p.fail(name, raw, "an analyzable keyword")
		return ""
	}
	p.record(name, kws[0])
	return kws[0]
}

// --- response shapes ---

type pathJSON struct {
	Nodes  []int64 `json:"nodes"`
	Length int     `json:"length"`
	Weight float64 `json:"weight"`
}

type solverStatsJSON struct {
	NodeReads     int64 `json:"node_reads"`
	NodeWrites    int64 `json:"node_writes"`
	EdgeReads     int64 `json:"edge_reads"`
	HeapConsiders int64 `json:"heap_considers"`
	Pruned        int64 `json:"pruned"`
}

func toPathsJSON(res *blogclusters.Result) ([]pathJSON, solverStatsJSON) {
	paths := make([]pathJSON, len(res.Paths))
	for i, p := range res.Paths {
		paths[i] = pathJSON{Nodes: p.Nodes, Length: p.Length, Weight: p.Weight}
	}
	st := res.Stats
	return paths, solverStatsJSON{
		NodeReads:     st.NodeReads,
		NodeWrites:    st.NodeWrites,
		EdgeReads:     st.EdgeReads,
		HeapConsiders: st.HeapConsiders,
		Pruned:        st.Pruned,
	}
}

// --- /v1 handlers ---

// handleStableClusters answers Problems 1 and 2 and the diversity
// variant over the session's default graph: ?variant=topk (default,
// with ?algorithm=auto|bfs|dfs|ta|brute, ?k, ?l), ?variant=normalized
// (?k, ?lmin) or ?variant=diverse (?k, ?l, ?mode). Algorithm "auto"
// (the default) lets the Engine's cost-based planner pick the solver.
//
// The parameters fold into one blogclusters.QuerySpec: its
// normalization provides the response-cache key — equivalent requests
// (?l=-1 vs ?l=-7, ?mode=endpoints vs ?mode=distinct-endpoints) share
// one entry — and its validation is the single source of client
// errors, the same checks the Engine itself would apply.
func (s *Server) handleStableClusters(w http.ResponseWriter, r *http.Request) {
	p := newParams(r)
	spec := blogclusters.QuerySpec{
		Variant:   p.str("variant", "topk"),
		Algorithm: p.str("algorithm", "auto"),
		K:         p.intDef("k", 5),
		L:         p.intFloor("l", -1, -1),
		LMin:      p.intDef("lmin", 2),
		Mode:      p.str("mode", "endpoints"),
	}
	if p.err != nil {
		writeError(w, http.StatusBadRequest, p.err.Error())
		return
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serve(w, r, "stable-clusters?"+spec.CacheKey(), true, func(ctx context.Context, sess Session, gen int64) (any, error) {
		res, err := sess.Solve(ctx, spec)
		if err != nil {
			return nil, err
		}
		paths, stats := toPathsJSON(res)
		return struct {
			Generation int64           `json:"generation"`
			Variant    string          `json:"variant"`
			K          int             `json:"k"`
			Paths      []pathJSON      `json:"paths"`
			Stats      solverStatsJSON `json:"stats"`
		}{gen, spec.Variant, spec.K, paths, stats}, nil
	})
}

// handleTimeSeries serves A(w) per interval: ?keyword=.
func (s *Server) handleTimeSeries(w http.ResponseWriter, r *http.Request) {
	p := newParams(r)
	raw := p.requiredRaw("keyword")
	kw := analyzedKeyword(p, "keyword", raw)
	if p.err != nil {
		writeError(w, http.StatusBadRequest, p.err.Error())
		return
	}
	s.serve(w, r, p.key("timeseries"), true, func(ctx context.Context, sess Session, gen int64) (any, error) {
		counts, err := sess.TimeSeries(ctx, raw)
		if err != nil {
			return nil, err
		}
		totals, err := sess.DocTotals(ctx)
		if err != nil {
			return nil, err
		}
		// The two reads are not atomic against a push; trim both to the
		// shorter so the pairing stays positionally aligned.
		if len(totals) < len(counts) {
			counts = counts[:len(totals)]
		} else {
			totals = totals[:len(counts)]
		}
		return struct {
			Generation int64   `json:"generation"`
			Keyword    string  `json:"keyword"`
			Counts     []int64 `json:"counts"`
			Totals     []int64 `json:"totals"`
		}{gen, kw, counts, totals}, nil
	})
}

// handleBursts serves the keyword's information bursts: ?keyword=.
func (s *Server) handleBursts(w http.ResponseWriter, r *http.Request) {
	p := newParams(r)
	raw := p.requiredRaw("keyword")
	kw := analyzedKeyword(p, "keyword", raw)
	if p.err != nil {
		writeError(w, http.StatusBadRequest, p.err.Error())
		return
	}
	type burstJSON struct {
		Start int     `json:"start"`
		End   int     `json:"end"`
		Score float64 `json:"score"`
	}
	s.serve(w, r, p.key("bursts"), true, func(ctx context.Context, sess Session, gen int64) (any, error) {
		bursts, err := sess.Bursts(ctx, raw)
		if err != nil {
			return nil, err
		}
		out := make([]burstJSON, len(bursts))
		for i, b := range bursts {
			out[i] = burstJSON{Start: b.Start, End: b.End, Score: b.Score}
		}
		return struct {
			Generation int64       `json:"generation"`
			Keyword    string      `json:"keyword"`
			Bursts     []burstJSON `json:"bursts"`
		}{gen, kw, out}, nil
	})
}

// handleSearch serves boolean search: ?terms=a,b,c&interval=i.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	p := newParams(r)
	rawTerms := p.requiredRaw("terms")
	interval := p.requiredInt("interval")
	var terms []string
	for _, t := range strings.Split(rawTerms, ",") {
		if t = strings.TrimSpace(t); t != "" {
			terms = append(terms, t)
		}
	}
	if len(terms) == 0 && p.err == nil {
		p.err = fmt.Errorf("parameter %q needs at least one term", "terms")
	}
	// Normalize the key on the sorted analyzed terms: boolean AND is
	// order-insensitive, so "a,b" and "b,a" share one entry.
	analyzer := blogclusters.NewAnalyzer()
	analyzed := make([]string, 0, len(terms))
	for _, t := range terms {
		kws := analyzer.Keywords(t)
		if len(kws) == 0 {
			p.fail("terms", t, "an analyzable keyword")
			break
		}
		analyzed = append(analyzed, kws[0])
	}
	sort.Strings(analyzed)
	p.record("terms", strings.Join(analyzed, ","))
	if p.err != nil {
		writeError(w, http.StatusBadRequest, p.err.Error())
		return
	}
	s.serve(w, r, p.key("search"), false, func(ctx context.Context, sess Session, gen int64) (any, error) {
		// The index treats out-of-range intervals as empty; surface a
		// 400 instead so a typo'd interval is not a silent zero-result
		// (matching Refine/Correlations, which validate in the session).
		if m := sess.NumIntervals(); interval < 0 || interval >= m {
			return nil, fmt.Errorf("interval %d outside [0,%d): %w", interval, m, blogclusters.ErrInvalidQuery)
		}
		ids, err := sess.Search(ctx, terms, interval)
		if err != nil {
			return nil, err
		}
		if ids == nil {
			ids = []int64{}
		}
		return struct {
			Generation int64    `json:"generation"`
			Terms      []string `json:"terms"`
			Interval   int      `json:"interval"`
			Count      int      `json:"count"`
			IDs        []int64  `json:"ids"`
		}{gen, analyzed, interval, len(ids), ids}, nil
	})
}

// handleRefine serves query refinement: ?query=&interval=i.
func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	p := newParams(r)
	raw := p.requiredRaw("query")
	interval := p.requiredInt("interval")
	kw := analyzedKeyword(p, "query", raw)
	if p.err != nil {
		writeError(w, http.StatusBadRequest, p.err.Error())
		return
	}
	s.serve(w, r, p.key("refine"), false, func(ctx context.Context, sess Session, gen int64) (any, error) {
		kws, err := sess.Refine(ctx, raw, interval)
		if err != nil {
			return nil, err
		}
		if kws == nil {
			kws = []string{}
		}
		return struct {
			Generation int64    `json:"generation"`
			Query      string   `json:"query"`
			Interval   int      `json:"interval"`
			Clustered  bool     `json:"clustered"`
			Keywords   []string `json:"keywords"`
		}{gen, kw, interval, len(kws) > 0, kws}, nil
	})
}

// handleCorrelations serves the strongest ρ neighbors:
// ?keyword=&interval=i&n=5.
func (s *Server) handleCorrelations(w http.ResponseWriter, r *http.Request) {
	p := newParams(r)
	raw := p.requiredRaw("keyword")
	interval := p.requiredInt("interval")
	n := p.intDef("n", 5)
	kw := analyzedKeyword(p, "keyword", raw)
	if n <= 0 {
		p.fail("n", strconv.Itoa(n), "positive")
	}
	if p.err != nil {
		writeError(w, http.StatusBadRequest, p.err.Error())
		return
	}
	type correlationJSON struct {
		Keyword string  `json:"keyword"`
		Rho     float64 `json:"rho"`
		Count   int64   `json:"count"`
	}
	s.serve(w, r, p.key("correlations"), false, func(ctx context.Context, sess Session, gen int64) (any, error) {
		cs, err := sess.Correlations(ctx, raw, interval, n)
		if err != nil {
			return nil, err
		}
		out := make([]correlationJSON, len(cs))
		for i, c := range cs {
			out[i] = correlationJSON{Keyword: c.Keyword, Rho: c.Rho, Count: c.Count}
		}
		return struct {
			Generation   int64             `json:"generation"`
			Keyword      string            `json:"keyword"`
			Interval     int               `json:"interval"`
			Correlations []correlationJSON `json:"correlations"`
		}{gen, kw, interval, out}, nil
	})
}

// handleDescribe renders a stable-cluster path with its keyword
// clusters: ?nodes=1,5,9&weight=&length= (weight/length default 0 and
// only affect the rendered header).
func (s *Server) handleDescribe(w http.ResponseWriter, r *http.Request) {
	p := newParams(r)
	rawNodes := p.requiredRaw("nodes")
	length := p.intDef("length", 0)
	weightStr := p.q.Get("weight")
	if weightStr == "" {
		weightStr = "0"
	}
	weight, werr := strconv.ParseFloat(weightStr, 64)
	if werr != nil || math.IsNaN(weight) || math.IsInf(weight, 0) {
		// NaN/Inf parse fine but cannot be JSON-encoded; reject here so
		// the client gets a 400, not an encode-time 500.
		p.fail("weight", weightStr, "a finite number")
	}
	var nodes []int64
	canonical := make([]string, 0, 4)
	if rawNodes != "" {
		for _, f := range strings.Split(rawNodes, ",") {
			id, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
			if err != nil {
				p.fail("nodes", rawNodes, "a comma-separated list of node ids")
				break
			}
			nodes = append(nodes, id)
			canonical = append(canonical, strconv.FormatInt(id, 10))
		}
	}
	// Key on the re-rendered parsed values, not the raw strings, so
	// "1, 5" vs "1,5" and "0.0" vs "0" share one cache entry.
	p.record("nodes", strings.Join(canonical, ","))
	p.record("weight", strconv.FormatFloat(weight, 'g', -1, 64))
	if p.err != nil {
		writeError(w, http.StatusBadRequest, p.err.Error())
		return
	}
	s.serve(w, r, p.key("describe"), false, func(ctx context.Context, sess Session, gen int64) (any, error) {
		// Node-bounds validation lives in the session's Describe now
		// (out-of-range ids come back as ErrInvalidQuery → 400).
		path := blogclusters.Path{Nodes: nodes, Length: length, Weight: weight}
		desc, err := sess.Describe(ctx, path)
		if err != nil {
			return nil, err
		}
		return struct {
			Generation  int64    `json:"generation"`
			Path        pathJSON `json:"path"`
			Description string   `json:"description"`
		}{gen, pathJSON{Nodes: nodes, Length: length, Weight: weight}, desc}, nil
	})
}

// --- health and observability ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// handleReadyz reports the three-state health model: "failing" (no
// Engine — still loading, or the background open died; 503 so load
// balancers pull the instance), "degraded" (serving, but some route's
// circuit breaker is shedding; still 200 — a degraded server beats no
// server), or "ok". The reason field explains the non-ok states; an
// open failure surfaces its error here instead of killing the process.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state, reason := s.health()
	body := struct {
		Status string `json:"status"`
		Reason string `json:"reason,omitempty"`
	}{state, reason}
	if state == healthFailing {
		w.Header().Set("Retry-After", s.retryHint)
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// processStats is the process-level block of /debug/stats: the runtime
// identity an operator needs when correlating a scrape or a pprof
// profile with the binary that produced it.
type processStats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	GoMaxProcs    int     `json:"gomaxprocs"`
	Goroutines    int     `json:"goroutines"`
	// Main and Revision come from the embedded build info when the
	// binary carries it (empty under plain `go test`).
	Main     string `json:"main,omitempty"`
	Revision string `json:"revision,omitempty"`
}

func (s *Server) processInfo() processStats {
	p := processStats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		GoVersion:     runtime.Version(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Goroutines:    runtime.NumGoroutine(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		p.Main = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				p.Revision = kv.Value
			}
		}
	}
	return p
}

// handleDebugStats serves the session's EngineStats (stage builds,
// wall-clock, disk IOStats) next to the server counters and the
// process block. The session generation is surfaced at the top level
// so ingest monitors can poll it without digging into the engine block
// (it is 0 before SetEngine). A sharded session additionally exposes
// its per-shard rows under "shards" (the engine block is then the
// cross-shard aggregate).
func (s *Server) handleDebugStats(w http.ResponseWriter, r *http.Request) {
	var eng *blogclusters.EngineStats
	var gen int64
	var shards []shard.ShardStat
	if sess := s.Session(); sess != nil {
		st := sess.Stats()
		eng = &st
		gen = st.Generation
		if sc, ok := sess.(interface{ ShardStats() []shard.ShardStat }); ok {
			shards = sc.ShardStats()
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Generation int64                     `json:"generation"`
		Engine     *blogclusters.EngineStats `json:"engine"`
		Shards     []shard.ShardStat         `json:"shards,omitempty"`
		Server     Stats                     `json:"server"`
		Process    processStats              `json:"process"`
	}{gen, eng, shards, s.Stats(), s.processInfo()})
}

// handleMeta serves the session's shape in one cheap read —
// {generation, intervals, totals} — the handshake a shard coordinator
// (or any client wanting the corpus width before querying) starts
// with.
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	p := newParams(r)
	s.serve(w, r, p.key("meta"), true, func(ctx context.Context, sess Session, gen int64) (any, error) {
		totals, err := sess.DocTotals(ctx)
		if err != nil {
			return nil, err
		}
		if totals == nil {
			totals = []int64{}
		}
		return struct {
			Generation int64   `json:"generation"`
			Intervals  int     `json:"intervals"`
			Totals     []int64 `json:"totals"`
		}{gen, len(totals), totals}, nil
	})
}

// handleClusters serves the canonical per-interval cluster sets for
// global intervals [from, to): ?from=&to=[&counts=1]. With counts=1
// only the per-interval cluster counts are returned — the cheap lens a
// coordinator uses to build its node-id offset table without shipping
// every keyword set across the wire.
func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	p := newParams(r)
	from := p.requiredInt("from")
	to := p.requiredInt("to")
	countsOnly := p.str("counts", "") == "1"
	if p.err != nil {
		writeError(w, http.StatusBadRequest, p.err.Error())
		return
	}
	s.serve(w, r, p.key("clusters"), true, func(ctx context.Context, sess Session, gen int64) (any, error) {
		sets, err := sess.ClusterSets(ctx, from, to)
		if err != nil {
			return nil, err
		}
		if countsOnly {
			counts := make([]int, len(sets))
			for i, set := range sets {
				counts[i] = len(set)
			}
			return struct {
				Generation int64 `json:"generation"`
				From       int   `json:"from"`
				To         int   `json:"to"`
				Counts     []int `json:"counts"`
			}{gen, from, to, counts}, nil
		}
		for i, set := range sets {
			if set == nil {
				sets[i] = []blogclusters.Cluster{}
			}
		}
		return struct {
			Generation int64                    `json:"generation"`
			From       int                      `json:"from"`
			To         int                      `json:"to"`
			Sets       [][]blogclusters.Cluster `json:"sets"`
		}{gen, from, to, sets}, nil
	})
}
