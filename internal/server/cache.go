package server

import (
	"container/list"
	"context"
	"sync"
	"time"
)

// cacheEntry is one cached response: everything needed to replay it to
// another client. Entries are immutable once inserted; concurrent
// readers share the body slice.
type cacheEntry struct {
	status      int
	contentType string
	body        []byte
	// expires is when the entry stops being fresh (zero = never). An
	// expired entry is not deleted: it stays resident as the stale
	// fallback until a successful refill replaces it or the LRU evicts
	// it, which is what makes stale-on-error possible at all.
	expires time.Time
	// noStore marks a fill whose result must be returned to its waiters
	// but never inserted: the Engine's generation moved while the fill
	// ran, so the rendered body may reflect either snapshot and cannot
	// be replayed under its (generation-tagged) key.
	noStore bool
}

func (e *cacheEntry) fresh(now time.Time) bool {
	return e.expires.IsZero() || now.Before(e.expires)
}

func (e *cacheEntry) size(key string) int {
	// Key + body + a fixed overhead guess for the list/map bookkeeping.
	return len(key) + len(e.body) + 128
}

// CacheStats is a point-in-time snapshot of the response cache,
// served by /debug/stats.
type CacheStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Bypass int64 `json:"bypass"`
	// Stale counts responses served from an expired entry because the
	// refill failed (stale-on-error). Nonzero means clients got old but
	// valid answers during an Engine outage.
	Stale     int64 `json:"stale"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int   `json:"bytes"`
	MaxBytes  int   `json:"max_bytes"`
}

// responseCache is a bytes-bounded LRU of rendered responses keyed by
// normalized query parameters, with single-flight fills: when N
// identical queries arrive together, one runs the Engine call and the
// rest wait for its entry. The same hot-query economics as the
// Engine's stage memos, one level up — a repeated aggregate query
// costs one build and N-1 replays (the Szépkúti response-cache
// motivation in PAPERS.md).
type responseCache struct {
	mu       sync.Mutex
	maxBytes int
	bytes    int
	entries  map[string]*list.Element // value: *lruItem
	order    *list.List               // front = most recently used
	inflight map[string]*inflightFill
	ttl      time.Duration // 0 = entries never expire

	hits, misses, bypass, stale, evictions int64
}

type lruItem struct {
	key   string
	entry *cacheEntry
}

// inflightFill is the rendezvous between one filler and its waiters.
// The filler stores its outcome before closing ch, so waiters can
// share a successful result even when it was not cacheable (non-200,
// or larger than the whole budget) — single-flight must not depend on
// residency.
type inflightFill struct {
	ch  chan struct{}
	e   *cacheEntry
	err error
}

// newResponseCache returns a cache bounded to maxBytes. Non-positive
// maxBytes disables caching entirely: Do degrades to calling fill,
// with no single-flight (the bypass path). Non-positive ttl means
// entries never go stale (the pre-TTL behavior).
func newResponseCache(maxBytes int, ttl time.Duration) *responseCache {
	if ttl < 0 {
		ttl = 0
	}
	return &responseCache{
		maxBytes: maxBytes,
		ttl:      ttl,
		entries:  map[string]*list.Element{},
		order:    list.New(),
		inflight: map[string]*inflightFill{},
	}
}

// cacheState labels what the cache did for one request, for access
// logs and the X-Cache response header.
type cacheState string

const (
	cacheHit    cacheState = "hit"
	cacheMiss   cacheState = "miss"
	cacheBypass cacheState = "bypass"
	// cacheStale marks a response replayed from an expired entry
	// because its refill failed — correct data, old snapshot.
	cacheStale cacheState = "stale"
)

// Do returns the entry for key, filling it at most once across
// concurrent callers. Only 200-status entries are cached, but every
// successful fill is shared with its concurrent waiters through the
// in-flight rendezvous, so an uncacheable (non-200 or over-budget)
// response still costs one Engine call per burst. Errors are returned
// to the caller that produced them; waiters retry (the next becomes
// the filler). A fill aborted by cancellation likewise caches nothing,
// so a later live request rebuilds — mirroring the Engine memo's
// contract.
func (c *responseCache) Do(ctx context.Context, key string, fill func(context.Context) (*cacheEntry, error)) (*cacheEntry, cacheState, error) {
	if c.maxBytes <= 0 {
		c.mu.Lock()
		c.bypass++
		c.mu.Unlock()
		e, err := fill(ctx)
		return e, cacheBypass, err
	}
	for {
		c.mu.Lock()
		var stale *cacheEntry
		if el, ok := c.entries[key]; ok {
			e := el.Value.(*lruItem).entry
			if e.fresh(time.Now()) {
				c.order.MoveToFront(el)
				c.hits++
				c.mu.Unlock()
				return e, cacheHit, nil
			}
			// Expired: refill below, but keep the old bytes at hand as
			// the stale-on-error fallback.
			stale = e
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.ch:
				// The close happens after the outcome fields are set, so
				// reading them here is ordered. Share a successful fill
				// (resident or not); on failure loop and retry.
				if f.err == nil && f.e != nil {
					c.mu.Lock()
					c.hits++
					c.mu.Unlock()
					return f.e, cacheHit, nil
				}
				continue
			case <-ctx.Done():
				return nil, cacheMiss, ctx.Err()
			}
		}
		f := &inflightFill{ch: make(chan struct{})}
		c.inflight[key] = f
		c.misses++
		c.mu.Unlock()

		e, err := fill(ctx)
		if err != nil && stale != nil && ctx.Err() == nil {
			// The refill failed but the client is still here and we hold
			// yesterday's answer: serve it, marked stale, instead of the
			// error. The stale entry is also handed to waiters so a burst
			// against a down Engine costs one failed fill, not N.
			e, err = stale, nil
			c.mu.Lock()
			c.stale++
			f.e, f.err = e, nil
			delete(c.inflight, key)
			c.mu.Unlock()
			close(f.ch)
			return e, cacheStale, nil
		}
		c.mu.Lock()
		f.e, f.err = e, err
		delete(c.inflight, key)
		if err == nil && e.status == 200 && !e.noStore {
			c.insertLocked(key, e)
		}
		c.mu.Unlock()
		close(f.ch)
		return e, cacheMiss, err
	}
}

// insertLocked adds the entry and evicts from the LRU tail until the
// byte budget holds. An entry larger than the whole budget is not
// cached at all (it would evict everything for one query).
func (c *responseCache) insertLocked(key string, e *cacheEntry) {
	if c.ttl > 0 {
		e.expires = time.Now().Add(c.ttl)
	}
	sz := e.size(key)
	if sz > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		// A concurrent filler for the same key can land twice only if a
		// waiter re-filled after an error; replace the old entry.
		c.bytes -= el.Value.(*lruItem).entry.size(key)
		el.Value.(*lruItem).entry = e
		c.order.MoveToFront(el)
		c.bytes += sz
	} else {
		c.entries[key] = c.order.PushFront(&lruItem{key: key, entry: e})
		c.bytes += sz
	}
	for c.bytes > c.maxBytes {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		it := tail.Value.(*lruItem)
		c.order.Remove(tail)
		delete(c.entries, it.key)
		c.bytes -= it.entry.size(it.key)
		c.evictions++
	}
}

// noteBypass counts a response served around the cache (the ?trace=1
// path): the X-Cache header says bypass, so the counters must agree.
func (c *responseCache) noteBypass() {
	c.mu.Lock()
	c.bypass++
	c.mu.Unlock()
}

// Stats snapshots the counters.
func (c *responseCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Bypass:    c.bypass,
		Stale:     c.stale,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
	}
}
