package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func fillWith(status int, body string) func(context.Context) (*cacheEntry, error) {
	return func(context.Context) (*cacheEntry, error) {
		return &cacheEntry{status: status, contentType: "application/json", body: []byte(body)}, nil
	}
}

// TestCacheLRUEviction proves the byte bound holds: inserting past the
// budget evicts from the least-recently-used tail, and touching an
// entry protects it.
func TestCacheLRUEviction(t *testing.T) {
	body := strings.Repeat("x", 256)
	perEntry := (&cacheEntry{body: []byte(body)}).size("k0")
	c := newResponseCache(3*perEntry, 0)
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, st, _ := c.Do(ctx, fmt.Sprintf("k%d", i), fillWith(200, body)); st != cacheMiss {
			t.Fatalf("insert %d: state %v, want miss", i, st)
		}
	}
	// Touch k0 so k1 is the LRU tail when k3 arrives.
	if _, st, _ := c.Do(ctx, "k0", fillWith(200, "fresh")); st != cacheHit {
		t.Fatalf("k0 should be resident, got %v", st)
	}
	if _, st, _ := c.Do(ctx, "k3", fillWith(200, body)); st != cacheMiss {
		t.Fatalf("k3 insert: state %v, want miss", st)
	}
	if _, st, _ := c.Do(ctx, "k1", fillWith(200, body)); st != cacheMiss {
		t.Fatal("k1 survived eviction; LRU order broken")
	}
	if _, st, _ := c.Do(ctx, "k0", fillWith(200, "fresh")); st != cacheHit {
		t.Fatal("recently-used k0 was evicted")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats %+v, want evictions", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("resident bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
	}
}

// TestCacheRefusesNon200AndErrors pins what never lands in the cache:
// error fills, non-200 entries, and entries bigger than the whole
// budget.
func TestCacheRefusesNon200AndErrors(t *testing.T) {
	c := newResponseCache(1<<10, 0)
	ctx := context.Background()

	// Probes refill with a 502 (itself uncacheable), so a miss proves
	// the case under test left nothing behind.
	probe := fillWith(502, "probe")

	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, "err", func(context.Context) (*cacheEntry, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("fill error not surfaced: %v", err)
	}
	if _, st, _ := c.Do(ctx, "err", probe); st != cacheMiss {
		t.Fatal("error fill was cached")
	}

	c.Do(ctx, "400", fillWith(400, "bad"))
	if _, st, _ := c.Do(ctx, "400", probe); st != cacheMiss {
		t.Fatal("non-200 entry was cached")
	}

	huge := strings.Repeat("x", 2<<10)
	c.Do(ctx, "huge", fillWith(200, huge))
	if _, st, _ := c.Do(ctx, "huge", fillWith(200, huge)); st != cacheMiss {
		t.Fatal("over-budget entry was cached")
	}
	if got := c.Stats().Entries; got != 0 {
		t.Fatalf("%d resident entries, want 0", got)
	}
}

// TestCacheBypass pins the disabled mode: no residency, no
// single-flight, every call runs its own fill.
func TestCacheBypass(t *testing.T) {
	c := newResponseCache(0, 0)
	ctx := context.Background()
	calls := 0
	for i := 0; i < 3; i++ {
		_, st, err := c.Do(ctx, "k", func(context.Context) (*cacheEntry, error) {
			calls++
			return &cacheEntry{status: 200, body: []byte("b")}, nil
		})
		if err != nil || st != cacheBypass {
			t.Fatalf("bypass call %d: state %v err %v", i, st, err)
		}
	}
	if calls != 3 {
		t.Fatalf("%d fills, want 3 (no caching when disabled)", calls)
	}
	if st := c.Stats(); st.Bypass != 3 || st.Entries != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestCacheSingleFlightUncacheable pins that single-flight does not
// depend on residency: an over-budget 200 response is shared with all
// concurrent waiters through the in-flight rendezvous — one fill, not
// one per waiter — even though nothing lands in the LRU.
func TestCacheSingleFlightUncacheable(t *testing.T) {
	c := newResponseCache(64, 0) // far below the body size
	ctx := context.Background()
	huge := strings.Repeat("x", 1<<10)
	var mu sync.Mutex
	fills := 0
	gate := make(chan struct{})

	const n = 8
	var wg sync.WaitGroup
	results := make([]*cacheEntry, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.Do(ctx, "big", func(context.Context) (*cacheEntry, error) {
				mu.Lock()
				fills++
				mu.Unlock()
				<-gate
				return &cacheEntry{status: 200, body: []byte(huge)}, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i] = e
		}(i)
	}
	for {
		mu.Lock()
		started := fills > 0
		mu.Unlock()
		if started {
			break
		}
	}
	close(gate)
	wg.Wait()

	if fills != 1 {
		t.Fatalf("%d fills for one burst of identical uncacheable queries, want 1", fills)
	}
	for i, e := range results {
		if e == nil || len(e.body) != len(huge) {
			t.Fatalf("result %d not shared: %v", i, e)
		}
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("over-budget entry became resident: %+v", st)
	}
}

// TestCacheSingleFlightWaiters hammers one cold key from many
// goroutines: exactly one fill runs, everyone gets its bytes.
func TestCacheSingleFlightWaiters(t *testing.T) {
	c := newResponseCache(1<<20, 0)
	ctx := context.Background()
	var mu sync.Mutex
	fills := 0
	gate := make(chan struct{})
	fill := func(context.Context) (*cacheEntry, error) {
		mu.Lock()
		fills++
		mu.Unlock()
		<-gate
		return &cacheEntry{status: 200, body: []byte("shared")}, nil
	}

	const n = 32
	var wg sync.WaitGroup
	results := make([]*cacheEntry, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, _, err := c.Do(ctx, "hot", fill)
			if err != nil {
				t.Errorf("Do: %v", err)
				return
			}
			results[i] = e
		}(i)
	}
	// Let the filler start and the waiters pile up, then release.
	for {
		mu.Lock()
		started := fills > 0
		mu.Unlock()
		if started {
			break
		}
	}
	close(gate)
	wg.Wait()

	if fills != 1 {
		t.Fatalf("%d fills for one hot key, want 1", fills)
	}
	for i, e := range results {
		if e == nil || string(e.body) != "shared" {
			t.Fatalf("result %d: %v", i, e)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats %+v, want 1 miss / %d hits", st, n-1)
	}
}
