// Package server is the HTTP serving layer over one shared
// blogclusters.Engine session — the step from library to long-running
// queryable service named in ROADMAP (and the shape of the paper's
// BlogScope system itself: one loaded corpus, many analysis queries).
//
// One Server owns one Engine. Routes map 1:1 onto Engine query
// methods (see routes.go); everything the Engine memoizes (index,
// cluster sets, graphs) is therefore shared by all HTTP clients, and
// the Engine's single-flight stage builds mean a cold start under
// concurrent load still builds each artifact exactly once.
//
// Production plumbing, in request order:
//
//   - admission control: a bounded semaphore caps in-flight /v1
//     queries; overflow is rejected immediately with 429 + Retry-After
//     instead of queueing without bound (Config.MaxInflight).
//   - per-request deadlines: every query context carries
//     Config.RequestTimeout and is joined with the session lifetime
//     inside the Engine, so client disconnects, timeouts and server
//     shutdown all cancel the same way.
//   - response cache: rendered 200 responses live in a bytes-bounded
//     LRU keyed by normalized query params, with single-flight fills —
//     N identical hot queries cost one Engine call (cache.go).
//   - observability: structured access logs (one slog record per
//     request), X-Cache headers, and /debug/stats exposing
//     EngineStats (stage builds, timings, disk IOStats) plus server
//     counters (inflight, rejected, cache hits/misses).
//
// Lifecycle: New → SetEngine when the corpus is loaded (readiness
// flips; /readyz turns 200) → http.Server.Shutdown drains in-flight
// requests → Engine.Close. cmd/blogserved wires this to
// SIGINT/SIGTERM via internal/cli.
package server

import (
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes one Server. The zero value serves with the defaults.
type Config struct {
	// MaxInflight caps concurrently admitted /v1 requests; further
	// requests get 429 + Retry-After. Non-positive means
	// DefaultMaxInflight.
	MaxInflight int
	// CacheBytes bounds the response cache. 0 means DefaultCacheBytes;
	// negative disables response caching (every query hits the Engine).
	CacheBytes int
	// RequestTimeout is the per-request context deadline for /v1
	// queries. Non-positive means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// CacheTTL is how long a cached response stays fresh. After it
	// expires the next request refills through the Engine — and if that
	// refill fails, the expired entry is served anyway with
	// "X-Cache: stale" (stale-on-error). 0 means entries never expire
	// (and the stale path never engages); the TTL only matters for
	// sessions whose answers can change or fail, so blogserved sets it.
	CacheTTL time.Duration
	// BreakerCooldown is how long an open per-route circuit breaker
	// sheds load before letting a probe through. Non-positive means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// Logger receives one structured record per request plus lifecycle
	// events. Nil means slog.Default().
	Logger *slog.Logger
}

// Defaults for Config's zero values.
const (
	DefaultMaxInflight    = 64
	DefaultCacheBytes     = 8 << 20
	DefaultRequestTimeout = 30 * time.Second
)

// Server is the HTTP serving layer over one Engine session. Create
// with New, attach the session with SetEngine, serve Handler().
type Server struct {
	cfg       Config
	log       *slog.Logger
	sess      atomic.Pointer[sessionBox]
	openErr   atomic.Pointer[openFailure]
	cache     *responseCache
	sem       chan struct{}
	start     time.Time
	retryHint string // shared Retry-After value, derived from RequestTimeout
	m         *serverMetrics

	breakerMu sync.Mutex
	breakers  map[string]*breaker

	requests atomic.Int64
	rejected atomic.Int64
	panics   atomic.Int64
	pushes   atomic.Int64
}

// openFailure boxes a background Engine.Open error for atomic storage.
type openFailure struct{ err error }

// New returns a Server with no Engine attached yet: /healthz answers
// 200 immediately, /readyz and the /v1 queries answer 503 until
// SetEngine. Opening the corpus in the background while the listener
// is already up is exactly the intended startup shape (blogserved does
// this), so load balancers can probe readiness during a slow load.
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = DefaultBreakerCooldown
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Server{
		cfg:       cfg,
		log:       cfg.Logger,
		cache:     newResponseCache(cfg.CacheBytes, cfg.CacheTTL),
		sem:       make(chan struct{}, cfg.MaxInflight),
		start:     time.Now(),
		retryHint: retryAfterSeconds(cfg.RequestTimeout),
		m:         newServerMetrics(),
		breakers:  map[string]*breaker{},
	}
}

// SetEngine attaches the session and flips readiness (clearing any
// recorded open failure). Any Session works — a single Engine or a
// shard Coordinator. The Server does not own it: the caller closes it
// after draining HTTP (the reverse order would cancel in-flight
// queries mid-drain).
func (s *Server) SetEngine(sess Session) {
	s.sess.Store(&sessionBox{s: sess})
	s.openErr.Store(nil)
}

// SetOpenError records that the background Engine.Open failed. The
// server keeps serving — /healthz stays 200, /readyz reports failing
// with the error in the body, /v1 queries get 503 + Retry-After —
// so operators can see why the corpus never loaded instead of finding
// a dead process. A later SetEngine (a retried load) clears it.
func (s *Server) SetOpenError(err error) {
	if err == nil {
		return
	}
	s.openErr.Store(&openFailure{err: err})
}

// Session returns the attached session, or nil before SetEngine.
func (s *Server) Session() Session {
	if b := s.sess.Load(); b != nil {
		return b.s
	}
	return nil
}

// Stats is the server-side half of /debug/stats.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Ready         bool    `json:"ready"`
	// Health is the three-state summary ("ok", "degraded", "failing");
	// HealthReason explains the non-ok states.
	Health       string `json:"health"`
	HealthReason string `json:"health_reason,omitempty"`
	Requests     int64  `json:"requests"`
	Inflight     int    `json:"inflight"`
	MaxInflight  int    `json:"max_inflight"`
	Rejected     int64  `json:"rejected"`
	// Panics counts handler panics swallowed by the recovery
	// middleware; nonzero means a bug, but the process survived it.
	Panics int64 `json:"panics"`
	// Pushes counts successful /v1/push ingests (the Engine's own
	// counter in EngineStats also counts library-level pushes).
	Pushes int64 `json:"pushes"`
	// Breakers maps each /v1 route seen so far to its circuit-breaker
	// state ("closed", "open", "half-open").
	Breakers map[string]string `json:"breakers"`
	Cache    CacheStats        `json:"cache"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	health, reason := s.health()
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Ready:         s.Session() != nil,
		Health:        health,
		HealthReason:  reason,
		Requests:      s.requests.Load(),
		Inflight:      len(s.sem),
		MaxInflight:   s.cfg.MaxInflight,
		Rejected:      s.rejected.Load(),
		Panics:        s.panics.Load(),
		Pushes:        s.pushes.Load(),
		Breakers:      s.breakerStates(),
		Cache:         s.cache.Stats(),
	}
}

// Handler returns the full route tree wrapped in the access-log and
// panic-recovery middleware. Pass it to http.Server.
func (s *Server) Handler() http.Handler {
	return s.withAccessLog(s.withRecovery(s.routes()))
}
