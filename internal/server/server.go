// Package server is the HTTP serving layer over one shared
// blogclusters.Engine session — the step from library to long-running
// queryable service named in ROADMAP (and the shape of the paper's
// BlogScope system itself: one loaded corpus, many analysis queries).
//
// One Server owns one Engine. Routes map 1:1 onto Engine query
// methods (see routes.go); everything the Engine memoizes (index,
// cluster sets, graphs) is therefore shared by all HTTP clients, and
// the Engine's single-flight stage builds mean a cold start under
// concurrent load still builds each artifact exactly once.
//
// Production plumbing, in request order:
//
//   - admission control: a bounded semaphore caps in-flight /v1
//     queries; overflow is rejected immediately with 429 + Retry-After
//     instead of queueing without bound (Config.MaxInflight).
//   - per-request deadlines: every query context carries
//     Config.RequestTimeout and is joined with the session lifetime
//     inside the Engine, so client disconnects, timeouts and server
//     shutdown all cancel the same way.
//   - response cache: rendered 200 responses live in a bytes-bounded
//     LRU keyed by normalized query params, with single-flight fills —
//     N identical hot queries cost one Engine call (cache.go).
//   - observability: structured access logs (one slog record per
//     request), X-Cache headers, and /debug/stats exposing
//     EngineStats (stage builds, timings, disk IOStats) plus server
//     counters (inflight, rejected, cache hits/misses).
//
// Lifecycle: New → SetEngine when the corpus is loaded (readiness
// flips; /readyz turns 200) → http.Server.Shutdown drains in-flight
// requests → Engine.Close. cmd/blogserved wires this to
// SIGINT/SIGTERM via internal/cli.
package server

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	blogclusters "repro"
)

// Config tunes one Server. The zero value serves with the defaults.
type Config struct {
	// MaxInflight caps concurrently admitted /v1 requests; further
	// requests get 429 + Retry-After. Non-positive means
	// DefaultMaxInflight.
	MaxInflight int
	// CacheBytes bounds the response cache. 0 means DefaultCacheBytes;
	// negative disables response caching (every query hits the Engine).
	CacheBytes int
	// RequestTimeout is the per-request context deadline for /v1
	// queries. Non-positive means DefaultRequestTimeout.
	RequestTimeout time.Duration
	// Logger receives one structured record per request plus lifecycle
	// events. Nil means slog.Default().
	Logger *slog.Logger
}

// Defaults for Config's zero values.
const (
	DefaultMaxInflight    = 64
	DefaultCacheBytes     = 8 << 20
	DefaultRequestTimeout = 30 * time.Second
)

// Server is the HTTP serving layer over one Engine session. Create
// with New, attach the session with SetEngine, serve Handler().
type Server struct {
	cfg   Config
	log   *slog.Logger
	eng   atomic.Pointer[blogclusters.Engine]
	cache *responseCache
	sem   chan struct{}
	start time.Time

	requests atomic.Int64
	rejected atomic.Int64
}

// New returns a Server with no Engine attached yet: /healthz answers
// 200 immediately, /readyz and the /v1 queries answer 503 until
// SetEngine. Opening the corpus in the background while the listener
// is already up is exactly the intended startup shape (blogserved does
// this), so load balancers can probe readiness during a slow load.
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return &Server{
		cfg:   cfg,
		log:   cfg.Logger,
		cache: newResponseCache(cfg.CacheBytes),
		sem:   make(chan struct{}, cfg.MaxInflight),
		start: time.Now(),
	}
}

// SetEngine attaches the session and flips readiness. The Server does
// not own the Engine: the caller closes it after draining HTTP (the
// reverse order would cancel in-flight queries mid-drain).
func (s *Server) SetEngine(e *blogclusters.Engine) { s.eng.Store(e) }

// Engine returns the attached session, or nil before SetEngine.
func (s *Server) Engine() *blogclusters.Engine { return s.eng.Load() }

// Stats is the server-side half of /debug/stats.
type Stats struct {
	UptimeSeconds float64    `json:"uptime_seconds"`
	Ready         bool       `json:"ready"`
	Requests      int64      `json:"requests"`
	Inflight      int        `json:"inflight"`
	MaxInflight   int        `json:"max_inflight"`
	Rejected      int64      `json:"rejected"`
	Cache         CacheStats `json:"cache"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Ready:         s.Engine() != nil,
		Requests:      s.requests.Load(),
		Inflight:      len(s.sem),
		MaxInflight:   s.cfg.MaxInflight,
		Rejected:      s.rejected.Load(),
		Cache:         s.cache.Stats(),
	}
}

// Handler returns the full route tree wrapped in the access-log
// middleware. Pass it to http.Server.
func (s *Server) Handler() http.Handler {
	return s.withAccessLog(s.routes())
}
