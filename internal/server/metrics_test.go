package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	blogclusters "repro"
	"repro/internal/shard"
)

// scrapeMetrics fetches /metrics and returns the exposition text.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue finds the sample whose name matches and whose label set
// contains every given pair, failing when absent. Label values here
// never need escaping, so plain substring matching on rendered pairs
// is exact.
func metricValue(t *testing.T, text, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := lookupMetric(text, name, labels)
	if !ok {
		t.Fatalf("metric %s%v not found in exposition", name, labels)
	}
	return v
}

func lookupMetric(text, name string, labels map[string]string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		rest, found := strings.CutPrefix(line, name)
		if !found || rest == "" || (rest[0] != '{' && rest[0] != ' ') {
			continue
		}
		ok := true
		for k, v := range labels {
			if !strings.Contains(rest, k+`="`+v+`"`) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		val, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		return val, true
	}
	return 0, false
}

// TestMetricsEndpoint drives known traffic and checks the route
// counters, latency histogram counts and cache counters agree exactly
// with what was served (and with the X-Cache headers the same requests
// carried).
func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, quietConfig(nil))

	var hits, misses int
	const n = 5
	for i := 0; i < n; i++ {
		resp, err := http.Get(ts.URL + "/v1/timeseries?keyword=somalia")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.Header.Get("X-Cache") {
		case "hit":
			hits++
		case "miss":
			misses++
		}
	}
	if misses != 1 || hits != n-1 {
		t.Fatalf("traffic saw %d misses / %d hits, want 1/%d", misses, hits, n-1)
	}

	text := scrapeMetrics(t, ts)

	if got := metricValue(t, text, "http_requests_total", map[string]string{"route": "timeseries", "status": "200"}); got != n {
		t.Errorf("http_requests_total{route=timeseries} = %v, want %d", got, n)
	}
	if got := metricValue(t, text, "http_request_duration_seconds_count", map[string]string{"route": "timeseries"}); got != n {
		t.Errorf("duration _count{route=timeseries} = %v, want %d", got, n)
	}
	if got := metricValue(t, text, "cache_requests_total", map[string]string{"state": "hit"}); got != float64(hits) {
		t.Errorf("cache_requests_total{state=hit} = %v, want %d", got, hits)
	}
	if got := metricValue(t, text, "cache_requests_total", map[string]string{"state": "miss"}); got != float64(misses) {
		t.Errorf("cache_requests_total{state=miss} = %v, want %d", got, misses)
	}
	if got := metricValue(t, text, "engine_generation", nil); got != 1 {
		t.Errorf("engine_generation = %v, want 1", got)
	}
	if got := metricValue(t, text, "engine_intervals", nil); got != 7 {
		t.Errorf("engine_intervals = %v, want 7", got)
	}
	// The timeseries fill built the index: its stage counter must show.
	if got := metricValue(t, text, "engine_stage_builds_total", map[string]string{"stage": "index"}); got < 1 {
		t.Errorf("engine_stage_builds_total{stage=index} = %v, want >= 1", got)
	}

	// A second scrape must never move a counter backwards — and the
	// scrape itself advances its own route counter.
	text2 := scrapeMetrics(t, ts)
	if got := metricValue(t, text2, "http_requests_total", map[string]string{"route": "metrics", "status": "200"}); got != 1 {
		t.Errorf("http_requests_total{route=metrics} on second scrape = %v, want 1 (first scrape counted)", got)
	}
	if got := metricValue(t, text2, "http_requests_total", map[string]string{"route": "timeseries", "status": "200"}); got != n {
		t.Errorf("timeseries counter moved between scrapes: %v", got)
	}
}

// TestMetricsSolveHistogram checks the per-algorithm solver work
// accounting reaches the exposition for both planned and forced
// solves.
func TestMetricsSolveHistogram(t *testing.T) {
	_, _, ts := newTestServer(t, quietConfig(nil))

	resp, m := get(t, ts, "/v1/stable-clusters?k=3&algorithm=bfs")
	wantStatus(t, resp, m, 200)
	text := scrapeMetrics(t, ts)
	if got := metricValue(t, text, "engine_solve_duration_seconds_count", map[string]string{"algorithm": "bfs"}); got != 1 {
		t.Errorf("solve histogram count for forced bfs = %v, want 1", got)
	}
	// Forced solves must not teach the planner.
	if got := metricValue(t, text, "planner_decisions_total", nil); got != 0 {
		t.Errorf("planner_decisions_total after forced solve = %v, want 0", got)
	}

	resp, m = get(t, ts, "/v1/stable-clusters?k=3&algorithm=auto")
	wantStatus(t, resp, m, 200)
	text = scrapeMetrics(t, ts)
	if got := metricValue(t, text, "planner_decisions_total", nil); got != 1 {
		t.Errorf("planner_decisions_total after auto solve = %v, want 1", got)
	}
	var total float64
	for _, algo := range []string{"bfs", "dfs", "ta", "brute"} {
		if v, ok := lookupMetric(text, "engine_solve_duration_seconds_count", map[string]string{"algorithm": algo}); ok {
			total += v
		}
	}
	if total != 2 {
		t.Errorf("solve histogram total count = %v, want 2 (one forced + one planned)", total)
	}
}

// TestRequestID checks the id lifecycle: minted when absent, echoed
// when present, unique per request.
func TestRequestID(t *testing.T) {
	_, _, ts := newTestServer(t, quietConfig(nil))

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id1 := resp.Header.Get("X-Request-ID")
	if id1 == "" {
		t.Fatal("no X-Request-ID on response")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id2 := resp.Header.Get("X-Request-ID"); id2 == id1 {
		t.Fatalf("request ids not unique: %q twice", id2)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied-7" {
		t.Fatalf("supplied id not echoed: got %q", got)
	}
}

// TestTraceBlock checks ?trace=1: the response carries a span
// waterfall, bypasses the cache, and cold requests show the engine
// stages that actually ran.
func TestTraceBlock(t *testing.T) {
	_, _, ts := newTestServer(t, quietConfig(nil))

	resp, m := get(t, ts, "/v1/stable-clusters?k=3&trace=1")
	wantStatus(t, resp, m, 200)
	if got := resp.Header.Get("X-Cache"); got != "bypass" {
		t.Fatalf("traced request X-Cache %q, want bypass", got)
	}
	spans, ok := m["trace"].([]any)
	if !ok || len(spans) == 0 {
		t.Fatalf("no trace block: %v", m)
	}
	names := map[string]bool{}
	for _, sp := range spans {
		span := sp.(map[string]any)
		names[span["name"].(string)] = true
		if _, ok := span["dur_us"].(float64); !ok {
			t.Fatalf("span without dur_us: %v", span)
		}
	}
	// Cold solve: the cluster and graph stages ran inside this request.
	for _, want := range []string{"clusters", "graph", "request"} {
		if !names[want] {
			t.Errorf("trace missing span %q (got %v)", want, names)
		}
	}
	solved := false
	for name := range names {
		if strings.HasPrefix(name, "solve:") {
			solved = true
		}
	}
	if !solved {
		t.Errorf("trace has no solve span: %v", names)
	}

	// The traced request must not have seeded the cache, and a repeat
	// trace is honest about hot state: no build spans the second time.
	resp, m = get(t, ts, "/v1/stable-clusters?k=3&trace=1")
	wantStatus(t, resp, m, 200)
	if got := resp.Header.Get("X-Cache"); got != "bypass" {
		t.Fatalf("second traced request X-Cache %q, want bypass", got)
	}
	for _, sp := range m["trace"].([]any) {
		if name := sp.(map[string]any)["name"].(string); name == "clusters" || name == "graph" {
			t.Errorf("hot traced request re-reports build span %q", name)
		}
	}
	// An untraced request now misses (trace never cached) then hits.
	resp, err := http.Get(ts.URL + "/v1/stable-clusters?k=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("untraced after traced: X-Cache %q, want miss", got)
	}
}

// TestDebugStatsProcess pins the /debug/stats wire format including
// the process block.
func TestDebugStatsProcess(t *testing.T) {
	_, _, ts := newTestServer(t, quietConfig(nil))
	resp, m := get(t, ts, "/debug/stats")
	wantStatus(t, resp, m, 200)
	for _, field := range []string{"generation", "engine", "server", "process"} {
		if _, ok := m[field]; !ok {
			t.Errorf("/debug/stats missing %q: %v", field, m)
		}
	}
	proc, ok := m["process"].(map[string]any)
	if !ok {
		t.Fatalf("process block not an object: %v", m["process"])
	}
	if v, ok := proc["go_version"].(string); !ok || !strings.HasPrefix(v, "go") {
		t.Errorf("process.go_version = %v", proc["go_version"])
	}
	if v, ok := proc["gomaxprocs"].(float64); !ok || v < 1 {
		t.Errorf("process.gomaxprocs = %v", proc["gomaxprocs"])
	}
	if v, ok := proc["goroutines"].(float64); !ok || v < 1 {
		t.Errorf("process.goroutines = %v", proc["goroutines"])
	}
	if v, ok := proc["uptime_seconds"].(float64); !ok || v < 0 {
		t.Errorf("process.uptime_seconds = %v", proc["uptime_seconds"])
	}
}

// TestConcurrentScrapeWhileServing is the -race gate for the metrics
// path: queries, pushes of counters and scrapes all running at once.
func TestConcurrentScrapeWhileServing(t *testing.T) {
	_, _, ts := newTestServer(t, quietConfig(nil))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + "/v1/timeseries?keyword=somalia")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				scrapeMetrics(t, ts)
			}
		}()
	}
	wg.Wait()
	text := scrapeMetrics(t, ts)
	if got := metricValue(t, text, "http_requests_total", map[string]string{"route": "timeseries", "status": "200"}); got != 80 {
		t.Errorf("http_requests_total{route=timeseries} = %v, want 80", got)
	}
}

// TestShardedMetrics checks the coordinator appends its own families
// to the exposition with per-shard labels, and that the boundary
// accounting series move after a scattered solve.
func TestShardedMetrics(t *testing.T) {
	_, _, ts := newShardedServer(t, quietConfig(nil))

	// A bounded-length top-k scatters across both shards.
	resp, m := get(t, ts, "/v1/stable-clusters?k=3&l=2")
	wantStatus(t, resp, m, 200)

	text := scrapeMetrics(t, ts)
	if got := metricValue(t, text, "coordinator_solves_total", map[string]string{"route": "scatter"}); got != 1 {
		t.Errorf("coordinator_solves_total{route=scatter} = %v, want 1", got)
	}
	if got := metricValue(t, text, "coordinator_fanout_width_count", nil); got != 1 {
		t.Errorf("coordinator_fanout_width_count = %v, want 1", got)
	}
	if got := metricValue(t, text, "coordinator_scatter_partials_total", map[string]string{"kind": "window"}); got < 1 {
		t.Errorf("coordinator_scatter_partials_total{kind=window} = %v, want >= 1", got)
	}
	for _, sh := range []string{"0", "1"} {
		if got := metricValue(t, text, "shard_intervals", map[string]string{"shard": sh}); got < 1 {
			t.Errorf("shard_intervals{shard=%s} = %v, want >= 1", sh, got)
		}
		if got := metricValue(t, text, "shard_generation", map[string]string{"shard": sh}); got != 1 {
			t.Errorf("shard_generation{shard=%s} = %v, want 1", sh, got)
		}
		if _, ok := lookupMetric(text, "coordinator_shard_gather_duration_seconds_count", map[string]string{"shard": sh, "method": "solve"}); !ok {
			t.Errorf("no gather-latency histogram for shard %s solve hops", sh)
		}
	}
	// The server-side engine block is the cross-shard aggregate.
	if got := metricValue(t, text, "engine_intervals", nil); got != 7 {
		t.Errorf("aggregate engine_intervals = %v, want 7", got)
	}
}

// TestRequestIDPropagatesToShards checks the coordinator forwards the
// serving layer's request id on its shard hops, so one query
// correlates across all processes.
func TestRequestIDPropagatesToShards(t *testing.T) {
	col, err := blogclusters.GenerateCorpus(blogclusters.NewsWeekCorpus(2007, 60))
	if err != nil {
		t.Fatal(err)
	}
	subs, err := shard.SplitCollection(col, 2)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := map[string]bool{}
	shardTS := make([]*httptest.Server, 2)
	for i := range subs {
		eng, err := blogclusters.Open(t.Context(), blogclusters.FromCollection(subs[i]))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		ssrv := New(quietConfig(nil))
		ssrv.SetEngine(eng)
		inner := ssrv.Handler()
		shardTS[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if id := r.Header.Get("X-Request-ID"); id != "" {
				mu.Lock()
				seen[id] = true
				mu.Unlock()
			}
			inner.ServeHTTP(w, r)
		}))
		t.Cleanup(shardTS[i].Close)
	}

	backends := make([]shard.Backend, 2)
	for i, sts := range shardTS {
		b, err := shard.NewHTTPBackend(sts.URL, sts.Client())
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = b
	}
	coord, err := shard.NewCoordinator(t.Context(), backends, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	srv := New(quietConfig(nil))
	srv.SetEngine(coord)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/timeseries?keyword=games", nil)
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("coordinator query: status %d", resp.StatusCode)
	}
	mu.Lock()
	defer mu.Unlock()
	if !seen["trace-me-42"] {
		t.Fatalf("shard servers never saw the forwarded request id; saw %v", seen)
	}
}

// TestShardedTrace checks a traced scattered query reports its
// fan-out hops as shard<N>.<method> spans.
func TestShardedTrace(t *testing.T) {
	_, _, ts := newShardedServer(t, quietConfig(nil))
	resp, m := get(t, ts, "/v1/stable-clusters?k=3&l=2&trace=1")
	wantStatus(t, resp, m, 200)
	spans, ok := m["trace"].([]any)
	if !ok || len(spans) == 0 {
		t.Fatalf("no trace block: %v", m)
	}
	hops := 0
	for _, sp := range spans {
		name := sp.(map[string]any)["name"].(string)
		if strings.HasPrefix(name, "shard0.") || strings.HasPrefix(name, "shard1.") {
			hops++
		}
	}
	if hops == 0 {
		names := make([]string, 0, len(spans))
		for _, sp := range spans {
			names = append(names, fmt.Sprint(sp.(map[string]any)["name"]))
		}
		t.Fatalf("traced sharded query has no shard hop spans: %v", names)
	}
}
