package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	blogclusters "repro"
	"repro/internal/shard"
)

// newShardedServer fronts an in-process 2-shard coordinator with a
// Server: the serving layer must not be able to tell it from a single
// Engine (same routes, same statuses, same cache behavior), plus the
// coordinator-only extras (per-shard /debug/stats rows).
func newShardedServer(t *testing.T, cfg Config) (*Server, *shard.Coordinator, *httptest.Server) {
	t.Helper()
	col, err := blogclusters.GenerateCorpus(blogclusters.NewsWeekCorpus(2007, 60))
	if err != nil {
		t.Fatal(err)
	}
	coord, err := shard.OpenInProcess(t.Context(), col, 2, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	srv := New(cfg)
	srv.SetEngine(coord)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, coord, ts
}

// TestShardedEndpoints drives the query surface against a coordinator
// session and checks the coordinator-specific envelope pieces.
func TestShardedEndpoints(t *testing.T) {
	_, coord, ts := newShardedServer(t, quietConfig(nil))
	m := coord.NumIntervals()

	resp, body := get(t, ts, "/v1/stable-clusters?k=3&l=2")
	wantStatus(t, resp, body, 200)
	if body["generation"].(float64) != 1 {
		t.Errorf("generation %v, want 1", body["generation"])
	}
	if len(body["paths"].([]any)) == 0 {
		t.Error("no stable clusters over the sharded session")
	}

	resp, body = get(t, ts, "/v1/meta")
	wantStatus(t, resp, body, 200)
	if int(body["intervals"].(float64)) != m {
		t.Errorf("meta intervals %v, want %d", body["intervals"], m)
	}
	if len(body["totals"].([]any)) != m {
		t.Errorf("meta totals length %d, want %d", len(body["totals"].([]any)), m)
	}

	resp, body = get(t, ts, fmt.Sprintf("/v1/clusters?from=0&to=%d", m))
	wantStatus(t, resp, body, 200)
	if len(body["sets"].([]any)) != m {
		t.Errorf("clusters sets length %d, want %d", len(body["sets"].([]any)), m)
	}
	resp, body = get(t, ts, "/v1/clusters?from=0&to=2&counts=1")
	wantStatus(t, resp, body, 200)
	if len(body["counts"].([]any)) != 2 {
		t.Errorf("clusters counts %v", body["counts"])
	}
	resp, body = get(t, ts, fmt.Sprintf("/v1/clusters?from=0&to=%d", m+1))
	wantStatus(t, resp, body, 400)

	resp, body = get(t, ts, "/v1/timeseries?keyword=games")
	wantStatus(t, resp, body, 200)
	if len(body["counts"].([]any)) != m || len(body["totals"].([]any)) != m {
		t.Errorf("timeseries lengths %d/%d, want %d", len(body["counts"].([]any)), len(body["totals"].([]any)), m)
	}

	resp, body = get(t, ts, "/v1/search?terms=games&interval=99")
	wantStatus(t, resp, body, 400)

	resp, body = get(t, ts, "/debug/stats")
	wantStatus(t, resp, body, 200)
	shards, ok := body["shards"].([]any)
	if !ok || len(shards) != 2 {
		t.Fatalf("debug stats shards block: %v", body["shards"])
	}
	row := shards[0].(map[string]any)
	if row["intervals"].(float64) == 0 || row["engine"] == nil {
		t.Errorf("shard row incomplete: %v", row)
	}
}

// TestShardedPushInvalidatesCache checks the composite generation keys
// the response cache exactly like a single engine's: a push through
// the coordinator moves sequence-dependent queries to a fresh cache
// namespace while interval-scoped entries keep hitting.
func TestShardedPushInvalidatesCache(t *testing.T) {
	_, coord, ts := newShardedServer(t, quietConfig(nil))
	m := coord.NumIntervals()

	xcache := func(path string) string {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return resp.Header.Get("X-Cache")
	}

	if got := xcache("/v1/stable-clusters?k=3&l=2"); got != "miss" {
		t.Fatalf("cold solve: X-Cache %q, want miss", got)
	}
	if got := xcache("/v1/stable-clusters?k=3&l=2"); got != "hit" {
		t.Fatalf("warm solve: X-Cache %q, want hit", got)
	}
	if got := xcache("/v1/search?terms=games&interval=0"); got != "miss" {
		t.Fatalf("cold search: X-Cache %q, want miss", got)
	}

	pushBody := fmt.Sprintf(`{"interval":%d,"label":"pushed","docs":[{"id":900001,"keywords":["game","games"]}]}`, m)
	resp, err := http.Post(ts.URL+"/v1/push", "application/json", bytes.NewReader([]byte(pushBody)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("push: status %d", resp.StatusCode)
	}
	if got := coord.Generation(); got != 2 {
		t.Fatalf("composite generation %d after push, want 2", got)
	}

	// Sequence-dependent entry re-keyed by the new generation: miss.
	if got := xcache("/v1/stable-clusters?k=3&l=2"); got != "miss" {
		t.Errorf("post-push solve: X-Cache %q, want miss (new generation namespace)", got)
	}
	// Interval-scoped entry survives the push: hit.
	if got := xcache("/v1/search?terms=games&interval=0"); got != "hit" {
		t.Errorf("post-push search: X-Cache %q, want hit (interval is immutable)", got)
	}

	// Replaying the same push is now out of order: 409.
	resp, err = http.Post(ts.URL+"/v1/push", "application/json", bytes.NewReader([]byte(pushBody)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("replayed push: status %d, want 409", resp.StatusCode)
	}
}

// TestShardedUnavailable checks a dead shard surfaces as 503 at the
// serving layer — the fail-closed policy made visible to clients.
func TestShardedUnavailable(t *testing.T) {
	col, err := blogclusters.GenerateCorpus(blogclusters.NewsWeekCorpus(2007, 60))
	if err != nil {
		t.Fatal(err)
	}
	subs, err := shard.SplitCollection(col, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 is live; shard 1 is a server that never got a session, so
	// its queries 503 — which the coordinator folds into ErrUnavailable.
	eng, err := blogclusters.Open(t.Context(), blogclusters.FromCollection(subs[0]), blogclusters.WithGraphOptions(blogclusters.GraphOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	live := New(quietConfig(nil))
	live.SetEngine(eng)
	liveTS := httptest.NewServer(live.Handler())
	t.Cleanup(liveTS.Close)

	deadEng, err := blogclusters.Open(t.Context(), blogclusters.FromCollection(subs[1]))
	if err != nil {
		t.Fatal(err)
	}
	dead := New(quietConfig(nil))
	dead.SetEngine(deadEng)
	deadTS := httptest.NewServer(dead.Handler())

	b0, err := shard.NewHTTPBackend(liveTS.URL, liveTS.Client())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := shard.NewHTTPBackend(deadTS.URL, deadTS.Client())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := shard.NewCoordinator(t.Context(), []shard.Backend{b0, b1}, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	deadTS.Close()
	deadEng.Close()

	srv := New(quietConfig(nil))
	srv.SetEngine(coord)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	resp, body := get(t, ts, "/v1/timeseries?keyword=games")
	wantStatus(t, resp, body, http.StatusServiceUnavailable)
	resp, body = get(t, ts, "/v1/bursts?keyword=games")
	wantStatus(t, resp, body, http.StatusServiceUnavailable)

	// The dashboard stays best-effort: 200 with the dead shard's row
	// carrying an error instead of stats.
	resp, body = get(t, ts, "/debug/stats")
	wantStatus(t, resp, body, 200)
	rows := body["shards"].([]any)
	if len(rows) != 2 {
		t.Fatalf("shards rows: %v", body["shards"])
	}
	deadRow := rows[1].(map[string]any)
	if deadRow["error"] == nil || deadRow["error"] == "" {
		t.Errorf("dead shard row has no error: %v", deadRow)
	}
}
