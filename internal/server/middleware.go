package server

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"

	"repro/internal/obs"
)

// statusWriter captures the status and byte count for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// withAccessLog emits one structured record per request: method, path,
// query, status, response bytes, wall time, the cache disposition
// (read back from the X-Cache header the handlers set) and the request
// id. The id is minted here when the client sent none and propagated
// verbatim when it did (a coordinator forwards its own id on shard
// hops, so one query's log lines correlate across processes); either
// way it is echoed in the X-Request-ID response header and carried in
// the request context for downstream hops.
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		r = r.WithContext(obs.WithRequestID(r.Context(), id))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.requests.Add(1)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"cache", sw.Header().Get("X-Cache"),
			"request_id", id,
			"remote", r.RemoteAddr,
		)
	})
}

// withRecovery turns a handler panic into a 500 and a stack-trace log
// record instead of a dead process. net/http would recover the panic
// itself, but only after killing the connection with an empty reply;
// catching it here lets the client see a real error and lets the
// breaker (which re-raises panics to us) count it. http.ErrAbortHandler
// is the sanctioned "hang up now" panic and is re-raised untouched.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			if v == http.ErrAbortHandler {
				panic(v)
			}
			s.panics.Add(1)
			s.log.Error("panic in handler",
				"path", r.URL.Path,
				"panic", v,
				"stack", string(debug.Stack()),
			)
			// Best effort: if the handler already wrote, this is a no-op.
			writeError(w, http.StatusInternalServerError, "internal error")
		}()
		next.ServeHTTP(w, r)
	})
}

// withBreaker consults and feeds the route's circuit breaker. Requests
// to an open route shed immediately — 503 + Retry-After — before
// touching the admission semaphore or the Engine, so a route stuck in
// multi-second failing builds cannot starve the healthy ones. Only
// 5xx responses (and panics, re-raised for withRecovery) count as
// failures: 4xx is the client's fault.
func (s *Server) withBreaker(route string, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		b := s.breakerFor(route)
		if !b.allow() {
			s.rejected.Add(1)
			s.m.shed.With("breaker").Inc()
			w.Header().Set("Retry-After", s.retryHint)
			writeError(w, http.StatusServiceUnavailable,
				"route "+route+" is failing; circuit breaker open, retry later")
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				b.record(true)
				panic(v)
			}
			b.record(sw.status >= 500)
		}()
		next(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
	}
}

// withAdmission is the bounded admission semaphore: at most
// MaxInflight /v1 queries run at once, and requests beyond that are
// rejected immediately with 429 + Retry-After rather than queued
// without bound. Rejecting beats queueing here because every /v1
// query can fan into multi-second Engine builds: a queue would grow
// faster than it drains under overload, and clients with deadlines
// would rather retry elsewhere. Health, readiness and stats stay
// outside the semaphore so operators can always observe an overloaded
// server.
func (s *Server) withAdmission(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next(w, r)
		default:
			s.rejected.Add(1)
			s.m.shed.With("admission").Inc()
			w.Header().Set("Retry-After", s.retryHint)
			writeError(w, http.StatusTooManyRequests, "server is at its in-flight query limit; retry shortly")
		}
	}
}

// withTimeout attaches the per-request deadline. The Engine joins this
// context with the session lifetime, so the three ways a query dies —
// client disconnect, deadline, session Close — all cancel the same
// builds the same way.
func (s *Server) withTimeout(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}

// query composes the /v1 middleware stack: the route breaker first
// (an open route sheds without consuming an admission slot), then
// admission, then the deadline.
func (s *Server) query(route string, next http.HandlerFunc) http.HandlerFunc {
	return s.withBreaker(route, s.withAdmission(s.withTimeout(next)))
}
