package server

import (
	"context"
	"net/http"
	"time"
)

// statusWriter captures the status and byte count for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

// withAccessLog emits one structured record per request: method, path,
// query, status, response bytes, wall time and the cache disposition
// (read back from the X-Cache header the handlers set).
func (s *Server) withAccessLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.requests.Add(1)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"query", r.URL.RawQuery,
			"status", sw.status,
			"bytes", sw.bytes,
			"dur_ms", float64(time.Since(start).Microseconds())/1000,
			"cache", sw.Header().Get("X-Cache"),
			"remote", r.RemoteAddr,
		)
	})
}

// withAdmission is the bounded admission semaphore: at most
// MaxInflight /v1 queries run at once, and requests beyond that are
// rejected immediately with 429 + Retry-After rather than queued
// without bound. Rejecting beats queueing here because every /v1
// query can fan into multi-second Engine builds: a queue would grow
// faster than it drains under overload, and clients with deadlines
// would rather retry elsewhere. Health, readiness and stats stay
// outside the semaphore so operators can always observe an overloaded
// server.
func (s *Server) withAdmission(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
			next(w, r)
		default:
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server is at its in-flight query limit; retry shortly")
		}
	}
}

// withTimeout attaches the per-request deadline. The Engine joins this
// context with the session lifetime, so the three ways a query dies —
// client disconnect, deadline, session Close — all cancel the same
// builds the same way.
func (s *Server) withTimeout(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}

// query composes the /v1 middleware stack: admission first (reject
// before spending anything), then the deadline.
func (s *Server) query(next http.HandlerFunc) http.HandlerFunc {
	return s.withAdmission(s.withTimeout(next))
}
