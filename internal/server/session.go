package server

import (
	"context"

	blogclusters "repro"
)

// Session is the query surface the server fronts: everything the /v1
// routes need from whatever answers them. *blogclusters.Engine
// satisfies it directly (one loaded corpus), and so does
// shard.Coordinator (N corpora scattered over shard backends and
// gathered back) — the handlers, response cache and generation keying
// cannot tell the two apart, which is the point: sharding is a
// deployment decision, not an API one.
//
// The Server does not own the Session: the caller closes it after
// draining HTTP.
type Session interface {
	// Generation increments on every successful Push; the response
	// cache keys sequence-dependent answers by it.
	Generation() int64
	// NumIntervals is the width of the interval sequence.
	NumIntervals() int
	Solve(ctx context.Context, spec blogclusters.QuerySpec) (*blogclusters.Result, error)
	Describe(ctx context.Context, p blogclusters.Path) (string, error)
	TimeSeries(ctx context.Context, keyword string) ([]int64, error)
	DocTotals(ctx context.Context) ([]int64, error)
	Bursts(ctx context.Context, keyword string) ([]blogclusters.KeywordBurst, error)
	Search(ctx context.Context, terms []string, interval int) ([]int64, error)
	Refine(ctx context.Context, query string, interval int) ([]string, error)
	Correlations(ctx context.Context, keyword string, interval, n int) ([]blogclusters.Correlation, error)
	ClusterSets(ctx context.Context, from, to int) ([][]blogclusters.Cluster, error)
	Push(ctx context.Context, iv blogclusters.Interval) (int64, error)
	Stats() blogclusters.EngineStats
}

// sessionBox wraps a Session for atomic.Pointer storage (interfaces
// cannot be stored atomically without a concrete box).
type sessionBox struct{ s Session }
