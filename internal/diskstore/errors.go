// Typed failure taxonomy for the storage layers. Before this existed,
// every I/O failure was a one-off fmt.Errorf: callers could not tell a
// flaky read (worth retrying) from corrupt bytes (never worth
// retrying) without sniffing message text. The two sentinels split the
// space:
//
//   - ErrTransient: the operation may succeed if reissued — the device
//     hiccuped, the syscall was interrupted, the read came back short.
//     The disk-index hot path retries these with RetryPolicy.
//   - ErrCorrupt: the bytes are wrong — checksum mismatch, malformed
//     framing, values that contradict the resident metadata. Retrying
//     re-reads the same wrong bytes; the only correct reactions are
//     failing the query and surfacing the counter.
//
// internal/index wraps its own format errors in index.ErrCorrupt
// (which also wraps this package's classification helpers into its
// block layer); the serving layers map both onto degraded modes
// instead of process death.
package diskstore

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"syscall"
	"time"
)

// ErrTransient marks an I/O failure that may succeed on retry.
// Classified errors wrap it, so callers test with errors.Is.
var ErrTransient = errors.New("transient I/O failure")

// ErrCorrupt marks on-disk bytes that failed validation (checksum,
// framing, cross-checks). Never retried.
var ErrCorrupt = errors.New("corrupt data on disk")

// IsTransient reports whether err looks like a fault worth retrying:
// anything already classified as ErrTransient, the classic transient
// errnos (EIO, EINTR, EAGAIN, ETIMEDOUT), short reads
// (io.ErrUnexpectedEOF / io.EOF from ReadAt), and net-style timeouts.
// Corruption is never transient: re-reading wrong bytes yields the
// same wrong bytes.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	for _, t := range []error{syscall.EIO, syscall.EINTR, syscall.EAGAIN, syscall.ETIMEDOUT, io.ErrUnexpectedEOF, io.EOF} {
		if errors.Is(err, t) {
			return true
		}
	}
	var to interface{ Timeout() bool }
	if errors.As(err, &to) && to.Timeout() {
		return true
	}
	return false
}

// RetryPolicy bounds how the hot path retries transient faults:
// Attempts total tries with jittered exponential backoff between them,
// aborting early when ctx dies. The zero value means the defaults.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first.
	// Non-positive means DefaultRetryAttempts; 1 disables retry.
	Attempts int
	// Backoff is the base delay before the first retry; each further
	// retry doubles it, with up to 50% random jitter added so
	// concurrent retriers do not stampede in lockstep. Non-positive
	// means DefaultRetryBackoff.
	Backoff time.Duration
	// MaxBackoff caps the per-retry delay. Non-positive means
	// DefaultMaxRetryBackoff.
	MaxBackoff time.Duration
}

// Defaults for RetryPolicy's zero values. The base backoff is tiny on
// purpose: the faults this retries are device hiccups measured in
// microseconds, and three quick retries either clear them or prove
// them persistent — queries should not hang for human-scale timeouts.
const (
	DefaultRetryAttempts   = 3
	DefaultRetryBackoff    = 500 * time.Microsecond
	DefaultMaxRetryBackoff = 20 * time.Millisecond
)

func (p RetryPolicy) resolved() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultRetryBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxRetryBackoff
	}
	return p
}

// Do runs op up to p.Attempts times, sleeping a jittered exponential
// backoff between tries, and retrying only while IsTransient(err).
// It returns the retry count (attempts beyond the first) alongside the
// final error; a nil ctx means no cancellation. The last transient
// error is wrapped with ErrTransient so callers can classify the
// exhausted case with errors.Is.
func (p RetryPolicy) Do(ctx context.Context, op func() error) (retries int, err error) {
	p = p.resolved()
	delay := p.Backoff
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !IsTransient(err) {
			return retries, err
		}
		if attempt >= p.Attempts {
			if !errors.Is(err, ErrTransient) {
				err = &transientError{err}
			}
			return retries, err
		}
		// Jittered sleep, aborted by ctx. Full jitter on the upper half:
		// delay/2 + rand(delay/2).
		d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
		if ctx != nil {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return retries, ctx.Err()
			}
		} else {
			time.Sleep(d)
		}
		if delay *= 2; delay > p.MaxBackoff {
			delay = p.MaxBackoff
		}
		retries++
	}
}

// transientError wraps an exhausted retryable failure so errors.Is
// finds ErrTransient without losing the original error chain.
type transientError struct{ err error }

func (e *transientError) Error() string {
	return "transient I/O failure (retries exhausted): " + e.err.Error()
}
func (e *transientError) Unwrap() []error {
	return []error{ErrTransient, e.err}
}
