package diskstore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"syscall"
	"testing"
	"time"
)

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{syscall.EIO, true},
		{fmt.Errorf("read sector: %w", syscall.EIO), true},
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{io.ErrUnexpectedEOF, true},
		{io.EOF, true},
		{syscall.ENOSPC, false},
		{errors.New("some app error"), false},
		{fmt.Errorf("wrapped: %w", ErrTransient), true},
		{fmt.Errorf("bad bytes: %w", ErrCorrupt), false},
		// Corrupt wins over transient when both are in the chain: wrong
		// bytes are wrong no matter how they arrived.
		{fmt.Errorf("%w after %w", ErrCorrupt, syscall.EIO), false},
		{context.Canceled, false},
	}
	for _, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryPolicyRetriesTransient(t *testing.T) {
	calls := 0
	retries, err := RetryPolicy{Attempts: 5, Backoff: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return syscall.EIO
		}
		return nil
	})
	if err != nil || calls != 3 || retries != 2 {
		t.Fatalf("Do = (retries=%d, err=%v) after %d calls, want (2, nil) after 3", retries, err, calls)
	}
}

func TestRetryPolicyDoesNotRetryPermanent(t *testing.T) {
	calls := 0
	_, err := RetryPolicy{Attempts: 5, Backoff: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		return syscall.ENOSPC
	})
	if calls != 1 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("permanent error called op %d times (err=%v), want once", calls, err)
	}
	calls = 0
	_, err = RetryPolicy{Attempts: 5, Backoff: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		return fmt.Errorf("bad block: %w", ErrCorrupt)
	})
	if calls != 1 || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt error called op %d times (err=%v), want once", calls, err)
	}
}

func TestRetryPolicyExhaustionWrapsErrTransient(t *testing.T) {
	calls := 0
	retries, err := RetryPolicy{Attempts: 3, Backoff: time.Microsecond}.Do(context.Background(), func() error {
		calls++
		return syscall.EIO
	})
	if calls != 3 || retries != 2 {
		t.Fatalf("exhaustion ran op %d times with %d retries, want 3/2", calls, retries)
	}
	if !errors.Is(err, ErrTransient) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("exhausted error %v should wrap both ErrTransient and the cause", err)
	}
}

func TestRetryPolicyHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	start := time.Now()
	_, err := RetryPolicy{Attempts: 10, Backoff: time.Hour}.Do(ctx, func() error {
		calls++
		cancel() // die during the first backoff sleep
		return syscall.EIO
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times after cancellation, want 1", calls)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

func TestStoreCorruptionMatchesSentinel(t *testing.T) {
	s, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(7, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte behind the store's back.
	f, ok := s.f.(interface {
		WriteAt([]byte, int64) (int, error)
	})
	if !ok {
		t.Skip("backing does not support WriteAt")
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(recordHeaderLen)); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(7)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get over flipped byte = %v, want ErrCorrupt", err)
	}
	if st := s.Stats(); st.CorruptReads != 1 {
		t.Fatalf("CorruptReads = %d, want 1", st.CorruptReads)
	}
}
