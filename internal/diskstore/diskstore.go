// Package diskstore provides the secondary-storage substrate the
// paper's algorithms are designed around. The experiments in Section 5
// were run with the OS page cache disabled so that I/O behaviour is
// observable; here every store counts its reads and writes (random vs.
// sequential, records and bytes) so the BFS/DFS/TA I/O claims of
// Section 4 can be measured and asserted rather than assumed.
//
// The store is a keyed record log: fixed 8-byte keys, variable-length
// values, append-on-update, with an in-memory offset index and CRC32
// integrity checking on every read.
package diskstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// IOStats counts storage operations. Random operations are keyed
// lookups; sequential operations come from Scan.
//
// The JSON field names are part of the EngineStats wire format served
// by /debug/stats (pinned by TestEngineStatsJSON in the root package).
type IOStats struct {
	RandomReads     int64 `json:"random_reads"`
	SequentialReads int64 `json:"sequential_reads"`
	Writes          int64 `json:"writes"`
	BytesRead       int64 `json:"bytes_read"`
	BytesWritten    int64 `json:"bytes_written"`
	// RetriedReads counts read attempts reissued after a transient
	// fault (see RetryPolicy) — a nonzero value under healthy hardware
	// means the fault-injection layer is active, a climbing value in
	// production means the device is sick.
	RetriedReads int64 `json:"retried_reads"`
	// CorruptReads counts reads rejected by validation (ErrCorrupt):
	// checksum mismatches, bad framing, skip-entry contradictions.
	CorruptReads int64 `json:"corrupt_reads"`
}

// Add accumulates other into s.
func (s *IOStats) Add(other IOStats) {
	s.RandomReads += other.RandomReads
	s.SequentialReads += other.SequentialReads
	s.Writes += other.Writes
	s.BytesRead += other.BytesRead
	s.BytesWritten += other.BytesWritten
	s.RetriedReads += other.RetriedReads
	s.CorruptReads += other.CorruptReads
}

// Reads returns total read operations of both kinds.
func (s IOStats) Reads() int64 { return s.RandomReads + s.SequentialReads }

// Backing abstracts the file beneath a Store. *os.File satisfies it;
// tests substitute failing implementations for fault injection.
type Backing interface {
	io.ReaderAt
	io.Writer
	io.Closer
}

// Store is a keyed record store with I/O accounting. Safe for concurrent
// use.
type Store struct {
	mu      sync.Mutex
	f       Backing
	index   map[int64]recordLoc
	tail    int64 // append offset
	stats   IOStats
	remove  string // path to remove on Close, "" if none
	closed  bool
	scratch []byte
}

type recordLoc struct {
	off int64
	len int32 // payload length
}

const recordHeaderLen = 8 + 4 // key + payload length
const recordTrailerLen = 4    // crc32 of key+payload

// Open creates a store backed by a new temporary file. Close removes
// the file.
func Open() (*Store, error) {
	f, err := os.CreateTemp("", "diskstore-")
	if err != nil {
		return nil, fmt.Errorf("diskstore: create temp file: %w", err)
	}
	s := NewWithBacking(f)
	s.remove = f.Name()
	return s, nil
}

// NewWithBacking creates a store over an arbitrary backing (used by
// tests for fault injection). The backing must be empty.
func NewWithBacking(f Backing) *Store {
	return &Store{f: f, index: make(map[int64]recordLoc)}
}

// Put writes the record for key, replacing any previous version. The
// old version's bytes remain in the log (append-only), as with any
// log-structured store.
func (s *Store) Put(key int64, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("diskstore: Put on closed store")
	}
	need := recordHeaderLen + len(val) + recordTrailerLen
	if cap(s.scratch) < need {
		s.scratch = make([]byte, need)
	}
	buf := s.scratch[:need]
	binary.LittleEndian.PutUint64(buf[0:8], uint64(key))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(val)))
	copy(buf[recordHeaderLen:], val)
	crc := crc32.ChecksumIEEE(buf[:recordHeaderLen+len(val)])
	binary.LittleEndian.PutUint32(buf[recordHeaderLen+len(val):], crc)
	if _, err := s.f.Write(buf); err != nil {
		return fmt.Errorf("diskstore: write record %d: %w", key, err)
	}
	s.index[key] = recordLoc{off: s.tail, len: int32(len(val))}
	s.tail += int64(need)
	s.stats.Writes++
	s.stats.BytesWritten += int64(need)
	return nil
}

// ErrNotFound is returned by Get for unknown keys.
var ErrNotFound = fmt.Errorf("diskstore: key not found")

// Get reads the current version of key's record. Counts as one random
// read.
func (s *Store) Get(key int64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("diskstore: Get on closed store")
	}
	loc, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	val, err := s.readAt(loc, key)
	if err != nil {
		return nil, err
	}
	s.stats.RandomReads++
	s.stats.BytesRead += int64(recordHeaderLen + len(val) + recordTrailerLen)
	return val, nil
}

func (s *Store) readAt(loc recordLoc, wantKey int64) ([]byte, error) {
	total := recordHeaderLen + int(loc.len) + recordTrailerLen
	buf := make([]byte, total)
	if _, err := s.f.ReadAt(buf, loc.off); err != nil {
		return nil, fmt.Errorf("diskstore: read record %d: %w", wantKey, err)
	}
	key := int64(binary.LittleEndian.Uint64(buf[0:8]))
	plen := binary.LittleEndian.Uint32(buf[8:12])
	if key != wantKey || int32(plen) != loc.len {
		s.stats.CorruptReads++
		return nil, fmt.Errorf("diskstore: record %d: corrupt header (key=%d len=%d): %w", wantKey, key, plen, ErrCorrupt)
	}
	stored := binary.LittleEndian.Uint32(buf[recordHeaderLen+int(plen):])
	if crc := crc32.ChecksumIEEE(buf[:recordHeaderLen+int(plen)]); crc != stored {
		s.stats.CorruptReads++
		return nil, fmt.Errorf("diskstore: record %d: checksum mismatch: %w", wantKey, ErrCorrupt)
	}
	return buf[recordHeaderLen : recordHeaderLen+int(plen)], nil
}

// Has reports whether key exists without performing I/O.
func (s *Store) Has(key int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Scan visits the current version of every record in unspecified order.
// Each visit counts as one sequential read.
func (s *Store) Scan(visit func(key int64, val []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("diskstore: Scan on closed store")
	}
	for key, loc := range s.index {
		val, err := s.readAt(loc, key)
		if err != nil {
			return err
		}
		s.stats.SequentialReads++
		s.stats.BytesRead += int64(recordHeaderLen + len(val) + recordTrailerLen)
		if err := visit(key, val); err != nil {
			return err
		}
	}
	return nil
}

// Stats returns a snapshot of the I/O counters.
func (s *Store) Stats() IOStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ResetStats zeroes the I/O counters (used between experiment phases).
func (s *Store) ResetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats = IOStats{}
}

// Close closes and, for temp-file stores, removes the backing file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Close()
	if s.remove != "" {
		if rmErr := os.Remove(s.remove); err == nil {
			err = rmErr
		}
	}
	return err
}
